package tca

import (
	"tca/internal/bench"
	"tca/internal/core"
	"tca/internal/pcie"
	"tca/internal/peach2"
	"tca/internal/tcanet"
	"tca/internal/units"
)

// The simulator's working vocabulary, re-exported so downstream code needs
// only this package.
type (
	// ByteSize is a byte count; it prints in the power-of-two units the
	// paper uses ("4KiB").
	ByteSize = units.ByteSize
	// Bandwidth is bytes per second ("3.3GB/s").
	Bandwidth = units.Bandwidth
	// Duration is simulated time in picoseconds ("782ns").
	Duration = units.Duration
	// Addr is a 64-bit PCIe bus address; global TCA addresses live in
	// the 512 GiB shared window.
	Addr = pcie.Addr

	// Comm is the full TCA communicator (descriptor chains, PIO, flags,
	// block-stride transfers).
	Comm = core.Comm
	// GPUBuffer is a GPUDirect-pinned GPU allocation.
	GPUBuffer = core.GPUBuffer
	// HostBuffer is a registered host-memory region.
	HostBuffer = core.HostBuffer
	// BlockStride describes a strided (multidimensional-array) transfer.
	BlockStride = core.BlockStride
	// DMAMode selects the DMA controller generation.
	DMAMode = core.DMAMode

	// SubCluster is the wired fabric: nodes, chips, address plan.
	SubCluster = tcanet.SubCluster
	// Params is the full hardware parameter set.
	Params = tcanet.Params
	// Descriptor is one chaining-DMA table entry.
	Descriptor = peach2.Descriptor

	// Table is a regenerated paper table/figure.
	Table = bench.Table
	// Experiment couples a table/figure ID with its generator and
	// shape check.
	Experiment = bench.Experiment
)

// Size units.
const (
	KiB = units.KiB
	MiB = units.MiB
	GiB = units.GiB
)

// Time units.
const (
	Nanosecond  = units.Nanosecond
	Microsecond = units.Microsecond
	Millisecond = units.Millisecond
)

// DMA controller generations (§IV-B2).
const (
	// TwoPhase stages host/GPU-sourced remote puts through PEACH2's
	// internal memory — the paper's current DMAC.
	TwoPhase = core.TwoPhase
	// Pipelined overlaps the local read and the remote write — the
	// paper's announced new DMAC.
	Pipelined = core.Pipelined
)

// DefaultParams reproduces the paper's test environment (Table II) and its
// measured numbers: 3.66 GB/s theoretical peak, ~3.3 GB/s chained-write
// peak, 782 ns loopback PIO latency, ~0.83 GB/s GPU-read ceiling.
func DefaultParams() Params { return tcanet.DefaultParams }

// Experiments returns the registry regenerating every table and figure of
// the paper plus the DESIGN.md ablations.
func Experiments() []Experiment { return bench.All() }

// FindExperiment looks an experiment up by ID (case-insensitive), e.g.
// "Fig7", "LatencyPIO", "Baseline".
func FindExperiment(id string) (Experiment, bool) { return bench.Find(id) }
