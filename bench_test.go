// Benchmarks regenerating every table and figure of the paper's evaluation
// (§IV). Each benchmark runs the corresponding simulated experiment b.N
// times and reports the *simulated* metric (sim-GB/s, sim-us) alongside Go's
// wall-clock numbers; the simulated metrics are the ones to compare against
// the paper, and they are deterministic across runs.
//
//	go test -bench=. -benchmem
package tca

import (
	"testing"

	"tca/internal/bench"
	"tca/internal/core"
	"tca/internal/pcie"
	"tca/internal/tcanet"
	"tca/internal/units"
)

// benchParams is the shared hardware configuration (the paper's Table II).
var benchParams = tcanet.DefaultParams

// reportBW runs a chained-DMA measurement b.N times and reports the
// simulated bandwidth.
func reportBW(b *testing.B, dir bench.Dir, target bench.Target, remote bool, size units.ByteSize, count int) {
	b.Helper()
	var bw units.Bandwidth
	for i := 0; i < b.N; i++ {
		bw = bench.MeasureChain(benchParams, dir, target, remote, size, count)
	}
	b.ReportMetric(bw.GBps(), "sim-GB/s")
}

// BenchmarkTableI_Inventory regenerates Table I (static inventory).
func BenchmarkTableI_Inventory(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(bench.TableI().Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkTableII_Inventory regenerates Table II.
func BenchmarkTableII_Inventory(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(bench.TableII().Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkTheoreticalPeak recomputes the §IV-A formula.
func BenchmarkTheoreticalPeak(b *testing.B) {
	var eff units.Bandwidth
	for i := 0; i < b.N; i++ {
		eff = pcie.Gen2x8.EffectiveBandwidth(pcie.DefaultMaxPayload)
	}
	b.ReportMetric(eff.GBps(), "sim-GB/s")
}

// BenchmarkFig7 sweeps the 255-burst local DMA matrix of Fig. 7.
func BenchmarkFig7(b *testing.B) {
	for _, size := range []units.ByteSize{256, 1024, 4096} {
		for _, tg := range []bench.Target{bench.TargetCPU, bench.TargetGPU} {
			for _, dir := range []bench.Dir{bench.DirWrite, bench.DirRead} {
				name := tg.String() + "-" + dir.String() + "-" + size.String()
				b.Run(name, func(b *testing.B) {
					reportBW(b, dir, tg, false, size, 255)
				})
			}
		}
	}
}

// BenchmarkFig8 sweeps the single-descriptor curve of Fig. 8.
func BenchmarkFig8(b *testing.B) {
	for _, size := range []units.ByteSize{4096, 64 * units.KiB, units.MiB} {
		size := size
		b.Run("CPU-write-"+size.String(), func(b *testing.B) {
			reportBW(b, bench.DirWrite, bench.TargetCPU, false, size, 1)
		})
	}
}

// BenchmarkFig9 sweeps the burst-count curve of Fig. 9 at 4 KiB.
func BenchmarkFig9(b *testing.B) {
	for _, count := range []int{1, 4, 16, 64, 255} {
		count := count
		b.Run("CPU-write-4KiB-x"+itoa(count), func(b *testing.B) {
			reportBW(b, bench.DirWrite, bench.TargetCPU, false, 4096, count)
		})
	}
}

// BenchmarkLatencyPIO regenerates the §IV-B1 loopback measurement (782 ns
// in the paper).
func BenchmarkLatencyPIO(b *testing.B) {
	var lat units.Duration
	for i := 0; i < b.N; i++ {
		lat = bench.MeasureLoopbackPIO(benchParams)
	}
	b.ReportMetric(lat.Microseconds(), "sim-us")
}

// BenchmarkFig12 sweeps the remote-write matrix of Fig. 12.
func BenchmarkFig12(b *testing.B) {
	for _, size := range []units.ByteSize{64, 512, 4096} {
		for _, tg := range []bench.Target{bench.TargetCPU, bench.TargetGPU} {
			name := tg.String() + "-remote-write-" + size.String()
			tg := tg
			size := size
			b.Run(name, func(b *testing.B) {
				reportBW(b, bench.DirWrite, tg, true, size, 255)
			})
		}
	}
}

// BenchmarkBaselineIB regenerates the motivating comparison: conventional
// 3-copy GPU-GPU transfers versus TCA.
func BenchmarkBaselineIB(b *testing.B) {
	for _, size := range []units.ByteSize{8, 4096, units.MiB} {
		size := size
		b.Run("conventional-"+size.String(), func(b *testing.B) {
			var lat units.Duration
			for i := 0; i < b.N; i++ {
				lat = bench.MeasureConventionalGPU(benchParams, size)
			}
			b.ReportMetric(lat.Microseconds(), "sim-us")
		})
		b.Run("tca-pipelined-"+size.String(), func(b *testing.B) {
			var lat units.Duration
			for i := 0; i < b.N; i++ {
				lat = bench.MeasureTCAGPU(benchParams, core.Pipelined, size)
			}
			b.ReportMetric(lat.Microseconds(), "sim-us")
		})
	}
}

// BenchmarkAblationPipelinedDMAC compares the paper's two DMAC generations
// on a host-sourced remote put.
func BenchmarkAblationPipelinedDMAC(b *testing.B) {
	for _, mode := range []core.DMAMode{core.TwoPhase, core.Pipelined} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			var lat units.Duration
			for i := 0; i < b.N; i++ {
				lat = bench.MeasureTCAGPU(benchParams, mode, 256*units.KiB)
			}
			b.ReportMetric(lat.Microseconds(), "sim-us")
		})
	}
}

// BenchmarkAblationNTB compares the per-hop cost of PEACH2 routing and NTB
// translation.
func BenchmarkAblationNTB(b *testing.B) {
	var tab *bench.Table
	for i := 0; i < b.N; i++ {
		tab = bench.AblationNTB(benchParams)
	}
	p2, _ := tab.Value("PEACH2 (compare-only routing)", "latency")
	nt, _ := tab.Value("NTB (table translation)", "latency")
	b.ReportMetric(p2, "sim-peach2-us")
	b.ReportMetric(nt, "sim-ntb-us")
}

// BenchmarkAblationPayload measures the MaxPayload sensitivity of the
// chained-write peak.
func BenchmarkAblationPayload(b *testing.B) {
	for _, mp := range []units.ByteSize{128, 256, 512} {
		mp := mp
		b.Run(mp.String(), func(b *testing.B) {
			p := benchParams
			p.MaxPayload = mp
			var bw units.Bandwidth
			for i := 0; i < b.N; i++ {
				bw = bench.MeasureChain(p, bench.DirWrite, bench.TargetCPU, false, 4096, 255)
			}
			b.ReportMetric(bw.GBps(), "sim-GB/s")
		})
	}
}

// BenchmarkAblationImmediate measures the activation saving of a register-
// written descriptor.
func BenchmarkAblationImmediate(b *testing.B) {
	var tab *bench.Table
	for i := 0; i < b.N; i++ {
		tab = bench.AblationImmediate(benchParams)
	}
	saved, _ := tab.Value("512B", "saved")
	b.ReportMetric(saved, "sim-saved-us")
}

// BenchmarkAblationRouting measures worst-case PIO latency under shortest-
// arc vs fixed-east routing on an 8-node ring.
func BenchmarkAblationRouting(b *testing.B) {
	var tab *bench.Table
	for i := 0; i < b.N; i++ {
		tab = bench.AblationRouting(benchParams)
	}
	sa, _ := tab.Value("node 7", "shortest-arc")
	fe, _ := tab.Value("node 7", "fixed-east")
	b.ReportMetric(sa, "sim-shortest-us")
	b.ReportMetric(fe, "sim-east-us")
}

// BenchmarkEngineThroughput measures the simulator itself: how many
// simulated TLP deliveries per wall second the event engine sustains.
func BenchmarkEngineThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bench.MeasureChain(benchParams, bench.DirWrite, bench.TargetCPU, false, 4096, 255)
	}
}

// BenchmarkIBFabric measures the baseline fabric's large-message stream.
func BenchmarkIBFabric(b *testing.B) {
	var bw units.Bandwidth
	for i := 0; i < b.N; i++ {
		bw = bench.MeasureIBStream(benchParams)
	}
	b.ReportMetric(bw.GBps(), "sim-GB/s")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
