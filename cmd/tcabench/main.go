// Command tcabench regenerates the paper's tables and figures.
//
//	tcabench -list               # show every experiment
//	tcabench -exp fig7,fig9      # run selected experiments
//	tcabench -exp all            # run the full evaluation (§IV + ablations)
//	tcabench -exp fig12 -csv     # machine-readable output
//	tcabench -exp all -check     # also apply the shape checks
//	tcabench -metrics table      # dump an instrumented run's metrics snapshot
//	tcabench -bench-json BENCH_PR2.json   # write the headline-number baseline
//	tcabench -perf-json BENCH_PERF.json   # write the engine-performance baseline
//	tcabench -prof pingpong               # events/sec headline + top components by host time
//	tcabench -prof pingpong -cpuprofile cpu.pprof -memprofile heap.pprof
//	tcabench -perfetto trace.json         # spans + telemetry counters for ui.perfetto.dev
//	tcabench -fault linkdown:1e:12us -seed 7   # fault ping-pong + injector counters
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"tca/internal/bench"
	"tca/internal/obsv"
	"tca/internal/prof"
	"tca/internal/tcanet"
	"tca/internal/units"
)

// durToSim converts a wall-clock flag value into simulated time.
func durToSim(d time.Duration) units.Duration {
	return units.Duration(d.Nanoseconds()) * units.Nanosecond
}

func main() {
	os.Exit(run())
}

// run carries the whole command so pprof outputs flush on every exit path
// (os.Exit would skip the CPU-profile stop and heap snapshot).
func run() int {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		list     = flag.Bool("list", false, "list available experiments and exit")
		csv      = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		check    = flag.Bool("check", false, "apply each experiment's paper-shape check")
		cable    = flag.Duration("cable", 0, "override the external-cable latency (e.g. 150ns)")
		parallel = flag.Bool("parallel", false, "run experiments concurrently (identical results; each owns its engine)")
		metrics  = flag.String("metrics", "", "run an instrumented demo workload and dump its metrics snapshot (table | json | prom)")
		benchOut = flag.String("bench-json", "", "measure the headline figures and write the JSON baseline to this path")
		perfOut  = flag.String("perf-json", "", "measure the engine-performance scenarios on a bare engine and write the JSON baseline to this path")
		profSc   = flag.String("prof", "", "profile an engine scenario (pingpong | forward | chain_dma | all): events/sec headline plus the top components by host time")
		profTop  = flag.Int("prof-top", 12, "component rows shown by -prof")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU pprof profile covering the run to this path")
		memProf  = flag.String("memprofile", "", "write an allocs pprof profile taken after the run to this path")
		perfetto = flag.String("perfetto", "", "run the sampled forward-DMA demo and write a Chrome trace_event file to this path")
		faultStr = flag.String("fault", "", "run the fault ping-pong (4-node ring, 0<->2, 10 rounds) under this scenario spec and dump the injector counters")
		seed     = flag.Int64("seed", 1, "fault injector seed (with -fault)")
	)
	flag.Parse()

	if *cpuProf != "" {
		stop, err := prof.StartCPUProfile(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcabench:", err)
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "tcabench:", err)
			}
		}()
	}
	if *memProf != "" {
		defer func() {
			if err := prof.WriteHeapProfile(*memProf); err != nil {
				fmt.Fprintln(os.Stderr, "tcabench:", err)
			}
		}()
	}

	prm := tcanet.DefaultParams
	if *cable > 0 {
		prm.CableProp = durToSim(*cable)
	}

	if *benchOut != "" {
		f, err := os.Create(*benchOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcabench:", err)
			return 1
		}
		werr := bench.CollectBaseline(tcanet.DefaultParams).WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "tcabench:", werr)
			return 1
		}
		fmt.Printf("baseline written: %s\n", *benchOut)
		return 0
	}

	if *perfOut != "" {
		f, err := os.Create(*perfOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcabench:", err)
			return 1
		}
		werr := bench.CollectPerfBaseline(tcanet.DefaultParams).WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "tcabench:", werr)
			return 1
		}
		fmt.Printf("perf baseline written: %s\n", *perfOut)
		return 0
	}

	if *profSc != "" {
		names := []string{*profSc}
		if strings.EqualFold(*profSc, "all") {
			names = bench.PerfScenarioNames
		}
		for i, name := range names {
			known := false
			for _, n := range bench.PerfScenarioNames {
				known = known || n == name
			}
			if !known {
				fmt.Fprintf(os.Stderr, "tcabench: unknown -prof scenario %q (have %s, all)\n",
					name, strings.Join(bench.PerfScenarioNames, ", "))
				return 2
			}
			// Component pprof labels only pay off when a CPU profile is
			// being taken; they cost a goroutine-label swap per event.
			p := prof.New(prof.Options{LabelComponents: *cpuProf != ""})
			st := bench.RunPerfScenario(name, prm, p)
			if i > 0 {
				fmt.Println()
			}
			fmt.Println(st.Headline())
			p.WriteTable(os.Stdout, *profTop)
		}
		return 0
	}

	if *perfetto != "" {
		// Run profiled so the trace carries the engine's cumulative
		// host-time counter track next to the fabric telemetry.
		res := bench.TelemetryForwardProfiled(tcanet.DefaultParams, 4, 0, 2, 4096, 64, units.Microsecond,
			prof.New(prof.Options{}))
		f, err := os.Create(*perfetto)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcabench:", err)
			return 1
		}
		werr := obsv.WritePerfetto(f, res.Set.Recorder().Events(), res.Timeline)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "tcabench:", werr)
			return 1
		}
		fmt.Printf("scenario: %s\nperfetto trace: %s (open in ui.perfetto.dev)\n", res.Scenario, *perfetto)
		return 0
	}

	if *metrics != "" {
		snap := bench.MetricsReport(tcanet.DefaultParams)
		switch *metrics {
		case "table":
			snap.WriteTable(os.Stdout)
		case "json":
			if err := snap.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "tcabench:", err)
				return 1
			}
		case "prom":
			snap.WritePrometheus(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "tcabench: unknown -metrics format %q\n", *metrics)
			return 2
		}
		return 0
	}

	if *faultStr != "" {
		res, err := bench.TracePingPongFault(tcanet.DefaultParams, 4, 0, 2, 10, *faultStr, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcabench:", err)
			return 1
		}
		fmt.Printf("scenario: %s\nend-to-end: %v\nspans: %d (all payloads verified byte-identical)\n\nmetrics:\n",
			res.Scenario, res.EndToEnd, len(res.Spans))
		res.Snapshot.WriteTable(os.Stdout)
		return 0
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("  %-18s %s\n", e.ID, e.Desc)
		}
		return 0
	}

	var selected []bench.Experiment
	if strings.EqualFold(*exp, "all") {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "tcabench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	var tables []*bench.Table
	if *parallel {
		tables = bench.RunParallel(prm, selected)
	}

	failed := 0
	for i, e := range selected {
		var tab *bench.Table
		if *parallel {
			tab = tables[i]
		} else {
			tab = e.Run(prm)
		}
		if *csv {
			if err := tab.CSV(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "tcabench: %s: rendering: %v\n", e.ID, err)
				failed++
			}
			fmt.Println()
		} else if err := tab.Format(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "tcabench: %s: rendering: %v\n", e.ID, err)
			failed++
		}
		if *check && e.Check != nil {
			if err := e.Check(tab); err != nil {
				fmt.Fprintf(os.Stderr, "tcabench: %s: SHAPE CHECK FAILED: %v\n", e.ID, err)
				failed++
			} else {
				fmt.Printf("  shape check: OK\n\n")
			}
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}
