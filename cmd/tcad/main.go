// Command tcad runs the supervised simulation service: an HTTP/JSON
// daemon that accepts scenario specs and sweep requests, schedules them
// onto a worker pool (one sim.Engine per worker at a time), and serves
// results with provenance, retries, backpressure, and a deterministic
// result cache.
//
//	tcad -addr :7421 -workers 8 -checkpoint /var/lib/tcad/queue.json
//
// SIGTERM (or SIGINT) starts a graceful drain: readiness flips to 503,
// in-flight jobs finish within the grace period, the pending queue is
// checkpointed to disk, and the process exits 0. A restart with the same
// -checkpoint completes the remainder.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"tca/internal/tcad"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr        = flag.String("addr", ":7421", "listen address")
		workers     = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		queueCap    = flag.Int("queue", 256, "admission queue capacity per priority lane")
		retries     = flag.Int("retries", 2, "max retries for panicking/transient jobs before quarantine")
		maxEvents   = flag.Uint64("max-events", 50_000_000, "default per-job engine event budget")
		maxHost     = flag.Duration("max-host", 30*time.Second, "default per-job host wall-clock budget")
		verifyEvery = flag.Int("verify-every", 0, "re-verify every Nth cache hit against a fresh run (0 = off)")
		checkpoint  = flag.String("checkpoint", "", "path for the drain checkpoint (empty = no checkpointing)")
		drainGrace  = flag.Duration("drain-grace", 30*time.Second, "how long a drain waits for in-flight jobs")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "tcad: ", log.LstdFlags)
	srv, err := tcad.New(tcad.Config{
		Workers:          *workers,
		QueueCap:         *queueCap,
		MaxRetries:       *retries,
		DefaultMaxEvents: *maxEvents,
		DefaultMaxHost:   *maxHost,
		VerifyEvery:      *verifyEvery,
		CheckpointPath:   *checkpoint,
		DrainGrace:       *drainGrace,
		Logf: func(format string, args ...any) {
			logger.Printf(format, args...)
		},
	})
	if err != nil {
		logger.Printf("startup failed: %v", err)
		return 1
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		logger.Printf("serving on %s (%d workers, queue %d/lane)", *addr, effectiveWorkers(*workers), *queueCap)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		logger.Printf("listener failed: %v", err)
		srv.Close()
		return 1
	case s := <-sig:
		logger.Printf("received %v, draining (grace %v)", s, *drainGrace)
	}

	// Drain protocol: stop admitting (readyz flips to 503 immediately),
	// finish in-flight work, checkpoint the remainder, then close the
	// listener. Clients mid-request still get their responses.
	drainErr := srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("http shutdown: %v", err)
	}
	<-errCh // ListenAndServe returns ErrServerClosed after Shutdown
	if drainErr != nil {
		// A grace-expired drain still checkpointed whatever was pending;
		// report it but exit 0 so orchestrators treat the stop as clean.
		logger.Printf("drain: %v", drainErr)
	}
	logger.Printf("drained, exiting")
	return 0
}

func effectiveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}
