// Command tcafuzz drives the scenario fuzzer: seeded random fabric
// scenarios (topology, DMA/PIO programs, collective rounds, fault
// schedules) run under the conservation ledger and the differential
// replay protocol. Every failing case is shrunk to a minimal spec and
// written out as a replayable file.
//
//	tcafuzz -corpus 200 -seed 1            # the bounded CI smoke
//	tcafuzz -soak -seed 42                 # run until a failure (or ^C)
//	tcafuzz -replay failing.tcaspec        # re-run one committed spec
//	tcafuzz -corpus 50 -break-salvage      # prove the checker catches bugs
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tca/internal/check"
	"tca/internal/scenariogen"
	"tca/internal/sim"
)

func main() {
	var (
		corpus       = flag.Int("corpus", 200, "number of generated scenarios to run")
		seed         = flag.Int64("seed", 1, "master seed for the scenario stream")
		soak         = flag.Bool("soak", false, "run unbounded until a failure (ignores -corpus)")
		out          = flag.String("out", "", "directory for minimized failing specs (default: alongside the binary's cwd)")
		breakSalvage = flag.Bool("break-salvage", false, "inject the deliberate salvage bug (checker must catch it)")
		replay       = flag.String("replay", "", "re-run one spec file instead of generating a corpus")
		verbose      = flag.Bool("v", false, "print every scenario as it runs")
		budgetEvents = flag.Uint64("budget-events", 0, "per-run engine event budget (0 = unlimited; -soak defaults to 50M)")
		budgetHost   = flag.Duration("budget-host", 0, "per-run host wall-clock budget (0 = unlimited; -soak defaults to 30s)")
	)
	flag.Parse()

	// A soak runs unattended: default budgets turn a hypothetical
	// runaway scenario into a skipped case instead of a hung fuzzer.
	if *soak {
		if *budgetEvents == 0 {
			*budgetEvents = 50_000_000
		}
		if *budgetHost == 0 {
			*budgetHost = 30 * time.Second
		}
	}

	opt := check.Options{BreakSalvage: *breakSalvage, MaxEvents: *budgetEvents, MaxHost: *budgetHost}

	if *replay != "" {
		os.Exit(replayFile(*replay, opt))
	}

	master := rand.New(rand.NewSource(*seed))
	var ran, failed, skipped int
	for i := 0; *soak || i < *corpus; i++ {
		caseSeed := master.Int63()
		spec := scenariogen.Generate(caseSeed)
		if *verbose {
			fmt.Printf("--- case %d (seed %d): %d nodes, %d ops, faults=%q\n",
				i, caseSeed, spec.Nodes(), len(spec.Ops), spec.Faults)
		}
		d, err := check.RunDiff(spec, opt)
		ran++
		if err != nil {
			var be *sim.BudgetError
			if errors.As(err, &be) {
				// Budget exhaustion is a skip, not a crash: the case was
				// too big for the allowance, which is exactly what the
				// budget is for. Log it and keep fuzzing.
				skipped++
				fmt.Fprintf(os.Stderr, "tcafuzz: case %d (seed %d) skipped, budget exceeded: %v\n",
					i, caseSeed, be)
				continue
			}
			// Generate only emits Validate-clean specs; any other error
			// here is a fuzzer bug, not a fabric bug.
			fmt.Fprintf(os.Stderr, "tcafuzz: case %d (seed %d): %v\nspec:\n%s",
				i, caseSeed, err, scenariogen.Format(spec))
			os.Exit(2)
		}
		if d.Failed() {
			failed++
			reportFailure(i, caseSeed, spec, d, opt, *out)
			fmt.Printf("\nran %d scenarios, %d failed\n", ran, failed)
			os.Exit(1)
		}
	}
	fmt.Printf("ran %d scenarios, 0 failures, %d budget-skipped (master seed %d)\n", ran, skipped, *seed)
	if *breakSalvage {
		// The flag exists to prove the checker has teeth; a clean sweep
		// with the bug armed means it does not.
		fmt.Fprintln(os.Stderr, "tcafuzz: -break-salvage ran clean — the checker missed the injected bug")
		os.Exit(1)
	}
}

// reportFailure prints the verdict, shrinks the spec while it keeps
// failing the same way, and writes the minimized replayable spec file.
func reportFailure(i int, caseSeed int64, spec scenariogen.Spec, d *check.DiffResult, opt check.Options, out string) {
	fmt.Printf("FAIL case %d (seed %d):\n", i, caseSeed)
	for _, f := range d.Failures {
		fmt.Printf("  %s\n", f)
	}
	fmt.Printf("spec:\n%s", indent(scenariogen.Format(spec)))

	fmt.Println("shrinking...")
	failing := func(c scenariogen.Spec) bool {
		dd, err := check.RunDiff(c, opt)
		return err == nil && dd.Failed()
	}
	small := scenariogen.Shrink(spec, failing)
	fmt.Printf("minimized to %d ops, faults=%q:\n%s",
		len(small.Ops), small.Faults, indent(scenariogen.Format(small)))

	name := fmt.Sprintf("fail-seed%d.tcaspec", caseSeed)
	if out != "" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "tcafuzz:", err)
			return
		}
		name = filepath.Join(out, name)
	}
	if err := os.WriteFile(name, []byte(scenariogen.Format(small)), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "tcafuzz:", err)
		return
	}
	fmt.Printf("wrote %s (re-run with: tcafuzz -replay %s)\n", name, name)
}

// replayFile re-runs one committed spec file and reports its verdict.
func replayFile(path string, opt check.Options) int {
	text, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcafuzz:", err)
		return 2
	}
	spec, err := scenariogen.Parse(string(text))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcafuzz:", err)
		return 2
	}
	d, err := check.RunDiff(spec, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcafuzz:", err)
		return 2
	}
	if d.Failed() {
		fmt.Printf("FAIL %s:\n", path)
		for _, f := range d.Failures {
			fmt.Printf("  %s\n", f)
		}
		fmt.Printf("transcript:\n%s", indent(string(d.Faulty.Transcript)))
		return 1
	}
	fmt.Printf("PASS %s: determinism ok", path)
	if d.MemoryChecked {
		fmt.Printf(", faulty-vs-perfect memory identical")
	}
	fmt.Printf("\n%s", indent(string(d.Faulty.Transcript)))
	return 0
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ") + "\n"
}
