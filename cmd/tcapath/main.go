// Command tcapath is the latency-anatomy report: it runs a fleet of traced
// transactions (multi-round ping-pong or back-to-back chained DMA), charges
// every picosecond of each transaction to one bucket — software, wire,
// switch, DMA engine, or a blocked-on wait cause — and prints the per-stage
// budget table, the fleet percentile ladder (p50/p95/p99/p999), the slowest
// transactions with their blocking causes, and (for ping-pong) the
// measured-vs-analytical model comparison.
//
//	tcapath -scenario pingpong -nodes 4 -src 0 -dst 2 -rounds 8
//	tcapath -scenario chain-dma -size 4096 -count 8 -chains 4
//	tcapath -scenario pingpong -json report.json -check   # CI gate
package main

import (
	"flag"
	"fmt"
	"os"

	"tca/internal/bench"
	"tca/internal/obsv/critpath"
	"tca/internal/tcanet"
	"tca/internal/units"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		scenario = flag.String("scenario", "pingpong", "scenario: pingpong | chain-dma")
		nodes    = flag.Int("nodes", 4, "ring size (pingpong)")
		src      = flag.Int("src", 0, "source node (pingpong)")
		dst      = flag.Int("dst", 2, "destination node (pingpong)")
		rounds   = flag.Int("rounds", 8, "ping-pong round trips")
		size     = flag.Int("size", 4096, "DMA block size in bytes (chain-dma)")
		count    = flag.Int("count", 8, "descriptors per chain (chain-dma)")
		chains   = flag.Int("chains", 4, "back-to-back chains (chain-dma)")
		topK     = flag.Int("top", 5, "slowest transactions to list")
		jsonPath = flag.String("json", "", "write the machine-readable budget report to this path (\"-\" = stdout)")
		check    = flag.Bool("check", false, "exit nonzero if any transaction has unattributed or unbalanced time")
	)
	flag.Parse()

	prm := tcanet.DefaultParams
	var fleet *critpath.Fleet
	var model []critpath.ModelDiff
	switch *scenario {
	case "pingpong":
		if *nodes < 2 || *nodes > 16 {
			fmt.Fprintln(os.Stderr, "tcapath: -nodes must be in [2, 16]")
			return 2
		}
		if *src == *dst || *src < 0 || *dst < 0 || *src >= *nodes || *dst >= *nodes {
			fmt.Fprintln(os.Stderr, "tcapath: need distinct -src/-dst inside the ring")
			return 2
		}
		if *rounds < 1 {
			fmt.Fprintln(os.Stderr, "tcapath: -rounds must be positive")
			return 2
		}
		fleet = bench.FleetPingPong(prm, *nodes, *src, *dst, *rounds)
		m := bench.PingPongModel(prm)
		model = m.CompareFleet(fleet, bench.RingForwardHops(*nodes, *src, *dst))
	case "chain-dma":
		if *count < 1 || *chains < 1 || *size < 1 {
			fmt.Fprintln(os.Stderr, "tcapath: -size, -count and -chains must be positive")
			return 2
		}
		fleet = bench.FleetDMAChains(prm, units.ByteSize(*size), *count, *chains)
	default:
		fmt.Fprintf(os.Stderr, "tcapath: unknown scenario %q\n", *scenario)
		return 2
	}

	if fleet.Evicted > 0 {
		fmt.Fprintf(os.Stderr, "tcapath: WARNING: span ring evicted %d events — budgets may be truncated\n", fleet.Evicted)
	}

	fmt.Printf("scenario: %s\n\n", fleet.Scenario)
	critpath.WriteBudgetTable(os.Stdout, fleet)
	fmt.Println()
	critpath.WriteLadder(os.Stdout, fleet)
	fmt.Println()
	critpath.WriteTopK(os.Stdout, fleet, *topK)
	if len(model) > 0 {
		fmt.Println()
		critpath.WriteModel(os.Stdout, model)
	}

	if *jsonPath != "" {
		report := critpath.ExportReport(fleet, model, *topK)
		out := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tcapath:", err)
				return 1
			}
			defer f.Close()
			out = f
		} else {
			fmt.Println()
		}
		if err := report.WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, "tcapath:", err)
			return 1
		}
		if *jsonPath != "-" {
			fmt.Printf("\nbudget report: %s\n", *jsonPath)
		}
	}

	if *check {
		bad := 0
		for _, b := range fleet.Budgets {
			if !b.Consistent() {
				fmt.Fprintf(os.Stderr, "tcapath: txn %d: buckets sum to %v, end-to-end %v, unattributed %v\n",
					b.Txn, b.Sum(), b.Total, b.Buckets[critpath.BucketUnattributed])
				bad++
			}
		}
		if fleet.Evicted > 0 {
			fmt.Fprintln(os.Stderr, "tcapath: check failed: span ring evicted events")
			return 1
		}
		if bad > 0 {
			fmt.Fprintf(os.Stderr, "tcapath: check failed: %d/%d transactions inconsistent\n", bad, len(fleet.Budgets))
			return 1
		}
		fmt.Printf("\ncheck: all %d transactions partition exactly, nothing unattributed\n", len(fleet.Budgets))
	}
	return 0
}
