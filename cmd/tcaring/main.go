// Command tcaring displays a TCA sub-cluster's address plan (Fig. 4) and
// every chip's routing-register programming (Fig. 5), and can trace one
// packet's path hop by hop.
//
//	tcaring -nodes 4                 # the paper's Fig. 5 example
//	tcaring -nodes 8 -dual           # two rings coupled through Port S
//	tcaring -nodes 8 -trace 0:6      # follow a PIO write node0 → node6
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tca/internal/obsv"
	"tca/internal/pcie"
	"tca/internal/sim"
	"tca/internal/tcanet"
	"tca/internal/units"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 4, "sub-cluster size (2-16)")
		dual    = flag.Bool("dual", false, "build two rings coupled via Port S")
		doTrace = flag.String("trace", "", "trace a PIO write, format src:dst")
	)
	flag.Parse()

	eng := sim.NewEngine()
	var sc *tcanet.SubCluster
	var err error
	if *dual {
		if *nodes%2 != 0 {
			fmt.Fprintln(os.Stderr, "tcaring: -dual needs an even node count")
			os.Exit(2)
		}
		sc, err = tcanet.BuildDualRing(eng, *nodes/2, tcanet.DefaultParams)
	} else {
		sc, err = tcanet.BuildRing(eng, *nodes, tcanet.DefaultParams)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcaring:", err)
		os.Exit(2)
	}

	printPlan(sc)
	printRoutes(sc)

	if *doTrace != "" {
		parts := strings.Split(*doTrace, ":")
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "tcaring: -trace wants src:dst")
			os.Exit(2)
		}
		src, err1 := strconv.Atoi(parts[0])
		dst, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || src == dst || src < 0 || dst < 0 || src >= sc.Nodes() || dst >= sc.Nodes() {
			fmt.Fprintln(os.Stderr, "tcaring: bad -trace nodes")
			os.Exit(2)
		}
		tracePacket(eng, sc, src, dst)
	}
}

// printPlan renders the Fig. 4 address map.
func printPlan(sc *tcanet.SubCluster) {
	p := sc.Plan()
	fmt.Printf("TCA global window (Fig. 4): %v, %v per node, %v per block\n\n",
		p.Region(), p.WindowSize(), p.BlockSize())
	fmt.Printf("  %-6s %-16s %-16s %-16s %-16s\n", "node", "GPU0", "GPU1", "host", "PEACH2 internal")
	for i := 0; i < sc.Nodes(); i++ {
		fmt.Printf("  %-6d %-16v %-16v %-16v %-16v\n", i,
			p.GPUBlock(i, 0).Base, p.GPUBlock(i, 1).Base,
			p.HostBlock(i).Base, p.InternalBlock(i).Base)
	}
	fmt.Println()
}

// printRoutes renders every chip's Fig. 5 rule registers.
func printRoutes(sc *tcanet.SubCluster) {
	fmt.Println("Routing registers (Fig. 5): if (addr & mask) in [lower, upper] -> port")
	for i := 0; i < sc.Nodes(); i++ {
		fmt.Printf("  node %d (%s):\n", i, sc.Chip(i).DevName())
		for j, r := range sc.Chip(i).Routes() {
			fmt.Printf("    rule %d: mask %v  [%v, %v] -> %v\n", j, r.Mask, r.Lower, r.Upper, r.Out)
		}
	}
	fmt.Println()
}

// tracePacket follows one 4-byte PIO store through the fabric using the
// structured span recorder (the same events tcatrace renders).
func tracePacket(eng *sim.Engine, sc *tcanet.SubCluster, src, dst int) {
	set := obsv.NewSet(256)
	sc.Instrument(set)
	buf, err := sc.Node(dst).AllocDMABuffer(64)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcaring:", err)
		os.Exit(1)
	}
	g, err := sc.GlobalHostAddr(dst, buf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tcaring:", err)
		os.Exit(1)
	}
	var seen sim.Time
	sc.Node(dst).Poll(pcie.Range{Base: buf, Size: 4}, func(now sim.Time) { seen = now })
	fmt.Printf("Tracing PIO write node%d -> node%d (global %v):\n", src, dst, g)
	txn := sc.Node(src).StoreTxn(g, []byte{1, 2, 3, 4})
	eng.Run()
	events := set.Recorder().TxnEvents(txn)
	for _, ev := range events {
		fmt.Printf("  %12v  %s\n", units.Duration(ev.At), ev)
	}
	obsv.WriteBreakdown(os.Stdout, obsv.Breakdown(events))
	if seen == 0 {
		fmt.Println("  packet never arrived!")
		os.Exit(1)
	}
	fmt.Printf("  delivered and observed by polling at %v (one-way, incl. poll detect)\n",
		units.Duration(seen))
}
