// Command tcaspec prints the paper's hardware inventory (Tables I and II)
// and the §IV-A theoretical-peak arithmetic as computed from the
// simulator's own PCIe constants.
package main

import (
	"flag"
	"fmt"
	"os"

	"tca/internal/bench"
	"tca/internal/pcie"
)

func main() {
	var formula = flag.Bool("formula", false, "print only the peak-bandwidth derivation")
	flag.Parse()

	if *formula {
		printFormula()
		return
	}
	for _, tab := range []*bench.Table{bench.TableI(), bench.TableII(), bench.TheoreticalPeak()} {
		if err := tab.Format(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tcaspec:", err)
			os.Exit(1)
		}
	}
}

func printFormula() {
	cfg := pcie.Gen2x8
	fmt.Printf("PCIe %v:\n", cfg)
	fmt.Printf("  %.1f GT/s × %d lanes × %.2f (8b/10b) / 8 = %.2f GB/s raw\n",
		cfg.Gen.TransferRate()/1e9, cfg.Lanes, cfg.Gen.EncodingEfficiency(), cfg.RawBandwidth().GBps())
	mp := pcie.DefaultMaxPayload
	fmt.Printf("  per-TLP: %dB payload + %dB overhead (TL %d + seq %d + LCRC %d + framing %d)\n",
		mp, pcie.TLPOverhead, pcie.TLHeaderBytes, pcie.DLLSeqBytes, pcie.DLLLCRCBytes, pcie.PHYFrameBytes)
	fmt.Printf("  effective = %.2f GB/s × %d/%d = %.2f GB/s\n",
		cfg.RawBandwidth().GBps(), mp, mp+pcie.TLPOverhead,
		cfg.EffectiveBandwidth(mp).GBps())
}
