// Command tcasweep runs parameter-sensitivity sweeps over the simulator's
// calibrated constants, separating what the TCA architecture gives from
// what the parameter choices give.
//
// Local mode renders in-process; with -daemon it becomes a batch client
// that submits each sweep to a running tcad daemon and streams results
// back, sharing the daemon's result cache with every other client.
//
//	tcasweep -list
//	tcasweep -sweep issue
//	tcasweep -sweep cable,credits -csv
//	tcasweep -daemon localhost:7421 -sweep all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"tca/internal/bench"
	"tca/internal/tcad"
	"tca/internal/tcanet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tcasweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		sweep  = fs.String("sweep", "all", "comma-separated sweep names, or 'all'")
		list   = fs.Bool("list", false, "list available sweeps and exit")
		csv    = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		daemon = fs.String("daemon", "", "tcad daemon address (host:port); submit sweeps as batch jobs instead of running locally")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	reg := bench.Sweeps()
	if *list {
		for _, name := range bench.SweepNames() {
			fmt.Fprintln(stdout, " ", name)
		}
		return 0
	}

	var names []string
	if strings.EqualFold(*sweep, "all") {
		names = bench.SweepNames()
	} else {
		for _, n := range strings.Split(*sweep, ",") {
			n = strings.TrimSpace(n)
			if _, ok := reg[n]; !ok {
				fmt.Fprintf(stderr, "tcasweep: unknown sweep %q (use -list)\n", n)
				return 2
			}
			names = append(names, n)
		}
	}

	if *daemon != "" {
		return runRemote(*daemon, names, *csv, stdout, stderr)
	}

	// One failing sweep must not silence the rest, and must not let the
	// command exit 0: each render runs supervised, failures are tallied,
	// and the exit code reports them.
	failed := 0
	for _, n := range names {
		if err := renderSweep(reg[n], n, *csv, stdout); err != nil {
			failed++
			fmt.Fprintf(stderr, "tcasweep: sweep %q failed: %v\n", n, err)
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "tcasweep: %d of %d sweeps failed\n", failed, len(names))
		return 1
	}
	return 0
}

// renderSweep builds and renders one sweep under recover(), so a panic
// inside an experiment is reported and counted instead of killing the
// remaining sweeps with a zero exit code.
func renderSweep(fn func(tcanet.Params) *bench.Table, name string, csv bool, w io.Writer) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	tab := fn(tcanet.DefaultParams)
	if csv {
		if err := tab.CSV(w); err != nil {
			return err
		}
		_, err = fmt.Fprintln(w)
		return err
	}
	return tab.Format(w)
}

// runRemote submits each sweep to a tcad daemon, polls to completion,
// and renders the returned tables locally. 503 sheds honor Retry-After.
func runRemote(addr string, names []string, csv bool, stdout, stderr io.Writer) int {
	base := "http://" + addr
	client := &http.Client{Timeout: 30 * time.Second}
	failed := 0
	for _, n := range names {
		tab, err := submitSweep(client, base, n)
		if err != nil {
			failed++
			fmt.Fprintf(stderr, "tcasweep: sweep %q failed: %v\n", n, err)
			continue
		}
		var rerr error
		if csv {
			if rerr = tab.CSV(stdout); rerr == nil {
				_, rerr = fmt.Fprintln(stdout)
			}
		} else {
			rerr = tab.Format(stdout)
		}
		if rerr != nil {
			failed++
			fmt.Fprintf(stderr, "tcasweep: sweep %q failed: %v\n", n, rerr)
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "tcasweep: %d of %d sweeps failed\n", failed, len(names))
		return 1
	}
	return 0
}

// submitSweep pushes one sweep job (retrying sheds per Retry-After) and
// polls its status until a terminal state.
func submitSweep(client *http.Client, base, name string) (*bench.Table, error) {
	body, err := json.Marshal(tcad.Request{Sweep: name, Priority: "sweep"})
	if err != nil {
		return nil, err
	}
	var sub tcad.SubmitResponse
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(base+"/jobs", "application/json", strings.NewReader(string(body)))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if attempt >= 10 {
				return nil, fmt.Errorf("daemon shed the job %d times", attempt+1)
			}
			wait := 2 * time.Second
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				wait = time.Duration(ra) * time.Second
			}
			time.Sleep(wait)
			continue
		}
		err = decodeOrError(resp, &sub)
		if err != nil {
			return nil, err
		}
		break
	}
	deadline := time.Now().Add(10 * time.Minute)
	for time.Now().Before(deadline) {
		var st tcad.Status
		resp, err := client.Get(base + "/jobs/" + strconv.FormatUint(sub.ID, 10))
		if err != nil {
			return nil, err
		}
		if err := decodeOrError(resp, &st); err != nil {
			return nil, err
		}
		switch tcad.State(st.State) {
		case tcad.StateSucceeded:
			var res tcad.SweepResult
			if err := json.Unmarshal(st.Result, &res); err != nil {
				return nil, fmt.Errorf("decoding sweep result: %w", err)
			}
			return res.Table, nil
		case tcad.StateFailed, tcad.StateQuarantined:
			if st.Failure != nil {
				return nil, fmt.Errorf("daemon reports %s: %s", st.Failure.Class, st.Failure.Message)
			}
			return nil, fmt.Errorf("daemon reports state %s", st.State)
		}
		time.Sleep(200 * time.Millisecond)
	}
	return nil, fmt.Errorf("job %d did not finish within 10m", sub.ID)
}

// decodeOrError decodes a 2xx JSON body into out, or turns a non-2xx
// response into an error carrying the body text.
func decodeOrError(resp *http.Response, out any) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		text, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("daemon: %s: %s", resp.Status, strings.TrimSpace(string(text)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
