// Command tcasweep runs parameter-sensitivity sweeps over the simulator's
// calibrated constants, separating what the TCA architecture gives from
// what the parameter choices give.
//
//	tcasweep -list
//	tcasweep -sweep issue
//	tcasweep -sweep cable,credits -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tca/internal/bench"
	"tca/internal/tcanet"
)

func main() {
	var (
		sweep = flag.String("sweep", "all", "comma-separated sweep names, or 'all'")
		list  = flag.Bool("list", false, "list available sweeps and exit")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	reg := bench.Sweeps()
	if *list {
		for _, name := range bench.SweepNames() {
			fmt.Println(" ", name)
		}
		return
	}

	var names []string
	if strings.EqualFold(*sweep, "all") {
		names = bench.SweepNames()
	} else {
		for _, n := range strings.Split(*sweep, ",") {
			n = strings.TrimSpace(n)
			if _, ok := reg[n]; !ok {
				fmt.Fprintf(os.Stderr, "tcasweep: unknown sweep %q (use -list)\n", n)
				os.Exit(2)
			}
			names = append(names, n)
		}
	}
	for _, n := range names {
		tab := reg[n](tcanet.DefaultParams)
		if *csv {
			tab.CSV(os.Stdout)
			fmt.Println()
		} else {
			tab.Format(os.Stdout)
		}
	}
}
