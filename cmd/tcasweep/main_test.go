package main

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "cable") {
		t.Fatalf("list output missing sweeps:\n%s", out.String())
	}
}

func TestRunUnknownSweep(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-sweep", "no-such-sweep"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("stdout gone") }

// A render failure mid-loop must surface as a non-zero exit, not a
// truncated report with exit 0.
func TestRunRenderFailureExitsNonZero(t *testing.T) {
	var errb bytes.Buffer
	if code := run([]string{"-sweep", "cable"}, failWriter{}, &errb); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "failed") {
		t.Fatalf("stderr missing failure report: %s", errb.String())
	}
}
