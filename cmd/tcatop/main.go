// Command tcatop is the fabric's top(1): it runs a sampled scenario,
// prints the hottest telemetry series interval by interval, and closes
// with the bottleneck-attribution verdict — which resource (ring link,
// DMAC engine, or host read path) limited the run, with evidence rows.
//
//	tcatop                                    # link-bound forward-DMA demo
//	tcatop -scenario forward -nodes 8 -dst 4  # longer arc
//	tcatop -scenario pingpong -rounds 50      # latency-bound contrast case
//	tcatop -top 12 -rows 30 -interval 2       # wider table, coarser ticks
package main

import (
	"flag"
	"fmt"
	"os"

	"tca/internal/bench"
	"tca/internal/obsv"
	"tca/internal/prof"
	"tca/internal/tcanet"
	"tca/internal/units"
)

func main() {
	var (
		scenario = flag.String("scenario", "forward", "scenario: forward | pingpong")
		nodes    = flag.Int("nodes", 4, "ring size")
		src      = flag.Int("src", 0, "source node")
		dst      = flag.Int("dst", 2, "destination node")
		size     = flag.Int("size", 4096, "DMA block size in bytes (forward)")
		count    = flag.Int("count", 255, "DMA descriptor count (forward)")
		rounds   = flag.Int("rounds", 20, "ping-pong rounds (pingpong)")
		interval = flag.Float64("interval", 1, "sampling interval in simulated µs")
		top      = flag.Int("top", 8, "number of hottest series columns to print")
		rows     = flag.Int("rows", 20, "maximum table rows (sampling ticks are strided to fit)")
		profile  = flag.Bool("prof", false, "attach the engine self-profiler: close with the events/sec headline and the components ranked by host time")
	)
	flag.Parse()

	if *nodes < 2 || *nodes > 16 {
		fmt.Fprintln(os.Stderr, "tcatop: -nodes must be in [2, 16]")
		os.Exit(2)
	}
	if *src == *dst || *src < 0 || *dst < 0 || *src >= *nodes || *dst >= *nodes {
		fmt.Fprintln(os.Stderr, "tcatop: need distinct -src/-dst inside the ring")
		os.Exit(2)
	}
	if *interval <= 0 {
		fmt.Fprintln(os.Stderr, "tcatop: -interval must be positive")
		os.Exit(2)
	}
	iv := units.Duration(*interval * float64(units.Microsecond))

	prm := tcanet.DefaultParams
	var p *prof.Profiler
	if *profile {
		p = prof.New(prof.Options{})
	}
	var res *bench.TelemetryResult
	switch *scenario {
	case "forward":
		res = bench.TelemetryForwardProfiled(prm, *nodes, *src, *dst, units.ByteSize(*size), *count, iv, p)
	case "pingpong":
		res = bench.TelemetryPingPongProfiled(prm, *nodes, *src, *dst, *rounds, iv, p)
	default:
		fmt.Fprintf(os.Stderr, "tcatop: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	fmt.Printf("scenario: %s\n", res.Scenario)
	if res.Moved > 0 {
		bw := units.Rate(res.Moved, res.Elapsed)
		fmt.Printf("moved %v in %v (%.3f GB/s)\n", res.Moved, res.Elapsed, bw.GBps())
	} else {
		fmt.Printf("elapsed %v\n", res.Elapsed)
	}
	fmt.Println()

	hot := obsv.TopSeries(res.Timeline.Series(), *top)
	if len(hot) == 0 {
		fmt.Println("no samples recorded (scenario shorter than one interval?)")
	} else {
		obsv.WriteSeriesTable(os.Stdout, hot, *rows)
		fmt.Println()
	}
	res.Report.WriteReport(os.Stdout)

	if res.Prof != nil {
		fmt.Println()
		fmt.Println(res.Stats.Headline())
		res.Prof.WriteTable(os.Stdout, *top)
	}
}
