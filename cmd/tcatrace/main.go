// Command tcatrace inspects the fabric with the observability layer: it
// runs a small scenario with transaction tracing on and prints each traced
// span's hop-by-hop latency breakdown (the Fig. 9–10 decomposition view)
// plus a metrics snapshot.
//
//	tcatrace -scenario pingpong -nodes 4 -src 0 -dst 2
//	tcatrace -scenario forward -nodes 8 -dst 3 -events
//	tcatrace -scenario dma -size 4096 -count 8 -metrics json
//	tcatrace -scenario pingpong -critpath            # per-span latency budgets
//	tcatrace -scenario dma -json                     # machine-readable output
//	tcatrace -scenario pingpong -perfetto trace.json # open in ui.perfetto.dev
//	tcatrace -scenario pingpong -fault linkdown:1e:12us -seed 7 -rounds 10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tca/internal/bench"
	"tca/internal/obsv"
	"tca/internal/obsv/critpath"
	"tca/internal/tcanet"
	"tca/internal/units"
)

// jsonSpan is one span in tcatrace's machine-readable output.
type jsonSpan struct {
	Txn    uint64       `json:"txn"`
	Events []obsv.Event `json:"events"`
	Hops   []jsonHop    `json:"hops"`
	// Budget is the span's critical-path latency anatomy in nanoseconds
	// per bucket; it sums to total_ns exactly.
	Budget  map[string]float64 `json:"budget_ns"`
	TotalNS float64            `json:"total_ns"`
}

// jsonHop is one breakdown hop in machine-readable form.
type jsonHop struct {
	From   string  `json:"from"`
	To     string  `json:"to"`
	Bucket string  `json:"bucket"`
	DurNS  float64 `json:"dur_ns"`
}

// jsonTrace is the -json document.
type jsonTrace struct {
	Schema     string     `json:"schema"`
	Scenario   string     `json:"scenario"`
	EndToEndNS float64    `json:"end_to_end_ns"`
	Evicted    uint64     `json:"spans_evicted"`
	Spans      []jsonSpan `json:"spans"`
}

// traceJSON freezes a trace result into its -json document.
func traceJSON(tr *bench.TraceResult) jsonTrace {
	out := jsonTrace{
		Schema:     "tca-trace/1",
		Scenario:   tr.Scenario,
		EndToEndNS: tr.EndToEnd.Nanoseconds(),
		Evicted:    tr.Set.Recorder().Evicted(),
	}
	for _, sp := range tr.Spans {
		b := critpath.BudgetOf(sp.Events)
		js := jsonSpan{Txn: sp.Txn, Events: sp.Events, TotalNS: sp.Total.Nanoseconds(),
			Budget: map[string]float64{}}
		for i := critpath.Bucket(0); i < critpath.NumBuckets; i++ {
			if d := b.Buckets[i]; d != 0 {
				js.Budget[i.String()] = d.Nanoseconds()
			}
		}
		for _, h := range sp.Hops {
			js.Hops = append(js.Hops, jsonHop{
				From:   h.From.Where + ":" + h.From.Stage.String(),
				To:     h.To.Where + ":" + h.To.Stage.String(),
				Bucket: critpath.Classify(h).String(),
				DurNS:  h.Dur.Nanoseconds(),
			})
		}
		out.Spans = append(out.Spans, js)
	}
	return out
}

func main() {
	var (
		scenario = flag.String("scenario", "pingpong", "scenario: pingpong | forward | dma")
		nodes    = flag.Int("nodes", 4, "ring size (pingpong/forward)")
		src      = flag.Int("src", 0, "source node")
		dst      = flag.Int("dst", 1, "destination node")
		size     = flag.Int("size", 4096, "DMA block size in bytes (dma)")
		count    = flag.Int("count", 8, "DMA descriptor count (dma)")
		metrics  = flag.String("metrics", "table", "metrics snapshot format: table | json | prom | none")
		events   = flag.Bool("events", false, "also dump each span's raw events")
		perfetto = flag.String("perfetto", "", "write the spans as a Chrome trace_event file to this path")
		faultStr = flag.String("fault", "", "fault scenario spec, e.g. linkdown:1e:12us or ber:1e-7,drop:0.01 (pingpong only)")
		seed     = flag.Int64("seed", 1, "fault injector seed (with -fault)")
		rounds   = flag.Int("rounds", 10, "ping-pong rounds (with -fault)")
		asJSON   = flag.Bool("json", false, "emit the spans, hops, and budgets as one JSON document instead of tables")
		crit     = flag.Bool("critpath", false, "also print each span's critical-path latency budget")
	)
	flag.Parse()

	if *nodes < 2 || *nodes > 16 {
		fmt.Fprintln(os.Stderr, "tcatrace: -nodes must be in [2, 16]")
		os.Exit(2)
	}
	if *src == *dst || *src < 0 || *dst < 0 || *src >= *nodes || *dst >= *nodes {
		fmt.Fprintln(os.Stderr, "tcatrace: need distinct -src/-dst inside the ring")
		os.Exit(2)
	}
	switch *metrics {
	case "table", "json", "prom", "none":
	default:
		fmt.Fprintf(os.Stderr, "tcatrace: unknown metrics format %q\n", *metrics)
		os.Exit(2)
	}

	if *faultStr != "" && *scenario != "pingpong" {
		fmt.Fprintf(os.Stderr, "tcatrace: -fault is only supported for -scenario pingpong (got %q)\n", *scenario)
		os.Exit(2)
	}

	prm := tcanet.DefaultParams
	var tr *bench.TraceResult
	switch *scenario {
	case "pingpong":
		if *faultStr != "" {
			var err error
			tr, err = bench.TracePingPongFault(prm, *nodes, *src, *dst, *rounds, *faultStr, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tcatrace:", err)
				os.Exit(1)
			}
			break
		}
		tr = bench.TracePingPong(prm, *nodes, *src, *dst)
	case "forward":
		tr = bench.TraceForward(prm, *nodes, *src, *dst)
	case "dma":
		tr = bench.TraceDMA(prm, units.ByteSize(*size), *count)
	default:
		fmt.Fprintf(os.Stderr, "tcatrace: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	if evicted := tr.Set.Recorder().Evicted(); evicted > 0 {
		fmt.Fprintf(os.Stderr, "tcatrace: WARNING: span ring evicted %d events — breakdowns may be truncated\n", evicted)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(traceJSON(tr)); err != nil {
			fmt.Fprintln(os.Stderr, "tcatrace:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("scenario: %s\n\n", tr.Scenario)
	for i, sp := range tr.Spans {
		fmt.Printf("span %d (txn %d), %d events, hop sum %v:\n", i, sp.Txn, len(sp.Events), sp.Total)
		obsv.WriteBreakdown(os.Stdout, sp.Hops)
		if *crit {
			b := critpath.BudgetOf(sp.Events)
			fmt.Println("  latency budget:")
			for j := critpath.Bucket(0); j < critpath.NumBuckets; j++ {
				if d := b.Buckets[j]; d != 0 {
					fmt.Printf("    %-26s %12v\n", j, d)
				}
			}
			if !b.Consistent() {
				fmt.Println("    WARNING: budget does not partition the hop sum")
			}
		}
		if *events {
			for _, ev := range sp.Events {
				fmt.Printf("    %12v  %s\n", units.Duration(ev.At), ev)
			}
		}
		fmt.Println()
	}
	fmt.Printf("end-to-end: %v\n", tr.EndToEnd)

	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcatrace:", err)
			os.Exit(1)
		}
		werr := obsv.WritePerfetto(f, tr.Set.Recorder().Events(), nil)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "tcatrace:", werr)
			os.Exit(1)
		}
		fmt.Printf("perfetto trace: %s (open in ui.perfetto.dev)\n", *perfetto)
	}

	switch *metrics {
	case "none":
	case "table":
		fmt.Println("\nmetrics:")
		tr.Snapshot.WriteTable(os.Stdout)
	case "json":
		fmt.Println()
		if err := tr.Snapshot.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tcatrace:", err)
			os.Exit(1)
		}
	case "prom":
		fmt.Println()
		tr.Snapshot.WritePrometheus(os.Stdout)
	}
}
