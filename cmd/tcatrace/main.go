// Command tcatrace inspects the fabric with the observability layer: it
// runs a small scenario with transaction tracing on and prints each traced
// span's hop-by-hop latency breakdown (the Fig. 9–10 decomposition view)
// plus a metrics snapshot.
//
//	tcatrace -scenario pingpong -nodes 4 -src 0 -dst 2
//	tcatrace -scenario forward -nodes 8 -dst 3 -events
//	tcatrace -scenario dma -size 4096 -count 8 -metrics json
//	tcatrace -scenario pingpong -perfetto trace.json   # open in ui.perfetto.dev
//	tcatrace -scenario pingpong -fault linkdown:1e:12us -seed 7 -rounds 10
package main

import (
	"flag"
	"fmt"
	"os"

	"tca/internal/bench"
	"tca/internal/obsv"
	"tca/internal/tcanet"
	"tca/internal/units"
)

func main() {
	var (
		scenario = flag.String("scenario", "pingpong", "scenario: pingpong | forward | dma")
		nodes    = flag.Int("nodes", 4, "ring size (pingpong/forward)")
		src      = flag.Int("src", 0, "source node")
		dst      = flag.Int("dst", 1, "destination node")
		size     = flag.Int("size", 4096, "DMA block size in bytes (dma)")
		count    = flag.Int("count", 8, "DMA descriptor count (dma)")
		metrics  = flag.String("metrics", "table", "metrics snapshot format: table | json | prom | none")
		events   = flag.Bool("events", false, "also dump each span's raw events")
		perfetto = flag.String("perfetto", "", "write the spans as a Chrome trace_event file to this path")
		faultStr = flag.String("fault", "", "fault scenario spec, e.g. linkdown:1e:12us or ber:1e-7,drop:0.01 (pingpong only)")
		seed     = flag.Int64("seed", 1, "fault injector seed (with -fault)")
		rounds   = flag.Int("rounds", 10, "ping-pong rounds (with -fault)")
	)
	flag.Parse()

	if *nodes < 2 || *nodes > 16 {
		fmt.Fprintln(os.Stderr, "tcatrace: -nodes must be in [2, 16]")
		os.Exit(2)
	}
	if *src == *dst || *src < 0 || *dst < 0 || *src >= *nodes || *dst >= *nodes {
		fmt.Fprintln(os.Stderr, "tcatrace: need distinct -src/-dst inside the ring")
		os.Exit(2)
	}
	switch *metrics {
	case "table", "json", "prom", "none":
	default:
		fmt.Fprintf(os.Stderr, "tcatrace: unknown metrics format %q\n", *metrics)
		os.Exit(2)
	}

	if *faultStr != "" && *scenario != "pingpong" {
		fmt.Fprintf(os.Stderr, "tcatrace: -fault is only supported for -scenario pingpong (got %q)\n", *scenario)
		os.Exit(2)
	}

	prm := tcanet.DefaultParams
	var tr *bench.TraceResult
	switch *scenario {
	case "pingpong":
		if *faultStr != "" {
			var err error
			tr, err = bench.TracePingPongFault(prm, *nodes, *src, *dst, *rounds, *faultStr, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tcatrace:", err)
				os.Exit(1)
			}
			break
		}
		tr = bench.TracePingPong(prm, *nodes, *src, *dst)
	case "forward":
		tr = bench.TraceForward(prm, *nodes, *src, *dst)
	case "dma":
		tr = bench.TraceDMA(prm, units.ByteSize(*size), *count)
	default:
		fmt.Fprintf(os.Stderr, "tcatrace: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	fmt.Printf("scenario: %s\n\n", tr.Scenario)
	for i, sp := range tr.Spans {
		fmt.Printf("span %d (txn %d), %d events, hop sum %v:\n", i, sp.Txn, len(sp.Events), sp.Total)
		obsv.WriteBreakdown(os.Stdout, sp.Hops)
		if *events {
			for _, ev := range sp.Events {
				fmt.Printf("    %12v  %s\n", units.Duration(ev.At), ev)
			}
		}
		fmt.Println()
	}
	fmt.Printf("end-to-end: %v\n", tr.EndToEnd)

	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcatrace:", err)
			os.Exit(1)
		}
		werr := obsv.WritePerfetto(f, tr.Set.Recorder().Events(), nil)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "tcatrace:", werr)
			os.Exit(1)
		}
		fmt.Printf("perfetto trace: %s (open in ui.perfetto.dev)\n", *perfetto)
	}

	switch *metrics {
	case "none":
	case "table":
		fmt.Println("\nmetrics:")
		tr.Snapshot.WriteTable(os.Stdout)
	case "json":
		fmt.Println()
		if err := tr.Snapshot.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tcatrace:", err)
			os.Exit(1)
		}
	case "prom":
		fmt.Println()
		tr.Snapshot.WritePrometheus(os.Stdout)
	}
}
