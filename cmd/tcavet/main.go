// Command tcavet runs the project's custom static-analysis suite — the
// invariants that make the simulator's paper reproductions trustworthy
// but that go vet cannot see:
//
//	simdeterminism  no wall clock, no unseeded randomness, no
//	                order-sensitive work inside map iteration
//	unittypes       no raw conversions mixing sim.Time / units.* types,
//	                no float64(unit) outside stats/formatting code
//	panicstyle      hardware-model panics carry the component name
//	nilprobe        obsv probe/sampler/series methods nil-guard so the
//	                disabled path stays a zero-alloc no-op
//	heapsafety      engine callbacks spawn no goroutines, never re-enter
//	                the engine, and capture no loop variables
//
// Usage:
//
//	go run ./cmd/tcavet ./...
//	go run ./cmd/tcavet -list
//	go run ./cmd/tcavet ./internal/peach2 ./internal/pcie
//
// Exit status: 0 clean, 1 diagnostics found, 2 load/usage error.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tca/internal/analysis/framework"
	"tca/internal/analysis/heapsafety"
	"tca/internal/analysis/nilprobe"
	"tca/internal/analysis/panicstyle"
	"tca/internal/analysis/simdeterminism"
	"tca/internal/analysis/unittypes"
)

var suite = []*framework.Analyzer{
	simdeterminism.Analyzer,
	unittypes.Analyzer,
	panicstyle.Analyzer,
	nilprobe.Analyzer,
	heapsafety.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	only := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%s\n%s\n\n", a.Name, indent(a.Doc))
		}
		return
	}

	active := suite
	if *only != "" {
		byName := map[string]*framework.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		active = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "tcavet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			active = append(active, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, modPath, err := findModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcavet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := framework.LoadModule(root, modPath, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcavet: %v\n", err)
		os.Exit(2)
	}

	found := 0
	for _, pkg := range pkgs {
		diags, err := framework.Run(pkg, active)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcavet: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			rel, relErr := filepath.Rel(root, pos.Filename)
			if relErr != nil {
				rel = pos.Filename
			}
			fmt.Printf("%s:%d:%d: %s: %s\n", rel, pos.Line, pos.Column, d.Analyzer.Name, d.Message)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "tcavet: %d diagnostic(s)\n", found)
		os.Exit(1)
	}
}

// findModule locates go.mod upward from the working directory and reads
// the module path from it.
func findModule() (root, modPath string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		modFile := filepath.Join(dir, "go.mod")
		if _, statErr := os.Stat(modFile); statErr == nil {
			path, parseErr := modulePath(modFile)
			if parseErr != nil {
				return "", "", parseErr
			}
			return dir, path, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

func modulePath(modFile string) (string, error) {
	f, err := os.Open(modFile)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("%s: no module directive", modFile)
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(strings.TrimSpace(s), "\n", "\n    ")
}
