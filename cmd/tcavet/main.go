// Command tcavet runs the project's custom static-analysis suite — the
// invariants that make the simulator's paper reproductions trustworthy
// but that go vet cannot see:
//
//	simdeterminism  no wall clock, no unseeded randomness, no
//	                order-sensitive work inside map iteration
//	unittypes       no raw conversions mixing sim.Time / units.* types,
//	                no float64(unit) outside stats/formatting code
//	panicstyle      hardware-model panics carry the component name
//	nilprobe        obsv probe/sampler/series methods nil-guard so the
//	                disabled path stays a zero-alloc no-op
//	heapsafety      engine callbacks spawn no goroutines, never re-enter
//	                the engine, and capture no loop variables
//	poolsafety      //tca:pooled objects drawn with Get reach exactly one
//	                Release; no use after release, no double release, no
//	                un-Pinned escape into fields or closures
//	sharedstate     component fields and package-level vars are written
//	                from one component domain only (or under a lock)
//	lockorder       nested mutexes follow one global acquisition order;
//	                fields written under a lock are not read without it
//
// The last three use cross-package facts: a marker or edge discovered in
// a type's defining package travels with it into every importer, so the
// whole module is loaded in dependency order and fact-producing analyzers
// run over all of it even when only a subset of packages is requested.
//
// Usage:
//
//	go run ./cmd/tcavet ./...
//	go run ./cmd/tcavet -list
//	go run ./cmd/tcavet -json ./... > tcavet.json
//	go run ./cmd/tcavet -github ./internal/peach2 ./internal/pcie
//
// Exit status: 0 clean, 1 diagnostics found, 2 load/usage error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tca/internal/analysis/framework"
	"tca/internal/analysis/heapsafety"
	"tca/internal/analysis/lockorder"
	"tca/internal/analysis/nilprobe"
	"tca/internal/analysis/panicstyle"
	"tca/internal/analysis/poolsafety"
	"tca/internal/analysis/sharedstate"
	"tca/internal/analysis/simdeterminism"
	"tca/internal/analysis/unittypes"
)

var suite = []*framework.Analyzer{
	simdeterminism.Analyzer,
	unittypes.Analyzer,
	panicstyle.Analyzer,
	nilprobe.Analyzer,
	heapsafety.Analyzer,
	poolsafety.Analyzer,
	sharedstate.Analyzer,
	lockorder.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	only := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON report on stdout")
	github := flag.Bool("github", false, "emit GitHub Actions ::error annotations alongside the plain report")
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%s\n%s\n\n", a.Name, indent(a.Doc))
		}
		return
	}

	active := suite
	if *only != "" {
		byName := map[string]*framework.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		active = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "tcavet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			active = append(active, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, modPath, err := findModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcavet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := framework.LoadModule(root, modPath, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcavet: %v\n", err)
		os.Exit(2)
	}

	// Fact-producing analyzers must see every package (a //tca:pooled
	// marker lives in the defining package, not the one being checked),
	// so the suite runs over the whole module in dependency order and
	// diagnostics are reported only for the packages that matched the
	// command-line patterns.
	suite := framework.NewSuite(active)
	report := []jsonDiagnostic{} // non-nil so -json always emits an array
	for _, pkg := range pkgs {
		diags, err := suite.Run(pkg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tcavet: %v\n", err)
			os.Exit(2)
		}
		if !pkg.Matched {
			continue
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			rel, relErr := filepath.Rel(root, pos.Filename)
			if relErr != nil {
				rel = pos.Filename
			}
			report = append(report, jsonDiagnostic{
				File:     filepath.ToSlash(rel),
				Line:     pos.Line,
				Column:   pos.Column,
				Analyzer: d.Analyzer.Name,
				Message:  d.Message,
			})
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport{Diagnostics: report, Count: len(report)}); err != nil {
			fmt.Fprintf(os.Stderr, "tcavet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range report {
			fmt.Printf("%s:%d:%d: %s: %s\n", d.File, d.Line, d.Column, d.Analyzer, d.Message)
		}
	}
	if *github {
		for _, d := range report {
			// ::error annotations surface on the PR diff; the message is
			// escaped per the workflow-command rules.
			fmt.Printf("::error file=%s,line=%d,col=%d,title=tcavet/%s::%s\n",
				d.File, d.Line, d.Column, d.Analyzer, githubEscape(d.Message))
		}
	}
	if len(report) > 0 {
		fmt.Fprintf(os.Stderr, "tcavet: %d diagnostic(s)\n", len(report))
		os.Exit(1)
	}
}

// jsonReport is the machine-readable output of -json, consumed by CI to
// attach the report as a build artifact.
type jsonReport struct {
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
	Count       int              `json:"count"`
}

type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// githubEscape encodes the characters the workflow-command parser treats
// specially in annotation messages.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// findModule locates go.mod upward from the working directory and reads
// the module path from it.
func findModule() (root, modPath string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		modFile := filepath.Join(dir, "go.mod")
		if _, statErr := os.Stat(modFile); statErr == nil {
			path, parseErr := modulePath(modFile)
			if parseErr != nil {
				return "", "", parseErr
			}
			return dir, path, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

func modulePath(modFile string) (string, error) {
	f, err := os.Open(modFile)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("%s: no module directive", modFile)
}

func indent(s string) string {
	return "    " + strings.ReplaceAll(strings.TrimSpace(s), "\n", "\n    ")
}
