package tca_test

import (
	"fmt"
	"log"

	"tca"
)

// The canonical TCA workflow: build a sub-cluster, pin GPU memory on two
// nodes, and move data with the cross-node cudaMemcpyPeer extension.
func Example() {
	cl, err := tca.NewCluster(4, tca.WithDMAMode(tca.Pipelined))
	if err != nil {
		log.Fatal(err)
	}
	src, _ := cl.AllocGPU(0, 0, 64*tca.KiB)
	dst, _ := cl.AllocGPU(2, 1, 64*tca.KiB)
	payload := []byte("tightly coupled accelerators")
	if err := cl.WriteGPU(src, 0, payload); err != nil {
		log.Fatal(err)
	}
	if _, err := cl.MemcpyPeerSync(dst, 0, src, 0, tca.ByteSize(len(payload))); err != nil {
		log.Fatal(err)
	}
	got, _ := cl.ReadGPU(dst, 0, tca.ByteSize(len(payload)))
	fmt.Printf("%s\n", got)
	// Output: tightly coupled accelerators
}

// PIO is the short-message mode: a CPU store lands in a remote node's host
// memory in under a microsecond (the paper's §IV-B1 measures 782 ns through
// two chips). The simulation is deterministic, so the latency is exact.
func ExampleCluster_PIOPut() {
	cl, err := tca.NewCluster(2)
	if err != nil {
		log.Fatal(err)
	}
	buf, _ := cl.AllocHost(1, 4*tca.KiB)
	dst, _ := cl.GlobalHost(buf, 0)
	var seen tca.Duration
	cl.WaitFlag(buf, 0, func(at tca.Duration) { seen = at })
	if err := cl.PIOPut(0, dst, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		log.Fatal(err)
	}
	cl.Run()
	fmt.Println(seen)
	// Output: 786.1ns
}

// The experiment registry regenerates every table and figure of the paper.
func ExampleFindExperiment() {
	e, ok := tca.FindExperiment("Fig9")
	if !ok {
		log.Fatal("missing")
	}
	tab := e.Run(tca.DefaultParams())
	four, _ := tab.Value("4", "CPU write")
	max, _ := tab.Value("255", "CPU write")
	fmt.Printf("4 requests reach %.0f%% of the maximum\n", 100*four/max)
	// Output: 4 requests reach 70% of the maximum
}
