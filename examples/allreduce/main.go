// Allreduce: a ring allreduce (sum) over an 8-node TCA sub-cluster,
// entirely on TCA primitives — chained-DMA puts for the data and PIO flag
// stores for synchronization, with no MPI underneath ("applications on the
// TCA sub-cluster do not rely on the MPI software stack", §V).
//
// The classic algorithm: n-1 reduce-scatter steps, each node streaming one
// vector chunk to its ring successor and accumulating the chunk arriving
// from its predecessor; then n-1 allgather steps circulating the fully
// reduced chunks. Flags are delivered *after* the data chain's completion
// interrupt, so the driver-level ordering guarantee (remote host writes are
// flushed before the IRQ) makes the data race-free.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"tca"
)

const (
	n      = 8   // nodes in the ring
	chunkN = 128 // float64 per chunk
	chunk  = chunkN * 8
	vecLen = n * chunk // whole vector, one chunk per node
)

// peer is a node-local view of the collective: its vector, its inbox, and
// its step counters.
type peer struct {
	rank  int
	vec   tca.HostBuffer // n chunks
	inbox tca.HostBuffer // staging chunk + flag word
	step  int            // completed incoming steps (1..2(n-1))
	sent  int            // completed outgoing steps
}

func main() {
	cl, err := tca.NewCluster(n, tca.WithDMAMode(tca.Pipelined))
	if err != nil {
		log.Fatal(err)
	}
	peers := make([]*peer, n)
	for i := range peers {
		vec, err := cl.AllocHost(i, vecLen)
		if err != nil {
			log.Fatal(err)
		}
		inbox, err := cl.AllocHost(i, chunk+8)
		if err != nil {
			log.Fatal(err)
		}
		peers[i] = &peer{rank: i, vec: vec, inbox: inbox}
		// v_i[j] = (i+1) + j, so the reduced vector is n(n+1)/2 + n*j.
		buf := make([]byte, vecLen)
		for j := 0; j < n*chunkN; j++ {
			binary.LittleEndian.PutUint64(buf[j*8:], math.Float64bits(float64(i+1)+float64(j)))
		}
		if err := cl.WriteHost(vec, 0, buf); err != nil {
			log.Fatal(err)
		}
	}

	done := 0
	for _, p := range peers {
		p := p
		// Persistent watch on the inbox flag: each firing is one
		// incoming step from the ring predecessor.
		cl.WaitFlag(p.inbox, chunk, func(at tca.Duration) {
			onFlag(cl, peers, p, &done)
		})
	}

	start := cl.Now()
	for _, p := range peers {
		sendStep(cl, peers, p, 1)
	}
	cl.Run()
	if done != n {
		log.Fatalf("only %d/%d nodes finished", done, n)
	}
	elapsed := cl.Now() - start

	// Verify every element on every node.
	want := float64(n*(n+1)) / 2
	for _, p := range peers {
		buf, err := cl.ReadHost(p.vec, 0, vecLen)
		if err != nil {
			log.Fatal(err)
		}
		for j := 0; j < n*chunkN; j++ {
			got := math.Float64frombits(binary.LittleEndian.Uint64(buf[j*8:]))
			if got != want+float64(n*j) {
				log.Fatalf("node %d element %d: got %v want %v", p.rank, j, got, want+float64(n*j))
			}
		}
	}
	fmt.Printf("ring allreduce over %d nodes, %d float64 (%d bytes): %v\n",
		n, n*chunkN, vecLen, elapsed)
	fmt.Printf("  %d steps (%d reduce-scatter + %d allgather), data by chained DMA put, sync by PIO flags\n",
		2*(n-1), n-1, n-1)
	fmt.Println("  all elements verified on every node — no MPI anywhere in the path")
}

// chunkIndexToSend returns which chunk rank emits at 1-based step s.
func chunkIndexToSend(rank, s int) int {
	if s <= n-1 { // reduce-scatter
		return ((rank-(s-1))%n + n) % n
	}
	// allgather: at step n the node emits the chunk it fully reduced,
	// (rank+1) mod n, then keeps forwarding what it just received.
	return ((rank+1-(s-n))%n + n) % n
}

// sendStep streams this node's step-s chunk into its successor's inbox,
// then (after the chain's completion interrupt — data flushed) raises the
// successor's flag with the step number via PIO.
func sendStep(cl *tca.Cluster, peers []*peer, p *peer, s int) {
	if s > 2*(n-1) {
		return
	}
	next := peers[(p.rank+1)%n]
	ci := chunkIndexToSend(p.rank, s)
	flagGlobal, err := cl.GlobalHost(next.inbox, chunk)
	if err != nil {
		log.Fatal(err)
	}
	err = cl.PutToHost(next.inbox, 0, p.rank, p.vec.Bus+tca.Addr(ci*chunk), chunk,
		wrapDone(func() {
			p.sent = s
			if err := cl.WriteFlag(p.rank, flagGlobal, uint64(s)); err != nil {
				log.Fatal(err)
			}
		}))
	if err != nil {
		log.Fatal(err)
	}
}

// onFlag handles one incoming step: fold or store the staged chunk, then
// send the next step once both the matching send and receive are done.
func onFlag(cl *tca.Cluster, peers []*peer, p *peer, done *int) {
	flagBytes, err := cl.ReadHost(p.inbox, chunk, 8)
	if err != nil {
		log.Fatal(err)
	}
	s := int(binary.LittleEndian.Uint64(flagBytes))
	if s != p.step+1 {
		log.Fatalf("node %d: flag for step %d while at step %d", p.rank, s, p.step)
	}
	p.step = s

	// The predecessor sent chunk chunkIndexToSend(rank-1, s).
	ci := chunkIndexToSend((p.rank-1+n)%n, s)
	in, err := cl.ReadHost(p.inbox, 0, chunk)
	if err != nil {
		log.Fatal(err)
	}
	if s <= n-1 {
		// Reduce-scatter: accumulate into our copy of that chunk.
		cur, err := cl.ReadHost(p.vec, tca.ByteSize(ci*chunk), chunk)
		if err != nil {
			log.Fatal(err)
		}
		for j := 0; j < chunkN; j++ {
			a := math.Float64frombits(binary.LittleEndian.Uint64(cur[j*8:]))
			b := math.Float64frombits(binary.LittleEndian.Uint64(in[j*8:]))
			binary.LittleEndian.PutUint64(cur[j*8:], math.Float64bits(a+b))
		}
		in = cur
	}
	if err := cl.WriteHost(p.vec, tca.ByteSize(ci*chunk), in); err != nil {
		log.Fatal(err)
	}

	if s == 2*(n-1) {
		*done++
		return
	}
	sendStep(cl, peers, p, s+1)
}

// wrapDone adapts a plain closure to the facade's completion callback.
func wrapDone(fn func()) func(tca.Duration) {
	return func(tca.Duration) { fn() }
}
