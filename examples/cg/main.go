// CG: a distributed conjugate-gradient solve of the 1-D Poisson equation
// across a TCA sub-cluster — halo exchange by TCA put+flag, dot products by
// the MPI-free ring allreduce, no MPI stack anywhere (§V, §VI).
//
// This traffic profile — thousands of 8-byte halo cells and scalar
// reductions — is exactly the short-message regime the TCA architecture
// was built for.
package main

import (
	"fmt"
	"log"
	"math"

	"tca"
	"tca/internal/coll"
	"tca/internal/solver"
)

func main() {
	const nodes = 8
	const N = 256

	cl, err := tca.NewCluster(nodes, tca.WithDMAMode(tca.Pipelined))
	if err != nil {
		log.Fatal(err)
	}
	cc, err := coll.New(cl.Comm())
	if err != nil {
		log.Fatal(err)
	}
	cg, err := solver.New(cl.Comm(), cc, N)
	if err != nil {
		log.Fatal(err)
	}

	// Manufacture a solution, build b = A x*, and solve from zero.
	xStar := make([]float64, N)
	for i := range xStar {
		xStar[i] = math.Sin(0.13 * float64(i+1))
	}
	b := make([]float64, N)
	for i := range xStar {
		b[i] = 2 * xStar[i]
		if i > 0 {
			b[i] -= xStar[i-1]
		}
		if i < N-1 {
			b[i] -= xStar[i+1]
		}
	}
	if err := cg.SetB(b); err != nil {
		log.Fatal(err)
	}

	var st solver.Stats
	cg.Solve(1e-10, 4*N, func(s solver.Stats) { st = s })
	cl.Run()

	maxErr := 0.0
	for i, got := range cg.X() {
		if e := math.Abs(got - xStar[i]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("distributed CG on %d nodes, %d unknowns:\n", nodes, N)
	fmt.Printf("  converged in %d iterations, residual %.2e, max error %.2e\n",
		st.Iterations, st.Residual, maxErr)
	fmt.Printf("  simulated communication time: %v (%v per iteration)\n",
		st.Elapsed, st.Elapsed/tca.Duration(st.Iterations))
	perIter := 2*(nodes-1)*2 + 2 // halo puts + 2 allreduce rounds of puts (approx)
	fmt.Printf("  per iteration: ~%d TCA messages — all in the 8-byte class the paper's\n", perIter)
	fmt.Println("  PIO/DMA latency advantage targets (§I: short messages dominate)")
}
