// Halo: a 2-D stencil boundary exchange on a 2×2 node grid, the workload
// class (particle physics, astrophysics — §II) the TCA sub-cluster was
// designed for.
//
// Each node's GPU holds a (H+2)×(W+2) tile of float64 with a one-cell halo
// ring. One exchange step moves:
//
//   - the south/north boundary *rows* — contiguous, a single put each;
//   - the east/west boundary *columns* — strided, one block per row, sent
//     as a single chained block-stride DMA ("a series of bulk transfers,
//     such as block transfer and block-stride transfer, are effective by
//     using the chaining DMA mechanism", §III-H).
//
// The example verifies every received halo cell and reports the exchange
// time against the conventional pack → cudaMemcpy → MPI → cudaMemcpy →
// unpack estimate.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"tca"
)

const (
	gridRows = 2 // node grid
	gridCols = 2
	H        = 64 // interior cells per tile side
	W        = 64
	pitch    = (W + 2) * 8 // row pitch in bytes
	tileSize = (H + 2) * pitch
)

// node (r,c) is ring index r*gridCols+c; the 4-node ring gives every node
// its four logical neighbours within two hops.
func id(r, c int) int {
	return ((r+gridRows)%gridRows)*gridCols + (c+gridCols)%gridCols
}

// cellOff is the byte offset of tile cell (row, col) including the halo
// ring (row 0 and col 0 are halo).
func cellOff(row, col int) tca.ByteSize {
	return tca.ByteSize(row*pitch + col*8)
}

func main() {
	cl, err := tca.NewCluster(gridRows*gridCols, tca.WithDMAMode(tca.Pipelined))
	if err != nil {
		log.Fatal(err)
	}

	// One pinned GPU tile per node.
	tiles := make([]tca.GPUBuffer, cl.Nodes())
	for n := range tiles {
		tiles[n], err = cl.AllocGPU(n, 0, tileSize)
		if err != nil {
			log.Fatal(err)
		}
		// Interior cells hold value(node, row, col); halo starts at NaN
		// so a missed transfer cannot pass verification.
		buf := make([]byte, tileSize)
		for row := 0; row <= H+1; row++ {
			for col := 0; col <= W+1; col++ {
				v := math.NaN()
				if row >= 1 && row <= H && col >= 1 && col <= W {
					v = value(n, row, col)
				}
				binary.LittleEndian.PutUint64(buf[int(cellOff(row, col)):], math.Float64bits(v))
			}
		}
		if err := cl.WriteGPU(tiles[n], 0, buf); err != nil {
			log.Fatal(err)
		}
	}

	start := cl.Now()
	pending := 0
	done := func(tca.Duration) { pending-- }

	for r := 0; r < gridRows; r++ {
		for c := 0; c < gridCols; c++ {
			self := id(r, c)
			south := id(r+1, c)
			north := id(r-1, c)
			east := id(r, c+1)
			west := id(r, c-1)

			// South boundary row -> south neighbour's north halo row
			// (contiguous: one put).
			if err := put(cl, tiles, self, cellOff(H, 1), south, cellOff(0, 1), W*8, done); err != nil {
				log.Fatal(err)
			}
			pending++
			// North boundary row -> north neighbour's south halo row.
			if err := put(cl, tiles, self, cellOff(1, 1), north, cellOff(H+1, 1), W*8, done); err != nil {
				log.Fatal(err)
			}
			pending++
			// East boundary column -> east neighbour's west halo column
			// (strided: H blocks of 8 bytes, one chained issue).
			if err := putCol(cl, tiles, self, cellOff(1, W), east, cellOff(1, 0), done); err != nil {
				log.Fatal(err)
			}
			pending++
			// West boundary column -> west neighbour's east halo column.
			if err := putCol(cl, tiles, self, cellOff(1, 1), west, cellOff(1, W+1), done); err != nil {
				log.Fatal(err)
			}
			pending++
		}
	}
	cl.Run()
	if pending != 0 {
		log.Fatalf("%d transfers never completed", pending)
	}
	elapsed := cl.Now() - start

	verify(cl, tiles)

	msgs := cl.Nodes() * 4
	bytes := cl.Nodes() * (2*W*8 + 2*H*8)
	fmt.Printf("halo exchange on a %d×%d node grid, %d×%d tiles: %d messages, %d bytes\n",
		gridRows, gridCols, H, W, msgs, bytes)
	fmt.Printf("  TCA (block-stride chained DMA, all nodes concurrent): %v\n", elapsed)
	// Conventional estimate: each of the 4 messages per node costs a
	// pack/unpack cudaMemcpy pair (~7 µs setup each) plus an MPI send.
	conv := tca.Duration(msgs) * (2*7*tca.Microsecond + 2*tca.Microsecond) / tca.Duration(cl.Nodes())
	fmt.Printf("  conventional estimate (pack + cudaMemcpy×2 + MPI, per node): ~%v\n", conv)
	fmt.Println("  every halo cell verified against its neighbour's boundary")
}

// put moves n contiguous bytes from one tile to another node's tile.
func put(cl *tca.Cluster, tiles []tca.GPUBuffer, src int, srcOff tca.ByteSize, dst int, dstOff tca.ByteSize, n tca.ByteSize, done func(tca.Duration)) error {
	g, err := cl.GlobalGPU(tiles[dst], dstOff)
	if err != nil {
		return err
	}
	return cl.PutBlockStride(src, tiles[src].Bus+tca.Addr(srcOff), g, tca.BlockStride{
		BlockLen:  n,
		Count:     1,
		SrcStride: n,
		DstStride: n,
	}, done)
}

// putCol moves a boundary column (H strided cells) in one chained issue.
func putCol(cl *tca.Cluster, tiles []tca.GPUBuffer, src int, srcOff tca.ByteSize, dst int, dstOff tca.ByteSize, done func(tca.Duration)) error {
	g, err := cl.GlobalGPU(tiles[dst], dstOff)
	if err != nil {
		return err
	}
	return cl.PutBlockStride(src, tiles[src].Bus+tca.Addr(srcOff), g, tca.BlockStride{
		BlockLen:  8,
		Count:     H,
		SrcStride: pitch,
		DstStride: pitch,
	}, done)
}

// value is the deterministic cell fill.
func value(node, row, col int) float64 {
	return float64(node*1_000_000 + row*1_000 + col)
}

// verify checks all four halo edges of every tile.
func verify(cl *tca.Cluster, tiles []tca.GPUBuffer) {
	read := func(n int, row, col int) float64 {
		b, err := cl.ReadGPU(tiles[n], cellOff(row, col), 8)
		if err != nil {
			log.Fatal(err)
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b))
	}
	for r := 0; r < gridRows; r++ {
		for c := 0; c < gridCols; c++ {
			self := id(r, c)
			for col := 1; col <= W; col++ {
				if got, want := read(self, 0, col), value(id(r-1, c), H, col); got != want {
					log.Fatalf("node %d north halo col %d: got %v want %v", self, col, got, want)
				}
				if got, want := read(self, H+1, col), value(id(r+1, c), 1, col); got != want {
					log.Fatalf("node %d south halo col %d: got %v want %v", self, col, got, want)
				}
			}
			for row := 1; row <= H; row++ {
				if got, want := read(self, row, 0), value(id(r, c-1), row, W); got != want {
					log.Fatalf("node %d west halo row %d: got %v want %v", self, row, got, want)
				}
				if got, want := read(self, row, W+1), value(id(r, c+1), row, 1); got != want {
					log.Fatalf("node %d east halo row %d: got %v want %v", self, row, got, want)
				}
			}
		}
	}
}
