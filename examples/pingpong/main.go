// Pingpong: the classic latency microbenchmark, three ways.
//
// Node 0 sends a message to node 1; node 1 bounces it straight back; half
// the round trip is the one-way latency. The example measures:
//
//  1. TCA PIO        — CPU stores through the PEACH2 global window (§III-F1)
//  2. TCA DMA        — a pipelined chained-DMA put per leg
//  3. InfiniBand/MPI — the conventional host-to-host path
//
// and prints them side by side for a range of message sizes, reproducing
// the paper's claim that PEACH2's latency is "approximately the same or
// slightly less than that of InfiniBand" at the verbs level, and far below
// once the MPI stack and GPU staging enter the picture.
package main

import (
	"fmt"
	"log"

	"tca"
	"tca/internal/host"
	"tca/internal/ib"
	"tca/internal/sim"
	"tca/internal/units"
)

const pongs = 4 // round trips per measurement (averaged)

func main() {
	fmt.Println("one-way small-message latency, node0 <-> node1 (averaged over", pongs, "round trips)")
	fmt.Printf("\n  %-8s %14s %14s %14s\n", "size", "TCA PIO", "TCA DMA", "IB MPI")
	for _, size := range []tca.ByteSize{4, 16, 64, 256, 1024} {
		pio := measurePIO(size)
		dma := measureDMA(size)
		mpi := measureMPI(size)
		fmt.Printf("  %-8v %14v %14v %14v\n", size, pio, dma, mpi)
	}
	fmt.Println("\npaper §IV-B1: PEACH2 one-way transfer latency 782 ns; IB FDR announced <1 µs;")
	fmt.Println("DMA pays the activation+interrupt cost per leg — PIO is the short-message mode.")
}

// measurePIO ping-pongs with CPU stores and polling flags.
func measurePIO(size tca.ByteSize) tca.Duration {
	cl, err := tca.NewCluster(2)
	if err != nil {
		log.Fatal(err)
	}
	b0, _ := cl.AllocHost(0, 4*tca.KiB)
	b1, _ := cl.AllocHost(1, 4*tca.KiB)
	g0, _ := cl.GlobalHost(b0, 0)
	g1, _ := cl.GlobalHost(b1, 0)
	msg := make([]byte, size)
	msg[0] = 1

	var finish tca.Duration
	left := pongs
	// Node 1: every time the ping lands, store the pong back.
	cl.WaitFlag(b1, 0, func(at tca.Duration) {
		if err := cl.PIOPut(1, g0, msg); err != nil {
			log.Fatal(err)
		}
	})
	// Node 0: every pong triggers the next ping, until done.
	cl.WaitFlag(b0, 0, func(at tca.Duration) {
		left--
		if left == 0 {
			finish = at
			return
		}
		if err := cl.PIOPut(0, g1, msg); err != nil {
			log.Fatal(err)
		}
	})
	start := cl.Now()
	if err := cl.PIOPut(0, g1, msg); err != nil {
		log.Fatal(err)
	}
	cl.Run()
	if finish == 0 {
		log.Fatal("PIO pingpong never finished")
	}
	return (finish - start) / tca.Duration(2*pongs)
}

// measureDMA ping-pongs with chained-DMA puts from host memory. Each leg
// pays the full activation cost (doorbell, descriptor fetch, interrupt) —
// exactly why the paper reserves DMA for bulk and PIO for short messages.
func measureDMA(size tca.ByteSize) tca.Duration {
	cl, err := tca.NewCluster(2, tca.WithDMAMode(tca.Pipelined))
	if err != nil {
		log.Fatal(err)
	}
	b0, _ := cl.AllocHost(0, 4*tca.KiB)
	b1, _ := cl.AllocHost(1, 4*tca.KiB)
	if err := cl.WriteHost(b0, 0, make([]byte, size)); err != nil {
		log.Fatal(err)
	}
	if err := cl.WriteHost(b1, 0, make([]byte, size)); err != nil {
		log.Fatal(err)
	}
	comm := cl.Comm()

	var finish tca.Duration
	left := pongs
	var ping func()
	pong := func(sim.Time) {
		left--
		if left == 0 {
			finish = cl.Now()
			return
		}
		ping()
	}
	ping = func() {
		// Node 0 puts into node 1; node 1's completion puts right back;
		// node 0's completion counts the round trip.
		err := comm.PutToHost(b1, 0, 0, b0.Bus, size, func(sim.Time) {
			err := comm.PutToHost(b0, 0, 1, b1.Bus, size, pong)
			if err != nil {
				log.Fatal(err)
			}
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	start := cl.Now()
	ping()
	cl.Run()
	if finish == 0 {
		log.Fatal("DMA pingpong never finished")
	}
	return (finish - start) / tca.Duration(2*pongs)
}

// measureMPI ping-pongs over the InfiniBand fabric model — the conventional
// interconnect both HA-PACS clusters carry (§II).
func measureMPI(size tca.ByteSize) tca.Duration {
	eng := sim.NewEngine()
	nodes := []*host.Node{
		host.NewNode(eng, 0, host.DefaultParams),
		host.NewNode(eng, 1, host.DefaultParams),
	}
	fab, err := ib.NewFabric(eng, nodes, ib.QDRParams)
	if err != nil {
		log.Fatal(err)
	}
	b0, _ := nodes[0].AllocDMABuffer(4 * tca.KiB)
	b1, _ := nodes[1].AllocDMABuffer(4 * tca.KiB)

	var finish units.Duration
	left := pongs
	var ping func()
	pong := func(now sim.Time) {
		left--
		if left == 0 {
			finish = units.Duration(now)
			return
		}
		ping()
	}
	ping = func() {
		err := fab.MPISend(0, 1, b0, b1, size, func(sim.Time) {
			if err := fab.MPISend(1, 0, b1, b0, size, pong); err != nil {
				log.Fatal(err)
			}
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	start := units.Duration(eng.Now())
	ping()
	eng.Run()
	if finish == 0 {
		log.Fatal("MPI pingpong never finished")
	}
	return (finish - start) / tca.Duration(2*pongs)
}
