// Quickstart: build a 4-node TCA sub-cluster, move GPU memory between
// nodes with the cudaMemcpyPeer-style API, and time both communication
// modes — the chained DMA put and the low-latency PIO store.
package main

import (
	"bytes"
	"fmt"
	"log"

	"tca"
)

func main() {
	// A 4-node ring, like the paper's Fig. 5 example, with the announced
	// pipelined DMA controller.
	cl, err := tca.NewCluster(4, tca.WithDMAMode(tca.Pipelined))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built a %d-node TCA sub-cluster (ring, pipelined DMAC)\n\n", cl.Nodes())

	// GPUDirect-pin a megabyte on node 0's GPU0 and node 2's GPU1. The
	// full pinning sequence (cuMemAlloc → P2P token → BAR1 map) runs
	// underneath.
	src, err := cl.AllocGPU(0, 0, tca.MiB)
	if err != nil {
		log.Fatal(err)
	}
	dst, err := cl.AllocGPU(2, 1, tca.MiB)
	if err != nil {
		log.Fatal(err)
	}

	payload := make([]byte, 256*tca.KiB)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := cl.WriteGPU(src, 0, payload); err != nil {
		log.Fatal(err)
	}

	// The §III-H API: a cudaMemcpyPeer that takes a node ID. Two router
	// hops, no host staging, no MPI.
	d, err := cl.MemcpyPeerSync(dst, 0, src, 0, tca.ByteSize(len(payload)))
	if err != nil {
		log.Fatal(err)
	}
	got, err := cl.ReadGPU(dst, 0, tca.ByteSize(len(payload)))
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		log.Fatal("verification failed: destination GPU memory differs")
	}
	bw := float64(len(payload)) / d.Seconds() / 1e9
	fmt.Printf("GPU0@node0 -> GPU1@node2, %d KiB over DMA: %v (%.2f GB/s) — verified\n",
		len(payload)/1024, d, bw)

	// PIO: the short-message mode. An ordinary CPU store into the mmapped
	// global window lands in remote host memory in under a microsecond.
	flagBuf, err := cl.AllocHost(2, 4*tca.KiB)
	if err != nil {
		log.Fatal(err)
	}
	flagGlobal, err := cl.GlobalHost(flagBuf, 0)
	if err != nil {
		log.Fatal(err)
	}
	start := cl.Now()
	var seen tca.Duration
	cl.WaitFlag(flagBuf, 0, func(at tca.Duration) { seen = at })
	if err := cl.PIOPut(0, flagGlobal, []byte{1, 2, 3, 4}); err != nil {
		log.Fatal(err)
	}
	cl.Run()
	if seen == 0 {
		log.Fatal("PIO store never observed on node 2")
	}
	fmt.Printf("node0 -> node2 PIO store observed after %v (two router hops + poll)\n", seen-start)
	fmt.Println("\nnext: examples/pingpong, examples/halo, examples/allreduce; cmd/tcabench -exp all")
}
