module tca

go 1.22
