// Package analysistest runs an analyzer over golden fixture packages and
// checks its diagnostics against `// want "regexp"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library
// alone.
//
// Fixtures live GOPATH-style under testdata/src/<pkg>; a fixture package
// may import a sibling fixture package by its bare directory name (the
// runner resolves "sim" to testdata/src/sim), which lets fixtures model
// the simulator's own package names — the analyzers identify domain types
// such as sim.Engine or units.Duration by defining package name.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"tca/internal/analysis/framework"
)

// Run applies the analyzer to each named fixture package under
// testdata/src and reports any mismatch between the diagnostics produced
// and the `// want` expectations as test failures.
//
// All fixtures reachable from the named packages run under one shared
// framework.Suite, dependencies first, so facts an analyzer exports while
// visiting an imported fixture are visible when the importer is analyzed —
// the same load order the tcavet driver uses on the real module. Want
// expectations are checked in every loaded fixture, dependencies included.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	fset := token.NewFileSet()
	loader := &fixtureLoader{
		src:    src,
		fset:   fset,
		loaded: make(map[string]*loadedFixture),
		std:    importer.ForCompiler(fset, "source", nil),
	}
	for _, pkg := range pkgs {
		if _, err := loader.load(pkg); err != nil {
			t.Fatalf("loading fixture %s: %v", pkg, err)
		}
	}
	suite := framework.NewSuite([]*framework.Analyzer{a})
	for _, fx := range loader.order {
		check(t, suite, fx)
	}
}

type loadedFixture struct {
	pkg   *framework.Package
	wants map[token.Position][]*want // keyed by file:line (column zeroed)
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// check runs the suite on one fixture and diffs diagnostics against
// expectations.
func check(t *testing.T, suite *framework.Suite, fx *loadedFixture) {
	t.Helper()
	diags, err := suite.Run(fx.pkg)
	if err != nil {
		t.Fatalf("%s: %v", fx.pkg.Path, err)
	}
	for _, d := range diags {
		pos := fx.pkg.Fset.Position(d.Pos)
		key := token.Position{Filename: pos.Filename, Line: pos.Line}
		matched := false
		for _, w := range fx.wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	var keys []token.Position
	for k := range fx.wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Filename != keys[j].Filename {
			return keys[i].Filename < keys[j].Filename
		}
		return keys[i].Line < keys[j].Line
	})
	for _, k := range keys {
		for _, w := range fx.wants[k] {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", k.Filename, k.Line, w.re)
			}
		}
	}
}

type fixtureLoader struct {
	src    string
	fset   *token.FileSet
	loaded map[string]*loadedFixture
	// order lists fixtures in completion order of the recursive load —
	// dependencies before their importers, the order a fact-carrying
	// suite must analyze them in.
	order []*loadedFixture
	std   types.Importer
}

// load parses and type-checks one fixture package (and, recursively, the
// sibling fixtures it imports) and collects its want expectations.
func (l *fixtureLoader) load(path string) (*loadedFixture, error) {
	if fx, ok := l.loaded[path]; ok {
		return fx, nil
	}
	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fx := &loadedFixture{wants: make(map[token.Position][]*want)}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		if err := collectWants(l.fset, f, fx.wants); err != nil {
			return nil, err
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importerFunc(func(p string) (*types.Package, error) {
		if sub, err := os.Stat(filepath.Join(l.src, filepath.FromSlash(p))); err == nil && sub.IsDir() {
			dep, err := l.load(p)
			if err != nil {
				return nil, err
			}
			return dep.pkg.Types, nil
		}
		return l.std.Import(p)
	})}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", path, err)
	}
	fx.pkg = &framework.Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info, Matched: true}
	l.loaded[path] = fx
	l.order = append(l.order, fx)
	return fx, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

var wantRe = regexp.MustCompile("// want (\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`)")

// collectWants records every `// want "re"` (or backquoted) expectation,
// keyed by the line its comment sits on.
func collectWants(fset *token.FileSet, f *ast.File, wants map[token.Position][]*want) error {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
				lit := m[1]
				var pat string
				if strings.HasPrefix(lit, "`") {
					pat = strings.Trim(lit, "`")
				} else {
					var err error
					pat, err = strconv.Unquote(lit)
					if err != nil {
						return fmt.Errorf("%s: bad want literal %s: %w", fset.Position(c.Pos()), lit, err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return fmt.Errorf("%s: bad want pattern %q: %w", fset.Position(c.Pos()), pat, err)
				}
				pos := fset.Position(c.Pos())
				key := token.Position{Filename: pos.Filename, Line: pos.Line}
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}
	return nil
}
