package framework

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file is the framework's intra-procedural dataflow walker: def-use
// chains over types.Info, with no SSA construction. It gives analyzers a
// source-ordered view of every definition, write and read of each local
// variable in a function body, plus simple alias propagation (x := y,
// x = y). That is deliberately weaker than SSA — there is no phi, no
// path-sensitivity — but it is exactly enough for the lifecycle checks the
// suite does (pool Get/Release pairing, lock-held regions, write origins),
// and it stays a few hundred lines of standard library.

// A RefKind classifies one occurrence of a variable.
type RefKind int

const (
	// RefDef is the defining occurrence (:=, var, parameter, range var).
	RefDef RefKind = iota
	// RefWrite is a plain reassignment (x = ..., x++, &x passed out).
	RefWrite
	// RefRead is any other occurrence.
	RefRead
)

func (k RefKind) String() string {
	switch k {
	case RefDef:
		return "def"
	case RefWrite:
		return "write"
	default:
		return "read"
	}
}

// A Ref is one occurrence of a variable inside the analyzed body.
type Ref struct {
	Ident *ast.Ident
	Obj   *types.Var
	Kind  RefKind
	// Seq orders references by source position within the body; chains
	// for one variable are sorted by it.
	Seq int
}

// Chains holds the def-use chains of one function body.
type Chains struct {
	refs map[*types.Var][]Ref
	// aliases maps a variable to the variables it was directly assigned
	// from via `x := y` / `x = y` (single-source value copies only).
	aliases map[*types.Var][]*types.Var
	vars    []*types.Var
}

// DefUseChains walks body once and indexes every identifier the type
// checker resolved to a *types.Var, classifying each occurrence as a
// definition, write or read by its syntactic role.
func DefUseChains(info *types.Info, body *ast.BlockStmt) *Chains {
	c := &Chains{
		refs:    make(map[*types.Var][]Ref),
		aliases: make(map[*types.Var][]*types.Var),
	}
	if body == nil {
		return c
	}

	// kinds collects identifiers that appear in a defining or writing
	// role; everything else defaults to a read.
	kinds := make(map[*ast.Ident]RefKind)
	classify := func(lhs ast.Expr, kind RefKind) {
		if id, ok := unparen(lhs).(*ast.Ident); ok {
			kinds[id] = kind
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if s.Tok.String() == ":=" {
					classify(lhs, RefDef)
				} else {
					classify(lhs, RefWrite)
				}
				// Record single-source value-copy aliases: x := y, x = y.
				if len(s.Lhs) == len(s.Rhs) {
					c.recordAlias(info, lhs, s.Rhs[i])
				}
			}
		case *ast.IncDecStmt:
			classify(s.X, RefWrite)
		case *ast.RangeStmt:
			if s.Key != nil {
				classify(s.Key, RefDef)
			}
			if s.Value != nil {
				classify(s.Value, RefDef)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				kinds[name] = RefDef
			}
		case *ast.UnaryExpr:
			// Taking the address makes every later state of the variable
			// reachable through the pointer; treat it as a write.
			if s.Op.String() == "&" {
				classify(s.X, RefWrite)
			}
		}
		return true
	})

	seq := 0
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.ObjectOf(id)
		v, okVar := obj.(*types.Var)
		if !okVar || v.IsField() {
			return true
		}
		kind, classified := kinds[id]
		if !classified {
			kind = RefRead
		}
		if _, seen := c.refs[v]; !seen {
			c.vars = append(c.vars, v)
		}
		c.refs[v] = append(c.refs[v], Ref{Ident: id, Obj: v, Kind: kind, Seq: seq})
		seq++
		return true
	})
	for _, refs := range c.refs {
		sort.Slice(refs, func(i, j int) bool { return refs[i].Ident.Pos() < refs[j].Ident.Pos() })
		for i := range refs {
			refs[i].Seq = i
		}
	}
	sort.Slice(c.vars, func(i, j int) bool { return c.vars[i].Pos() < c.vars[j].Pos() })
	return c
}

func (c *Chains) recordAlias(info *types.Info, lhs, rhs ast.Expr) {
	dst, okDst := unparen(lhs).(*ast.Ident)
	src, okSrc := unparen(rhs).(*ast.Ident)
	if !okDst || !okSrc {
		return
	}
	dv, okDV := info.ObjectOf(dst).(*types.Var)
	sv, okSV := info.ObjectOf(src).(*types.Var)
	if !okDV || !okSV || dv == sv {
		return
	}
	c.aliases[dv] = append(c.aliases[dv], sv)
}

// Vars returns the variables referenced in the body, in first-occurrence
// source order (deterministic across runs).
func (c *Chains) Vars() []*types.Var { return c.vars }

// Refs returns the ordered references to v (empty for unseen variables).
func (c *Chains) Refs(v *types.Var) []Ref { return c.refs[v] }

// AliasSet returns v plus every variable transitively copied FROM v via
// plain `x := y` / `x = y` assignments — the variables through which a
// value first bound to v may also be reached. The result is sorted by
// declaration position.
func (c *Chains) AliasSet(v *types.Var) []*types.Var {
	// Invert the alias edges: we want everything v flows INTO.
	into := make(map[*types.Var][]*types.Var)
	for dst, srcs := range c.aliases {
		for _, src := range srcs {
			into[src] = append(into[src], dst)
		}
	}
	seen := map[*types.Var]bool{v: true}
	work := []*types.Var{v}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		for _, next := range into[cur] {
			if !seen[next] {
				seen[next] = true
				work = append(work, next)
			}
		}
	}
	out := make([]*types.Var, 0, len(seen))
	for sv := range seen {
		out = append(out, sv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// RootVar resolves an expression to the local or package-level variable it
// names, unwrapping parentheses. It returns nil for anything more complex
// (selectors, index expressions, calls).
func RootVar(info *types.Info, e ast.Expr) *types.Var {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, okVar := info.ObjectOf(id).(*types.Var)
	if !okVar {
		return nil
	}
	return v
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
