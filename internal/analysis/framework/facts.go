package framework

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// A Fact is a typed datum an analyzer attaches to a types.Object or a
// *types.Package while analyzing the defining package, for later retrieval
// when the same analyzer visits a downstream package. Facts are how the
// suite does modular cross-package analysis without whole-program loading:
// poolsafety marks pooled types where they are declared, lockorder exports
// each package's lock-ordering edges, and importing packages read the marks
// back through ImportObjectFact / ImportPackageFact.
//
// Fact types must be pointers to gob-serializable structs and must be
// listed in the owning Analyzer's FactTypes. The AFact method is a marker
// only; its body is empty.
type Fact interface {
	AFact()
}

// An ObjectFact is one (object, fact) pair, as returned by AllObjectFacts.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// A PackageFact is one (package, fact) pair, as returned by AllPackageFacts.
type PackageFact struct {
	Package *types.Package
	Fact    Fact
}

// factKey identifies one fact slot: facts are keyed per analyzer, per
// object (or package), per concrete fact type — mirroring x/tools, where
// an analyzer can attach at most one fact of each type to each object.
type factKey struct {
	analyzer *Analyzer
	object   types.Object // nil for package facts
	pkg      *types.Package
	factType reflect.Type
}

// factStore holds every fact exported during one suite run. It is shared
// by all passes of the run so facts exported while analyzing an upstream
// package are visible when a downstream package is analyzed (LoadModule
// returns packages in dependency order, which makes this sound).
type factStore struct {
	m map[factKey]Fact
}

func newFactStore() *factStore {
	return &factStore{m: make(map[factKey]Fact)}
}

// validateFact checks the fact is a pointer type declared in the
// analyzer's FactTypes and survives a gob round trip. The round trip is
// what keeps facts serializable — the property a future export-data-based
// driver would rely on — and it is cheap enough to do on every export.
// The decoded copy is what gets stored, so any state that would not
// serialize is dropped at the boundary, never silently carried along.
func validateFact(a *Analyzer, fact Fact) (Fact, error) {
	t := reflect.TypeOf(fact)
	if t == nil || t.Kind() != reflect.Ptr {
		return nil, fmt.Errorf("analyzer %s: fact %T is not a pointer", a.Name, fact)
	}
	declared := false
	for _, ft := range a.FactTypes {
		if reflect.TypeOf(ft) == t {
			declared = true
			break
		}
	}
	if !declared {
		return nil, fmt.Errorf("analyzer %s: fact type %T not declared in FactTypes", a.Name, fact)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).EncodeValue(reflect.ValueOf(fact).Elem()); err != nil {
		return nil, fmt.Errorf("analyzer %s: fact %T does not gob-encode: %w", a.Name, fact, err)
	}
	out := reflect.New(t.Elem())
	if err := gob.NewDecoder(&buf).DecodeValue(out.Elem()); err != nil {
		return nil, fmt.Errorf("analyzer %s: fact %T does not gob-decode: %w", a.Name, fact, err)
	}
	return out.Interface().(Fact), nil
}

// ExportObjectFact associates fact with obj for the rest of the suite run.
// The object must belong to the package under analysis or one of its
// dependencies; exporting panics on a non-serializable or undeclared fact
// type because both are analyzer bugs, not input problems.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil {
		panic(fmt.Sprintf("analyzer %s: ExportObjectFact(nil)", p.Analyzer.Name))
	}
	stored, err := validateFact(p.Analyzer, fact)
	if err != nil {
		panic(err)
	}
	p.facts.m[factKey{analyzer: p.Analyzer, object: obj, factType: reflect.TypeOf(fact)}] = stored
}

// ImportObjectFact copies the fact previously exported for obj by this
// analyzer into *fact and reports whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil {
		return false
	}
	got, ok := p.facts.m[factKey{analyzer: p.Analyzer, object: obj, factType: reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// ExportPackageFact associates fact with the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	stored, err := validateFact(p.Analyzer, fact)
	if err != nil {
		panic(err)
	}
	p.facts.m[factKey{analyzer: p.Analyzer, pkg: p.Pkg, factType: reflect.TypeOf(fact)}] = stored
}

// ImportPackageFact copies the fact previously exported for pkg by this
// analyzer into *fact and reports whether one existed.
func (p *Pass) ImportPackageFact(pkg *types.Package, fact Fact) bool {
	if pkg == nil {
		return false
	}
	got, ok := p.facts.m[factKey{analyzer: p.Analyzer, pkg: pkg, factType: reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}

// AllObjectFacts returns every object fact this analyzer has exported so
// far, in a deterministic order (by object name, then fact type).
func (p *Pass) AllObjectFacts() []ObjectFact {
	var out []ObjectFact
	for k, f := range p.facts.m {
		if k.analyzer == p.Analyzer && k.object != nil {
			out = append(out, ObjectFact{Object: k.object, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		oi, oj := out[i].Object, out[j].Object
		pi, pj := "", ""
		if oi.Pkg() != nil {
			pi = oi.Pkg().Path()
		}
		if oj.Pkg() != nil {
			pj = oj.Pkg().Path()
		}
		if pi != pj {
			return pi < pj
		}
		if oi.Name() != oj.Name() {
			return oi.Name() < oj.Name()
		}
		return fmt.Sprintf("%T", out[i].Fact) < fmt.Sprintf("%T", out[j].Fact)
	})
	return out
}

// AllPackageFacts returns every package fact this analyzer has exported so
// far, in a deterministic order (by package path, then fact type).
func (p *Pass) AllPackageFacts() []PackageFact {
	var out []PackageFact
	for k, f := range p.facts.m {
		if k.analyzer == p.Analyzer && k.object == nil && k.pkg != nil {
			out = append(out, PackageFact{Package: k.pkg, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Package.Path() != out[j].Package.Path() {
			return out[i].Package.Path() < out[j].Package.Path()
		}
		return fmt.Sprintf("%T", out[i].Fact) < fmt.Sprintf("%T", out[j].Fact)
	})
	return out
}
