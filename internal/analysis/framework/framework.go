// Package framework is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface that the tcavet suite builds on:
// Analyzer, Pass, Diagnostic, plus the package loader the driver and the
// fixture runner share. The build environment has no module proxy access,
// so instead of depending on x/tools the suite carries these three concepts
// itself on top of the standard library's go/ast, go/types and go/build.
//
// The API is deliberately shaped like x/tools so the analyzers port over
// verbatim if the dependency ever becomes available.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one static check. Run inspects a fully type-checked
// package through its Pass and reports diagnostics; it must be stateless
// across packages.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is the one-paragraph description printed by `tcavet -list`. The
	// first line is the summary.
	Doc string
	// Run performs the check.
	Run func(*Pass) error
	// FactTypes lists the fact types the analyzer exports or imports.
	// An analyzer with a non-empty FactTypes runs over every package of
	// the module (not only the ones named on the command line) so its
	// facts exist before any downstream package is analyzed; diagnostics
	// are still reported only for the requested packages.
	FactTypes []Fact
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	facts       *factStore
	diagnostics []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer,
	})
}

// A Suite runs a set of analyzers over a sequence of packages presented in
// dependency order, carrying exported facts from each package to the ones
// that import it. One Suite corresponds to one tcavet invocation (or one
// analysistest fixture run); facts never leak between suites.
type Suite struct {
	analyzers []*Analyzer
	facts     *factStore
}

// NewSuite creates a suite over the given analyzers.
func NewSuite(analyzers []*Analyzer) *Suite {
	return &Suite{analyzers: analyzers, facts: newFactStore()}
}

// Run applies each of the suite's analyzers to the package and returns the
// combined diagnostics sorted by position. Packages must be presented in
// dependency order (dependencies first) or fact imports will come up
// empty; LoadModule already returns packages in that order.
func (s *Suite) Run(pkg *Package) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range s.analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			facts:     s.facts,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		out = append(out, pass.diagnostics...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Analyzer.Name < out[j].Analyzer.Name
	})
	return out, nil
}

// Run applies each analyzer to one package in a fresh single-package suite
// — the entry point for fact-free analyzers and one-shot checks. Analyzers
// that use facts should run under a shared Suite instead.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return NewSuite(analyzers).Run(pkg)
}

// Named unwraps pointers and returns the defining package name and type
// name of a named type, e.g. ("sim", "Engine"). ok is false for unnamed
// types and types from the universe scope.
func Named(t types.Type) (pkgName, typeName string, ok bool) {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Pkg().Name(), obj.Name(), true
}

// MethodOn reports whether the call invokes a method with the given name
// on a receiver whose defining package and type match, resolving through
// the pass's type information. It returns false for non-method calls.
func MethodOn(pass *Pass, call *ast.CallExpr, pkgName, typeName, method string) bool {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return false
	}
	fn, okFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !okFn || fn.Name() != method {
		return false
	}
	sig, okSig := fn.Type().(*types.Signature)
	if !okSig || sig.Recv() == nil {
		return false
	}
	p, t, okNamed := Named(sig.Recv().Type())
	return okNamed && p == pkgName && t == typeName
}
