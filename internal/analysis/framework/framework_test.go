package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// typecheckSrc parses and type-checks one import-free source file.
func typecheckSrc(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "src.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Types:      make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{}
	pkg, err := conf.Check(file.Name.Name, fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, file, pkg, info
}

type markFact struct{ Label string }

func (*markFact) AFact() {}

type edgeFact struct{ Edges []string }

func (*edgeFact) AFact() {}

// badFact has no exported fields, so gob encoding carries nothing across;
// the framework must reject it at export time rather than store an empty
// shell.
type badFact struct{ hidden int }

func (*badFact) AFact() {}

func newTestPass(a *Analyzer, pkg *types.Package, store *factStore) *Pass {
	return &Pass{Analyzer: a, Pkg: pkg, facts: store}
}

func TestObjectFactRoundTrip(t *testing.T) {
	_, _, pkg, _ := typecheckSrc(t, `package a; type T struct{}`)
	obj := pkg.Scope().Lookup("T")
	ana := &Analyzer{Name: "test", FactTypes: []Fact{new(markFact)}}
	store := newFactStore()

	producer := newTestPass(ana, pkg, store)
	exported := &markFact{Label: "pooled"}
	producer.ExportObjectFact(obj, exported)
	// The store must hold a decoded copy, not the caller's pointer.
	exported.Label = "mutated-after-export"

	consumer := newTestPass(ana, pkg, store)
	var got markFact
	if !consumer.ImportObjectFact(obj, &got) {
		t.Fatal("ImportObjectFact: fact not found")
	}
	if got.Label != "pooled" {
		t.Fatalf("fact label = %q, want %q (export must snapshot)", got.Label, "pooled")
	}

	// Facts are keyed per analyzer: a different analyzer sees nothing.
	other := &Analyzer{Name: "other", FactTypes: []Fact{new(markFact)}}
	var miss markFact
	if newTestPass(other, pkg, store).ImportObjectFact(obj, &miss) {
		t.Fatal("fact leaked across analyzers")
	}
}

func TestPackageFactRoundTrip(t *testing.T) {
	_, _, pkgA, _ := typecheckSrc(t, `package a`)
	_, _, pkgB, _ := typecheckSrc(t, `package b`)
	ana := &Analyzer{Name: "test", FactTypes: []Fact{new(edgeFact)}}
	store := newFactStore()

	newTestPass(ana, pkgA, store).ExportPackageFact(&edgeFact{Edges: []string{"a.X->a.Y"}})

	downstream := newTestPass(ana, pkgB, store)
	var got edgeFact
	if !downstream.ImportPackageFact(pkgA, &got) {
		t.Fatal("ImportPackageFact: fact not found")
	}
	if len(got.Edges) != 1 || got.Edges[0] != "a.X->a.Y" {
		t.Fatalf("edges = %v", got.Edges)
	}
	var none edgeFact
	if downstream.ImportPackageFact(pkgB, &none) {
		t.Fatal("found a package fact that was never exported")
	}
}

func TestExportFactValidation(t *testing.T) {
	_, _, pkg, _ := typecheckSrc(t, `package a; type T struct{}`)
	obj := pkg.Scope().Lookup("T")
	store := newFactStore()

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}

	undeclared := &Analyzer{Name: "undeclared"} // empty FactTypes
	mustPanic("undeclared fact type", func() {
		newTestPass(undeclared, pkg, store).ExportObjectFact(obj, &markFact{Label: "x"})
	})

	unserializable := &Analyzer{Name: "unserializable", FactTypes: []Fact{new(badFact)}}
	mustPanic("no exported fields", func() {
		newTestPass(unserializable, pkg, store).ExportObjectFact(obj, &badFact{hidden: 1})
	})

	declared := &Analyzer{Name: "declared", FactTypes: []Fact{new(markFact)}}
	mustPanic("nil object", func() {
		newTestPass(declared, pkg, store).ExportObjectFact(nil, &markFact{})
	})
}

func TestAllFactsDeterministicOrder(t *testing.T) {
	_, _, pkg, _ := typecheckSrc(t, `package a; type B struct{}; type A struct{}`)
	ana := &Analyzer{Name: "test", FactTypes: []Fact{new(markFact)}}
	store := newFactStore()
	pass := newTestPass(ana, pkg, store)
	// Export in reverse-alphabetical order; AllObjectFacts must sort.
	pass.ExportObjectFact(pkg.Scope().Lookup("B"), &markFact{Label: "b"})
	pass.ExportObjectFact(pkg.Scope().Lookup("A"), &markFact{Label: "a"})

	all := pass.AllObjectFacts()
	if len(all) != 2 {
		t.Fatalf("got %d facts, want 2", len(all))
	}
	if all[0].Object.Name() != "A" || all[1].Object.Name() != "B" {
		t.Fatalf("order = %s, %s; want A, B", all[0].Object.Name(), all[1].Object.Name())
	}
}

const dataflowSrc = `package a

func f(in int) int {
	x := in      // def x, read in
	y := x       // def y, alias y<-x
	x = 2        // write x
	x++          // write x
	z := y       // def z, alias z<-y
	p := &z      // def p, write z (address taken)
	_ = p
	return x + z // reads
}
`

func TestDefUseChains(t *testing.T) {
	_, file, _, info := typecheckSrc(t, dataflowSrc)
	fn := file.Decls[0].(*ast.FuncDecl)
	chains := DefUseChains(info, fn.Body)

	byName := map[string]*types.Var{}
	for _, v := range chains.Vars() {
		byName[v.Name()] = v
	}
	for _, name := range []string{"x", "y", "z", "p", "in"} {
		if byName[name] == nil {
			t.Fatalf("variable %s not indexed (have %v)", name, chains.Vars())
		}
	}

	kinds := func(v *types.Var) string {
		var parts []string
		for _, r := range chains.Refs(v) {
			parts = append(parts, r.Kind.String())
		}
		return strings.Join(parts, ",")
	}
	if got := kinds(byName["x"]); got != "def,read,write,write,read" {
		t.Fatalf("x chain = %s", got)
	}
	if got := kinds(byName["z"]); got != "def,write,read" {
		t.Fatalf("z chain = %s (address-taken must count as write)", got)
	}

	// x flows into y (y := x) and transitively into z (z := y).
	aliasNames := map[string]bool{}
	for _, v := range chains.AliasSet(byName["x"]) {
		aliasNames[v.Name()] = true
	}
	for _, want := range []string{"x", "y", "z"} {
		if !aliasNames[want] {
			t.Fatalf("AliasSet(x) = %v, missing %s", aliasNames, want)
		}
	}
	if aliasNames["p"] {
		t.Fatal("AliasSet(x) includes p: &z is not a value copy")
	}

	// Refs are sequenced in source order.
	refs := chains.Refs(byName["x"])
	for i := 1; i < len(refs); i++ {
		if refs[i-1].Ident.Pos() >= refs[i].Ident.Pos() || refs[i].Seq != i {
			t.Fatalf("x refs out of order at %d", i)
		}
	}
}

func TestRootVar(t *testing.T) {
	_, file, _, info := typecheckSrc(t, `package a
type s struct{ f int }
func g() {
	v := 1
	w := (v)
	var st s
	_ = st.f
	_ = w
}`)
	fn := file.Decls[1].(*ast.FuncDecl)
	var parenExpr, selExpr ast.Expr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.ParenExpr:
			parenExpr = e
		case *ast.SelectorExpr:
			selExpr = e
		}
		return true
	})
	if v := RootVar(info, parenExpr); v == nil || v.Name() != "v" {
		t.Fatalf("RootVar((v)) = %v, want v", v)
	}
	if v := RootVar(info, selExpr); v != nil {
		t.Fatalf("RootVar(st.f) = %v, want nil", v)
	}
}
