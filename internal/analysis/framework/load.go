package framework

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package of the module under
// analysis.
type Package struct {
	Path  string // import path, e.g. "tca/internal/sim"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Matched reports whether the package matched the load patterns.
	// Fact-producing analyzers run over every package so cross-package
	// facts exist; drivers report diagnostics only for matched ones.
	Matched bool
}

// Name returns the package name.
func (p *Package) Name() string { return p.Types.Name() }

// LoadModule parses and type-checks every non-test package of the module
// rooted at root (whose module path is modPath) and returns ALL of them in
// dependency order, with Matched set on the ones matching patterns.
// Patterns follow the go tool's shape: "./..." matches everything,
// "./internal/..." a subtree, and "./internal/sim" a single package. Test
// files are excluded: tcavet checks the simulator itself; its own fixtures
// exercise the analyzers. Returning unmatched packages too is what lets
// fact-based analyzers see a type's defining package before the packages
// that use it, regardless of which packages were asked for.
func LoadModule(root, modPath string, patterns []string) ([]*Package, error) {
	fset := token.NewFileSet()
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	parsed := make(map[string]*Package) // by import path
	imports := make(map[string][]string)
	for _, dir := range dirs {
		bp, err := build.Default.ImportDir(dir, 0)
		if err != nil {
			if _, noGo := err.(*build.NoGoError); noGo {
				continue
			}
			return nil, fmt.Errorf("tcavet: %s: %w", dir, err)
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg := &Package{Path: path, Dir: dir, Fset: fset}
		for _, name := range bp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			pkg.Files = append(pkg.Files, f)
		}
		parsed[path] = pkg
		imports[path] = bp.Imports
	}

	order, err := topoSort(parsed, imports, modPath)
	if err != nil {
		return nil, err
	}

	imp := &chainImporter{
		modPath: modPath,
		local:   make(map[string]*types.Package),
		std:     importer.ForCompiler(fset, "source", nil),
	}
	for _, path := range order {
		pkg := parsed[path]
		if err := typeCheck(pkg, imp); err != nil {
			return nil, err
		}
		imp.local[path] = pkg.Types
	}

	var out []*Package
	for _, path := range order {
		pkg := parsed[path]
		pkg.Matched = matchesAny(patterns, modPath, path)
		out = append(out, pkg)
	}
	return out, nil
}

// packageDirs walks root and returns every directory that may hold a
// package, skipping VCS metadata, testdata trees and hidden directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// topoSort orders module-local packages so every package follows its
// module-local imports.
func topoSort(parsed map[string]*Package, imports map[string][]string, modPath string) ([]string, error) {
	paths := make([]string, 0, len(parsed))
	for p := range parsed {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int)
	var order []string
	var visit func(string) error
	visit = func(path string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("tcavet: import cycle through %s", path)
		}
		state[path] = visiting
		deps := append([]string(nil), imports[path]...)
		sort.Strings(deps)
		for _, dep := range deps {
			if _, local := parsed[dep]; local && isModuleLocal(dep, modPath) {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[path] = done
		order = append(order, path)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

func isModuleLocal(path, modPath string) bool {
	return path == modPath || strings.HasPrefix(path, modPath+"/")
}

// typeCheck populates pkg.Types and pkg.Info.
func typeCheck(pkg *Package, imp types.Importer) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkg.Path, pkg.Fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("tcavet: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	pkg.Info = info
	return nil
}

// chainImporter resolves module-local import paths from the packages the
// loader has already checked and delegates everything else (the standard
// library) to the source importer.
type chainImporter struct {
	modPath string
	local   map[string]*types.Package
	std     types.Importer
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if isModuleLocal(path, c.modPath) {
		if pkg, ok := c.local[path]; ok {
			return pkg, nil
		}
		return nil, fmt.Errorf("tcavet: module package %s not loaded (dependency order bug)", path)
	}
	return c.std.Import(path)
}

// matchesAny reports whether the package path matches one of the go-style
// patterns, interpreted relative to the module root.
func matchesAny(patterns []string, modPath, pkgPath string) bool {
	if len(patterns) == 0 {
		return true
	}
	rel := "."
	if pkgPath != modPath {
		rel = "./" + strings.TrimPrefix(pkgPath, modPath+"/")
	}
	for _, pat := range patterns {
		pat = strings.TrimSuffix(pat, "/")
		switch {
		case pat == "./..." || pat == "all":
			return true
		case strings.HasSuffix(pat, "/..."):
			prefix := strings.TrimSuffix(pat, "/...")
			if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
				return true
			}
		case pat == rel || pat == pkgPath:
			return true
		}
	}
	return false
}
