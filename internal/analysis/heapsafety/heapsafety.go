// Package heapsafety audits the callbacks handed to the event heap. The
// engine is single-threaded on purpose — every hardware model mutates
// shared state from inside callbacks with no locking — and a callback
// runs long after the statement that scheduled it. Three things therefore
// have no place inside a sim.Engine.At/After closure: goroutines (they
// race the event loop), re-entrant Run/Step calls (they corrupt the
// clock), and loop variables captured from an enclosing loop (safe only
// under Go >= 1.22 per-iteration semantics; an explicit copy keeps the
// deferred capture correct under every toolchain and obvious to readers).
package heapsafety

import (
	"go/ast"
	"go/types"

	"tca/internal/analysis/framework"
)

// Analyzer flags goroutine spawns, engine re-entry and loop-variable
// captures inside callbacks scheduled on sim.Engine.
var Analyzer = &framework.Analyzer{
	Name: "heapsafety",
	Doc: `audit closures scheduled on the event heap

Callbacks passed to sim.Engine.At/After must not spawn goroutines (the
engine is single-threaded by design), must not call Run/RunUntil/RunFor/
Step re-entrantly, and must not capture an enclosing loop's iteration
variable — copy it to a named local first so the deferred capture does
not silently depend on Go 1.22 loop-variable semantics.`,
	Run: run,
}

// scheduleMethods are the sim.Engine methods that accept a deferred
// callback.
var scheduleMethods = []string{"At", "After"}

// reentrantMethods advance the engine and must never run from inside a
// handler.
var reentrantMethods = map[string]bool{
	"Run": true, "RunUntil": true, "RunFor": true, "Step": true,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		walk(pass, file, map[types.Object]bool{})
	}
	return nil
}

// walk traverses the file keeping the set of loop variables in scope.
// When it reaches a schedule call, it audits every function-literal
// argument against that set.
func walk(pass *framework.Pass, n ast.Node, loopVars map[types.Object]bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.RangeStmt:
			if c.Key != nil || c.Value != nil {
				inner := withLoopVars(pass, loopVars, c.Key, c.Value)
				walkParts(pass, loopVars, c.X)
				walkParts(pass, inner, c.Body)
				return false
			}
		case *ast.ForStmt:
			if assign, ok := c.Init.(*ast.AssignStmt); ok {
				inner := withLoopVars(pass, loopVars, assign.Lhs...)
				for _, rhs := range assign.Rhs {
					walkParts(pass, loopVars, rhs)
				}
				walkParts(pass, inner, c.Cond, c.Post, c.Body)
				return false
			}
		case *ast.CallExpr:
			if isScheduleCall(pass, c) {
				for _, arg := range c.Args {
					if lit, ok := arg.(*ast.FuncLit); ok {
						auditCallback(pass, lit, loopVars)
					}
				}
			}
		}
		return true
	})
}

func walkParts(pass *framework.Pass, loopVars map[types.Object]bool, parts ...ast.Node) {
	for _, p := range parts {
		if p != nil {
			walk(pass, p, loopVars)
		}
	}
}

// withLoopVars returns loopVars extended with the objects the given
// identifier expressions define.
func withLoopVars(pass *framework.Pass, loopVars map[types.Object]bool, exprs ...ast.Expr) map[types.Object]bool {
	inner := make(map[types.Object]bool, len(loopVars)+len(exprs))
	for k := range loopVars {
		inner[k] = true
	}
	for _, e := range exprs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			inner[obj] = true
		}
	}
	return inner
}

// isScheduleCall reports whether the call schedules a deferred callback
// on the event engine.
func isScheduleCall(pass *framework.Pass, call *ast.CallExpr) bool {
	for _, m := range scheduleMethods {
		if framework.MethodOn(pass, call, "sim", "Engine", m) {
			return true
		}
	}
	return false
}

// auditCallback checks one scheduled closure. Loop variables declared
// inside the literal itself shadow the outer set and are fine.
func auditCallback(pass *framework.Pass, lit *ast.FuncLit, loopVars map[types.Object]bool) {
	reported := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(),
				"goroutine spawned inside an engine callback; the event loop is single-threaded by design")
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && reentrantMethods[fn.Name()] {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
						if pkg, typ, ok := framework.Named(sig.Recv().Type()); ok && pkg == "sim" && typ == "Engine" {
							pass.Reportf(n.Pos(),
								"re-entrant Engine.%s inside an engine callback corrupts the clock; schedule follow-up work instead", fn.Name())
						}
					}
				}
			}
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[n]
			if obj != nil && loopVars[obj] && !reported[obj] {
				reported[obj] = true
				pass.Reportf(n.Pos(),
					"engine callback captures loop variable %s; copy it to a local before scheduling so the deferred capture is explicit", n.Name)
			}
		}
		return true
	})
}
