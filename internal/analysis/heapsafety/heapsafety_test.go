package heapsafety_test

import (
	"testing"

	"tca/internal/analysis/analysistest"
	"tca/internal/analysis/heapsafety"
)

func TestHeapSafety(t *testing.T) {
	analysistest.Run(t, "testdata", heapsafety.Analyzer, "heapfix")
}
