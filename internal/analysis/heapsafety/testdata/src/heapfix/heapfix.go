// Package heapfix exercises the heapsafety analyzer: goroutines,
// re-entrant engine calls and loop-variable captures inside scheduled
// callbacks.
package heapfix

import "sim"

func work() {}

func schedule(eng *sim.Engine, items []sim.Time) {
	for _, it := range items {
		it := it
		eng.At(it, func() { _ = it }) // ok: explicit copy captured
	}
	for _, it := range items {
		eng.At(0, func() { _ = it }) // want `captures loop variable it`
	}
	for i := 0; i < len(items); i++ {
		eng.After(1, func() { _ = items[i] }) // want `captures loop variable i`
	}
	eng.At(0, func() {
		go work() // want `goroutine spawned inside an engine callback`
	})
	eng.At(0, func() {
		eng.Run() // want `re-entrant Engine\.Run`
	})
	eng.At(0, func() {
		eng.Step() // want `re-entrant Engine\.Step`
	})
	eng.After(1, func() { work() })                  // ok: plain deferred work
	eng.After(1, func() { eng.After(1, func() {}) }) // ok: scheduling more work is fine
}
