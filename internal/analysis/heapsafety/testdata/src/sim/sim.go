// Package sim is a fixture stand-in for the real engine: the heapsafety
// analyzer identifies sim.Engine by defining package name and type name.
package sim

// Time mirrors the picosecond timestamp.
type Time int64

// Duration mirrors units.Duration locally to keep the fixture small.
type Duration int64

// Engine mirrors the scheduling and run surface of the real engine.
type Engine struct{}

func (e *Engine) Now() Time                   { return 0 }
func (e *Engine) At(t Time, fn func())        {}
func (e *Engine) After(d Duration, fn func()) {}
func (e *Engine) Run() Time                   { return 0 }
func (e *Engine) RunUntil(deadline Time)      {}
func (e *Engine) RunFor(d Duration)           {}
func (e *Engine) Step() bool                  { return false }
