// Package lockorder audits the few places the simulator does use locks —
// the obsv observability layer, whose recorders and registries are read
// by CLI goroutines while the engine writes them — for the two classic
// mutex bugs that testing rarely catches:
//
//   - inconsistent acquisition order: if one function locks A then B and
//     another locks B then A, the pair can deadlock. Each function's
//     nested acquisitions contribute ordering edges keyed by (type, mutex
//     field); edges accumulate across packages through a package fact, and
//     the edge that closes a cycle is reported where it appears.
//   - unguarded reads: a field written only while a receiver's mutex is
//     held is part of that mutex's protected state; a method of the same
//     type that reads the field without taking the lock races the writers.
//     Guarded fields are discovered per package and marked with object
//     facts so reads are checked wherever the type is used.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"tca/internal/analysis/framework"
)

// guardedFact marks a struct field as protected by a named mutex field of
// the same struct: it is only ever written with that mutex held.
type guardedFact struct {
	// Mutex is the guarding field's name, e.g. "mu".
	Mutex string
}

// AFact implements framework.Fact.
func (*guardedFact) AFact() {}

// lockEdgesFact carries a package's accumulated lock-ordering edges (its
// own plus its dependencies') to importing packages.
type lockEdgesFact struct {
	// Edges lists "From->To" pairs of lock keys ("pkg.Type.field").
	Edges []string
}

// AFact implements framework.Fact.
func (*lockEdgesFact) AFact() {}

// Analyzer reports inconsistent mutex acquisition order and unguarded
// reads of mutex-protected fields.
var Analyzer = &framework.Analyzer{
	Name: "lockorder",
	Doc: `check mutex acquisition order and guarded-field access

Nested mutex acquisitions must follow one global order: if any function
locks A before B, no function (in any package — edges travel as facts)
may lock B before A. Fields written only under a receiver's mutex are
that mutex's protected state; methods reading them without the lock are
reported.`,
	Run:       run,
	FactTypes: []framework.Fact{(*guardedFact)(nil), (*lockEdgesFact)(nil)},
}

func run(pass *framework.Pass) error {
	edges, edgePos := collectEdges(pass)
	checkCycles(pass, edges, edgePos)
	checkGuardedFields(pass)
	return nil
}

// lockKey names one mutex for ordering purposes: the receiver's package
// path, type and field, or the package path and variable name for a
// package-level mutex.
func lockKey(pass *framework.Pass, sel *ast.SelectorExpr) (string, bool) {
	if !isMutexMethod(pass, sel, "Lock") && !isMutexMethod(pass, sel, "RLock") {
		return "", false
	}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		// recv.mu.Lock(): key by the owner's type and field name.
		tv, ok := pass.TypesInfo.Types[x.X]
		if !ok {
			return "", false
		}
		t := tv.Type
		if ptr, okP := t.(*types.Pointer); okP {
			t = ptr.Elem()
		}
		named, okN := t.(*types.Named)
		if !okN || named.Obj().Pkg() == nil {
			return "", false
		}
		return fmt.Sprintf("%s.%s.%s", named.Obj().Pkg().Path(), named.Obj().Name(), x.Sel.Name), true
	case *ast.Ident:
		// mu.Lock() on a package-level or local mutex.
		v, ok := pass.TypesInfo.ObjectOf(x).(*types.Var)
		if !ok || v.Pkg() == nil {
			return "", false
		}
		if v.Parent() != v.Pkg().Scope() {
			return "", false // local mutexes cannot deadlock across functions
		}
		return fmt.Sprintf("%s.%s", v.Pkg().Path(), v.Name()), true
	}
	return "", false
}

// isMutexMethod reports whether sel selects method name on a sync.Mutex /
// sync.RWMutex (possibly embedded).
func isMutexMethod(pass *framework.Pass, sel *ast.SelectorExpr, name string) bool {
	if sel.Sel.Name != name {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, okS := fn.Type().(*types.Signature)
	if !okS || sig.Recv() == nil {
		return false
	}
	p, t, okN := framework.Named(sig.Recv().Type())
	return okN && p == "sync" && (t == "Mutex" || t == "RWMutex")
}

// collectEdges walks every function, tracking the set of held locks in
// source order, and records an ordering edge for each acquisition made
// while another lock is held.
func collectEdges(pass *framework.Pass) ([]string, map[string]ast.Node) {
	seen := make(map[string]bool)
	var edges []string
	edgePos := make(map[string]ast.Node)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var held []string // acquisition-ordered
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if _, okD := n.(*ast.DeferStmt); okD {
					return false // defer mu.Unlock() releases at return, not here
				}
				call, okC := n.(*ast.CallExpr)
				if !okC {
					return true
				}
				sel, okS := call.Fun.(*ast.SelectorExpr)
				if !okS {
					return true
				}
				if key, okK := lockKey(pass, sel); okK {
					for _, h := range held {
						if h == key {
							continue // re-lock of the same key: a bug, but not an ordering edge
						}
						e := h + "->" + key
						if !seen[e] {
							seen[e] = true
							edges = append(edges, e)
							edgePos[e] = call
						}
					}
					held = append(held, key)
					return true
				}
				if isMutexMethod(pass, sel, "Unlock") || isMutexMethod(pass, sel, "RUnlock") {
					// Drop the most recent matching hold. Source order is an
					// approximation, but lock/unlock in the suite's code is
					// strictly scoped (defer or immediate), so it holds.
					if key, okK := unlockKey(pass, sel); okK {
						for i := len(held) - 1; i >= 0; i-- {
							if held[i] == key {
								held = append(held[:i], held[i+1:]...)
								break
							}
						}
					}
				}
				return true
			})
		}
	}
	return edges, edgePos
}

// unlockKey mirrors lockKey for Unlock/RUnlock calls.
func unlockKey(pass *framework.Pass, sel *ast.SelectorExpr) (string, bool) {
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		tv, ok := pass.TypesInfo.Types[x.X]
		if !ok {
			return "", false
		}
		t := tv.Type
		if ptr, okP := t.(*types.Pointer); okP {
			t = ptr.Elem()
		}
		named, okN := t.(*types.Named)
		if !okN || named.Obj().Pkg() == nil {
			return "", false
		}
		return fmt.Sprintf("%s.%s.%s", named.Obj().Pkg().Path(), named.Obj().Name(), x.Sel.Name), true
	case *ast.Ident:
		v, ok := pass.TypesInfo.ObjectOf(x).(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return "", false
		}
		return fmt.Sprintf("%s.%s", v.Pkg().Path(), v.Name()), true
	}
	return "", false
}

// checkCycles merges the dependency packages' edges (via facts) with this
// package's, reports any edge of this package that closes a cycle, and
// exports the union for downstream packages.
func checkCycles(pass *framework.Pass, edges []string, edgePos map[string]ast.Node) {
	all := make(map[string]bool)
	for _, imp := range pass.Pkg.Imports() {
		var fact lockEdgesFact
		if pass.ImportPackageFact(imp, &fact) {
			for _, e := range fact.Edges {
				all[e] = true
			}
		}
	}

	adj := make(map[string][]string)
	addEdge := func(e string) (from, to string, ok bool) {
		for i := 0; i+1 < len(e); i++ {
			if e[i] == '-' && e[i+1] == '>' {
				return e[:i], e[i+2:], true
			}
		}
		return "", "", false
	}
	var keys []string
	for e := range all {
		keys = append(keys, e)
	}
	sort.Strings(keys)
	for _, e := range keys {
		if from, to, ok := addEdge(e); ok {
			adj[from] = append(adj[from], to)
		}
	}

	reaches := func(from, to string) bool {
		seen := map[string]bool{from: true}
		work := []string{from}
		for len(work) > 0 {
			cur := work[len(work)-1]
			work = work[:len(work)-1]
			if cur == to {
				return true
			}
			for _, next := range adj[cur] {
				if !seen[next] {
					seen[next] = true
					work = append(work, next)
				}
			}
		}
		return false
	}

	for _, e := range edges {
		from, to, ok := addEdge(e)
		if !ok {
			continue
		}
		if reaches(to, from) {
			pass.Reportf(edgePos[e].Pos(),
				"lock order inverted: %s is acquired while holding %s, but elsewhere %s is acquired first; pick one global order",
				short(to), short(from), short(to))
		}
		adj[from] = append(adj[from], to)
		all[e] = true
	}

	if len(all) > 0 {
		var union []string
		for e := range all {
			union = append(union, e)
		}
		sort.Strings(union)
		pass.ExportPackageFact(&lockEdgesFact{Edges: union})
	}
}

// short trims the package path off a lock key for diagnostics.
func short(key string) string {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '/' {
			return key[i+1:]
		}
	}
	return key
}

// checkGuardedFields finds fields of this package's types written only
// under a same-receiver mutex, exports guardedFacts for them, and reports
// same-type methods that read them without holding any lock.
func checkGuardedFields(pass *framework.Pass) {
	type fieldAccess struct {
		field  *types.Var
		owner  *types.TypeName
		node   ast.Node
		locked bool
		write  bool
		mutex  string // innermost held receiver-mutex field name, if locked
	}
	var accesses []fieldAccess

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recvObj := namedObj(pass.TypesInfo.TypeOf(fd.Recv.List[0].Type))
			if recvObj == nil {
				continue
			}
			recvVar := receiverVar(pass, fd)
			blocks := innermostBlocks(fd.Body)
			// A source-ordered walk: locked tracks whether a receiver
			// mutex is held at each point. Defer-unlocked functions stay
			// locked to the end; explicitly unlocked regions flip back —
			// but only when the Unlock sits in the same block as the Lock,
			// so an early-return branch (`if done { s.mu.Unlock(); return }`)
			// does not end the region for the fallthrough path.
			locked := ""
			var lockBlock *ast.BlockStmt
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.DeferStmt:
					return false // defer mu.Unlock() does not end the region
				case *ast.CallExpr:
					if sel, okS := e.Fun.(*ast.SelectorExpr); okS {
						if inner, okI := sel.X.(*ast.SelectorExpr); okI &&
							framework.RootVar(pass.TypesInfo, inner.X) == recvVar {
							if isMutexMethod(pass, sel, "Lock") || isMutexMethod(pass, sel, "RLock") {
								locked = inner.Sel.Name
								lockBlock = blocks[e.Pos()]
							}
							if isMutexMethod(pass, sel, "Unlock") || isMutexMethod(pass, sel, "RUnlock") {
								if blocks[e.Pos()] == lockBlock {
									locked = ""
								}
							}
						}
					}
				case *ast.AssignStmt:
					for _, lhs := range e.Lhs {
						if f, owner := receiverField(pass, lhs, recvVar, recvObj); f != nil {
							accesses = append(accesses, fieldAccess{
								field: f, owner: owner, node: lhs,
								locked: locked != "", write: true, mutex: locked,
							})
						}
					}
				case *ast.SelectorExpr:
					if f, owner := receiverField(pass, e, recvVar, recvObj); f != nil {
						accesses = append(accesses, fieldAccess{
							field: f, owner: owner, node: e,
							locked: locked != "", mutex: locked,
						})
					}
				}
				return true
			})
		}
	}

	// A field is guarded when it has at least one locked write and no
	// unlocked writes.
	lockedWrites := make(map[*types.Var]string)
	unlockedWrite := make(map[*types.Var]bool)
	for _, a := range accesses {
		if !a.write {
			continue
		}
		if a.locked {
			if _, ok := lockedWrites[a.field]; !ok {
				lockedWrites[a.field] = a.mutex
			}
		} else {
			unlockedWrite[a.field] = true
		}
	}
	for f, mu := range lockedWrites {
		if !unlockedWrite[f] && !isMutexField(f) {
			pass.ExportObjectFact(f, &guardedFact{Mutex: mu})
		}
	}

	// Report unlocked reads of guarded fields (including fields guarded in
	// an upstream package, via the imported facts).
	for _, a := range accesses {
		if a.write || a.locked {
			continue
		}
		var fact guardedFact
		if pass.ImportObjectFact(a.field, &fact) {
			pass.Reportf(a.node.Pos(),
				"field %s of %s is written under %s.%s elsewhere; reading it without the lock races those writers",
				a.field.Name(), a.owner.Name(), a.owner.Name(), fact.Mutex)
		}
	}
}

// receiverField resolves expr as a direct field selection recv.f on the
// method's own receiver and returns the field object.
func receiverField(pass *framework.Pass, expr ast.Expr, recvVar *types.Var, recvObj *types.TypeName) (*types.Var, *types.TypeName) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || recvVar == nil {
		return nil, nil
	}
	if framework.RootVar(pass.TypesInfo, sel.X) != recvVar {
		return nil, nil
	}
	s, okS := pass.TypesInfo.Selections[sel]
	if !okS || s.Kind() != types.FieldVal {
		return nil, nil
	}
	f, okF := s.Obj().(*types.Var)
	if !okF {
		return nil, nil
	}
	return f, recvObj
}

// innermostBlocks maps each node position in body to its innermost
// enclosing statement list, ignoring nested function literals.
func innermostBlocks(body *ast.BlockStmt) map[token.Pos]*ast.BlockStmt {
	m := make(map[token.Pos]*ast.BlockStmt)
	var walk func(n ast.Node, cur *ast.BlockStmt)
	walk = func(n ast.Node, cur *ast.BlockStmt) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch b := c.(type) {
			case *ast.BlockStmt:
				if b != n {
					walk(b, b)
					return false
				}
			case *ast.FuncLit:
				return false
			default:
				if c != nil {
					m[c.Pos()] = cur
				}
			}
			return true
		})
	}
	walk(body, body)
	return m
}

func receiverVar(pass *framework.Pass, fd *ast.FuncDecl) *types.Var {
	names := fd.Recv.List[0].Names
	if len(names) == 0 {
		return nil
	}
	v, _ := pass.TypesInfo.Defs[names[0]].(*types.Var)
	return v
}

func namedObj(t types.Type) *types.TypeName {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

func isMutexField(f *types.Var) bool {
	p, t, ok := framework.Named(f.Type())
	return ok && p == "sync" && (t == "Mutex" || t == "RWMutex")
}
