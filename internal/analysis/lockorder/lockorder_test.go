package lockorder_test

import (
	"testing"

	"tca/internal/analysis/analysistest"
	"tca/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "lockfix", "crosslock")
}
