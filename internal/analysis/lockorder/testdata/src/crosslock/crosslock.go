// Package crosslock closes a lock-order cycle against an edge recorded in
// the lockfix package: the ordering graph travels between packages as a
// package fact, so the inversion is caught here even though the other
// half of the cycle lives upstream.
package crosslock

import "lockfix"

// Pump locks Journal before Table; lockfix.Commit established the
// opposite order.
func Pump(t *lockfix.Table, j *lockfix.Journal) {
	j.Mu.Lock()
	t.Mu.Lock() // want `lock order inverted: lockfix.Table.Mu is acquired while holding lockfix.Journal.Mu`
	t.Mu.Unlock()
	j.Mu.Unlock()
}
