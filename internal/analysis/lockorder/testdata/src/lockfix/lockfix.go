// Package lockfix exercises the lockorder analyzer: inverted acquisition
// order between two mutexes, unguarded reads of lock-protected fields,
// and the blessed patterns (consistent order, early-return unlock
// branches, defer).
package lockfix

import "sync"

// Registry indexes series under a mutex, like obsv's metric registry.
type Registry struct {
	mu    sync.Mutex
	count int
}

// Recorder buffers spans under its own mutex.
type Recorder struct {
	mu   sync.Mutex
	seen int
	// hint is never written under the lock, so reads are unconstrained.
	hint int
}

// Flush locks Registry then Recorder: this pair fixes the global order.
func (r *Registry) Flush(rec *Recorder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec.mu.Lock()
	rec.seen += r.count
	rec.mu.Unlock()
}

// Drain locks Recorder then Registry: the inverse order can deadlock
// against Flush.
func (rec *Recorder) Drain(r *Registry) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	r.mu.Lock() // want `lock order inverted: lockfix.Registry.mu is acquired while holding lockfix.Recorder.mu`
	r.count = 0
	r.mu.Unlock()
}

// Add writes count under the lock: count is mu-protected state.
func (r *Registry) Add(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count += n
}

// Snapshot reads count without the lock.
func (r *Registry) Snapshot() int {
	return r.count // want `field count of Registry is written under Registry.mu elsewhere`
}

// Count reads under the lock: fine.
func (r *Registry) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// TryAdd unlocks on an early-return branch; the fallthrough write is
// still under the lock and must not be reported.
func (r *Registry) TryAdd(n int) bool {
	r.mu.Lock()
	if n < 0 {
		r.mu.Unlock()
		return false
	}
	r.count += n // ok: the early unlock is on the rejected branch only
	r.mu.Unlock()
	return true
}

// Hint reads a field that is never written under the lock: fine.
func (rec *Recorder) Hint() int { return rec.hint }

// SetHint writes hint without the lock, keeping it unguarded.
func (rec *Recorder) SetHint(h int) { rec.hint = h }

// Table and Journal expose their mutexes so importing packages can nest
// them — the cross-package half of the ordering graph.
type Table struct {
	Mu   sync.Mutex
	rows int
}

// Journal is the second exported-mutex type.
type Journal struct {
	Mu      sync.Mutex
	entries int
}

// Commit locks Table then Journal, fixing the cross-package order.
func Commit(t *Table, j *Journal) {
	t.Mu.Lock()
	defer t.Mu.Unlock()
	j.Mu.Lock()
	j.entries += t.rows
	j.Mu.Unlock()
}
