// Package nilprobe pins the zero-cost disabled observability path. The
// nil Sampler / Series / Timeline is the *disabled* instrument: an
// uninstrumented fabric passes nil receivers through every probe call,
// and PR 2's benchmarks pinned that path as allocation-free. That only
// holds while every exported method on those types starts with a
// nil-receiver guard — one missing guard turns the disabled path into a
// nil-pointer crash on the first uninstrumented run.
package nilprobe

import (
	"go/ast"
	"go/token"
	"strings"

	"tca/internal/analysis/framework"
)

// Analyzer flags exported pointer-receiver methods on obsv's probe,
// sampler and series types that do not open with a nil-receiver guard.
var Analyzer = &framework.Analyzer{
	Name: "nilprobe",
	Doc: `require nil-receiver guards on obsv probe/sampler/series methods

The nil value of Sampler, Series and Timeline (and any *Probe type) is
the disabled instrument; exported methods must begin with
"if r == nil { ... }" so disabled telemetry stays a zero-alloc no-op
instead of a crash.`,
	Run: run,
}

// guardedTypes lists the obsv receiver types whose nil value means
// "telemetry disabled".
var guardedTypes = map[string]bool{
	"Sampler": true, "Series": true, "Timeline": true,
}

func run(pass *framework.Pass) error {
	if pass.Pkg.Name() != "obsv" {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || !fn.Name.IsExported() || fn.Body == nil {
				continue
			}
			recvName, typeName, ok := pointerReceiver(fn)
			if !ok || !(guardedTypes[typeName] || strings.HasSuffix(typeName, "Probe")) {
				continue
			}
			if recvName == "" || recvName == "_" {
				pass.Reportf(fn.Pos(),
					"exported method (*%s).%s discards its receiver and cannot nil-guard; name the receiver and guard it",
					typeName, fn.Name.Name)
				continue
			}
			if !startsWithNilGuard(fn.Body, recvName) {
				pass.Reportf(fn.Pos(),
					"exported method (*%s).%s must begin with `if %s == nil` so the disabled (nil) instrument stays a no-op",
					typeName, fn.Name.Name, recvName)
			}
		}
	}
	return nil
}

// pointerReceiver returns the receiver variable name and the pointed-to
// type name for a *T receiver.
func pointerReceiver(fn *ast.FuncDecl) (recvName, typeName string, ok bool) {
	if len(fn.Recv.List) != 1 {
		return "", "", false
	}
	field := fn.Recv.List[0]
	star, isStar := field.Type.(*ast.StarExpr)
	if !isStar {
		return "", "", false
	}
	base := star.X
	if idx, isIdx := base.(*ast.IndexExpr); isIdx { // generic receiver
		base = idx.X
	}
	id, isIdent := base.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	if len(field.Names) == 1 {
		recvName = field.Names[0].Name
	}
	return recvName, id.Name, true
}

// startsWithNilGuard reports whether the body's first statement is an if
// whose condition checks recv == nil (alone or as the leading operand of
// a || chain).
func startsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	return condChecksNil(ifStmt.Cond, recv)
}

func condChecksNil(cond ast.Expr, recv string) bool {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.LOR:
		return condChecksNil(bin.X, recv)
	case token.EQL:
		return isIdentNamed(bin.X, recv) && isNil(bin.Y) ||
			isIdentNamed(bin.Y, recv) && isNil(bin.X)
	}
	return false
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
