// Package nilprobe pins the zero-cost disabled paths. The nil
// Sampler / Series / Timeline is the *disabled* instrument, and the nil
// fault.Injector is the *perfect* fabric: an uninstrumented or
// fault-free run passes nil receivers through every probe and injection
// call, and PR 2's benchmarks pinned those paths as allocation-free and
// byte-identical to the baselines. That only holds while every exported
// method on those types starts with a nil-receiver guard — one missing
// guard turns the disabled path into a nil-pointer crash on the first
// uninstrumented run.
package nilprobe

import (
	"go/ast"
	"go/token"
	"strings"

	"tca/internal/analysis/framework"
)

// Analyzer flags exported pointer-receiver methods on nil-means-disabled
// types that do not open with a nil-receiver guard.
var Analyzer = &framework.Analyzer{
	Name: "nilprobe",
	Doc: `require nil-receiver guards on nil-means-disabled types

The nil value of obsv's Sampler, Series and Timeline (and any *Probe
type) is the disabled instrument, and the nil fault.Injector is the
perfect fabric; exported methods must begin with "if r == nil { ... }"
so the disabled path stays a zero-alloc no-op instead of a crash.`,
	Run: run,
}

// guardedPkgs maps each audited package to the receiver types whose nil
// value means "disabled". In obsv, any *Probe-suffixed type is guarded
// too.
var guardedPkgs = map[string]map[string]bool{
	"obsv":  {"Sampler": true, "Series": true, "Timeline": true},
	"fault": {"Injector": true},
}

func run(pass *framework.Pass) error {
	guarded, ok := guardedPkgs[pass.Pkg.Name()]
	if !ok {
		return nil
	}
	probeSuffix := pass.Pkg.Name() == "obsv"
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || !fn.Name.IsExported() || fn.Body == nil {
				continue
			}
			recvName, typeName, ok := pointerReceiver(fn)
			if !ok || !(guarded[typeName] || probeSuffix && strings.HasSuffix(typeName, "Probe")) {
				continue
			}
			if recvName == "" || recvName == "_" {
				pass.Reportf(fn.Pos(),
					"exported method (*%s).%s discards its receiver and cannot nil-guard; name the receiver and guard it",
					typeName, fn.Name.Name)
				continue
			}
			if !startsWithNilGuard(fn.Body, recvName) {
				pass.Reportf(fn.Pos(),
					"exported method (*%s).%s must begin with `if %s == nil` so the disabled (nil) instrument stays a no-op",
					typeName, fn.Name.Name, recvName)
			}
		}
	}
	return nil
}

// pointerReceiver returns the receiver variable name and the pointed-to
// type name for a *T receiver.
func pointerReceiver(fn *ast.FuncDecl) (recvName, typeName string, ok bool) {
	if len(fn.Recv.List) != 1 {
		return "", "", false
	}
	field := fn.Recv.List[0]
	star, isStar := field.Type.(*ast.StarExpr)
	if !isStar {
		return "", "", false
	}
	base := star.X
	if idx, isIdx := base.(*ast.IndexExpr); isIdx { // generic receiver
		base = idx.X
	}
	id, isIdent := base.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	if len(field.Names) == 1 {
		recvName = field.Names[0].Name
	}
	return recvName, id.Name, true
}

// startsWithNilGuard reports whether the body's first statement is an if
// whose condition checks recv == nil (alone or as the leading operand of
// a || chain).
func startsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifStmt, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	return condChecksNil(ifStmt.Cond, recv)
}

func condChecksNil(cond ast.Expr, recv string) bool {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.LOR:
		return condChecksNil(bin.X, recv)
	case token.EQL:
		return isIdentNamed(bin.X, recv) && isNil(bin.Y) ||
			isIdentNamed(bin.Y, recv) && isNil(bin.X)
	}
	return false
}

func isIdentNamed(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
