package nilprobe_test

import (
	"testing"

	"tca/internal/analysis/analysistest"
	"tca/internal/analysis/nilprobe"
)

func TestNilProbe(t *testing.T) {
	analysistest.Run(t, "testdata", nilprobe.Analyzer, "obsv", "fault")
}
