// Package fault exercises the nilprobe analyzer's fault rules: the nil
// Injector is the perfect fabric and every exported method must no-op
// (or answer "no fault") on it.
package fault

type Injector struct {
	enabled bool
	drops   uint64
}

// Enabled guards first: ok.
func (j *Injector) Enabled() bool {
	if j == nil {
		return false
	}
	return j.enabled
}

// DropTLP guards in a disjunction: ok.
func (j *Injector) DropTLP() bool {
	if j == nil || !j.enabled {
		return false
	}
	j.drops++
	return true
}

func (j *Injector) Drops() uint64 { // want `must begin with .if j == nil.`
	return j.drops
}

func (j *Injector) NoteReplay() { // want `must begin with .if j == nil.`
	j.drops++
}

// draw is unexported: internal callers already hold a non-nil receiver.
func (j *Injector) draw() bool { // ok
	return j.enabled
}

// Profile is a value type: copies cannot be the disabled injector.
type Profile struct{ Seed int64 }

func (p Profile) Zero() bool { return p.Seed == 0 } // ok: value receiver

// Counts is not in the guarded list for fault: pointer methods on it are
// not required to guard.
type Counts struct{ n uint64 }

func (c *Counts) Total() uint64 { return c.n } // ok: unguarded type
