// Package obsv exercises the nilprobe analyzer: the nil Sampler / Series /
// Timeline is the disabled instrument and every exported method must
// no-op on it.
package obsv

type Sampler struct{ ticks uint64 }

// Ticks guards first: ok.
func (s *Sampler) Ticks() uint64 {
	if s == nil {
		return 0
	}
	return s.ticks
}

// Running guards in a disjunction: ok.
func (s *Sampler) Running() bool {
	if s == nil || s.ticks == 0 {
		return false
	}
	return true
}

func (s *Sampler) Reset() { // want `must begin with .if s == nil.`
	s.ticks = 0
}

type Series struct{ n int }

// Len guards: ok.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return s.n
}

func (s *Series) Grow() { // want `must begin with .if s == nil.`
	s.n++
}

// append is unexported: internal callers already hold a non-nil receiver.
func (s *Series) append(v int) { // ok
	s.n += v
}

type Timeline struct{ series []*Series }

func (t *Timeline) Find(name string) *Series { // want `must begin with .if t == nil.`
	return t.series[0]
}

type LinkProbe struct{ v float64 }

// Value guards: ok.
func (p *LinkProbe) Value() float64 {
	if p == nil {
		return 0
	}
	return p.v
}

func (p *LinkProbe) Set(v float64) { // want `must begin with .if p == nil.`
	p.v = v
}

// Snapshot is a value type: copies cannot be the disabled instrument.
type Snapshot struct{ n int }

func (s Snapshot) Count() int { return s.n } // ok: value receiver
