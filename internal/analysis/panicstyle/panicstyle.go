// Package panicstyle keeps fabric faults attributable. A panic raised by
// a hardware model is the simulator's machine-check exception; when a
// 16-node sweep dies mid-run the message must say which component of
// which node tripped, so every panic in the hardware packages carries the
// component name up front — "peach2 %s: ...", "switch %s: ...",
// "%s: ..." with a DevName, or the bare package prefix "pcie: ...".
package panicstyle

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"tca/internal/analysis/framework"
)

// Analyzer flags panics in hardware-model packages whose message does not
// start with a component tag.
var Analyzer = &framework.Analyzer{
	Name: "panicstyle",
	Doc: `require component-tagged panic messages in hardware-model packages

In peach2, pcie, host and tcanet every panic must identify its component:
the message (a string literal, or the format string of fmt.Sprintf /
fmt.Errorf) must begin with the package name ("pcie: ..."), a component
kind plus dynamic name ("switch %s: ..."), or a dynamic device name
("%s: ..."). panic(err) and untagged literals lose the fault's origin
once sweeps run hundreds of nodes.`,
	Run: run,
}

// hardwarePackages are the packages modeling hardware whose faults must
// stay attributable.
var hardwarePackages = map[string]bool{
	"peach2": true, "pcie": true, "host": true, "tcanet": true,
}

// dynamicTag matches "%s: ..." / "%v ..." — a component name substituted
// at fault time.
var dynamicTag = regexp.MustCompile(`^%[sv][ :]`)

// kindTag matches "switch %s: ..." / "link %v: ..." — a component kind
// followed by a dynamic instance name.
var kindTag = regexp.MustCompile(`^[a-z][a-z0-9]* %[sv][ :]`)

func run(pass *framework.Pass) error {
	if !hardwarePackages[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isBuiltinPanic(pass, call) || len(call.Args) != 1 {
				return true
			}
			checkPanic(pass, call)
			return true
		})
	}
	return nil
}

func isBuiltinPanic(pass *framework.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

func checkPanic(pass *framework.Pass, call *ast.CallExpr) {
	pkg := pass.Pkg.Name()
	lit, found := messageLiteral(pass, call.Args[0])
	if !found {
		pass.Reportf(call.Pos(),
			"panic without a component-tagged message in package %s; wrap the value: panic(fmt.Sprintf(%q, name, err))",
			pkg, pkg+" %s: %v")
		return
	}
	if !tagged(pkg, lit) {
		pass.Reportf(call.Pos(),
			"panic message %q does not start with a component tag (%q, \"<kind> %%s: \", or \"%%s: \")",
			truncate(lit, 40), pkg+": ")
	}
}

// messageLiteral extracts the message's string literal: the argument
// itself, or the format string of an fmt.Sprintf / fmt.Errorf argument.
func messageLiteral(pass *framework.Pass, arg ast.Expr) (string, bool) {
	if call, ok := arg.(*ast.CallExpr); ok {
		sel, okSel := call.Fun.(*ast.SelectorExpr)
		if !okSel || len(call.Args) == 0 {
			return "", false
		}
		fn, okFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !okFn || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" ||
			(fn.Name() != "Sprintf" && fn.Name() != "Errorf" && fn.Name() != "Sprint") {
			return "", false
		}
		arg = call.Args[0]
	}
	lit, ok := arg.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// tagged reports whether the message starts with an accepted component
// tag for the package.
func tagged(pkg, msg string) bool {
	if strings.HasPrefix(msg, pkg+" ") || strings.HasPrefix(msg, pkg+":") {
		return true
	}
	return dynamicTag.MatchString(msg) || kindTag.MatchString(msg)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}
