package panicstyle_test

import (
	"testing"

	"tca/internal/analysis/analysistest"
	"tca/internal/analysis/panicstyle"
)

func TestPanicStyle(t *testing.T) {
	analysistest.Run(t, "testdata", panicstyle.Analyzer, "peach2")
}
