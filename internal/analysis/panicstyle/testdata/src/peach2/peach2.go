// Package peach2 exercises the panicstyle analyzer inside a
// hardware-model package name.
package peach2

import "fmt"

type chip struct{ name string }

func okPackageTag(c *chip) {
	panic(fmt.Sprintf("peach2 %s: doorbell while DMAC busy", c.name)) // ok
}

func okBareTag() {
	panic("peach2: plan missing") // ok
}

func okKindTag(name string) {
	panic(fmt.Sprintf("switch %s: window overlap", name)) // ok: component kind + dynamic name
}

func okDynamicTag(devName string) {
	panic(fmt.Sprintf("%s: store to unmapped address", devName)) // ok: dynamic device name
}

func badErrValue(err error) {
	panic(err) // want `panic without a component-tagged message`
}

func badUntaggedLiteral() {
	panic("doorbell while DMAC busy") // want `does not start with a component tag`
}

func badUntaggedSprintf(n int) {
	panic(fmt.Sprintf("bad descriptor count %d", n)) // want `does not start with a component tag`
}
