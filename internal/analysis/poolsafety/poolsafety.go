// Package poolsafety audits the lifecycle of pooled objects — values drawn
// from a free-list pool with Get and returned with Release. The simulator
// recycles hot-path TLPs through pcie.TLPPool to keep steady-state
// event processing allocation-free, and recycling has exactly the failure
// modes garbage collection was invented to remove: use-after-release reads
// a packet that now belongs to someone else, double-release corrupts the
// free list, and a pooled pointer squirreled away in a struct or closure
// outlives its loan. The analyzer enforces the loan discipline statically.
//
// A type opts in by carrying a `//tca:pooled` marker in its doc comment.
// The marker is exported as an object fact from the defining package, so
// the rules follow the type into every importing package without
// whole-program analysis.
//
// Within each function the analyzer tracks variables bound to the result
// of a pool Get (a method named Get returning a pointer to a marked type)
// using the framework's def-use chains:
//
//   - the value must be consumed exactly once: released, returned, sent on
//     a channel, or handed to a callee (ownership transfers through call
//     arguments — Send, action constructors — are trusted);
//   - no use of the variable may follow its Release in the same block;
//   - Release must not run twice on the same binding;
//   - the pointer must not be stored into a struct field, slice, map or
//     package-level variable, or be captured by a function literal, unless
//     Pin() detached it from the pool first.
package poolsafety

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tca/internal/analysis/framework"
)

// pooledFact marks a named type whose doc comment carries //tca:pooled.
// It travels from the type's defining package to every importer.
type pooledFact struct {
	// Marker records the comment that opted the type in, for -list style
	// debugging; facts must carry at least one exported field to satisfy
	// the gob round trip.
	Marker string
}

// AFact implements framework.Fact.
func (*pooledFact) AFact() {}

// Analyzer enforces the Get/Release loan discipline on //tca:pooled types.
var Analyzer = &framework.Analyzer{
	Name: "poolsafety",
	Doc: `enforce the Get/Release lifecycle of //tca:pooled objects

Values drawn from an object pool (a Get method returning a pointer to a
type whose doc comment carries //tca:pooled) are loans: each must reach
exactly one Release or be handed off (call argument, return, channel
send); no use may follow the Release; Release must not run twice; and the
pointer must not escape into a field, slice, map, package variable or
closure unless Pin() detached it from the pool first.`,
	Run:       run,
	FactTypes: []framework.Fact{(*pooledFact)(nil)},
}

const marker = "//tca:pooled"

func run(pass *framework.Pass) error {
	exportMarkedTypes(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Each function literal is its own scope: a Get inside a
			// closure is checked against that closure's body alone.
			checkBody(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, okLit := n.(*ast.FuncLit); okLit {
					checkBody(pass, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// exportMarkedTypes records a pooledFact for every type in this package
// whose doc comment contains the //tca:pooled marker.
func exportMarkedTypes(pass *framework.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, okTS := spec.(*ast.TypeSpec)
				if !okTS {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if doc == nil || !containsMarker(doc) {
					continue
				}
				obj := pass.TypesInfo.Defs[ts.Name]
				if obj != nil {
					pass.ExportObjectFact(obj, &pooledFact{Marker: marker})
				}
			}
		}
	}
}

func containsMarker(doc *ast.CommentGroup) bool {
	for _, c := range doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), marker) {
			return true
		}
	}
	return false
}

// pooledNamed returns the named type object behind t (unwrapping one
// pointer) if it carries the pooled fact.
func pooledNamed(pass *framework.Pass, t types.Type) *types.TypeName {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	var fact pooledFact
	if pass.ImportObjectFact(obj, &fact) {
		return obj
	}
	return nil
}

// loan is one tracked pool loan: the variable a Get result was bound to.
type loan struct {
	v       *types.Var
	getPos  token.Pos
	consume int // count of consumption points
	pinned  bool
	pinPos  token.Pos
}

// checkBody runs the loan check over one function or closure body,
// ignoring nested function literals (they are separate scopes).
func checkBody(pass *framework.Pass, body *ast.BlockStmt) {
	chains := framework.DefUseChains(pass.TypesInfo, body)
	loans := findLoans(pass, body)
	for _, ln := range loans {
		auditLoan(pass, chains, body, ln)
	}
}

// findLoans locates `v := pool.Get()` / `v = pool.Get()` bindings of
// pooled results to a single variable, skipping nested closures.
func findLoans(pass *framework.Pass, body *ast.BlockStmt) []*loan {
	var loans []*loan
	skipNested(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		call, okCall := as.Rhs[0].(*ast.CallExpr)
		if !okCall || !isPoolGet(pass, call) {
			return
		}
		v := framework.RootVar(pass.TypesInfo, as.Lhs[0])
		if v == nil {
			return
		}
		loans = append(loans, &loan{v: v, getPos: call.Pos()})
	})
	return loans
}

// isPoolGet reports whether call invokes a method named Get returning a
// single pointer to a pooled type.
func isPoolGet(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	fn, okFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !okFn {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil || sig.Results().Len() != 1 {
		return false
	}
	return pooledNamed(pass, sig.Results().At(0).Type()) != nil
}

// auditLoan applies the lifecycle rules to one loan.
func auditLoan(pass *framework.Pass, chains *framework.Chains, body *ast.BlockStmt, ln *loan) {
	name := ln.v.Name()
	var releases []token.Pos
	var uses []token.Pos // reads that are not part of the release itself
	sameBlock := releaseBlocks(body)

	skipNested(body, func(n ast.Node) {
		switch e := n.(type) {
		case *ast.CallExpr:
			if after(e.Pos(), ln.getPos) && receiverIs(pass, e, ln.v) {
				switch methodName(e) {
				case "Release":
					releases = append(releases, e.Pos())
					ln.consume++
					return
				case "Pin":
					ln.pinned = true
					ln.pinPos = e.Pos()
					ln.consume++
					return
				}
			}
			// Handing the pointer to a callee transfers ownership.
			for _, arg := range e.Args {
				if framework.RootVar(pass.TypesInfo, arg) == ln.v && after(arg.Pos(), ln.getPos) {
					if isAppend(pass, e) {
						ln.consume++
						pass.Reportf(arg.Pos(),
							"pooled %s %s appended to a slice that may outlive its release; Pin() it first",
							typeName(pass, ln), name)
					} else {
						ln.consume++
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range e.Results {
				if framework.RootVar(pass.TypesInfo, r) == ln.v && after(r.Pos(), ln.getPos) {
					ln.consume++
				}
			}
		case *ast.SendStmt:
			if framework.RootVar(pass.TypesInfo, e.Value) == ln.v && after(e.Pos(), ln.getPos) {
				ln.consume++
			}
		case *ast.AssignStmt:
			checkEscapeAssign(pass, ln, e)
		case *ast.FuncLit:
			if capturesVar(pass, e, ln.v) && !ln.pinned {
				ln.consume++
				pass.Reportf(e.Pos(),
					"pooled %s %s captured by a closure that may outlive its release; Pin() it first",
					typeName(pass, ln), name)
			}
		}
	})

	// Use-after-release and double-release, restricted to references in
	// the same statement list as the Release call so early-return branches
	// (`if lost { t.Release(); return }`) do not poison the fallthrough
	// path.
	isRelease := make(map[token.Pos]bool, len(releases))
	for _, p := range releases {
		isRelease[p] = true
	}
	flagged := make(map[token.Pos]bool)
	for _, relPos := range releases {
		relBlock := sameBlock[relPos]
		for _, ref := range chains.Refs(ln.v) {
			p := ref.Ident.Pos()
			if p <= relPos || ref.Kind != framework.RefRead || isRelease[p] || flagged[p] {
				continue
			}
			if relBlock != nil && sameBlock[p] == relBlock {
				flagged[p] = true
				uses = append(uses, p)
			}
		}
	}
	for _, p := range uses {
		pass.Reportf(p, "use of pooled %s %s after Release", typeName(pass, ln), name)
	}
	if len(releases) > 1 {
		// A second Release on the same binding in the same block is a
		// double release whatever path reaches it.
		first := releases[0]
		for _, p := range releases[1:] {
			if sameBlock[p] == sameBlock[first] && sameBlock[p] != nil {
				pass.Reportf(p, "double Release of pooled %s %s", typeName(pass, ln), name)
			}
		}
	}
	if ln.consume == 0 && !ln.pinned {
		pass.Reportf(ln.getPos,
			"pooled %s %s is never released or handed off; every pool Get must reach exactly one Release",
			typeName(pass, ln), name)
	}
}

// checkEscapeAssign flags stores of the loaned pointer into locations that
// outlive the function: struct fields, slice/map elements and
// package-level variables.
func checkEscapeAssign(pass *framework.Pass, ln *loan, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		if framework.RootVar(pass.TypesInfo, rhs) != ln.v || !after(rhs.Pos(), ln.getPos) {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		if ln.pinned && ln.pinPos < as.Pos() {
			continue
		}
		switch lhs := as.Lhs[i].(type) {
		case *ast.SelectorExpr:
			ln.consume++
			pass.Reportf(rhs.Pos(),
				"pooled %s %s stored in field %s, which may outlive its release; Pin() it first",
				typeName(pass, ln), ln.v.Name(), lhs.Sel.Name)
		case *ast.IndexExpr:
			ln.consume++
			pass.Reportf(rhs.Pos(),
				"pooled %s %s stored in a slice or map, which may outlive its release; Pin() it first",
				typeName(pass, ln), ln.v.Name())
		case *ast.Ident:
			if v := framework.RootVar(pass.TypesInfo, lhs); v != nil && v.Parent() == pass.Pkg.Scope() {
				ln.consume++
				pass.Reportf(rhs.Pos(),
					"pooled %s %s stored in package-level var %s, which outlives its release; Pin() it first",
					typeName(pass, ln), ln.v.Name(), v.Name())
			}
		}
	}
}

// releaseBlocks maps every position in the body to its innermost
// enclosing statement list, so same-block checks are O(1).
func releaseBlocks(body *ast.BlockStmt) map[token.Pos]*ast.BlockStmt {
	m := make(map[token.Pos]*ast.BlockStmt)
	var walk func(n ast.Node, cur *ast.BlockStmt)
	walk = func(n ast.Node, cur *ast.BlockStmt) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch b := c.(type) {
			case *ast.BlockStmt:
				if b != n {
					walk(b, b)
					return false
				}
			case *ast.FuncLit:
				return false // separate scope
			default:
				if c != nil {
					m[c.Pos()] = cur
				}
			}
			return true
		})
	}
	walk(body, body)
	return m
}

// skipNested walks body invoking fn on every node except those inside
// nested function literals.
func skipNested(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			fn(n) // let the closure-capture check see the literal itself
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

func methodName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return ""
}

// receiverIs reports whether call is a method call whose receiver
// expression names v.
func receiverIs(pass *framework.Pass, call *ast.CallExpr, v *types.Var) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return framework.RootVar(pass.TypesInfo, sel.X) == v
}

func isAppend(pass *framework.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, okB := pass.TypesInfo.Uses[id].(*types.Builtin)
	return okB && b.Name() == "append"
}

func capturesVar(pass *framework.Pass, lit *ast.FuncLit, v *types.Var) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == v {
			found = true
		}
		return !found
	})
	return found
}

func typeName(pass *framework.Pass, ln *loan) string {
	t := ln.v.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

func after(p, q token.Pos) bool { return p > q }
