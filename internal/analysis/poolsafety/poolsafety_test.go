package poolsafety_test

import (
	"testing"

	"tca/internal/analysis/analysistest"
	"tca/internal/analysis/poolsafety"
)

func TestPoolSafety(t *testing.T) {
	analysistest.Run(t, "testdata", poolsafety.Analyzer, "poolfix")
}
