// Package pool is a fixture stand-in for pcie's TLP free list: a marked
// pooled type in its own package, so the analyzer's object fact must cross
// the package boundary to reach the consumer fixture.
package pool

// Packet is a recycled hot-path object.
//
//tca:pooled
type Packet struct {
	Addr uint64
	Data []byte

	pool *Pool
}

// Plain is an unmarked type: the analyzer must ignore its lifecycle.
type Plain struct {
	Addr uint64
}

// Pool is a LIFO free list of Packets.
type Pool struct {
	free []*Packet
}

// Get draws a Packet from the free list.
func (p *Pool) Get() *Packet {
	if n := len(p.free) - 1; n >= 0 {
		t := p.free[n]
		p.free = p.free[:n]
		return t
	}
	return &Packet{pool: p}
}

// GetPlain draws an unmarked object; its results are not tracked.
func (p *Pool) GetPlain() *Plain { return &Plain{} }

// Release returns the packet to its pool.
func (t *Packet) Release() {
	p := t.pool
	if p == nil {
		return
	}
	t.pool = nil
	p.free = append(p.free, t)
}

// Pin detaches the packet from its pool for long-lived aliases.
func (t *Packet) Pin() { t.pool = nil }
