// Package poolfix exercises the poolsafety analyzer: leaks, use after
// release, double release and escapes of pooled packets, plus the guarded
// patterns the simulator actually uses (handoff, Pin, early-return
// release branches).
package poolfix

import "pool"

type ring struct {
	parked *pool.Packet
	buf    []*pool.Packet
}

func send(t *pool.Packet)              {}
func deliver(a uint64, t *pool.Packet) {}

func leak(p *pool.Pool) {
	t := p.Get() // want `pooled Packet t is never released or handed off`
	t.Addr = 1
}

func useAfterRelease(p *pool.Pool) uint64 {
	t := p.Get()
	t.Addr = 2
	t.Release()
	return t.Addr // want `use of pooled Packet t after Release`
}

func doubleRelease(p *pool.Pool) {
	t := p.Get()
	t.Release()
	t.Release() // want `double Release of pooled Packet t`
}

func escapeField(p *pool.Pool, r *ring) {
	t := p.Get()
	r.parked = t // want `pooled Packet t stored in field parked`
}

func escapeAppend(p *pool.Pool, r *ring) {
	t := p.Get()
	r.buf = append(r.buf, t) // want `pooled Packet t appended to a slice`
}

func escapeClosure(p *pool.Pool, run func(func())) {
	t := p.Get()
	run(func() { // want `pooled Packet t captured by a closure`
		send(t)
	})
}

func okRelease(p *pool.Pool) uint64 {
	t := p.Get()
	t.Addr = 3
	a := t.Addr
	t.Release()
	return a // ok: all reads precede the release
}

func okHandoff(p *pool.Pool) {
	t := p.Get()
	t.Addr = 4
	send(t) // ok: ownership transfers to the callee
}

func okHandoffArg(p *pool.Pool) {
	t := p.Get()
	deliver(t.Addr, t) // ok: reading a field while handing off is fine
}

func okReturn(p *pool.Pool) *pool.Packet {
	t := p.Get()
	return t // ok: the caller now owns the loan
}

func okPinThenPark(p *pool.Pool, r *ring) {
	t := p.Get()
	t.Pin()
	r.parked = t // ok: Pin detached it from the pool
}

func okEarlyReturnRelease(p *pool.Pool, lost bool) {
	t := p.Get()
	if lost {
		t.Release()
		return
	}
	send(t) // ok: the release is on the early-return path only
}

func okUntracked(p *pool.Pool) {
	u := p.GetPlain()
	u.Addr = 5 // ok: Plain is not a //tca:pooled type
}
