// Package sharedstate audits mutable state shared across component
// domains. The simulator is single-threaded by design: every hardware
// model owns its state and mutates it only from its own event callbacks,
// which is why the engine needs no locks. That discipline is invisible to
// the compiler — nothing stops a DMAC method from scribbling on a Switch
// field, or two packages from writing the same package-level variable —
// so this analyzer makes it checkable.
//
// A "component" is a type registered with the engine's profiler: any
// struct carrying a field of type sim.CompID. Such types are marked with
// an object fact in their defining package; importing packages see the
// mark and the rules follow.
//
// Two rules:
//
//   - A field of a component must be written only from the component's
//     own domain: its own methods, methods of a type construction-related
//     to it (one embeds or points to the other), same-package free
//     functions (constructors and wiring), or while a sync primitive is
//     blessed (the writing function locks a mutex on the same receiver
//     path, or writes through sync/atomic).
//   - A package-level mutable variable must be written from at most one
//     component domain. Writes from two different method domains — or
//     from a second package, detected through a package fact listing the
//     defining package's own writes — are reported.
package sharedstate

import (
	"go/ast"
	"go/types"
	"strings"

	"tca/internal/analysis/framework"
)

// componentFact marks a named struct type that carries a sim.CompID field
// — the engine-registered components whose state ownership the analyzer
// enforces.
type componentFact struct {
	// Name is the component type's name, carried for diagnostics.
	Name string
}

// AFact implements framework.Fact.
func (*componentFact) AFact() {}

// pkgWritesFact lists the exported package-level variables the defining
// package itself writes, so a second writing package can be detected
// without whole-program analysis.
type pkgWritesFact struct {
	Vars []string
}

// AFact implements framework.Fact.
func (*pkgWritesFact) AFact() {}

// Analyzer reports component fields and package-level variables written
// from more than one component domain without a blessed sync primitive.
var Analyzer = &framework.Analyzer{
	Name: "sharedstate",
	Doc: `flag mutable state written from more than one component domain

The engine is single-threaded and lock-free because each component (any
struct with a sim.CompID field) owns its state. Writes to a component's
fields from an unrelated component's methods, and writes to one
package-level variable from two different domains or two different
packages, break that ownership and are reported unless a sync primitive
blesses them.`,
	Run:       run,
	FactTypes: []framework.Fact{(*componentFact)(nil), (*pkgWritesFact)(nil)},
}

func run(pass *framework.Pass) error {
	exportComponents(pass)

	type writer struct {
		domain string
		pos    ast.Node
	}
	pkgVarWriters := make(map[*types.Var][]writer)
	var exportedWrites []string
	seenExported := make(map[string]bool)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			domain := funcDomain(pass, fd)
			blessed := locksAnything(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var lhss []ast.Expr
				switch e := n.(type) {
				case *ast.AssignStmt:
					lhss = e.Lhs
				case *ast.IncDecStmt:
					lhss = []ast.Expr{e.X}
				default:
					return true
				}
				for _, lhs := range lhss {
					// Rule 1: cross-domain component field write.
					checkComponentWrite(pass, fd, lhs, blessed)

					// Rule 2: package-level var write bookkeeping.
					v := targetVar(pass, lhs)
					if v == nil || v.Parent() == nil {
						continue
					}
					if v.Pkg() == pass.Pkg && v.Parent() == pass.Pkg.Scope() {
						if fd.Name.Name != "init" && !blessed {
							pkgVarWriters[v] = append(pkgVarWriters[v], writer{domain: domain, pos: lhs})
						}
						if v.Exported() && !seenExported[v.Name()] {
							seenExported[v.Name()] = true
							exportedWrites = append(exportedWrites, v.Name())
						}
					} else if v.Pkg() != nil && v.Pkg() != pass.Pkg && v.Parent() == v.Pkg().Scope() {
						// Writing another package's variable: shared if the
						// defining package writes it too.
						var fact pkgWritesFact
						if pass.ImportPackageFact(v.Pkg(), &fact) && contains(fact.Vars, v.Name()) {
							pass.Reportf(lhs.Pos(),
								"package-level var %s.%s is written both by its own package and by %s; shared mutable state needs a single owner or a sync primitive",
								v.Pkg().Name(), v.Name(), pass.Pkg.Name())
						}
					}
				}
				return true
			})
		}
	}

	// Rule 2, intra-package: one variable, two domains.
	for v, ws := range pkgVarWriters {
		first := ws[0]
		for _, w := range ws[1:] {
			if w.domain != first.domain {
				pass.Reportf(w.pos.Pos(),
					"package-level var %s is written from component domains %s and %s without a sync primitive; give it a single owner",
					v.Name(), first.domain, w.domain)
				break
			}
		}
	}

	if len(exportedWrites) > 0 {
		pass.ExportPackageFact(&pkgWritesFact{Vars: exportedWrites})
	}
	return nil
}

// exportComponents marks every struct type in this package that carries a
// sim.CompID field.
func exportComponents(pass *framework.Pass) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, okN := tn.Type().(*types.Named)
		if !okN {
			continue
		}
		st, okS := named.Underlying().(*types.Struct)
		if !okS {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			// The registration convention is an unexported field named
			// comp: that is the attribution tag a component hands the
			// engine. Exported CompID fields (result structs like
			// prof.ComponentStats) are data, not registered components.
			if f.Name() != "comp" || f.Exported() {
				continue
			}
			if p, t, okT := framework.Named(f.Type()); okT && p == "sim" && t == "CompID" {
				pass.ExportObjectFact(tn, &componentFact{Name: tn.Name()})
				break
			}
		}
	}
}

// checkComponentWrite flags `x.f = ...` where x is a component of a type
// unrelated to the enclosing method's receiver.
func checkComponentWrite(pass *framework.Pass, fd *ast.FuncDecl, lhs ast.Expr, blessed bool) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	tv, okT := pass.TypesInfo.Types[sel.X]
	if !okT {
		return
	}
	compObj := componentType(pass, tv.Type)
	if compObj == nil {
		return
	}
	// Free functions in any package may wire components together —
	// constructors and topology builders are the single-threaded setup
	// phase, not a second domain.
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return
	}
	recvType := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	recvObj := namedObj(recvType)
	if recvObj == nil || recvObj == compObj {
		return
	}
	if blessed || related(recvObj, compObj) {
		return
	}
	pass.Reportf(lhs.Pos(),
		"field %s of component %s written from %s's domain; components own their state — route this through a %s method",
		sel.Sel.Name, compObj.Name(), recvObj.Name(), compObj.Name())
}

// componentType returns the type object if t (possibly behind a pointer)
// is a marked component.
func componentType(pass *framework.Pass, t types.Type) *types.TypeName {
	obj := namedObj(t)
	if obj == nil {
		return nil
	}
	var fact componentFact
	if pass.ImportObjectFact(obj, &fact) {
		return obj
	}
	return nil
}

func namedObj(t types.Type) *types.TypeName {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// related reports whether either struct type holds a field of (a pointer
// to) the other — the containment relationship of a component and its
// sub-units (a Chip owns its DMAC; the DMAC points back at its chip).
func related(a, b *types.TypeName) bool {
	return holdsField(a, b) || holdsField(b, a)
}

func holdsField(owner, part *types.TypeName) bool {
	named, ok := owner.Type().(*types.Named)
	if !ok {
		return false
	}
	st, okS := named.Underlying().(*types.Struct)
	if !okS {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if namedObj(st.Field(i).Type()) == part {
			return true
		}
	}
	return false
}

// funcDomain names the component domain a function body runs in: the
// receiver type for methods, the function's own name for free functions.
func funcDomain(pass *framework.Pass, fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if obj := namedObj(pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)); obj != nil {
			return obj.Name()
		}
	}
	return "func " + fd.Name.Name
}

// locksAnything reports whether the body calls a Lock/RLock method or uses
// sync/atomic — the blessed-synchronization escape hatch.
func locksAnything(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, okS := call.Fun.(*ast.SelectorExpr); okS {
			switch sel.Sel.Name {
			case "Lock", "RLock":
				found = true
			default:
				if id, okI := sel.X.(*ast.Ident); okI && id.Name == "atomic" && strings.HasPrefix(sel.Sel.Name, "Store") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// targetVar resolves an assignment target to the variable it names: a
// plain identifier, or a package-qualified one (otherpkg.Var).
func targetVar(pass *framework.Pass, lhs ast.Expr) *types.Var {
	if v := framework.RootVar(pass.TypesInfo, lhs); v != nil {
		return v
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, okI := sel.X.(*ast.Ident)
	if !okI {
		return nil
	}
	if _, okP := pass.TypesInfo.ObjectOf(id).(*types.PkgName); !okP {
		return nil
	}
	v, _ := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Var)
	return v
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
