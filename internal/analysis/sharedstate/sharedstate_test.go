package sharedstate_test

import (
	"testing"

	"tca/internal/analysis/analysistest"
	"tca/internal/analysis/sharedstate"
)

func TestSharedState(t *testing.T) {
	analysistest.Run(t, "testdata", sharedstate.Analyzer, "sharedfix", "writerpkg")
}
