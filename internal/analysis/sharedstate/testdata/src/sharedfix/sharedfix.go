// Package sharedfix exercises the sharedstate analyzer: cross-domain
// component field writes, multi-domain package variable writes, and the
// blessed patterns (ownership methods, containment, sync primitives).
package sharedfix

import (
	"sync"

	"sim"
)

// Chip is an engine-registered component (unexported comp sim.CompID).
type Chip struct {
	comp    sim.CompID
	credits int
	dmac    *DMAC
}

// DMAC is a sub-unit owned by Chip (containment: each points at the other).
type DMAC struct {
	comp sim.CompID
	chip *Chip
	busy bool
}

// Switch is an unrelated component.
type Switch struct {
	comp sim.CompID
	mu   sync.Mutex
	hops int
}

// Stats is plain data: its CompID field is exported, so it is not a
// registered component and writes to it are unconstrained.
type Stats struct {
	ID   sim.CompID
	Hops int
}

// seq is a package-level counter; issued is a second one.
var seq uint64
var issued uint64

// Budget is an exported knob this package writes; a second writing
// package turns it into cross-package shared state.
var Budget = 8

// Spend consumes budget from the Chip domain.
func (c *Chip) Spend() { Budget-- }

// SetCredits is the owner's method: fine.
func (c *Chip) SetCredits(n int) { c.credits = n }

// Start writes its chip's field from the DMAC, but DMAC and Chip are
// construction-related (containment), so the domain is shared.
func (d *DMAC) Start() {
	d.busy = true
	d.chip.credits--
}

// Route writes a Chip field from the Switch domain: a cross-domain write.
func (s *Switch) Route(c *Chip) {
	s.hops++
	c.credits-- // want `field credits of component Chip written from Switch's domain`
}

// RouteLocked does the same under the switch's mutex: blessed.
func (s *Switch) RouteLocked(c *Chip) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.credits-- // ok: a sync primitive is held
}

// Fill writes plain data carrying a CompID: not a component, no report.
func (s *Switch) Fill(st *Stats) {
	st.Hops = s.hops // ok: Stats is data, not a registered component
}

// NewChip wires components together from a free function: construction is
// the single-threaded setup phase, not a second domain.
func NewChip() *Chip {
	c := &Chip{}
	d := &DMAC{chip: c}
	c.dmac = d
	c.credits = 8 // ok: free functions may wire components
	return c
}

// Bump writes seq from the Chip domain.
func (c *Chip) Bump() { seq++ }

// Bump writes seq from the Switch domain too: two domains, one variable.
func (s *Switch) Bump() {
	seq = seq + 1 // want `package-level var seq is written from component domains Chip and Switch`
}

// Issue and IssueMore both write issued, but from the same domain: fine.
func (c *Chip) Issue() { issued++ }

// IssueMore is the same domain writing again.
func (c *Chip) IssueMore() { issued += 2 } // ok: single owning domain
