// Package sim is a fixture stand-in for the real engine: the sharedstate
// analyzer identifies engine-registered components by their unexported
// `comp sim.CompID` field.
package sim

// CompID mirrors the profiler's component attribution tag.
type CompID int32
