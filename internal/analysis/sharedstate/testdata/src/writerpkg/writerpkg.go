// Package writerpkg writes a package-level variable that its defining
// package also writes — the cross-package sharing the analyzer detects
// through the defining package's exported-writes fact.
package writerpkg

import "sharedfix"

// Tune overwrites a knob sharedfix itself mutates.
func Tune() {
	sharedfix.Budget = 16 // want `package-level var sharedfix.Budget is written both by its own package and by writerpkg`
}

// Peek only reads: reads are never reported.
func Peek() int { return sharedfix.Budget }
