// Package simdeterminism enforces the engine's bit-for-bit replay
// guarantee: simulator code must derive every timestamp from sim.Engine
// and every random draw from a seeded source, and must never let Go's
// randomized map iteration order decide the order in which events are
// scheduled or packets are sent.
package simdeterminism

import (
	"go/ast"
	"go/types"
	"strings"

	"tca/internal/analysis/framework"
)

// Analyzer flags wall-clock reads, unseeded global randomness, and
// order-sensitive work inside map iteration.
var Analyzer = &framework.Analyzer{
	Name: "simdeterminism",
	Doc: `forbid nondeterminism sources in simulator code

Simulated time comes from sim.Engine.Now, never the wall clock, and
randomness must flow through a seeded *rand.Rand wired in from
configuration. Ranging over a map is fine for building an index, but the
body must not schedule events, send TLPs, or append to shared state,
because Go randomizes map order and the event queue breaks ties by
scheduling sequence.

Two packages are exempt from the wall-clock rule: internal/prof, which
wraps the host clock behind the monotonic HostNanos accessor that engine
self-profiling measures the simulator with, and internal/tcad, the
daemon controlplane whose timeouts, retry backoffs, and drain grace
periods are host-side supervision and never feed simulated state. Every
other package must go through prof.HostNanos or sim.Engine.Now.
Randomness and map-order rules still apply in both.`,
	Run: run,
}

// wallClockFuncs are the time package functions that read or depend on
// the host clock (or block on it).
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// seededConstructors are the math/rand functions that build explicitly
// seeded generators and are therefore allowed.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true,
	"NewChaCha8": true, "NewZipf": true,
}

func run(pass *framework.Pass) error {
	if !appliesTo(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// appliesTo restricts the check to the simulator's internal packages;
// cmd/ and examples/ may legitimately read the wall clock to report how
// long a run took on the host.
func appliesTo(path string) bool {
	if !strings.HasPrefix(path, "tca/") && path != "tca" {
		return true // fixture package
	}
	return strings.Contains(path, "/internal/")
}

// hostClockExempt reports whether the package may touch the wall clock:
// internal/prof holds the blessed host-clock accessor, and internal/tcad
// is controlplane code (timeouts, backoff, drain deadlines) whose host
// time never reaches an engine. Only the wall-clock check is waived;
// randomness and map-order rules still apply. Fixture twins keep the
// analyzer's own tests honest.
func hostClockExempt(path string) bool {
	switch path {
	case "tca/internal/prof", "prof", "tca/internal/tcad", "tcad":
		return true
	}
	return false
}

func checkCall(pass *framework.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. a Timer's Stop) are not clock reads
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] && !hostClockExempt(pass.Pkg.Path()) {
			pass.Reportf(call.Pos(),
				"wall-clock call time.%s in simulator code; derive time from sim.Engine.Now", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !seededConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"unseeded global randomness rand.%s; draw from a seeded *rand.Rand carried in the config", fn.Name())
		}
	}
}

// checkMapRange flags order-sensitive statements inside a range over a
// map. Collecting keys into a local slice (to sort before use) is the
// blessed pattern and stays silent.
func checkMapRange(pass *framework.Pass, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if framework.MethodOn(pass, n, "sim", "Engine", "At") ||
				framework.MethodOn(pass, n, "sim", "Engine", "After") ||
				framework.MethodOn(pass, n, "sim", "Engine", "AtComp") ||
				framework.MethodOn(pass, n, "sim", "Engine", "AfterComp") {
				pass.Reportf(n.Pos(),
					"event scheduled inside map iteration: map order is randomized and the queue breaks ties by seq; collect and sort first")
			}
			if sendsTLP(pass, n) {
				pass.Reportf(n.Pos(),
					"TLP sent inside map iteration: map order is randomized; collect targets and sort before sending")
			}
		case *ast.AssignStmt:
			checkSharedAppend(pass, n)
		}
		return true
	})
}

// sendsTLP reports whether the call is a Send on a pcie component (Port
// or Link), the operations whose relative order reaches the wire.
func sendsTLP(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Send" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	pkg, _, ok := framework.Named(sig.Recv().Type())
	return ok && pkg == "pcie"
}

// checkSharedAppend flags `x = append(x, ...)` inside the map range when
// x is not a plain function-local variable — appends to struct fields or
// package-level slices leak map order into shared or exported state.
func checkSharedAppend(pass *framework.Pass, assign *ast.AssignStmt) {
	for i, rhs := range assign.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(assign.Lhs) <= i {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			continue
		} else if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
			continue
		}
		switch lhs := assign.Lhs[i].(type) {
		case *ast.Ident:
			obj, ok := pass.TypesInfo.Uses[lhs].(*types.Var)
			if !ok {
				if def, okDef := pass.TypesInfo.Defs[lhs].(*types.Var); okDef {
					obj = def
				} else {
					continue
				}
			}
			if obj.Parent() == pass.Pkg.Scope() {
				pass.Reportf(assign.Pos(),
					"append to package-level %s inside map iteration leaks randomized map order; collect and sort first", lhs.Name)
			}
		case *ast.SelectorExpr:
			pass.Reportf(assign.Pos(),
				"append to shared state inside map iteration leaks randomized map order; collect and sort first")
		}
	}
}
