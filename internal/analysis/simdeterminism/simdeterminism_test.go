package simdeterminism_test

import (
	"testing"

	"tca/internal/analysis/analysistest"
	"tca/internal/analysis/simdeterminism"
)

func TestSimDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", simdeterminism.Analyzer, "simdet", "prof", "tcad")
}
