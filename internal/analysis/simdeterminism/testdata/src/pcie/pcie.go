// Package pcie is a fixture stand-in for the wire layer.
package pcie

// TLP mirrors the real packet type.
type TLP struct{}

// Port mirrors the sending surface of the real port.
type Port struct{}

func (p *Port) Send(t *TLP) {}
