// Package prof is the fixture twin of internal/prof: the one package the
// simdeterminism analyzer allows to read the host clock, because it wraps
// it behind the blessed monotonic accessor. Randomness rules still apply.
package prof

import (
	"math/rand"
	"time"
)

var hostEpoch = time.Now() // ok: the blessed accessor's epoch

// HostNanos mirrors the real accessor: monotonic host nanoseconds.
func HostNanos() int64 {
	return int64(time.Since(hostEpoch)) // ok: exempted wall-clock read
}

func stillNoRandomness() {
	_ = rand.Intn(4) // want `unseeded global randomness rand\.Intn`
}
