// Package sim is a fixture stand-in for the real engine: the analyzers
// identify sim.Engine by defining package name and type name.
package sim

// Time mirrors the real picosecond timestamp.
type Time int64

// Duration mirrors units.Duration locally to keep the fixture small.
type Duration int64

// Engine mirrors the scheduling surface of the real engine.
type Engine struct{}

// CompID mirrors the profiler component tag.
type CompID uint32

func (e *Engine) Now() Time                                 { return 0 }
func (e *Engine) At(t Time, fn func())                      {}
func (e *Engine) After(d Duration, fn func())               {}
func (e *Engine) AtComp(c CompID, t Time, fn func())        {}
func (e *Engine) AfterComp(c CompID, d Duration, fn func()) {}
func (e *Engine) Run() Time                                 { return 0 }
