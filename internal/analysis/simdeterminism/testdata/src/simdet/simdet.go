// Package simdet exercises the simdeterminism analyzer: wall-clock reads,
// unseeded randomness, and order-sensitive work inside map iteration.
package simdet

import (
	"math/rand"
	"time"

	"pcie"
	"sim"
)

func wallClock() {
	_ = time.Now()      // want `wall-clock call time\.Now`
	time.Sleep(1)       // want `wall-clock call time\.Sleep`
	_ = time.Unix(0, 0) // ok: converts a constant, no clock read
}

func randomness() {
	_ = rand.Intn(4)                   // want `unseeded global randomness rand\.Intn`
	rand.Shuffle(1, func(i, j int) {}) // want `unseeded global randomness rand\.Shuffle`
	r := rand.New(rand.NewSource(1))   // ok: explicitly seeded constructor
	_ = r.Intn(4)                      // ok: method on the seeded source
}

var output []int

type collector struct{ out []int }

func mapOrder(eng *sim.Engine, p *pcie.Port, m map[int]sim.Time) {
	for _, t := range m {
		eng.At(t, func() {}) // want `event scheduled inside map iteration`
	}
	for _, t := range m {
		eng.AtComp(1, t, func() {})    // want `event scheduled inside map iteration`
		eng.AfterComp(1, 1, func() {}) // want `event scheduled inside map iteration`
	}
	for range m {
		p.Send(nil) // want `TLP sent inside map iteration`
	}
	var c collector
	for k := range m {
		output = append(output, k) // want `append to package-level output`
		c.out = append(c.out, k)   // want `append to shared state`
	}
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k) // ok: collect into a local, sort afterwards
	}
	_ = keys
}
