// Package tcad is the fixture twin of internal/tcad: daemon controlplane
// code exempt from the wall-clock rule (timeouts, retry backoff, drain
// grace periods are host-side supervision). Randomness and map-order
// rules still apply.
package tcad

import (
	"math/rand"
	"time"
)

// backoffThenRequeue mirrors the retry sleeper: host-time waits are fine
// in the controlplane.
func backoffThenRequeue(d time.Duration) {
	time.Sleep(d)         // ok: exempted controlplane wait
	_ = time.Now()        // ok: exempted latency stamp
	t := time.NewTimer(d) // ok: exempted drain-grace timer
	t.Stop()
}

func stillNoRandomness() {
	_ = rand.Intn(4) // want `unseeded global randomness rand\.Intn`
}
