// Package sim is a fixture stand-in for the real engine's time type.
package sim

import "units"

// Time mirrors the picosecond timestamp.
type Time int64

// Add is a blessed helper.
func (t Time) Add(d units.Duration) Time { return t + Time(d) }

// Sub is a blessed helper.
func (t Time) Sub(earlier Time) units.Duration { return units.Duration(t - earlier) }

// Elapsed is a blessed helper.
func (t Time) Elapsed() units.Duration { return units.Duration(t) }
