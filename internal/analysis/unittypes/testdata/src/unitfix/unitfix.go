// Package unitfix exercises the unittypes analyzer: raw conversions
// between unit types and float conversions outside blessed contexts.
package unitfix

import (
	"sim"
	"units"
)

func cross(t sim.Time, d units.Duration, b units.ByteSize) {
	_ = units.Duration(t)  // want `raw conversion sim\.Time -> units\.Duration`
	_ = sim.Time(d)        // want `raw conversion units\.Duration -> sim\.Time`
	_ = units.Duration(b)  // want `raw conversion units\.ByteSize -> units\.Duration`
	_ = t.Elapsed()        // ok: blessed helper
	_ = t.Add(d)           // ok: blessed helper
	_ = t.Sub(t)           // ok: blessed helper
	_ = units.Duration(42) // ok: construction from a raw constant
}

func floats(d units.Duration, b units.ByteSize, bw units.Bandwidth) {
	_ = float64(d)       // want `float conversion of units\.Duration`
	_ = float64(b)       // want `float conversion of units\.ByteSize`
	_ = float32(bw)      // want `float conversion of units\.Bandwidth`
	_ = d.Picoseconds()  // ok: blessed accessor
	_ = b.Bytes()        // ok: blessed accessor
	_ = bw.BytesPerSec() // ok: blessed accessor
}

type span struct{ d units.Duration }

// String is formatting code, where float rendering of units is expected.
func (s span) String() string {
	_ = float64(s.d) // ok: inside a formatting function
	return ""
}

// WriteReport is formatting code by prefix.
func WriteReport(d units.Duration) {
	_ = float64(d) // ok: Write* prefix marks formatting
}

func register(fn func(sim.Time, units.Duration) float64) {}

func probes(d units.Duration) {
	register(func(now sim.Time, elapsed units.Duration) float64 {
		return float64(elapsed) // ok: telemetry probe shape is measurement code
	})
	helper := func(x units.Duration) float64 {
		return float64(x) // want `float conversion of units\.Duration`
	}
	_ = helper(d)
}
