// Package units is a fixture stand-in for the real unit types, which the
// unittypes analyzer identifies by defining package name and type name.
package units

// Duration mirrors the picosecond span type.
type Duration int64

// Picoseconds is the blessed float accessor.
func (d Duration) Picoseconds() float64 { return float64(d) }

// ByteSize mirrors the byte-count type.
type ByteSize int64

// Bytes is the blessed float accessor.
func (b ByteSize) Bytes() float64 { return float64(b) }

// Bandwidth mirrors the bytes-per-second rate type.
type Bandwidth float64

// BytesPerSec is the blessed float accessor.
func (bw Bandwidth) BytesPerSec() float64 { return float64(bw) }
