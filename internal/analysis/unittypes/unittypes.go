// Package unittypes keeps latency and size math inside the typed integer
// unit system. All calibration rests on picosecond-exact integer
// arithmetic: sim.Time and units.Duration only meet through Time.Add /
// Time.Sub / Time.Elapsed, and a unit value only becomes a float64
// through its blessed accessor (Duration.Picoseconds, ByteSize.Bytes,
// Bandwidth.BytesPerSec, ...) in measurement or formatting code, never in
// the simulation hot path where float drift would skew Figure 7–12.
package unittypes

import (
	"go/ast"
	"go/types"
	"strings"

	"tca/internal/analysis/framework"
)

// Analyzer flags raw conversions between unit types and float conversions
// of unit types outside blessed contexts.
var Analyzer = &framework.Analyzer{
	Name: "unittypes",
	Doc: `forbid raw conversions that mix unit types or bleed them into floats

sim.Time, units.Duration, units.ByteSize and units.Bandwidth are distinct
on purpose. Converting one into another with a plain conversion bypasses
the Add/Sub/Elapsed helpers that keep timestamp arithmetic honest, and
float64(unit) outside stats, formatting or probe code invites drift into
integer latency math; use the type's accessor methods instead.`,
	Run: run,
}

// unitKey identifies a unit type by defining package name and type name,
// which also matches the fixture packages.
type unitKey struct{ pkg, name string }

var unitTypes = map[unitKey]bool{
	{"sim", "Time"}:        true,
	{"units", "Duration"}:  true,
	{"units", "ByteSize"}:  true,
	{"units", "Bandwidth"}: true,
}

// floatAccessor names the blessed float accessor for each unit type, for
// the diagnostic's fix hint.
var floatAccessor = map[unitKey]string{
	{"sim", "Time"}:        "Time.Elapsed().Picoseconds()",
	{"units", "Duration"}:  "Duration.Picoseconds/Nanoseconds/Seconds",
	{"units", "ByteSize"}:  "ByteSize.Bytes",
	{"units", "Bandwidth"}: "Bandwidth.BytesPerSec/GBps/MBps",
}

// crossHint suggests the blessed helper for a specific unit-type pair.
func crossHint(from, to unitKey) string {
	switch {
	case from == (unitKey{"sim", "Time"}) && to == (unitKey{"units", "Duration"}):
		return "use Time.Sub for intervals or Time.Elapsed for time since zero"
	case from == (unitKey{"units", "Duration"}) && to == (unitKey{"sim", "Time"}):
		return "use Time.Add"
	default:
		return "convert through the blessed helpers, not a raw cast"
	}
}

func run(pass *framework.Pass) error {
	if !appliesTo(pass.Pkg.Path(), pass.Pkg.Name()) {
		return nil
	}
	for _, file := range pass.Files {
		var stack []ast.Node
		blessedDepth := 0
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if isBlessedFunc(pass, top) {
					blessedDepth--
				}
				return true
			}
			stack = append(stack, n)
			if isBlessedFunc(pass, n) {
				blessedDepth++
			}
			if call, ok := n.(*ast.CallExpr); ok {
				checkConversion(pass, call, blessedDepth > 0)
			}
			return true
		})
	}
	return nil
}

// isBlessedFunc reports whether entering n moves the walk into a context
// where float conversions of unit types are expected: a formatting
// function or a telemetry probe literal.
func isBlessedFunc(pass *framework.Pass, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncDecl:
		return isFormattingName(n.Name.Name)
	case *ast.FuncLit:
		return isProbeLit(pass, n)
	}
	return false
}

// appliesTo skips the packages that define or legitimately float the unit
// types: sim and units own the arithmetic, stats and obsv are measurement
// code, and cmd/examples binaries format for humans.
func appliesTo(path, name string) bool {
	switch name {
	case "sim", "units", "stats", "obsv":
		return false
	}
	if strings.HasPrefix(path, "tca/") && !strings.Contains(path, "/internal/") {
		return false
	}
	return true
}

// isFormattingName reports whether a function name marks human-facing
// output where float formatting of units is expected.
func isFormattingName(name string) bool {
	if name == "String" || name == "GoString" || name == "Format" {
		return true
	}
	for _, prefix := range []string{"Write", "Marshal", "Export", "Fprint", "Render"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// isProbeLit reports whether the literal has the telemetry probe shape
// func(sim.Time, units.Duration) float64 — probes exist to turn unit
// readings into float samples.
func isProbeLit(pass *framework.Pass, lit *ast.FuncLit) bool {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok || sig.Params().Len() != 2 || sig.Results().Len() != 1 {
		return false
	}
	p0, ok0 := unitOf(sig.Params().At(0).Type())
	p1, ok1 := unitOf(sig.Params().At(1).Type())
	if !ok0 || !ok1 || p0 != (unitKey{"sim", "Time"}) || p1 != (unitKey{"units", "Duration"}) {
		return false
	}
	res, okRes := sig.Results().At(0).Type().(*types.Basic)
	return okRes && res.Kind() == types.Float64
}

func unitOf(t types.Type) (unitKey, bool) {
	pkg, name, ok := framework.Named(t)
	if !ok {
		return unitKey{}, false
	}
	k := unitKey{pkg, name}
	return k, unitTypes[k]
}

// checkConversion inspects T(x) conversions.
func checkConversion(pass *framework.Pass, call *ast.CallExpr, blessed bool) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	argTV, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	from, fromUnit := unitOf(argTV.Type)
	if !fromUnit {
		return
	}
	if to, toUnit := unitOf(tv.Type); toUnit && to != from {
		pass.Reportf(call.Pos(), "raw conversion %s.%s -> %s.%s mixes unit types; %s",
			from.pkg, from.name, to.pkg, to.name, crossHint(from, to))
		return
	}
	if basic, isBasic := tv.Type.Underlying().(*types.Basic); isBasic &&
		(basic.Kind() == types.Float64 || basic.Kind() == types.Float32) && !blessed {
		pass.Reportf(call.Pos(), "float conversion of %s.%s outside stats/formatting code; use %s",
			from.pkg, from.name, floatAccessor[from])
	}
}
