package unittypes_test

import (
	"testing"

	"tca/internal/analysis/analysistest"
	"tca/internal/analysis/unittypes"
)

func TestUnitTypes(t *testing.T) {
	analysistest.Run(t, "testdata", unittypes.Analyzer, "unitfix")
}
