package bench

import (
	"fmt"

	"tca/internal/core"
	"tca/internal/host"
	"tca/internal/ib"
	"tca/internal/ntb"
	"tca/internal/pcie"
	"tca/internal/peach2"
	"tca/internal/sim"
	"tca/internal/tcanet"
	"tca/internal/units"
)

// hostNew builds a standalone node with the sweep's host parameters.
func hostNew(eng *sim.Engine, id int, prm tcanet.Params) *host.Node {
	return host.NewNode(eng, id, prm.Host)
}

// BaselineSizes sweep the motivation comparison.
var BaselineSizes = []units.ByteSize{8, 64, 512, 4096, 32 * units.KiB, 256 * units.KiB, units.MiB}

// Baseline regenerates the paper's motivating comparison (§I, §III-A): a
// GPU-to-GPU transfer between adjacent nodes through the conventional
// three-copy InfiniBand/MPI path versus direct TCA communication.
func Baseline(prm tcanet.Params) *Table {
	t := &Table{
		ID:      "Baseline",
		Title:   "GPU-to-GPU transfer latency between adjacent nodes (µs)",
		XLabel:  "size",
		Columns: []string{"TCA DMA two-phase", "TCA DMA pipelined", "IB/MPI 3-copy", "speedup (3-copy / pipelined)"},
	}
	for _, size := range BaselineSizes {
		two := measureTCAGPUPut(prm, core.TwoPhase, size)
		pipe := measureTCAGPUPut(prm, core.Pipelined, size)
		conv := measureConventional(prm, size)
		t.AddRow(size.String(),
			US(two.Microseconds()),
			US(pipe.Microseconds()),
			US(conv.Microseconds()),
			fmt.Sprintf("%.1fx", conv.Picoseconds()/pipe.Picoseconds()))
	}
	t.AddNote("paper §I: multiple memory copies via CPU memory severely degrade short-message performance")
	t.AddNote("paper §V: TCA eliminates the PCIe→InfiniBand protocol conversion and the MPI stack")
	t.AddNote("crossover at tens of KiB is expected: PEACH2 reads GPU BAR at ~0.83 GB/s while cudaMemcpy streams " +
		"multi-GB/s — hence the paper's hierarchical TCA-for-latency / IB-for-bandwidth design (§II-B)")
	return t
}

// measureTCAGPUPut times one cross-node GPU-to-GPU MemcpyPeer.
func measureTCAGPUPut(prm tcanet.Params, mode core.DMAMode, size units.ByteSize) units.Duration {
	r := newRig(2, prm)
	r.comm.SetMode(mode)
	src, err := r.comm.RegisterGPUBuffer(0, 0, size)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	dst, err := r.comm.RegisterGPUBuffer(1, 0, size)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	if err := r.comm.WriteGPU(src, 0, make([]byte, size)); err != nil {
		panic(err)
	}
	start := r.eng.Now()
	var end sim.Time
	if err := r.comm.MemcpyPeer(dst, 0, src, 0, size, func(now sim.Time) { end = now }); err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	r.eng.Run()
	return end.Sub(start)
}

// measureConventional times the same transfer through DtoH + MPI + HtoD.
func measureConventional(prm tcanet.Params, size units.ByteSize) units.Duration {
	eng := sim.NewEngine()
	p := newIBPair(eng, prm)
	conv, err := ib.NewConventional(p.fabric, units.MiB)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	srcPtr, _ := p.nodes[0].GPU(0).MemAlloc(size)
	dstPtr, _ := p.nodes[1].GPU(0).MemAlloc(size)
	if err := p.nodes[0].GPU(0).Memory().Write(uint64(srcPtr), make([]byte, size)); err != nil {
		panic(err)
	}
	start := eng.Now()
	var end sim.Time
	if err := conv.GPUToGPU(0, 0, srcPtr, 1, 0, dstPtr, size, func(now sim.Time) { end = now }); err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	eng.Run()
	return end.Sub(start)
}

// AblationDMAC sweeps the two-phase versus pipelined DMAC for host-sourced
// remote puts — design choice 3 of DESIGN.md §6 and the paper's announced
// "new DMAC" (§IV-B2).
func AblationDMAC(prm tcanet.Params) *Table {
	t := &Table{
		ID:      "AblationDMAC",
		Title:   "Host-to-remote-host put bandwidth: two-phase vs pipelined DMAC (GB/s)",
		XLabel:  "size",
		Columns: []string{"two-phase", "pipelined", "gain"},
	}
	for _, size := range []units.ByteSize{4096, 16 * units.KiB, 64 * units.KiB, 256 * units.KiB, units.MiB} {
		var bw [2]float64
		for i, mode := range []core.DMAMode{core.TwoPhase, core.Pipelined} {
			r := newRig(2, prm)
			r.comm.SetMode(mode)
			srcBuf, _ := r.comm.AllocHostBuffer(0, size)
			dstBuf, _ := r.comm.AllocHostBuffer(1, size)
			if err := r.comm.WriteHost(srcBuf, 0, make([]byte, size)); err != nil {
				panic(err)
			}
			start := r.eng.Now()
			var end sim.Time
			if err := r.comm.PutToHost(dstBuf, 0, 0, srcBuf.Bus, size, func(now sim.Time) { end = now }); err != nil {
				panic(fmt.Sprintf("bench: %v", err))
			}
			r.eng.Run()
			bw[i] = units.Rate(size, end.Sub(start)).GBps()
		}
		t.AddRow(size.String(), GB(bw[0]), GB(bw[1]), fmt.Sprintf("%.2fx", bw[1]/bw[0]))
	}
	t.AddNote("paper §IV-B2: the two-phase procedure 'seriously impacts the performance'; the new DMAC pipelines both requests")
	return t
}

// AblationNTB compares a PEACH2 hop against a non-transparent-bridge hop —
// design choice 1 of DESIGN.md §6 (§V related work).
func AblationNTB(prm tcanet.Params) *Table {
	t := &Table{
		ID:      "AblationNTB",
		Title:   "Small-write one-way latency: PEACH2 routing vs NTB translation (µs)",
		XLabel:  "path",
		Columns: []string{"latency"},
	}
	// PEACH2: adjacent-node PIO store.
	{
		r := newRig(2, prm)
		buf, _ := r.sc.Node(1).AllocDMABuffer(64)
		dst, _ := r.sc.GlobalHostAddr(1, buf)
		var seen sim.Time
		r.sc.Node(1).Poll(pcie.Range{Base: buf, Size: 4}, func(now sim.Time) { seen = now })
		r.sc.Node(0).Store(dst, []byte{1, 2, 3, 4})
		r.eng.Run()
		t.AddRow("PEACH2 (compare-only routing)", US(seen.Elapsed().Microseconds()))
	}
	// NTB pair.
	{
		eng := sim.NewEngine()
		a := hostNew(eng, 0, prm)
		b := hostNew(eng, 1, prm)
		br := ntb.New(eng, "ntb", ntb.DefaultParams)
		// The NTB switch sits in an external enclosure between the two
		// hosts: one external cable per side.
		win := pcie.Range{Base: 0x90_0000_0000, Size: 1 << 30}
		lp := pcie.LinkParams{Config: pcie.Gen2x8, Propagation: prm.CableProp}
		if err := a.AttachDevice(0, "ntb", win, br.Port(ntb.SideA), lp); err != nil {
			panic(err)
		}
		if err := b.AttachDevice(0, "ntb", win, br.Port(ntb.SideB), lp); err != nil {
			panic(err)
		}
		if err := br.AddMapping(ntb.SideA, win, 0); err != nil {
			panic(err)
		}
		flag, _ := b.AllocDMABuffer(64)
		var seen sim.Time
		b.Poll(pcie.Range{Base: flag, Size: 4}, func(now sim.Time) { seen = now })
		a.Store(win.Base+flag, []byte{1, 2, 3, 4})
		eng.Run()
		t.AddRow("NTB (table translation)", US(seen.Elapsed().Microseconds()))
	}
	t.AddNote("§V: NTB needs address translation and couples host lifetimes (peer loss ⇒ reboot); PEACH2's ports are independent")
	t.AddNote("NTB joins exactly two hosts; a sub-cluster needs a bridge per pair, PEACH2 needs one ring")
	return t
}

// AblationPayload varies the negotiated MaxPayload — design choice 5 —
// against the §IV-A peak formula.
func AblationPayload(prm tcanet.Params) *Table {
	t := &Table{
		ID:      "AblationPayload",
		Title:   "MaxPayload sensitivity: theoretical vs measured chained-write peak (GB/s)",
		XLabel:  "max payload",
		Columns: []string{"theoretical", "measured (255×4KiB)"},
	}
	for _, mp := range []units.ByteSize{128, 256, 512} {
		theory := prm.Chip.LinkConfig.EffectiveBandwidth(mp).GBps()
		p := prm
		p.MaxPayload = mp
		r := newRig(2, p)
		bw := r.measureChain(DirWrite, TargetCPU, false, 4096, 255)
		t.AddRow(mp.String(), GB(theory), GB(bw.GBps()))
	}
	t.AddNote("§IV-A: effective rate = raw × payload/(payload+24B overhead); the test environment negotiated 256B")
	return t
}

// AblationImmediate compares the descriptor-table activation against the
// register-written immediate descriptor the paper wishes for ("the DMA
// function without a descriptor is also desired for relatively small
// amounts of data", §IV-A1).
func AblationImmediate(prm tcanet.Params) *Table {
	t := &Table{
		ID:      "AblationImmediate",
		Title:   "Single small local DMA write: table-fetch activation vs immediate descriptor (µs)",
		XLabel:  "size",
		Columns: []string{"table activation", "immediate", "saved"},
	}
	for _, size := range []units.ByteSize{256, 512, 1024, 4096} {
		// Through the driver/table path.
		var tablePath units.Duration
		{
			r := newRig(2, prm)
			bw := r.measureChain(DirWrite, TargetCPU, false, size, 1)
			tablePath = units.Duration(size.Bytes() / bw.BytesPerSec() * 1e12)
		}
		// Immediate: doorbell decode straight into execution.
		var immediate units.Duration
		{
			r := newRig(2, prm)
			buf, _ := r.sc.Node(0).AllocDMABuffer(size)
			if err := r.sc.Chip(0).InternalMemory().Write(0, make([]byte, size)); err != nil {
				panic(err)
			}
			var end sim.Time
			r.sc.Chip(0).SetIRQHandler(func(now sim.Time) { end = now })
			start := r.eng.Now()
			r.sc.Chip(0).DMAC().StartImmediate(start, peach2.Descriptor{
				Kind: peach2.DescWrite, Len: size, Src: 0, Dst: uint64(buf),
			})
			r.eng.Run()
			immediate = end.Sub(start)
		}
		t.AddRow(size.String(), US(tablePath.Microseconds()), US(immediate.Microseconds()),
			US((tablePath - immediate).Microseconds()))
	}
	t.AddNote("§IV-A1: retrieving the descriptor table dominates single small DMAs")
	return t
}

// AblationRouting compares shortest-arc ring routing against a naive fixed-
// eastward configuration — design choice 4 — by measuring PIO latency to
// every hop distance on an 8-node ring.
func AblationRouting(prm tcanet.Params) *Table {
	t := &Table{
		ID:      "AblationRouting",
		Title:   "PIO latency from node 0 by destination, 8-node ring (µs)",
		XLabel:  "destination",
		Columns: []string{"shortest-arc", "fixed-east"},
	}
	measure := func(fixedEast bool, dst int) float64 {
		r := newRig(8, prm)
		if fixedEast {
			// All remote windows route east: up to two contiguous
			// ranges of node ids from each source's perspective.
			for i := 0; i < 8; i++ {
				mask := ^pcie.Addr(uint64(r.sc.Plan().WindowSize()) - 1)
				var rules []peach2.RouteRule
				if i < 7 {
					rules = append(rules, peach2.RouteRule{Mask: mask,
						Lower: r.sc.Plan().NodeWindow(i + 1).Base,
						Upper: r.sc.Plan().NodeWindow(7).Base,
						Out:   peach2.PortE})
				}
				if i > 0 {
					rules = append(rules, peach2.RouteRule{Mask: mask,
						Lower: r.sc.Plan().NodeWindow(0).Base,
						Upper: r.sc.Plan().NodeWindow(i - 1).Base,
						Out:   peach2.PortE})
				}
				r.sc.Chip(i).SetRoutes(rules)
			}
		}
		buf, _ := r.sc.Node(dst).AllocDMABuffer(64)
		g, _ := r.sc.GlobalHostAddr(dst, buf)
		var seen sim.Time
		r.sc.Node(dst).Poll(pcie.Range{Base: buf, Size: 4}, func(now sim.Time) { seen = now })
		r.sc.Node(0).Store(g, []byte{1, 2, 3, 4})
		r.eng.Run()
		if seen == 0 {
			panic("bench: routed store never arrived")
		}
		return seen.Elapsed().Microseconds()
	}
	for dst := 1; dst < 8; dst++ {
		t.AddRow(fmt.Sprintf("node %d", dst),
			US(measure(false, dst)), US(measure(true, dst)))
	}
	t.AddNote("shortest-arc halves the worst case; Fig. 5's register scheme encodes either policy")
	return t
}
