package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"tca/internal/core"
	"tca/internal/obsv/critpath"
	"tca/internal/tcanet"
	"tca/internal/units"
)

// BenchBaselineSchema versions the BENCH_*.json layout. /2 added the
// ping-pong critical-path budget figures.
const BenchBaselineSchema = "tca-bench-baseline/2"

// BenchBaseline is the machine-readable capture of the paper's headline numbers
// — the figures every regression run is compared against. All values come
// from the deterministic simulation, so committed baselines reproduce
// bit-for-bit until the model deliberately changes.
type BenchBaseline struct {
	Schema string `json:"schema"`
	// Fig. 7: chained-DMA bandwidth ceiling (255×4 KiB write) and the
	// GPU-read ceiling.
	PeakWriteGBps float64 `json:"fig7_peak_write_gbps"`
	GPUReadGBps   float64 `json:"fig7_gpu_read_gbps"`
	// Fig. 8/9: single-descriptor and 4-burst 4 KiB bandwidth.
	SingleDMAGBps float64 `json:"fig8_single_dma_4k_gbps"`
	Burst4GBps    float64 `json:"fig9_burst4_4k_gbps"`
	// Fig. 10: minimum ping-pong latency (loopback PIO) and the marginal
	// cost of one forwarding hop on the ring.
	MinPingPongUS float64 `json:"fig10_min_pingpong_us"`
	PerHopNS      float64 `json:"fig10_per_hop_ns"`
	// Baseline table: 8-byte GPU-to-GPU put, TCA pipelined vs conventional
	// (cudaMemcpy + MPI/IB).
	TCAGPU8BUS  float64 `json:"tca_gpu_8b_us"`
	ConvGPU8BUS float64 `json:"conventional_gpu_8b_us"`
	// Latency anatomy: the ping-pong leg's critical-path budget on the
	// 4-node ring (node 0 ↔ node 2, mean ns per leg per bucket) and the
	// fleet's p999 leg latency — the critpath engine's own regression
	// anchors.
	CritSoftwareNS float64 `json:"critpath_pingpong_software_ns"`
	CritWireNS     float64 `json:"critpath_pingpong_wire_ns"`
	CritSwitchNS   float64 `json:"critpath_pingpong_switch_ns"`
	CritP999US     float64 `json:"critpath_pingpong_p999_us"`
}

// CollectBaseline measures every baseline figure with the given parameters.
func CollectBaseline(prm tcanet.Params) BenchBaseline {
	round := func(v float64) float64 { return float64(int64(v*1000+0.5)) / 1000 }
	hop := MeasurePIOLatency(prm, 4, 0, 2).Nanoseconds() - MeasurePIOLatency(prm, 4, 0, 1).Nanoseconds()
	fleet := FleetPingPong(prm, 4, 0, 2, 4)
	legs := units.Duration(len(fleet.Budgets))
	meanNS := func(b critpath.Bucket) float64 {
		return round((fleet.Totals[b] / legs).Nanoseconds())
	}
	return BenchBaseline{
		Schema:         BenchBaselineSchema,
		PeakWriteGBps:  round(MeasureChain(prm, DirWrite, TargetCPU, false, 4096, 255).GBps()),
		GPUReadGBps:    round(MeasureChain(prm, DirRead, TargetGPU, false, 4096, 255).GBps()),
		SingleDMAGBps:  round(MeasureChain(prm, DirWrite, TargetCPU, false, 4096, 1).GBps()),
		Burst4GBps:     round(MeasureChain(prm, DirWrite, TargetCPU, false, 4096, 4).GBps()),
		MinPingPongUS:  round(MeasureLoopbackPIO(prm).Microseconds()),
		PerHopNS:       round(hop),
		TCAGPU8BUS:     round(MeasureTCAGPU(prm, core.Pipelined, 8).Microseconds()),
		ConvGPU8BUS:    round(MeasureConventionalGPU(prm, 8).Microseconds()),
		CritSoftwareNS: meanNS(critpath.BucketSoftware),
		CritWireNS:     meanNS(critpath.BucketWire),
		CritSwitchNS:   meanNS(critpath.BucketSwitch),
		CritP999US:     round(fleet.Ladder.P999),
	}
}

// WriteJSON emits the baseline as indented JSON.
func (b BenchBaseline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Compare checks every figure of got against the committed baseline within
// tolerance (a fraction, e.g. 0.02 for ±2%) and returns one error line per
// drifted figure.
func (b BenchBaseline) Compare(got BenchBaseline, tolerance float64) []string {
	var drifts []string
	check := func(name string, want, have float64) {
		if want == 0 {
			if have != 0 {
				drifts = append(drifts, fmt.Sprintf("%s: baseline 0, got %g", name, have))
			}
			return
		}
		if rel := (have - want) / want; rel > tolerance || rel < -tolerance {
			drifts = append(drifts, fmt.Sprintf("%s: baseline %g, got %g (%+.2f%%)", name, want, have, 100*rel))
		}
	}
	check("fig7_peak_write_gbps", b.PeakWriteGBps, got.PeakWriteGBps)
	check("fig7_gpu_read_gbps", b.GPUReadGBps, got.GPUReadGBps)
	check("fig8_single_dma_4k_gbps", b.SingleDMAGBps, got.SingleDMAGBps)
	check("fig9_burst4_4k_gbps", b.Burst4GBps, got.Burst4GBps)
	check("fig10_min_pingpong_us", b.MinPingPongUS, got.MinPingPongUS)
	check("fig10_per_hop_ns", b.PerHopNS, got.PerHopNS)
	check("tca_gpu_8b_us", b.TCAGPU8BUS, got.TCAGPU8BUS)
	check("conventional_gpu_8b_us", b.ConvGPU8BUS, got.ConvGPU8BUS)
	check("critpath_pingpong_software_ns", b.CritSoftwareNS, got.CritSoftwareNS)
	check("critpath_pingpong_wire_ns", b.CritWireNS, got.CritWireNS)
	check("critpath_pingpong_switch_ns", b.CritSwitchNS, got.CritSwitchNS)
	check("critpath_pingpong_p999_us", b.CritP999US, got.CritP999US)
	return drifts
}
