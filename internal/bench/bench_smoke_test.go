package bench

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"tca/internal/tcanet"
	"tca/internal/units"
)

func TestMeasureChainBasics(t *testing.T) {
	prm := tcanet.DefaultParams
	r := newRig(2, prm)
	bw := r.measureChain(DirWrite, TargetCPU, false, 4096, 255)
	t.Logf("CPU write 255×4KiB = %v", bw)
	if bw.GBps() < 3.1 || bw.GBps() > 3.66 {
		t.Fatalf("chained CPU write = %v, want the paper's ~3.3 GB/s (93%% of 3.66)", bw)
	}
}

func TestMeasureChainGPUReadCeiling(t *testing.T) {
	prm := tcanet.DefaultParams
	r := newRig(2, prm)
	bw := r.measureChain(DirRead, TargetGPU, false, 4096, 64)
	t.Logf("GPU read 64×4KiB = %v", bw)
	if bw.MBps() < 700 || bw.MBps() > 950 {
		t.Fatalf("GPU read = %v, want the paper's ~830 MB/s ceiling", bw)
	}
}

func TestMeasureChainSingleDMASlow(t *testing.T) {
	prm := tcanet.DefaultParams
	r := newRig(2, prm)
	single := r.measureChain(DirWrite, TargetCPU, false, 4096, 1)
	t.Logf("CPU write 1×4KiB = %v", single)
	if single.GBps() > 1.8 {
		t.Fatalf("single 4KiB DMA = %v — activation overhead missing", single)
	}
}

func TestFig9SeventyPercentPoint(t *testing.T) {
	prm := tcanet.DefaultParams
	peak := newRig(2, prm).measureChain(DirWrite, TargetCPU, false, 4096, 255)
	four := newRig(2, prm).measureChain(DirWrite, TargetCPU, false, 4096, 4)
	frac := float64(four) / float64(peak)
	t.Logf("4-request fraction = %.1f%% (paper: ≈70%%)", 100*frac)
	if frac < 0.60 || frac > 0.80 {
		t.Fatalf("4-request fraction %.0f%% outside [60, 80]", 100*frac)
	}
}

func TestFig12Shape(t *testing.T) {
	prm := tcanet.DefaultParams
	smallLocal := newRig(2, prm).measureChain(DirWrite, TargetCPU, false, 64, 255)
	smallRemote := newRig(2, prm).measureChain(DirWrite, TargetCPU, true, 64, 255)
	bigLocal := newRig(2, prm).measureChain(DirWrite, TargetCPU, false, 4096, 255)
	bigRemote := newRig(2, prm).measureChain(DirWrite, TargetCPU, true, 4096, 255)
	gpuLocal := newRig(2, prm).measureChain(DirWrite, TargetGPU, false, 256, 255)
	gpuRemote := newRig(2, prm).measureChain(DirWrite, TargetGPU, true, 256, 255)
	t.Logf("CPU 64B local=%v remote=%v; 4KiB local=%v remote=%v; GPU 256B local=%v remote=%v",
		smallLocal, smallRemote, bigLocal, bigRemote, gpuLocal, gpuRemote)
	if smallRemote >= smallLocal {
		t.Fatal("remote CPU should dip below local at small sizes")
	}
	if float64(bigRemote) < 0.95*float64(bigLocal) {
		t.Fatal("remote CPU should converge to local at 4KiB")
	}
	if float64(gpuRemote) < 0.97*float64(gpuLocal) {
		t.Fatal("remote GPU should track local (deep queue)")
	}
}

func TestTableFormatAndCSV(t *testing.T) {
	tab := &Table{ID: "X", Title: "test", XLabel: "size", Columns: []string{"a", "b"}}
	tab.AddRow("64B", "1.0", "2.0")
	tab.AddRow("4KiB", "3.300", "0.830")
	tab.AddNote("a note with %d", 42)
	var buf bytes.Buffer
	if err := tab.Format(&buf); err != nil {
		t.Fatalf("Format: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"== X: test ==", "64B", "3.300", "note: a note with 42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tab.CSV(&buf); err != nil {
		t.Fatalf("CSV: %v", err)
	}
	if !strings.Contains(buf.String(), "size,a,b") || !strings.Contains(buf.String(), "4KiB,3.300,0.830") {
		t.Fatalf("CSV output wrong:\n%s", buf.String())
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := &Table{ID: "X", Title: "t", XLabel: "k", Columns: []string{`va"l,ue`}}
	tab.AddRow("a,b", `say "hi"`)
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatalf("CSV: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `"va""l,ue"`) || !strings.Contains(out, `"a,b","say ""hi"""`) {
		t.Fatalf("CSV escaping wrong:\n%s", out)
	}
}

// brokenWriter fails after n bytes, standing in for a full disk or a
// closed pipe mid-render.
type brokenWriter struct{ n int }

func (w *brokenWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("sink broke")
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), errors.New("sink broke")
}

func TestTableRenderPropagatesWriteErrors(t *testing.T) {
	tab := &Table{ID: "X", Title: "t", XLabel: "k", Columns: []string{"a"}}
	tab.AddRow("r1", "1")
	tab.AddNote("n")
	if err := tab.Format(&brokenWriter{n: 10}); err == nil {
		t.Fatal("Format swallowed the write error")
	}
	if err := tab.CSV(&brokenWriter{n: 10}); err == nil {
		t.Fatal("CSV swallowed the write error")
	}
}

func TestTableValueLookup(t *testing.T) {
	tab := &Table{ID: "X", XLabel: "size", Columns: []string{"bw", "gain"}}
	tab.AddRow("4KiB", "3.300", "1.5x")
	v, err := tab.Value("4KiB", "bw")
	if err != nil || v != 3.3 {
		t.Fatalf("Value = %v, %v", v, err)
	}
	g, err := tab.Value("4KiB", "gain")
	if err != nil || g != 1.5 {
		t.Fatalf("gain Value = %v, %v (x-suffix should parse)", g, err)
	}
	if _, err := tab.Value("4KiB", "nope"); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := tab.Value("8KiB", "bw"); err == nil {
		t.Fatal("unknown row accepted")
	}
}

func TestSpecTables(t *testing.T) {
	one := TableI()
	if len(one.Rows) != 13 {
		t.Fatalf("Table I has %d rows", len(one.Rows))
	}
	two := TableII()
	if len(two.Rows) != 11 {
		t.Fatalf("Table II has %d rows", len(two.Rows))
	}
	peak := TheoreticalPeak()
	var buf bytes.Buffer
	if err := peak.Format(&buf); err != nil {
		t.Fatalf("Format: %v", err)
	}
	if !strings.Contains(buf.String(), "3.66 GB/s") {
		t.Fatalf("theoretical peak table missing 3.66 GB/s:\n%s", buf.String())
	}
}

func TestExperimentRegistry(t *testing.T) {
	all := All()
	if len(all) != 21 {
		t.Fatalf("registry has %d experiments", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := Find("fig7"); !ok {
		t.Fatal("Find is not case-insensitive")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find invented an experiment")
	}
}

func TestAblationImmediateFaster(t *testing.T) {
	tab := AblationImmediate(tcanet.DefaultParams)
	for _, r := range tab.Rows {
		tbl := tab.mustVal(r.X, "table activation")
		imm := tab.mustVal(r.X, "immediate")
		if imm >= tbl {
			t.Fatalf("immediate (%v µs) not faster than table path (%v µs) at %s", imm, tbl, r.X)
		}
	}
}

func TestAblationPayloadMonotonic(t *testing.T) {
	tab := AblationPayload(tcanet.DefaultParams)
	prev := 0.0
	for _, r := range tab.Rows {
		th := tab.mustVal(r.X, "theoretical")
		ms := tab.mustVal(r.X, "measured (255×4KiB)")
		if th <= prev {
			t.Fatalf("theoretical peak not increasing with payload at %s", r.X)
		}
		if ms > th {
			t.Fatalf("measured %.3f exceeds theoretical %.3f at %s", ms, th, r.X)
		}
		prev = th
	}
}

func TestAblationNTBOrdering(t *testing.T) {
	tab := AblationNTB(tcanet.DefaultParams)
	p2 := tab.mustVal("PEACH2 (compare-only routing)", "latency")
	nt := tab.mustVal("NTB (table translation)", "latency")
	t.Logf("PEACH2 %v µs vs NTB %v µs", p2, nt)
	if nt <= p2*0.9 {
		t.Fatalf("NTB (%v) unexpectedly much faster than PEACH2 (%v)", nt, p2)
	}
}

func TestBaselineSpotCheck(t *testing.T) {
	prm := tcanet.DefaultParams
	two := measureTCAGPUPut(prm, 0, 8)
	pipe := measureTCAGPUPut(prm, 1, 8)
	conv := measureConventional(prm, 8)
	t.Logf("8B GPU-GPU: two-phase %v, pipelined %v, conventional %v", two, pipe, conv)
	if conv < 3*pipe {
		t.Fatalf("conventional %v not ≥3× TCA %v at 8B — the motivation gap is gone", conv, pipe)
	}
	if conv < 12*units.Microsecond {
		t.Fatalf("conventional 8B %v implausibly fast (two cudaMemcpys alone are ~14µs)", conv)
	}
}

// TestRunParallelMatchesSerial verifies that concurrent experiment
// execution produces byte-identical tables to serial runs — the engines
// share no state.
func TestRunParallelMatchesSerial(t *testing.T) {
	prm := tcanet.DefaultParams
	exps := []Experiment{}
	for _, id := range []string{"Fig9", "AblationImmediate", "TheoreticalPeak", "AblationNTB"} {
		e, ok := Find(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		exps = append(exps, e)
	}
	par := RunParallel(prm, exps)
	for i, e := range exps {
		serial := e.Run(prm)
		if len(par[i].Rows) != len(serial.Rows) {
			t.Fatalf("%s: row count differs", e.ID)
		}
		for r := range serial.Rows {
			if par[i].Rows[r].X != serial.Rows[r].X {
				t.Fatalf("%s row %d key differs", e.ID, r)
			}
			for v := range serial.Rows[r].Vals {
				if par[i].Rows[r].Vals[v] != serial.Rows[r].Vals[v] {
					t.Fatalf("%s row %d col %d: parallel %q vs serial %q",
						e.ID, r, v, par[i].Rows[r].Vals[v], serial.Rows[r].Vals[v])
				}
			}
		}
	}
}

// TestSweepsProduceMonotonicShapes sanity-checks every registered sweep.
func TestSweepsProduceMonotonicShapes(t *testing.T) {
	prm := tcanet.DefaultParams
	if len(SweepNames()) != 4 {
		t.Fatalf("sweep registry has %d entries", len(SweepNames()))
	}

	// Issue interval: peak is non-increasing as the interval grows.
	issue := SweepIssue(prm)
	prev := 1e9
	for _, r := range issue.Rows {
		v := issue.mustVal(r.X, "peak (GB/s)")
		if v > prev+1e-9 {
			t.Fatalf("issue sweep not non-increasing at %s", r.X)
		}
		prev = v
	}

	// Cable: PIO latency strictly increases with cable length; bandwidth
	// varies by <2%.
	cable := SweepCable(prm)
	prevLat := -1.0
	var bwMin, bwMax float64 = 1e9, 0
	for _, r := range cable.Rows {
		lat := cable.mustVal(r.X, "PIO loopback (µs)")
		bw := cable.mustVal(r.X, "remote DMA BW (GB/s)")
		if lat <= prevLat {
			t.Fatalf("cable sweep latency not increasing at %s", r.X)
		}
		prevLat = lat
		if bw < bwMin {
			bwMin = bw
		}
		if bw > bwMax {
			bwMax = bw
		}
	}
	if (bwMax-bwMin)/bwMax > 0.02 {
		t.Fatalf("cable sweep bandwidth varied %.1f%% — pipelining should hide flight time", 100*(bwMax-bwMin)/bwMax)
	}

	// IRQ: single-DMA bandwidth strictly falls with IRQ latency; burst is
	// insensitive (<2%).
	irq := SweepIRQ(prm)
	prevOne := 1e9
	for _, r := range irq.Rows {
		one := irq.mustVal(r.X, "single 4KiB (GB/s)")
		if one >= prevOne {
			t.Fatalf("irq sweep single-DMA not decreasing at %s", r.X)
		}
		prevOne = one
	}

	// Credits: non-decreasing with more buffering.
	cr := SweepCredits(prm)
	prevBW := -1.0
	for _, r := range cr.Rows {
		v := cr.mustVal(r.X, "remote DMA BW (GB/s)")
		if v < prevBW-1e-9 {
			t.Fatalf("credit sweep decreased at %s", r.X)
		}
		prevBW = v
	}
}
