package bench

import (
	"fmt"
	"strconv"
	"strings"

	"tca/internal/tcanet"
)

// Value parses the measurement at (x, column) back into a float.
func (t *Table) Value(x, column string) (float64, error) {
	ci := -1
	for i, c := range t.Columns {
		if c == column {
			ci = i
			break
		}
	}
	if ci < 0 {
		return 0, fmt.Errorf("bench: table %s has no column %q", t.ID, column)
	}
	for _, r := range t.Rows {
		if r.X == x {
			if ci >= len(r.Vals) {
				return 0, fmt.Errorf("bench: table %s row %q missing column %d", t.ID, x, ci)
			}
			v := strings.TrimSuffix(r.Vals[ci], "x")
			return strconv.ParseFloat(v, 64)
		}
	}
	return 0, fmt.Errorf("bench: table %s has no row %q", t.ID, x)
}

// mustVal is Value for checks.
func (t *Table) mustVal(x, col string) float64 {
	v, err := t.Value(x, col)
	if err != nil {
		panic(err)
	}
	return v
}

// CheckFig7 verifies the qualitative invariants the paper reports for
// Fig. 7. A nil error means the reproduction holds its shape.
func CheckFig7(t *Table) error {
	peak := t.mustVal("4KiB", "CPU write")
	if peak < 3.1 || peak > 3.66 {
		return fmt.Errorf("Fig7: CPU-write peak %.3f GB/s outside [3.1, 3.66] (paper: 3.3, 93%% of 3.66)", peak)
	}
	gpuW := t.mustVal("4KiB", "GPU write")
	if gpuW < 0.95*peak {
		return fmt.Errorf("Fig7: GPU write %.3f not ≈ CPU write %.3f", gpuW, peak)
	}
	gpuR := t.mustVal("4KiB", "GPU read")
	if gpuR < 0.70 || gpuR > 0.95 {
		return fmt.Errorf("Fig7: GPU-read ceiling %.3f GB/s outside [0.70, 0.95] (paper: 0.83)", gpuR)
	}
	for _, r := range t.Rows {
		w := t.mustVal(r.X, "CPU write")
		rd := t.mustVal(r.X, "CPU read")
		if rd > w*1.02 {
			return fmt.Errorf("Fig7: CPU read %.3f exceeds write %.3f at %s", rd, w, r.X)
		}
	}
	cpuR := t.mustVal("4KiB", "CPU read")
	if cpuR < 0.85*peak {
		return fmt.Errorf("Fig7: CPU read %.3f not ≈ write %.3f at 4KiB (paper: approximately the same)", cpuR, peak)
	}
	return nil
}

// CheckFig8 verifies that single-DMA activation overhead dominates small
// transfers and amortizes by the megabyte range.
func CheckFig8(t *Table) error {
	small := t.mustVal("4KiB", "CPU write")
	if small > 1.8 {
		return fmt.Errorf("Fig8: single 4KiB write %.3f GB/s — activation overhead missing (expected ~1.2)", small)
	}
	big := t.mustVal("1MiB", "CPU write")
	if big < 3.0 {
		return fmt.Errorf("Fig8: single 1MiB write %.3f GB/s — should amortize toward the peak", big)
	}
	return nil
}

// CheckFig9 verifies the burst-count curve: 4 requests ≈ 70%% of maximum,
// single request well below.
func CheckFig9(t *Table) error {
	peak := t.mustVal("255", "CPU write")
	four := t.mustVal("4", "CPU write")
	one := t.mustVal("1", "CPU write")
	if peak < 3.1 {
		return fmt.Errorf("Fig9: 255-burst peak %.3f GB/s too low", peak)
	}
	if frac := four / peak; frac < 0.60 || frac > 0.80 {
		return fmt.Errorf("Fig9: 4-request fraction %.0f%% outside [60%%, 80%%] (paper: ≈70%%)", 100*frac)
	}
	if one > 0.45*peak {
		return fmt.Errorf("Fig9: single request %.3f GB/s not ≪ peak %.3f", one, peak)
	}
	return nil
}

// CheckFig12 verifies the remote-write shape: the CPU curve dips at small
// sizes and converges by 4 KiB; the GPU curve tracks its local twin.
func CheckFig12(t *Table) error {
	smallLocal := t.mustVal("64B", "CPU local")
	smallRemote := t.mustVal("64B", "CPU remote")
	if smallRemote >= smallLocal {
		return fmt.Errorf("Fig12: remote CPU %.3f not below local %.3f at 64B", smallRemote, smallLocal)
	}
	bigLocal := t.mustVal("4KiB", "CPU local")
	bigRemote := t.mustVal("4KiB", "CPU remote")
	if bigRemote < 0.95*bigLocal {
		return fmt.Errorf("Fig12: remote CPU %.3f not ≈ local %.3f at 4KiB", bigRemote, bigLocal)
	}
	for _, r := range t.Rows {
		gl := t.mustVal(r.X, "GPU local")
		gr := t.mustVal(r.X, "GPU remote")
		if gr < 0.97*gl || gr > 1.03*gl {
			return fmt.Errorf("Fig12: remote GPU %.3f diverges from local %.3f at %s (paper: approximately the same)", gr, gl, r.X)
		}
	}
	return nil
}

// CheckLatencyPIO verifies the 782 ns loopback class and the InfiniBand
// ordering.
func CheckLatencyPIO(t *Table) error {
	lb := t.mustVal("PEACH2 PIO (2-chip loopback)", "latency")
	if lb < 0.70 || lb > 0.90 {
		return fmt.Errorf("LatencyPIO: loopback %.3f µs outside [0.70, 0.90] (paper: 0.782)", lb)
	}
	mpi := t.mustVal("InfiniBand MPI 4B", "latency")
	if lb >= mpi {
		return fmt.Errorf("LatencyPIO: PEACH2 %.3f µs not below MPI %.3f µs", lb, mpi)
	}
	return nil
}

// CheckBaseline verifies the motivation gap: TCA beats the 3-copy path
// decisively on short messages.
func CheckBaseline(t *Table) error {
	for _, x := range []string{"8B", "64B", "512B"} {
		pipe := t.mustVal(x, "TCA DMA pipelined")
		conv := t.mustVal(x, "IB/MPI 3-copy")
		if conv < 3*pipe {
			return fmt.Errorf("Baseline: at %s conventional %.3f µs not ≥3× TCA %.3f µs", x, conv, pipe)
		}
	}
	// TCA must win the short-message range it was built for; at large
	// sizes the conventional path catches up (the GPU's own copy engines
	// stream at multi-GB/s while PEACH2 reads the BAR at ~0.83 GB/s) —
	// exactly why HA-PACS/TCA is a *hierarchical* network: "TCA
	// interconnect for local communication with low latency and
	// InfiniBand for global communication with high bandwidth" (§II-B).
	for _, x := range []string{"8B", "64B", "512B", "4KiB"} {
		pipe := t.mustVal(x, "TCA DMA pipelined")
		conv := t.mustVal(x, "IB/MPI 3-copy")
		if pipe >= conv {
			return fmt.Errorf("Baseline: TCA %.3f µs not below conventional %.3f µs at %s", pipe, conv, x)
		}
	}
	big := t.mustVal("1MiB", "IB/MPI 3-copy")
	bigTCA := t.mustVal("1MiB", "TCA DMA pipelined")
	if big >= bigTCA {
		return fmt.Errorf("Baseline: expected the large-message crossover (IB wins at 1MiB), got IB %.0f µs vs TCA %.0f µs", big, bigTCA)
	}
	return nil
}

// Experiment couples an ID with its generator and optional shape check.
type Experiment struct {
	ID    string
	Desc  string
	Run   func(prm tcanet.Params) *Table
	Check func(t *Table) error
}

// All returns the registry of every reproducible table and figure, in the
// order EXPERIMENTS.md lists them.
func All() []Experiment {
	return []Experiment{
		{"TableI", "HA-PACS base cluster specifications", func(tcanet.Params) *Table { return TableI() }, nil},
		{"TableII", "Preliminary-evaluation test environment", func(tcanet.Params) *Table { return TableII() }, nil},
		{"TheoreticalPeak", "§IV-A peak bandwidth formula", func(tcanet.Params) *Table { return TheoreticalPeak() }, nil},
		{"Fig7", "255-burst DMA bandwidth, CPU/GPU, write/read", Fig7, CheckFig7},
		{"Fig8", "Single-DMA bandwidth", Fig8, CheckFig8},
		{"Fig9", "Burst count vs bandwidth at 4 KiB", Fig9, CheckFig9},
		{"LatencyPIO", "§IV-B1 loopback latency vs InfiniBand", LatencyPIO, CheckLatencyPIO},
		{"Fig12", "Remote DMA write to the adjacent node", Fig12, CheckFig12},
		{"Baseline", "TCA vs conventional 3-copy GPU-GPU path", Baseline, CheckBaseline},
		{"AblationDMAC", "Two-phase vs pipelined DMAC", AblationDMAC, nil},
		{"AblationNTB", "PEACH2 routing vs NTB translation", AblationNTB, nil},
		{"AblationPayload", "MaxPayload sensitivity", AblationPayload, nil},
		{"AblationImmediate", "Table-fetch vs immediate descriptor", AblationImmediate, nil},
		{"AblationRouting", "Shortest-arc vs fixed-east ring routing", AblationRouting, nil},
		{"ExtCollectives", "MPI-free collective latency scaling (extension)", ExtCollectives, nil},
		{"ExtCGSolve", "Distributed CG communication time (extension)", ExtCGSolve, nil},
		{"ExtRingScaling", "Ring contention vs sub-cluster size (extension)", ExtRingScaling, nil},
		{"ExtLatencyBudget", "PIO loopback latency decomposition (extension)", ExtLatencyBudget, nil},
		{"ExtCollVsMPI", "Allreduce: TCA vs MPI-over-IB (extension)", ExtCollVsMPI, nil},
		{"ExtLatencyDist", "PIO latency distribution with p95/p99 tails (extension)", ExtLatencyDist, nil},
		{"ExtDegradedRing", "Healthy ring vs 1-cut degraded line latency (extension)", ExtDegradedRing, CheckDegradedRing},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}
