package bench

import (
	"fmt"

	"tca/internal/core"
	"tca/internal/obsv/critpath"
	"tca/internal/pcie"
	"tca/internal/sim"
	"tca/internal/tcanet"
	"tca/internal/units"
)

// FleetPingPong runs rounds ping-pong round trips node src <-> dst on an
// instrumented n-node ring and returns the latency anatomy of every leg
// (2×rounds transactions). Each leg is one traced PIO store; the answering
// store is fired from the destination's poll loop, exactly the §IV-B1
// measurement procedure.
func FleetPingPong(prm tcanet.Params, n, src, dst, rounds int) *critpath.Fleet {
	eng, sc, set := instrumentedRing(n, prm)
	dstBuf, dstG := flagTarget(sc, dst)
	srcBuf, srcG := flagTarget(sc, src)
	txns := make([]uint64, 0, 2*rounds)
	done := 0
	sc.Node(dst).Poll(pcie.Range{Base: dstBuf, Size: 8}, func(now sim.Time) {
		txns = append(txns, sc.Node(dst).StoreTxn(srcG, []byte{2, 0, 0, 0, 0, 0, 0, 0}))
	})
	sc.Node(src).Poll(pcie.Range{Base: srcBuf, Size: 8}, func(now sim.Time) {
		done++
		if done < rounds {
			txns = append(txns, sc.Node(src).StoreTxn(dstG, []byte{1, 0, 0, 0, 0, 0, 0, 0}))
		}
	})
	txns = append(txns, sc.Node(src).StoreTxn(dstG, []byte{1, 0, 0, 0, 0, 0, 0, 0}))
	eng.Run()
	if done != rounds {
		panic(fmt.Sprintf("bench: ping-pong completed %d/%d rounds", done, rounds))
	}
	scenario := fmt.Sprintf("ping-pong node%d<->node%d (%d-node ring, %d rounds)", src, dst, n, rounds)
	return critpath.Analyze(scenario, set.Recorder(), txns)
}

// FleetDMAChains runs chains back-to-back chained-DMA transfers (count
// descriptors of size bytes each, node 0 internal memory → node 1 host
// memory) on an instrumented 2-node ring and returns the latency anatomy of
// every chain. Chains launch sequentially from each other's completion
// interrupt, so every chain's span covers doorbell → fetch → issue → link →
// flush ack → IRQ without overlapping its neighbours.
func FleetDMAChains(prm tcanet.Params, size units.ByteSize, count, chains int) *critpath.Fleet {
	eng, sc, set := instrumentedRing(2, prm)
	comm, err := core.NewComm(sc)
	if err != nil {
		panic(err)
	}
	if err := sc.Chip(0).InternalMemory().Write(0, make([]byte, size)); err != nil {
		panic(err)
	}
	buf, err := sc.Node(1).AllocDMABuffer(units.ByteSize(uint64(size) * uint64(count)))
	if err != nil {
		panic(err)
	}
	g, err := sc.GlobalHostAddr(1, buf)
	if err != nil {
		panic(err)
	}
	txns := make([]uint64, 0, chains)
	var start func(i int)
	start = func(i int) {
		descs := buildWriteChain(uint64(g), size, count)
		if err := comm.StartChain(0, descs, func(now sim.Time) {
			txns = append(txns, sc.Chip(0).DMAC().LastChainTxn())
			if i+1 < chains {
				start(i + 1)
			}
		}); err != nil {
			panic(err)
		}
	}
	start(0)
	eng.Run()
	if len(txns) != chains {
		panic(fmt.Sprintf("bench: DMA fleet completed %d/%d chains", len(txns), chains))
	}
	scenario := fmt.Sprintf("chain-DMA %d×(%d×%v) node0->node1", chains, count, size)
	return critpath.Analyze(scenario, set.Recorder(), txns)
}

// PingPongModel derives the paper's analytical Fig. 10 model from reference
// measurements on the same parameters: the loopback minimum, the marginal
// ring forwarding hop, and the host software cost per leg (uncached store
// plus poll-loop detection).
func PingPongModel(prm tcanet.Params) critpath.Model {
	host := prm.Host
	if host.StoreLatency == 0 {
		host = tcanet.DefaultParams.Host
	}
	return critpath.Model{
		MinPingPongUS:    MeasureLoopbackPIO(prm).Microseconds(),
		PerHopNS:         MeasurePIOLatency(prm, 4, 0, 2).Nanoseconds() - MeasurePIOLatency(prm, 4, 0, 1).Nanoseconds(),
		SoftwareNSPerLeg: (host.StoreLatency + host.PollDetectLatency).Nanoseconds(),
	}
}

// RingForwardHops counts the forwarding (intermediate-chip) hops of the
// shortest arc from src to dst on an n-node ring — the extraHops input to
// Model.PredictUS.
func RingForwardHops(n, src, dst int) int {
	d := dst - src
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	if d <= 1 {
		return 0
	}
	return d - 1
}
