package bench

import (
	"math"
	"testing"

	"tca/internal/obsv/critpath"
	"tca/internal/tcanet"
)

// TestFleetPingPongBudgetsConsistent is the ISSUE 7 acceptance gate for the
// ping-pong scenario: every leg's per-bucket budget sums tick-exactly to its
// end-to-end latency with nothing unattributed, and the ring never evicts.
func TestFleetPingPongBudgetsConsistent(t *testing.T) {
	f := FleetPingPong(tcanet.DefaultParams, 4, 0, 2, 4)
	if got := len(f.Budgets); got != 8 {
		t.Fatalf("fleet has %d legs, want 8", got)
	}
	if f.Evicted != 0 {
		t.Fatalf("span ring evicted %d events; budgets would be truncated", f.Evicted)
	}
	for _, b := range f.Budgets {
		if b.Total <= 0 {
			t.Fatalf("txn %d: nonpositive end-to-end latency %v", b.Txn, b.Total)
		}
		if !b.Consistent() {
			t.Errorf("txn %d: buckets sum to %v, end-to-end %v, unattributed %v",
				b.Txn, b.Sum(), b.Total, b.Buckets[critpath.BucketUnattributed])
		}
	}
	if !f.Consistent() {
		t.Fatalf("fleet inconsistent")
	}
	// The traced first leg must reproduce the uninstrumented reference
	// latency exactly — instrumentation never perturbs the simulation.
	ref := MeasurePIOLatency(tcanet.DefaultParams, 4, 0, 2)
	if f.Budgets[0].Total != ref {
		t.Fatalf("first leg total %v != reference PIO latency %v", f.Budgets[0].Total, ref)
	}
}

// TestFleetPingPongLadder checks the percentile ladder over the fleet.
func TestFleetPingPongLadder(t *testing.T) {
	f := FleetPingPong(tcanet.DefaultParams, 4, 0, 2, 4)
	l := f.Ladder
	if l.N != 8 {
		t.Fatalf("ladder over %d samples, want 8", l.N)
	}
	if l.P999 <= 0 {
		t.Fatalf("p999 = %g, want > 0", l.P999)
	}
	if l.Median > l.P95 || l.P95 > l.P99 || l.P99 > l.P999 || l.P999 > l.Max {
		t.Fatalf("ladder not monotone: %+v", l)
	}
}

// TestFleetDMAChainsBudgetsConsistent is the acceptance gate for the
// chain-DMA scenario: doorbell through completion IRQ, per-bucket sums
// tick-exact for every chain.
func TestFleetDMAChainsBudgetsConsistent(t *testing.T) {
	f := FleetDMAChains(tcanet.DefaultParams, 4096, 8, 4)
	if got := len(f.Budgets); got != 4 {
		t.Fatalf("fleet has %d chains, want 4", got)
	}
	if f.Evicted != 0 {
		t.Fatalf("span ring evicted %d events; budgets would be truncated", f.Evicted)
	}
	for _, b := range f.Budgets {
		if !b.Consistent() {
			t.Errorf("txn %d: buckets sum to %v, end-to-end %v, unattributed %v",
				b.Txn, b.Sum(), b.Total, b.Buckets[critpath.BucketUnattributed])
		}
		if b.Buckets[critpath.BucketDMAEngine] <= 0 {
			t.Errorf("txn %d: DMA chain charged no dma-engine time", b.Txn)
		}
	}
	// A multi-descriptor chain serializes on the issue pipeline. The wait
	// overlaps the chain's own streaming traffic so the critical-path
	// charge may collapse to a tail, but the observed enter/exit pair must
	// register in the queue-wait attribution.
	if f.WaitTotals[critpath.BucketWaitChainSer] <= 0 {
		t.Errorf("no observed wait:chain-serialization across the fleet (WaitTotals %v)",
			f.WaitTotals)
	}
	// Descriptor fetch goes through the host root complex as a device read.
	if f.WaitTotals[critpath.BucketWaitRead] <= 0 {
		t.Errorf("no observed wait:outstanding-read for descriptor fetch")
	}
}

// TestPingPongModelComparator checks the analytical comparator: the
// measured fleet must land near the model built from the gated Fig. 10
// numbers.
func TestPingPongModelComparator(t *testing.T) {
	m := PingPongModel(tcanet.DefaultParams)
	if m.MinPingPongUS <= 0 || m.PerHopNS <= 0 {
		t.Fatalf("degenerate model %+v", m)
	}
	f := FleetPingPong(tcanet.DefaultParams, 4, 0, 2, 4)
	diffs := m.CompareFleet(f, RingForwardHops(4, 0, 2))
	if len(diffs) == 0 {
		t.Fatalf("comparator returned no rows")
	}
	for _, d := range diffs {
		if math.Abs(d.DiffPct) > 10 {
			t.Errorf("%s: predicted %.4f us, measured %.4f us (%+.2f%% > 10%%)",
				d.Name, d.PredictedUS, d.MeasuredUS, d.DiffPct)
		}
	}
}

func TestRingForwardHops(t *testing.T) {
	cases := []struct{ n, src, dst, want int }{
		{4, 0, 1, 0},
		{4, 0, 2, 1},
		{4, 0, 3, 0},
		{8, 0, 4, 3},
		{8, 2, 7, 2},
		{16, 0, 8, 7},
	}
	for _, c := range cases {
		if got := RingForwardHops(c.n, c.src, c.dst); got != c.want {
			t.Errorf("RingForwardHops(%d, %d, %d) = %d, want %d", c.n, c.src, c.dst, got, c.want)
		}
	}
}
