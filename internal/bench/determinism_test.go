package bench

import (
	"bytes"
	"fmt"
	"testing"

	"tca/internal/tcanet"
)

// TestTraceDeterminism runs each traced scenario twice on fresh engines and
// asserts the two runs are byte-identical: the same event sequence, the same
// hop breakdown, the same end-to-end latency, and the same metrics snapshot.
// This is the executable form of the invariant tcavet's simdeterminism
// analyzer enforces statically — if a map iteration or wall-clock read
// sneaks into the scheduling path, the serialized transcripts diverge here.
func TestTraceDeterminism(t *testing.T) {
	scenarios := []struct {
		name string
		run  func() *TraceResult
	}{
		{"ping-pong", func() *TraceResult {
			return TracePingPong(tcanet.DefaultParams, 4, 0, 2)
		}},
		{"forward-chain", func() *TraceResult {
			return TraceForward(tcanet.DefaultParams, 8, 1, 5)
		}},
		// Fault scenarios must be just as reproducible: the injector's rand
		// stream is seeded and consumed only at schedule-determined points,
		// so a mid-run link cut, DLL replays, and a live failover replay
		// byte-identically — the acceptance criterion for `-fault`.
		{"fault-linkdown-failover", func() *TraceResult {
			res, err := TracePingPongFault(tcanet.DefaultParams, 4, 0, 2, 10, "linkdown:1e:12us", 7)
			if err != nil {
				panic(err)
			}
			return res
		}},
		{"fault-lossy-cable", func() *TraceResult {
			res, err := TracePingPongFault(tcanet.DefaultParams, 4, 0, 1, 6, "corrupt:0.2,drop:0.05", 42)
			if err != nil {
				panic(err)
			}
			return res
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			first := serializeTrace(t, sc.run())
			second := serializeTrace(t, sc.run())
			if !bytes.Equal(first, second) {
				t.Errorf("two runs of %s produced different transcripts:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
					sc.name, firstDiff(first, second), firstDiff(second, first))
			}
		})
	}
}

// serializeTrace flattens a TraceResult — spans, events, hops, latency and
// the full metrics snapshot — into a canonical byte transcript.
func serializeTrace(t *testing.T, res *TraceResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "scenario=%s end-to-end=%v\n", res.Scenario, res.EndToEnd)
	for _, sp := range res.Spans {
		fmt.Fprintf(&buf, "span txn=%d total=%v\n", sp.Txn, sp.Total)
		for _, ev := range sp.Events {
			fmt.Fprintf(&buf, "  event %+v\n", ev)
		}
		for _, hop := range sp.Hops {
			fmt.Fprintf(&buf, "  hop %+v\n", hop)
		}
	}
	if err := res.Snapshot.WriteJSON(&buf); err != nil {
		t.Fatalf("serializing snapshot: %v", err)
	}
	return buf.Bytes()
}

// firstDiff returns the line of a where the two transcripts first diverge,
// so a failure points at the offending event rather than dumping kilobytes.
func firstDiff(a, b []byte) []byte {
	la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := range la {
		if i >= len(lb) || !bytes.Equal(la[i], lb[i]) {
			return la[i]
		}
	}
	return []byte("(transcripts identical up to length)")
}
