package bench

import (
	"fmt"

	"tca/internal/core"
	"tca/internal/host"
	"tca/internal/ib"
	"tca/internal/pcie"
	"tca/internal/peach2"
	"tca/internal/sim"
	"tca/internal/tcanet"
	"tca/internal/units"
)

// Target selects the memory the DMA controller exercises.
type Target int

// Targets.
const (
	TargetCPU Target = iota
	TargetGPU
)

func (t Target) String() string {
	if t == TargetGPU {
		return "GPU"
	}
	return "CPU"
}

// Dir is the transfer direction from PEACH2's point of view, matching the
// paper's convention: "a DMA write indicates a transfer from PEACH2 to
// CPU/GPU" (§IV-A).
type Dir int

// Directions.
const (
	DirWrite Dir = iota
	DirRead
)

func (d Dir) String() string {
	if d == DirRead {
		return "read"
	}
	return "write"
}

// rig is one fresh, deterministic measurement setup.
type rig struct {
	eng  *sim.Engine
	sc   *tcanet.SubCluster
	comm *core.Comm
}

func newRig(nodes int, prm tcanet.Params) *rig {
	eng := sim.NewEngine()
	sc, err := tcanet.BuildRing(eng, nodes, prm)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	comm, err := core.NewComm(sc)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return &rig{eng: eng, sc: sc, comm: comm}
}

// measureChain reproduces the paper's DMA measurements: count descriptors
// of size bytes each, against the CPU or GPU, locally or on the adjacent
// node, timed from before driver activation to the completion interrupt
// (the TSC methodology of §IV-A).
func (r *rig) measureChain(dir Dir, target Target, remote bool, size units.ByteSize, count int) units.Bandwidth {
	total := size * units.ByteSize(count)
	node := 0
	endNode := 0
	if remote {
		endNode = 1
	}

	// The far end: a host DMA buffer or a pinned GPU buffer.
	var busBase pcie.Addr // local bus address on endNode
	var addrOf func(i int) uint64
	switch target {
	case TargetCPU:
		buf, err := r.sc.Node(endNode).AllocDMABuffer(total)
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		busBase = buf
	case TargetGPU:
		gbuf, err := r.comm.RegisterGPUBuffer(endNode, 0, total)
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		busBase = gbuf.Bus
	}
	if remote {
		var g pcie.Addr
		var err error
		if target == TargetCPU {
			g, err = r.sc.GlobalHostAddr(endNode, busBase)
		} else {
			g, err = r.sc.GlobalGPUAddr(endNode, 0, busBase)
		}
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		addrOf = func(i int) uint64 { return uint64(g) + uint64(i)*uint64(size) }
	} else {
		addrOf = func(i int) uint64 { return uint64(busBase) + uint64(i)*uint64(size) }
	}

	descs := make([]peach2.Descriptor, 0, count)
	switch dir {
	case DirWrite:
		// Internal memory is the mandatory DMA-write source (§IV-B2);
		// the driver staged `size` bytes there once.
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		if err := r.sc.Chip(node).InternalMemory().Write(0, payload); err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		for i := 0; i < count; i++ {
			descs = append(descs, peach2.Descriptor{Kind: peach2.DescWrite, Len: size, Src: 0, Dst: addrOf(i)})
		}
	case DirRead:
		if remote {
			panic("bench: remote DMA read is prohibited (RDMA put only, §III-F)")
		}
		for i := 0; i < count; i++ {
			descs = append(descs, peach2.Descriptor{Kind: peach2.DescRead, Len: size, Src: addrOf(i), Dst: 0})
		}
	}

	start := r.eng.Now()
	var end sim.Time
	if err := r.comm.StartChain(node, descs, func(now sim.Time) { end = now }); err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	r.eng.Run()
	if end == 0 {
		panic("bench: chain never completed")
	}
	return units.Rate(total, end.Sub(start))
}

// Fig7Sizes are the per-descriptor sizes of the 255-burst sweep.
var Fig7Sizes = []units.ByteSize{16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// Fig8Sizes extend to the megabyte range where a single descriptor
// amortizes its activation.
var Fig8Sizes = []units.ByteSize{64, 256, 1024, 4096, 16 * units.KiB, 64 * units.KiB, 256 * units.KiB, units.MiB}

// Fig9Counts are the burst counts at fixed 4 KiB.
var Fig9Counts = []int{1, 2, 4, 8, 16, 32, 64, 128, 255}

// Fig7 regenerates "Data Size vs. Bandwidth between PEACH2 and the CPU/GPU
// (DMA 255 times)".
func Fig7(prm tcanet.Params) *Table {
	t := &Table{
		ID:      "Fig7",
		Title:   "Data size vs bandwidth, PEACH2 ↔ CPU/GPU within a node, 255 chained DMAs (GB/s)",
		XLabel:  "size",
		Columns: []string{"CPU write", "CPU read", "GPU write", "GPU read"},
	}
	for _, size := range Fig7Sizes {
		vals := make([]string, 0, 4)
		for _, tg := range []Target{TargetCPU, TargetGPU} {
			for _, dir := range []Dir{DirWrite, DirRead} {
				r := newRig(2, prm)
				bw := r.measureChain(dir, tg, false, size, 255)
				vals = append(vals, GB(bw.GBps()))
			}
		}
		// Reorder to CPUw, CPUr, GPUw, GPUr.
		t.AddRow(units.ByteSize(size).String(), vals[0], vals[1], vals[2], vals[3])
	}
	t.AddNote("paper: DMA write peaks at 3.3 GB/s at 4 KiB — 93%% of the 3.66 GB/s theoretical peak")
	t.AddNote("paper: GPU write ≈ CPU write; GPU read ceiling ≈ 0.83 GB/s (BAR translation, §IV-A2)")
	t.AddNote("paper: DMA read < write at small sizes, ≈ write at 4 KiB")
	return t
}

// Fig8 regenerates "Data Size vs. Bandwidth (single DMA)".
func Fig8(prm tcanet.Params) *Table {
	t := &Table{
		ID:      "Fig8",
		Title:   "Data size vs bandwidth, single DMA descriptor (GB/s)",
		XLabel:  "size",
		Columns: []string{"CPU write", "CPU read", "GPU write", "GPU read"},
	}
	for _, size := range Fig8Sizes {
		vals := make([]string, 0, 4)
		for _, tg := range []Target{TargetCPU, TargetGPU} {
			for _, dir := range []Dir{DirWrite, DirRead} {
				r := newRig(2, prm)
				bw := r.measureChain(dir, tg, false, size, 1)
				vals = append(vals, GB(bw.GBps()))
			}
		}
		t.AddRow(units.ByteSize(size).String(), vals[0], vals[1], vals[2], vals[3])
	}
	t.AddNote("paper: severely degraded versus 255-burst at small sizes — descriptor-table retrieval dominates")
	t.AddNote("paper: a single 8 KiB+ transfer ≈ two or more 4 KiB chained requests")
	return t
}

// Fig9 regenerates "Number of DMA Requests vs. Bandwidth (fixed 4 KiB)".
func Fig9(prm tcanet.Params) *Table {
	t := &Table{
		ID:      "Fig9",
		Title:   "Burst count vs bandwidth at fixed 4 KiB per descriptor (GB/s)",
		XLabel:  "requests",
		Columns: []string{"CPU write", "CPU read", "GPU write", "GPU read"},
	}
	var peak float64
	var four float64
	for _, count := range Fig9Counts {
		vals := make([]string, 0, 4)
		var cpuW float64
		for _, tg := range []Target{TargetCPU, TargetGPU} {
			for _, dir := range []Dir{DirWrite, DirRead} {
				r := newRig(2, prm)
				bw := r.measureChain(dir, tg, false, 4096, count)
				if tg == TargetCPU && dir == DirWrite {
					cpuW = bw.GBps()
				}
				vals = append(vals, GB(bw.GBps()))
			}
		}
		if cpuW > peak {
			peak = cpuW
		}
		if count == 4 {
			four = cpuW
		}
		t.AddRow(fmt.Sprintf("%d", count), vals[0], vals[1], vals[2], vals[3])
	}
	t.AddNote("paper: 4 requests reach ≈70%% of the maximum — measured %0.f%%", 100*four/peak)
	t.AddNote("paper: same total bytes ⇒ same bandwidth regardless of descriptor count")
	return t
}

// Fig12 regenerates "Data Size vs. Bandwidth between PEACH2 and CPU/GPU on
// an Adjacent Node via PEACH2 (DMA 255 times)"; the local columns repeat
// Fig. 7's write lines for comparison, as the paper does.
func Fig12(prm tcanet.Params) *Table {
	t := &Table{
		ID:      "Fig12",
		Title:   "Data size vs bandwidth, remote DMA write to the adjacent node (GB/s)",
		XLabel:  "size",
		Columns: []string{"CPU local", "CPU remote", "GPU local", "GPU remote"},
	}
	for _, size := range Fig7Sizes {
		var vals []string
		for _, tg := range []Target{TargetCPU, TargetGPU} {
			for _, remote := range []bool{false, true} {
				r := newRig(2, prm)
				bw := r.measureChain(DirWrite, tg, remote, size, 255)
				vals = append(vals, GB(bw.GBps()))
			}
		}
		t.AddRow(units.ByteSize(size).String(), vals[0], vals[1], vals[2], vals[3])
	}
	t.AddNote("paper: remote CPU bandwidth dips at small sizes (inter-PEACH2 latency), ≈ local at 4 KiB")
	t.AddNote("paper: remote GPU ≈ local GPU — the deep request queue absorbs the hop (§IV-B2)")
	return t
}

// LatencyPIO regenerates the §IV-B1 loopback measurement and sets it beside
// the InfiniBand latencies the paper compares against.
func LatencyPIO(prm tcanet.Params) *Table {
	t := &Table{
		ID:      "LatencyPIO",
		Title:   "Small-message one-way latency (µs)",
		XLabel:  "path",
		Columns: []string{"latency"},
	}

	// PEACH2 loopback through two chips (Fig. 10).
	{
		eng := sim.NewEngine()
		lb, err := tcanet.BuildLoopback(eng, prm)
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		flag, _ := lb.Node.AllocDMABuffer(64)
		dst := lb.Plan.HostBlock(0).Base + pcie.Addr(flag)
		var seen sim.Time
		lb.Node.Poll(pcie.Range{Base: flag, Size: 4}, func(now sim.Time) { seen = now })
		lb.Node.Store(dst, []byte{1, 2, 3, 4})
		eng.Run()
		t.AddRow("PEACH2 PIO (2-chip loopback)", US(seen.Elapsed().Microseconds()))
	}

	// PEACH2 PIO to the adjacent node on a real ring.
	{
		r := newRig(2, prm)
		buf, _ := r.sc.Node(1).AllocDMABuffer(64)
		dst, _ := r.sc.GlobalHostAddr(1, buf)
		var seen sim.Time
		r.sc.Node(1).Poll(pcie.Range{Base: buf, Size: 4}, func(now sim.Time) { seen = now })
		r.sc.Node(0).Store(dst, []byte{1, 2, 3, 4})
		r.eng.Run()
		t.AddRow("PEACH2 PIO (adjacent node on a ring)", US(seen.Elapsed().Microseconds()))
	}

	// PEACH2 chained-DMA small message, remote (activation dominates).
	{
		r := newRig(2, prm)
		bw := r.measureChain(DirWrite, TargetCPU, true, 8, 1)
		lat := 8 / bw.BytesPerSec() * 1e6
		t.AddRow("PEACH2 DMA 8B (remote, incl. activation+IRQ)", US(lat))
	}

	// InfiniBand verbs and MPI.
	{
		eng := sim.NewEngine()
		p := newIBPair(eng, prm)
		var verbsAt, mpiAt sim.Time
		if err := p.fabric.VerbsSend(0, 1, p.src, p.dst, 4, func(now sim.Time) { verbsAt = now }); err != nil {
			panic(err)
		}
		eng.Run()
		base := eng.Now()
		if err := p.fabric.MPISend(0, 1, p.src, p.dst, 4, func(now sim.Time) { mpiAt = now }); err != nil {
			panic(err)
		}
		eng.Run()
		t.AddRow("InfiniBand verbs 4B", US(verbsAt.Elapsed().Microseconds()))
		t.AddRow("InfiniBand MPI 4B", US(mpiAt.Sub(base).Microseconds()))
	}

	t.AddNote("paper: PEACH2 transfer latency = 782 ns; InfiniBand FDR announced as <1 µs")
	t.AddNote("paper: PEACH2 ≈ same or slightly less than InfiniBand; PIO is the short-message mode (§III-F1)")
	return t
}

// ibPair is a 2-node IB fabric with one registered buffer per side.
type ibPair struct {
	fabric *ib.Fabric
	nodes  []*host.Node
	src    pcie.Addr
	dst    pcie.Addr
}

func newIBPair(eng *sim.Engine, prm tcanet.Params) *ibPair {
	nodes := []*host.Node{
		host.NewNode(eng, 0, prm.Host),
		host.NewNode(eng, 1, prm.Host),
	}
	f, err := ib.NewFabric(eng, nodes, ib.QDRParams)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	src, _ := nodes[0].AllocDMABuffer(units.MiB)
	dst, _ := nodes[1].AllocDMABuffer(units.MiB)
	if err := nodes[0].WriteLocal(src, make([]byte, units.MiB)); err != nil {
		panic(err)
	}
	return &ibPair{fabric: f, nodes: nodes, src: src, dst: dst}
}
