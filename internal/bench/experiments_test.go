package bench

import (
	"bytes"
	"testing"

	"tca/internal/tcanet"
)

// TestAllExperimentsReproducePaperShapes runs every registered experiment
// and applies its shape check — the repository's central claim: each of the
// paper's tables and figures regenerates with the paper's qualitative
// behaviour.
func TestAllExperimentsReproducePaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite in -short mode")
	}
	prm := tcanet.DefaultParams
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab := e.Run(prm)
			var buf bytes.Buffer
			if err := tab.Format(&buf); err != nil {
				t.Fatalf("Format: %v", err)
			}
			t.Logf("\n%s", buf.String())
			if len(tab.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			if e.Check != nil {
				if err := e.Check(tab); err != nil {
					t.Fatalf("shape check failed: %v", err)
				}
			}
		})
	}
}

// TestExperimentsDeterministic re-runs Fig9 and demands identical output —
// the discrete-event engine promises bit-for-bit reproducibility.
func TestExperimentsDeterministic(t *testing.T) {
	prm := tcanet.DefaultParams
	a := Fig9(prm)
	b := Fig9(prm)
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("row counts differ between runs")
	}
	for i := range a.Rows {
		if a.Rows[i].X != b.Rows[i].X {
			t.Fatalf("row %d keys differ", i)
		}
		for j := range a.Rows[i].Vals {
			if a.Rows[i].Vals[j] != b.Rows[i].Vals[j] {
				t.Fatalf("row %d col %d: %q vs %q — simulation not deterministic",
					i, j, a.Rows[i].Vals[j], b.Rows[i].Vals[j])
			}
		}
	}
}
