package bench

import (
	"encoding/binary"
	"fmt"
	"math"

	"tca/internal/coll"
	"tca/internal/core"
	"tca/internal/host"
	"tca/internal/ib"
	"tca/internal/pcie"
	"tca/internal/peach2"
	"tca/internal/sim"
	"tca/internal/solver"
	"tca/internal/tcanet"
	"tca/internal/units"
)

// ExtCollectives measures the MPI-free collective library (§VI's announced
// TCA API): barrier and small-vector allreduce latency against sub-cluster
// size. Not a paper figure — an extension the repository adds on top.
func ExtCollectives(prm tcanet.Params) *Table {
	t := &Table{
		ID:      "ExtCollectives",
		Title:   "TCA collective latency vs sub-cluster size (µs) — extension",
		XLabel:  "nodes",
		Columns: []string{"barrier", "allreduce 1KiB/node"},
	}
	for _, n := range []int{2, 4, 8, 16} {
		eng := sim.NewEngine()
		sc, err := tcanet.BuildRing(eng, n, prm)
		if err != nil {
			panic(err)
		}
		comm, err := core.NewComm(sc)
		if err != nil {
			panic(err)
		}
		comm.SetMode(core.Pipelined)
		cc, err := coll.New(comm)
		if err != nil {
			panic(err)
		}

		var barrierAt sim.Time
		cc.Barrier(func(now sim.Time) { barrierAt = now })
		eng.Run()

		count := n * 16 // 128 B per node chunk
		var bufs []core.HostBuffer
		for i := 0; i < n; i++ {
			b, err := comm.AllocHostBuffer(i, units.ByteSize(count*8))
			if err != nil {
				panic(err)
			}
			raw := make([]byte, count*8)
			for j := 0; j < count; j++ {
				binary.LittleEndian.PutUint64(raw[j*8:], math.Float64bits(float64(i+j)))
			}
			if err := comm.WriteHost(b, 0, raw); err != nil {
				panic(err)
			}
			bufs = append(bufs, b)
		}
		start := eng.Now()
		var arAt sim.Time
		if err := cc.Allreduce(bufs, count, func(now sim.Time) { arAt = now }); err != nil {
			panic(err)
		}
		eng.Run()
		t.AddRow(fmt.Sprintf("%d", n),
			US(barrierAt.Elapsed().Microseconds()),
			US(arAt.Sub(start).Microseconds()))
	}
	t.AddNote("barrier: dissemination over PIO flags, ⌈log2 n⌉ rounds; allreduce: ring, 2(n-1) puts per node")
	t.AddNote("sub-2KiB chunks ride PIO (the §III-F1 short-message mode); no MPI anywhere in the path (§V)")
	return t
}

// ExtCGSolve measures the distributed conjugate-gradient application's
// communication time per iteration against sub-cluster size — the
// "full-scale scientific application" trajectory of §VI. Extension.
func ExtCGSolve(prm tcanet.Params) *Table {
	t := &Table{
		ID:      "ExtCGSolve",
		Title:   "Distributed CG (1-D Poisson, 64 unknowns): per-iteration communication time (µs) — extension",
		XLabel:  "nodes",
		Columns: []string{"iterations", "total (µs)", "per iteration (µs)"},
	}
	for _, n := range []int{2, 4, 8} {
		eng := sim.NewEngine()
		sc, err := tcanet.BuildRing(eng, n, prm)
		if err != nil {
			panic(err)
		}
		comm, err := core.NewComm(sc)
		if err != nil {
			panic(err)
		}
		comm.SetMode(core.Pipelined)
		cc, err := coll.New(comm)
		if err != nil {
			panic(err)
		}
		const N = 64
		cg, err := solver.New(comm, cc, N)
		if err != nil {
			panic(err)
		}
		xStar := make([]float64, N)
		for i := range xStar {
			xStar[i] = math.Cos(0.29 * float64(i))
		}
		b := make([]float64, N)
		for i := range xStar {
			b[i] = 2 * xStar[i]
			if i > 0 {
				b[i] -= xStar[i-1]
			}
			if i < N-1 {
				b[i] -= xStar[i+1]
			}
		}
		if err := cg.SetB(b); err != nil {
			panic(err)
		}
		var st solver.Stats
		cg.Solve(1e-10, 10*N, func(s solver.Stats) { st = s })
		eng.Run()
		if st.Iterations == 0 {
			panic("bench: CG did not iterate")
		}
		t.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", st.Iterations),
			US(st.Elapsed.Microseconds()),
			US(st.Elapsed.Microseconds()/float64(st.Iterations)))
	}
	t.AddNote("traffic is 8-byte halo cells and scalar reductions — the short-message class TCA targets (§I)")
	return t
}

// ExtRingScaling stresses the sub-cluster size limit the paper designs
// around ("a large number of nodes degrades the performance", §II-B):
// every node simultaneously streams a 255×4 KiB chain to its antipode, the
// worst-distance all-shift pattern, and the per-flow bandwidth shows how
// ring contention grows with node count. Extension experiment.
func ExtRingScaling(prm tcanet.Params) *Table {
	t := &Table{
		ID:      "ExtRingScaling",
		Title:   "Concurrent antipodal 255×4KiB puts: per-flow bandwidth vs ring size (GB/s) — extension",
		XLabel:  "nodes",
		Columns: []string{"per-flow", "aggregate", "vs single-flow peak"},
	}
	const size = 4096
	const count = 255
	total := units.ByteSize(size * count)
	for _, n := range []int{2, 4, 8, 16} {
		eng := sim.NewEngine()
		sc, err := tcanet.BuildRing(eng, n, prm)
		if err != nil {
			panic(err)
		}
		comm, err := core.NewComm(sc)
		if err != nil {
			panic(err)
		}
		done := 0
		var last sim.Time
		for i := 0; i < n; i++ {
			if err := sc.Chip(i).InternalMemory().Write(0, make([]byte, size)); err != nil {
				panic(err)
			}
			dstNode := (i + n/2) % n
			buf, err := sc.Node(dstNode).AllocDMABuffer(total)
			if err != nil {
				panic(err)
			}
			g, err := sc.GlobalHostAddr(dstNode, buf)
			if err != nil {
				panic(err)
			}
			chainDescs := buildWriteChain(uint64(g), size, count)
			if err := comm.StartChain(i, chainDescs, func(now sim.Time) {
				done++
				if now > last {
					last = now
				}
			}); err != nil {
				panic(err)
			}
		}
		eng.Run()
		if done != n {
			panic(fmt.Sprintf("bench: %d/%d flows completed", done, n))
		}
		perFlow := units.Rate(total, last.Elapsed())
		agg := units.Bandwidth(perFlow.BytesPerSec() * float64(n))
		single := 3.322
		t.AddRow(fmt.Sprintf("%d", n), GB(perFlow.GBps()), GB(agg.GBps()),
			fmt.Sprintf("%.0f%%", 100*perFlow.GBps()/single))
	}
	t.AddNote("every node targets its antipode; shortest-arc routing splits flows over both directions")
	t.AddNote("§II-B: sub-clusters stay at 8–16 nodes because contention (and cable reach) grows with size")
	return t
}

// buildWriteChain makes a count-descriptor chain of size-byte writes from
// internal-memory offset 0 to consecutive destinations at dst.
func buildWriteChain(dst uint64, size units.ByteSize, count int) []peach2.Descriptor {
	descs := make([]peach2.Descriptor, 0, count)
	for i := 0; i < count; i++ {
		descs = append(descs, peach2.Descriptor{
			Kind: peach2.DescWrite,
			Len:  size,
			Src:  0,
			Dst:  dst + uint64(i)*uint64(size),
		})
	}
	return descs
}

// ExtLatencyBudget decomposes the §IV-B1 loopback latency into its stages
// by zeroing one cost at a time and measuring the difference — the
// reproduction's answer to "where do the 782 ns go?". Extension.
func ExtLatencyBudget(prm tcanet.Params) *Table {
	t := &Table{
		ID:      "ExtLatencyBudget",
		Title:   "PIO loopback latency budget: contribution per pipeline stage (ns) — extension",
		XLabel:  "stage",
		Columns: []string{"contribution"},
	}
	base := MeasureLoopbackPIO(prm).Nanoseconds()
	add := func(name string, mod func(*tcanet.Params)) {
		p := prm
		mod(&p)
		t.AddRow(name, fmt.Sprintf("%.1f", base-MeasureLoopbackPIO(p).Nanoseconds()))
	}
	add("CPU store to root complex", func(p *tcanet.Params) { p.Host.StoreLatency = 0 })
	add("socket switch forwards (2x)", func(p *tcanet.Params) { p.Host.Switch.ForwardLatency = 0 })
	add("PEACH2 router pipelines (2x)", func(p *tcanet.Params) { p.Chip.RouterLatency = 0 })
	add("Port-N address conversion", func(p *tcanet.Params) { p.Chip.NConvLatency = 0 })
	add("external cable + SerDes", func(p *tcanet.Params) { p.CableProp = 0 })
	add("host-side link flight", func(p *tcanet.Params) { p.HostLinkProp = 0 })
	add("poll-loop detection", func(p *tcanet.Params) { p.Host.PollDetectLatency = 0 })
	t.AddRow("total measured", fmt.Sprintf("%.1f", base))
	t.AddNote("paper §IV-B1: 782 ns through two chips; the remainder after the listed stages is wire serialization")
	return t
}

// ExtCollVsMPI quantifies the §V claim directly: the identical ring
// allreduce schedule run over TCA primitives versus over the InfiniBand
// MPI layer, for a small vector (the latency-bound regime) and a larger
// one. Extension.
func ExtCollVsMPI(prm tcanet.Params) *Table {
	t := &Table{
		ID:      "ExtCollVsMPI",
		Title:   "Ring allreduce latency, TCA vs MPI-over-IB (µs) — extension",
		XLabel:  "config",
		Columns: []string{"TCA", "MPI/IB", "TCA speedup"},
	}
	for _, cfg := range []struct {
		n      int
		chunkB int
	}{{4, 128}, {8, 128}, {4, 8192}, {8, 8192}} {
		count := cfg.n * cfg.chunkB / 8

		// TCA side.
		var tcaLat units.Duration
		{
			eng := sim.NewEngine()
			sc, err := tcanet.BuildRing(eng, cfg.n, prm)
			if err != nil {
				panic(err)
			}
			comm, err := core.NewComm(sc)
			if err != nil {
				panic(err)
			}
			comm.SetMode(core.Pipelined)
			cc, err := coll.New(comm)
			if err != nil {
				panic(err)
			}
			var bufs []core.HostBuffer
			for i := 0; i < cfg.n; i++ {
				b, err := comm.AllocHostBuffer(i, units.ByteSize(count*8))
				if err != nil {
					panic(err)
				}
				if err := comm.WriteHost(b, 0, make([]byte, count*8)); err != nil {
					panic(err)
				}
				bufs = append(bufs, b)
			}
			start := eng.Now()
			var end sim.Time
			if err := cc.Allreduce(bufs, count, func(now sim.Time) { end = now }); err != nil {
				panic(err)
			}
			eng.Run()
			tcaLat = end.Sub(start)
		}

		// MPI side: same schedule over the IB fabric.
		var mpiLat units.Duration
		{
			eng := sim.NewEngine()
			var nodes []*host.Node
			for i := 0; i < cfg.n; i++ {
				nodes = append(nodes, host.NewNode(eng, i, prm.Host))
			}
			f, err := ib.NewFabric(eng, nodes, ib.QDRParams)
			if err != nil {
				panic(err)
			}
			bufs := make([]pcie.Addr, cfg.n)
			for i := 0; i < cfg.n; i++ {
				b, err := nodes[i].AllocDMABuffer(units.ByteSize(count * 8))
				if err != nil {
					panic(err)
				}
				if err := nodes[i].WriteLocal(b, make([]byte, count*8)); err != nil {
					panic(err)
				}
				bufs[i] = b
			}
			start := eng.Now()
			var end sim.Time
			if err := f.RingAllreduce(bufs, count, func(now sim.Time) { end = now }); err != nil {
				panic(err)
			}
			eng.Run()
			mpiLat = end.Sub(start)
		}

		t.AddRow(fmt.Sprintf("%d nodes × %dB chunks", cfg.n, cfg.chunkB),
			US(tcaLat.Microseconds()), US(mpiLat.Microseconds()),
			fmt.Sprintf("%.1fx", mpiLat.Picoseconds()/tcaLat.Picoseconds()))
	}
	t.AddNote("identical ring schedule both sides; the difference is pure stack cost (§V)")
	t.AddNote("TCA wins the latency-bound regime (PIO path); for multi-KiB host-to-host chunks the DMA " +
		"activation (~3 µs doorbell+fetch+IRQ) outweighs MPI's stack — TCA's bulk advantage is the " +
		"GPU-direct path (see Baseline), not host-to-host bandwidth")
	return t
}
