package bench

import (
	"fmt"

	"tca/internal/fault"
	"tca/internal/pcie"
	"tca/internal/sim"
	"tca/internal/tcanet"
	"tca/internal/units"
)

// Fault scenarios: the robustness counterparts of the clean-fabric traces.
// They run the same instrumented topologies with a seeded fault.Injector
// wired in, so the output — spans, metrics, fault counters — is still
// byte-reproducible for a given (spec, seed) pair; the determinism suite
// runs them twice to prove it.

// TracePingPongFault runs `rounds` of traced ping-pong between src and dst
// on an n-node ring while the scenario spec's faults (fault.ParseScenario)
// play out, with the DLL on every cable and NIOS auto-failover armed. Each
// round writes an 8-byte round-stamped payload into its own slot, so the
// final buffers prove every payload — including those parked at a dead
// link or salvaged from its replay buffer — arrived byte-identical.
func TracePingPongFault(prm tcanet.Params, n, src, dst, rounds int, spec string, seed int64) (*TraceResult, error) {
	prof, err := fault.ParseScenario(spec, seed)
	if err != nil {
		return nil, err
	}
	eng, sc, set := instrumentedRing(n, prm)
	inj := fault.New(prof)
	inj.Instrument(set)
	sc.InjectFaults(inj, pcie.DefaultDLLParams())
	sc.EnableAutoFailover(0)

	dstBuf, err := sc.Node(dst).AllocDMABuffer(units.ByteSize(8 * rounds))
	if err != nil {
		return nil, err
	}
	srcBuf, err := sc.Node(src).AllocDMABuffer(units.ByteSize(8 * rounds))
	if err != nil {
		return nil, err
	}
	dstG, err := sc.GlobalHostAddr(dst, dstBuf)
	if err != nil {
		return nil, err
	}
	srcG, err := sc.GlobalHostAddr(src, srcBuf)
	if err != nil {
		return nil, err
	}

	var txns []uint64
	var roundD, roundS int
	var done sim.Time
	sc.Node(dst).Poll(pcie.Range{Base: dstBuf, Size: uint64(8 * rounds)}, func(now sim.Time) {
		r := roundD
		roundD++
		txns = append(txns, sc.Node(dst).StoreTxn(srcG+pcie.Addr(8*r), pongPayload(r)))
	})
	sc.Node(src).Poll(pcie.Range{Base: srcBuf, Size: uint64(8 * rounds)}, func(now sim.Time) {
		roundS++
		if roundS < rounds {
			txns = append(txns, sc.Node(src).StoreTxn(dstG+pcie.Addr(8*roundS), pingPayload(roundS)))
			return
		}
		done = now
	})
	txns = append(txns, sc.Node(src).StoreTxn(dstG, pingPayload(0)))
	eng.Run()
	if done == 0 {
		return nil, fmt.Errorf("bench: fault ping-pong stalled after %d/%d rounds — recovery failed (%s, seed %d)",
			roundS, rounds, spec, seed)
	}
	// Byte-identical delivery: every slot holds exactly its round's stamp.
	for r := 0; r < rounds; r++ {
		if err := checkSlot(sc, dst, dstBuf, r, pingPayload(r)); err != nil {
			return nil, err
		}
		if err := checkSlot(sc, src, srcBuf, r, pongPayload(r)); err != nil {
			return nil, err
		}
	}
	rec := set.Recorder()
	spans := make([]Span, 0, len(txns))
	for _, txn := range txns {
		spans = append(spans, newSpan(rec, txn))
	}
	return &TraceResult{
		Scenario: fmt.Sprintf("fault ping-pong node%d<->node%d ×%d (%d-node ring, %s, seed %d)",
			src, dst, rounds, n, spec, seed),
		Spans:    spans,
		EndToEnd: done.Elapsed(),
		Snapshot: set.Registry().Snapshot(eng.Now()),
		Set:      set,
	}, nil
}

func pingPayload(r int) []byte { return stamp(0xA0, r) }
func pongPayload(r int) []byte { return stamp(0xB0, r) }

// stamp builds the 8-byte round marker: a leg tag, the round number, and a
// fixed sentinel tail so corruption anywhere in the payload is caught.
func stamp(tag byte, r int) []byte {
	return []byte{tag, byte(r), byte(r >> 8), 0x5A, 0xC3, 0x3C, 0xA5, tag ^ 0xFF}
}

func checkSlot(sc *tcanet.SubCluster, node int, buf pcie.Addr, r int, want []byte) error {
	got, err := sc.Node(node).ReadLocal(buf+pcie.Addr(8*r), 8)
	if err != nil {
		return err
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("bench: node %d round %d payload byte %d = %#x, want %#x (corrupted across failover)",
				node, r, i, got[i], want[i])
		}
	}
	return nil
}

// ExtDegradedRing compares one-way PIO latency on a healthy ring against
// the same ring degraded to a line by one cut E/W cable — the price of the
// §V failover mode. The cut is the very cable the 1-hop path 0→1 uses, so
// the degraded path is the worst case: the full (n−1)-hop detour the
// reroute programs. Extension experiment.
func ExtDegradedRing(prm tcanet.Params) *Table {
	t := &Table{
		ID:      "ExtDegradedRing",
		Title:   "One-way PIO latency node0→node1: healthy ring vs 1-cut degraded line (µs) — extension",
		XLabel:  "nodes",
		Columns: []string{"healthy", "degraded", "ratio"},
	}
	for _, n := range []int{4, 8, 16} {
		healthy := MeasurePIOLatency(prm, n, 0, 1)
		degraded := measureDegradedPIO(prm, n, 0, 1, 0)
		t.AddRow(fmt.Sprintf("%d", n),
			US(healthy.Microseconds()), US(degraded.Microseconds()),
			fmt.Sprintf("%.2fx", degraded.Microseconds()/healthy.Microseconds()))
	}
	t.AddNote("cutting cable 0→1 turns the 1-hop eastward path into an (n-1)-hop westward detour")
	t.AddNote("the fabric stays live throughout — §V: a dead cable degrades the ring, it does not partition the hosts")
	return t
}

// measureDegradedPIO is MeasurePIOLatency on a ring whose routes were
// reprogrammed to avoid the cut eastward cable.
func measureDegradedPIO(prm tcanet.Params, n, src, dst, cut int) units.Duration {
	eng := sim.NewEngine()
	sc, err := tcanet.BuildRing(eng, n, prm)
	if err != nil {
		panic(err)
	}
	if err := sc.RerouteAvoidingCut(cut); err != nil {
		panic(err)
	}
	buf, err := sc.Node(dst).AllocDMABuffer(8)
	if err != nil {
		panic(err)
	}
	g, err := sc.GlobalHostAddr(dst, buf)
	if err != nil {
		panic(err)
	}
	var seen sim.Time
	sc.Node(dst).Poll(pcie.Range{Base: buf, Size: 8}, func(now sim.Time) { seen = now })
	sc.Node(src).Store(g, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	eng.Run()
	if seen == 0 {
		panic("bench: degraded-ring PIO write never observed")
	}
	return seen.Elapsed()
}

// CheckDegradedRing verifies the degraded mode works and costs what the
// detour geometry predicts: strictly slower than healthy, increasingly so
// as the ring grows.
func CheckDegradedRing(t *Table) error {
	prev := 0.0
	for _, r := range t.Rows {
		h := t.mustVal(r.X, "healthy")
		d := t.mustVal(r.X, "degraded")
		if d <= h {
			return fmt.Errorf("ExtDegradedRing: degraded %.3f µs not above healthy %.3f µs at n=%s", d, h, r.X)
		}
		if ratio := d / h; ratio <= prev {
			return fmt.Errorf("ExtDegradedRing: detour penalty %.2fx at n=%s did not grow with ring size", ratio, r.X)
		} else {
			prev = ratio
		}
	}
	return nil
}
