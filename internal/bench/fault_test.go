package bench

import (
	"strings"
	"testing"

	"tca/internal/core"
	"tca/internal/fault"
	"tca/internal/obsv"
	"tca/internal/peach2"
	"tca/internal/sim"
	"tca/internal/tcanet"
)

// TestFaultPingPongLiveFailover is the acceptance scenario: ping-pong over
// a ring with one E/W cable cut mid-run completes every round with correct
// payloads via the rerouted path, and the injector's counters prove the
// cut, the replays, and the failover actually happened.
func TestFaultPingPongLiveFailover(t *testing.T) {
	res, err := TracePingPongFault(tcanet.DefaultParams, 4, 0, 2, 10, "linkdown:1e:12us", 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name string
		min  uint64
	}{
		{"fault.link_down", 1},
		{"fault.replays", 1},
		{"fault.failovers", 1},
	} {
		v, ok := res.Snapshot.Counter(c.name, "injector")
		if !ok {
			t.Fatalf("counter %s not in snapshot", c.name)
		}
		if v < c.min {
			t.Errorf("%s = %d, want >= %d", c.name, v, c.min)
		}
	}
	if len(res.Spans) != 20 {
		t.Errorf("spans = %d, want 20 (10 pings + 10 pongs)", len(res.Spans))
	}
	// At least one traced TLP was parked at the dead link and re-injected
	// by the failover — visible as link-down + failover stages on a span.
	parked, failedOver := false, false
	for _, sp := range res.Spans {
		for _, ev := range sp.Events {
			if ev.Stage == obsv.StageLinkDown {
				parked = true
			}
			if ev.Stage == obsv.StageFailover {
				failedOver = true
			}
		}
	}
	if !parked || !failedOver {
		t.Errorf("no span shows the park/re-inject path (parked=%v failedOver=%v)", parked, failedOver)
	}
}

// faultedLoopbackChain runs one descriptor chain on a 2-node ring whose
// node-0 chip sees the given fault profile, and returns the chain's
// outcome.
func faultedChain(t *testing.T, prof fault.Profile, descs []peach2.Descriptor) (*core.Comm, *fault.Injector, sim.Time) {
	t.Helper()
	eng := sim.NewEngine()
	sc, err := tcanet.BuildRing(eng, 2, tcanet.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(prof)
	for i := 0; i < sc.Nodes(); i++ {
		sc.Chip(i).AttachFaults(inj)
		sc.Node(i).AttachFaults(inj)
	}
	comm, err := core.NewComm(sc)
	if err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time
	if err := comm.StartChain(0, descs, func(now sim.Time) { doneAt = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	return comm, inj, doneAt
}

// TestLostCompletionAbortsChain: with every DRAM read completion lost, the
// DMAC's completion timeout retries its budget and then surfaces a chain
// error through the driver instead of hanging the simulation forever.
func TestLostCompletionAbortsChain(t *testing.T) {
	descs := []peach2.Descriptor{{Kind: peach2.DescRead, Len: 256, Src: 0x1000, Dst: 0}}
	comm, inj, doneAt := faultedChain(t, fault.Profile{Seed: 1, LoseCpl: 1}, descs)
	if doneAt == 0 {
		t.Fatal("completion interrupt never fired — chain hung on the lost completion")
	}
	err := comm.ChainError(0)
	if err == nil {
		t.Fatal("chain completed cleanly despite every completion being lost")
	}
	if !strings.Contains(err.Error(), "no completion") {
		t.Errorf("chain error %q does not name the lost completion", err)
	}
	c := inj.Counts()
	if c.LostCompletions == 0 {
		t.Error("no completions counted as lost")
	}
	if c.ReadRetries != uint64(peach2.DefaultCplRetries) {
		t.Errorf("read retries = %d, want the full budget %d", c.ReadRetries, peach2.DefaultCplRetries)
	}
	if c.ChainErrors != 1 {
		t.Errorf("chain errors = %d, want 1", c.ChainErrors)
	}
}

// TestLostCompletionRetryRecovers: when only some completions are lost,
// the retry path recovers and the chain finishes cleanly.
func TestLostCompletionRetryRecovers(t *testing.T) {
	descs := []peach2.Descriptor{
		{Kind: peach2.DescRead, Len: 256, Src: 0x1000, Dst: 0},
		{Kind: peach2.DescRead, Len: 256, Src: 0x2000, Dst: 256},
		{Kind: peach2.DescRead, Len: 256, Src: 0x3000, Dst: 512},
		{Kind: peach2.DescRead, Len: 256, Src: 0x4000, Dst: 768},
	}
	comm, inj, doneAt := faultedChain(t, fault.Profile{Seed: 4, LoseCpl: 0.5}, descs)
	if doneAt == 0 {
		t.Fatal("chain never completed")
	}
	if err := comm.ChainError(0); err != nil {
		t.Fatalf("chain aborted: %v (seed 4 at 50%% loss should recover within %d retries)", err, peach2.DefaultCplRetries)
	}
	c := inj.Counts()
	if c.LostCompletions == 0 || c.ReadRetries == 0 {
		t.Errorf("loss/retry path not exercised: lost=%d retries=%d", c.LostCompletions, c.ReadRetries)
	}
	if c.ChainErrors != 0 {
		t.Errorf("chain errors = %d, want 0", c.ChainErrors)
	}
}

// TestStuckDescriptorTripsWatchdog: a descriptor that never generates its
// TLPs must not wedge the DMAC — the chain watchdog aborts and the IRQ
// still reaches the driver.
func TestStuckDescriptorTripsWatchdog(t *testing.T) {
	descs := []peach2.Descriptor{
		{Kind: peach2.DescWrite, Len: 64, Src: 0, Dst: 0x100000},
		{Kind: peach2.DescWrite, Len: 64, Src: 64, Dst: 0x100100},
	}
	eng := sim.NewEngine()
	sc, err := tcanet.BuildRing(eng, 2, tcanet.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(fault.Profile{Seed: 1, Stuck: true, StuckIndex: 1})
	sc.Chip(0).AttachFaults(inj)
	comm, err := core.NewComm(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Chip(0).InternalMemory().Write(0, make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	buf, err := sc.Node(1).AllocDMABuffer(4096)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sc.GlobalHostAddr(1, buf)
	if err != nil {
		t.Fatal(err)
	}
	descs[0].Dst = uint64(g)
	descs[1].Dst = uint64(g) + 2048
	var doneAt sim.Time
	if err := comm.StartChain(0, descs, func(now sim.Time) { doneAt = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if doneAt == 0 {
		t.Fatal("watchdog never aborted the stuck chain")
	}
	if err := comm.ChainError(0); err == nil {
		t.Fatal("stuck chain reported clean completion")
	}
	c := inj.Counts()
	if c.StuckDescs != 1 {
		t.Errorf("stuck descriptors = %d, want 1", c.StuckDescs)
	}
	if c.ChainErrors != 1 {
		t.Errorf("chain errors = %d, want 1", c.ChainErrors)
	}
	if doneAt.Elapsed() < peach2.DefaultChainTimeout {
		t.Errorf("abort at %v, before the %v watchdog", doneAt, peach2.DefaultChainTimeout)
	}
}

// TestDegradedRingTable runs the extension experiment and its shape check.
func TestDegradedRingTable(t *testing.T) {
	tbl := ExtDegradedRing(tcanet.DefaultParams)
	if err := CheckDegradedRing(tbl); err != nil {
		t.Fatal(err)
	}
}
