package bench

import (
	"testing"

	"tca/internal/core"
	"tca/internal/tcanet"
	"tca/internal/units"
)

// The simulation is deterministic, so the calibrated headline numbers are
// exact. These golden values are the repository's contract with the paper;
// any model change that moves them must be deliberate (update DESIGN.md §4
// and EXPERIMENTS.md alongside this file).
func TestGoldenCalibration(t *testing.T) {
	prm := tcanet.DefaultParams

	// Fig. 7 anchor: 255×4 KiB chained write (paper: 3.3 GB/s).
	if got := MeasureChain(prm, DirWrite, TargetCPU, false, 4096, 255); GB(got.GBps()) != "3.322" {
		t.Errorf("chained-write peak = %s GB/s, golden 3.322", GB(got.GBps()))
	}
	// Fig. 7 anchor: GPU read ceiling (paper: ~830 MB/s).
	if got := MeasureChain(prm, DirRead, TargetGPU, false, 4096, 255); GB(got.GBps()) != "0.828" {
		t.Errorf("GPU-read ceiling = %s GB/s, golden 0.828", GB(got.GBps()))
	}
	// Fig. 8 anchor: single 4 KiB descriptor.
	if got := MeasureChain(prm, DirWrite, TargetCPU, false, 4096, 1); GB(got.GBps()) != "1.233" {
		t.Errorf("single-DMA 4KiB = %s GB/s, golden 1.233", GB(got.GBps()))
	}
	// Fig. 9 anchor: 4-request burst (paper: ≈70% of max).
	if got := MeasureChain(prm, DirWrite, TargetCPU, false, 4096, 4); GB(got.GBps()) != "2.341" {
		t.Errorf("4-request burst = %s GB/s, golden 2.341", GB(got.GBps()))
	}
	// §IV-B1 anchor: loopback PIO (paper: 782 ns).
	if got := MeasureLoopbackPIO(prm); got != 782556*units.Picosecond {
		t.Errorf("loopback PIO = %d ps, golden 782556 ps (782.6 ns; paper 782 ns)", int64(got))
	}
	// Baseline anchor: 8-byte GPU-to-GPU, pipelined TCA vs conventional.
	if got := MeasureTCAGPU(prm, core.Pipelined, 8); US(got.Microseconds()) != "3.237" {
		t.Errorf("TCA 8B GPU put = %s µs, golden 3.237", US(got.Microseconds()))
	}
	if got := MeasureConventionalGPU(prm, 8); US(got.Microseconds()) != "15.255" {
		t.Errorf("conventional 8B GPU-GPU = %s µs, golden 15.255", US(got.Microseconds()))
	}
}

// TestGoldenTheory locks the closed-form values.
func TestGoldenTheory(t *testing.T) {
	tab := TheoreticalPeak()
	if v, _ := tab.Value("raw bandwidth", "value"); false {
		_ = v
	}
	// The formula lines are strings; anchor via the pcie constants used
	// everywhere else.
	if got := tcanet.DefaultParams.Chip.LinkConfig.EffectiveBandwidth(256).GBps(); GB(got) != "3.657" {
		t.Errorf("effective peak = %s, golden 3.657", GB(got))
	}
	if got := tcanet.DefaultParams.Chip.LinkConfig.RawBandwidth().GBps(); GB(got) != "4.000" {
		t.Errorf("raw = %s, golden 4.000", GB(got))
	}
}
