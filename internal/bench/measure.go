package bench

import (
	"tca/internal/core"
	"tca/internal/pcie"
	"tca/internal/sim"
	"tca/internal/tcanet"
	"tca/internal/units"
)

// MeasureChain runs one chained-DMA measurement on a fresh sub-cluster:
// count descriptors of size bytes, against the CPU or a GPU, locally or on
// the adjacent node, returning the bandwidth the paper's methodology
// reports (driver activation through completion interrupt).
func MeasureChain(prm tcanet.Params, dir Dir, target Target, remote bool, size units.ByteSize, count int) units.Bandwidth {
	r := newRig(2, prm)
	return r.measureChain(dir, target, remote, size, count)
}

// MeasureLoopbackPIO runs the §IV-B1 two-board loopback once and returns
// the store-to-poll latency (the paper's 782 ns).
func MeasureLoopbackPIO(prm tcanet.Params) units.Duration {
	eng := sim.NewEngine()
	lb, err := tcanet.BuildLoopback(eng, prm)
	if err != nil {
		panic(err)
	}
	flag, _ := lb.Node.AllocDMABuffer(64)
	dst := lb.Plan.HostBlock(0).Base + pcie.Addr(flag)
	var seen sim.Time
	lb.Node.Poll(pcie.Range{Base: flag, Size: 4}, func(now sim.Time) { seen = now })
	lb.Node.Store(dst, []byte{1, 2, 3, 4})
	eng.Run()
	if seen == 0 {
		panic("bench: loopback write never observed")
	}
	return seen.Elapsed()
}

// MeasureTCAGPU times one cross-node GPU-to-GPU MemcpyPeer in the given DMA
// mode.
func MeasureTCAGPU(prm tcanet.Params, mode core.DMAMode, size units.ByteSize) units.Duration {
	return measureTCAGPUPut(prm, mode, size)
}

// MeasureConventionalGPU times the same transfer through the three-copy
// InfiniBand/MPI path.
func MeasureConventionalGPU(prm tcanet.Params, size units.ByteSize) units.Duration {
	return measureConventional(prm, size)
}

// MeasureIBStream measures the IB fabric's streamed large-message
// bandwidth (eight back-to-back 1 MiB MPI sends).
func MeasureIBStream(prm tcanet.Params) units.Bandwidth {
	eng := sim.NewEngine()
	p := newIBPair(eng, prm)
	const chunk = units.MiB
	const n = 8
	start := eng.Now()
	var end sim.Time
	for i := 0; i < n; i++ {
		if err := p.fabric.MPISend(0, 1, p.src, p.dst, chunk, func(now sim.Time) { end = now }); err != nil {
			panic(err)
		}
	}
	eng.Run()
	return units.Rate(n*chunk, end.Sub(start))
}
