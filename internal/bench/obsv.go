package bench

import (
	"fmt"

	"tca/internal/core"
	"tca/internal/obsv"
	"tca/internal/pcie"
	"tca/internal/peach2"
	"tca/internal/sim"
	"tca/internal/stats"
	"tca/internal/tcanet"
	"tca/internal/units"
)

// spanCap bounds the trace scenarios' event retention; the largest scenario
// (a 255-descriptor chain) records well under this.
const spanCap = 8192

// Span is one traced transaction: its events, the reconstructed per-hop
// breakdown, and the hop total (== last event − first event).
type Span struct {
	Txn    uint64
	Events []obsv.Event
	Hops   []obsv.Hop
	Total  units.Duration
}

func newSpan(rec *obsv.Recorder, txn uint64) Span {
	events := rec.TxnEvents(txn)
	hops := obsv.Breakdown(events)
	return Span{Txn: txn, Events: events, Hops: hops, Total: obsv.TotalLatency(hops)}
}

// TraceResult is one observability scenario's outcome: the traced spans,
// the scenario's independently measured end-to-end latency, and the full
// metrics snapshot at completion.
type TraceResult struct {
	Scenario string
	Spans    []Span
	// EndToEnd is the scenario's own latency measurement (store-to-poll or
	// doorbell-to-completion), taken from the simulation clock without
	// consulting the spans — so a Span.Total that matches it certifies the
	// breakdown's self-consistency.
	EndToEnd units.Duration
	Snapshot *obsv.Snapshot
	Set      *obsv.Set
}

// instrumentedRing builds an n-node ring with a fresh observability set
// attached.
func instrumentedRing(n int, prm tcanet.Params) (*sim.Engine, *tcanet.SubCluster, *obsv.Set) {
	eng := sim.NewEngine()
	sc, err := tcanet.BuildRing(eng, n, prm)
	if err != nil {
		panic(err)
	}
	set := obsv.NewSet(spanCap)
	sc.Instrument(set)
	return eng, sc, set
}

// flagTarget allocates an 8-byte flag in dst's host memory and returns its
// local bus address and global address.
func flagTarget(sc *tcanet.SubCluster, dst int) (pcie.Addr, pcie.Addr) {
	buf, err := sc.Node(dst).AllocDMABuffer(8)
	if err != nil {
		panic(err)
	}
	g, err := sc.GlobalHostAddr(dst, buf)
	if err != nil {
		panic(err)
	}
	return buf, g
}

// MeasurePIOLatency measures the one-way PIO store-to-poll latency from
// node src to node dst on a fresh UNinstrumented n-node ring — the
// reference number the traced scenarios must reproduce exactly.
func MeasurePIOLatency(prm tcanet.Params, n, src, dst int) units.Duration {
	eng := sim.NewEngine()
	sc, err := tcanet.BuildRing(eng, n, prm)
	if err != nil {
		panic(err)
	}
	buf, g := flagTarget(sc, dst)
	var seen sim.Time
	sc.Node(dst).Poll(pcie.Range{Base: buf, Size: 8}, func(now sim.Time) { seen = now })
	sc.Node(src).Store(g, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	eng.Run()
	if seen == 0 {
		panic("bench: PIO write never observed")
	}
	return seen.Elapsed()
}

// TraceForward runs one traced PIO store node src → node dst across an
// n-node ring and returns its hop breakdown plus the metrics snapshot —
// the "ring forward" inspection scenario.
func TraceForward(prm tcanet.Params, n, src, dst int) *TraceResult {
	eng, sc, set := instrumentedRing(n, prm)
	buf, g := flagTarget(sc, dst)
	var seen sim.Time
	sc.Node(dst).Poll(pcie.Range{Base: buf, Size: 8}, func(now sim.Time) { seen = now })
	txn := sc.Node(src).StoreTxn(g, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	eng.Run()
	if seen == 0 {
		panic("bench: traced PIO write never observed")
	}
	return &TraceResult{
		Scenario: fmt.Sprintf("forward node%d->node%d (%d-node ring)", src, dst, n),
		Spans:    []Span{newSpan(set.Recorder(), txn)},
		EndToEnd: seen.Elapsed(),
		Snapshot: set.Registry().Snapshot(eng.Now()),
		Set:      set,
	}
}

// TracePingPong runs the §IV-B1 ping-pong over an n-node ring: src stores a
// flag into dst's host memory; dst's poll loop answers with a store back.
// Both legs are traced; EndToEnd is the full round trip. The ping leg's hop
// sum equals the one-way MeasurePIOLatency for the same configuration.
func TracePingPong(prm tcanet.Params, n, src, dst int) *TraceResult {
	eng, sc, set := instrumentedRing(n, prm)
	dstBuf, dstG := flagTarget(sc, dst)
	srcBuf, srcG := flagTarget(sc, src)
	var pongTxn uint64
	var pongSeen sim.Time
	sc.Node(dst).Poll(pcie.Range{Base: dstBuf, Size: 8}, func(now sim.Time) {
		pongTxn = sc.Node(dst).StoreTxn(srcG, []byte{2, 0, 0, 0, 0, 0, 0, 0})
	})
	sc.Node(src).Poll(pcie.Range{Base: srcBuf, Size: 8}, func(now sim.Time) { pongSeen = now })
	pingTxn := sc.Node(src).StoreTxn(dstG, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	eng.Run()
	if pongSeen == 0 {
		panic("bench: pong never observed")
	}
	rec := set.Recorder()
	return &TraceResult{
		Scenario: fmt.Sprintf("ping-pong node%d<->node%d (%d-node ring)", src, dst, n),
		Spans:    []Span{newSpan(rec, pingTxn), newSpan(rec, pongTxn)},
		EndToEnd: pongSeen.Elapsed(),
		Snapshot: set.Registry().Snapshot(eng.Now()),
		Set:      set,
	}
}

// TraceDMA runs one traced block-stride DMA chain on a 2-node ring: count
// blocks of size bytes from node 0's internal memory into node 1's host
// memory at 2×size stride. The span covers doorbell → descriptor fetch →
// final issue → ring/link hops → flush ack → IRQ → driver completion.
func TraceDMA(prm tcanet.Params, size units.ByteSize, count int) *TraceResult {
	eng, sc, set := instrumentedRing(2, prm)
	comm, err := core.NewComm(sc)
	if err != nil {
		panic(err)
	}
	if err := sc.Chip(0).InternalMemory().Write(0, make([]byte, size)); err != nil {
		panic(err)
	}
	stride := 2 * uint64(size)
	buf, err := sc.Node(1).AllocDMABuffer(units.ByteSize(stride * uint64(count)))
	if err != nil {
		panic(err)
	}
	g, err := sc.GlobalHostAddr(1, buf)
	if err != nil {
		panic(err)
	}
	descs := make([]peach2.Descriptor, 0, count)
	for i := 0; i < count; i++ {
		descs = append(descs, peach2.Descriptor{
			Kind: peach2.DescWrite,
			Len:  size,
			Src:  0,
			Dst:  uint64(g) + uint64(i)*stride,
		})
	}
	var doneAt sim.Time
	if err := comm.StartChain(0, descs, func(now sim.Time) { doneAt = now }); err != nil {
		panic(err)
	}
	eng.Run()
	if doneAt == 0 {
		panic("bench: DMA chain never completed")
	}
	txn := sc.Chip(0).DMAC().LastChainTxn()
	return &TraceResult{
		Scenario: fmt.Sprintf("block-stride DMA %d×%v (stride %v) node0->node1", count, size, units.ByteSize(stride)),
		Spans:    []Span{newSpan(set.Recorder(), txn)},
		EndToEnd: doneAt.Elapsed(),
		Snapshot: set.Registry().Snapshot(eng.Now()),
		Set:      set,
	}
}

// ExtLatencyDist sweeps one-way PIO latency from node 0 to every other
// node of the ring and summarizes the distribution — the tail-latency view
// (p95/p99) alongside the mean, per ring size. Extension experiment.
func ExtLatencyDist(prm tcanet.Params) *Table {
	t := &Table{
		ID:      "ExtLatencyDist",
		Title:   "One-way PIO latency distribution across ring destinations (µs) — extension",
		XLabel:  "nodes",
		Columns: []string{"min", "mean", "median", "p95", "p99", "p999", "max"},
	}
	for _, n := range []int{4, 8, 16} {
		var us []float64
		for dst := 1; dst < n; dst++ {
			us = append(us, MeasurePIOLatency(prm, n, 0, dst).Microseconds())
		}
		s := stats.Summarize(us)
		t.AddRow(fmt.Sprintf("%d", n),
			US(s.Min), US(s.Mean), US(s.Median), US(s.P95), US(s.P99), US(s.P999), US(s.Max))
	}
	t.AddNote("destinations sweep node 1..n-1 from node 0; shortest-arc routing caps the hop count at n/2")
	t.AddNote("the p95/p99 tail is the antipodal distance — ring diameter, not queueing, drives it here")
	return t
}

// MetricsReport runs a short representative workload — a 2-hop PIO
// forward and a chained DMA — on an instrumented 4-node ring and returns
// the metrics snapshot, for tcabench's -metrics mode.
func MetricsReport(prm tcanet.Params) *obsv.Snapshot {
	eng, sc, set := instrumentedRing(4, prm)
	comm, err := core.NewComm(sc)
	if err != nil {
		panic(err)
	}
	buf, g := flagTarget(sc, 2)
	var seen sim.Time
	sc.Node(2).Poll(pcie.Range{Base: buf, Size: 8}, func(now sim.Time) { seen = now })
	sc.Node(0).Store(g, []byte{1, 0, 0, 0, 0, 0, 0, 0})
	eng.Run()
	if seen == 0 {
		panic("bench: metrics PIO write never observed")
	}
	if err := sc.Chip(0).InternalMemory().Write(0, make([]byte, 4096)); err != nil {
		panic(err)
	}
	dmaBuf, err := sc.Node(1).AllocDMABuffer(16 * 4096)
	if err != nil {
		panic(err)
	}
	dg, err := sc.GlobalHostAddr(1, dmaBuf)
	if err != nil {
		panic(err)
	}
	var doneAt sim.Time
	if err := comm.StartChain(0, buildWriteChain(uint64(dg), 4096, 16), func(now sim.Time) { doneAt = now }); err != nil {
		panic(err)
	}
	eng.Run()
	if doneAt == 0 {
		panic("bench: metrics DMA chain never completed")
	}
	return set.Registry().Snapshot(eng.Now())
}
