package bench

import (
	"sync"
	"testing"

	"tca/internal/obsv"
	"tca/internal/tcanet"
)

// The traced forward's hop sum must equal the end-to-end latency the
// uninstrumented rig measures for the same configuration — the
// self-consistency acceptance criterion, for both a 1-hop and a 2-hop path.
func TestTraceForwardSelfConsistency(t *testing.T) {
	prm := tcanet.DefaultParams
	for _, tc := range []struct {
		name        string
		n, src, dst int
	}{
		{"1hop", 2, 0, 1},
		{"2hop", 4, 0, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := TraceForward(prm, tc.n, tc.src, tc.dst)
			if len(tr.Spans) != 1 {
				t.Fatalf("spans = %d, want 1", len(tr.Spans))
			}
			sp := tr.Spans[0]
			if len(sp.Events) < 4 {
				t.Fatalf("only %d events recorded: %v", len(sp.Events), sp.Events)
			}
			if got := sp.Events[0].Stage; got != obsv.StageCPUStore {
				t.Errorf("first stage = %v, want cpu-store", got)
			}
			if got := sp.Events[len(sp.Events)-1].Stage; got != obsv.StagePollSeen {
				t.Errorf("last stage = %v, want poll-seen", got)
			}
			if sp.Total != tr.EndToEnd {
				t.Errorf("hop sum %v != traced end-to-end %v", sp.Total, tr.EndToEnd)
			}
			ref := MeasurePIOLatency(prm, tc.n, tc.src, tc.dst)
			if tr.EndToEnd != ref {
				t.Errorf("instrumented latency %v != uninstrumented reference %v — observability perturbed timing", tr.EndToEnd, ref)
			}
		})
	}
}

// The two ping-pong legs' hop sums must add up to the round trip.
func TestTracePingPongLegsSumToRoundTrip(t *testing.T) {
	tr := TracePingPong(tcanet.DefaultParams, 4, 0, 2)
	if len(tr.Spans) != 2 {
		t.Fatalf("spans = %d, want 2 (ping+pong)", len(tr.Spans))
	}
	ping, pong := tr.Spans[0], tr.Spans[1]
	if sum := ping.Total + pong.Total; sum != tr.EndToEnd {
		t.Errorf("ping %v + pong %v = %v != round trip %v", ping.Total, pong.Total, sum, tr.EndToEnd)
	}
	if ping.Total != MeasurePIOLatency(tcanet.DefaultParams, 4, 0, 2) {
		t.Errorf("ping leg %v != one-way reference", ping.Total)
	}
}

// A traced DMA chain's span runs doorbell → chain-done and stays within the
// driver-observed completion time.
func TestTraceDMASpan(t *testing.T) {
	tr := TraceDMA(tcanet.DefaultParams, 4096, 8)
	if len(tr.Spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(tr.Spans))
	}
	sp := tr.Spans[0]
	if sp.Txn == 0 {
		t.Fatal("chain transaction ID is zero — DMAC did not begin a traced chain")
	}
	if got := sp.Events[0].Stage; got != obsv.StageDoorbell {
		t.Errorf("first stage = %v, want doorbell", got)
	}
	if got := sp.Events[len(sp.Events)-1].Stage; got != obsv.StageChainDone {
		t.Errorf("last stage = %v, want chain-done", got)
	}
	var sawFetch, sawIssue, sawAck, sawIRQ bool
	for _, ev := range sp.Events {
		switch ev.Stage {
		case obsv.StageDMAFetch:
			sawFetch = true
		case obsv.StageDMAIssue:
			sawIssue = true
		case obsv.StageFlushAck:
			sawAck = true
		case obsv.StageIRQ:
			sawIRQ = true
		}
	}
	if !sawFetch || !sawIssue || !sawAck || !sawIRQ {
		t.Errorf("missing stages (fetch=%v issue=%v ack=%v irq=%v): %v",
			sawFetch, sawIssue, sawAck, sawIRQ, sp.Events)
	}
	if sp.Total <= 0 || sp.Total > tr.EndToEnd {
		t.Errorf("span total %v outside (0, %v]", sp.Total, tr.EndToEnd)
	}
	// The chain histogram recorded exactly one observation.
	h, ok := tr.Snapshot.Histogram("dma_chain_latency", "peach2-0/dmac")
	if !ok || h.Count != 1 {
		t.Errorf("dma_chain_latency count = %+v ok=%v, want exactly 1", h, ok)
	}
}

// One store from node 0 to node 2 on a 4-node ring must touch exactly the
// east-route ports: chip0 N-in/E-out, chip1 W-in/E-out, chip2 W-in/N-out,
// and nothing on chip3 — the port-counter acceptance criterion.
func TestForwardPortCounters(t *testing.T) {
	tr := TraceForward(tcanet.DefaultParams, 4, 0, 2)
	snap := tr.Snapshot
	port := func(v string) obsv.Label { return obsv.Label{Key: "port", Value: v} }
	expect := map[string]map[string]uint64{
		"peach2-0": {"in:N": 1, "out:E": 1},
		"peach2-1": {"in:W": 1, "out:E": 1},
		"peach2-2": {"in:W": 1, "out:N": 1},
		"peach2-3": {},
	}
	for chip, want := range expect {
		for _, p := range []string{"N", "E", "W", "S"} {
			for _, dir := range []string{"in", "out"} {
				name := "port_tlps_" + dir
				got, ok := snap.Counter(name, chip, port(p))
				if !ok {
					t.Fatalf("%s %s{port=%s} not in snapshot", chip, name, p)
				}
				if got != want[dir+":"+p] {
					t.Errorf("%s %s{port=%s} = %d, want %d", chip, name, p, got, want[dir+":"+p])
				}
			}
		}
	}
}

// Metrics snapshots must be safe to take from another goroutine while
// RunParallel drives independent engines and a shared instrumented rig keeps
// registering and updating metrics — run under -race in CI.
func TestSnapshotDuringParallelRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel sweep is slow")
	}
	prm := tcanet.DefaultParams
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				tr := TraceForward(prm, 4, 0, 2)
				if snap := tr.Set.Registry().Snapshot(0); len(snap.Counters) == 0 {
					t.Error("empty snapshot from instrumented rig")
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		exps := []Experiment{
			mustFind(t, "LatencyPIO"),
			mustFind(t, "Fig9"),
		}
		RunParallel(prm, exps)
		close(stop)
	}()
	wg.Wait()
}

func mustFind(t *testing.T, id string) Experiment {
	t.Helper()
	e, ok := Find(id)
	if !ok {
		t.Fatalf("experiment %q not registered", id)
	}
	return e
}

// ExtLatencyDist's tails must be ordered and its p99 must equal the
// antipodal one-way latency (the distribution's max for a symmetric ring).
func TestExtLatencyDist(t *testing.T) {
	tab := ExtLatencyDist(tcanet.DefaultParams)
	for _, n := range []string{"4", "8", "16"} {
		p95 := tab.mustVal(n, "p95")
		p99 := tab.mustVal(n, "p99")
		max := tab.mustVal(n, "max")
		mean := tab.mustVal(n, "mean")
		if !(mean <= p95 && p95 <= p99 && p99 <= max) {
			t.Errorf("n=%s: tail ordering violated: mean=%v p95=%v p99=%v max=%v", n, mean, p95, p99, max)
		}
	}
}

// Disabled observability must cost nothing: every nil-receiver hook on the
// TLP forward path is allocation-free.
func TestDisabledObservabilityAllocs(t *testing.T) {
	var c *obsv.Counter
	var g *obsv.Gauge
	var h *obsv.Histogram
	var rec *obsv.Recorder
	var reg *obsv.Registry
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(64)
		g.Set(3)
		h.Observe(1000)
		rec.Record(obsv.Event{})
		if rec.NextTxn() != 0 {
			t.Fatal("nil recorder allocated a txn")
		}
		if reg.Counter("x", "y") != nil {
			t.Fatal("nil registry returned a counter")
		}
	}); n != 0 {
		t.Errorf("disabled-path hooks allocate %.1f per run, want 0", n)
	}
}

// MetricsReport must produce a populated snapshot.
func TestMetricsReport(t *testing.T) {
	snap := MetricsReport(tcanet.DefaultParams)
	if v, ok := snap.Counter("dma_chains", "peach2-0/dmac"); !ok || v != 1 {
		t.Errorf("dma_chains = %d ok=%v, want 1", v, ok)
	}
	if v, ok := snap.Counter("driver_chains", "node0/driver"); !ok || v != 1 {
		t.Errorf("driver_chains = %d ok=%v, want 1", v, ok)
	}
	if v, ok := snap.Counter("port_tlps_in", "peach2-1", obsv.Label{Key: "port", Value: "W"}); !ok || v == 0 {
		t.Errorf("peach2-1 W in = %d ok=%v, want nonzero", v, ok)
	}
}
