package bench

import (
	"runtime"
	"sync"

	"tca/internal/tcanet"
)

// RunParallel executes experiments concurrently, one goroutine per
// experiment up to GOMAXPROCS workers. Every experiment builds its own
// simulation engine, so runs share nothing and the results are identical
// to serial execution — the discrete-event engines are deterministic and
// independent.
func RunParallel(prm tcanet.Params, exps []Experiment) []*Table {
	results := make([]*Table, len(exps))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(exps) {
		workers = len(exps)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = exps[i].Run(prm)
			}
		}()
	}
	for i := range exps {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}
