package bench

import (
	"encoding/json"
	"math"
	"os"
	"strconv"
	"testing"

	"tca/internal/tcanet"
)

// TestPerfBaselineRegression re-runs every engine-performance scenario and
// gates it against the committed BENCH_PERF.json: event counts and queue
// high-water marks must reproduce exactly (they are deterministic),
// allocation rates within ±25%, and throughput against a generous slowdown
// tripwire (default 4×, overridable with TCA_PERF_SLOWDOWN_MAX for noisy
// machines). Regenerate the file with `tcabench -perf-json BENCH_PERF.json`
// when an engine change is deliberate.
func TestPerfBaselineRegression(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_PERF.json")
	if err != nil {
		t.Fatalf("committed perf baseline missing: %v", err)
	}
	var want PerfBaseline
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("BENCH_PERF.json: %v", err)
	}
	if want.Schema != PerfBaselineSchema {
		t.Fatalf("baseline schema %q, this tree speaks %q", want.Schema, PerfBaselineSchema)
	}
	slowdownMax := 4.0
	if raceEnabled {
		// The race detector costs ~10-20x; only the host-speed tripwire
		// is affected, so disarm just that gate.
		t.Log("race-instrumented build: throughput tripwire disabled")
		slowdownMax = math.Inf(1)
	}
	if s := os.Getenv("TCA_PERF_SLOWDOWN_MAX"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v < 1 {
			t.Fatalf("TCA_PERF_SLOWDOWN_MAX=%q: want a float >= 1", s)
		}
		slowdownMax = v
	}
	got := CollectPerfBaseline(tcanet.DefaultParams)
	for _, d := range want.Compare(got, 0.25, slowdownMax) {
		t.Error(d)
	}
}
