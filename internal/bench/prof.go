package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"tca/internal/pcie"
	"tca/internal/prof"
	"tca/internal/sim"
	"tca/internal/tcanet"
)

// Profiled engine-performance scenarios. Each builds a fresh deterministic
// rig, optionally registers every component with a profiler, and measures
// the run with prof.Measure. With a nil profiler the engine runs completely
// uninstrumented — that configuration collects the committed baseline, so
// BENCH_PERF.json numbers carry no attribution overhead.

// PerfScenarioNames lists the profiled scenarios in run order.
var PerfScenarioNames = []string{"pingpong", "forward", "chain_dma"}

// perfRounds fixes the per-scenario repetition counts. They are large
// enough that per-run fixed costs (topology construction, first-event
// warmup) disappear from the events/sec figure, and small enough that the
// full suite stays under a second.
const (
	perfPingPongRounds = 200
	perfForwardStores  = 200
	perfChainDescs     = 64
)

// RunPerfScenario runs one named scenario and returns its run statistics.
// Panics on an unknown name (the set is fixed by PerfScenarioNames).
func RunPerfScenario(name string, prm tcanet.Params, p *prof.Profiler) prof.RunStats {
	switch name {
	case "pingpong":
		return PerfPingPong(prm, perfPingPongRounds, p)
	case "forward":
		return PerfForward(prm, perfForwardStores, p)
	case "chain_dma":
		return PerfChainDMA(prm, perfChainDescs, p)
	default:
		panic(fmt.Sprintf("bench: unknown perf scenario %q", name))
	}
}

// PerfPingPong drives rounds full round trips over a 2-node ring: node 0
// stores a flag into node 1's host memory, node 1's poll answers with a
// store back, and node 0's poll launches the next round. The poll loops
// themselves pace the run, so the event stream exercises the store, link,
// switch, chip-forward, and poll paths on every leg.
func PerfPingPong(prm tcanet.Params, rounds int, p *prof.Profiler) prof.RunStats {
	eng := sim.NewEngine()
	sc, err := tcanet.BuildRing(eng, 2, prm)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	sc.Profile(p)
	dstBuf, dstG := flagTarget(sc, 1)
	srcBuf, srcG := flagTarget(sc, 0)
	ping := []byte{1, 0, 0, 0, 0, 0, 0, 0}
	pong := []byte{2, 0, 0, 0, 0, 0, 0, 0}
	left := rounds
	sc.Node(1).Poll(pcie.Range{Base: dstBuf, Size: 8}, func(sim.Time) {
		sc.Node(1).Store(srcG, pong)
	})
	sc.Node(0).Poll(pcie.Range{Base: srcBuf, Size: 8}, func(sim.Time) {
		if left--; left > 0 {
			sc.Node(0).Store(dstG, ping)
		}
	})
	st := p.Measure("pingpong", eng, func() {
		sc.Node(0).Store(dstG, ping)
		eng.Run()
	})
	if left != 0 {
		panic(fmt.Sprintf("bench: pingpong stalled with %d rounds left", left))
	}
	return st
}

// PerfForward streams count sequential PIO stores from node 0 to node 4 of
// an 8-node ring; each store launches when the destination's poll observes
// the previous one, so every store pays the full multi-hop forwarding path.
func PerfForward(prm tcanet.Params, count int, p *prof.Profiler) prof.RunStats {
	eng := sim.NewEngine()
	sc, err := tcanet.BuildRing(eng, 8, prm)
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	sc.Profile(p)
	buf, g := flagTarget(sc, 4)
	flag := []byte{1, 0, 0, 0, 0, 0, 0, 0}
	left := count
	sc.Node(4).Poll(pcie.Range{Base: buf, Size: 8}, func(sim.Time) {
		if left--; left > 0 {
			sc.Node(0).Store(g, flag)
		}
	})
	st := p.Measure("forward", eng, func() {
		sc.Node(0).Store(g, flag)
		eng.Run()
	})
	if left != 0 {
		panic(fmt.Sprintf("bench: forward stalled with %d stores left", left))
	}
	return st
}

// PerfChainDMA runs one remote chained-DMA write (count descriptors of
// 4 KiB against the adjacent node's CPU memory) — the DMAC- and
// credit-heavy scenario, dominated by TLP issue and link drain events.
func PerfChainDMA(prm tcanet.Params, count int, p *prof.Profiler) prof.RunStats {
	r := newRig(2, prm)
	r.sc.Profile(p)
	return p.Measure("chain_dma", r.eng, func() {
		r.measureChain(DirWrite, TargetCPU, true, 4096, count)
	})
}

// PerfBaselineSchema versions the BENCH_PERF.json layout.
const PerfBaselineSchema = "tca-perf-baseline/1"

// PerfFigure is one scenario's committed performance envelope. Events and
// QueueHighWater come from the deterministic simulation and must reproduce
// exactly; the remaining fields measure the host machine and are gated with
// generous tolerances (see Compare).
type PerfFigure struct {
	Events             uint64  `json:"events"`
	QueueHighWater     int     `json:"queue_high_water"`
	EventsPerSec       float64 `json:"events_per_sec"`
	AllocsPerEvent     float64 `json:"allocs_per_event"`
	AllocBytesPerEvent float64 `json:"alloc_bytes_per_event"`
	WallNS             int64   `json:"wall_ns"`
}

// PerfBaseline is the machine-readable engine-performance capture gated by
// the perf regression test, the analogue of BenchBaseline for host-side
// cost instead of simulated latency.
type PerfBaseline struct {
	Schema    string                `json:"schema"`
	Scenarios map[string]PerfFigure `json:"scenarios"`
}

// figureOf reduces run statistics to the committed envelope.
func figureOf(st prof.RunStats) PerfFigure {
	round := func(v float64) float64 { return float64(int64(v*1000+0.5)) / 1000 }
	return PerfFigure{
		Events:             st.Events,
		QueueHighWater:     st.QueueHighWater,
		EventsPerSec:       round(st.EventsPerSec),
		AllocsPerEvent:     round(st.AllocsPerEvent),
		AllocBytesPerEvent: round(st.AllocBytesPerEvent),
		WallNS:             st.WallNS,
	}
}

// CollectPerfBaseline measures every scenario with a nil profiler (no
// attribution overhead) and returns the baseline to commit. Each scenario
// runs once unmeasured to warm lazy runtime state, then three measured
// times keeping the best host-side figures: runtime/metrics counters are
// process-wide, so a single run can absorb background-GC allocations that
// have nothing to do with the engine. Taking the minimum makes the figure
// comparable between a fresh tcabench process and a warm test binary.
func CollectPerfBaseline(prm tcanet.Params) PerfBaseline {
	b := PerfBaseline{Schema: PerfBaselineSchema, Scenarios: make(map[string]PerfFigure, len(PerfScenarioNames))}
	for _, name := range PerfScenarioNames {
		RunPerfScenario(name, prm, nil)
		fig := figureOf(RunPerfScenario(name, prm, nil))
		for i := 0; i < 2; i++ {
			again := figureOf(RunPerfScenario(name, prm, nil))
			if again.Events != fig.Events || again.QueueHighWater != fig.QueueHighWater {
				panic(fmt.Sprintf("bench: %s is nondeterministic: %+v vs %+v", name, fig, again))
			}
			if again.AllocsPerEvent < fig.AllocsPerEvent {
				fig.AllocsPerEvent = again.AllocsPerEvent
			}
			if again.AllocBytesPerEvent < fig.AllocBytesPerEvent {
				fig.AllocBytesPerEvent = again.AllocBytesPerEvent
			}
			if again.EventsPerSec > fig.EventsPerSec {
				fig.EventsPerSec = again.EventsPerSec
				fig.WallNS = again.WallNS
			}
		}
		b.Scenarios[name] = fig
	}
	return b
}

// WriteJSON emits the baseline as indented JSON.
func (b PerfBaseline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Compare checks got against the committed baseline and returns one error
// line per regression. The fields split into three gates:
//
//   - Events and QueueHighWater are products of the deterministic event
//     stream: any difference at all is a model change and must re-baseline.
//   - AllocsPerEvent and AllocBytesPerEvent are host-side but stable across
//     machines for the same binary; they drift only when code changes, so
//     they get a tolerance (allocTol, a fraction, e.g. 0.25 for ±25%).
//   - EventsPerSec varies with the machine, so it only fails when the run
//     is slower than baseline by more than slowdownMax (e.g. 4 means "fail
//     below a quarter of baseline throughput") — a tripwire for
//     catastrophic regressions, not a benchmark.
func (b PerfBaseline) Compare(got PerfBaseline, allocTol, slowdownMax float64) []string {
	var drifts []string
	for _, name := range PerfScenarioNames {
		want, okW := b.Scenarios[name]
		have, okH := got.Scenarios[name]
		if !okW || !okH {
			drifts = append(drifts, fmt.Sprintf("%s: missing from %s", name, map[bool]string{true: "measurement", false: "baseline"}[okW]))
			continue
		}
		if want.Events != have.Events {
			drifts = append(drifts, fmt.Sprintf("%s: events baseline %d, got %d (deterministic — re-baseline if intended)", name, want.Events, have.Events))
		}
		if want.QueueHighWater != have.QueueHighWater {
			drifts = append(drifts, fmt.Sprintf("%s: queue_high_water baseline %d, got %d (deterministic — re-baseline if intended)", name, want.QueueHighWater, have.QueueHighWater))
		}
		checkAlloc := func(field string, w, h float64) {
			// Near-zero baselines gate absolutely: a baseline of 0.01
			// allocs/event must not admit 10× via relative slack.
			const absFloor = 0.05
			if w < absFloor {
				if h > w+absFloor {
					drifts = append(drifts, fmt.Sprintf("%s: %s baseline %g, got %g", name, field, w, h))
				}
				return
			}
			if rel := (h - w) / w; rel > allocTol {
				drifts = append(drifts, fmt.Sprintf("%s: %s baseline %g, got %g (%+.1f%%)", name, field, w, h, 100*rel))
			}
		}
		checkAlloc("allocs_per_event", want.AllocsPerEvent, have.AllocsPerEvent)
		checkAlloc("alloc_bytes_per_event", want.AllocBytesPerEvent, have.AllocBytesPerEvent)
		if want.EventsPerSec > 0 && have.EventsPerSec < want.EventsPerSec/slowdownMax {
			drifts = append(drifts, fmt.Sprintf("%s: events/sec %.0f is over %gx slower than baseline %.0f", name, have.EventsPerSec, slowdownMax, want.EventsPerSec))
		}
	}
	return drifts
}
