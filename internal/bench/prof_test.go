package bench

import (
	"bytes"
	"strings"
	"testing"

	"tca/internal/prof"
	"tca/internal/tcanet"
)

// TestPerfScenariosDeterministicUnderProfiling runs every scenario twice —
// bare engine and fully profiled — and requires identical event counts and
// queue high-water marks: attribution must observe the run, never steer it.
func TestPerfScenariosDeterministicUnderProfiling(t *testing.T) {
	for _, name := range PerfScenarioNames {
		bare := RunPerfScenario(name, tcanet.DefaultParams, nil)
		p := prof.New(prof.Options{SampleEvery: 2})
		profiled := RunPerfScenario(name, tcanet.DefaultParams, p)
		if bare.Events != profiled.Events {
			t.Errorf("%s: events %d bare vs %d profiled", name, bare.Events, profiled.Events)
		}
		if bare.QueueHighWater != profiled.QueueHighWater {
			t.Errorf("%s: queue high-water %d bare vs %d profiled", name, bare.QueueHighWater, profiled.QueueHighWater)
		}
		if bare.Events == 0 {
			t.Errorf("%s: scenario executed no events", name)
		}
	}
}

// TestPerfScenarioAttributionCoversRun checks that a profiled ping-pong
// attributes nearly every event to a named component — the rig's Profile
// wiring must reach nodes, switches, chips, DMACs, and links.
func TestPerfScenarioAttributionCoversRun(t *testing.T) {
	p := prof.New(prof.Options{SampleEvery: 1})
	st := RunPerfScenario("pingpong", tcanet.DefaultParams, p)
	var tagged, untagged uint64
	names := map[string]bool{}
	for _, c := range p.Components() {
		if c.Name == "(untagged)" {
			untagged += c.Events
			continue
		}
		tagged += c.Events
		names[c.Name] = true
	}
	if tagged+untagged != st.Events {
		t.Fatalf("attribution lost events: %d+%d != %d", tagged, untagged, st.Events)
	}
	if untagged > st.Events/10 {
		t.Errorf("%d of %d events untagged — component wiring has holes", untagged, st.Events)
	}
	for _, want := range []string{"node0", "node1", "peach2-0", "link:peach2-0.E"} {
		if !names[want] {
			t.Errorf("no events attributed to %s (have %v)", want, names)
		}
	}
	// The DMAC only earns events on the DMA-heavy scenario.
	p2 := prof.New(prof.Options{})
	RunPerfScenario("chain_dma", tcanet.DefaultParams, p2)
	var dmacEvents uint64
	for _, c := range p2.Components() {
		if c.Name == "peach2-0/dmac" {
			dmacEvents = c.Events
		}
	}
	if dmacEvents == 0 {
		t.Error("chain_dma attributed no events to peach2-0/dmac")
	}
	var buf bytes.Buffer
	p.WriteTable(&buf, 5)
	if !strings.Contains(buf.String(), "events") {
		t.Errorf("WriteTable produced no header:\n%s", buf.String())
	}
}

// TestCollectPerfBaselineSelfConsistent collects the baseline twice and
// requires the deterministic fields to agree with themselves and the
// comparison to pass at any tolerance.
func TestCollectPerfBaselineSelfConsistent(t *testing.T) {
	a := CollectPerfBaseline(tcanet.DefaultParams)
	b := CollectPerfBaseline(tcanet.DefaultParams)
	if a.Schema != PerfBaselineSchema || len(a.Scenarios) != len(PerfScenarioNames) {
		t.Fatalf("baseline shape: %+v", a)
	}
	for name, fa := range a.Scenarios {
		fb := b.Scenarios[name]
		if fa.Events != fb.Events || fa.QueueHighWater != fb.QueueHighWater {
			t.Errorf("%s: deterministic fields differ across runs: %+v vs %+v", name, fa, fb)
		}
	}
	if drifts := a.Compare(b, 10, 1000); len(drifts) != 0 {
		t.Errorf("self-comparison drifted: %v", drifts)
	}
}

// TestPerfCompareFlagsRegressions checks each gate fires on the drift it
// owns and stays quiet otherwise.
func TestPerfCompareFlagsRegressions(t *testing.T) {
	base := PerfBaseline{Schema: PerfBaselineSchema, Scenarios: map[string]PerfFigure{
		"pingpong":  {Events: 100, QueueHighWater: 8, EventsPerSec: 1e6, AllocsPerEvent: 1, AllocBytesPerEvent: 64, WallNS: 1000},
		"forward":   {Events: 50, QueueHighWater: 4, EventsPerSec: 1e6, AllocsPerEvent: 0, AllocBytesPerEvent: 0, WallNS: 1000},
		"chain_dma": {Events: 70, QueueHighWater: 6, EventsPerSec: 1e6, AllocsPerEvent: 1, AllocBytesPerEvent: 32, WallNS: 1000},
	}}
	clone := func() PerfBaseline {
		got := PerfBaseline{Schema: base.Schema, Scenarios: map[string]PerfFigure{}}
		for k, v := range base.Scenarios {
			got.Scenarios[k] = v
		}
		return got
	}
	if drifts := base.Compare(clone(), 0.25, 4); len(drifts) != 0 {
		t.Fatalf("identical baselines drifted: %v", drifts)
	}
	cases := []struct {
		name   string
		mutate func(*PerfFigure)
		expect string
	}{
		{"event count", func(f *PerfFigure) { f.Events++ }, "events"},
		{"queue depth", func(f *PerfFigure) { f.QueueHighWater++ }, "queue_high_water"},
		{"alloc growth", func(f *PerfFigure) { f.AllocsPerEvent = 2 }, "allocs_per_event"},
		{"zero-alloc loss", func(f *PerfFigure) { f.AllocBytesPerEvent = 1 }, "alloc_bytes_per_event"},
		{"throughput collapse", func(f *PerfFigure) { f.EventsPerSec = 1e4 }, "slower"},
	}
	for _, tc := range cases {
		got := clone()
		f := got.Scenarios["forward"]
		if tc.name == "alloc growth" {
			f = got.Scenarios["pingpong"]
			tc.mutate(&f)
			got.Scenarios["pingpong"] = f
		} else {
			tc.mutate(&f)
			got.Scenarios["forward"] = f
		}
		drifts := base.Compare(got, 0.25, 4)
		if len(drifts) != 1 || !strings.Contains(drifts[0], tc.expect) {
			t.Errorf("%s: drifts = %v, want one mentioning %q", tc.name, drifts, tc.expect)
		}
	}
	// Faster than baseline is never a regression.
	got := clone()
	f := got.Scenarios["forward"]
	f.EventsPerSec = 1e9
	got.Scenarios["forward"] = f
	if drifts := base.Compare(got, 0.25, 4); len(drifts) != 0 {
		t.Errorf("speedup flagged as drift: %v", drifts)
	}
}
