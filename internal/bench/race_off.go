//go:build !race

package bench

// raceEnabled is false in normal builds; see race_on.go.
const raceEnabled = false
