//go:build race

package bench

// raceEnabled marks a race-instrumented build. Race instrumentation slows
// execution an order of magnitude, so the perf gate's throughput tripwire
// is meaningless there; the deterministic and allocation gates still hold.
const raceEnabled = true
