package bench

import (
	"encoding/json"
	"os"
	"testing"

	"tca/internal/tcanet"
)

// TestBenchBaselineRegression re-measures every headline figure and fails
// on >2% drift from the committed BENCH_PR2.json. Regenerate the file with
// `tcabench -bench-json BENCH_PR2.json` when a model change is deliberate.
func TestBenchBaselineRegression(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_PR2.json")
	if err != nil {
		t.Fatalf("committed baseline missing: %v", err)
	}
	var want BenchBaseline
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("BENCH_PR2.json: %v", err)
	}
	if want.Schema != BenchBaselineSchema {
		t.Fatalf("baseline schema %q, this tree speaks %q", want.Schema, BenchBaselineSchema)
	}
	got := CollectBaseline(tcanet.DefaultParams)
	for _, d := range want.Compare(got, 0.02) {
		t.Error(d)
	}
}
