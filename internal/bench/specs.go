package bench

import (
	"fmt"

	"tca/internal/pcie"
	"tca/internal/units"
)

// TableI reproduces "Specifications of the HA-PACS base cluster".
func TableI() *Table {
	t := &Table{
		ID:      "TableI",
		Title:   "Specifications of the HA-PACS base cluster",
		XLabel:  "item",
		Columns: []string{"value"},
	}
	rows := [][2]string{
		{"CPU", "Intel Xeon-E5 2670 2.6 GHz × two sockets (eight cores + 20-Mbyte cache) / socket"},
		{"Memory", "DDR3 1600 MHz × 4 ch, 128 Gbytes"},
		{"Peak performance (CPU)", "332.8 GFlops"},
		{"GPU", "NVIDIA Tesla M2090 1.3 GHz × 4"},
		{"GPU memory", "GDDR5 6 Gbytes / GPU"},
		{"Peak performance (GPU)", "2660 GFlops"},
		{"InfiniBand", "Mellanox Connect-X3 Dual-port QDR"},
		{"Number of nodes", "268"},
		{"Storage", "Lustre File System 504 Tbytes"},
		{"Interconnect", "InfiniBand QDR 288 ports switch × 2"},
		{"Total peak performance", "802 TFlops"},
		{"Number of racks", "26"},
		{"Maximum power consumption", "408 kW"},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1])
	}
	t.AddNote("operational February 2012; ranked 41st on the June 2012 Top500 at 1.04 GFlops/W")
	return t
}

// TableII reproduces "Test environment for preliminary performance
// evaluation".
func TableII() *Table {
	t := &Table{
		ID:      "TableII",
		Title:   "Test environment for the preliminary performance evaluation",
		XLabel:  "item",
		Columns: []string{"value"},
	}
	rows := [][2]string{
		{"CPU", "Xeon-E5 2670 2.6 GHz × 2"},
		{"Memory", "DDR3 1600 MHz × 4 ch, 128 Gbytes"},
		{"Motherboard", "(a) SuperMicro X9DRG-QF / (b) Intel S2600IP"},
		{"GPU", "NVIDIA K20 2496 cores, 705 MHz"},
		{"GPU memory", "GDDR5 2600 MHz, 5 Gbytes"},
		{"PEACH2 prototype board", "16 layers (main) + eight layers (sub)"},
		{"FPGA", "Altera Stratix IV GX 530/290, 1932 pin (EP4SGX{530,290}NF45C2N)"},
		{"PEACH2 logic", "version 20121112"},
		{"OS", "Linux, CentOS 6.3 (kernel 2.6.32-279)"},
		{"GPU driver", "NVIDIA-Linux-x86_64-304.{51,64}"},
		{"Programming environment", "CUDA 5.0"},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1])
	}
	t.AddNote("drivers: the PEACH2 driver (board control) and the P2P driver (GPUDirect RDMA pinning)")
	return t
}

// TheoreticalPeak reproduces the §IV-A peak-bandwidth arithmetic from the
// simulator's own PCIe constants.
func TheoreticalPeak() *Table {
	t := &Table{
		ID:      "TheoreticalPeak",
		Title:   "PCIe Gen2 x8 theoretical peak (the §IV-A formula)",
		XLabel:  "quantity",
		Columns: []string{"value"},
	}
	cfg := pcie.Gen2x8
	raw := cfg.RawBandwidth()
	eff := cfg.EffectiveBandwidth(pcie.DefaultMaxPayload)
	t.AddRow("signalling", fmt.Sprintf("%.1f GT/s × %d lanes, 8b/10b", cfg.Gen.TransferRate()/1e9, cfg.Lanes))
	t.AddRow("raw bandwidth", fmt.Sprintf("%.2f GB/s", raw.GBps()))
	t.AddRow("max payload", pcie.DefaultMaxPayload.String())
	t.AddRow("per-TLP overhead", fmt.Sprintf("%dB TL hdr + %dB seq + %dB LCRC + %dB framing = %dB",
		pcie.TLHeaderBytes, pcie.DLLSeqBytes, pcie.DLLLCRCBytes, pcie.PHYFrameBytes, pcie.TLPOverhead))
	t.AddRow("effective peak", fmt.Sprintf("%.2f GB/s = 4 GB/s × 256/(256+16+2+4+1+1)", eff.GBps()))
	t.AddNote("paper: 4 Gbytes/sec × 256/280 = 3.66 Gbytes/sec; measured chained write ≈ 93%% of it")
	return t
}

// FormatBandwidth is a tiny helper for tools printing a Bandwidth with the
// paper's unit style.
func FormatBandwidth(bw units.Bandwidth) string { return bw.String() }
