package bench

import (
	"fmt"
	"sort"

	"tca/internal/tcanet"
	"tca/internal/units"
)

// Parameter sweeps: sensitivity studies over the calibrated constants of
// DESIGN.md §4. Each sweep varies one knob and reports the observable the
// paper's evaluation would have seen, so a reader can judge how much of
// each result is architecture and how much is parameter choice.

// SweepCable varies the external-cable latency ("the length of the PCIe
// external cable is limited to several meters", §II-B): loopback PIO
// latency responds linearly; the chained-DMA bandwidth barely moves, since
// pipelining hides flight time.
func SweepCable(prm tcanet.Params) *Table {
	t := &Table{
		ID:      "SweepCable",
		Title:   "Cable latency sensitivity: PIO latency (µs) and remote 255×4KiB bandwidth (GB/s)",
		XLabel:  "cable",
		Columns: []string{"PIO loopback (µs)", "remote DMA BW (GB/s)"},
	}
	for _, cable := range []units.Duration{0, 90 * units.Nanosecond, 200 * units.Nanosecond, 500 * units.Nanosecond, units.Microsecond} {
		p := prm
		p.CableProp = cable
		lat := MeasureLoopbackPIO(p)
		bw := MeasureChain(p, DirWrite, TargetCPU, true, 4096, 255)
		t.AddRow(cable.String(), US(lat.Microseconds()), GB(bw.GBps()))
	}
	t.AddNote("latency pays the cable twice (two hops in the Fig. 10 loopback); bandwidth hides it behind pipelining")
	return t
}

// SweepIssue varies the DMAC's per-TLP issue interval — the FPGA pipeline
// bound behind the "93% of theoretical" measured peak (§IV-A1).
func SweepIssue(prm tcanet.Params) *Table {
	t := &Table{
		ID:      "SweepIssue",
		Title:   "DMAC issue interval vs chained-write peak (GB/s); wire limit 3.657",
		XLabel:  "issue interval",
		Columns: []string{"peak (GB/s)", "% of theoretical"},
	}
	for _, iv := range []units.Duration{40 * units.Nanosecond, 60 * units.Nanosecond, 70 * units.Nanosecond, 76 * units.Nanosecond, 100 * units.Nanosecond, 150 * units.Nanosecond} {
		p := prm
		p.Chip.DMA.IssueInterval = iv
		bw := MeasureChain(p, DirWrite, TargetCPU, false, 4096, 255)
		t.AddRow(iv.String(), GB(bw.GBps()), fmt.Sprintf("%.0f%%", 100*bw.GBps()/3.657))
	}
	t.AddNote("at ≤70 ns the wire (70 ns per 280 B packet) becomes the bound — faster logic cannot exceed it")
	t.AddNote("the paper's 250 MHz FPGA lands at ~76 ns (19 cycles), hence the 93%% figure")
	return t
}

// SweepIRQ varies the completion-interrupt latency — a software cost the
// paper's TSC methodology includes in every DMA measurement (§IV-A).
func SweepIRQ(prm tcanet.Params) *Table {
	t := &Table{
		ID:      "SweepIRQ",
		Title:   "Interrupt latency vs single-DMA 4KiB bandwidth (GB/s)",
		XLabel:  "IRQ latency",
		Columns: []string{"single 4KiB (GB/s)", "255×4KiB (GB/s)"},
	}
	for _, irq := range []units.Duration{0, 600 * units.Nanosecond, 1200 * units.Nanosecond, 2400 * units.Nanosecond} {
		p := prm
		p.Chip.DMA.IRQLatency = irq
		one := MeasureChain(p, DirWrite, TargetCPU, false, 4096, 1)
		burst := MeasureChain(p, DirWrite, TargetCPU, false, 4096, 255)
		t.AddRow(irq.String(), GB(one.GBps()), GB(burst.GBps()))
	}
	t.AddNote("the interrupt dominates single small DMAs and vanishes into 255-bursts — Fig. 8 vs Fig. 7 in one knob")
	return t
}

// SweepCredits varies the ring links' ingress buffering.
func SweepCredits(prm tcanet.Params) *Table {
	t := &Table{
		ID:      "SweepCredits",
		Title:   "Ring-link credits vs remote 255×4KiB bandwidth (GB/s)",
		XLabel:  "credits (TLPs)",
		Columns: []string{"remote DMA BW (GB/s)"},
	}
	for _, cr := range []int{1, 2, 4, 8, 16, 32} {
		p := prm
		p.RingCredits = cr
		bw := MeasureChain(p, DirWrite, TargetCPU, true, 4096, 255)
		t.AddRow(fmt.Sprintf("%d", cr), GB(bw.GBps()))
	}
	t.AddNote("a couple of packets of buffering suffice at one hop; deep rings under contention want more")
	return t
}

// Sweeps returns the registry of parameter sweeps by name.
func Sweeps() map[string]func(tcanet.Params) *Table {
	return map[string]func(tcanet.Params) *Table{
		"cable":   SweepCable,
		"issue":   SweepIssue,
		"irq":     SweepIRQ,
		"credits": SweepCredits,
	}
}

// SweepNames lists the registry's keys in sorted order.
func SweepNames() []string {
	var names []string
	for k := range Sweeps() {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
