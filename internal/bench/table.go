// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§IV), plus the ablations DESIGN.md
// calls out. Each experiment builds a fresh, deterministic sub-cluster,
// drives it through the real driver paths (descriptor tables, doorbell
// stores, completion interrupts, polling), and reports the same rows and
// series the paper plots, annotated with the paper's expected values.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one regenerated figure or table.
type Table struct {
	// ID is the experiment identifier ("Fig7", "TableI", "LatencyPIO").
	ID string
	// Title restates what the paper's artifact shows.
	Title string
	// XLabel names the row key column.
	XLabel string
	// Columns are the series names.
	Columns []string
	// Rows are the measurements.
	Rows []Row
	// Notes carry the paper's expectations and modelling caveats.
	Notes []string
}

// Row is one x-position of a figure, or one line of a spec table.
type Row struct {
	X    string
	Vals []string
}

// AddRow appends a measurement row; values are pre-formatted so a column
// can mix units (the spec tables) or carry annotated numbers.
func (t *Table) AddRow(x string, vals ...string) {
	t.Rows = append(t.Rows, Row{X: x, Vals: vals})
}

// AddNote appends an annotation line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// errWriter latches the first write error so the render loops stay
// simple and the caller still learns the table never reached its sink
// (a full disk or closed pipe mid-sweep must not exit 0).
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	ew.err = err
	return n, err
}

// Format renders the table as aligned text. The returned error is the
// first write error, if any.
func (t *Table) Format(out io.Writer) error {
	w := &errWriter{w: out}
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len(t.XLabel)
	for _, r := range t.Rows {
		if len(r.X) > widths[0] {
			widths[0] = len(r.X)
		}
	}
	for i, c := range t.Columns {
		widths[i+1] = len(c)
		for _, r := range t.Rows {
			if i < len(r.Vals) && len(r.Vals[i]) > widths[i+1] {
				widths[i+1] = len(r.Vals[i])
			}
		}
	}
	line := func(x string, vals []string) {
		fmt.Fprintf(w, "  %-*s", widths[0], x)
		for i := range t.Columns {
			v := ""
			if i < len(vals) {
				v = vals[i]
			}
			fmt.Fprintf(w, "  %*s", widths[i+1], v)
		}
		fmt.Fprintln(w)
	}
	line(t.XLabel, t.Columns)
	fmt.Fprintf(w, "  %s\n", strings.Repeat("-", sum(widths)+2*len(widths)))
	for _, r := range t.Rows {
		line(r.X, r.Vals)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
	return w.err
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// CSV renders the table as comma-separated values (notes become comment
// lines). The returned error is the first write error, if any.
func (t *Table) CSV(out io.Writer) error {
	w := &errWriter{w: out}
	fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	fmt.Fprintf(w, "%s", csvEscape(t.XLabel))
	for _, c := range t.Columns {
		fmt.Fprintf(w, ",%s", csvEscape(c))
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%s", csvEscape(r.X))
		for i := range t.Columns {
			v := ""
			if i < len(r.Vals) {
				v = r.Vals[i]
			}
			fmt.Fprintf(w, ",%s", csvEscape(v))
		}
		fmt.Fprintln(w)
	}
	return w.err
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// GB formats a GB/s value the way the paper's axes read.
func GB(v float64) string { return fmt.Sprintf("%.3f", v) }

// US formats a microsecond value.
func US(v float64) string { return fmt.Sprintf("%.3f", v) }
