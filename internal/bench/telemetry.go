package bench

import (
	"fmt"

	"tca/internal/core"
	"tca/internal/obsv"
	"tca/internal/pcie"
	"tca/internal/prof"
	"tca/internal/sim"
	"tca/internal/tcanet"
	"tca/internal/units"
)

// TelemetryResult is one sampled scenario's outcome: the time-series
// timeline, the metrics snapshot at completion, and the bottleneck
// attribution derived from both.
type TelemetryResult struct {
	Scenario string
	Set      *obsv.Set
	Timeline *obsv.Timeline
	Snapshot *obsv.Snapshot
	Report   *obsv.Report
	// Elapsed is the scenario's end-to-end sim time; Moved is the payload
	// it carried (0 for latency-only scenarios).
	Elapsed units.Duration
	Moved   units.ByteSize
	// Prof is the attached engine profiler and Stats its host-side run
	// measurement when the scenario ran under TelemetryForwardProfiled /
	// TelemetryPingPongProfiled (Prof nil otherwise).
	Prof  *prof.Profiler
	Stats prof.RunStats
}

// TelemetryForward streams a count-descriptor chain of size-byte remote DMA
// writes from node src's internal memory into node dst's host memory across
// an n-node ring, sampling the fabric every interval. A long chain keeps
// the egress ring link busy back-to-back, so this is the canonical
// link-bound scenario: attribution names the saturated link while the
// destination chip's DMAC sits idle (the Fig. 10 forwarding setup driven at
// full rate).
func TelemetryForward(prm tcanet.Params, n, src, dst int, size units.ByteSize, count int, interval units.Duration) *TelemetryResult {
	return TelemetryForwardProfiled(prm, n, src, dst, size, count, interval, nil)
}

// TelemetryForwardProfiled is TelemetryForward with an engine profiler
// attached: host time attributes per component, and the profiler's
// cumulative host-time series lands on the same timeline as the fabric
// telemetry — so Perfetto exports of the result carry a host_time counter
// track next to the utilization tracks. A nil profiler degrades to the
// plain scenario.
func TelemetryForwardProfiled(prm tcanet.Params, n, src, dst int, size units.ByteSize, count int, interval units.Duration, p *prof.Profiler) *TelemetryResult {
	eng, sc, set := instrumentedRing(n, prm)
	sc.Profile(p)
	set.Sampler().SetComp(p.Component("obsv/sampler"))
	p.RecordHostSeries(set.Sampler().Timeline(), hostSeriesCap)
	comm, err := core.NewComm(sc)
	if err != nil {
		panic(err)
	}
	if err := sc.Chip(src).InternalMemory().Write(0, make([]byte, size)); err != nil {
		panic(err)
	}
	total := units.ByteSize(uint64(size) * uint64(count))
	buf, err := sc.Node(dst).AllocDMABuffer(total)
	if err != nil {
		panic(err)
	}
	g, err := sc.GlobalHostAddr(dst, buf)
	if err != nil {
		panic(err)
	}
	var doneAt sim.Time
	if err := comm.StartChain(src, buildWriteChain(uint64(g), size, count), func(now sim.Time) { doneAt = now }); err != nil {
		panic(err)
	}
	sc.StartTelemetry(interval)
	st := p.Measure("telemetry-forward", eng, func() { eng.Run() })
	if doneAt == 0 {
		panic("bench: telemetry forward chain never completed")
	}
	tl := set.Sampler().Timeline()
	snap := set.Registry().Snapshot(eng.Now())
	return &TelemetryResult{
		Scenario: fmt.Sprintf("forward DMA %d×%v node%d->node%d (%d-node ring), sampled every %v", count, size, src, dst, n, interval),
		Set:      set,
		Timeline: tl,
		Snapshot: snap,
		Report:   obsv.Attribute(snap, tl),
		Elapsed:  doneAt.Elapsed(),
		Moved:    total,
		Prof:     p,
		Stats:    st,
	}
}

// TelemetryPingPong runs rounds of the §IV-B1 PIO flag ping-pong between
// src and dst on an n-node ring under sampling. Ping-pong is latency-bound
// with one 8-byte store in flight at a time, so every resource idles —
// attribution's "underutilized" verdict, the contrast case to
// TelemetryForward.
func TelemetryPingPong(prm tcanet.Params, n, src, dst, rounds int, interval units.Duration) *TelemetryResult {
	return TelemetryPingPongProfiled(prm, n, src, dst, rounds, interval, nil)
}

// TelemetryPingPongProfiled is TelemetryPingPong with an engine profiler
// attached (see TelemetryForwardProfiled). A nil profiler degrades to the
// plain scenario.
func TelemetryPingPongProfiled(prm tcanet.Params, n, src, dst, rounds int, interval units.Duration, p *prof.Profiler) *TelemetryResult {
	if rounds < 1 {
		panic("bench: telemetry ping-pong needs at least one round")
	}
	eng, sc, set := instrumentedRing(n, prm)
	sc.Profile(p)
	set.Sampler().SetComp(p.Component("obsv/sampler"))
	p.RecordHostSeries(set.Sampler().Timeline(), hostSeriesCap)
	srcBuf, srcG := flagTarget(sc, src)
	dstBuf, dstG := flagTarget(sc, dst)
	ping := []byte{1, 0, 0, 0, 0, 0, 0, 0}
	pong := []byte{2, 0, 0, 0, 0, 0, 0, 0}
	var lastAt sim.Time
	done := 0
	sc.Node(dst).Poll(pcie.Range{Base: dstBuf, Size: 8}, func(now sim.Time) {
		sc.Node(dst).Store(srcG, pong)
	})
	sc.Node(src).Poll(pcie.Range{Base: srcBuf, Size: 8}, func(now sim.Time) {
		lastAt = now
		done++
		if done < rounds {
			sc.Node(src).Store(dstG, ping)
		}
	})
	sc.StartTelemetry(interval)
	st := p.Measure("telemetry-pingpong", eng, func() {
		sc.Node(src).Store(dstG, ping)
		eng.Run()
	})
	if done != rounds {
		panic(fmt.Sprintf("bench: %d/%d ping-pong rounds completed", done, rounds))
	}
	tl := set.Sampler().Timeline()
	snap := set.Registry().Snapshot(eng.Now())
	return &TelemetryResult{
		Scenario: fmt.Sprintf("PIO ping-pong ×%d node%d<->node%d (%d-node ring), sampled every %v", rounds, src, dst, n, interval),
		Set:      set,
		Timeline: tl,
		Snapshot: snap,
		Report:   obsv.Attribute(snap, tl),
		Elapsed:  lastAt.Elapsed(),
		Prof:     p,
		Stats:    st,
	}
}

// hostSeriesCap bounds the profiler's cumulative host-time series; one
// point lands per timed sample, so the ring must hold a scenario's worth.
const hostSeriesCap = 8192
