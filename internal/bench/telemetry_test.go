package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tca/internal/core"
	"tca/internal/obsv"
	"tca/internal/sim"
	"tca/internal/tcanet"
	"tca/internal/units"
)

// TestTelemetryForwardAttribution drives the canonical link-bound scenario
// — a 255×4 KiB chain node0→node2 across a 4-node ring — and checks that
// attribution names the source chip's egress ring link as saturated.
func TestTelemetryForwardAttribution(t *testing.T) {
	res := TelemetryForward(tcanet.DefaultParams, 4, 0, 2, 4096, 255, units.Microsecond)
	rep := res.Report
	if rep == nil || rep.Primary.Verdict != obsv.VerdictLinkBound {
		t.Fatalf("verdict = %+v, want link-bound", rep)
	}
	// Both ring hops on the node0→node2 arc (peach2-0.E and peach2-1.E)
	// carry every TLP and saturate together; attribution may name either.
	if !strings.Contains(rep.Primary.Resource, "link:peach2-0.E") &&
		!strings.Contains(rep.Primary.Resource, "link:peach2-1.E") {
		t.Errorf("resource = %q, want a ring link on the node0->node2 arc", rep.Primary.Resource)
	}
	var util float64
	for _, ev := range rep.Primary.Evidence {
		if strings.HasPrefix(ev.Series, "link_util") && ev.Stat == "active-mean" {
			util = ev.Value
		}
	}
	if util < 90 {
		t.Errorf("saturated link active-mean utilization = %.1f%%, want >= 90%%", util)
	}
	if res.Timeline.Find("link_util", "link:peach2-0.E", "ab") == nil {
		t.Error("timeline is missing the link_util series for the saturated link")
	}
	// The destination chip's DMAC never runs — the downstream-idle half of
	// the link-bound evidence.
	if s := res.Timeline.Find("dma_busy", "peach2-2/dmac", ""); s == nil || s.ActiveMean() != 0 {
		t.Errorf("destination DMAC should idle, series = %v", s)
	}
}

// TestTelemetryPingPongUnderutilized checks the contrast case: one 8-byte
// flag in flight at a time saturates nothing.
func TestTelemetryPingPongUnderutilized(t *testing.T) {
	res := TelemetryPingPong(tcanet.DefaultParams, 4, 0, 2, 20, units.Microsecond)
	if v := res.Report.Primary.Verdict; v != obsv.VerdictUnderutilized {
		t.Fatalf("verdict = %v, want underutilized", v)
	}
	if res.Elapsed <= 0 {
		t.Fatal("ping-pong recorded no elapsed time")
	}
}

// TestForwardPerfettoTraceValid exports the trace tcabench -perfetto
// writes and validates it against the Chrome trace_event schema: a
// traceEvents array with duration slices for the DMA span, counter samples
// for the telemetry series, and nothing malformed.
func TestForwardPerfettoTraceValid(t *testing.T) {
	res := TelemetryForward(tcanet.DefaultParams, 4, 0, 2, 4096, 16, units.Microsecond)
	var buf bytes.Buffer
	if err := obsv.WritePerfetto(&buf, res.Set.Recorder().Events(), res.Timeline); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	var slices, counters int
	for i, ev := range file.TraceEvents {
		ph, _ := ev["ph"].(string)
		if name, _ := ev["name"].(string); name == "" || ph == "" {
			t.Fatalf("event %d missing name/ph: %v", i, ev)
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Fatalf("event %d missing numeric ts: %v", i, ev)
		}
		switch ph {
		case "X":
			slices++
			if d, _ := ev["dur"].(float64); d <= 0 {
				t.Errorf("X slice with non-positive dur: %v", ev)
			}
		case "C":
			counters++
		}
	}
	if slices == 0 {
		t.Error("trace has no duration slices — the DMA span is missing")
	}
	if counters == 0 {
		t.Error("trace has no counter events — the telemetry series are missing")
	}
}

// TestTelemetryDoesNotPerturbTiming reruns the forward scenario with no
// instrumentation and no sampler and requires the identical completion
// time — probes observe, they never reserve.
func TestTelemetryDoesNotPerturbTiming(t *testing.T) {
	const size, count = 4096, 64
	res := TelemetryForward(tcanet.DefaultParams, 4, 0, 2, size, count, units.Microsecond)

	eng := sim.NewEngine()
	sc, err := tcanet.BuildRing(eng, 4, tcanet.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	comm, err := core.NewComm(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Chip(0).InternalMemory().Write(0, make([]byte, size)); err != nil {
		t.Fatal(err)
	}
	buf, err := sc.Node(2).AllocDMABuffer(size * count)
	if err != nil {
		t.Fatal(err)
	}
	g, err := sc.GlobalHostAddr(2, buf)
	if err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time
	if err := comm.StartChain(0, buildWriteChain(uint64(g), size, count), func(now sim.Time) { doneAt = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if units.Duration(doneAt) != res.Elapsed {
		t.Errorf("instrumented run finished at %v, bare run at %v — telemetry perturbed the simulation",
			res.Elapsed, units.Duration(doneAt))
	}
}
