package check

import (
	"bytes"
	"fmt"

	"tca/internal/scenariogen"
)

// DiffResult is the differential replay verdict for one scenario: the
// run is executed twice for determinism, and — when the faulty run fully
// recovered — once more on a perfect fabric to prove faults changed
// timing but never final memory contents.
type DiffResult struct {
	Faulty *Result
	Repeat *Result
	// Perfect is the fault-free baseline (nil when the spec has no
	// faults — the faulty run already is the baseline).
	Perfect *Result

	DeterminismOK bool
	// MemoryChecked reports whether the faulty-vs-perfect memory diff
	// was applicable (faults present and fully recovered); MemoryOK is
	// its verdict.
	MemoryChecked bool
	MemoryOK      bool

	// Failures lists every reason this scenario failed the checker, in
	// a stable, human-readable form. Empty means the scenario passed.
	Failures []string
}

// Failed reports whether any invariant broke.
func (d *DiffResult) Failed() bool { return len(d.Failures) > 0 }

// RunDiff executes the full differential protocol on one spec.
func RunDiff(spec scenariogen.Spec, opt Options) (*DiffResult, error) {
	d := &DiffResult{}
	var err error
	if d.Faulty, err = Run(spec, opt); err != nil {
		return nil, err
	}
	if d.Repeat, err = Run(spec, opt); err != nil {
		return nil, err
	}
	d.DeterminismOK = bytes.Equal(d.Faulty.Transcript, d.Repeat.Transcript)
	if !d.DeterminismOK {
		d.Failures = append(d.Failures, "determinism: two runs of the same spec diverged"+
			transcriptDiff(d.Faulty.Transcript, d.Repeat.Transcript))
	}
	for _, v := range d.Faulty.Violations {
		d.Failures = append(d.Failures, "invariant: "+v.String())
	}

	if spec.Faults != "" && !opt.PerfectFabric {
		perfect := spec
		perfect.Faults = ""
		// The baseline drops the fault options but keeps the run budget:
		// a perfect run of a budget-sized spec must not hang either.
		if d.Perfect, err = Run(perfect, Options{MaxEvents: opt.MaxEvents, MaxHost: opt.MaxHost}); err != nil {
			return nil, err
		}
		for _, v := range d.Perfect.Violations {
			d.Failures = append(d.Failures, "invariant (perfect fabric): "+v.String())
		}
		if d.Faulty.FullyRecovered && len(d.Faulty.Violations) == 0 &&
			len(d.Perfect.Violations) == 0 && d.Perfect.FullyRecovered {
			d.MemoryChecked = true
			d.MemoryOK = bytes.Equal(d.Faulty.FinalMem, d.Perfect.FinalMem)
			if !d.MemoryOK {
				d.Failures = append(d.Failures, fmt.Sprintf(
					"differential: faults changed final memory (first divergence at byte %d of %d)",
					firstDiff(d.Faulty.FinalMem, d.Perfect.FinalMem), len(d.Perfect.FinalMem)))
			}
		}
	}
	return d, nil
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// transcriptDiff renders the first diverging transcript line for the
// failure message.
func transcriptDiff(a, b []byte) string {
	la := bytes.Split(a, []byte("\n"))
	lb := bytes.Split(b, []byte("\n"))
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(la[i], lb[i]) {
			return fmt.Sprintf(" (line %d: %q vs %q)", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf(" (transcript lengths %d vs %d)", len(la), len(lb))
}
