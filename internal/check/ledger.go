// Package check is the fabric invariant checker: a TLP conservation
// ledger that proves every packet injected into the simulated fabric is
// exactly-once delivered, salvaged, or dropped with an attributed cause —
// across DLL replay, link death, and ring failover — plus a scenario
// runner (Run/RunDiff) that executes scenariogen specs under the ledger
// and differentially replays them for determinism and fault-transparency.
package check

import (
	"fmt"
	"hash/fnv"
	"sort"

	"tca/internal/sim"
)

// Violation is one broken fabric invariant, attributed to a packet, a
// place, and a simulation time.
type Violation struct {
	At     sim.Time
	LID    uint64
	Rule   string
	Where  string
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("t=%v lid=%d at %s: %s: %s", v.At, v.LID, v.Where, v.Rule, v.Detail)
}

// tlpState is the per-packet conservation state machine.
//
//	inFlight --Delivered--> delivered
//	inFlight --Parked-----> parked --Unparked--> inFlight
//	inFlight --Dropped----> dropped
//	delivered --Parked----> parked          (salvaged copy of a packet that
//	                                         already landed: ACK was lost)
//	delivered --Delivered-> delivered       (legal only for that salvaged
//	                                         copy, payload unchanged)
//
// Everything else — a second delivery without an intervening park, a
// delivery or drop after a drop, payload or address changed in flight —
// is a violation. A packet still inFlight when the engine drains was lost
// without attribution: the invariant the whole ledger exists to catch.
type tlpState uint8

const (
	stInFlight tlpState = iota
	stParked
	stDelivered
	stDropped
)

type entry struct {
	kind       string
	addr       uint64
	hash       uint64
	hasPayload bool
	bytes      int
	bornWhere  string
	born       sim.Time

	state     tlpState
	delivered int
	// parkedSinceDelivery marks the one legal route to a duplicate
	// delivery: the packet landed, its ACK was lost, and the dying link
	// salvaged (parked) the unacknowledged copy for re-injection.
	parkedSinceDelivery bool
}

// Summary is the ledger's account at quiesce.
type Summary struct {
	Born       int
	Delivered  int // packets delivered at least once
	DupSalvage int // legal duplicate deliveries (salvaged copies)
	// BenignDrops are attributed drops that lose no data (a stale
	// completion whose read already completed via another copy, a
	// salvaged duplicate that could not be re-routed).
	BenignDrops int
	// HarmfulDrops are attributed data losses (no route after failover,
	// no salvage handler): recovery failed, but conservation held.
	HarmfulDrops int
	// ParkedAtQuiesce counts packets salvaged but never re-injected —
	// held by a chip with no surviving route. Conservation holds; full
	// recovery did not.
	ParkedAtQuiesce int
}

// Ledger implements obsv.Ledger: components report packet births, sink
// deliveries, attributed drops, and park/unpark transitions; Audit then
// proves conservation at quiesce. The zero LID is never issued, so
// instrumentation hooks can use it as "untracked".
type Ledger struct {
	nextLID    uint64
	entries    map[uint64]*entry
	linkBytes  map[string]uint64 // "link|dir" -> wire bytes
	violations []Violation
	sum        Summary
}

// NewLedger builds an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		entries:   make(map[uint64]*entry),
		linkBytes: make(map[string]uint64),
	}
}

func payloadHash(p []byte) uint64 {
	h := fnv.New64a()
	h.Write(p)
	return h.Sum64()
}

func (l *Ledger) violate(at sim.Time, lid uint64, rule, where, detail string) {
	l.violations = append(l.violations, Violation{At: at, LID: lid, Rule: rule, Where: where, Detail: detail})
}

// Born implements obsv.Ledger: mint an identity for a packet crossing its
// first instrumented link.
func (l *Ledger) Born(now sim.Time, kind string, addr uint64, payload []byte, where string) uint64 {
	l.nextLID++
	l.entries[l.nextLID] = &entry{
		kind:       kind,
		addr:       addr,
		hash:       payloadHash(payload),
		hasPayload: len(payload) > 0,
		bytes:      len(payload),
		bornWhere:  where,
		born:       now,
	}
	l.sum.Born++
	return l.nextLID
}

// Delivered implements obsv.Ledger: the packet terminated at a sink. A
// nil payload means the sink consumed a request without data to compare
// (an MRd); a non-nil payload is checked against the bytes at birth.
func (l *Ledger) Delivered(now sim.Time, lid uint64, addr uint64, payload []byte, where string) {
	e, ok := l.entries[lid]
	if !ok {
		l.violate(now, lid, "unknown-lid", where, "delivered a packet the ledger never saw born")
		return
	}
	// Addresses legitimately change in flight (the PEACH2 conversion
	// table rewrites global TCA addresses to local bus addresses,
	// §III-E), so only the payload is an invariant; misdirection is
	// caught by the runner's end-to-end memory compare instead.
	if payload != nil && e.hasPayload {
		if h := payloadHash(payload); h != e.hash {
			l.violate(now, lid, "payload-corrupted", where,
				fmt.Sprintf("%s born at %s for %#x with hash %016x, delivered to %#x with %016x",
					e.kind, e.bornWhere, e.addr, e.hash, addr, h))
		}
	}
	switch e.state {
	case stInFlight:
		if e.delivered > 0 && !e.parkedSinceDelivery {
			l.violate(now, lid, "duplicate-delivery", where,
				fmt.Sprintf("%s delivered %d times with no salvage in between", e.kind, e.delivered+1))
		}
		if e.delivered == 0 {
			l.sum.Delivered++
		} else {
			l.sum.DupSalvage++
		}
		e.delivered++
		e.parkedSinceDelivery = false
		e.state = stDelivered
	case stDelivered:
		// No transit between two deliveries at all: the sink saw the
		// same packet twice without the fabric re-routing it.
		l.violate(now, lid, "duplicate-delivery", where,
			fmt.Sprintf("%s delivered again while already delivered", e.kind))
	case stParked:
		l.violate(now, lid, "delivered-while-parked", where,
			fmt.Sprintf("%s delivered out of a park without an unpark", e.kind))
	case stDropped:
		l.violate(now, lid, "delivered-after-drop", where,
			fmt.Sprintf("%s was already dropped", e.kind))
	}
}

// Dropped implements obsv.Ledger: the packet was discarded on purpose,
// with a cause. Dropping a packet that already landed (a salvaged copy
// that could not be re-routed) loses nothing; dropping an undelivered one
// is attributed data loss.
func (l *Ledger) Dropped(now sim.Time, lid uint64, where, cause string) {
	e, ok := l.entries[lid]
	if !ok {
		l.violate(now, lid, "unknown-lid", where, "dropped a packet the ledger never saw born")
		return
	}
	switch e.state {
	case stDropped:
		l.violate(now, lid, "double-drop", where, fmt.Sprintf("%s dropped twice (now: %s)", e.kind, cause))
	case stDelivered:
		l.sum.BenignDrops++
	case stParked, stInFlight:
		if e.delivered > 0 || benignCause(cause) {
			l.sum.BenignDrops++
			// The data already landed; keep the delivered terminal state.
			e.state = stDelivered
			return
		}
		l.sum.HarmfulDrops++
		e.state = stDropped
	}
}

// benignCause marks drop causes that never lose data: a stale completion
// is the loser of a retry race (or a cancelled chain's read) whose data
// either arrived via the winning copy or was abandoned with the chain.
func benignCause(cause string) bool {
	return len(cause) >= 5 && cause[:5] == "stale"
}

// Parked implements obsv.Ledger: a chip pinned the packet while waiting
// for a route (link death salvage, dead egress port).
func (l *Ledger) Parked(now sim.Time, lid uint64, where string) {
	e, ok := l.entries[lid]
	if !ok {
		l.violate(now, lid, "unknown-lid", where, "parked a packet the ledger never saw born")
		return
	}
	switch e.state {
	case stInFlight:
		e.state = stParked
	case stDelivered:
		// The salvaged copy of an already-delivered packet: its ACK was
		// lost, the link died, and the replay buffer handed it back.
		e.state = stParked
		e.parkedSinceDelivery = true
	case stParked:
		l.violate(now, lid, "double-park", where, fmt.Sprintf("%s parked twice", e.kind))
	case stDropped:
		l.violate(now, lid, "parked-after-drop", where, fmt.Sprintf("%s was already dropped", e.kind))
	}
}

// Unparked implements obsv.Ledger: a failover re-injected the packet.
func (l *Ledger) Unparked(now sim.Time, lid uint64, where string) {
	e, ok := l.entries[lid]
	if !ok {
		l.violate(now, lid, "unknown-lid", where, "unparked a packet the ledger never saw born")
		return
	}
	if e.state != stParked {
		l.violate(now, lid, "unparked-not-parked", where, fmt.Sprintf("%s was not parked", e.kind))
		return
	}
	e.state = stInFlight
}

// LinkBytes implements obsv.Ledger: accumulate wire bytes per link and
// direction, cross-checked at quiesce against the link's own counters.
func (l *Ledger) LinkBytes(link, dir string, wireBytes uint64) {
	l.linkBytes[link+"|"+dir] += wireBytes
}

// LinkTotal reports the accumulated wire bytes for one link direction.
func (l *Ledger) LinkTotal(link, dir string) uint64 { return l.linkBytes[link+"|"+dir] }

// LinkKeys returns every "link|dir" the ledger saw, sorted.
func (l *Ledger) LinkKeys() []string {
	keys := make([]string, 0, len(l.linkBytes))
	for k := range l.linkBytes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Audit closes the books at quiesce: every packet must have reached a
// terminal state. A packet still parked was salvaged (conservation holds,
// recovery didn't finish); a packet still in flight simply vanished — the
// silent loss the ledger exists to expose. Audit appends to the violation
// list and returns the final summary; call it once, after the engine
// drains.
func (l *Ledger) Audit(end sim.Time) Summary {
	lids := make([]uint64, 0, len(l.entries))
	for lid := range l.entries {
		lids = append(lids, lid)
	}
	sort.Slice(lids, func(i, j int) bool { return lids[i] < lids[j] })
	for _, lid := range lids {
		e := l.entries[lid]
		switch e.state {
		case stParked:
			l.sum.ParkedAtQuiesce++
		case stInFlight:
			l.violate(end, lid, "lost-without-attribution", e.bornWhere,
				fmt.Sprintf("%s for %#x (%d bytes) born at t=%v never delivered, dropped, or salvaged",
					e.kind, e.addr, e.bytes, e.born))
		}
	}
	return l.sum
}

// Violations returns every violation recorded so far.
func (l *Ledger) Violations() []Violation { return l.violations }

// Summary returns the running account (complete only after Audit).
func (l *Ledger) Summary() Summary { return l.sum }
