package check

import (
	"strings"
	"testing"

	"tca/internal/sim"
)

func hasViolation(l *Ledger, rule string) bool {
	for _, v := range l.Violations() {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

// TestLedgerHappyPath: born then delivered is clean and audited clean.
func TestLedgerHappyPath(t *testing.T) {
	l := NewLedger()
	payload := []byte{1, 2, 3}
	lid := l.Born(0, "MWr", 0x100, payload, "link:a")
	if lid == 0 {
		t.Fatal("Born returned the reserved zero LID")
	}
	l.Delivered(10, lid, 0x100, payload, "sink")
	sum := l.Audit(20)
	if len(l.Violations()) != 0 {
		t.Fatalf("violations on happy path: %v", l.Violations())
	}
	if sum.Born != 1 || sum.Delivered != 1 || sum.HarmfulDrops != 0 {
		t.Fatalf("summary %+v", sum)
	}
}

// TestLedgerCatchesSilentLoss: a packet never reaching a terminal state
// is the lost-without-attribution violation.
func TestLedgerCatchesSilentLoss(t *testing.T) {
	l := NewLedger()
	l.Born(0, "MWr", 0x100, []byte{1}, "link:a")
	l.Audit(50)
	if !hasViolation(l, "lost-without-attribution") {
		t.Fatalf("silent loss not flagged: %v", l.Violations())
	}
}

// TestLedgerCatchesCorruption: delivery with different bytes than birth.
func TestLedgerCatchesCorruption(t *testing.T) {
	l := NewLedger()
	lid := l.Born(0, "MWr", 0x100, []byte{1, 2, 3}, "link:a")
	l.Delivered(10, lid, 0x100, []byte{1, 2, 4}, "sink")
	if !hasViolation(l, "payload-corrupted") {
		t.Fatalf("corruption not flagged: %v", l.Violations())
	}
}

// TestLedgerAllowsReaddressing: the PEACH2 conversion table rewrites
// global addresses to local ones in flight (§III-E) — a different
// delivery address with intact payload is not a violation.
func TestLedgerAllowsReaddressing(t *testing.T) {
	l := NewLedger()
	lid := l.Born(0, "MWr", 0x100, []byte{1}, "link:a")
	l.Delivered(10, lid, 0x200, []byte{1}, "sink")
	if len(l.Violations()) != 0 {
		t.Fatalf("readdressed delivery flagged: %v", l.Violations())
	}
}

// TestLedgerCatchesDuplicates: two deliveries with no salvage between.
func TestLedgerCatchesDuplicates(t *testing.T) {
	l := NewLedger()
	lid := l.Born(0, "MWr", 0x100, []byte{1}, "link:a")
	l.Delivered(10, lid, 0x100, []byte{1}, "sink")
	l.Delivered(11, lid, 0x100, []byte{1}, "sink")
	if !hasViolation(l, "duplicate-delivery") {
		t.Fatalf("duplicate not flagged: %v", l.Violations())
	}
}

// TestLedgerSalvageDuplicateIsLegal: delivered, then the unacknowledged
// copy is salvaged (parked), re-injected (unparked), and lands again with
// identical bytes — the one legal duplicate, counted as dupSalvage.
func TestLedgerSalvageDuplicateIsLegal(t *testing.T) {
	l := NewLedger()
	p := []byte{9, 9}
	lid := l.Born(0, "MWr", 0x100, p, "link:a")
	l.Delivered(10, lid, 0x100, p, "sink")
	l.Parked(12, lid, "peach2-1")
	l.Unparked(20, lid, "peach2-1")
	l.Delivered(30, lid, 0x100, p, "sink")
	sum := l.Audit(40)
	if len(l.Violations()) != 0 {
		t.Fatalf("legal salvage duplicate flagged: %v", l.Violations())
	}
	if sum.DupSalvage != 1 || sum.Delivered != 1 {
		t.Fatalf("summary %+v, want DupSalvage=1 Delivered=1", sum)
	}
}

// TestLedgerSalvageDuplicateDropIsBenign: the salvaged copy of a
// delivered packet that cannot be re-routed is dropped without data loss.
func TestLedgerSalvageDuplicateDropIsBenign(t *testing.T) {
	l := NewLedger()
	p := []byte{7}
	lid := l.Born(0, "MWr", 0x100, p, "link:a")
	l.Delivered(10, lid, 0x100, p, "sink")
	l.Parked(12, lid, "peach2-1")
	l.Dropped(20, lid, "peach2-1", "no route after failover")
	sum := l.Audit(40)
	if len(l.Violations()) != 0 {
		t.Fatalf("benign drop flagged: %v", l.Violations())
	}
	if sum.BenignDrops != 1 || sum.HarmfulDrops != 0 {
		t.Fatalf("summary %+v, want one benign drop", sum)
	}
}

// TestLedgerAttributedLoss: dropping an undelivered packet is harmful but
// attributed — conservation holds, recovery failed.
func TestLedgerAttributedLoss(t *testing.T) {
	l := NewLedger()
	lid := l.Born(0, "MWr", 0x100, []byte{1}, "link:a")
	l.Parked(5, lid, "peach2-0")
	l.Dropped(9, lid, "peach2-0", "no route after failover")
	sum := l.Audit(40)
	if len(l.Violations()) != 0 {
		t.Fatalf("attributed loss flagged as violation: %v", l.Violations())
	}
	if sum.HarmfulDrops != 1 {
		t.Fatalf("summary %+v, want HarmfulDrops=1", sum)
	}
}

// TestLedgerStaleCompletionBenign: the loser of a completion retry race.
func TestLedgerStaleCompletionBenign(t *testing.T) {
	l := NewLedger()
	lid := l.Born(0, "CplD", 0, []byte{1, 2}, "link:a")
	l.Dropped(9, lid, "peach2-0", "stale completion after chain abort")
	sum := l.Audit(40)
	if len(l.Violations()) != 0 {
		t.Fatalf("stale completion flagged: %v", l.Violations())
	}
	if sum.BenignDrops != 1 || sum.HarmfulDrops != 0 {
		t.Fatalf("summary %+v", sum)
	}
}

// TestLedgerDoubleDropAndAfterlife: terminal states are terminal.
func TestLedgerDoubleDropAndAfterlife(t *testing.T) {
	l := NewLedger()
	lid := l.Born(0, "MWr", 0x100, []byte{1}, "link:a")
	l.Parked(2, lid, "c")
	l.Dropped(3, lid, "c", "no route after failover")
	l.Dropped(4, lid, "c", "no route after failover")
	if !hasViolation(l, "double-drop") {
		t.Fatalf("double drop not flagged: %v", l.Violations())
	}
	l2 := NewLedger()
	lid2 := l2.Born(0, "MWr", 0x100, []byte{1}, "link:a")
	l2.Parked(2, lid2, "c")
	l2.Dropped(3, lid2, "c", "no route after failover")
	l2.Delivered(5, lid2, 0x100, []byte{1}, "sink")
	if !hasViolation(l2, "delivered-after-drop") {
		t.Fatalf("delivery after drop not flagged: %v", l2.Violations())
	}
}

// TestLedgerParkedAtQuiesceIsSalvage: still-parked packets are salvaged,
// not violations — and the unknown-LID guard fires for unborn packets.
func TestLedgerParkedAtQuiesce(t *testing.T) {
	l := NewLedger()
	lid := l.Born(0, "MWr", 0x100, []byte{1}, "link:a")
	l.Parked(5, lid, "peach2-0")
	sum := l.Audit(40)
	if len(l.Violations()) != 0 {
		t.Fatalf("parked-at-quiesce flagged: %v", l.Violations())
	}
	if sum.ParkedAtQuiesce != 1 {
		t.Fatalf("summary %+v", sum)
	}
	l.Delivered(50, 999, 0, nil, "sink")
	if !hasViolation(l, "unknown-lid") {
		t.Fatal("unknown LID not flagged")
	}
}

// TestViolationString pins the rendering the fuzzer prints.
func TestViolationString(t *testing.T) {
	v := Violation{At: sim.Time(5), LID: 3, Rule: "double-drop", Where: "peach2-0", Detail: "x"}
	if !strings.Contains(v.String(), "double-drop") || !strings.Contains(v.String(), "peach2-0") {
		t.Fatalf("unhelpful violation string %q", v)
	}
}
