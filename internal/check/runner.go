package check

import (
	"fmt"
	"hash/fnv"
	"strings"
	"time"

	"tca/internal/coll"
	"tca/internal/core"
	"tca/internal/fault"
	"tca/internal/obsv"
	"tca/internal/pcie"
	"tca/internal/peach2"
	"tca/internal/prof"
	"tca/internal/scenariogen"
	"tca/internal/sim"
	"tca/internal/tcanet"
	"tca/internal/units"
)

// Options tunes a checked scenario run.
type Options struct {
	// BreakSalvage arms the deliberate conservation bug in the data-link
	// layer (pcie.DLLParams.BreakSalvage): TLPs on a dying link vanish
	// without attribution. Exists to prove the checker catches it.
	BreakSalvage bool
	// PerfectFabric strips the fault schedule — the differential
	// baseline. A perfect run schedules no injector and no DLL, so it is
	// byte-identical to a plain simulation of the same op program.
	PerfectFabric bool
	// MaxEvents / MaxHost bound each engine run (0 = unlimited). A run
	// that exhausts either allowance returns a *sim.BudgetError instead
	// of a Result; the host clock flows through the blessed
	// prof.HostNanos accessor and never feeds simulated state, so two
	// runs that both finish under budget stay bit-identical.
	MaxEvents uint64
	MaxHost   time.Duration
	// KeepObs retains the run's observability set on Result.Obs so the
	// caller can export spans (e.g. a Perfetto trace) after the run. Off
	// by default: the set pins every recorded span in memory.
	KeepObs bool
}

// Budgeted reports whether either run-budget dimension is armed.
func (o Options) Budgeted() bool { return o.MaxEvents != 0 || o.MaxHost != 0 }

// Result is one checked scenario run.
type Result struct {
	Spec scenariogen.Spec
	End  sim.Time
	// OpsDone / OpsWaited count completion callbacks fired vs expected
	// (PIO stores are fire-and-forget and excluded).
	OpsDone, OpsWaited int
	ChainErrors        []string
	Summary            Summary
	// Violations merges ledger violations with the runner's quiesce
	// checks (tag accounting, parked accounting, byte conservation,
	// end-to-end payload compare). Empty means every invariant held.
	Violations []Violation
	// FullyRecovered reports that the fault schedule was fully absorbed:
	// every op completed, no chain errors, nothing lost or left parked.
	// Only then may final memory be diffed against a perfect run.
	FullyRecovered bool
	// FinalMem is the concatenated destination regions of every op, in
	// op order — the scenario's observable outcome.
	FinalMem []byte
	// Transcript is a deterministic text rendering of the whole run;
	// two runs of the same spec must produce identical transcripts.
	Transcript []byte
	// Obs is the run's observability set, retained only under
	// Options.KeepObs — the handle a trace exporter needs.
	Obs *obsv.Set

	// linkLines are the per-link byte totals rendered into Transcript.
	linkLines []string
}

// bufLen slices each node buffer into MaxOps destination slots followed
// by MaxOps source slots.
const bufLen = units.ByteSize(2 * scenariogen.MaxOps * scenariogen.SlotBytes)

func dstOff(op int) units.ByteSize {
	return units.ByteSize(op * scenariogen.SlotBytes)
}
func srcOff(op int) units.ByteSize {
	return units.ByteSize((scenariogen.MaxOps + op) * scenariogen.SlotBytes)
}

// fillBytes derives op i's payload pattern from the spec seed — plain
// arithmetic, no shared RNG, so sources are reproducible anywhere.
func fillBytes(seed int64, op, n int) []byte {
	b := make([]byte, n)
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(op+1)*0xBF58476D1CE4E5B9
	if x == 0 {
		x = 1
	}
	for j := range b {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b[j] = byte(x)
	}
	return b
}

// Run executes one scenario under the conservation ledger and audits
// every fabric invariant at quiesce.
func Run(spec scenariogen.Spec, opt Options) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	var sc *tcanet.SubCluster
	var err error
	if spec.DualRing {
		sc, err = tcanet.BuildDualRing(eng, spec.K, tcanet.DefaultParams)
	} else {
		sc, err = tcanet.BuildRing(eng, spec.K, tcanet.DefaultParams)
	}
	if err != nil {
		return nil, err
	}

	led := NewLedger()
	spanCap := 256
	if opt.KeepObs {
		// A retained set feeds a trace export; keep enough span events for
		// every hop of a full MaxOps program.
		spanCap = 1 << 16
	}
	set := obsv.NewSet(spanCap)
	set.Led = led
	sc.Instrument(set)

	var inj *fault.Injector
	if spec.Faults != "" && !opt.PerfectFabric {
		prof, perr := fault.ParseScenario(spec.Faults, spec.Seed)
		if perr != nil {
			return nil, perr
		}
		inj = fault.New(prof)
		dll := pcie.DefaultDLLParams()
		dll.BreakSalvage = opt.BreakSalvage
		sc.InjectFaults(inj, dll)
		sc.EnableAutoFailover(0)
	}

	comm, err := core.NewComm(sc)
	if err != nil {
		return nil, err
	}
	n := spec.Nodes()
	hostBufs := make([]core.HostBuffer, n)
	gpuBufs := make([][2]core.GPUBuffer, n)
	for i := 0; i < n; i++ {
		if hostBufs[i], err = comm.AllocHostBuffer(i, bufLen); err != nil {
			return nil, err
		}
		for g := 0; g < 2; g++ {
			if gpuBufs[i][g], err = comm.RegisterGPUBuffer(i, g, bufLen); err != nil {
				return nil, err
			}
		}
	}
	var col *coll.Communicator
	for _, o := range spec.Ops {
		if o.Kind == scenariogen.OpBarrier {
			if col, err = coll.New(comm); err != nil {
				return nil, err
			}
			break
		}
	}

	// Pre-fill every op's source slot so transfers move recognizable,
	// per-op payloads.
	for i, o := range spec.Ops {
		switch o.Kind {
		case scenariogen.OpHostPut:
			err = comm.WriteHost(hostBufs[o.Src], srcOff(i), fillBytes(spec.Seed, i, o.Bytes))
		case scenariogen.OpDMA:
			err = comm.WriteGPU(gpuBufs[o.Src][o.SrcGPU], srcOff(i), fillBytes(spec.Seed, i, o.Bytes))
		case scenariogen.OpStride:
			span := o.Stride*(o.Count-1) + o.BlockLen
			err = comm.WriteHost(hostBufs[o.Src], srcOff(i), fillBytes(spec.Seed, i, span))
		}
		if err != nil {
			return nil, err
		}
	}

	// The op program runs sequentially: each completion callback issues
	// the next op; PIO stores issue and fall through. A chain that fails
	// under faults still raises its IRQ, so sequencing never stalls.
	r := &Result{Spec: spec}
	for _, o := range spec.Ops {
		if o.Kind != scenariogen.OpPIO {
			r.OpsWaited++
		}
	}
	var execErr error
	next := 0
	var step func(now sim.Time)
	step = func(now sim.Time) {
		for execErr == nil && next < len(spec.Ops) {
			i := next
			o := spec.Ops[i]
			next++
			onDone := func(now sim.Time) {
				r.OpsDone++
				step(now)
			}
			switch o.Kind {
			case scenariogen.OpPIO:
				addr, aerr := comm.GlobalHost(hostBufs[o.Dst], dstOff(i))
				if aerr != nil {
					execErr = aerr
					return
				}
				execErr = comm.PIOPut(o.Src, addr, fillBytes(spec.Seed, i, o.Bytes))
				continue
			case scenariogen.OpHostPut:
				execErr = comm.PutToHost(hostBufs[o.Dst], dstOff(i), o.Src,
					hostBufs[o.Src].Bus+pcie.Addr(srcOff(i)), units.ByteSize(o.Bytes), onDone)
			case scenariogen.OpDMA:
				execErr = comm.MemcpyPeer(gpuBufs[o.Dst][o.DstGPU], dstOff(i),
					gpuBufs[o.Src][o.SrcGPU], srcOff(i), units.ByteSize(o.Bytes), onDone)
			case scenariogen.OpStride:
				addr, aerr := comm.GlobalHost(hostBufs[o.Dst], dstOff(i))
				if aerr != nil {
					execErr = aerr
					return
				}
				bs := core.BlockStride{
					BlockLen:  units.ByteSize(o.BlockLen),
					Count:     o.Count,
					SrcStride: units.ByteSize(o.Stride),
					DstStride: units.ByteSize(o.Stride),
				}
				execErr = comm.PutBlockStride(o.Src, hostBufs[o.Src].Bus+pcie.Addr(srcOff(i)), addr, bs, onDone)
			case scenariogen.OpBarrier:
				rounds := o.Rounds
				var again func(now sim.Time)
				again = func(now sim.Time) {
					rounds--
					if rounds == 0 {
						onDone(now)
						return
					}
					col.Barrier(again)
				}
				col.Barrier(again)
			}
			return
		}
	}
	step(0)
	if execErr != nil {
		return nil, execErr
	}
	var hostStart int64
	if opt.Budgeted() {
		eng.SetHostClock(prof.HostNanos)
		eng.SetBudget(opt.MaxEvents, opt.MaxHost)
		hostStart = prof.HostNanos()
	}
	_, reason := eng.Run()
	if reason.BudgetExceeded() {
		return nil, &sim.BudgetError{
			Reason: reason,
			Events: eng.BudgetUsed(),
			Host:   time.Duration(prof.HostNanos() - hostStart),
		}
	}
	if execErr != nil {
		return nil, execErr
	}
	r.End = eng.Now()

	for i := 0; i < n; i++ {
		if cerr := comm.ChainError(i); cerr != nil {
			r.ChainErrors = append(r.ChainErrors, fmt.Sprintf("node %d: %v", i, cerr))
		}
	}

	// Capture the observable outcome: every op's destination region.
	for i, o := range spec.Ops {
		var region []byte
		var rerr error
		switch o.Kind {
		case scenariogen.OpPIO, scenariogen.OpHostPut:
			region, rerr = comm.ReadHost(hostBufs[o.Dst], dstOff(i), units.ByteSize(o.Bytes))
		case scenariogen.OpStride:
			span := o.Stride*(o.Count-1) + o.BlockLen
			region, rerr = comm.ReadHost(hostBufs[o.Dst], dstOff(i), units.ByteSize(span))
		case scenariogen.OpDMA:
			region, rerr = comm.ReadGPU(gpuBufs[o.Dst][o.DstGPU], dstOff(i), units.ByteSize(o.Bytes))
		case scenariogen.OpBarrier:
			continue
		}
		if rerr != nil {
			return nil, rerr
		}
		r.FinalMem = append(r.FinalMem, region...)
	}

	r.Summary = led.Audit(r.End)
	r.Violations = append(r.Violations, led.Violations()...)
	r.auditFabric(sc, set, led)

	r.FullyRecovered = r.OpsDone == r.OpsWaited && len(r.ChainErrors) == 0 &&
		r.Summary.HarmfulDrops == 0 && r.Summary.ParkedAtQuiesce == 0
	if r.FullyRecovered {
		r.checkEndToEnd()
	}
	r.Transcript = r.transcript(inj)
	if opt.KeepObs {
		r.Obs = set
	}
	return r, nil
}

// auditFabric runs the quiesce checks that need the hardware, not just
// the ledger: completion-tag accounting, parked-packet accounting, and
// the per-link byte conservation cross-check between the link's own
// counters, the metrics registry, and the ledger.
func (r *Result) auditFabric(sc *tcanet.SubCluster, set *obsv.Set, led *Ledger) {
	snap := set.Registry().Snapshot(r.End)
	parked := 0
	seen := make(map[*pcie.Link]bool)
	for i := 0; i < sc.Nodes(); i++ {
		chip := sc.Chip(i)
		if out := chip.DMAC().OutstandingReads(); out != 0 {
			r.Violations = append(r.Violations, Violation{
				At: r.End, Rule: "tags-outstanding", Where: chip.DevName(),
				Detail: fmt.Sprintf("%d reads still hold completion tags at quiesce", out)})
		}
		parked += chip.Parked()
		for _, id := range []peach2.PortID{peach2.PortN, peach2.PortE, peach2.PortW, peach2.PortS} {
			p := chip.Port(id)
			if !p.Connected() || seen[p.Link()] {
				continue
			}
			seen[p.Link()] = true
			name := fmt.Sprintf("link:%s.%s", chip.DevName(), p.Label)
			_, bytes := p.Link().Stats()
			for di, dir := range [2]string{"ab", "ba"} {
				counted, _ := snap.Counter("link_bytes_tx", name, obsv.Label{Key: "dir", Value: dir})
				ledger := led.LinkTotal(name, dir)
				if uint64(bytes[di]) != counted || counted != ledger {
					r.Violations = append(r.Violations, Violation{
						At: r.End, Rule: "byte-conservation", Where: name,
						Detail: fmt.Sprintf("dir %s: link says %d B, registry says %d B, ledger says %d B",
							dir, uint64(bytes[di]), counted, ledger)})
				}
			}
		}
	}
	if parked != r.Summary.ParkedAtQuiesce {
		r.Violations = append(r.Violations, Violation{
			At: r.End, Rule: "parked-accounting", Where: "fabric",
			Detail: fmt.Sprintf("chips hold %d parked TLPs, ledger has %d parked at quiesce",
				parked, r.Summary.ParkedAtQuiesce)})
	}
	// Host-internal links aren't reachable as objects from here, but the
	// registry still carries their counters: cross-check every link the
	// ledger ever saw.
	for _, key := range led.LinkKeys() {
		parts := strings.SplitN(key, "|", 2)
		r.linkLines = append(r.linkLines,
			fmt.Sprintf("link %s %s bytes=%d", parts[0], parts[1], led.LinkTotal(parts[0], parts[1])))
		counted, ok := snap.Counter("link_bytes_tx", parts[0], obsv.Label{Key: "dir", Value: parts[1]})
		if !ok || counted != led.LinkTotal(parts[0], parts[1]) {
			r.Violations = append(r.Violations, Violation{
				At: r.End, Rule: "byte-conservation", Where: parts[0],
				Detail: fmt.Sprintf("dir %s: registry says %d B (present=%v), ledger says %d B",
					parts[1], counted, ok, led.LinkTotal(parts[0], parts[1]))})
		}
	}
}

// checkEndToEnd verifies payload integrity op by op: on a fully recovered
// run every destination region must hold exactly the source pattern —
// faults may change timing, never contents.
func (r *Result) checkEndToEnd() {
	off := 0
	for i, o := range r.Spec.Ops {
		var want []byte
		switch o.Kind {
		case scenariogen.OpBarrier:
			continue
		case scenariogen.OpStride:
			span := o.Stride*(o.Count-1) + o.BlockLen
			src := fillBytes(r.Spec.Seed, i, span)
			want = make([]byte, span)
			for k := 0; k < o.Count; k++ {
				copy(want[k*o.Stride:k*o.Stride+o.BlockLen], src[k*o.Stride:k*o.Stride+o.BlockLen])
			}
		default:
			want = fillBytes(r.Spec.Seed, i, o.Bytes)
		}
		got := r.FinalMem[off : off+len(want)]
		off += len(want)
		for j := range want {
			if got[j] != want[j] {
				r.Violations = append(r.Violations, Violation{
					At: r.End, Rule: "end-to-end-payload", Where: fmt.Sprintf("op %d", i),
					Detail: fmt.Sprintf("destination byte %d is %#02x, want %#02x (first mismatch)",
						j, got[j], want[j])})
				break
			}
		}
	}
}

// transcript renders the run deterministically; byte-equal transcripts
// across runs of the same spec are the determinism invariant.
func (r *Result) transcript(inj *fault.Injector) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "spec:\n%s", scenariogen.Format(r.Spec))
	fmt.Fprintf(&b, "end=%v\n", r.End)
	fmt.Fprintf(&b, "ops_done=%d/%d\n", r.OpsDone, r.OpsWaited)
	for _, ll := range r.linkLines {
		fmt.Fprintf(&b, "%s\n", ll)
	}
	for _, ce := range r.ChainErrors {
		fmt.Fprintf(&b, "chain_error %s\n", ce)
	}
	s := r.Summary
	fmt.Fprintf(&b, "ledger born=%d delivered=%d dup_salvage=%d benign_drops=%d harmful_drops=%d parked=%d\n",
		s.Born, s.Delivered, s.DupSalvage, s.BenignDrops, s.HarmfulDrops, s.ParkedAtQuiesce)
	if inj != nil {
		fmt.Fprintf(&b, "injector %+v\n", inj.Counts())
	}
	h := fnv.New64a()
	h.Write(r.FinalMem)
	fmt.Fprintf(&b, "mem_fnv=%016x len=%d\n", h.Sum64(), len(r.FinalMem))
	fmt.Fprintf(&b, "fully_recovered=%v\n", r.FullyRecovered)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "violation %s\n", v)
	}
	return []byte(b.String())
}
