package check

import (
	"bytes"
	"strings"
	"testing"

	"tca/internal/scenariogen"
)

func mustRun(t *testing.T, spec scenariogen.Spec, opt Options) *Result {
	t.Helper()
	r, err := Run(spec, opt)
	if err != nil {
		t.Fatalf("Run: %v\nspec:\n%s", err, scenariogen.Format(spec))
	}
	return r
}

func assertClean(t *testing.T, r *Result) {
	t.Helper()
	if len(r.Violations) != 0 {
		t.Fatalf("violations:\n%s\ntranscript:\n%s", violationList(r), r.Transcript)
	}
}

func violationList(r *Result) string {
	var b strings.Builder
	for _, v := range r.Violations {
		b.WriteString("  " + v.String() + "\n")
	}
	return b.String()
}

// TestRunPerfectFabric: every op kind on a clean fabric completes, every
// invariant holds, and the payloads land exactly.
func TestRunPerfectFabric(t *testing.T) {
	spec := scenariogen.Spec{
		Seed: 7, K: 4,
		Ops: []scenariogen.Op{
			{Kind: scenariogen.OpPIO, Src: 0, Dst: 2, Bytes: 64},
			{Kind: scenariogen.OpHostPut, Src: 1, Dst: 3, Bytes: 4096},
			{Kind: scenariogen.OpDMA, Src: 0, SrcGPU: 0, Dst: 1, DstGPU: 1, Bytes: 8192},
			{Kind: scenariogen.OpStride, Src: 2, Dst: 0, BlockLen: 256, Count: 4, Stride: 512},
			{Kind: scenariogen.OpBarrier, Rounds: 2},
		},
	}
	r := mustRun(t, spec, Options{})
	assertClean(t, r)
	if !r.FullyRecovered {
		t.Fatalf("perfect fabric did not fully recover:\n%s", r.Transcript)
	}
	if r.Summary.Born == 0 || r.Summary.Delivered == 0 {
		t.Fatalf("ledger saw no traffic: %+v", r.Summary)
	}
	if r.OpsDone != r.OpsWaited || r.OpsDone != 4 {
		t.Fatalf("ops %d/%d", r.OpsDone, r.OpsWaited)
	}
}

// TestRunDualRing: the Port-S coupled topology under the same checks.
func TestRunDualRing(t *testing.T) {
	spec := scenariogen.Spec{
		Seed: 9, DualRing: true, K: 2,
		Ops: []scenariogen.Op{
			{Kind: scenariogen.OpHostPut, Src: 0, Dst: 3, Bytes: 2048}, // crosses the S coupling
			{Kind: scenariogen.OpDMA, Src: 3, SrcGPU: 1, Dst: 1, DstGPU: 0, Bytes: 1024},
			{Kind: scenariogen.OpBarrier, Rounds: 1},
		},
	}
	r := mustRun(t, spec, Options{})
	assertClean(t, r)
	if !r.FullyRecovered {
		t.Fatalf("dual ring did not recover:\n%s", r.Transcript)
	}
}

// TestRunLinkDeathMidChain: a permanent cut while a DMA chain is in
// flight with outstanding completions. The DLL salvages the replay
// buffer, failover reroutes the ring, parked traffic re-injects — and the
// conservation ledger must balance to the byte.
func TestRunLinkDeathMidChain(t *testing.T) {
	spec := scenariogen.Spec{
		Seed: 3, K: 4,
		// Cut node 0's eastward cable 5us in, while op 0's chain is
		// still streaming 0->1 over exactly that cable.
		Faults: "linkdown:0e:5us",
		Ops: []scenariogen.Op{
			{Kind: scenariogen.OpDMA, Src: 0, SrcGPU: 0, Dst: 1, DstGPU: 0, Bytes: 65536},
			{Kind: scenariogen.OpHostPut, Src: 1, Dst: 2, Bytes: 4096},
		},
	}
	r := mustRun(t, spec, Options{})
	assertClean(t, r)
	if got := r.Summary; got.Born == 0 {
		t.Fatalf("no traffic: %+v", got)
	}
}

// TestRunDoubleFailover: a second cut in the same ring after the first
// reroute. There may be no surviving arc; data loss must be attributed
// (harmful drops or parked-at-quiesce), never silent — and the ledger
// must still balance.
func TestRunDoubleFailover(t *testing.T) {
	spec := scenariogen.Spec{
		Seed: 5, K: 4,
		Faults: "linkdown:0e:5us,linkdown:2e:200us",
		Ops: []scenariogen.Op{
			{Kind: scenariogen.OpDMA, Src: 0, SrcGPU: 0, Dst: 1, DstGPU: 0, Bytes: 65536},
			{Kind: scenariogen.OpHostPut, Src: 0, Dst: 2, Bytes: 32768},
			{Kind: scenariogen.OpHostPut, Src: 3, Dst: 1, Bytes: 32768},
		},
	}
	r := mustRun(t, spec, Options{})
	assertClean(t, r)
}

// TestRunDeterminism: the same spec twice, byte-identical transcripts —
// including a faulty scenario exercising replay and failover.
func TestRunDeterminism(t *testing.T) {
	for _, spec := range []scenariogen.Spec{
		scenariogen.Generate(101),
		{Seed: 3, K: 4, Faults: "linkdown:0e:5us,ber:1e-07",
			Ops: []scenariogen.Op{{Kind: scenariogen.OpDMA, Src: 0, Dst: 1, Bytes: 65536}}},
	} {
		a := mustRun(t, spec, Options{})
		b := mustRun(t, spec, Options{})
		if !bytes.Equal(a.Transcript, b.Transcript) {
			t.Fatalf("nondeterministic transcript for spec:\n%s\nrun A:\n%s\nrun B:\n%s",
				scenariogen.Format(spec), a.Transcript, b.Transcript)
		}
	}
}

// TestRunDiffFaultsDontChangeMemory: the full differential protocol on a
// recoverable fault schedule — final memory must match the perfect run.
func TestRunDiffFaultsDontChangeMemory(t *testing.T) {
	spec := scenariogen.Spec{
		Seed: 3, K: 4,
		Faults: "linkdown:0e:5us",
		Ops: []scenariogen.Op{
			{Kind: scenariogen.OpDMA, Src: 0, SrcGPU: 0, Dst: 1, DstGPU: 0, Bytes: 65536},
			{Kind: scenariogen.OpHostPut, Src: 1, Dst: 2, Bytes: 4096},
		},
	}
	d, err := RunDiff(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Failed() {
		t.Fatalf("differential failed:\n%s", strings.Join(d.Failures, "\n"))
	}
	if !d.DeterminismOK {
		t.Fatal("determinism check did not pass")
	}
	if d.Faulty.FullyRecovered && !d.MemoryChecked {
		t.Fatal("memory diff skipped despite full recovery")
	}
}

// TestRunBreakSalvageDetected: the deliberately injected conservation bug
// — link death discards its salvageable TLPs without attribution — must
// surface as lost-without-attribution, and the shrinker must reduce the
// failing spec while keeping it failing.
func TestRunBreakSalvageDetected(t *testing.T) {
	spec := scenariogen.Spec{
		Seed: 3, K: 4,
		Faults: "linkdown:0e:5us",
		Ops: []scenariogen.Op{
			{Kind: scenariogen.OpHostPut, Src: 1, Dst: 2, Bytes: 512},
			{Kind: scenariogen.OpDMA, Src: 0, SrcGPU: 0, Dst: 1, DstGPU: 0, Bytes: 65536},
			{Kind: scenariogen.OpBarrier, Rounds: 1},
		},
	}
	r := mustRun(t, spec, Options{BreakSalvage: true})
	found := false
	for _, v := range r.Violations {
		if v.Rule == "lost-without-attribution" {
			found = true
		}
	}
	if !found {
		t.Fatalf("broken salvage not detected; violations:\n%s\ntranscript:\n%s",
			violationList(r), r.Transcript)
	}

	failing := func(c scenariogen.Spec) bool {
		rr, err := Run(c, Options{BreakSalvage: true})
		if err != nil {
			return false
		}
		for _, v := range rr.Violations {
			if v.Rule == "lost-without-attribution" {
				return true
			}
		}
		return false
	}
	small := scenariogen.Shrink(spec, failing)
	if !failing(small) {
		t.Fatal("shrunk spec no longer reproduces the bug")
	}
	if len(small.Ops) >= len(spec.Ops) && small.Ops[0].Bytes >= 65536 {
		t.Fatalf("shrinker made no progress:\n%s", scenariogen.Format(small))
	}
}

// TestRunGeneratedCorpus: a bounded seeded corpus end to end — the CI
// smoke in miniature. Every scenario must pass the full differential.
func TestRunGeneratedCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep in -short mode")
	}
	for seed := int64(0); seed < 12; seed++ {
		spec := scenariogen.Generate(seed)
		d, err := RunDiff(spec, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v\nspec:\n%s", seed, err, scenariogen.Format(spec))
		}
		if d.Failed() {
			t.Fatalf("seed %d failed:\n%s\nspec:\n%s", seed,
				strings.Join(d.Failures, "\n"), scenariogen.Format(spec))
		}
	}
}
