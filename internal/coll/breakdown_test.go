package coll

import (
	"strings"
	"testing"

	"tca/internal/core"
	"tca/internal/obsv"
	"tca/internal/sim"
	"tca/internal/tcanet"
)

// TestBarrierBreakdowns runs a traced barrier on an instrumented 4-node
// ring and checks every transaction's hop breakdown: hops are contiguous
// (each hop starts where the previous ended), the hop sum equals the span
// window, and at least one flag store's span crosses a ring chip — the
// dissemination rounds reach distance-2 partners through a forwarding
// PEACH2.
func TestBarrierBreakdowns(t *testing.T) {
	eng := sim.NewEngine()
	sc, err := tcanet.BuildRing(eng, 4, tcanet.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	set := obsv.NewSet(8192)
	sc.Instrument(set)
	comm, err := core.NewComm(sc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(comm)
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	c.Barrier(func(now sim.Time) { fired++ })
	eng.Run()
	if fired != 1 {
		t.Fatalf("barrier fired %d times", fired)
	}

	byTxn := map[uint64][]obsv.Event{}
	for _, ev := range set.Recorder().Events() {
		byTxn[ev.Txn] = append(byTxn[ev.Txn], ev)
	}
	if len(byTxn) == 0 {
		t.Fatal("instrumented barrier recorded no transactions")
	}

	spans, forwarded := 0, false
	for txn, events := range byTxn {
		hops := obsv.Breakdown(events)
		if len(hops) == 0 {
			continue
		}
		spans++
		first, last := obsv.SpanWindow(events)
		if got, want := obsv.TotalLatency(hops), last.Sub(first); got != want {
			t.Errorf("txn %d: hop sum %v != span window %v", txn, got, want)
		}
		for i := 1; i < len(hops); i++ {
			if hops[i].From != hops[i-1].To {
				t.Errorf("txn %d: hop %d starts at %v, previous ended at %v",
					txn, i, hops[i].From, hops[i-1].To)
			}
		}
		// A span that enters one chip's port and leaves another chip's is a
		// forwarded (multi-hop ring) store.
		chips := map[string]bool{}
		for _, ev := range events {
			if ev.Stage == obsv.StagePortIn && strings.HasPrefix(ev.Where, "peach2-") {
				chips[ev.Where] = true
			}
		}
		if len(chips) >= 2 {
			forwarded = true
		}
	}
	if spans == 0 {
		t.Fatal("no multi-event spans recorded")
	}
	if !forwarded {
		t.Error("no barrier store crossed a forwarding chip — distance-2 rounds should")
	}
}
