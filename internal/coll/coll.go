// Package coll provides MPI-free collective operations over the TCA
// programming interface — the "API for using TCA" the paper's conclusion
// announces (§VI). Data moves by chained-DMA puts through the PEACH2 ring;
// synchronization is PIO flag stores; nothing touches an MPI stack ("as a
// result, the overhead of MPI protocol stack can be eliminated", §V).
//
// All collectives operate on registered host buffers and complete through
// a callback, like the rest of the simulated driver world. Each collective
// owns its mailbox layout, so different collectives (or repeated runs of
// the same one) never share flags.
package coll

import (
	"encoding/binary"
	"fmt"
	"math"

	"tca/internal/core"
	"tca/internal/obsv"
	"tca/internal/pcie"
	"tca/internal/sim"
	"tca/internal/units"
)

// Communicator runs collectives over a core.Comm.
type Communicator struct {
	comm  *core.Comm
	n     int
	seq   int // distinguishes successive collectives' mailboxes
	boxes []mailbox

	// Observability (nil handles when the sub-cluster is uninstrumented).
	mBarriers   *obsv.Counter
	mBcasts     *obsv.Counter
	mAllreduces *obsv.Counter
	mSignals    *obsv.Counter
}

// mailbox is one node's inbox for collective traffic: a staging area and a
// flag word per collective generation.
type mailbox struct {
	buf core.HostBuffer
}

// mailboxSize bounds one collective's per-node staging space.
const mailboxSize = 256 * units.KiB

// flagBytes is the synchronization word size.
const flagBytes = 8

// New prepares per-node mailboxes on every node of the communicator's
// sub-cluster.
func New(comm *core.Comm) (*Communicator, error) {
	n := comm.SubCluster().Nodes()
	c := &Communicator{comm: comm, n: n}
	for i := 0; i < n; i++ {
		buf, err := comm.AllocHostBuffer(i, mailboxSize+flagBytes)
		if err != nil {
			return nil, fmt.Errorf("coll: node %d mailbox: %w", i, err)
		}
		c.boxes = append(c.boxes, mailbox{buf: buf})
	}
	reg := comm.SubCluster().Observability().Registry()
	c.mBarriers = reg.Counter("coll_barriers", "coll")
	c.mBcasts = reg.Counter("coll_bcasts", "coll")
	c.mAllreduces = reg.Counter("coll_allreduces", "coll")
	c.mSignals = reg.Counter("coll_signals", "coll")
	return c, nil
}

// Size reports the number of participating nodes.
func (c *Communicator) Size() int { return c.n }

// flagAddr is the bus address of node i's flag word.
func (c *Communicator) flagAddr(i int) pcie.Addr {
	return c.boxes[i].buf.Bus + pcie.Addr(mailboxSize)
}

// watchFlag registers a handler for writes to node i's flag word and
// returns a reader for the current value.
func (c *Communicator) watchFlag(i int, fn func(now sim.Time, value uint64)) {
	node := i
	c.comm.WaitFlag(node, c.flagAddr(node), func(now sim.Time) {
		raw, err := c.comm.ReadHost(c.boxes[node].buf, mailboxSize, flagBytes)
		if err != nil {
			panic(fmt.Sprintf("coll: flag read: %v", err))
		}
		fn(now, binary.LittleEndian.Uint64(raw))
	})
}

// signal writes value into dst's flag word from src's CPU.
func (c *Communicator) signal(src, dst int, value uint64) {
	c.mSignals.Inc()
	g, err := c.comm.GlobalHost(c.boxes[dst].buf, mailboxSize)
	if err != nil {
		panic(fmt.Sprintf("coll: %v", err))
	}
	if err := c.comm.WriteFlag(src, g, value); err != nil {
		panic(fmt.Sprintf("coll: %v", err))
	}
}

// pioCutover is the payload size below which data rides PIO stores instead
// of a DMA chain: the per-chain activation (~3 µs of doorbell, descriptor
// fetch and interrupt) dwarfs sub-kilobyte payloads, which is exactly why
// the paper calls PIO "useful for the short message transfer" (§III-F1).
const pioCutover = 2 * units.KiB

// putThenSignal moves n bytes from src's buffer into dst's mailbox at
// mailbox offset off, then raises dst's flag with value. Small payloads go
// by PIO — the data stores and the flag store follow the same FIFO path,
// so posted-write ordering makes the flag arrive last. Large payloads go by
// chained DMA, with the flag written after the chain's completion
// interrupt (the driver-level flush guarantee).
func (c *Communicator) putThenSignal(src int, srcBus pcie.Addr, dst int, off units.ByteSize, n units.ByteSize, value uint64) {
	if n <= pioCutover {
		data, err := c.comm.ReadHostBus(src, srcBus, n)
		if err != nil {
			panic(fmt.Sprintf("coll: pio source: %v", err))
		}
		g, err := c.comm.GlobalHost(c.boxes[dst].buf, off)
		if err != nil {
			panic(fmt.Sprintf("coll: %v", err))
		}
		if err := c.comm.PIOPut(src, g, data); err != nil {
			panic(fmt.Sprintf("coll: pio put: %v", err))
		}
		c.signal(src, dst, value)
		return
	}
	err := c.comm.PutToHost(c.boxes[dst].buf, off, src, srcBus, n, func(sim.Time) {
		c.signal(src, dst, value)
	})
	if err != nil {
		panic(fmt.Sprintf("coll: put: %v", err))
	}
}

// Barrier synchronizes all nodes: a dissemination barrier over PIO flags
// (log2(n) rounds, each node signalling rank+2^k). done fires on every
// node's completion; the callback receives the completion time.
func (c *Communicator) Barrier(done func(now sim.Time)) {
	c.mBarriers.Inc()
	if c.n == 1 {
		done(0)
		return
	}
	c.seq++
	myGen := uint64(c.seq)
	gen := myGen << 32

	rounds := 0
	for 1<<rounds < c.n {
		rounds++
	}
	// arrived[i] counts flags seen per round on node i.
	type state struct {
		round int
		seen  map[uint64]bool
	}
	states := make([]*state, c.n)
	for i := range states {
		states[i] = &state{seen: map[uint64]bool{}}
	}
	finished := 0

	// Dissemination: a node may emit its round-k signal only once it has
	// observed round k-1 — the causal chain that makes it a barrier.
	emit := func(i, k int) {
		partner := (i + (1 << k)) % c.n
		c.signal(i, partner, gen|uint64(k))
	}
	var advance func(i int, now sim.Time)
	advance = func(i int, now sim.Time) {
		st := states[i]
		for {
			if st.round == rounds {
				finished++
				if finished == c.n {
					done(now)
				}
				return
			}
			want := gen | uint64(st.round)
			if !st.seen[want] {
				return
			}
			st.round++
			if st.round < rounds {
				emit(i, st.round)
			}
		}
	}
	for i := 0; i < c.n; i++ {
		i := i
		c.watchFlag(i, func(now sim.Time, v uint64) {
			if v>>32 != myGen {
				return // another collective's generation
			}
			states[i].seen[v] = true
			advance(i, now)
		})
	}
	// Round 0 enters immediately on every node.
	for i := 0; i < c.n; i++ {
		emit(i, 0)
	}
}

// Bcast copies n bytes from root's buffer (rootBus) into every node's
// destination buffer (dsts[i], which may be the same registered buffer per
// node) along the ring — a pipeline broadcast. done fires when the last
// node has the data.
func (c *Communicator) Bcast(root int, rootBus pcie.Addr, dsts []core.HostBuffer, n units.ByteSize, done func(now sim.Time)) error {
	if len(dsts) != c.n {
		return fmt.Errorf("coll: Bcast needs %d destination buffers, got %d", c.n, len(dsts))
	}
	if n <= 0 || n > mailboxSize {
		return fmt.Errorf("coll: Bcast of %v exceeds the %v mailbox", n, units.ByteSize(mailboxSize))
	}
	c.mBcasts.Inc()
	c.seq++
	gen := uint64(c.seq) << 32

	// Forward hop by hop: root -> root+1 -> ... -> root+n-1.
	var hop func(from int, fromBus pcie.Addr, dist int, now sim.Time)
	hop = func(from int, fromBus pcie.Addr, dist int, now sim.Time) {
		if dist == c.n-1 {
			done(now)
			return
		}
		to := (from + 1) % c.n
		c.watchFlag(to, func(now sim.Time, v uint64) {
			if v != gen|uint64(dist) {
				return
			}
			// Land the staged data in the local destination, then
			// forward from the *local copy* (store-and-forward ring
			// pipeline).
			data, err := c.comm.ReadHost(c.boxes[to].buf, 0, n)
			if err != nil {
				panic(err)
			}
			if err := c.comm.WriteHost(dsts[to], 0, data); err != nil {
				panic(err)
			}
			hop(to, dsts[to].Bus, dist+1, now)
		})
		c.putThenSignal(from, fromBus, to, 0, n, gen|uint64(dist))
	}
	hop(root, rootBus, 0, 0)
	return nil
}

// ringStep is one send of the allreduce/allgather schedule.
func chunkToSend(rank, step, n int) int {
	if step <= n-1 { // reduce-scatter
		return ((rank-(step-1))%n + n) % n
	}
	return ((rank+1-(step-n))%n + n) % n // allgather
}

// Allreduce sums vectors of count float64 across all nodes, in place in
// each node's registered buffer bufs[i] (which must hold count*8 bytes and
// count must divide evenly by Size()). The ring algorithm of Patarasuk &
// Yuan: n-1 reduce-scatter steps then n-1 allgather steps, 2(n-1) puts per
// node, bandwidth-optimal. done fires when every node holds the sum.
func (c *Communicator) Allreduce(bufs []core.HostBuffer, count int, done func(now sim.Time)) error {
	n := c.n
	if len(bufs) != n {
		return fmt.Errorf("coll: Allreduce needs %d buffers, got %d", n, len(bufs))
	}
	if count%n != 0 || count <= 0 {
		return fmt.Errorf("coll: element count %d must be a positive multiple of %d", count, n)
	}
	chunkN := count / n
	chunk := units.ByteSize(chunkN * 8)
	if chunk > mailboxSize {
		return fmt.Errorf("coll: chunk %v exceeds the %v mailbox", chunk, units.ByteSize(mailboxSize))
	}
	c.mAllreduces.Inc()
	c.seq++
	myGen := uint64(c.seq)
	gen := myGen << 32
	finished := 0

	type state struct{ recvd int }
	states := make([]*state, n)
	for i := range states {
		states[i] = &state{}
	}

	send := func(rank, step int) {
		ci := chunkToSend(rank, step, n)
		c.putThenSignal(rank, bufs[rank].Bus+pcie.Addr(ci*int(chunk)), (rank+1)%n, 0, chunk, gen|uint64(step))
	}

	for i := 0; i < n; i++ {
		i := i
		c.watchFlag(i, func(now sim.Time, v uint64) {
			if v>>32 != myGen {
				return
			}
			step := int(v & 0xffffffff)
			st := states[i]
			if step != st.recvd+1 {
				panic(fmt.Sprintf("coll: node %d got step %d at %d", i, step, st.recvd))
			}
			st.recvd = step
			ci := chunkToSend((i-1+n)%n, step, n)
			in, err := c.comm.ReadHost(c.boxes[i].buf, 0, chunk)
			if err != nil {
				panic(err)
			}
			if step <= n-1 {
				cur, err := c.comm.ReadHost(bufs[i], units.ByteSize(ci*int(chunk)), chunk)
				if err != nil {
					panic(err)
				}
				addF64(cur, in)
				in = cur
			}
			if err := c.comm.WriteHost(bufs[i], units.ByteSize(ci*int(chunk)), in); err != nil {
				panic(err)
			}
			if step == 2*(n-1) {
				finished++
				if finished == n {
					done(now)
				}
				return
			}
			send(i, step+1)
		})
	}
	for i := 0; i < n; i++ {
		send(i, 1)
	}
	return nil
}

// addF64 accumulates b into a, elementwise, as float64.
func addF64(a, b []byte) {
	for j := 0; j+8 <= len(a); j += 8 {
		x := frombits(a[j:])
		y := frombits(b[j:])
		binary.LittleEndian.PutUint64(a[j:], tobits(x+y))
	}
}

func frombits(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}
func tobits(f float64) uint64 { return math.Float64bits(f) }
