package coll

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"tca/internal/core"
	"tca/internal/pcie"
	"tca/internal/sim"
	"tca/internal/tcanet"
	"tca/internal/units"
)

func newComm(t *testing.T, n int) (*sim.Engine, *core.Comm, *Communicator) {
	t.Helper()
	eng := sim.NewEngine()
	sc, err := tcanet.BuildRing(eng, n, tcanet.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	comm, err := core.NewComm(sc)
	if err != nil {
		t.Fatal(err)
	}
	comm.SetMode(core.Pipelined)
	c, err := New(comm)
	if err != nil {
		t.Fatal(err)
	}
	return eng, comm, c
}

func TestBarrierCompletes(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		eng, _, c := newComm(t, n)
		var at sim.Time
		fired := 0
		c.Barrier(func(now sim.Time) { at = now; fired++ })
		eng.Run()
		if fired != 1 {
			t.Fatalf("n=%d: barrier completion fired %d times", n, fired)
		}
		if at == 0 {
			t.Fatalf("n=%d: barrier completed at time 0 — no communication happened", n)
		}
	}
}

func TestBarrierLatencyScalesWithRounds(t *testing.T) {
	// log2(8)=3 rounds must cost more than log2(2)=1 round.
	measure := func(n int) sim.Time {
		eng, _, c := newComm(t, n)
		var at sim.Time
		c.Barrier(func(now sim.Time) { at = now })
		eng.Run()
		return at
	}
	if l2, l8 := measure(2), measure(8); l8 <= l2 {
		t.Fatalf("8-node barrier (%v) not slower than 2-node (%v)", l8, l2)
	}
}

func TestBarrierRepeatable(t *testing.T) {
	eng, _, c := newComm(t, 4)
	for rep := 0; rep < 3; rep++ {
		fired := false
		c.Barrier(func(sim.Time) { fired = true })
		eng.Run()
		if !fired {
			t.Fatalf("barrier %d never completed", rep)
		}
	}
}

func TestBcastDeliversEverywhere(t *testing.T) {
	for _, n := range []int{2, 4, 7} {
		eng, comm, c := newComm(t, n)
		const size = 8 * units.KiB
		var dsts []core.HostBuffer
		for i := 0; i < n; i++ {
			b, err := comm.AllocHostBuffer(i, size)
			if err != nil {
				t.Fatal(err)
			}
			dsts = append(dsts, b)
		}
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i*13 + 7)
		}
		root := 1 % n
		if err := comm.WriteHost(dsts[root], 0, payload); err != nil {
			t.Fatal(err)
		}
		var doneAt sim.Time
		if err := c.Bcast(root, dsts[root].Bus, dsts, size, func(now sim.Time) { doneAt = now }); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if doneAt == 0 {
			t.Fatalf("n=%d: broadcast never completed", n)
		}
		for i := 0; i < n; i++ {
			got, err := comm.ReadHost(dsts[i], 0, size)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("n=%d: node %d has wrong broadcast data", n, i)
			}
		}
	}
}

func TestBcastValidation(t *testing.T) {
	_, comm, c := newComm(t, 2)
	b, _ := comm.AllocHostBuffer(0, 64)
	if err := c.Bcast(0, b.Bus, []core.HostBuffer{b}, 64, func(sim.Time) {}); err == nil {
		t.Fatal("wrong destination count accepted")
	}
	two := []core.HostBuffer{b, b}
	if err := c.Bcast(0, b.Bus, two, 0, func(sim.Time) {}); err == nil {
		t.Fatal("zero-byte broadcast accepted")
	}
	if err := c.Bcast(0, b.Bus, two, mailboxSize+1, func(sim.Time) {}); err == nil {
		t.Fatal("oversized broadcast accepted")
	}
}

func fillVec(t *testing.T, comm *core.Comm, b core.HostBuffer, rank, count int) {
	t.Helper()
	buf := make([]byte, count*8)
	for j := 0; j < count; j++ {
		binary.LittleEndian.PutUint64(buf[j*8:], math.Float64bits(float64(rank+1)*100+float64(j)))
	}
	if err := comm.WriteHost(b, 0, buf); err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSums(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		count := n * 32
		eng, comm, c := newComm(t, n)
		var bufs []core.HostBuffer
		for i := 0; i < n; i++ {
			b, err := comm.AllocHostBuffer(i, units.ByteSize(count*8))
			if err != nil {
				t.Fatal(err)
			}
			fillVec(t, comm, b, i, count)
			bufs = append(bufs, b)
		}
		var doneAt sim.Time
		if err := c.Allreduce(bufs, count, func(now sim.Time) { doneAt = now }); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if doneAt == 0 {
			t.Fatalf("n=%d: allreduce never completed", n)
		}
		// sum over ranks of (rank+1)*100 + j = 100*n(n+1)/2 + n*j
		base := 100 * float64(n*(n+1)) / 2
		for i := 0; i < n; i++ {
			got, err := comm.ReadHost(bufs[i], 0, units.ByteSize(count*8))
			if err != nil {
				t.Fatal(err)
			}
			for j := 0; j < count; j++ {
				v := math.Float64frombits(binary.LittleEndian.Uint64(got[j*8:]))
				want := base + float64(n*j)
				if v != want {
					t.Fatalf("n=%d node %d elem %d: got %v want %v", n, i, j, v, want)
				}
			}
		}
	}
}

func TestAllreduceValidation(t *testing.T) {
	_, comm, c := newComm(t, 4)
	var bufs []core.HostBuffer
	for i := 0; i < 4; i++ {
		b, _ := comm.AllocHostBuffer(i, 4096)
		bufs = append(bufs, b)
	}
	if err := c.Allreduce(bufs[:2], 64, nil); err == nil {
		t.Fatal("wrong buffer count accepted")
	}
	if err := c.Allreduce(bufs, 63, nil); err == nil {
		t.Fatal("non-divisible count accepted")
	}
	if err := c.Allreduce(bufs, 0, nil); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestChunkToSendSchedule(t *testing.T) {
	// The ring schedule must deliver each chunk exactly once per step and
	// complete each chunk's reduction before its allgather circulation.
	n := 8
	for rank := 0; rank < n; rank++ {
		seen := map[int]int{}
		for s := 1; s <= 2*(n-1); s++ {
			ci := chunkToSend(rank, s, n)
			if ci < 0 || ci >= n {
				t.Fatalf("rank %d step %d: chunk %d out of range", rank, s, ci)
			}
			seen[ci]++
		}
		// Over the full schedule each chunk is sent at most twice (once
		// in each phase) and the node's own reduced chunk exactly twice.
		for ci, k := range seen {
			if k > 2 {
				t.Fatalf("rank %d sends chunk %d %d times", rank, ci, k)
			}
		}
	}
	// Cross-rank consistency: at each step, receiver expects exactly what
	// the sender emits (the identity the implementation relies on).
	for s := 1; s <= 2*(n-1); s++ {
		for rank := 0; rank < n; rank++ {
			sent := chunkToSend(rank, s, n)
			recvView := chunkToSend(((rank+1)-1+n)%n, s, n)
			if sent != recvView {
				t.Fatalf("step %d: rank %d sends %d but receiver computes %d", s, rank, sent, recvView)
			}
		}
	}
}

func TestCollectivesUseNoMPI(t *testing.T) {
	// Structural assertion of the §V claim: the collective path touches
	// only TCA machinery. The proof here is byte-level: every data byte
	// that moved arrived via PEACH2 chips (chip counters), none via an
	// IB fabric (none exists in this build).
	eng, comm, c := newComm(t, 4)
	var bufs []core.HostBuffer
	count := 4 * 16
	for i := 0; i < 4; i++ {
		b, _ := comm.AllocHostBuffer(i, units.ByteSize(count*8))
		fillVec(t, comm, b, i, count)
		bufs = append(bufs, b)
	}
	if err := c.Allreduce(bufs, count, func(sim.Time) {}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	var forwarded uint64
	for i := 0; i < 4; i++ {
		st := comm.SubCluster().Chip(i).Stats()
		for _, f := range st.Forwarded {
			forwarded += f
		}
	}
	if forwarded == 0 {
		t.Fatal("no packets crossed the PEACH2 chips — collective did not use TCA")
	}
}

func TestFlagAddrDisjointFromStaging(t *testing.T) {
	_, _, c := newComm(t, 2)
	for i := 0; i < 2; i++ {
		staging := pcie.Range{Base: c.boxes[i].buf.Bus, Size: uint64(mailboxSize)}
		if staging.Contains(c.flagAddr(i)) {
			t.Fatalf("node %d flag overlaps staging", i)
		}
	}
}

// TestRepeatedCollectivesOnOneCommunicator locks the generation-isolation
// fix: successive collectives re-use the same mailboxes and flag words, and
// stale watchers must ignore newer generations.
func TestRepeatedCollectivesOnOneCommunicator(t *testing.T) {
	eng, comm, c := newComm(t, 4)
	count := 4 * 8
	var bufs []core.HostBuffer
	for i := 0; i < 4; i++ {
		b, _ := comm.AllocHostBuffer(i, units.ByteSize(count*8))
		bufs = append(bufs, b)
	}
	for rep := 0; rep < 3; rep++ {
		for i := 0; i < 4; i++ {
			fillVec(t, comm, bufs[i], i, count)
		}
		fired := false
		if err := c.Allreduce(bufs, count, func(sim.Time) { fired = true }); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if !fired {
			t.Fatalf("allreduce %d never completed", rep)
		}
		// Interleave a barrier to stir the flag space.
		bFired := false
		c.Barrier(func(sim.Time) { bFired = true })
		eng.Run()
		if !bFired {
			t.Fatalf("barrier %d never completed", rep)
		}
	}
}

// TestBcastLatencyScalesWithHops verifies the pipeline broadcast costs one
// store-and-forward leg per hop.
func TestBcastLatencyScalesWithHops(t *testing.T) {
	measure := func(n int) sim.Time {
		eng, comm, c := newComm(t, n)
		var dsts []core.HostBuffer
		for i := 0; i < n; i++ {
			b, _ := comm.AllocHostBuffer(i, units.KiB)
			dsts = append(dsts, b)
		}
		if err := comm.WriteHost(dsts[0], 0, make([]byte, units.KiB)); err != nil {
			t.Fatal(err)
		}
		var at sim.Time
		if err := c.Bcast(0, dsts[0].Bus, dsts, units.KiB, func(now sim.Time) { at = now }); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if at == 0 {
			t.Fatal("no completion")
		}
		return at
	}
	l2, l8 := measure(2), measure(8)
	// 7 legs vs 1 leg: expect roughly 7× (±50% for per-leg constants).
	ratio := float64(l8) / float64(l2)
	if ratio < 4 || ratio > 10 {
		t.Fatalf("8-node bcast %v vs 2-node %v (ratio %.1f) — not hop-linear", l8, l2, ratio)
	}
}
