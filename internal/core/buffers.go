package core

import (
	"fmt"

	"tca/internal/gpu"
	"tca/internal/pcie"
	"tca/internal/units"
)

// HostBuffer is a registered region of one node's host memory, reachable
// both locally (bus address) and from the whole sub-cluster (global
// address).
type HostBuffer struct {
	Node int
	Bus  pcie.Addr
	Len  units.ByteSize
}

// AllocHostBuffer reserves DMA-capable host memory on a node.
func (c *Comm) AllocHostBuffer(node int, n units.ByteSize) (HostBuffer, error) {
	bus, err := c.driverOf(node).node.AllocDMABuffer(n)
	if err != nil {
		return HostBuffer{}, err
	}
	return HostBuffer{Node: node, Bus: bus, Len: n}, nil
}

// GlobalHost returns the sub-cluster-wide address of offset off inside the
// buffer.
func (c *Comm) GlobalHost(b HostBuffer, off units.ByteSize) (pcie.Addr, error) {
	if off < 0 || off >= b.Len {
		return 0, fmt.Errorf("core: offset %d outside host buffer of %v", off, b.Len)
	}
	return c.sc.GlobalHostAddr(b.Node, b.Bus+pcie.Addr(off))
}

// GPUBuffer is a GPU allocation that has gone through the full GPUDirect
// RDMA sequence (§IV-A2): allocated, tokenized, pinned into BAR1 — so both
// the local PEACH2 and, via the global map, every other node can reach it.
type GPUBuffer struct {
	Node int
	GPU  int
	Ptr  gpu.DevicePtr
	Bus  pcie.Addr
	Len  units.ByteSize
}

// RegisterGPUBuffer allocates n bytes on (node, gpuIdx) and pins them:
// cuMemAlloc → cuPointerGetAttribute(P2P_TOKENS) → P2P-driver pin.
func (c *Comm) RegisterGPUBuffer(node, gpuIdx int, n units.ByteSize) (GPUBuffer, error) {
	if gpuIdx < 0 || gpuIdx > 1 {
		return GPUBuffer{}, fmt.Errorf("core: GPU %d is across QPI — PEACH2 reaches GPU0/GPU1 only (§III-C)", gpuIdx)
	}
	g := c.driverOf(node).node.GPU(gpuIdx)
	ptr, err := g.MemAlloc(n)
	if err != nil {
		return GPUBuffer{}, err
	}
	tok, err := g.PointerGetAttribute(ptr)
	if err != nil {
		return GPUBuffer{}, err
	}
	bus, err := g.Pin(tok)
	if err != nil {
		return GPUBuffer{}, err
	}
	return GPUBuffer{Node: node, GPU: gpuIdx, Ptr: ptr, Bus: bus, Len: n}, nil
}

// GlobalGPU returns the sub-cluster-wide address of offset off inside the
// buffer.
func (c *Comm) GlobalGPU(b GPUBuffer, off units.ByteSize) (pcie.Addr, error) {
	if off < 0 || off >= b.Len {
		return 0, fmt.Errorf("core: offset %d outside GPU buffer of %v", off, b.Len)
	}
	return c.sc.GlobalGPUAddr(b.Node, b.GPU, b.Bus+pcie.Addr(off))
}

// WriteGPU initializes GPU buffer contents host-side (a cudaMemcpyHtoD
// whose cost the caller accounts separately via the CopyEngine when it
// matters; setup data for experiments lands directly).
func (c *Comm) WriteGPU(b GPUBuffer, off units.ByteSize, data []byte) error {
	g := c.driverOf(b.Node).node.GPU(b.GPU)
	return g.Memory().Write(uint64(b.Ptr)+uint64(off), data)
}

// ReadGPU reads GPU buffer contents for verification.
func (c *Comm) ReadGPU(b GPUBuffer, off units.ByteSize, n units.ByteSize) ([]byte, error) {
	g := c.driverOf(b.Node).node.GPU(b.GPU)
	return g.Memory().ReadBytes(uint64(b.Ptr)+uint64(off), n)
}

// WriteHost initializes host buffer contents.
func (c *Comm) WriteHost(b HostBuffer, off units.ByteSize, data []byte) error {
	return c.driverOf(b.Node).node.WriteLocal(b.Bus+pcie.Addr(off), data)
}

// ReadHost reads host buffer contents for verification.
func (c *Comm) ReadHost(b HostBuffer, off, n units.ByteSize) ([]byte, error) {
	return c.driverOf(b.Node).node.ReadLocal(b.Bus+pcie.Addr(off), n)
}

// ReadHostBus reads node-local host memory by raw bus address — what the
// CPU does before PIO-storing its own data somewhere else.
func (c *Comm) ReadHostBus(node int, bus pcie.Addr, n units.ByteSize) ([]byte, error) {
	return c.driverOf(node).node.ReadLocal(bus, n)
}
