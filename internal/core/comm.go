// Package core implements the TCA programming interface of §III-H: a
// CUDA-flavoured API in which remote GPUs look like peers — the paper's
// "function similar to cudaMemcpyPeer ... available for the target node ID
// in addition to the GPU IDs". It drives the PEACH2 chips exactly the way
// the real driver would: descriptor tables written into host memory,
// register stores over the PIO path, completion interrupts, and chain
// queueing per chip.
package core

import (
	"fmt"

	"tca/internal/host"
	"tca/internal/obsv"
	"tca/internal/pcie"
	"tca/internal/peach2"
	"tca/internal/sim"
	"tca/internal/tcanet"
	"tca/internal/units"
)

// DMAMode selects how host/GPU-sourced remote transfers run.
type DMAMode int

// DMA modes.
const (
	// TwoPhase is the paper's current DMAC (§IV-B2): stage into PEACH2's
	// internal memory with a DMA read, then write out to the remote node
	// — two activations, serious overhead.
	TwoPhase DMAMode = iota
	// Pipelined is the paper's announced new DMAC: one descriptor whose
	// read and write sides overlap.
	Pipelined
)

// String names the mode.
func (m DMAMode) String() string {
	if m == Pipelined {
		return "pipelined"
	}
	return "two-phase"
}

// scratchSize bounds a staged (two-phase) transfer.
const scratchSize = 64 * units.MiB

// maxChain is the descriptor-table capacity the driver allocates — the 255
// of the paper's burst experiments plus one.
const maxChain = 256

// Comm is a TCA communicator spanning one sub-cluster.
type Comm struct {
	sc   *tcanet.SubCluster
	mode DMAMode
	drv  []*driver
}

// driver is the per-node PEACH2 driver state: the descriptor-table DMA
// buffer and the chain queue serialized on the single DMAC.
type driver struct {
	node     *host.Node
	chip     *peach2.Chip
	tableBuf pcie.Addr
	busy     bool
	queue    []chainReq
	current  func(now sim.Time)

	// lastErr is the chain error the chip reported at the most recent
	// completion interrupt (nil for a clean chain) — an aborted chain still
	// raises the IRQ, so the driver learns about timeouts and stuck
	// descriptors here instead of hanging.
	lastErr error

	// Observability (nil when the sub-cluster is uninstrumented). The
	// driver closes a traced chain's span with StageChainDone when its
	// completion callback runs — the last hop of a Fig. 9-style DMA
	// breakdown.
	rec     *obsv.Recorder
	mChains *obsv.Counter
	mPuts   *obsv.Counter
}

type chainReq struct {
	descs []peach2.Descriptor
	done  func(now sim.Time)
}

// NewComm attaches drivers to every node of the sub-cluster. If the
// sub-cluster was instrumented (tcanet.SubCluster.Instrument) before this
// call, the drivers register their own chain/put counters and close traced
// DMA spans in the interrupt handler.
func NewComm(sc *tcanet.SubCluster) (*Comm, error) {
	c := &Comm{sc: sc, mode: TwoPhase}
	obs := sc.Observability()
	for i := 0; i < sc.Nodes(); i++ {
		buf, err := sc.Node(i).AllocDMABuffer(maxChain * peach2.DescriptorBytes)
		if err != nil {
			return nil, fmt.Errorf("core: node %d table buffer: %w", i, err)
		}
		d := &driver{node: sc.Node(i), chip: sc.Chip(i), tableBuf: buf}
		comp := fmt.Sprintf("node%d/driver", i)
		d.rec = obs.Recorder()
		d.mChains = obs.Registry().Counter("driver_chains", comp)
		d.mPuts = obs.Registry().Counter("driver_pio_puts", comp)
		obs.Sampler().Register("driver_chain_queue", comp, "", "chains",
			func(sim.Time, units.Duration) float64 {
				q := len(d.queue)
				if d.busy {
					q++
				}
				return float64(q)
			})
		d.chip.SetIRQHandler(d.onIRQ)
		c.drv = append(c.drv, d)
	}
	return c, nil
}

// SubCluster returns the communicator's fabric.
func (c *Comm) SubCluster() *tcanet.SubCluster { return c.sc }

// Mode reports the active DMA mode.
func (c *Comm) Mode() DMAMode { return c.mode }

// SetMode switches between the two-phase and pipelined DMACs.
func (c *Comm) SetMode(m DMAMode) { c.mode = m }

func (c *Comm) driverOf(node int) *driver {
	if node < 0 || node >= len(c.drv) {
		panic(fmt.Sprintf("core: node %d outside sub-cluster of %d", node, len(c.drv)))
	}
	return c.drv[node]
}

// StartChain submits a descriptor chain on node's chip; done fires in the
// completion interrupt handler. Chains queue behind the chip's single DMAC.
func (c *Comm) StartChain(node int, descs []peach2.Descriptor, done func(now sim.Time)) error {
	if len(descs) == 0 {
		return fmt.Errorf("core: empty descriptor chain")
	}
	if len(descs) > maxChain {
		return fmt.Errorf("core: chain of %d exceeds the %d-entry table", len(descs), maxChain)
	}
	d := c.driverOf(node)
	d.submit(chainReq{descs: descs, done: done})
	return nil
}

func (d *driver) submit(req chainReq) {
	if d.busy {
		d.queue = append(d.queue, req)
		return
	}
	d.start(req)
}

// start performs the driver's activation sequence: write the encoded table
// into host memory, then two register stores over the PIO path — table
// address and count; the count store is the doorbell.
func (d *driver) start(req chainReq) {
	d.busy = true
	d.current = req.done
	d.mChains.Inc()
	table := peach2.EncodeTable(req.descs)
	if err := d.node.WriteLocal(d.tableBuf, table); err != nil {
		panic(fmt.Sprintf("core: table write: %v", err))
	}
	regs := d.chip.Plan().Internal.Base
	d.node.Store(regs+pcie.Addr(peach2.RegDMATable), le64(uint64(d.tableBuf)))
	d.node.Store(regs+pcie.Addr(peach2.RegDMACount), le64(uint64(len(req.descs))))
}

func (d *driver) onIRQ(now sim.Time) {
	d.lastErr = d.chip.DMAC().LastChainError()
	if d.rec != nil {
		if txn := d.chip.DMAC().LastChainTxn(); txn != 0 {
			d.rec.Record(obsv.Event{At: now, Txn: txn, Stage: obsv.StageChainDone,
				Where: d.node.Name() + "/driver"})
		}
	}
	done := d.current
	d.current = nil
	d.busy = false
	if len(d.queue) > 0 {
		next := d.queue[0]
		copy(d.queue, d.queue[1:])
		d.queue[len(d.queue)-1] = chainReq{}
		d.queue = d.queue[:len(d.queue)-1]
		// Resubmission pays the full activation cost again, just like a
		// fresh chain.
		d.start(next)
	}
	if done != nil {
		done(now)
	}
}

func le64(v uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

// ChainError reports the error the most recently completed chain on node's
// chip aborted with, or nil if it finished cleanly. Under fault injection a
// chain can die on a completion-timeout retry budget, a stuck descriptor,
// or the chain watchdog; the completion interrupt still fires (with the
// error latched) so callers poll this instead of deadlocking.
func (c *Comm) ChainError(node int) error { return c.driverOf(node).lastErr }

// PIOPut stores data into a global TCA address from node's CPU — the
// mmap-and-store communication of §III-F1. Data beyond one TLP payload is
// split into multiple stores.
func (c *Comm) PIOPut(node int, dst pcie.Addr, data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("core: empty PIO put")
	}
	d := c.driverOf(node)
	d.mPuts.Inc()
	for _, w := range pcie.SplitWrite(dst, data, pcie.DefaultMaxPayload, false) {
		d.node.Store(w.Addr, w.Data)
	}
	return nil
}

// WriteFlag writes an 8-byte flag value to a global address — the notify
// half of the flag synchronization TCA applications use.
func (c *Comm) WriteFlag(node int, dst pcie.Addr, value uint64) error {
	return c.PIOPut(node, dst, le64(value))
}

// WaitFlag runs fn when node's local host memory at bus address addr is
// written by the fabric (the wait half; §IV-B1 step 6's polling).
func (c *Comm) WaitFlag(node int, addr pcie.Addr, fn func(now sim.Time)) {
	c.driverOf(node).node.Poll(pcie.Range{Base: addr, Size: 8}, fn)
}
