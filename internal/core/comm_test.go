package core

import (
	"bytes"
	"testing"

	"tca/internal/pcie"
	"tca/internal/peach2"
	"tca/internal/sim"
	"tca/internal/tcanet"
	"tca/internal/units"
)

func newComm(t *testing.T, nodes int) (*sim.Engine, *Comm) {
	t.Helper()
	eng := sim.NewEngine()
	sc, err := tcanet.BuildRing(eng, nodes, tcanet.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewComm(sc)
	if err != nil {
		t.Fatal(err)
	}
	return eng, c
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*7 + seed
	}
	return b
}

func TestMemcpyPeerCrossNodeTwoPhase(t *testing.T) {
	eng, c := newComm(t, 4)
	src, err := c.RegisterGPUBuffer(0, 0, 64*units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := c.RegisterGPUBuffer(2, 1, 64*units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	want := pattern(8192, 1)
	if err := c.WriteGPU(src, 0, want); err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time
	if err := c.MemcpyPeer(dst, 0, src, 0, 8192, func(now sim.Time) { doneAt = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if doneAt == 0 {
		t.Fatal("MemcpyPeer never completed")
	}
	got, _ := c.ReadGPU(dst, 0, 8192)
	if !bytes.Equal(got, want) {
		t.Fatal("cross-node GPU copy corrupted data")
	}
	// Two-phase = two activations = two chains on the source chip.
	if chains := c.SubCluster().Chip(0).DMAC().ChainsCompleted(); chains != 2 {
		t.Fatalf("two-phase used %d chains, want 2", chains)
	}
}

func TestMemcpyPeerCrossNodePipelined(t *testing.T) {
	eng, c := newComm(t, 4)
	c.SetMode(Pipelined)
	src, _ := c.RegisterGPUBuffer(0, 0, 64*units.KiB)
	dst, _ := c.RegisterGPUBuffer(1, 0, 64*units.KiB)
	want := pattern(16384, 2)
	if err := c.WriteGPU(src, 0, want); err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time
	if err := c.MemcpyPeer(dst, 0, src, 0, 16384, func(now sim.Time) { doneAt = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if doneAt == 0 {
		t.Fatal("pipelined MemcpyPeer never completed")
	}
	got, _ := c.ReadGPU(dst, 0, 16384)
	if !bytes.Equal(got, want) {
		t.Fatal("pipelined GPU copy corrupted data")
	}
	if chains := c.SubCluster().Chip(0).DMAC().ChainsCompleted(); chains != 1 {
		t.Fatalf("pipelined used %d chains, want 1", chains)
	}
}

func TestPipelinedFasterThanTwoPhase(t *testing.T) {
	// The reason the paper builds the new DMAC: one activation and
	// overlapped phases beat staging through internal memory.
	run := func(mode DMAMode) units.Duration {
		eng, c := newComm(t, 2)
		c.SetMode(mode)
		src, _ := c.RegisterGPUBuffer(0, 0, 256*units.KiB)
		dst, _ := c.RegisterGPUBuffer(1, 0, 256*units.KiB)
		if err := c.WriteGPU(src, 0, pattern(262144, 3)); err != nil {
			t.Fatal(err)
		}
		start := eng.Now()
		var end sim.Time
		if err := c.MemcpyPeer(dst, 0, src, 0, 256*units.KiB, func(now sim.Time) { end = now }); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if end == 0 {
			t.Fatal("no completion")
		}
		return end.Sub(start)
	}
	two := run(TwoPhase)
	pipe := run(Pipelined)
	t.Logf("256KiB remote GPU put: two-phase %v, pipelined %v", two, pipe)
	if pipe >= two {
		t.Fatalf("pipelined (%v) not faster than two-phase (%v)", pipe, two)
	}
	// Pipelined ≈ max(read, write) while two-phase ≈ read + write; with a
	// GPU source the 830 MB/s read ceiling dominates both, so the gain
	// here is the write phase (~25%). The host-sourced case, where read
	// and write are balanced, approaches 2× — see bench.AblationDMAC.
	if float64(two) < 1.2*float64(pipe) {
		t.Fatalf("two-phase (%v) should be ≥1.2× pipelined (%v) at this size", two, pipe)
	}
}

func TestMemcpyPeerSameNodeUsesCUDAPath(t *testing.T) {
	eng, c := newComm(t, 2)
	src, _ := c.RegisterGPUBuffer(0, 0, 64*units.KiB)
	dst, _ := c.RegisterGPUBuffer(0, 1, 64*units.KiB)
	want := pattern(4096, 4)
	if err := c.WriteGPU(src, 0, want); err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time
	if err := c.MemcpyPeer(dst, 0, src, 0, 4096, func(now sim.Time) { doneAt = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	got, _ := c.ReadGPU(dst, 0, 4096)
	if !bytes.Equal(got, want) {
		t.Fatal("same-node copy corrupted data")
	}
	// No DMA chain ran; the CUDA peer engine carries it.
	if c.SubCluster().Chip(0).DMAC().ChainsCompleted() != 0 {
		t.Fatal("same-node copy used the PEACH2 DMAC")
	}
	if doneAt < sim.Time(7*units.Microsecond) {
		t.Fatalf("same-node copy at %v missed the CUDA setup cost", doneAt)
	}
}

func TestPutToHostRemote(t *testing.T) {
	eng, c := newComm(t, 2)
	srcBuf, err := c.AllocHostBuffer(0, 16*units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	dstBuf, err := c.AllocHostBuffer(1, 16*units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	want := pattern(10000, 5)
	if err := c.WriteHost(srcBuf, 0, want); err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time
	if err := c.PutToHost(dstBuf, 0, 0, srcBuf.Bus, units.ByteSize(len(want)), func(now sim.Time) { doneAt = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if doneAt == 0 {
		t.Fatal("PutToHost never completed")
	}
	got, _ := c.ReadHost(dstBuf, 0, units.ByteSize(len(want)))
	if !bytes.Equal(got, want) {
		t.Fatal("remote host put corrupted data")
	}
}

func TestPutFromInternal(t *testing.T) {
	eng, c := newComm(t, 2)
	want := pattern(4096, 6)
	if err := c.SubCluster().Chip(0).InternalMemory().Write(0x1000, want); err != nil {
		t.Fatal(err)
	}
	dstBuf, _ := c.AllocHostBuffer(1, 4*units.KiB)
	dst, _ := c.GlobalHost(dstBuf, 0)
	var doneAt sim.Time
	if err := c.PutFromInternal(0, 0x1000, dst, 4096, func(now sim.Time) { doneAt = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if doneAt == 0 {
		t.Fatal("PutFromInternal never completed")
	}
	got, _ := c.ReadHost(dstBuf, 0, 4096)
	if !bytes.Equal(got, want) {
		t.Fatal("internal put corrupted data")
	}
}

func TestPIOPutAndFlags(t *testing.T) {
	eng, c := newComm(t, 4)
	dstBuf, _ := c.AllocHostBuffer(3, 4*units.KiB)
	dst, _ := c.GlobalHost(dstBuf, 0)
	want := pattern(600, 7) // splits into 3 stores
	var seen sim.Time
	c.WaitFlag(3, dstBuf.Bus+0x800, func(now sim.Time) { seen = now })
	if err := c.PIOPut(0, dst, want); err != nil {
		t.Fatal(err)
	}
	flagAddr, _ := c.GlobalHost(dstBuf, 0x800)
	if err := c.WriteFlag(0, flagAddr, 42); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if seen == 0 {
		t.Fatal("flag never observed")
	}
	got, _ := c.ReadHost(dstBuf, 0, units.ByteSize(len(want)))
	if !bytes.Equal(got, want) {
		t.Fatal("PIO put corrupted data")
	}
	fl, _ := c.ReadHost(dstBuf, 0x800, 8)
	if fl[0] != 42 {
		t.Fatalf("flag value = %d", fl[0])
	}
}

func TestChainQueueingSerializesOnDMAC(t *testing.T) {
	eng, c := newComm(t, 2)
	if err := c.SubCluster().Chip(0).InternalMemory().Write(0, pattern(8192, 8)); err != nil {
		t.Fatal(err)
	}
	dstBuf, _ := c.AllocHostBuffer(1, 8*units.KiB)
	dst, _ := c.GlobalHost(dstBuf, 0)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		err := c.PutFromInternal(0, uint64(i*2048), dst+pcie.Addr(i*2048), 2048, func(now sim.Time) {
			order = append(order, i)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("chains completed in order %v", order)
	}
	if c.SubCluster().Chip(0).DMAC().ChainsCompleted() != 3 {
		t.Fatal("chain count wrong")
	}
}

func TestBlockStrideTwoPhase(t *testing.T) {
	eng, c := newComm(t, 2)
	// A 4×1 KiB halo column out of a 4 KiB-pitch array.
	srcBuf, _ := c.AllocHostBuffer(0, 64*units.KiB)
	dstBuf, _ := c.AllocHostBuffer(1, 64*units.KiB)
	bs := BlockStride{BlockLen: 1024, Count: 4, SrcStride: 4096, DstStride: 2048}
	var want [][]byte
	for i := 0; i < bs.Count; i++ {
		blk := pattern(1024, byte(10+i))
		want = append(want, blk)
		if err := c.WriteHost(srcBuf, units.ByteSize(i)*bs.SrcStride, blk); err != nil {
			t.Fatal(err)
		}
	}
	dst, _ := c.GlobalHost(dstBuf, 0)
	var doneAt sim.Time
	if err := c.PutBlockStride(0, srcBuf.Bus, dst, bs, func(now sim.Time) { doneAt = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if doneAt == 0 {
		t.Fatal("block-stride never completed")
	}
	for i := 0; i < bs.Count; i++ {
		got, _ := c.ReadHost(dstBuf, units.ByteSize(i)*bs.DstStride, 1024)
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("block %d corrupted", i)
		}
	}
}

func TestBlockStridePipelined(t *testing.T) {
	eng, c := newComm(t, 2)
	c.SetMode(Pipelined)
	srcBuf, _ := c.AllocHostBuffer(0, 64*units.KiB)
	dstBuf, _ := c.AllocHostBuffer(1, 64*units.KiB)
	bs := BlockStride{BlockLen: 512, Count: 8, SrcStride: 8192, DstStride: 512}
	for i := 0; i < bs.Count; i++ {
		if err := c.WriteHost(srcBuf, units.ByteSize(i)*bs.SrcStride, pattern(512, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	dst, _ := c.GlobalHost(dstBuf, 0)
	done := false
	if err := c.PutBlockStride(0, srcBuf.Bus, dst, bs, func(sim.Time) { done = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !done {
		t.Fatal("pipelined block-stride never completed")
	}
	// The gather lands contiguous at the destination.
	for i := 0; i < bs.Count; i++ {
		got, _ := c.ReadHost(dstBuf, units.ByteSize(i)*512, 512)
		if !bytes.Equal(got, pattern(512, byte(i))) {
			t.Fatalf("gathered block %d corrupted", i)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	eng, c := newComm(t, 2)
	_ = eng
	if _, err := c.RegisterGPUBuffer(0, 2, 4096); err == nil {
		t.Fatal("GPU2 registration accepted")
	}
	if _, err := c.RegisterGPUBuffer(0, -1, 4096); err == nil {
		t.Fatal("negative GPU accepted")
	}
	src, _ := c.RegisterGPUBuffer(0, 0, 4096)
	dst, _ := c.RegisterGPUBuffer(1, 0, 4096)
	if err := c.MemcpyPeer(dst, 0, src, 0, 0, nil); err == nil {
		t.Fatal("zero-length copy accepted")
	}
	if err := c.MemcpyPeer(dst, 4000, src, 0, 200, nil); err == nil {
		t.Fatal("overflowing copy accepted")
	}
	if err := c.StartChain(0, nil, nil); err == nil {
		t.Fatal("empty chain accepted")
	}
	if err := c.StartChain(0, make([]peach2.Descriptor, maxChain+1), nil); err == nil {
		t.Fatal("oversized chain accepted")
	}
	bad := BlockStride{BlockLen: 1024, Count: 4, SrcStride: 512, DstStride: 2048}
	if err := bad.Validate(); err == nil {
		t.Fatal("overlapping stride accepted")
	}
	if err := c.PIOPut(0, 0x1000, nil); err == nil {
		t.Fatal("empty PIO put accepted")
	}
	if (TwoPhase).String() != "two-phase" || (Pipelined).String() != "pipelined" {
		t.Fatal("mode strings wrong")
	}
}
