package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"tca/internal/sim"
	"tca/internal/tcanet"
	"tca/internal/units"
)

// TestRandomTransferPlans generates randomized communication plans —
// arbitrary mixes of PIO puts, DMA puts (both modes), GPU and host
// endpoints, all nodes transmitting concurrently — executes them on one
// sub-cluster, and byte-compares every destination against a reference
// model. Seeded runs keep it deterministic and reproducible.
func TestRandomTransferPlans(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runRandomPlan(t, seed)
		})
	}
}

func runRandomPlan(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	nodes := 2 + rng.Intn(5) // 2..6
	eng := sim.NewEngine()
	sc, err := tcanet.BuildRing(eng, nodes, tcanet.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewComm(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rng.Intn(2) == 0 {
		c.SetMode(Pipelined)
	}

	const xfers = 24
	const slot = 8 * units.KiB // disjoint destination slot per transfer

	// Per destination node: one big host buffer and one GPU buffer,
	// partitioned into per-transfer slots so writes never overlap.
	hostDst := make([]HostBuffer, nodes)
	gpuDst := make([]GPUBuffer, nodes)
	srcBuf := make([]HostBuffer, nodes)
	gpuSrc := make([]GPUBuffer, nodes)
	for i := 0; i < nodes; i++ {
		hostDst[i], err = c.AllocHostBuffer(i, xfers*slot)
		if err != nil {
			t.Fatal(err)
		}
		gpuDst[i], err = c.RegisterGPUBuffer(i, rng.Intn(2), xfers*slot)
		if err != nil {
			t.Fatal(err)
		}
		srcBuf[i], err = c.AllocHostBuffer(i, slot)
		if err != nil {
			t.Fatal(err)
		}
		gpuSrc[i], err = c.RegisterGPUBuffer(i, 0, slot)
		if err != nil {
			t.Fatal(err)
		}
	}

	type expect struct {
		read func() ([]byte, error)
		want []byte
		desc string
	}
	var expects []expect
	completions := 0
	wantCompletions := 0

	for x := 0; x < xfers; x++ {
		src := rng.Intn(nodes)
		dst := rng.Intn(nodes)
		for dst == src {
			dst = rng.Intn(nodes)
		}
		size := units.ByteSize(1 + rng.Intn(int(slot)))
		payload := make([]byte, size)
		rng.Read(payload)
		off := units.ByteSize(x) * slot
		kind := rng.Intn(4)
		switch kind {
		case 0: // PIO into remote host
			if size > 2*units.KiB {
				size = 2 * units.KiB // keep PIO sane: it is the short-message mode
				payload = payload[:size]
			}
			g, err := c.GlobalHost(hostDst[dst], off)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.PIOPut(src, g, payload); err != nil {
				t.Fatal(err)
			}
		case 1: // DMA put host->remote host
			if err := c.WriteHost(srcBuf[src], 0, payload); err != nil {
				t.Fatal(err)
			}
			wantCompletions++
			if err := c.PutToHost(hostDst[dst], off, src, srcBuf[src].Bus, size, func(sim.Time) { completions++ }); err != nil {
				t.Fatal(err)
			}
		case 2: // DMA put host->remote GPU
			if err := c.WriteHost(srcBuf[src], 0, payload); err != nil {
				t.Fatal(err)
			}
			g, err := c.GlobalGPU(gpuDst[dst], off)
			if err != nil {
				t.Fatal(err)
			}
			wantCompletions++
			if err := c.putFromLocal(src, srcBuf[src].Bus+0, g, size, func(sim.Time) { completions++ }); err != nil {
				t.Fatal(err)
			}
		case 3: // MemcpyPeer GPU->GPU
			if err := c.WriteGPU(gpuSrc[src], 0, payload); err != nil {
				t.Fatal(err)
			}
			wantCompletions++
			if err := c.MemcpyPeer(gpuDst[dst], off, gpuSrc[src], 0, size, func(sim.Time) { completions++ }); err != nil {
				t.Fatal(err)
			}
		}
		// Sequential sends from the same source reuse srcBuf; the DMAC
		// chain queue serializes them, but the *source bytes* must stay
		// stable until the chain reads them. Run the engine between
		// transfers that share a source buffer to keep the reference
		// model simple.
		if kind == 1 || kind == 2 || kind == 3 {
			eng.Run()
		}

		desc := fmt.Sprintf("seed=%d xfer=%d kind=%d %d->%d size=%v off=%v", seed, x, kind, src, dst, size, off)
		switch kind {
		case 0, 1:
			d, o := dst, off
			p := payload
			expects = append(expects, expect{
				read: func() ([]byte, error) { return c.ReadHost(hostDst[d], o, units.ByteSize(len(p))) },
				want: p,
				desc: desc,
			})
		case 2, 3:
			d, o := dst, off
			p := payload
			expects = append(expects, expect{
				read: func() ([]byte, error) { return c.ReadGPU(gpuDst[d], o, units.ByteSize(len(p))) },
				want: p,
				desc: desc,
			})
		}
	}
	eng.Run()
	if completions != wantCompletions {
		t.Fatalf("%d/%d DMA completions fired", completions, wantCompletions)
	}
	for _, e := range expects {
		got, err := e.read()
		if err != nil {
			t.Fatalf("%s: %v", e.desc, err)
		}
		if !bytes.Equal(got, e.want) {
			t.Fatalf("%s: data mismatch", e.desc)
		}
	}
}

// TestConcurrentChainsAcrossNodes drives every node's DMAC simultaneously
// at the same destination node and verifies all payloads and completion
// ordering per chip.
func TestConcurrentChainsAcrossNodes(t *testing.T) {
	eng, c := newComm(t, 8)
	dst, err := c.AllocHostBuffer(0, 8*64*units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for src := 1; src < 8; src++ {
		buf, err := c.AllocHostBuffer(src, 64*units.KiB)
		if err != nil {
			t.Fatal(err)
		}
		payload := pattern(64*1024, byte(src))
		if err := c.WriteHost(buf, 0, payload); err != nil {
			t.Fatal(err)
		}
		off := units.ByteSize(src) * 64 * units.KiB
		if err := c.PutToHost(dst, off, src, buf.Bus, 64*units.KiB, func(sim.Time) { done++ }); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if done != 7 {
		t.Fatalf("%d/7 chains completed", done)
	}
	for src := 1; src < 8; src++ {
		off := units.ByteSize(src) * 64 * units.KiB
		got, _ := c.ReadHost(dst, off, 64*units.KiB)
		if !bytes.Equal(got, pattern(64*1024, byte(src))) {
			t.Fatalf("payload from node %d corrupted", src)
		}
	}
}

// TestSixteenNodeRingAllPairs exercises the largest sub-cluster the paper
// defines (16 nodes, §II-B) with a PIO write between every ordered pair.
func TestSixteenNodeRingAllPairs(t *testing.T) {
	eng, c := newComm(t, 16)
	bufs := make([]HostBuffer, 16)
	var err error
	for i := range bufs {
		bufs[i], err = c.AllocHostBuffer(i, 16*64)
		if err != nil {
			t.Fatal(err)
		}
	}
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			if src == dst {
				continue
			}
			g, err := c.GlobalHost(bufs[dst], units.ByteSize(src*64))
			if err != nil {
				t.Fatal(err)
			}
			if err := c.PIOPut(src, g, []byte{byte(src), byte(dst)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng.Run()
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			if src == dst {
				continue
			}
			got, _ := c.ReadHost(bufs[dst], units.ByteSize(src*64), 2)
			if got[0] != byte(src) || got[1] != byte(dst) {
				t.Fatalf("pair %d→%d: got %v", src, dst, got)
			}
		}
	}
}

// TestPIOOrderingDataBeforeFlag locks the invariant the collective library
// builds on: PIO data stores and a subsequent PIO flag store to the same
// node traverse one FIFO path, so when the flag lands, every data byte has
// landed. This holds across multiple ring hops.
func TestPIOOrderingDataBeforeFlag(t *testing.T) {
	for _, hops := range []int{1, 3} {
		eng, c := newComm(t, 8)
		dstNode := hops
		buf, err := c.AllocHostBuffer(dstNode, 8*units.KiB)
		if err != nil {
			t.Fatal(err)
		}
		payload := pattern(2048, 0x33)
		g, _ := c.GlobalHost(buf, 0)
		flagG, _ := c.GlobalHost(buf, 4096)
		checked := false
		c.WaitFlag(dstNode, buf.Bus+4096, func(now sim.Time) {
			got, err := c.ReadHost(buf, 0, units.ByteSize(len(payload)))
			if err != nil {
				t.Error(err)
			}
			if !bytes.Equal(got, payload) {
				t.Errorf("hops=%d: flag observed before data fully landed", hops)
			}
			checked = true
		})
		if err := c.PIOPut(0, g, payload); err != nil {
			t.Fatal(err)
		}
		if err := c.WriteFlag(0, flagG, 1); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if !checked {
			t.Fatalf("hops=%d: flag never observed", hops)
		}
	}
}

// TestReadHostBus covers the raw-bus read used by the PIO send path.
func TestReadHostBus(t *testing.T) {
	_, c := newComm(t, 2)
	buf, _ := c.AllocHostBuffer(0, 4*units.KiB)
	want := pattern(128, 0x44)
	if err := c.WriteHost(buf, 64, want); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadHostBus(0, buf.Bus+64, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("ReadHostBus mismatch")
	}
}
