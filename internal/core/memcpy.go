package core

import (
	"fmt"

	"tca/internal/gpu"
	"tca/internal/pcie"
	"tca/internal/peach2"
	"tca/internal/sim"
	"tca/internal/units"
)

// MemcpyPeer copies n bytes from (srcBuf+srcOff) to (dstBuf+dstOff) — the
// §III-H extension of cudaMemcpyPeer across nodes. Same-node copies use the
// CUDA peer path through the shared switch; cross-node copies run on the
// source node's PEACH2 in the communicator's DMA mode. done fires at
// completion (the DMA interrupt handler or the CUDA callback).
func (c *Comm) MemcpyPeer(dst GPUBuffer, dstOff units.ByteSize, src GPUBuffer, srcOff units.ByteSize, n units.ByteSize, done func(now sim.Time)) error {
	if err := checkSpan(dst.Len, dstOff, n); err != nil {
		return fmt.Errorf("core: dst: %w", err)
	}
	if err := checkSpan(src.Len, srcOff, n); err != nil {
		return fmt.Errorf("core: src: %w", err)
	}
	if src.Node == dst.Node {
		node := c.driverOf(src.Node).node
		return node.CopyEngine().MemcpyPeer(
			node.GPU(dst.GPU), dst.Ptr+gpu.DevicePtr(dstOff),
			node.GPU(src.GPU), src.Ptr+gpu.DevicePtr(srcOff), n, done)
	}
	dstGlobal, err := c.GlobalGPU(dst, dstOff)
	if err != nil {
		return err
	}
	return c.putFromLocal(src.Node, src.Bus+pcie.Addr(srcOff), dstGlobal, n, done)
}

// checkSpan validates [off, off+n) inside a buffer of length l.
func checkSpan(l, off, n units.ByteSize) error {
	if n <= 0 {
		return fmt.Errorf("non-positive length %d", n)
	}
	if off < 0 || off+n > l {
		return fmt.Errorf("span [%d, %d) outside buffer of %v", off, off+n, l)
	}
	return nil
}

// PutToHost copies n bytes from a local source buffer on srcNode into a
// (possibly remote) host buffer.
func (c *Comm) PutToHost(dst HostBuffer, dstOff units.ByteSize, srcNode int, srcBus pcie.Addr, n units.ByteSize, done func(now sim.Time)) error {
	if err := checkSpan(dst.Len, dstOff, n); err != nil {
		return fmt.Errorf("core: dst: %w", err)
	}
	dstGlobal, err := c.GlobalHost(dst, dstOff)
	if err != nil {
		return err
	}
	return c.putFromLocal(srcNode, srcBus, dstGlobal, n, done)
}

// PutFromInternal writes n bytes of srcNode's PEACH2 internal memory at
// intOff to a global destination — the raw put the paper's bandwidth
// experiments use (internal memory is the mandatory DMA-write source on the
// current DMAC, §IV-B2).
func (c *Comm) PutFromInternal(srcNode int, intOff uint64, dstGlobal pcie.Addr, n units.ByteSize, done func(now sim.Time)) error {
	return c.StartChain(srcNode, []peach2.Descriptor{
		{Kind: peach2.DescWrite, Len: n, Src: intOff, Dst: uint64(dstGlobal)},
	}, done)
}

// putFromLocal moves n bytes from a local bus address on srcNode to a
// global destination, honouring the communicator's DMA mode.
func (c *Comm) putFromLocal(srcNode int, srcBus pcie.Addr, dstGlobal pcie.Addr, n units.ByteSize, done func(now sim.Time)) error {
	if n <= 0 {
		return fmt.Errorf("core: non-positive put length %d", n)
	}
	switch c.mode {
	case Pipelined:
		return c.StartChain(srcNode, []peach2.Descriptor{
			{Kind: peach2.DescPipelined, Len: n, Src: uint64(srcBus), Dst: uint64(dstGlobal)},
		}, done)
	case TwoPhase:
		if n > scratchSize {
			return fmt.Errorf("core: %v exceeds the %v staging buffer", n, units.ByteSize(scratchSize))
		}
		// Phase 1: stage into internal memory; phase 2 (a second
		// activation, §IV-B2): write out to the remote node.
		return c.StartChain(srcNode, []peach2.Descriptor{
			{Kind: peach2.DescRead, Len: n, Src: uint64(srcBus), Dst: 0},
		}, func(sim.Time) {
			err := c.StartChain(srcNode, []peach2.Descriptor{
				{Kind: peach2.DescWrite, Len: n, Src: 0, Dst: uint64(dstGlobal)},
			}, done)
			if err != nil {
				panic(fmt.Sprintf("core: two-phase second activation: %v", err))
			}
		})
	default:
		return fmt.Errorf("core: unknown DMA mode %d", int(c.mode))
	}
}

// BlockStride describes a strided transfer: Count blocks of BlockLen bytes,
// the source advancing by SrcStride and the destination by DstStride per
// block — the multidimensional-array pattern the chaining DMAC was built
// for ("this helps to improve the stride access caused by multidimensional
// array data", §III-D).
type BlockStride struct {
	BlockLen  units.ByteSize
	Count     int
	SrcStride units.ByteSize
	DstStride units.ByteSize
}

// Validate checks the geometry.
func (bs BlockStride) Validate() error {
	if bs.BlockLen <= 0 || bs.Count <= 0 {
		return fmt.Errorf("core: block-stride with %v × %d blocks", bs.BlockLen, bs.Count)
	}
	if bs.SrcStride < bs.BlockLen || bs.DstStride < bs.BlockLen {
		return fmt.Errorf("core: strides (%v/%v) smaller than block %v overlap", bs.SrcStride, bs.DstStride, bs.BlockLen)
	}
	if bs.Count > maxChain {
		return fmt.Errorf("core: %d blocks exceed the %d-descriptor table", bs.Count, maxChain)
	}
	return nil
}

// PutBlockStride moves a strided region from a local bus address on srcNode
// to a global destination as one descriptor chain per direction — a single
// DMA issue for the whole pattern (§III-F2).
func (c *Comm) PutBlockStride(srcNode int, srcBus pcie.Addr, dstGlobal pcie.Addr, bs BlockStride, done func(now sim.Time)) error {
	if err := bs.Validate(); err != nil {
		return err
	}
	switch c.mode {
	case Pipelined:
		descs := make([]peach2.Descriptor, 0, bs.Count)
		for i := 0; i < bs.Count; i++ {
			descs = append(descs, peach2.Descriptor{
				Kind: peach2.DescPipelined,
				Len:  bs.BlockLen,
				Src:  uint64(srcBus) + uint64(i)*uint64(bs.SrcStride),
				Dst:  uint64(dstGlobal) + uint64(i)*uint64(bs.DstStride),
			})
		}
		return c.StartChain(srcNode, descs, done)
	case TwoPhase:
		total := bs.BlockLen * units.ByteSize(bs.Count)
		if total > scratchSize {
			return fmt.Errorf("core: %v exceeds the %v staging buffer", total, units.ByteSize(scratchSize))
		}
		reads := make([]peach2.Descriptor, 0, bs.Count)
		writes := make([]peach2.Descriptor, 0, bs.Count)
		for i := 0; i < bs.Count; i++ {
			stage := uint64(i) * uint64(bs.BlockLen)
			reads = append(reads, peach2.Descriptor{
				Kind: peach2.DescRead,
				Len:  bs.BlockLen,
				Src:  uint64(srcBus) + uint64(i)*uint64(bs.SrcStride),
				Dst:  stage,
			})
			writes = append(writes, peach2.Descriptor{
				Kind: peach2.DescWrite,
				Len:  bs.BlockLen,
				Src:  stage,
				Dst:  uint64(dstGlobal) + uint64(i)*uint64(bs.DstStride),
			})
		}
		return c.StartChain(srcNode, reads, func(sim.Time) {
			if err := c.StartChain(srcNode, writes, done); err != nil {
				panic(fmt.Sprintf("core: block-stride second activation: %v", err))
			}
		})
	default:
		return fmt.Errorf("core: unknown DMA mode %d", int(c.mode))
	}
}
