// Package fault is the fabric-wide fault injector: a seeded,
// schedule-deterministic source of link outages, bit errors, dropped and
// corrupted packets, lost completions and wedged DMA descriptors. PEACH2
// realizes PEARL — PCI Express Adaptive and *Reliable* Link — and the
// reliability machinery (DLL replay, completion timeouts, NIOS failover)
// only exercises under injected faults.
//
// Every decision is drawn from a single *rand.Rand seeded by the profile,
// and components consult the injector only from inside engine callbacks,
// so a given (profile, seed) pair perturbs a run the same way every time:
// two runs of the same -fault scenario are byte-identical. The nil
// *Injector is the disabled injector — every method no-ops — so a
// fault-free build takes exactly the legacy code path and schedules
// exactly the legacy event sequence.
package fault

import (
	"math/rand"

	"tca/internal/obsv"
	"tca/internal/sim"
	"tca/internal/units"
)

// DownWindow declares an outage of one named cable: the link blackholes
// every frame (and DLLP) arriving within [At, At+For). For == 0 means the
// cable never recovers — the cut-ring scenario of §V.
type DownWindow struct {
	// Link names the cable, matching the name the topology registered
	// with pcie.Link.EnableDLL ("2e" = the eastward cable out of node 2).
	Link string
	// At is when the outage starts, as sim time since run start.
	At units.Duration
	// For is the outage length; zero means permanent.
	For units.Duration
}

// Profile is a complete fault scenario. The zero Profile injects nothing.
type Profile struct {
	// Seed initializes the injector's random stream.
	Seed int64
	// BER is the per-bit error rate applied to every DLL-protected frame;
	// a hit is an LCRC failure, NAKed and replayed.
	BER float64
	// Drop is the per-TLP probability that the receiver swallows a frame
	// without acknowledging it (recovered by replay timeout).
	Drop float64
	// Corrupt is an additional flat per-TLP LCRC-failure probability on
	// top of BER.
	Corrupt float64
	// LoseCpl is the probability that the root complex accepts a read
	// but never returns its completion (recovered by the DMAC's
	// completion timeout).
	LoseCpl float64
	// Stuck wedges descriptor StuckIndex of every DMA chain: its work is
	// never generated and the chain watchdog must abort the chain.
	Stuck      bool
	StuckIndex int
	// Down lists the scheduled link outages.
	Down []DownWindow
}

// Counts is a snapshot of everything the injector and the recovery
// machinery recorded.
type Counts struct {
	LinkDown        uint64 // links declared dead (replay exhaustion)
	Replays         uint64 // DLL go-back-N replay rounds
	ReplayExhausted uint64 // replay budgets exhausted
	Failovers       uint64 // management-plane reroutes completed
	TLPsCorrupted   uint64 // frames failing the LCRC check
	TLPsDropped     uint64 // frames swallowed by the receiver
	LostCompletions uint64 // read completions the RC never sent
	ReadRetries     uint64 // DMAC read retransmissions
	ChainErrors     uint64 // DMA chains aborted with an error
	StuckDescs      uint64 // descriptors wedged by injection
}

// Injector draws fault decisions and counts both injections and the
// recovery actions they trigger. Components hold a possibly-nil *Injector
// and call it unconditionally; the nil receiver is the disabled injector.
type Injector struct {
	prof   Profile
	rng    *rand.Rand
	counts Counts

	// Metric handles (nil until Instrument; obsv counters are nil-safe).
	mLinkDown  *obsv.Counter
	mReplays   *obsv.Counter
	mExhausted *obsv.Counter
	mFailovers *obsv.Counter
	mCorrupted *obsv.Counter
	mDropped   *obsv.Counter
	mLostCpls  *obsv.Counter
	mRetries   *obsv.Counter
	mChainErrs *obsv.Counter
	mStuck     *obsv.Counter
}

// New builds an injector for the profile, with its random stream seeded
// from Profile.Seed.
func New(prof Profile) *Injector {
	return &Injector{prof: prof, rng: rand.New(rand.NewSource(prof.Seed))}
}

// Enabled reports whether fault injection is attached at all — the gate
// components use to avoid scheduling recovery timers on fault-free runs.
func (j *Injector) Enabled() bool {
	if j == nil {
		return false
	}
	return true
}

// Profile returns the scenario the injector was built from.
func (j *Injector) Profile() Profile {
	if j == nil {
		return Profile{}
	}
	return j.prof
}

// Counts returns the current fault/recovery counters.
func (j *Injector) Counts() Counts {
	if j == nil {
		return Counts{}
	}
	return j.counts
}

// Instrument registers the fault.* counters so injected faults and the
// recovery they exercise show up in every metrics snapshot.
func (j *Injector) Instrument(set *obsv.Set) {
	if j == nil {
		return
	}
	reg := set.Registry()
	const comp = "injector"
	j.mLinkDown = reg.Counter("fault.link_down", comp)
	j.mReplays = reg.Counter("fault.replays", comp)
	j.mExhausted = reg.Counter("fault.replay_exhausted", comp)
	j.mFailovers = reg.Counter("fault.failovers", comp)
	j.mCorrupted = reg.Counter("fault.tlps_corrupted", comp)
	j.mDropped = reg.Counter("fault.tlps_dropped", comp)
	j.mLostCpls = reg.Counter("fault.lost_completions", comp)
	j.mRetries = reg.Counter("fault.read_retries", comp)
	j.mChainErrs = reg.Counter("fault.chain_errors", comp)
	j.mStuck = reg.Counter("fault.stuck_descriptors", comp)
}

// LinkDown reports whether the named cable is inside an outage window at
// time now. Pure query — no randomness, no counting — so the DLL can ask
// at every frame and DLLP arrival.
func (j *Injector) LinkDown(link string, now sim.Time) bool {
	if j == nil {
		return false
	}
	for _, w := range j.prof.Down {
		if w.Link != link {
			continue
		}
		start := sim.Time(0).Add(w.At)
		if now < start {
			continue
		}
		if w.For == 0 || now < start.Add(w.For) {
			return true
		}
	}
	return false
}

// CorruptTLP decides whether a frame of the given wire size fails its
// LCRC check: a per-bit BER draw plus the flat per-TLP corruption rate.
func (j *Injector) CorruptTLP(wire units.ByteSize) bool {
	if j == nil || (j.prof.BER == 0 && j.prof.Corrupt == 0) {
		return false
	}
	p := j.prof.Corrupt
	if j.prof.BER > 0 {
		bits := wire.Bytes() * 8
		pBER := 1 - pow1m(j.prof.BER, bits)
		p = p + pBER - p*pBER
	}
	if j.rng.Float64() < p {
		j.counts.TLPsCorrupted++
		j.mCorrupted.Inc()
		return true
	}
	return false
}

// pow1m computes (1-ber)^bits without math.Pow (integer exponent keeps it
// cheap and bit-stable across platforms).
func pow1m(ber, bits float64) float64 {
	base := 1 - ber
	out := 1.0
	for n := int(bits); n > 0; n >>= 1 {
		if n&1 == 1 {
			out *= base
		}
		base *= base
	}
	return out
}

// DropTLP decides whether the receiver silently swallows a frame.
func (j *Injector) DropTLP() bool {
	if j == nil || j.prof.Drop == 0 {
		return false
	}
	if j.rng.Float64() < j.prof.Drop {
		j.counts.TLPsDropped++
		j.mDropped.Inc()
		return true
	}
	return false
}

// LoseCompletion decides whether the root complex never answers a read.
func (j *Injector) LoseCompletion() bool {
	if j == nil || j.prof.LoseCpl == 0 {
		return false
	}
	if j.rng.Float64() < j.prof.LoseCpl {
		j.counts.LostCompletions++
		j.mLostCpls.Inc()
		return true
	}
	return false
}

// StuckDescriptor reports whether chain-descriptor index i is wedged.
func (j *Injector) StuckDescriptor(i int) bool {
	if j == nil || !j.prof.Stuck || i != j.prof.StuckIndex {
		return false
	}
	j.counts.StuckDescs++
	j.mStuck.Inc()
	return true
}

// NoteReplay counts one DLL go-back-N replay round.
func (j *Injector) NoteReplay() {
	if j == nil {
		return
	}
	j.counts.Replays++
	j.mReplays.Inc()
}

// NoteReplayExhausted counts one direction exhausting its replay budget.
func (j *Injector) NoteReplayExhausted() {
	if j == nil {
		return
	}
	j.counts.ReplayExhausted++
	j.mExhausted.Inc()
}

// NoteLinkDead counts one cable declared dead.
func (j *Injector) NoteLinkDead() {
	if j == nil {
		return
	}
	j.counts.LinkDown++
	j.mLinkDown.Inc()
}

// NoteFailover counts one completed management-plane reroute.
func (j *Injector) NoteFailover() {
	if j == nil {
		return
	}
	j.counts.Failovers++
	j.mFailovers.Inc()
}

// NoteReadRetry counts one DMAC read retransmission.
func (j *Injector) NoteReadRetry() {
	if j == nil {
		return
	}
	j.counts.ReadRetries++
	j.mRetries.Inc()
}

// NoteChainError counts one DMA chain aborted with an error.
func (j *Injector) NoteChainError() {
	if j == nil {
		return
	}
	j.counts.ChainErrors++
	j.mChainErrs.Inc()
}
