package fault

import (
	"testing"

	"tca/internal/obsv"
	"tca/internal/sim"
	"tca/internal/units"
)

// TestNilInjectorIsDisabled: the nil injector must be a complete no-op so
// fault-free builds keep the legacy schedule.
func TestNilInjectorIsDisabled(t *testing.T) {
	var j *Injector
	if j.Enabled() {
		t.Fatal("nil injector reports Enabled")
	}
	if j.LinkDown("0e", sim.Time(0)) || j.CorruptTLP(256) || j.DropTLP() ||
		j.LoseCompletion() || j.StuckDescriptor(0) {
		t.Fatal("nil injector injected a fault")
	}
	j.NoteReplay()
	j.NoteReplayExhausted()
	j.NoteLinkDead()
	j.NoteFailover()
	j.NoteReadRetry()
	j.NoteChainError()
	j.Instrument(nil)
	if j.Counts() != (Counts{}) {
		t.Fatal("nil injector counted something")
	}
}

// TestLinkDownWindows: window matching is by name and [At, At+For), with
// For == 0 meaning permanent.
func TestLinkDownWindows(t *testing.T) {
	j := New(Profile{Down: []DownWindow{
		{Link: "2e", At: 10 * units.Microsecond, For: 5 * units.Microsecond},
		{Link: "0s", At: 3 * units.Microsecond}, // permanent
	}})
	at := func(d units.Duration) sim.Time { return sim.Time(0).Add(d) }
	if j.LinkDown("2e", at(9*units.Microsecond)) {
		t.Fatal("down before window start")
	}
	if !j.LinkDown("2e", at(10*units.Microsecond)) {
		t.Fatal("up at window start")
	}
	if !j.LinkDown("2e", at(14*units.Microsecond)) {
		t.Fatal("up inside window")
	}
	if j.LinkDown("2e", at(15*units.Microsecond)) {
		t.Fatal("down at window end (half-open)")
	}
	if j.LinkDown("1e", at(12*units.Microsecond)) {
		t.Fatal("wrong link down")
	}
	if !j.LinkDown("0s", at(1*units.Millisecond)) {
		t.Fatal("permanent cut recovered")
	}
}

// TestSeededDrawsAreDeterministic: two injectors with the same profile
// make identical decisions.
func TestSeededDrawsAreDeterministic(t *testing.T) {
	prof := Profile{Seed: 7, Drop: 0.3, LoseCpl: 0.2, BER: 1e-6}
	a, b := New(prof), New(prof)
	for i := 0; i < 200; i++ {
		if a.DropTLP() != b.DropTLP() {
			t.Fatalf("DropTLP diverged at draw %d", i)
		}
		if a.CorruptTLP(300) != b.CorruptTLP(300) {
			t.Fatalf("CorruptTLP diverged at draw %d", i)
		}
		if a.LoseCompletion() != b.LoseCompletion() {
			t.Fatalf("LoseCompletion diverged at draw %d", i)
		}
	}
	if a.Counts() != b.Counts() {
		t.Fatalf("counts diverged: %+v vs %+v", a.Counts(), b.Counts())
	}
	if a.Counts().TLPsDropped == 0 {
		t.Fatal("drop rate 0.3 never dropped in 200 draws")
	}
}

// TestStuckDescriptor wedges exactly the configured index.
func TestStuckDescriptor(t *testing.T) {
	j := New(Profile{Stuck: true, StuckIndex: 2})
	if j.StuckDescriptor(0) || j.StuckDescriptor(1) || j.StuckDescriptor(3) {
		t.Fatal("wedged the wrong descriptor")
	}
	if !j.StuckDescriptor(2) {
		t.Fatal("configured descriptor not wedged")
	}
	if got := j.Counts().StuckDescs; got != 1 {
		t.Fatalf("StuckDescs = %d, want 1", got)
	}
	// The zero Profile must not wedge descriptor 0.
	if New(Profile{}).StuckDescriptor(0) {
		t.Fatal("zero profile wedged descriptor 0")
	}
}

// TestInstrumentCounters: Note* hooks feed the fault.* metrics the
// acceptance criteria key on.
func TestInstrumentCounters(t *testing.T) {
	set := obsv.NewSet(16)
	j := New(Profile{})
	j.Instrument(set)
	j.NoteLinkDead()
	j.NoteReplay()
	j.NoteReplay()
	j.NoteFailover()
	snap := set.Registry().Snapshot(sim.Time(0))
	for name, want := range map[string]uint64{
		"fault.link_down": 1,
		"fault.replays":   2,
		"fault.failovers": 1,
	} {
		got, ok := snap.Counter(name, "injector")
		if !ok || got != want {
			t.Fatalf("%s = %d (ok=%v), want %d", name, got, ok, want)
		}
	}
}

// TestParseScenario covers the clause grammar.
func TestParseScenario(t *testing.T) {
	prof, err := ParseScenario("linkdown:2e:50us,ber:1e-7,drop:0.01,losecpl:0.5,stuck:3,corrupt:0.2", 7)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Seed != 7 || prof.BER != 1e-7 || prof.Drop != 0.01 ||
		prof.LoseCpl != 0.5 || prof.Corrupt != 0.2 || !prof.Stuck || prof.StuckIndex != 3 {
		t.Fatalf("bad profile: %+v", prof)
	}
	if len(prof.Down) != 1 || prof.Down[0].Link != "2e" ||
		prof.Down[0].At != 50*units.Microsecond || prof.Down[0].For != 0 {
		t.Fatalf("bad down window: %+v", prof.Down)
	}

	prof, err = ParseScenario("linkdown:0s:1ms:250ns", 1)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Down[0].At != units.Millisecond || prof.Down[0].For != 250*units.Nanosecond {
		t.Fatalf("bad bounded window: %+v", prof.Down[0])
	}

	for _, bad := range []string{
		"", "linkdown:2e", "linkdown:2e:50", "linkdown:2e:50us:0us",
		"ber:2", "drop:-0.1", "stuck:x", "stuck:-1", "flap:2e", "ber",
	} {
		if _, err := ParseScenario(bad, 0); err == nil {
			t.Fatalf("ParseScenario(%q) accepted", bad)
		}
	}
}
