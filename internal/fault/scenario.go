package fault

import (
	"fmt"
	"strconv"
	"strings"

	"tca/internal/units"
)

// ParseScenario builds a Profile from the CLI's compact scenario syntax:
// comma-separated clauses, each `kind:args`. The seed is supplied
// separately (the -seed flag) so the same scenario can be replayed under
// different random streams.
//
//	linkdown:<link>:<at>[:<dur>]   cut cable <link> at <at>, forever or for <dur>
//	ber:<rate>                     per-bit error rate on DLL frames
//	drop:<p>                       per-TLP silent-drop probability
//	corrupt:<p>                    per-TLP LCRC-failure probability
//	losecpl:<p>                    per-read lost-completion probability
//	stuck:<idx>                    wedge descriptor <idx> of every DMA chain
//
// Durations take ps/ns/us/ms/s suffixes. Example:
//
//	linkdown:2e:50us,ber:1e-7
func ParseScenario(spec string, seed int64) (Profile, error) {
	prof := Profile{Seed: seed}
	if strings.TrimSpace(spec) == "" {
		return Profile{}, fmt.Errorf("fault: empty scenario")
	}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		parts := strings.Split(clause, ":")
		kind := parts[0]
		args := parts[1:]
		switch kind {
		case "linkdown":
			if len(args) < 2 || len(args) > 3 {
				return Profile{}, fmt.Errorf("fault: %q wants linkdown:<link>:<at>[:<dur>]", clause)
			}
			at, err := parseDuration(args[1])
			if err != nil {
				return Profile{}, fmt.Errorf("fault: %q: %v", clause, err)
			}
			w := DownWindow{Link: args[0], At: at}
			if len(args) == 3 {
				if w.For, err = parseDuration(args[2]); err != nil {
					return Profile{}, fmt.Errorf("fault: %q: %v", clause, err)
				}
				if w.For <= 0 {
					return Profile{}, fmt.Errorf("fault: %q: outage length must be positive", clause)
				}
			}
			prof.Down = append(prof.Down, w)
		case "ber", "drop", "corrupt", "losecpl":
			if len(args) != 1 {
				return Profile{}, fmt.Errorf("fault: %q wants %s:<probability>", clause, kind)
			}
			p, err := strconv.ParseFloat(args[0], 64)
			if err != nil || p < 0 || p > 1 {
				return Profile{}, fmt.Errorf("fault: %q: probability must be in [0, 1]", clause)
			}
			switch kind {
			case "ber":
				prof.BER = p
			case "drop":
				prof.Drop = p
			case "corrupt":
				prof.Corrupt = p
			case "losecpl":
				prof.LoseCpl = p
			}
		case "stuck":
			if len(args) != 1 {
				return Profile{}, fmt.Errorf("fault: %q wants stuck:<descriptor-index>", clause)
			}
			idx, err := strconv.Atoi(args[0])
			if err != nil || idx < 0 {
				return Profile{}, fmt.Errorf("fault: %q: descriptor index must be a non-negative integer", clause)
			}
			prof.Stuck = true
			prof.StuckIndex = idx
		default:
			return Profile{}, fmt.Errorf("fault: unknown scenario clause %q (want linkdown/ber/drop/corrupt/losecpl/stuck)", clause)
		}
	}
	return prof, nil
}

// durationSuffixes maps scenario-duration suffixes to their unit. Ordered
// longest-match-first so "ns" is not parsed as the "s" suffix.
var durationSuffixes = []struct {
	suffix string
	unit   units.Duration
}{
	{"ps", units.Picosecond},
	{"ns", units.Nanosecond},
	{"us", units.Microsecond},
	{"ms", units.Millisecond},
	{"s", units.Second},
}

func parseDuration(s string) (units.Duration, error) {
	for _, su := range durationSuffixes {
		if !strings.HasSuffix(s, su.suffix) {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, su.suffix), 64)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("bad duration %q", s)
		}
		return units.Duration(v * su.unit.Picoseconds()), nil
	}
	return 0, fmt.Errorf("duration %q needs a ps/ns/us/ms/s suffix", s)
}
