package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"tca/internal/units"
)

// ScenarioError reports a syntax or range error in a scenario spec with the
// exact position of the offending token, so a failing clause in a committed
// multi-line spec file can be found without counting commas.
type ScenarioError struct {
	Line  int    // 1-based line of the offending token
	Col   int    // 1-based column (byte offset within the line) of the token
	Token string // the offending token text, verbatim
	Msg   string // what is wrong with it
}

// Error implements error.
func (e *ScenarioError) Error() string {
	return fmt.Sprintf("fault: scenario %d:%d: %q: %s", e.Line, e.Col, e.Token, e.Msg)
}

// scenarioPos converts a byte offset into spec to a 1-based line/column.
func scenarioPos(spec string, off int) (line, col int) {
	line = 1
	lastNL := -1
	if off > len(spec) {
		off = len(spec)
	}
	for i := 0; i < off; i++ {
		if spec[i] == '\n' {
			line++
			lastNL = i
		}
	}
	return line, off - lastNL
}

// scenarioErr builds a positioned *ScenarioError for the token at off.
func scenarioErr(spec string, off int, token, msg string) error {
	line, col := scenarioPos(spec, off)
	return &ScenarioError{Line: line, Col: col, Token: token, Msg: msg}
}

// ParseScenario builds a Profile from the scenario spec syntax: clauses
// separated by commas or newlines, each `kind:args`. The seed is supplied
// separately (the -seed flag) so the same scenario can be replayed under
// different random streams.
//
//	linkdown:<link>:<at>[:<dur>]   cut cable <link> at <at>, forever or for <dur>
//	ber:<rate>                     per-bit error rate on DLL frames
//	drop:<p>                       per-TLP silent-drop probability
//	corrupt:<p>                    per-TLP LCRC-failure probability
//	losecpl:<p>                    per-read lost-completion probability
//	stuck:<idx>                    wedge descriptor <idx> of every DMA chain
//
// Durations take ps/ns/us/ms/s suffixes. Example:
//
//	linkdown:2e:50us,ber:1e-7
//
// Errors are *ScenarioError values carrying the line/column and offending
// token. FormatScenario is the inverse: ParseScenario(FormatScenario(p))
// reproduces p for any p that ParseScenario can produce.
func ParseScenario(spec string, seed int64) (Profile, error) {
	prof := Profile{Seed: seed}
	sawClause := false
	for start := 0; start <= len(spec); {
		end := len(spec)
		next := len(spec) + 1
		if rel := strings.IndexAny(spec[start:], ",\n"); rel >= 0 {
			end = start + rel
			next = end + 1
		}
		raw := spec[start:end]
		lead := len(raw) - len(strings.TrimLeft(raw, " \t\r"))
		clause := strings.TrimSpace(raw)
		if clause != "" {
			if err := parseClause(&prof, spec, clause, start+lead); err != nil {
				return Profile{}, err
			}
			sawClause = true
		}
		start = next
	}
	if !sawClause {
		return Profile{}, scenarioErr(spec, 0, "", "empty scenario")
	}
	return prof, nil
}

// parseClause parses one `kind:args` clause starting at byte offset cOff of
// spec and folds it into prof.
func parseClause(prof *Profile, spec, clause string, cOff int) error {
	parts := strings.Split(clause, ":")
	// offs[i] is the byte offset of parts[i] in spec, for error positions.
	offs := make([]int, len(parts))
	o := cOff
	for i, p := range parts {
		offs[i] = o
		o += len(p) + 1
	}
	kind := parts[0]
	args := parts[1:]
	switch kind {
	case "linkdown":
		if len(args) < 2 || len(args) > 3 {
			return scenarioErr(spec, cOff, clause, "wants linkdown:<link>:<at>[:<dur>]")
		}
		at, err := parseDuration(args[1])
		if err != nil {
			return scenarioErr(spec, offs[2], args[1], err.Error())
		}
		w := DownWindow{Link: args[0], At: at}
		if len(args) == 3 {
			if w.For, err = parseDuration(args[2]); err != nil {
				return scenarioErr(spec, offs[3], args[2], err.Error())
			}
			if w.For <= 0 {
				return scenarioErr(spec, offs[3], args[2], "outage length must be positive")
			}
		}
		prof.Down = append(prof.Down, w)
	case "ber", "drop", "corrupt", "losecpl":
		if len(args) != 1 {
			return scenarioErr(spec, cOff, clause, "wants "+kind+":<probability>")
		}
		p, err := strconv.ParseFloat(args[0], 64)
		if err != nil || math.IsNaN(p) || p < 0 || p > 1 {
			return scenarioErr(spec, offs[1], args[0], "probability must be in [0, 1]")
		}
		switch kind {
		case "ber":
			prof.BER = p
		case "drop":
			prof.Drop = p
		case "corrupt":
			prof.Corrupt = p
		case "losecpl":
			prof.LoseCpl = p
		}
	case "stuck":
		if len(args) != 1 {
			return scenarioErr(spec, cOff, clause, "wants stuck:<descriptor-index>")
		}
		idx, err := strconv.Atoi(args[0])
		if err != nil || idx < 0 {
			return scenarioErr(spec, offs[1], args[0], "descriptor index must be a non-negative integer")
		}
		prof.Stuck = true
		prof.StuckIndex = idx
	default:
		return scenarioErr(spec, cOff, kind, "unknown scenario clause (want linkdown/ber/drop/corrupt/losecpl/stuck)")
	}
	return nil
}

// FormatScenario renders a Profile back into the scenario spec syntax in a
// canonical form: linkdown windows first (in order), then the probability
// knobs, then stuck. Durations are emitted in integer picoseconds and
// probabilities with strconv's shortest exact representation, so the output
// re-parses to an equal Profile. A Profile with no faults formats to "".
func FormatScenario(p Profile) string {
	var clauses []string
	for _, w := range p.Down {
		c := "linkdown:" + w.Link + ":" + formatDuration(w.At)
		if w.For != 0 {
			c += ":" + formatDuration(w.For)
		}
		clauses = append(clauses, c)
	}
	for _, knob := range []struct {
		kind string
		p    float64
	}{
		{"ber", p.BER}, {"drop", p.Drop}, {"corrupt", p.Corrupt}, {"losecpl", p.LoseCpl},
	} {
		if knob.p != 0 {
			clauses = append(clauses, knob.kind+":"+strconv.FormatFloat(knob.p, 'g', -1, 64))
		}
	}
	if p.Stuck {
		clauses = append(clauses, "stuck:"+strconv.Itoa(p.StuckIndex))
	}
	return strings.Join(clauses, ",")
}

func formatDuration(d units.Duration) string {
	return strconv.FormatFloat(d.Picoseconds(), 'f', -1, 64) + "ps"
}

// durationSuffixes maps scenario-duration suffixes to their unit. Ordered
// longest-match-first so "ns" is not parsed as the "s" suffix.
var durationSuffixes = []struct {
	suffix string
	unit   units.Duration
}{
	{"ps", units.Picosecond},
	{"ns", units.Nanosecond},
	{"us", units.Microsecond},
	{"ms", units.Millisecond},
	{"s", units.Second},
}

func parseDuration(s string) (units.Duration, error) {
	for _, su := range durationSuffixes {
		if !strings.HasSuffix(s, su.suffix) {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, su.suffix), 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return 0, fmt.Errorf("bad duration %q", s)
		}
		ps := v * su.unit.Picoseconds()
		if ps >= float64(math.MaxInt64) {
			return 0, fmt.Errorf("duration %q overflows", s)
		}
		return units.Duration(ps), nil
	}
	return 0, fmt.Errorf("duration %q needs a ps/ns/us/ms/s suffix", s)
}
