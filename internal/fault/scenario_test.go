package fault

import (
	"errors"
	"reflect"
	"testing"

	"tca/internal/units"
)

// TestScenarioErrorPositions: every parse error is a *ScenarioError that
// points at the offending token's line and column — including clauses on
// later lines of a multi-line spec file.
func TestScenarioErrorPositions(t *testing.T) {
	const unknownMsg = "unknown scenario clause (want linkdown/ber/drop/corrupt/losecpl/stuck)"
	cases := []struct {
		spec      string
		line, col int
		token     string
		msg       string
	}{
		{"", 1, 1, "", "empty scenario"},
		{" , ,", 1, 1, "", "empty scenario"},
		{"flap:2e", 1, 1, "flap", unknownMsg},
		{"ber:1e-7,flap:2e", 1, 10, "flap", unknownMsg},
		{"ber:1e-7\nflap:2e", 2, 1, "flap", unknownMsg},
		{"linkdown:2e", 1, 1, "linkdown:2e", "wants linkdown:<link>:<at>[:<dur>]"},
		{"linkdown:2e:1us:2us:3us", 1, 1, "linkdown:2e:1us:2us:3us", "wants linkdown:<link>:<at>[:<dur>]"},
		{"linkdown:2e:50", 1, 13, "50", `duration "50" needs a ps/ns/us/ms/s suffix`},
		{"linkdown:2e:50us:0us", 1, 18, "0us", "outage length must be positive"},
		{"linkdown:2e:50us:-3ns", 1, 18, "-3ns", `bad duration "-3ns"`},
		{"ber:2", 1, 5, "2", "probability must be in [0, 1]"},
		{"drop:nope", 1, 6, "nope", "probability must be in [0, 1]"},
		{"ber", 1, 1, "ber", "wants ber:<probability>"},
		{"stuck:-1", 1, 7, "-1", "descriptor index must be a non-negative integer"},
		{"ber:0.1,\n  stuck:x", 2, 9, "x", "descriptor index must be a non-negative integer"},
	}
	for _, tc := range cases {
		_, err := ParseScenario(tc.spec, 0)
		if err == nil {
			t.Errorf("ParseScenario(%q) accepted", tc.spec)
			continue
		}
		var se *ScenarioError
		if !errors.As(err, &se) {
			t.Errorf("ParseScenario(%q): error %T is not *ScenarioError", tc.spec, err)
			continue
		}
		if se.Line != tc.line || se.Col != tc.col || se.Token != tc.token || se.Msg != tc.msg {
			t.Errorf("ParseScenario(%q) = %d:%d %q %q, want %d:%d %q %q",
				tc.spec, se.Line, se.Col, se.Token, se.Msg, tc.line, tc.col, tc.token, tc.msg)
		}
	}
}

// TestScenarioErrorString pins the rendered error format scripts grep for.
func TestScenarioErrorString(t *testing.T) {
	_, err := ParseScenario("ber:2", 0)
	const want = `fault: scenario 1:5: "2": probability must be in [0, 1]`
	if err == nil || err.Error() != want {
		t.Fatalf("error = %v, want %s", err, want)
	}
}

// TestParseScenarioNewlines: newline is a clause separator equivalent to a
// comma, and blank lines are skipped — the committed corpus spec files put
// one clause per line.
func TestParseScenarioNewlines(t *testing.T) {
	prof, err := ParseScenario("linkdown:2e:50us\n\n  drop:0.01\nstuck:3", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Down) != 1 || prof.Down[0].Link != "2e" || prof.Drop != 0.01 ||
		!prof.Stuck || prof.StuckIndex != 3 {
		t.Fatalf("bad profile: %+v", prof)
	}
}

// TestFormatScenario: the canonical rendering, and that it re-parses to the
// same Profile.
func TestFormatScenario(t *testing.T) {
	p, err := ParseScenario("stuck:3,ber:1e-7,linkdown:2e:50us,linkdown:0s:1ms:250ns", 7)
	if err != nil {
		t.Fatal(err)
	}
	got := FormatScenario(p)
	want := "linkdown:2e:50000000ps,linkdown:0s:1000000000ps:250000ps,ber:1e-07,stuck:3"
	if got != want {
		t.Fatalf("FormatScenario = %q, want %q", got, want)
	}
	p2, err := ParseScenario(got, 7)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", got, err)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Fatalf("round trip changed profile: %+v vs %+v", p, p2)
	}
	if FormatScenario(Profile{Seed: 3}) != "" {
		t.Fatal("fault-free profile formatted non-empty")
	}
	if at := p.Down[0].At; at != 50*units.Microsecond {
		t.Fatalf("At = %v", at)
	}
}

// FuzzParseScenario: any spec the parser accepts must survive a
// format→re-parse round trip bit-identically, and any rejection must be a
// positioned *ScenarioError.
func FuzzParseScenario(f *testing.F) {
	for _, seed := range []string{
		"linkdown:2e:50us,ber:1e-7,drop:0.01,losecpl:0.5,stuck:3,corrupt:0.2",
		"linkdown:0s:1ms:250ns\ndrop:0.25",
		"ber:0",
		"stuck:0",
		"linkdown: 2e :1ns",
		"corrupt:0x1p-3",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		p1, err := ParseScenario(spec, 42)
		if err != nil {
			var se *ScenarioError
			if !errors.As(err, &se) {
				t.Fatalf("ParseScenario(%q): error %T is not *ScenarioError", spec, err)
			}
			if se.Line < 1 || se.Col < 1 {
				t.Fatalf("ParseScenario(%q): non-positive position %d:%d", spec, se.Line, se.Col)
			}
			return
		}
		out := FormatScenario(p1)
		if out == "" {
			if !reflect.DeepEqual(p1, Profile{Seed: 42}) {
				t.Fatalf("non-trivial profile %+v formatted empty", p1)
			}
			return
		}
		p2, err := ParseScenario(out, 42)
		if err != nil {
			t.Fatalf("FormatScenario(%q parse) = %q does not re-parse: %v", spec, out, err)
		}
		if !reflect.DeepEqual(p1, p2) {
			t.Fatalf("round trip changed profile:\n spec %q\n out  %q\n  %+v\nvs %+v", spec, out, p1, p2)
		}
	})
}
