package gpu

import (
	"fmt"

	"tca/internal/sim"
	"tca/internal/units"
)

// CopyParams sets the analytic cost model for host-driven cudaMemcpy-style
// transfers. These copies are the building blocks of the *conventional*
// GPU-to-GPU path the paper's introduction criticizes (copy to host, ship
// over the interconnect, copy to GPU); the TCA path bypasses them entirely,
// so modelling them analytically (latency + bandwidth) rather than TLP by
// TLP keeps the baseline honest without simulating the CUDA driver.
type CopyParams struct {
	// SetupLatency is the per-call driver/launch overhead — the dominant
	// term for short messages and the reason conventional short-message
	// GPU communication is expensive.
	SetupLatency units.Duration
	// HtoD and DtoH are the effective pinned-memory copy bandwidths
	// across the GPU's PCIe slot.
	HtoD units.Bandwidth
	DtoH units.Bandwidth
	// DtoD is the intra-node peer-to-peer (cudaMemcpyPeer) bandwidth
	// through the shared switch.
	DtoD units.Bandwidth
}

// K20CopyParams models CUDA 5 on the paper's test node: a Gen2 x16 slot
// moves ~5.7 GB/s effective; call overhead is in the ~7 µs class.
var K20CopyParams = CopyParams{
	SetupLatency: 7 * units.Microsecond,
	HtoD:         5.7 * units.GBPerSec,
	DtoH:         5.5 * units.GBPerSec,
	DtoD:         5.0 * units.GBPerSec,
}

// CopyEngine issues host-driven copies. Copies through the same engine
// serialize, like same-stream CUDA operations.
type CopyEngine struct {
	eng    *sim.Engine
	params CopyParams
	ser    sim.Serializer
}

// NewCopyEngine creates a copy engine with the given cost model.
func NewCopyEngine(eng *sim.Engine, params CopyParams) *CopyEngine {
	if params.HtoD <= 0 || params.DtoH <= 0 || params.DtoD <= 0 {
		panic(fmt.Sprintf("gpu: CopyParams with non-positive bandwidth: %+v", params))
	}
	return &CopyEngine{eng: eng, params: params}
}

// Params returns the engine's cost model.
func (c *CopyEngine) Params() CopyParams { return c.params }

func (c *CopyEngine) schedule(n units.ByteSize, bw units.Bandwidth, fn func(now sim.Time)) {
	dur := c.params.SetupLatency + units.TimeToSend(n, bw)
	start := c.ser.Reserve(c.eng.Now(), dur)
	c.eng.At(start.Add(dur), func() { fn(c.eng.Now()) })
}

// MemcpyHtoD copies src into g's device memory at dst — cuMemcpyHtoD. The
// bytes land and done fires when the modelled copy time elapses.
func (c *CopyEngine) MemcpyHtoD(g *GPU, dst DevicePtr, src []byte, done func(now sim.Time)) error {
	if len(src) == 0 {
		return fmt.Errorf("gpu: MemcpyHtoD of 0 bytes")
	}
	data := append([]byte(nil), src...) // the caller may reuse src
	c.schedule(units.ByteSize(len(data)), c.params.HtoD, func(now sim.Time) {
		if err := g.Memory().Write(uint64(dst), data); err != nil {
			panic(fmt.Sprintf("gpu %s: MemcpyHtoD: %v", g.name, err))
		}
		if done != nil {
			done(now)
		}
	})
	return nil
}

// MemcpyDtoH copies n bytes from g's device memory at src — cuMemcpyDtoH.
// done receives the data snapshot taken at completion time.
func (c *CopyEngine) MemcpyDtoH(g *GPU, src DevicePtr, n units.ByteSize, done func(now sim.Time, data []byte)) error {
	if n <= 0 {
		return fmt.Errorf("gpu: MemcpyDtoH of %d bytes", n)
	}
	if done == nil {
		return fmt.Errorf("gpu: MemcpyDtoH needs a completion callback")
	}
	c.schedule(n, c.params.DtoH, func(now sim.Time) {
		data, err := g.Memory().ReadBytes(uint64(src), n)
		if err != nil {
			panic(fmt.Sprintf("gpu %s: MemcpyDtoH: %v", g.name, err))
		}
		done(now, data)
	})
	return nil
}

// MemcpyPeer copies n bytes from (srcGPU, src) to (dstGPU, dst) within a
// node — the cudaMemcpyPeer the TCA API generalizes across nodes (§III-H).
func (c *CopyEngine) MemcpyPeer(dstGPU *GPU, dst DevicePtr, srcGPU *GPU, src DevicePtr, n units.ByteSize, done func(now sim.Time)) error {
	if n <= 0 {
		return fmt.Errorf("gpu: MemcpyPeer of %d bytes", n)
	}
	c.schedule(n, c.params.DtoD, func(now sim.Time) {
		data, err := srcGPU.Memory().ReadBytes(uint64(src), n)
		if err != nil {
			panic(fmt.Sprintf("gpu %s: MemcpyPeer read: %v", srcGPU.name, err))
		}
		if err := dstGPU.Memory().Write(uint64(dst), data); err != nil {
			panic(fmt.Sprintf("gpu %s: MemcpyPeer write: %v", dstGPU.name, err))
		}
		if done != nil {
			done(now)
		}
	})
	return nil
}
