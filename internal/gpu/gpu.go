// Package gpu models a CUDA-class accelerator well enough to exercise the
// TCA communication paths: device-memory allocation, the GPUDirect Support
// for RDMA pinning sequence (token → pin → BAR address), a BAR1 window that
// translates bus addresses to device pages, and the timing personalities the
// paper measured — a deep posted-write queue that never stalls the fabric,
// and a BAR read path serialized by the address-translation unit (the
// 830 MB/s inbound-read ceiling of §IV-A2).
package gpu

import (
	"fmt"

	"tca/internal/memory"
	"tca/internal/obsv"
	"tca/internal/pcie"
	"tca/internal/sim"
	"tca/internal/units"
)

// PinPageSize is the granularity at which GPUDirect pins device memory into
// the PCIe address space ("this feature enables the GPU memory at page
// granularity to be mapped", §III-C). Kepler BAR1 maps 64 KiB pages.
const PinPageSize = 64 * units.KiB

// Params describes one GPU.
type Params struct {
	// Model is the marketing name ("NVIDIA Tesla K20").
	Model string
	// MemorySize is the GDDR capacity.
	MemorySize units.ByteSize
	// BAR1Size is the window mappable into PCIe space (256 MiB on K20).
	BAR1Size units.ByteSize
	// WriteDrain would throttle posted writes; the GPU's request queue is
	// deep enough that it never does (DeepWriteQueue below).
	WriteDrain units.Duration
	// BARReadLatency is the pipeline latency of an inbound read.
	BARReadLatency units.Duration
	// BARReadService serializes inbound reads through the BAR address
	// translation unit; 256 B per ~308 ns ≈ 830 MB/s.
	BARReadService units.Duration
}

// K20Params matches the paper's test GPU (Table II) with the read-path
// behaviour measured in §IV-A2.
var K20Params = Params{
	Model:          "NVIDIA Tesla K20",
	MemorySize:     5 * units.GiB,
	BAR1Size:       256 * units.MiB,
	BARReadLatency: 400 * units.Nanosecond,
	BARReadService: 308 * units.Nanosecond,
}

// DevicePtr is a device-local GDDR address, as returned by MemAlloc — the
// analogue of CUdeviceptr.
type DevicePtr uint64

// P2PToken grants another PCIe device permission to pin a region of this
// GPU's memory — the value cuPointerGetAttribute(CU_POINTER_ATTRIBUTE_
// P2P_TOKENS) returns.
type P2PToken struct {
	gpu *GPU
	ptr DevicePtr
	n   units.ByteSize
}

// GPU is the device model. It attaches to a PCIe switch through its single
// upstream port; inbound Memory Writes land in GDDR through pinned BAR1
// pages, inbound Memory Reads return completions after translation delay.
type GPU struct {
	eng    *sim.Engine
	name   string
	params Params
	mem    *memory.RAM
	port   *pcie.Port

	// allocNext is a bump allocator over GDDR; MemFree tracks live
	// allocations to catch double frees but does not recycle space (the
	// experiments never need it).
	allocNext DevicePtr
	live      map[DevicePtr]units.ByteSize

	// BAR1: bar1Base is assigned by the node topology; pinned maps BAR1
	// page index → GDDR page offset.
	bar1Base pcie.Addr
	bar1Next units.ByteSize
	pinned   map[uint64]uint64

	readSer   sim.Serializer
	writeTLPs uint64
	readTLPs  uint64
	bytesIn   units.ByteSize
	bytesOut  units.ByteSize

	// led is the conservation ledger (nil when disabled): the GPU is the
	// sink of every packet that lands in GDDR or is served from it.
	led obsv.Ledger

	watches []gpuWatch
}

type gpuWatch struct {
	ptr pcie.Range // device-pointer range
	fn  func(now sim.Time, ptr DevicePtr, n units.ByteSize)
}

// New creates a GPU.
func New(eng *sim.Engine, name string, params Params) *GPU {
	if params.MemorySize <= 0 || params.BAR1Size <= 0 {
		panic(fmt.Sprintf("gpu %s: invalid sizes %v/%v", name, params.MemorySize, params.BAR1Size))
	}
	g := &GPU{
		eng:    eng,
		name:   name,
		params: params,
		mem:    memory.NewRAM(params.MemorySize),
		live:   make(map[DevicePtr]units.ByteSize),
		pinned: make(map[uint64]uint64),
		// Leave device page 0 unused so DevicePtr 0 can mean "null".
		allocNext: DevicePtr(PinPageSize),
	}
	g.port = pcie.NewPort(g, "pcie", pcie.RoleEP)
	return g
}

// DevName implements pcie.Device.
func (g *GPU) DevName() string { return g.name }

// Instrument attaches the GPU to an observability set; today that is just
// the conservation-ledger handle, so inbound writes and reads terminating
// in GDDR are accounted as delivered.
func (g *GPU) Instrument(set *obsv.Set) {
	g.led = set.Ledger()
}

// Params returns the construction parameters.
func (g *GPU) Params() Params { return g.params }

// Port returns the GPU's upstream PCIe port.
func (g *GPU) Port() *pcie.Port { return g.port }

// Memory exposes the GDDR for test assertions and host-side cudaMemcpy.
func (g *GPU) Memory() *memory.RAM { return g.mem }

// SetBAR1Base assigns the bus address of the BAR1 window; the node topology
// calls it during enumeration, before any pinning.
func (g *GPU) SetBAR1Base(b pcie.Addr) {
	if len(g.pinned) > 0 {
		panic(fmt.Sprintf("gpu %s: SetBAR1Base after pages were pinned", g.name))
	}
	g.bar1Base = b
}

// BAR1Window reports the bus window of BAR1.
func (g *GPU) BAR1Window() pcie.Range {
	return pcie.Range{Base: g.bar1Base, Size: uint64(g.params.BAR1Size)}
}

// MemAlloc reserves n bytes of GDDR — the cuMemAlloc analogue. Allocations
// are PinPageSize-aligned so any allocation can be pinned.
func (g *GPU) MemAlloc(n units.ByteSize) (DevicePtr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("gpu %s: MemAlloc(%d)", g.name, n)
	}
	aligned := (n + PinPageSize - 1) / PinPageSize * PinPageSize
	if units.ByteSize(g.allocNext)+aligned > g.params.MemorySize {
		return 0, fmt.Errorf("gpu %s: out of device memory (%v requested, %v free)",
			g.name, n, g.params.MemorySize-units.ByteSize(g.allocNext))
	}
	ptr := g.allocNext
	g.allocNext += DevicePtr(aligned)
	g.live[ptr] = n
	return ptr, nil
}

// MemFree releases an allocation — the cuMemFree analogue.
func (g *GPU) MemFree(ptr DevicePtr) error {
	if _, ok := g.live[ptr]; !ok {
		return fmt.Errorf("gpu %s: MemFree of unknown pointer %#x", g.name, uint64(ptr))
	}
	delete(g.live, ptr)
	return nil
}

// PointerGetAttribute returns the P2P token for an allocation — step 2 of
// the GPUDirect RDMA sequence in §IV-A2.
func (g *GPU) PointerGetAttribute(ptr DevicePtr) (P2PToken, error) {
	n, ok := g.live[ptr]
	if !ok {
		return P2PToken{}, fmt.Errorf("gpu %s: no allocation at %#x", g.name, uint64(ptr))
	}
	return P2PToken{gpu: g, ptr: ptr, n: n}, nil
}

// Pin maps the token's pages into BAR1 and returns the bus address other
// devices use to reach the memory — step 3, the P2P driver's job. The
// mapping is page-granular; the returned address points at the token's
// first byte.
func (g *GPU) Pin(tok P2PToken) (pcie.Addr, error) {
	if tok.gpu != g {
		return 0, fmt.Errorf("gpu %s: token belongs to %s", g.name, tok.gpu.name)
	}
	if g.bar1Base == 0 {
		return 0, fmt.Errorf("gpu %s: BAR1 not assigned yet", g.name)
	}
	firstPage := uint64(tok.ptr) / uint64(PinPageSize)
	lastPage := (uint64(tok.ptr) + uint64(tok.n) - 1) / uint64(PinPageSize)
	pages := lastPage - firstPage + 1
	if g.bar1Next+units.ByteSize(pages)*PinPageSize > g.params.BAR1Size {
		return 0, fmt.Errorf("gpu %s: BAR1 exhausted pinning %v", g.name, tok.n)
	}
	barStart := g.bar1Next
	for i := uint64(0); i < pages; i++ {
		barPage := uint64(barStart)/uint64(PinPageSize) + i
		g.pinned[barPage] = firstPage + i
	}
	g.bar1Next += units.ByteSize(pages) * PinPageSize
	off := uint64(tok.ptr) % uint64(PinPageSize)
	return g.bar1Base + pcie.Addr(uint64(barStart)+off), nil
}

// translate maps a bus address inside BAR1 to a GDDR offset via the pinned
// page table.
func (g *GPU) translate(a pcie.Addr) (uint64, error) {
	if !g.BAR1Window().Contains(a) {
		return 0, fmt.Errorf("gpu %s: address %v outside BAR1 %v", g.name, a, g.BAR1Window())
	}
	off := uint64(a - g.bar1Base)
	devPage, ok := g.pinned[off/uint64(PinPageSize)]
	if !ok {
		return 0, fmt.Errorf("gpu %s: access to unpinned BAR1 page at %v", g.name, a)
	}
	return devPage*uint64(PinPageSize) + off%uint64(PinPageSize), nil
}

// Watch calls fn whenever an inbound write touches the device-pointer range
// [ptr, ptr+n) — how applications poll arrival flags in GPU memory.
func (g *GPU) Watch(ptr DevicePtr, n units.ByteSize, fn func(now sim.Time, ptr DevicePtr, n units.ByteSize)) {
	g.watches = append(g.watches, gpuWatch{
		ptr: pcie.Range{Base: pcie.Addr(ptr), Size: uint64(n)},
		fn:  fn,
	})
}

// Stats reports inbound write/read TLP counts and payload bytes.
func (g *GPU) Stats() (writeTLPs, readTLPs uint64, bytesIn, bytesOut units.ByteSize) {
	return g.writeTLPs, g.readTLPs, g.bytesIn, g.bytesOut
}

// Accept implements pcie.Device.
func (g *GPU) Accept(now sim.Time, t *pcie.TLP, port *pcie.Port) units.Duration {
	switch t.Kind {
	case pcie.MWr:
		off, err := g.translate(t.Addr)
		if err != nil {
			panic(err)
		}
		if err := g.mem.Write(off, t.Data); err != nil {
			panic(fmt.Sprintf("gpu %s: %v", g.name, err))
		}
		g.writeTLPs++
		g.bytesIn += t.PayloadLen()
		hit := pcie.Range{Base: pcie.Addr(off), Size: uint64(len(t.Data))}
		for _, w := range g.watches {
			if w.ptr.Overlaps(hit) {
				w.fn(now, DevicePtr(off), units.ByteSize(len(t.Data)))
			}
		}
		if g.led != nil && t.LID != 0 {
			g.led.Delivered(now, t.LID, uint64(t.Addr), t.Data, g.name)
		}
		// The write terminated in GDDR: the GPU is the packet's sink.
		t.Release()
		// "The GPU is assumed to be of sufficient size for the request
		// queue from PCIe" (§IV-B2): credit returns immediately.
		return 0
	case pcie.MRd:
		g.readTLPs++
		if g.led != nil && t.LID != 0 {
			g.led.Delivered(now, t.LID, uint64(t.Addr), nil, g.name)
		}
		req := *t
		t.Release()
		// The BAR translation unit works through the request in
		// completion-sized units: a 512 B read costs two service slots.
		// This is what pins inbound read bandwidth to ~256 B per
		// service interval (≈830 MB/s) regardless of read-request size.
		unitCount := (int64(req.ReadLen) + 255) / 256
		service := units.Duration(unitCount) * g.params.BARReadService
		start := g.readSer.Reserve(now, service)
		reply := start.Add(service).Add(g.params.BARReadLatency)
		g.eng.At(reply, func() {
			off, err := g.translate(req.Addr)
			if err != nil {
				panic(err)
			}
			data, err := g.mem.ReadBytes(off, req.ReadLen)
			if err != nil {
				panic(fmt.Sprintf("gpu %s: %v", g.name, err))
			}
			g.bytesOut += units.ByteSize(len(data))
			maxPayload := port.Link().Params().MaxPayload
			for _, c := range pcie.SplitCompletion(&req, data, maxPayload) {
				port.Send(g.eng.Now(), c)
			}
		})
		return 0
	default:
		panic(fmt.Sprintf("gpu %s: unexpected %v", g.name, t.Kind))
	}
}
