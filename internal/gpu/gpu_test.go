package gpu

import (
	"bytes"
	"testing"
	"testing/quick"

	"tca/internal/pcie"
	"tca/internal/sim"
	"tca/internal/units"
)

func testGPU(eng *sim.Engine) *GPU {
	g := New(eng, "gpu0", K20Params)
	g.SetBAR1Base(0x1_0000_0000)
	return g
}

func TestMemAllocAlignmentAndExhaustion(t *testing.T) {
	eng := sim.NewEngine()
	g := New(eng, "g", Params{Model: "t", MemorySize: 512 * units.KiB, BAR1Size: 256 * units.KiB})
	p1, err := g.MemAlloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(p1)%uint64(PinPageSize) != 0 {
		t.Fatalf("allocation %#x not page aligned", uint64(p1))
	}
	p2, err := g.MemAlloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p1 {
		t.Fatal("overlapping allocations")
	}
	// 512 KiB total, page 0 reserved, two pages used: 5 pages left.
	for i := 0; i < 5; i++ {
		if _, err := g.MemAlloc(PinPageSize); err != nil {
			t.Fatalf("alloc %d failed early: %v", i, err)
		}
	}
	if _, err := g.MemAlloc(1); err == nil {
		t.Fatal("allocation beyond capacity succeeded")
	}
}

func TestMemAllocRejectsNonPositive(t *testing.T) {
	eng := sim.NewEngine()
	g := testGPU(eng)
	if _, err := g.MemAlloc(0); err == nil {
		t.Fatal("MemAlloc(0) succeeded")
	}
}

func TestMemFree(t *testing.T) {
	eng := sim.NewEngine()
	g := testGPU(eng)
	p, _ := g.MemAlloc(64)
	if err := g.MemFree(p); err != nil {
		t.Fatal(err)
	}
	if err := g.MemFree(p); err == nil {
		t.Fatal("double free succeeded")
	}
}

func TestGPUDirectPinSequence(t *testing.T) {
	// The four-step sequence from §IV-A2: alloc, get token, pin, access.
	eng := sim.NewEngine()
	g := testGPU(eng)
	ptr, err := g.MemAlloc(128 * units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	tok, err := g.PointerGetAttribute(ptr)
	if err != nil {
		t.Fatal(err)
	}
	bus, err := g.Pin(tok)
	if err != nil {
		t.Fatal(err)
	}
	if !g.BAR1Window().Contains(bus) {
		t.Fatalf("pinned address %v outside BAR1 %v", bus, g.BAR1Window())
	}
	// A write through the pinned bus address must land at the device ptr.
	port := pcie.NewPort(&fakeHost{}, "dn", pcie.RoleRC)
	pcie.MustConnect(eng, port, g.Port(), pcie.LinkParams{Config: pcie.Gen2x8})
	payload := []byte("gpudirect rdma")
	port.Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: bus, Data: payload})
	eng.Run()
	got, err := g.Memory().ReadBytes(uint64(ptr), units.ByteSize(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("GDDR contains %q, want %q", got, payload)
	}
}

type fakeHost struct {
	got []*pcie.TLP
	at  []sim.Time
}

func (f *fakeHost) DevName() string { return "host" }
func (f *fakeHost) Accept(now sim.Time, t *pcie.TLP, p *pcie.Port) units.Duration {
	f.got = append(f.got, t)
	f.at = append(f.at, now)
	return 0
}

func TestPointerGetAttributeUnknownPtr(t *testing.T) {
	eng := sim.NewEngine()
	g := testGPU(eng)
	if _, err := g.PointerGetAttribute(DevicePtr(0xdead0000)); err == nil {
		t.Fatal("token for unknown pointer granted")
	}
}

func TestPinForeignTokenRejected(t *testing.T) {
	eng := sim.NewEngine()
	g1 := testGPU(eng)
	g2 := New(eng, "gpu1", K20Params)
	g2.SetBAR1Base(0x2_0000_0000)
	p, _ := g2.MemAlloc(64)
	tok, _ := g2.PointerGetAttribute(p)
	if _, err := g1.Pin(tok); err == nil {
		t.Fatal("pinning a foreign GPU's token succeeded")
	}
}

func TestPinWithoutBARBase(t *testing.T) {
	eng := sim.NewEngine()
	g := New(eng, "g", K20Params)
	p, _ := g.MemAlloc(64)
	tok, _ := g.PointerGetAttribute(p)
	if _, err := g.Pin(tok); err == nil {
		t.Fatal("pin before BAR1 assignment succeeded")
	}
}

func TestPinBAR1Exhaustion(t *testing.T) {
	eng := sim.NewEngine()
	g := New(eng, "g", Params{Model: "t", MemorySize: 4 * units.MiB, BAR1Size: 2 * PinPageSize})
	g.SetBAR1Base(0x1000_0000)
	p1, _ := g.MemAlloc(2 * PinPageSize)
	tok1, _ := g.PointerGetAttribute(p1)
	if _, err := g.Pin(tok1); err != nil {
		t.Fatal(err)
	}
	p2, _ := g.MemAlloc(PinPageSize)
	tok2, _ := g.PointerGetAttribute(p2)
	if _, err := g.Pin(tok2); err == nil {
		t.Fatal("pin beyond BAR1 capacity succeeded")
	}
}

func TestUnpinnedAccessPanics(t *testing.T) {
	eng := sim.NewEngine()
	g := testGPU(eng)
	port := pcie.NewPort(&fakeHost{}, "dn", pcie.RoleRC)
	pcie.MustConnect(eng, port, g.Port(), pcie.LinkParams{Config: pcie.Gen2x8})
	defer func() {
		if recover() == nil {
			t.Fatal("write to unpinned BAR1 page did not panic")
		}
	}()
	port.Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: 0x1_0000_0000, Data: []byte{1}})
	eng.Run()
}

func TestBARReadSerializationCapsBandwidth(t *testing.T) {
	// 64 reads of 256 B through a 308 ns service unit must take ≈64×308 ns,
	// i.e. ~830 MB/s — the §IV-A2 ceiling.
	eng := sim.NewEngine()
	g := testGPU(eng)
	ptr, _ := g.MemAlloc(64 * units.KiB)
	tok, _ := g.PointerGetAttribute(ptr)
	bus, _ := g.Pin(tok)
	host := &fakeHost{}
	port := pcie.NewPort(host, "dn", pcie.RoleRC)
	pcie.MustConnect(eng, port, g.Port(), pcie.LinkParams{Config: pcie.Gen2x8})
	const reads = 64
	for i := 0; i < reads; i++ {
		port.Send(0, &pcie.TLP{Kind: pcie.MRd, Addr: bus + pcie.Addr(i*256), ReadLen: 256, Tag: uint8(i), Requester: 1})
	}
	end, _ := eng.Run()
	bw := units.Rate(reads*256, units.Duration(end))
	if bw.MBps() < 700 || bw.MBps() > 900 {
		t.Fatalf("inbound read bandwidth = %v, want ~830MB/s", bw)
	}
	var data units.ByteSize
	for _, c := range host.got {
		if c.Kind != pcie.CplD {
			t.Fatalf("host got %v", c.Kind)
		}
		data += c.PayloadLen()
	}
	if data != reads*256 {
		t.Fatalf("completions carried %d bytes, want %d", data, reads*256)
	}
}

func TestDeepWriteQueueNoBackpressure(t *testing.T) {
	eng := sim.NewEngine()
	g := testGPU(eng)
	ptr, _ := g.MemAlloc(units.MiB)
	tok, _ := g.PointerGetAttribute(ptr)
	bus, _ := g.Pin(tok)
	port := pcie.NewPort(&fakeHost{}, "dn", pcie.RoleRC)
	l := pcie.MustConnect(eng, port, g.Port(), pcie.LinkParams{Config: pcie.Gen2x8, CreditTLPs: 2})
	for i := 0; i < 64; i++ {
		port.Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: bus + pcie.Addr(i*256), Data: make([]byte, 232)})
	}
	end, _ := eng.Run()
	// 64 × 256 B wire at 4 GB/s = 4096 ns, no stall.
	if end != sim.Time(4096*units.Nanosecond) {
		t.Fatalf("writes drained in %v, want 4096ns (wire rate)", end)
	}
	if l.QueuedTLPs(port) != 0 {
		t.Fatal("packets still queued")
	}
}

func TestGPUWatch(t *testing.T) {
	eng := sim.NewEngine()
	g := testGPU(eng)
	ptr, _ := g.MemAlloc(4 * units.KiB)
	tok, _ := g.PointerGetAttribute(ptr)
	bus, _ := g.Pin(tok)
	var fired int
	g.Watch(ptr+100, 4, func(now sim.Time, p DevicePtr, n units.ByteSize) { fired++ })
	port := pcie.NewPort(&fakeHost{}, "dn", pcie.RoleRC)
	pcie.MustConnect(eng, port, g.Port(), pcie.LinkParams{Config: pcie.Gen2x8})
	port.Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: bus, Data: make([]byte, 64)})         // miss
	port.Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: bus + 100, Data: []byte{1, 2, 3, 4}}) // hit
	eng.Run()
	if fired != 1 {
		t.Fatalf("watch fired %d times, want 1", fired)
	}
}

// Property: pin/translate round-trips for arbitrary offsets within an
// allocation.
func TestQuickPinTranslation(t *testing.T) {
	f := func(allocPages uint8, off uint32) bool {
		eng := sim.NewEngine()
		g := New(eng, "g", Params{Model: "t", MemorySize: 64 * units.MiB, BAR1Size: 32 * units.MiB})
		g.SetBAR1Base(0x4_0000_0000)
		pages := units.ByteSize(allocPages%16 + 1)
		size := pages * PinPageSize
		ptr, err := g.MemAlloc(size)
		if err != nil {
			return false
		}
		tok, err := g.PointerGetAttribute(ptr)
		if err != nil {
			return false
		}
		bus, err := g.Pin(tok)
		if err != nil {
			return false
		}
		o := uint64(off) % uint64(size)
		devOff, err := g.translate(bus + pcie.Addr(o))
		if err != nil {
			return false
		}
		return devOff == uint64(ptr)+o
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCopyEngineHtoDDtoH(t *testing.T) {
	eng := sim.NewEngine()
	g := testGPU(eng)
	ce := NewCopyEngine(eng, K20CopyParams)
	ptr, _ := g.MemAlloc(4 * units.KiB)
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	var up, down sim.Time
	var got []byte
	if err := ce.MemcpyHtoD(g, ptr, src, func(now sim.Time) { up = now }); err != nil {
		t.Fatal(err)
	}
	if err := ce.MemcpyDtoH(g, ptr, 4096, func(now sim.Time, data []byte) { down, got = now, data }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !bytes.Equal(got, src) {
		t.Fatal("round trip corrupted data")
	}
	// Each copy ≈ 7 µs setup + ~0.73 µs payload; second serializes after
	// the first.
	if up < sim.Time(7*units.Microsecond) {
		t.Fatalf("HtoD finished at %v — setup latency missing", up)
	}
	if down < up+sim.Time(7*units.Microsecond) {
		t.Fatalf("DtoH at %v did not serialize after HtoD at %v", down, up)
	}
}

func TestCopyEngineMemcpyPeer(t *testing.T) {
	eng := sim.NewEngine()
	a := testGPU(eng)
	b := New(eng, "gpu1", K20Params)
	b.SetBAR1Base(0x2_0000_0000)
	ce := NewCopyEngine(eng, K20CopyParams)
	pa, _ := a.MemAlloc(units.KiB)
	pb, _ := b.MemAlloc(units.KiB)
	want := []byte("peer to peer")
	if err := a.Memory().Write(uint64(pa), want); err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time
	if err := ce.MemcpyPeer(b, pb, a, pa, units.ByteSize(len(want)), func(now sim.Time) { doneAt = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	got, _ := b.Memory().ReadBytes(uint64(pb), units.ByteSize(len(want)))
	if !bytes.Equal(got, want) {
		t.Fatal("peer copy corrupted data")
	}
	if doneAt < sim.Time(7*units.Microsecond) {
		t.Fatalf("peer copy at %v — setup latency missing", doneAt)
	}
}

func TestCopyEngineValidation(t *testing.T) {
	eng := sim.NewEngine()
	g := testGPU(eng)
	ce := NewCopyEngine(eng, K20CopyParams)
	if err := ce.MemcpyHtoD(g, 0, nil, nil); err == nil {
		t.Fatal("empty HtoD accepted")
	}
	if err := ce.MemcpyDtoH(g, 0, 0, func(sim.Time, []byte) {}); err == nil {
		t.Fatal("zero DtoH accepted")
	}
	if err := ce.MemcpyDtoH(g, 0, 8, nil); err == nil {
		t.Fatal("DtoH without callback accepted")
	}
	if err := ce.MemcpyPeer(g, 0, g, 0, 0, nil); err == nil {
		t.Fatal("zero MemcpyPeer accepted")
	}
}

func TestGPUStatsCounters(t *testing.T) {
	eng := sim.NewEngine()
	g := testGPU(eng)
	ptr, _ := g.MemAlloc(64 * units.KiB)
	tok, _ := g.PointerGetAttribute(ptr)
	bus, _ := g.Pin(tok)
	host := &fakeHost{}
	port := pcie.NewPort(host, "dn", pcie.RoleRC)
	pcie.MustConnect(eng, port, g.Port(), pcie.LinkParams{Config: pcie.Gen2x8})
	port.Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: bus, Data: make([]byte, 128)})
	port.Send(0, &pcie.TLP{Kind: pcie.MRd, Addr: bus, ReadLen: 64, Tag: 1, Requester: 1})
	eng.Run()
	w, r, in, out := g.Stats()
	if w != 1 || r != 1 || in != 128 || out != 64 {
		t.Fatalf("stats = %d/%d/%d/%d", w, r, in, out)
	}
}

func TestBARReadLatencyFloor(t *testing.T) {
	// A single read must take at least service + latency.
	eng := sim.NewEngine()
	g := testGPU(eng)
	ptr, _ := g.MemAlloc(4 * units.KiB)
	tok, _ := g.PointerGetAttribute(ptr)
	bus, _ := g.Pin(tok)
	host := &fakeHost{}
	port := pcie.NewPort(host, "dn", pcie.RoleRC)
	pcie.MustConnect(eng, port, g.Port(), pcie.LinkParams{Config: pcie.Gen2x8})
	port.Send(0, &pcie.TLP{Kind: pcie.MRd, Addr: bus, ReadLen: 64, Tag: 1, Requester: 1})
	eng.Run()
	min := sim.Time(K20Params.BARReadService + K20Params.BARReadLatency)
	if host.at[0] < min {
		t.Fatalf("completion at %v, want >= %v", host.at[0], min)
	}
}

func TestBARReadServiceScalesWithRequestSize(t *testing.T) {
	// A 512 B request must cost two 256 B service units, keeping the
	// byte rate pinned regardless of request size.
	eng := sim.NewEngine()
	g := testGPU(eng)
	ptr, _ := g.MemAlloc(64 * units.KiB)
	tok, _ := g.PointerGetAttribute(ptr)
	bus, _ := g.Pin(tok)
	host := &fakeHost{}
	port := pcie.NewPort(host, "dn", pcie.RoleRC)
	pcie.MustConnect(eng, port, g.Port(), pcie.LinkParams{Config: pcie.Gen2x8})
	const reads = 32
	for i := 0; i < reads; i++ {
		port.Send(0, &pcie.TLP{Kind: pcie.MRd, Addr: bus + pcie.Addr(i*512), ReadLen: 512, Tag: uint8(i), Requester: 1})
	}
	end, _ := eng.Run()
	bw := units.Rate(reads*512, units.Duration(end))
	if bw.MBps() < 700 || bw.MBps() > 900 {
		t.Fatalf("512B-request read bandwidth = %v, want the same ~830MB/s ceiling", bw)
	}
}
