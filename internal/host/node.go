// Package host models one HA-PACS/TCA computation node (§III-C, Fig. 2): a
// dual-socket Xeon E5 root complex with DRAM, a PCIe switch per socket, four
// GPUs (two per socket), and slots for the PEACH2 board and the InfiniBand
// NIC. It also provides the software side the drivers need: DMA buffer
// allocation in host memory, uncached CPU stores for PIO, a polling loop
// with realistic detection latency, and the TSC (the simulated clock).
package host

import (
	"fmt"

	"tca/internal/fault"
	"tca/internal/gpu"
	"tca/internal/memory"
	"tca/internal/obsv"
	"tca/internal/pcie"
	"tca/internal/prof"
	"tca/internal/sim"
	"tca/internal/units"
)

// Bus-address layout inside one node. DRAM occupies low addresses; device
// BARs sit above it; the TCA global window (PEACH2's BAR) is assigned by the
// sub-cluster plan far above everything local.
const (
	// DeviceWindowBase is where per-device BAR assignment starts — above
	// the largest supported DRAM so device windows never shadow host
	// memory.
	DeviceWindowBase pcie.Addr = 0x40_0000_0000
	// DeviceWindowStride spaces BARs so every device gets an aligned slot.
	DeviceWindowStride = 0x1_0000_0000
)

// Params configures a node's hardware timing.
type Params struct {
	// DRAMSize is host memory capacity (128 GiB on HA-PACS).
	DRAMSize units.ByteSize
	// DRAMReadLatency is memory-controller + DDR3 access time for
	// device-initiated reads.
	DRAMReadLatency units.Duration
	// DRAMWriteDrain is how long an inbound posted write occupies the RC
	// ingress before its credit frees.
	DRAMWriteDrain units.Duration
	// StoreLatency is a CPU uncached/write-combining store reaching the
	// root complex — the first leg of PIO communication.
	StoreLatency units.Duration
	// PollDetectLatency is how long after a DMA write lands in DRAM a
	// spinning CPU poll loop observes the new value (cache snoop +
	// loop granularity).
	PollDetectLatency units.Duration
	// QPILatency is the extra hop latency for PCIe traffic crossing
	// sockets.
	QPILatency units.Duration
	// QPIWriteService serializes cross-QPI peer-to-peer writes; §IV-A2
	// measured "up to several hundred Mbytes/sec", i.e. ~800 ns per
	// 256 B TLP.
	QPIWriteService units.Duration
	// Switch configures the per-socket PCIe switches.
	Switch pcie.SwitchParams
	// MaxPayload is negotiated across the node's internal links (0 =
	// pcie.DefaultMaxPayload). The paper's environment negotiated 256
	// bytes (§IV-A); the payload-sensitivity ablation varies it.
	MaxPayload units.ByteSize
	// GPU and Copy set the GPU models and host-driven copy costs.
	GPU  gpu.Params
	Copy gpu.CopyParams
}

// DefaultParams matches the paper's test environment (Table II).
var DefaultParams = Params{
	DRAMSize:          128 * units.GiB,
	DRAMReadLatency:   250 * units.Nanosecond,
	DRAMWriteDrain:    16 * units.Nanosecond,
	StoreLatency:      150 * units.Nanosecond,
	PollDetectLatency: 60 * units.Nanosecond,
	QPILatency:        400 * units.Nanosecond,
	QPIWriteService:   800 * units.Nanosecond,
	Switch:            pcie.DefaultSwitchParams,
	GPU:               gpu.K20Params,
	Copy:              gpu.K20CopyParams,
}

// GPUsPerNode is fixed by the HA-PACS node design.
const GPUsPerNode = 4

// Node is one computation node.
type Node struct {
	eng    *sim.Engine
	id     int
	name   string
	params Params

	rc    *RootComplex
	socks [2]*pcie.Switch
	gpus  [GPUsPerNode]*gpu.GPU
	copyE *gpu.CopyEngine

	nextWindow pcie.Addr
	dmaNext    uint64
	idNext     pcie.DeviceID

	// pool recycles the TLPs the node's CPU originates (PIO stores);
	// storeFree and pollFree recycle the store-issue and poll-detect
	// actions. All single-threaded, owned by the engine's event loop.
	pool      pcie.TLPPool
	storeFree []*storeAction
	pollFree  []*pollAction

	// Observability (nil when disabled).
	rec *obsv.Recorder
	// comp is the node's host-time attribution tag (0 when unprofiled):
	// CPU stores, poll-loop detections, root-complex service, and QPI
	// forwards all charge the simulator time they cost to this component.
	comp sim.CompID
}

// Instrument attaches the node and its root complex to an observability
// set: every subsequent Store is a traced transaction, and DRAM traffic
// records host-side span events and counters.
func (n *Node) Instrument(set *obsv.Set) {
	n.rec = set.Recorder()
	n.rc.instrument(set)
	for _, sw := range n.socks {
		sw.Instrument(set)
	}
	for _, g := range n.gpus {
		if g != nil {
			g.Instrument(set)
		}
	}
}

// Profile registers the node with an engine profiler so host CPU time
// spent simulating it (stores, polls, DRAM and QPI service) is attributed
// under the node's name. Safe with a nil profiler.
func (n *Node) Profile(p *prof.Profiler) {
	n.comp = p.Component(n.name)
	for s, sw := range n.socks {
		sw.Profile(p)
		if port := n.rc.dn[s]; port.Connected() {
			port.Link().Profile(p, fmt.Sprintf("link:%s.sock%d.up", n.name, s))
		}
	}
	for i, g := range n.gpus {
		if g != nil && g.Port().Connected() {
			g.Port().Link().Profile(p, fmt.Sprintf("link:%s.gpu%d", n.name, i))
		}
	}
}

// NewNode builds a node with its switches and four GPUs attached. PEACH2
// boards and NICs attach afterwards via AttachDevice.
func NewNode(eng *sim.Engine, id int, params Params) *Node {
	n := &Node{
		eng:        eng,
		id:         id,
		name:       fmt.Sprintf("node%d", id),
		params:     params,
		nextWindow: DeviceWindowBase,
		dmaNext:    4096, // keep bus address 0 unused
		idNext:     pcie.DeviceID(1 + 100*id),
	}
	n.rc = newRootComplex(n)
	for s := 0; s < 2; s++ {
		sw := pcie.NewSwitch(eng, fmt.Sprintf("%s.sock%d", n.name, s), params.Switch)
		n.socks[s] = sw
		pcie.MustConnect(eng, n.rc.dn[s], sw.Upstream(), pcie.LinkParams{Config: pcie.Gen3x16, MaxPayload: params.MaxPayload})
	}
	// Four GPUs: GPU0/1 on socket 0 (reachable by PEACH2), GPU2/3 on
	// socket 1 (behind QPI).
	for i := 0; i < GPUsPerNode; i++ {
		g := gpu.New(eng, fmt.Sprintf("%s.gpu%d", n.name, i), params.GPU)
		w := n.allocWindow(uint64(params.GPU.BAR1Size))
		g.SetBAR1Base(w.Base)
		sock := 0
		if i >= 2 {
			sock = 1
		}
		n.attach(sock, fmt.Sprintf("gpu%d", i), w, g.Port(), pcie.LinkParams{Config: pcie.LinkConfig{Gen: pcie.Gen2, Lanes: 16}, MaxPayload: params.MaxPayload})
		n.gpus[i] = g
	}
	n.copyE = gpu.NewCopyEngine(eng, params.Copy)
	return n
}

// allocWindow reserves the next aligned device BAR window of at least size.
func (n *Node) allocWindow(size uint64) pcie.Range {
	stride := uint64(DeviceWindowStride)
	for stride < size {
		stride *= 2
	}
	base := (uint64(n.nextWindow) + stride - 1) / stride * stride
	n.nextWindow = pcie.Addr(base + stride)
	return pcie.Range{Base: pcie.Addr(base), Size: size}
}

// attach adds a device window on a socket switch and records it in the RC
// routing table.
func (n *Node) attach(sock int, label string, w pcie.Range, port *pcie.Port, lp pcie.LinkParams) {
	dn := n.socks[sock].MustAddDownstream(label, w)
	pcie.MustConnect(n.eng, dn, port, lp)
	n.rc.addSocketWindow(sock, w)
}

// AttachDevice connects an external device (PEACH2 board, IB NIC) into a
// socket slot with window w, and returns nothing; the caller keeps its own
// handle to the device. The window may be huge (PEACH2's 512 GiB BAR): only
// "a few motherboards can support" that in reality (§III-E footnote); the
// simulated BIOS always can.
func (n *Node) AttachDevice(sock int, label string, w pcie.Range, port *pcie.Port, lp pcie.LinkParams) error {
	if sock < 0 || sock > 1 {
		return fmt.Errorf("host %s: socket %d out of range", n.name, sock)
	}
	if w.Overlaps(pcie.Range{Base: 0, Size: uint64(n.params.DRAMSize)}) {
		return fmt.Errorf("host %s: device window %v overlaps DRAM", n.name, w)
	}
	n.attach(sock, label, w, port, lp)
	return nil
}

// AllocDeviceID hands out a node-unique requester ID for a device.
func (n *Node) AllocDeviceID() pcie.DeviceID {
	id := n.idNext
	n.idNext++
	return id
}

// Engine returns the simulation engine (the TSC reads n.Engine().Now()).
func (n *Node) Engine() *sim.Engine { return n.eng }

// AttachFaults connects the node's root complex to a fault injector so it
// can lose read completions. A nil injector (the default) changes nothing.
func (n *Node) AttachFaults(inj *fault.Injector) { n.rc.faults = inj }

// ID reports the node's index.
func (n *Node) ID() int { return n.id }

// Name reports "node<id>".
func (n *Node) Name() string { return n.name }

// Params returns the node's configuration.
func (n *Node) Params() Params { return n.params }

// GPU returns GPU i (0–3).
func (n *Node) GPU(i int) *gpu.GPU { return n.gpus[i] }

// CopyEngine returns the node's cudaMemcpy-style engine.
func (n *Node) CopyEngine() *gpu.CopyEngine { return n.copyE }

// DRAM exposes host memory for test assertions.
func (n *Node) DRAM() *memory.RAM { return n.rc.dram }

// Socket returns the per-socket switch (0 or 1) for topology assertions.
func (n *Node) Socket(i int) *pcie.Switch { return n.socks[i] }

// AllocDMABuffer reserves n bytes of host memory for device DMA (the
// PEACH2 driver's pre-allocated buffer in §IV-A1) and returns its bus
// address.
func (n *Node) AllocDMABuffer(size units.ByteSize) (pcie.Addr, error) {
	if size <= 0 {
		return 0, fmt.Errorf("host %s: AllocDMABuffer(%d)", n.name, size)
	}
	// 4 KiB-align so DMA never straddles pages unexpectedly.
	base := (n.dmaNext + 4095) / 4096 * 4096
	if base+uint64(size) > uint64(n.params.DRAMSize) {
		return 0, fmt.Errorf("host %s: out of DMA buffer space", n.name)
	}
	n.dmaNext = base + uint64(size)
	return pcie.Addr(base), nil
}

// WriteLocal writes host memory directly (a cached CPU store — no PCIe).
func (n *Node) WriteLocal(a pcie.Addr, data []byte) error {
	return n.rc.dram.Write(uint64(a), data)
}

// ReadLocal reads host memory directly (a cached CPU load).
func (n *Node) ReadLocal(a pcie.Addr, size units.ByteSize) ([]byte, error) {
	return n.rc.dram.ReadBytes(uint64(a), size)
}

// Store performs an uncached CPU store to a device bus address — the PIO
// primitive (§III-F1): "a user program can seamlessly perform RDMA write
// access according to an ordinary store instruction to the mmaped area."
// The data must fit one TLP.
func (n *Node) Store(a pcie.Addr, data []byte) {
	n.StoreTxn(a, data)
}

// StoreTxn is Store returning the observability transaction ID assigned to
// the write (0 when the node is uninstrumented). The span opens with a
// StageCPUStore event at the instant the store issues, so a transaction's
// hop sum equals its end-to-end PIO latency.
func (n *Node) StoreTxn(a pcie.Addr, data []byte) uint64 {
	if len(data) == 0 || len(data) > int(pcie.DefaultMaxPayload) {
		panic(fmt.Sprintf("host %s: Store of %d bytes", n.name, len(data)))
	}
	txn := n.rec.NextTxn()
	if txn != 0 {
		n.rec.Record(obsv.Event{At: n.eng.Now(), Txn: txn, Stage: obsv.StageCPUStore,
			Where: n.name, Addr: uint64(a)})
	}
	t := n.pool.Get()
	t.Kind = pcie.MWr
	t.Addr = a
	t.SetPayload(data)
	t.Last = true
	t.Txn = txn
	n.eng.AfterAction(n.comp, n.params.StoreLatency, n.newStore(t))
	return txn
}

// storeAction is the pooled store-issue event: after the uncached-store
// latency the packet enters the fabric at the root complex. The TLP itself
// is released downstream at its sink.
type storeAction struct {
	n *Node
	t *pcie.TLP
}

func (n *Node) newStore(t *pcie.TLP) *storeAction {
	if i := len(n.storeFree) - 1; i >= 0 {
		a := n.storeFree[i]
		n.storeFree[i] = nil
		n.storeFree = n.storeFree[:i]
		a.n, a.t = n, t
		return a
	}
	return &storeAction{n: n, t: t}
}

// RunAction implements sim.Action.
func (a *storeAction) RunAction(now sim.Time) {
	n, t := a.n, a.t
	*a = storeAction{}
	n.storeFree = append(n.storeFree, a)
	n.rc.routeFromCPU(now, t)
}

// Poll arranges fn to run when a device write lands in host memory at range
// r, plus the poll-loop detection latency — the measurement technique of
// §IV-B1 step 6.
func (n *Node) Poll(r pcie.Range, fn func(now sim.Time)) {
	n.rc.watch(r, func(at sim.Time, txn uint64) {
		n.eng.AfterAction(n.comp, n.params.PollDetectLatency, n.newPoll(fn, txn, r.Base))
	})
}

// pollAction is the pooled poll-detection event: the spinning CPU loop
// observes the landed write after the detection latency and runs the
// registered callback.
type pollAction struct {
	n    *Node
	fn   func(now sim.Time)
	txn  uint64
	base pcie.Addr
}

func (n *Node) newPoll(fn func(now sim.Time), txn uint64, base pcie.Addr) *pollAction {
	if i := len(n.pollFree) - 1; i >= 0 {
		a := n.pollFree[i]
		n.pollFree[i] = nil
		n.pollFree = n.pollFree[:i]
		a.n, a.fn, a.txn, a.base = n, fn, txn, base
		return a
	}
	return &pollAction{n: n, fn: fn, txn: txn, base: base}
}

// RunAction implements sim.Action.
func (a *pollAction) RunAction(now sim.Time) {
	n, fn, txn, base := a.n, a.fn, a.txn, a.base
	*a = pollAction{}
	n.pollFree = append(n.pollFree, a)
	if txn != 0 && n.rec != nil {
		n.rec.Record(obsv.Event{At: now, Txn: txn,
			Stage: obsv.StagePollSeen, Where: n.name, Addr: uint64(base)})
	}
	fn(now)
}
