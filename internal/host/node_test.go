package host

import (
	"bytes"
	"testing"

	"tca/internal/pcie"
	"tca/internal/sim"
	"tca/internal/units"
)

func TestNodeConstruction(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, 3, DefaultParams)
	if n.Name() != "node3" || n.ID() != 3 {
		t.Fatalf("identity wrong: %s/%d", n.Name(), n.ID())
	}
	for i := 0; i < GPUsPerNode; i++ {
		if n.GPU(i) == nil {
			t.Fatalf("GPU %d missing", i)
		}
		if !n.GPU(i).Port().Connected() {
			t.Fatalf("GPU %d not attached", i)
		}
	}
	if n.DRAM().Size() != 128*units.GiB {
		t.Fatalf("DRAM size %v", n.DRAM().Size())
	}
}

func TestGPUBARWindowsDisjoint(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, 0, DefaultParams)
	for i := 0; i < GPUsPerNode; i++ {
		for j := i + 1; j < GPUsPerNode; j++ {
			if n.GPU(i).BAR1Window().Overlaps(n.GPU(j).BAR1Window()) {
				t.Fatalf("GPU %d and %d BAR windows overlap", i, j)
			}
		}
	}
}

func TestAllocDMABuffer(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, 0, DefaultParams)
	a, err := n.AllocDMABuffer(64 * units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(a)%4096 != 0 {
		t.Fatalf("DMA buffer %v not page aligned", a)
	}
	b, err := n.AllocDMABuffer(4 * units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	if (pcie.Range{Base: a, Size: 64 * 1024}).Contains(b) {
		t.Fatal("DMA buffers overlap")
	}
	if _, err := n.AllocDMABuffer(0); err == nil {
		t.Fatal("zero-size DMA buffer accepted")
	}
}

func TestWriteReadLocal(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, 0, DefaultParams)
	data := []byte("host memory")
	if err := n.WriteLocal(0x4000, data); err != nil {
		t.Fatal(err)
	}
	got, err := n.ReadLocal(0x4000, units.ByteSize(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("local round trip corrupted")
	}
}

// attachSink attaches a recording device to a socket slot.
func attachSink(t *testing.T, n *Node, sock int, base pcie.Addr) *recDev {
	t.Helper()
	d := &recDev{name: "dev"}
	d.port = pcie.NewPort(d, "up", pcie.RoleEP)
	w := pcie.Range{Base: base, Size: 0x1000_0000}
	if err := n.AttachDevice(sock, "dev", w, d.port, pcie.LinkParams{Config: pcie.Gen2x8}); err != nil {
		t.Fatal(err)
	}
	return d
}

type recDev struct {
	name string
	port *pcie.Port
	got  []*pcie.TLP
	at   []sim.Time
}

func (d *recDev) DevName() string { return d.name }
func (d *recDev) Accept(now sim.Time, t *pcie.TLP, p *pcie.Port) units.Duration {
	d.got = append(d.got, t)
	d.at = append(d.at, now)
	return 0
}

func TestStoreReachesDevice(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, 0, DefaultParams)
	d := attachSink(t, n, 0, 0x60_0000_0000)
	n.Store(0x60_0000_0100, []byte{1, 2, 3, 4})
	eng.Run()
	if len(d.got) != 1 || d.got[0].Addr != 0x60_0000_0100 {
		t.Fatalf("device got %v", d.got)
	}
	// Path: store latency 150 ns + switch 120 ns + two link wires.
	if d.at[0] < sim.Time(270*units.Nanosecond) || d.at[0] > sim.Time(330*units.Nanosecond) {
		t.Fatalf("store arrived at %v, want ~280ns", d.at[0])
	}
}

func TestStoreToDRAMIsLocal(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, 0, DefaultParams)
	n.Store(0x1000, []byte{42})
	eng.Run()
	got, _ := n.ReadLocal(0x1000, 1)
	if got[0] != 42 {
		t.Fatal("store to DRAM did not land")
	}
}

func TestStoreSizeLimits(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, 0, DefaultParams)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized store did not panic")
		}
	}()
	n.Store(0x1000, make([]byte, 300))
}

func TestDeviceWritesDRAMAndPollDetects(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, 0, DefaultParams)
	d := attachSink(t, n, 0, 0x60_0000_0000)
	buf, _ := n.AllocDMABuffer(4 * units.KiB)
	var detected sim.Time
	n.Poll(pcie.Range{Base: buf, Size: 4}, func(now sim.Time) { detected = now })
	// Device writes the polled flag.
	d.port.Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: buf, Data: []byte{1, 1, 1, 1}})
	eng.Run()
	if detected == 0 {
		t.Fatal("poll never detected the write")
	}
	got, _ := n.ReadLocal(buf, 4)
	if !bytes.Equal(got, []byte{1, 1, 1, 1}) {
		t.Fatal("flag bytes wrong")
	}
	// Arrival (wire ~7ns + switch 120ns + uplink) + detect 60 ns.
	if detected < sim.Time(180*units.Nanosecond) {
		t.Fatalf("poll detected at %v — detection latency missing", detected)
	}
}

func TestDeviceReadsDRAM(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, 0, DefaultParams)
	d := attachSink(t, n, 0, 0x60_0000_0000)
	want := []byte("descriptor table bytes")
	buf, _ := n.AllocDMABuffer(4 * units.KiB)
	if err := n.WriteLocal(buf, want); err != nil {
		t.Fatal(err)
	}
	d.port.Send(0, &pcie.TLP{Kind: pcie.MRd, Addr: buf, ReadLen: units.ByteSize(len(want)), Tag: 5, Requester: 9})
	eng.Run()
	var data []byte
	for _, c := range d.got {
		if c.Kind != pcie.CplD {
			t.Fatalf("device got %v", c.Kind)
		}
		if c.Tag != 5 || c.Requester != 9 {
			t.Fatal("completion lost tag/requester")
		}
		data = append(data, c.Data...)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("read returned %q, want %q", data, want)
	}
	// DRAM read latency must appear.
	if d.at[0] < sim.Time(DefaultParams.DRAMReadLatency) {
		t.Fatalf("completion at %v — DRAM latency missing", d.at[0])
	}
}

func TestCrossQPIWriteThrottled(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, 0, DefaultParams)
	d := attachSink(t, n, 0, 0x60_0000_0000)
	// Write into GPU2's BAR (socket 1) from a socket-0 device: each TLP
	// pays the 800 ns QPI service — several hundred MB/s, not GB/s.
	g2 := n.GPU(2)
	ptr, _ := g2.MemAlloc(64 * units.KiB)
	tok, _ := g2.PointerGetAttribute(ptr)
	bus, _ := g2.Pin(tok)
	const tlps = 16
	for i := 0; i < tlps; i++ {
		d.port.Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: bus + pcie.Addr(i*256), Data: make([]byte, 256)})
	}
	end, _ := eng.Run()
	bw := units.Rate(tlps*256, units.Duration(end))
	if bw.MBps() > 500 {
		t.Fatalf("cross-QPI write bandwidth = %v, want few hundred MB/s", bw)
	}
	got, _ := g2.Memory().ReadBytes(uint64(ptr), tlps*256)
	for _, b := range got[:16] {
		if b != 0 {
			break
		}
	}
	_, _, qpi := n.rcStats()
	if qpi != tlps {
		t.Fatalf("QPI forwards = %d, want %d", qpi, tlps)
	}
}

// rcStats exposes root-complex counters to tests.
func (n *Node) rcStats() (uint64, uint64, uint64) { return n.rc.Stats() }

func TestCrossQPIReadPanics(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, 0, DefaultParams)
	d := attachSink(t, n, 0, 0x60_0000_0000)
	g2 := n.GPU(2)
	ptr, _ := g2.MemAlloc(4 * units.KiB)
	tok, _ := g2.PointerGetAttribute(ptr)
	bus, _ := g2.Pin(tok)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-QPI P2P read did not panic")
		}
	}()
	d.port.Send(0, &pcie.TLP{Kind: pcie.MRd, Addr: bus, ReadLen: 64, Tag: 1, Requester: 9})
	eng.Run()
}

func TestSameSocketP2PAvoidsRC(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, 0, DefaultParams)
	d := attachSink(t, n, 0, 0x60_0000_0000)
	g0 := n.GPU(0)
	ptr, _ := g0.MemAlloc(4 * units.KiB)
	tok, _ := g0.PointerGetAttribute(ptr)
	bus, _ := g0.Pin(tok)
	payload := []byte("p2p within socket")
	d.port.Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: bus, Data: payload})
	eng.Run()
	got, _ := g0.Memory().ReadBytes(uint64(ptr), units.ByteSize(len(payload)))
	if !bytes.Equal(got, payload) {
		t.Fatal("P2P write did not land in GPU memory")
	}
	w, r, q := n.rcStats()
	if w != 0 || r != 0 || q != 0 {
		t.Fatalf("RC saw traffic (%d/%d/%d) for same-socket P2P", w, r, q)
	}
}

func TestAttachDeviceValidation(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, 0, DefaultParams)
	d := &recDev{name: "x"}
	d.port = pcie.NewPort(d, "up", pcie.RoleEP)
	if err := n.AttachDevice(2, "x", pcie.Range{Base: 0x60_0000_0000, Size: 4096}, d.port, pcie.LinkParams{Config: pcie.Gen2x8}); err == nil {
		t.Fatal("bad socket accepted")
	}
	if err := n.AttachDevice(0, "x", pcie.Range{Base: 0x1000, Size: 4096}, d.port, pcie.LinkParams{Config: pcie.Gen2x8}); err == nil {
		t.Fatal("window overlapping DRAM accepted")
	}
}

func TestAllocDeviceIDUnique(t *testing.T) {
	eng := sim.NewEngine()
	n0 := NewNode(eng, 0, DefaultParams)
	n1 := NewNode(eng, 1, DefaultParams)
	seen := map[pcie.DeviceID]bool{}
	for i := 0; i < 10; i++ {
		for _, n := range []*Node{n0, n1} {
			id := n.AllocDeviceID()
			if seen[id] {
				t.Fatalf("duplicate device ID %d", id)
			}
			seen[id] = true
		}
	}
}

func TestRCStatsCount(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, 0, DefaultParams)
	d := attachSink(t, n, 0, 0x60_0000_0000)
	buf, _ := n.AllocDMABuffer(4 * units.KiB)
	d.port.Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: buf, Data: make([]byte, 64)})
	d.port.Send(0, &pcie.TLP{Kind: pcie.MRd, Addr: buf, ReadLen: 64, Tag: 1, Requester: 9})
	eng.Run()
	w, r, q := n.rcStats()
	if w != 1 || r != 1 || q != 0 {
		t.Fatalf("RC stats = %d/%d/%d", w, r, q)
	}
}

func TestMultipleWatchersFireIndependently(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, 0, DefaultParams)
	d := attachSink(t, n, 0, 0x60_0000_0000)
	buf, _ := n.AllocDMABuffer(4 * units.KiB)
	hitsA, hitsB := 0, 0
	n.Poll(pcie.Range{Base: buf, Size: 8}, func(sim.Time) { hitsA++ })
	n.Poll(pcie.Range{Base: buf + 0x100, Size: 8}, func(sim.Time) { hitsB++ })
	d.port.Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: buf, Data: make([]byte, 8)})
	d.port.Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: buf + 0x100, Data: make([]byte, 8)})
	d.port.Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: buf + 0x200, Data: make([]byte, 8)})
	eng.Run()
	if hitsA != 1 || hitsB != 1 {
		t.Fatalf("watchers fired %d/%d, want 1/1", hitsA, hitsB)
	}
}

func TestGPUSlotsAreGen2x16(t *testing.T) {
	// K20 boards are PCIe Gen2; the node must not grant them Gen3 lanes.
	eng := sim.NewEngine()
	n := NewNode(eng, 0, DefaultParams)
	lp := n.GPU(0).Port().Link().Params()
	if lp.Config.Gen != pcie.Gen2 || lp.Config.Lanes != 16 {
		t.Fatalf("GPU slot is %v, want Gen2 x16", lp.Config)
	}
}

func TestStoreEmptyPanics(t *testing.T) {
	eng := sim.NewEngine()
	n := NewNode(eng, 0, DefaultParams)
	_ = eng
	defer func() {
		if recover() == nil {
			t.Fatal("empty store did not panic")
		}
	}()
	n.Store(0x1000, nil)
}
