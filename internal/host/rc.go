package host

import (
	"fmt"

	"tca/internal/fault"
	"tca/internal/memory"
	"tca/internal/obsv"
	"tca/internal/pcie"
	"tca/internal/sim"
	"tca/internal/units"
)

// RootComplex is the node's CPU complex as seen from PCIe: the owner of
// host DRAM, the join point of the two per-socket switch trees, and the QPI
// bridge between them. Device-initiated reads and writes to DRAM terminate
// here; traffic between sockets pays the QPI penalty; peer-to-peer *reads*
// across QPI are rejected, as on the real machine ("P2P access through PCIe
// over QPI should be still prohibited", §IV-A2).
type RootComplex struct {
	node *Node
	dram *memory.RAM
	dn   [2]*pcie.Port

	sockWin [2][]pcie.Range
	qpiSer  sim.Serializer
	watches []rcWatch

	// faults injects lost read completions (nil on a perfect fabric).
	faults *fault.Injector

	// Stats
	dramWrites uint64
	dramReads  uint64
	qpiForward uint64
	// outstanding counts device reads accepted but not yet answered with
	// completions — the host-side view of the requester's tag occupancy.
	outstanding int

	// Observability (nil when disabled).
	rec         *obsv.Recorder
	led         obsv.Ledger
	mDRAMWrites *obsv.Counter
	mDRAMReads  *obsv.Counter
	mQPI        *obsv.Counter
}

type rcWatch struct {
	r pcie.Range
	// fn receives the landing time and the writing TLP's transaction ID so
	// a traced write's poll detection closes the same span.
	fn func(at sim.Time, txn uint64)
}

// instrument registers the root complex's metrics and span recorder.
func (rc *RootComplex) instrument(set *obsv.Set) {
	reg := set.Registry()
	rc.rec = set.Recorder()
	rc.led = set.Ledger()
	rc.mDRAMWrites = reg.Counter("dram_write_tlps", rc.DevName())
	rc.mDRAMReads = reg.Counter("dram_read_tlps", rc.DevName())
	rc.mQPI = reg.Counter("qpi_forwards", rc.DevName())
	set.Sampler().Register("rc_outstanding_reads", rc.DevName(), "", "reads",
		func(sim.Time, units.Duration) float64 { return float64(rc.outstanding) })
}

func newRootComplex(n *Node) *RootComplex {
	rc := &RootComplex{node: n, dram: memory.NewRAM(n.params.DRAMSize)}
	rc.dn[0] = pcie.NewPort(rc, "dn0", pcie.RoleRC)
	rc.dn[1] = pcie.NewPort(rc, "dn1", pcie.RoleRC)
	return rc
}

// DevName implements pcie.Device.
func (rc *RootComplex) DevName() string { return rc.node.name + ".rc" }

func (rc *RootComplex) addSocketWindow(sock int, w pcie.Range) {
	rc.sockWin[sock] = append(rc.sockWin[sock], w)
}

func (rc *RootComplex) socketOf(a pcie.Addr) (int, bool) {
	for s := 0; s < 2; s++ {
		for _, w := range rc.sockWin[s] {
			if w.Contains(a) {
				return s, true
			}
		}
	}
	return 0, false
}

func (rc *RootComplex) watch(r pcie.Range, fn func(at sim.Time, txn uint64)) {
	rc.watches = append(rc.watches, rcWatch{r: r, fn: fn})
}

func (rc *RootComplex) dramWindow() pcie.Range {
	return pcie.Range{Base: 0, Size: uint64(rc.node.params.DRAMSize)}
}

// routeFromCPU injects a CPU-originated TLP into the fabric (PIO store).
func (rc *RootComplex) routeFromCPU(now sim.Time, t *pcie.TLP) {
	if rc.dramWindow().Contains(t.Addr) {
		// A store to host memory never leaves the CPU; model it as an
		// immediate local write.
		rc.writeDRAM(now, t)
		return
	}
	sock, ok := rc.socketOf(t.Addr)
	if !ok {
		panic(fmt.Sprintf("%s: CPU store to unmapped address %v", rc.DevName(), t.Addr))
	}
	rc.dn[sock].Send(now, t)
}

func (rc *RootComplex) writeDRAM(now sim.Time, t *pcie.TLP) {
	if err := rc.dram.Write(uint64(t.Addr), t.Data); err != nil {
		panic(fmt.Sprintf("%s: DRAM write %v: %v", rc.DevName(), t.Addr, err))
	}
	rc.dramWrites++
	rc.mDRAMWrites.Inc()
	if rc.rec != nil && t.Txn != 0 {
		rc.rec.Record(obsv.Event{At: now, Txn: t.Txn, Stage: obsv.StageHostWrite,
			Where: rc.DevName(), Addr: uint64(t.Addr)})
	}
	hit := pcie.Range{Base: t.Addr, Size: uint64(len(t.Data))}
	for _, w := range rc.watches {
		if w.r.Overlaps(hit) {
			w.fn(now, t.Txn)
		}
	}
	if rc.led != nil && t.LID != 0 {
		rc.led.Delivered(now, t.LID, uint64(t.Addr), t.Data, rc.DevName())
	}
	// The write terminated in DRAM: the root complex is the packet's sink.
	t.Release()
}

// Accept implements pcie.Device for traffic arriving from the socket
// switches.
func (rc *RootComplex) Accept(now sim.Time, t *pcie.TLP, in *pcie.Port) units.Duration {
	fromSock := 0
	if in == rc.dn[1] {
		fromSock = 1
	}
	switch t.Kind {
	case pcie.MWr:
		if rc.dramWindow().Contains(t.Addr) {
			rc.writeDRAM(now, t)
			return rc.node.params.DRAMWriteDrain
		}
		sock, ok := rc.socketOf(t.Addr)
		if !ok {
			panic(fmt.Sprintf("%s: MWr to unmapped %v", rc.DevName(), t.Addr))
		}
		if sock == fromSock {
			panic(fmt.Sprintf("%s: MWr to %v bounced off RC back to its own socket — switch window bug", rc.DevName(), t.Addr))
		}
		// Cross-QPI peer-to-peer write: heavily serialized (§IV-A2:
		// "severely degraded by up to several hundred Mbytes/sec").
		rc.qpiForward++
		rc.mQPI.Inc()
		start := rc.qpiSer.Reserve(now, rc.node.params.QPIWriteService)
		depart := start.Add(rc.node.params.QPIWriteService).Add(rc.node.params.QPILatency)
		rc.node.eng.AtComp(rc.node.comp, depart, func() {
			rc.dn[sock].Send(rc.node.eng.Now(), t)
		})
		return 0
	case pcie.MRd:
		if rc.dramWindow().Contains(t.Addr) {
			rc.dramReads++
			rc.mDRAMReads.Inc()
			if rc.rec != nil && t.Txn != 0 {
				rc.rec.Record(obsv.Event{At: now, Txn: t.Txn, Stage: obsv.StageHostRead,
					Where: rc.DevName(), Addr: uint64(t.Addr)})
			}
			if rc.faults.LoseCompletion() {
				// The read is accepted but its completion never leaves:
				// the requester's completion timeout must recover. The MRd
				// itself still terminated here.
				if rc.led != nil && t.LID != 0 {
					rc.led.Delivered(now, t.LID, uint64(t.Addr), nil, rc.DevName())
				}
				t.Release()
				return 0
			}
			rc.outstanding++
			if rc.rec != nil && t.Txn != 0 {
				// The requester now waits on DRAM service; the matching
				// queue-exit fires when the completion departs, so the
				// whole read turnaround is attributed as wait time.
				rc.rec.Record(obsv.Event{At: now, Txn: t.Txn, Stage: obsv.StageQueueEnter,
					Where: rc.DevName(), Addr: uint64(t.Addr), Cause: obsv.CauseOutstandingRead})
			}
			if rc.led != nil && t.LID != 0 {
				rc.led.Delivered(now, t.LID, uint64(t.Addr), nil, rc.DevName())
			}
			req := *t
			t.Release()
			reply := now.Add(rc.node.params.DRAMReadLatency)
			rc.node.eng.AtComp(rc.node.comp, reply, func() {
				data, err := rc.dram.ReadBytes(uint64(req.Addr), req.ReadLen)
				if err != nil {
					panic(fmt.Sprintf("%s: DRAM read %v: %v", rc.DevName(), req.Addr, err))
				}
				if rc.rec != nil && req.Txn != 0 {
					rc.rec.Record(obsv.Event{At: rc.node.eng.Now(), Txn: req.Txn, Stage: obsv.StageQueueExit,
						Where: rc.DevName(), Addr: uint64(req.Addr), Cause: obsv.CauseOutstandingRead})
				}
				maxPayload := in.Link().Params().MaxPayload
				for _, c := range pcie.SplitCompletion(&req, data, maxPayload) {
					in.Send(rc.node.eng.Now(), c)
				}
				rc.outstanding--
			})
			return 0
		}
		panic(fmt.Sprintf("%s: peer-to-peer MRd to %v across QPI is prohibited (§IV-A2)", rc.DevName(), t.Addr))
	default:
		panic(fmt.Sprintf("%s: unexpected %v at root complex", rc.DevName(), t.Kind))
	}
}

// Stats reports DRAM write/read TLP counts and QPI forwards.
func (rc *RootComplex) Stats() (dramWrites, dramReads, qpiForwards uint64) {
	return rc.dramWrites, rc.dramReads, rc.qpiForward
}

// Ports implements pcie.Enumerable: the BIOS scan starts at the root
// complex and descends both socket trees.
func (rc *RootComplex) Ports() []*pcie.Port { return []*pcie.Port{rc.dn[0], rc.dn[1]} }
