// Package hybrid implements the hierarchical network of §II-B: "HA-PACS/TCA
// can use a hierarchical network that incorporates TCA interconnect for
// local communication with low latency and InfiniBand for global
// communication with high bandwidth." A hybrid communicator owns both
// fabrics over the same nodes and routes each GPU-to-GPU transfer down the
// faster path: TCA below the size crossover, the InfiniBand three-copy
// path above it.
package hybrid

import (
	"fmt"

	"tca/internal/core"
	"tca/internal/gpu"
	"tca/internal/host"
	"tca/internal/ib"
	"tca/internal/sim"
	"tca/internal/tcanet"
	"tca/internal/units"
)

// nodeList collects the sub-cluster's nodes for the IB fabric.
func nodeList(sc *tcanet.SubCluster) []*host.Node {
	out := make([]*host.Node, sc.Nodes())
	for i := range out {
		out[i] = sc.Node(i)
	}
	return out
}

// DefaultCrossover is the size above which the conventional path's
// multi-GB/s cudaMemcpy streaming beats PEACH2's ~0.83 GB/s GPU BAR reads.
// The Baseline experiment locates the crossover in the tens of KiB; 16 KiB
// is conservative toward latency.
const DefaultCrossover = 16 * units.KiB

// Comm is the two-fabric communicator.
type Comm struct {
	tca       *core.Comm
	fabric    *ib.Fabric
	conv      *ib.Conventional
	crossover units.ByteSize

	tcaSends uint64
	ibSends  uint64
}

// New builds the hybrid over an existing TCA sub-cluster, attaching an
// InfiniBand fabric to the same nodes (each HA-PACS node carries both a
// PEACH2 board and an IB adaptor, §II-B). staging bounds the largest
// conventional-path transfer.
func New(comm *core.Comm, staging units.ByteSize) (*Comm, error) {
	sc := comm.SubCluster()
	fabric, err := ib.NewFabric(sc.Engine(), nodeList(sc), ib.QDRParams)
	if err != nil {
		return nil, err
	}
	conv, err := ib.NewConventional(fabric, staging)
	if err != nil {
		return nil, err
	}
	return &Comm{tca: comm, fabric: fabric, conv: conv, crossover: DefaultCrossover}, nil
}

// SetCrossover overrides the routing threshold.
func (c *Comm) SetCrossover(n units.ByteSize) {
	if n <= 0 {
		panic(fmt.Sprintf("hybrid: crossover %d", n))
	}
	c.crossover = n
}

// Crossover reports the active threshold.
func (c *Comm) Crossover() units.ByteSize { return c.crossover }

// Stats reports how many transfers each fabric carried.
func (c *Comm) Stats() (tcaSends, ibSends uint64) { return c.tcaSends, c.ibSends }

// MemcpyPeer moves n bytes between pinned GPU buffers, choosing the fabric
// by size: the TCA put below the crossover, the conventional staged path
// above it. Same-node copies always use the CUDA peer engine.
func (c *Comm) MemcpyPeer(dst core.GPUBuffer, dstOff units.ByteSize, src core.GPUBuffer, srcOff units.ByteSize, n units.ByteSize, done func(now sim.Time)) error {
	if src.Node == dst.Node || n <= c.crossover {
		c.tcaSends++
		return c.tca.MemcpyPeer(dst, dstOff, src, srcOff, n, done)
	}
	c.ibSends++
	return c.conv.GPUToGPU(src.Node, src.GPU, src.Ptr+gpu.DevicePtr(srcOff),
		dst.Node, dst.GPU, dst.Ptr+gpu.DevicePtr(dstOff), n, done)
}
