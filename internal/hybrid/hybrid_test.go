package hybrid

import (
	"bytes"
	"testing"

	"tca/internal/core"
	"tca/internal/sim"
	"tca/internal/tcanet"
	"tca/internal/units"
)

func newHybrid(t *testing.T, nodes int) (*sim.Engine, *core.Comm, *Comm) {
	t.Helper()
	eng := sim.NewEngine()
	sc, err := tcanet.BuildRing(eng, nodes, tcanet.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	comm, err := core.NewComm(sc)
	if err != nil {
		t.Fatal(err)
	}
	comm.SetMode(core.Pipelined)
	h, err := New(comm, 4*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	return eng, comm, h
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*3 + seed
	}
	return b
}

// transfer runs one hybrid MemcpyPeer to completion and returns its
// simulated duration.
func transfer(t *testing.T, eng *sim.Engine, comm *core.Comm, h *Comm, n units.ByteSize) units.Duration {
	t.Helper()
	src, err := comm.RegisterGPUBuffer(0, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := comm.RegisterGPUBuffer(1, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	want := pattern(int(n), byte(n))
	if err := comm.WriteGPU(src, 0, want); err != nil {
		t.Fatal(err)
	}
	start := eng.Now()
	var end sim.Time
	if err := h.MemcpyPeer(dst, 0, src, 0, n, func(now sim.Time) { end = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if end == 0 {
		t.Fatal("transfer never completed")
	}
	got, _ := comm.ReadGPU(dst, 0, n)
	if !bytes.Equal(got, want) {
		t.Fatalf("%v transfer corrupted data", n)
	}
	return end.Sub(start)
}

func TestHybridRoutesBySize(t *testing.T) {
	eng, comm, h := newHybrid(t, 2)
	transfer(t, eng, comm, h, 4*units.KiB) // below crossover → TCA
	transfer(t, eng, comm, h, units.MiB)   // above → IB conventional
	tcaN, ibN := h.Stats()
	if tcaN != 1 || ibN != 1 {
		t.Fatalf("routing stats = %d TCA / %d IB, want 1/1", tcaN, ibN)
	}
}

func TestHybridBeatsBothSingleFabrics(t *testing.T) {
	// The point of the hierarchy: the hybrid tracks the better fabric on
	// both sides of the crossover.
	measureTCA := func(n units.ByteSize) units.Duration {
		eng, comm, h := newHybrid(t, 2)
		h.SetCrossover(1 << 30) // force TCA always
		return transfer(t, eng, comm, h, n)
	}
	measureIB := func(n units.ByteSize) units.Duration {
		eng, comm, h := newHybrid(t, 2)
		h.SetCrossover(1) // force IB always
		return transfer(t, eng, comm, h, n)
	}
	measureHybrid := func(n units.ByteSize) units.Duration {
		eng, comm, h := newHybrid(t, 2)
		return transfer(t, eng, comm, h, n)
	}
	small := 512 * units.Byte
	large := units.MiB
	if hy, ib := measureHybrid(small), measureIB(small); hy >= ib {
		t.Fatalf("hybrid small %v not below IB %v", hy, ib)
	}
	if hy, tca := measureHybrid(large), measureTCA(large); hy >= tca {
		t.Fatalf("hybrid large %v not below TCA %v", hy, tca)
	}
	// And hybrid equals the winning fabric on each side.
	if hy, tca := measureHybrid(small), measureTCA(small); hy != tca {
		t.Fatalf("hybrid small %v != TCA %v", hy, tca)
	}
	if hy, ib := measureHybrid(large), measureIB(large); hy != ib {
		t.Fatalf("hybrid large %v != IB %v", hy, ib)
	}
}

func TestHybridSameNodeUsesCUDA(t *testing.T) {
	eng, comm, h := newHybrid(t, 2)
	src, _ := comm.RegisterGPUBuffer(0, 0, units.MiB)
	dst, _ := comm.RegisterGPUBuffer(0, 1, units.MiB)
	if err := comm.WriteGPU(src, 0, pattern(4096, 1)); err != nil {
		t.Fatal(err)
	}
	done := false
	if err := h.MemcpyPeer(dst, 0, src, 0, 4096, func(sim.Time) { done = true }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !done {
		t.Fatal("same-node copy never completed")
	}
	tcaN, ibN := h.Stats()
	if tcaN != 1 || ibN != 0 {
		t.Fatalf("same-node copy routed %d/%d", tcaN, ibN)
	}
}

func TestHybridValidation(t *testing.T) {
	_, _, h := newHybrid(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("zero crossover did not panic")
		}
	}()
	h.SetCrossover(0)
}
