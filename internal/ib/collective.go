package ib

import (
	"encoding/binary"
	"fmt"
	"math"

	"tca/internal/pcie"
	"tca/internal/sim"
	"tca/internal/units"
)

// RingAllreduce sums per-node float64 vectors over the MPI layer — the
// same ring schedule as the TCA-native collective in package coll, but
// every step pays the full MPI per-message cost the TCA path eliminates
// (§V: "the overhead of MPI protocol stack can be eliminated"). It exists
// to quantify that claim.
//
// bufs[i] is node i's vector (count float64) in its host memory; staging
// and synchronization are internal. done fires when every node holds the
// sum.
func (f *Fabric) RingAllreduce(bufs []pcie.Addr, count int, done func(now sim.Time)) error {
	n := len(f.nodes)
	if len(bufs) != n {
		return fmt.Errorf("ib: RingAllreduce needs %d buffers, got %d", n, len(bufs))
	}
	if count <= 0 || count%n != 0 {
		return fmt.Errorf("ib: element count %d must be a positive multiple of %d", count, n)
	}
	chunkN := count / n
	chunk := units.ByteSize(chunkN * 8)

	staging := make([]pcie.Addr, n)
	for i := range staging {
		s, err := f.nodes[i].AllocDMABuffer(chunk)
		if err != nil {
			return fmt.Errorf("ib: staging: %w", err)
		}
		staging[i] = s
	}

	chunkToSend := func(rank, step int) int {
		if step <= n-1 {
			return ((rank-(step-1))%n + n) % n
		}
		return ((rank+1-(step-n))%n + n) % n
	}

	finished := 0
	var send func(rank, step int)
	recv := func(rank, step int, now sim.Time) {
		ci := chunkToSend((rank-1+n)%n, step)
		in, err := f.nodes[rank].ReadLocal(staging[rank], chunk)
		if err != nil {
			panic(err)
		}
		off := pcie.Addr(ci * int(chunk))
		if step <= n-1 {
			cur, err := f.nodes[rank].ReadLocal(bufs[rank]+off, chunk)
			if err != nil {
				panic(err)
			}
			for j := 0; j+8 <= len(cur); j += 8 {
				a := math.Float64frombits(binary.LittleEndian.Uint64(cur[j:]))
				b := math.Float64frombits(binary.LittleEndian.Uint64(in[j:]))
				binary.LittleEndian.PutUint64(cur[j:], math.Float64bits(a+b))
			}
			in = cur
		}
		if err := f.nodes[rank].WriteLocal(bufs[rank]+off, in); err != nil {
			panic(err)
		}
		if step == 2*(n-1) {
			finished++
			if finished == n {
				done(now)
			}
			return
		}
		send(rank, step+1)
	}
	send = func(rank, step int) {
		next := (rank + 1) % n
		ci := chunkToSend(rank, step)
		err := f.MPISend(rank, next, bufs[rank]+pcie.Addr(ci*int(chunk)), staging[next], chunk,
			func(now sim.Time) { recv(next, step, now) })
		if err != nil {
			panic(fmt.Sprintf("ib: allreduce send: %v", err))
		}
	}
	for i := 0; i < n; i++ {
		send(i, 1)
	}
	return nil
}
