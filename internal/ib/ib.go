// Package ib models the conventional cluster communication stack the TCA
// architecture competes with: an InfiniBand-class NIC per node on a
// full-bisection fat tree (§II-A), a verbs-like message layer, an MPI-like
// layer with eager/rendezvous semantics, and the three-step GPU-to-GPU path
// of §III-A:
//
//  1. copy from GPU memory to host memory through PCIe (cudaMemcpyDtoH),
//  2. copy from host to host through the interconnect (MPI),
//  3. copy from host memory to GPU memory through PCIe (cudaMemcpyHtoD).
//
// The model is functional (bytes move between the simulated host DRAMs and
// GDDRs) and timed analytically per message — protocol costs the TCA path
// eliminates, which is precisely the comparison the paper draws.
package ib

import (
	"fmt"

	"tca/internal/gpu"
	"tca/internal/host"
	"tca/internal/pcie"
	"tca/internal/sim"
	"tca/internal/units"
)

// Params is the fabric's cost model.
type Params struct {
	// Bandwidth is the effective per-direction NIC rate. QDR 4x signals
	// 10 Gb/s × 4 lanes with 8b/10b: 4 GB/s raw, ~3.2 GB/s effective.
	Bandwidth units.Bandwidth
	// NICLatency is HCA processing per message per side.
	NICLatency units.Duration
	// WireLatency is switch + cable flight time (one fat-tree hop).
	WireLatency units.Duration
	// MPIOverhead is the software stack's per-message cost on top of
	// verbs.
	MPIOverhead units.Duration
	// EagerThreshold is the MPI eager/rendezvous switch: larger messages
	// pay a request/acknowledge round trip before the data moves.
	EagerThreshold units.ByteSize
}

// QDRParams matches the HA-PACS base cluster's Mellanox ConnectX-3 QDR rail
// (Table I) with an MVAPICH-class MPI on top. The paper quotes "the latency
// of InfiniBand FDR with PCIe Gen3 x8 is announced as less than 1 µsec"
// (§IV-B1) for the raw verbs level; the MPI level adds its overhead.
var QDRParams = Params{
	Bandwidth:      3.2 * units.GBPerSec,
	NICLatency:     350 * units.Nanosecond,
	WireLatency:    250 * units.Nanosecond,
	MPIOverhead:    300 * units.Nanosecond,
	EagerThreshold: 12 * units.KiB,
}

// Fabric is a full-bisection interconnect among a set of nodes: each node
// has one NIC with independent transmit and receive engines; the core is
// never the bottleneck (fat tree with full bisection bandwidth, §II-A).
type Fabric struct {
	eng    *sim.Engine
	params Params
	nodes  []*host.Node
	tx     []sim.Serializer
	rx     []sim.Serializer

	messages uint64
	bytes    units.ByteSize
}

// NewFabric connects the nodes.
func NewFabric(eng *sim.Engine, nodes []*host.Node, params Params) (*Fabric, error) {
	if len(nodes) < 2 {
		return nil, fmt.Errorf("ib: fabric needs at least 2 nodes, got %d", len(nodes))
	}
	if params.Bandwidth <= 0 {
		return nil, fmt.Errorf("ib: non-positive bandwidth")
	}
	return &Fabric{
		eng:    eng,
		params: params,
		nodes:  nodes,
		tx:     make([]sim.Serializer, len(nodes)),
		rx:     make([]sim.Serializer, len(nodes)),
	}, nil
}

// Params returns the cost model.
func (f *Fabric) Params() Params { return f.params }

// Stats reports message and payload byte counts.
func (f *Fabric) Stats() (messages uint64, bytes units.ByteSize) {
	return f.messages, f.bytes
}

func (f *Fabric) checkRank(r int) error {
	if r < 0 || r >= len(f.nodes) {
		return fmt.Errorf("ib: rank %d outside fabric of %d", r, len(f.nodes))
	}
	return nil
}

// VerbsSend moves n bytes from src's host memory at srcBus to dst's host
// memory at dstBus — one RDMA-write-like verbs operation, no MPI overhead.
func (f *Fabric) VerbsSend(src, dst int, srcBus, dstBus pcie.Addr, n units.ByteSize, done func(now sim.Time)) error {
	return f.send(src, dst, srcBus, dstBus, n, 0, done)
}

// send is the common transfer path; extra is software overhead added on
// top of the hardware pipeline (MPI).
func (f *Fabric) send(src, dst int, srcBus, dstBus pcie.Addr, n units.ByteSize, extra units.Duration, done func(now sim.Time)) error {
	if err := f.checkRank(src); err != nil {
		return err
	}
	if err := f.checkRank(dst); err != nil {
		return err
	}
	if src == dst {
		return fmt.Errorf("ib: self-send from rank %d", src)
	}
	if n <= 0 {
		return fmt.Errorf("ib: send of %d bytes", n)
	}
	f.messages++
	f.bytes += n

	wire := units.TimeToSend(n, f.params.Bandwidth)
	now := f.eng.Now()
	// The transmit engine occupies for the serialization time; the
	// message then flies and occupies the receive engine.
	txStart := f.tx[src].Reserve(now.Add(extra+f.params.NICLatency), wire)
	arrive := txStart.Add(wire + f.params.WireLatency)
	rxStart := f.rx[dst].Reserve(arrive, f.params.NICLatency)
	complete := rxStart.Add(f.params.NICLatency)
	f.eng.At(complete, func() {
		data, err := f.nodes[src].ReadLocal(srcBus, n)
		if err != nil {
			panic(fmt.Sprintf("ib: source read: %v", err))
		}
		if err := f.nodes[dst].WriteLocal(dstBus, data); err != nil {
			panic(fmt.Sprintf("ib: destination write: %v", err))
		}
		if done != nil {
			done(f.eng.Now())
		}
	})
	return nil
}

// MPISend moves n bytes with MPI semantics: per-message software overhead,
// plus a rendezvous round trip above the eager threshold.
func (f *Fabric) MPISend(src, dst int, srcBus, dstBus pcie.Addr, n units.ByteSize, done func(now sim.Time)) error {
	extra := f.params.MPIOverhead
	if n > f.params.EagerThreshold {
		// Rendezvous: RTS/CTS round trip before the payload moves.
		extra += 2 * (f.params.NICLatency + f.params.WireLatency)
	}
	return f.send(src, dst, srcBus, dstBus, n, extra, done)
}

// Conventional is the pre-TCA GPU-to-GPU path: stage down to the host, ship
// with MPI, stage up to the GPU — "the latency caused by multiple memory
// copies severely degrades the performance, especially in the case of a
// short message" (§I).
type Conventional struct {
	fabric *Fabric
	// staging buffers per node, allocated lazily
	staging []pcie.Addr
	stageSz units.ByteSize
}

// NewConventional prepares per-node staging buffers of size each.
func NewConventional(f *Fabric, size units.ByteSize) (*Conventional, error) {
	c := &Conventional{fabric: f, staging: make([]pcie.Addr, len(f.nodes)), stageSz: size}
	for i, n := range f.nodes {
		buf, err := n.AllocDMABuffer(size)
		if err != nil {
			return nil, fmt.Errorf("ib: staging on node %d: %w", i, err)
		}
		c.staging[i] = buf
	}
	return c, nil
}

// GPUToGPU copies n bytes from (srcNode, srcGPU, srcPtr) to (dstNode,
// dstGPU, dstPtr) through the three-step conventional path.
func (c *Conventional) GPUToGPU(srcNode, srcGPU int, srcPtr gpu.DevicePtr, dstNode, dstGPU int, dstPtr gpu.DevicePtr, n units.ByteSize, done func(now sim.Time)) error {
	if n <= 0 || n > c.stageSz {
		return fmt.Errorf("ib: conventional copy of %d bytes (staging %v)", n, c.stageSz)
	}
	if err := c.fabric.checkRank(srcNode); err != nil {
		return err
	}
	if err := c.fabric.checkRank(dstNode); err != nil {
		return err
	}
	f := c.fabric
	sNode := f.nodes[srcNode]
	dNode := f.nodes[dstNode]
	// Step 1: GPU → host (cudaMemcpyDtoH).
	err := sNode.CopyEngine().MemcpyDtoH(sNode.GPU(srcGPU), srcPtr, n, func(now sim.Time, data []byte) {
		if err := sNode.WriteLocal(c.staging[srcNode], data); err != nil {
			panic(fmt.Sprintf("ib: staging write: %v", err))
		}
		// Step 2: host → host (MPI).
		err := f.MPISend(srcNode, dstNode, c.staging[srcNode], c.staging[dstNode], n, func(now sim.Time) {
			// Step 3: host → GPU (cudaMemcpyHtoD).
			data, err := dNode.ReadLocal(c.staging[dstNode], n)
			if err != nil {
				panic(fmt.Sprintf("ib: staging read: %v", err))
			}
			err = dNode.CopyEngine().MemcpyHtoD(dNode.GPU(dstGPU), dstPtr, data, done)
			if err != nil {
				panic(fmt.Sprintf("ib: HtoD: %v", err))
			}
		})
		if err != nil {
			panic(fmt.Sprintf("ib: MPI leg: %v", err))
		}
	})
	if err != nil {
		return fmt.Errorf("ib: DtoH leg: %w", err)
	}
	return nil
}
