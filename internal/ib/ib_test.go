package ib

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"tca/internal/host"
	"tca/internal/pcie"
	"tca/internal/sim"
	"tca/internal/units"
)

func newFabric(t *testing.T, n int) (*sim.Engine, *Fabric, []*host.Node) {
	t.Helper()
	eng := sim.NewEngine()
	var nodes []*host.Node
	for i := 0; i < n; i++ {
		nodes = append(nodes, host.NewNode(eng, i, host.DefaultParams))
	}
	f, err := NewFabric(eng, nodes, QDRParams)
	if err != nil {
		t.Fatal(err)
	}
	return eng, f, nodes
}

func TestVerbsSendMovesData(t *testing.T) {
	eng, f, nodes := newFabric(t, 2)
	src, _ := nodes[0].AllocDMABuffer(4 * units.KiB)
	dst, _ := nodes[1].AllocDMABuffer(4 * units.KiB)
	want := []byte("verbs rdma write")
	if err := nodes[0].WriteLocal(src, want); err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time
	if err := f.VerbsSend(0, 1, src, dst, units.ByteSize(len(want)), func(now sim.Time) { doneAt = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	got, _ := nodes[1].ReadLocal(dst, units.ByteSize(len(want)))
	if !bytes.Equal(got, want) {
		t.Fatal("verbs send corrupted data")
	}
	// Small-message verbs latency: ~2×NIC + wire + payload ≈ 1 µs class,
	// matching the "<1 µsec" the paper quotes for the hardware level.
	if doneAt < sim.Time(900*units.Nanosecond) || doneAt > sim.Time(1200*units.Nanosecond) {
		t.Fatalf("verbs small-message latency %v, want ~1us", doneAt)
	}
}

func TestMPIAddsSoftwareOverhead(t *testing.T) {
	eng, f, nodes := newFabric(t, 2)
	src, _ := nodes[0].AllocDMABuffer(4 * units.KiB)
	dst, _ := nodes[1].AllocDMABuffer(4 * units.KiB)
	if err := nodes[0].WriteLocal(src, []byte{1}); err != nil {
		t.Fatal(err)
	}
	var verbsAt, mpiAt sim.Time
	if err := f.VerbsSend(0, 1, src, dst, 1, func(now sim.Time) { verbsAt = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	start := eng.Now()
	if err := f.MPISend(0, 1, src, dst, 1, func(now sim.Time) { mpiAt = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	mpiLat := mpiAt.Sub(start)
	if mpiLat <= units.Duration(verbsAt) {
		t.Fatalf("MPI latency %v not above verbs %v", mpiLat, verbsAt)
	}
	want := units.Duration(verbsAt) + QDRParams.MPIOverhead
	if mpiLat != want {
		t.Fatalf("MPI latency %v, want verbs+overhead = %v", mpiLat, want)
	}
}

func TestRendezvousAboveEagerThreshold(t *testing.T) {
	eng, f, nodes := newFabric(t, 2)
	big := QDRParams.EagerThreshold * 2
	src, _ := nodes[0].AllocDMABuffer(big)
	dst, _ := nodes[1].AllocDMABuffer(big)
	small := QDRParams.EagerThreshold
	var smallLat, bigLat units.Duration
	start := eng.Now()
	if err := f.MPISend(0, 1, src, dst, small, func(now sim.Time) { smallLat = now.Sub(start) }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	start = eng.Now()
	if err := f.MPISend(0, 1, src, dst, big, func(now sim.Time) { bigLat = now.Sub(start) }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// The big message pays payload time plus the rendezvous RTT.
	payloadDelta := units.TimeToSend(big, QDRParams.Bandwidth) - units.TimeToSend(small, QDRParams.Bandwidth)
	rtt := 2 * (QDRParams.NICLatency + QDRParams.WireLatency)
	if got := bigLat - smallLat; got != payloadDelta+rtt {
		t.Fatalf("rendezvous delta %v, want payload %v + RTT %v", got, payloadDelta, rtt)
	}
}

func TestFabricBandwidthBound(t *testing.T) {
	eng, f, nodes := newFabric(t, 2)
	const total = 8 * units.MiB
	src, _ := nodes[0].AllocDMABuffer(total)
	dst, _ := nodes[1].AllocDMABuffer(total)
	done := 0
	start := eng.Now()
	var end sim.Time
	const chunk = units.MiB
	for off := units.ByteSize(0); off < total; off += chunk {
		if err := f.MPISend(0, 1, src+0, dst+0, chunk, func(now sim.Time) {
			done++
			end = now
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if done != 8 {
		t.Fatalf("%d sends completed", done)
	}
	bw := units.Rate(total, end.Sub(start))
	// Back-to-back large sends approach the 3.2 GB/s effective rate.
	if bw.GBps() < 2.9 || bw.GBps() > 3.2 {
		t.Fatalf("streamed bandwidth %v, want ~3.2GB/s", bw)
	}
}

func TestConventionalGPUToGPU(t *testing.T) {
	eng, f, nodes := newFabric(t, 2)
	conv, err := NewConventional(f, units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	srcPtr, _ := nodes[0].GPU(0).MemAlloc(64 * units.KiB)
	dstPtr, _ := nodes[1].GPU(1).MemAlloc(64 * units.KiB)
	want := make([]byte, 4096)
	for i := range want {
		want[i] = byte(i * 3)
	}
	if err := nodes[0].GPU(0).Memory().Write(uint64(srcPtr), want); err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time
	if err := conv.GPUToGPU(0, 0, srcPtr, 1, 1, dstPtr, 4096, func(now sim.Time) { doneAt = now }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if doneAt == 0 {
		t.Fatal("conventional copy never completed")
	}
	got, _ := nodes[1].GPU(1).Memory().ReadBytes(uint64(dstPtr), 4096)
	if !bytes.Equal(got, want) {
		t.Fatal("conventional path corrupted data")
	}
	// Three steps: two ~7 µs cudaMemcpys plus the MPI leg — the ~15 µs
	// short-message class the paper's motivation describes.
	if doneAt < sim.Time(14*units.Microsecond) || doneAt > sim.Time(25*units.Microsecond) {
		t.Fatalf("conventional GPU-GPU latency %v, want ~15-20us", doneAt)
	}
}

func TestFabricValidation(t *testing.T) {
	eng, f, nodes := newFabric(t, 2)
	_ = eng
	src, _ := nodes[0].AllocDMABuffer(64)
	if err := f.VerbsSend(0, 0, src, src, 8, nil); err == nil {
		t.Fatal("self-send accepted")
	}
	if err := f.VerbsSend(0, 5, src, src, 8, nil); err == nil {
		t.Fatal("bad rank accepted")
	}
	if err := f.VerbsSend(0, 1, src, src, 0, nil); err == nil {
		t.Fatal("zero-byte send accepted")
	}
	if _, err := NewFabric(eng, nodes[:1], QDRParams); err == nil {
		t.Fatal("single-node fabric accepted")
	}
	bad := QDRParams
	bad.Bandwidth = 0
	if _, err := NewFabric(eng, nodes, bad); err == nil {
		t.Fatal("zero-bandwidth fabric accepted")
	}
	conv, _ := NewConventional(f, units.KiB)
	ptr, _ := nodes[0].GPU(0).MemAlloc(4 * units.KiB)
	if err := conv.GPUToGPU(0, 0, ptr, 1, 0, ptr, 2*units.KiB, nil); err == nil {
		t.Fatal("copy beyond staging accepted")
	}
}

func TestFabricStats(t *testing.T) {
	eng, f, nodes := newFabric(t, 2)
	src, _ := nodes[0].AllocDMABuffer(64)
	dst, _ := nodes[1].AllocDMABuffer(64)
	if err := f.VerbsSend(0, 1, src, dst, 64, nil); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	msgs, b := f.Stats()
	if msgs != 1 || b != 64 {
		t.Fatalf("stats = %d msgs / %d bytes", msgs, b)
	}
}

func TestRingAllreduceSums(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		eng, f, nodes := newFabric(t, n)
		count := n * 16
		bufs := make([]pcie.Addr, n)
		for i := 0; i < n; i++ {
			b, err := nodes[i].AllocDMABuffer(units.ByteSize(count * 8))
			if err != nil {
				t.Fatal(err)
			}
			bufs[i] = b
			raw := make([]byte, count*8)
			for j := 0; j < count; j++ {
				binary.LittleEndian.PutUint64(raw[j*8:], math.Float64bits(float64(i+1)+float64(j)))
			}
			if err := nodes[i].WriteLocal(b, raw); err != nil {
				t.Fatal(err)
			}
		}
		var doneAt sim.Time
		if err := f.RingAllreduce(bufs, count, func(now sim.Time) { doneAt = now }); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		if doneAt == 0 {
			t.Fatalf("n=%d: allreduce never completed", n)
		}
		base := float64(n*(n+1)) / 2
		for i := 0; i < n; i++ {
			raw, _ := nodes[i].ReadLocal(bufs[i], units.ByteSize(count*8))
			for j := 0; j < count; j++ {
				got := math.Float64frombits(binary.LittleEndian.Uint64(raw[j*8:]))
				if got != base+float64(n*j) {
					t.Fatalf("n=%d node %d elem %d: got %v want %v", n, i, j, got, base+float64(n*j))
				}
			}
		}
	}
}

func TestRingAllreduceValidation(t *testing.T) {
	eng, f, nodes := newFabric(t, 2)
	_ = eng
	b0, _ := nodes[0].AllocDMABuffer(64)
	if err := f.RingAllreduce([]pcie.Addr{b0}, 2, nil); err == nil {
		t.Fatal("wrong buffer count accepted")
	}
	if err := f.RingAllreduce([]pcie.Addr{b0, b0}, 3, nil); err == nil {
		t.Fatal("non-divisible count accepted")
	}
}
