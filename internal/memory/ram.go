// Package memory provides sparse simulated RAM and PCIe memory-target
// devices. Host DRAM, GPU GDDR and PEACH2's internal SRAM/DDR3 all build on
// RAM; Target wraps a RAM behind a PCIe port so Memory Writes land in it and
// Memory Reads produce Completions — with per-technology timing.
package memory

import (
	"fmt"

	"tca/internal/units"
)

const pageShift = 12 // 4 KiB pages, matching PCIe/GPUDirect page granularity
const pageSize = 1 << pageShift

type page [pageSize]byte

// RAM is a sparse byte-addressable memory. Pages materialize on first write,
// so modelling a 512 GiB BAR window costs nothing until bytes actually land.
// Unwritten bytes read as zero.
type RAM struct {
	size  units.ByteSize
	pages map[uint64]*page
}

// NewRAM creates a RAM of the given capacity.
func NewRAM(size units.ByteSize) *RAM {
	if size <= 0 {
		panic(fmt.Sprintf("memory: non-positive RAM size %d", size))
	}
	return &RAM{size: size, pages: make(map[uint64]*page)}
}

// Size reports the capacity.
func (r *RAM) Size() units.ByteSize { return r.size }

// ResidentBytes reports how much backing store has materialized — useful for
// asserting that big windows stay sparse.
func (r *RAM) ResidentBytes() units.ByteSize {
	return units.ByteSize(len(r.pages) * pageSize)
}

func (r *RAM) check(off uint64, n int) error {
	if n < 0 {
		return fmt.Errorf("memory: negative length %d", n)
	}
	if off+uint64(n) > uint64(r.size) || off+uint64(n) < off {
		return fmt.Errorf("memory: access [0x%x, 0x%x) outside RAM of %v", off, off+uint64(n), r.size)
	}
	return nil
}

// Write stores data at byte offset off.
func (r *RAM) Write(off uint64, data []byte) error {
	if err := r.check(off, len(data)); err != nil {
		return err
	}
	for len(data) > 0 {
		pi := off >> pageShift
		po := off & (pageSize - 1)
		p := r.pages[pi]
		if p == nil {
			p = new(page)
			r.pages[pi] = p
		}
		n := copy(p[po:], data)
		data = data[n:]
		off += uint64(n)
	}
	return nil
}

// Read fills buf from byte offset off.
func (r *RAM) Read(off uint64, buf []byte) error {
	if err := r.check(off, len(buf)); err != nil {
		return err
	}
	for len(buf) > 0 {
		pi := off >> pageShift
		po := off & (pageSize - 1)
		var n int
		if p := r.pages[pi]; p != nil {
			n = copy(buf, p[po:])
		} else {
			n = pageSize - int(po)
			if n > len(buf) {
				n = len(buf)
			}
			for i := 0; i < n; i++ {
				buf[i] = 0
			}
		}
		buf = buf[n:]
		off += uint64(n)
	}
	return nil
}

// ReadBytes is Read into a freshly allocated buffer.
func (r *RAM) ReadBytes(off uint64, n units.ByteSize) ([]byte, error) {
	buf := make([]byte, n)
	if err := r.Read(off, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
