package memory

import (
	"bytes"
	"testing"
	"testing/quick"

	"tca/internal/units"
)

func TestRAMWriteRead(t *testing.T) {
	r := NewRAM(64 * units.KiB)
	data := []byte("tightly coupled accelerators")
	if err := r.Write(100, data); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadBytes(100, units.ByteSize(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q, want %q", got, data)
	}
}

func TestRAMUnwrittenReadsZero(t *testing.T) {
	r := NewRAM(1 * units.MiB)
	got, err := r.ReadBytes(12345, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %d, want 0", i, b)
		}
	}
}

func TestRAMCrossPageAccess(t *testing.T) {
	r := NewRAM(64 * units.KiB)
	data := make([]byte, 10000) // crosses two page boundaries
	for i := range data {
		data[i] = byte(i % 251)
	}
	if err := r.Write(4000, data); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadBytes(4000, units.ByteSize(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page round-trip corrupted data")
	}
}

func TestRAMPartialPageReadAfterSparseWrite(t *testing.T) {
	r := NewRAM(64 * units.KiB)
	// Write only in page 1; a read spanning pages 0–2 must see zeros
	// around the written bytes.
	if err := r.Write(5000, []byte{0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadBytes(0, 12*units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		switch i {
		case 5000:
			if b != 0xAA {
				t.Fatalf("byte 5000 = %#x", b)
			}
		case 5001:
			if b != 0xBB {
				t.Fatalf("byte 5001 = %#x", b)
			}
		default:
			if b != 0 {
				t.Fatalf("byte %d = %#x, want 0", i, b)
			}
		}
	}
}

func TestRAMBoundsChecks(t *testing.T) {
	r := NewRAM(4 * units.KiB)
	if err := r.Write(4096, []byte{1}); err == nil {
		t.Fatal("write past end accepted")
	}
	if err := r.Write(4000, make([]byte, 200)); err == nil {
		t.Fatal("straddling write accepted")
	}
	if err := r.Read(5000, make([]byte, 1)); err == nil {
		t.Fatal("read past end accepted")
	}
	if err := r.Write(0, make([]byte, 4096)); err != nil {
		t.Fatalf("exact-fit write rejected: %v", err)
	}
}

func TestRAMSparseness(t *testing.T) {
	// A 512 GiB BAR window must not allocate 512 GiB.
	r := NewRAM(512 * units.GiB)
	if err := r.Write(uint64(256*units.GiB), []byte{1}); err != nil {
		t.Fatal(err)
	}
	if got := r.ResidentBytes(); got > 8*units.KiB {
		t.Fatalf("ResidentBytes = %v after a 1-byte write into 512GiB", got)
	}
	if r.Size() != 512*units.GiB {
		t.Fatalf("Size = %v", r.Size())
	}
}

func TestNewRAMRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRAM(0) did not panic")
		}
	}()
	NewRAM(0)
}

// Property: any sequence of non-overlapping writes reads back exactly.
func TestQuickRAMRoundTrip(t *testing.T) {
	f := func(off uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		r := NewRAM(16 * units.MiB)
		o := uint64(off) % (16*1024*1024 - uint64(len(data)))
		if err := r.Write(o, data); err != nil {
			return false
		}
		got, err := r.ReadBytes(o, units.ByteSize(len(data)))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: later writes win where they overlap earlier ones.
func TestQuickRAMOverwrite(t *testing.T) {
	f := func(a, b []byte, gap uint8) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		r := NewRAM(1 * units.MiB)
		if r.Write(1000, a) != nil || r.Write(1000+uint64(gap), b) != nil {
			return false
		}
		want := make([]byte, 1000+len(a)+len(b)+256)
		copy(want[1000:], a)
		copy(want[1000+int(gap):], b)
		got, err := r.ReadBytes(0, units.ByteSize(len(want)))
		if err != nil {
			return false
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
