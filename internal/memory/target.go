package memory

import (
	"fmt"

	"tca/internal/pcie"
	"tca/internal/sim"
	"tca/internal/units"
)

// TargetParams sets the timing personality of a memory behind a PCIe port.
type TargetParams struct {
	// ReadLatency is the pipeline latency from Memory Read arrival to the
	// first Completion leaving (memory controller + access time).
	ReadLatency units.Duration
	// ReadService serializes read requests: each one occupies the read
	// path for this long before the next is serviced. Zero means fully
	// pipelined. The GPU's BAR address-translation unit has a large
	// ReadService — the mechanism behind the paper's 830 MB/s GPU-read
	// ceiling (§IV-A2).
	ReadService units.Duration
	// WriteDrain is how long an arriving posted write occupies the
	// ingress buffer before its flow-control credit frees (sink speed).
	WriteDrain units.Duration
	// DeepWriteQueue marks a sink with a request queue deep enough that
	// writes are accepted immediately regardless of drain state — the
	// paper's explanation for remote GPU writes running at full speed
	// (§IV-B2). Such sinks return their credit instantly.
	DeepWriteQueue bool
}

// Target exposes a RAM as a PCIe completer device: MWr TLPs write into it,
// MRd TLPs produce CplD replies on the arrival port. Base is the bus
// address its window starts at; bus address X lands at RAM offset X-Base.
type Target struct {
	eng     *sim.Engine
	name    string
	ram     *RAM
	base    pcie.Addr
	params  TargetParams
	readSer sim.Serializer
	watches []watch

	// Stats
	writeTLPs uint64
	readTLPs  uint64
	bytesIn   units.ByteSize
	bytesOut  units.ByteSize
}

type watch struct {
	r  pcie.Range
	fn func(now sim.Time, addr pcie.Addr, n units.ByteSize)
}

// NewTarget wraps ram as a PCIe completer at bus address base.
func NewTarget(eng *sim.Engine, name string, ram *RAM, base pcie.Addr, params TargetParams) *Target {
	if ram == nil {
		panic("memory: NewTarget with nil RAM")
	}
	return &Target{eng: eng, name: name, ram: ram, base: base, params: params}
}

// DevName implements pcie.Device.
func (t *Target) DevName() string { return t.name }

// RAM returns the backing memory.
func (t *Target) RAM() *RAM { return t.ram }

// Base reports the bus address of the window start.
func (t *Target) Base() pcie.Addr { return t.base }

// SetBase relocates the window (used when the TCA global map assigns the
// final addresses at sub-cluster construction).
func (t *Target) SetBase(b pcie.Addr) { t.base = b }

// Window reports the bus window the target serves.
func (t *Target) Window() pcie.Range {
	return pcie.Range{Base: t.base, Size: uint64(t.ram.Size())}
}

// Watch calls fn whenever a posted write touches window r (bus addresses).
// The host driver's polling loop and DMA completion flags build on this.
func (t *Target) Watch(r pcie.Range, fn func(now sim.Time, addr pcie.Addr, n units.ByteSize)) {
	t.watches = append(t.watches, watch{r: r, fn: fn})
}

// Stats reports cumulative write/read TLP counts and payload bytes.
func (t *Target) Stats() (writeTLPs, readTLPs uint64, bytesIn, bytesOut units.ByteSize) {
	return t.writeTLPs, t.readTLPs, t.bytesIn, t.bytesOut
}

// Accept implements pcie.Device.
func (t *Target) Accept(now sim.Time, p *pcie.TLP, port *pcie.Port) units.Duration {
	switch p.Kind {
	case pcie.MWr:
		off := uint64(p.Addr - t.base)
		if err := t.ram.Write(off, p.Data); err != nil {
			panic(fmt.Sprintf("memory %s: MWr %v: %v", t.name, p.Addr, err))
		}
		t.writeTLPs++
		t.bytesIn += p.PayloadLen()
		n := units.ByteSize(len(p.Data))
		for _, w := range t.watches {
			hit := pcie.Range{Base: p.Addr, Size: uint64(n)}
			if w.r.Overlaps(hit) {
				w.fn(now, p.Addr, n)
			}
		}
		if t.params.DeepWriteQueue {
			return 0
		}
		return t.params.WriteDrain
	case pcie.MRd:
		t.readTLPs++
		req := *p // copy: the reply closure outlives the arrival event
		start := now
		if t.params.ReadService > 0 {
			start = t.readSer.Reserve(now, t.params.ReadService)
		}
		reply := start.Add(t.params.ReadService).Add(t.params.ReadLatency)
		if t.params.ReadService == 0 {
			reply = now.Add(t.params.ReadLatency)
		}
		t.eng.At(reply, func() {
			off := uint64(req.Addr - t.base)
			data, err := t.ram.ReadBytes(off, req.ReadLen)
			if err != nil {
				panic(fmt.Sprintf("memory %s: MRd %v: %v", t.name, req.Addr, err))
			}
			t.bytesOut += units.ByteSize(len(data))
			maxPayload := port.Link().Params().MaxPayload
			for _, c := range pcie.SplitCompletion(&req, data, maxPayload) {
				port.Send(t.eng.Now(), c)
			}
		})
		return 0
	default:
		panic(fmt.Sprintf("memory %s: unexpected %v (targets never issue reads)", t.name, p.Kind))
	}
}
