package memory

import (
	"bytes"
	"testing"

	"tca/internal/pcie"
	"tca/internal/sim"
	"tca/internal/units"
)

// requester is a test device that issues reads/writes to a Target across a
// link and collects completions.
type requester struct {
	name string
	eng  *sim.Engine
	port *pcie.Port
	tags *pcie.TagTable
}

func newRequester(eng *sim.Engine, name string) *requester {
	r := &requester{name: name, eng: eng, tags: pcie.NewTagTable(32)}
	r.port = pcie.NewPort(r, "dn", pcie.RoleRC)
	return r
}

func (r *requester) DevName() string { return r.name }

func (r *requester) Accept(now sim.Time, t *pcie.TLP, p *pcie.Port) units.Duration {
	if t.Kind != pcie.CplD && t.Kind != pcie.Cpl {
		panic("requester got non-completion")
	}
	if err := r.tags.HandleCompletion(t); err != nil {
		panic(err)
	}
	return 0
}

// read issues a (possibly split) read and returns the data plus finish time
// after running the engine to idle.
func (r *requester) read(addr pcie.Addr, n units.ByteSize) ([]byte, sim.Time) {
	var out []byte
	chunks := pcie.SplitRead(addr, n, pcie.DefaultMaxReadRequest)
	done := 0
	for _, c := range chunks {
		c := c
		tag, ok := r.tags.Alloc(c.ReadLen, func(data []byte) {
			out = append(out, data...)
			done++
		})
		if !ok {
			panic("tag exhaustion in test")
		}
		c.Tag = tag
		c.Requester = 1
		r.port.Send(r.eng.Now(), c)
	}
	end, _ := r.eng.Run()
	if done != len(chunks) {
		panic("not all read chunks completed")
	}
	return out, end
}

func targetFixture(t *testing.T, params TargetParams) (*sim.Engine, *requester, *Target) {
	t.Helper()
	eng := sim.NewEngine()
	ram := NewRAM(1 * units.MiB)
	tgt := NewTarget(eng, "dram", ram, 0x1_0000_0000, params)
	req := newRequester(eng, "cpu")
	tport := pcie.NewPort(tgt, "up", pcie.RoleEP)
	pcie.MustConnect(eng, req.port, tport, pcie.LinkParams{Config: pcie.Gen2x8})
	return eng, req, tgt
}

func TestTargetWriteLandsInRAM(t *testing.T) {
	eng, req, tgt := targetFixture(t, TargetParams{})
	data := []byte("peach2 put")
	for _, w := range pcie.SplitWrite(0x1_0000_0040, data, 256, false) {
		req.port.Send(0, w)
	}
	eng.Run()
	got, err := tgt.RAM().ReadBytes(0x40, units.ByteSize(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("RAM contains %q, want %q", got, data)
	}
	wr, _, in, _ := tgt.Stats()
	if wr != 1 || in != units.ByteSize(len(data)) {
		t.Fatalf("stats: writes=%d bytesIn=%d", wr, in)
	}
}

func TestTargetReadRoundTrip(t *testing.T) {
	eng, req, tgt := targetFixture(t, TargetParams{ReadLatency: 200 * units.Nanosecond})
	want := make([]byte, 1500)
	for i := range want {
		want[i] = byte(i * 7)
	}
	if err := tgt.RAM().Write(0x200, want); err != nil {
		t.Fatal(err)
	}
	_ = eng
	got, _ := req.read(0x1_0000_0200, units.ByteSize(len(want)))
	if !bytes.Equal(got, want) {
		t.Fatal("read data does not match RAM contents")
	}
}

func TestTargetReadLatencyApplied(t *testing.T) {
	_, req, _ := targetFixture(t, TargetParams{ReadLatency: 500 * units.Nanosecond})
	_, end := req.read(0x1_0000_0000, 4)
	// Request wire (~6ns) + 500ns latency + completion wire (~7ns).
	if end < sim.Time(500*units.Nanosecond) || end > sim.Time(600*units.Nanosecond) {
		t.Fatalf("read finished at %v, want ~510ns", end)
	}
}

func TestTargetReadServiceSerializes(t *testing.T) {
	// Two concurrent reads with 300 ns service must finish ≥600 ns apart
	// in aggregate — modelling the GPU BAR translation bottleneck.
	eng, req, tgt := targetFixture(t, TargetParams{ReadService: 300 * units.Nanosecond})
	_ = tgt
	var finished []sim.Time
	for i := 0; i < 2; i++ {
		addr := pcie.Addr(0x1_0000_0000 + i*64)
		tag, ok := req.tags.Alloc(64, func(data []byte) {
			finished = append(finished, eng.Now())
		})
		if !ok {
			t.Fatal("tag alloc failed")
		}
		req.port.Send(0, &pcie.TLP{Kind: pcie.MRd, Addr: addr, ReadLen: 64, Tag: tag, Requester: 1})
	}
	eng.Run()
	if len(finished) != 2 {
		t.Fatalf("finished %d reads, want 2", len(finished))
	}
	gap := finished[1].Sub(finished[0])
	if gap < 290*units.Nanosecond {
		t.Fatalf("completions %v apart, want ≥~300ns (serialized service)", gap)
	}
}

func TestTargetDeepWriteQueueReturnsCreditInstantly(t *testing.T) {
	eng := sim.NewEngine()
	ram := NewRAM(1 * units.MiB)
	tgt := NewTarget(eng, "gddr", ram, 0, TargetParams{WriteDrain: units.Microsecond, DeepWriteQueue: true})
	req := newRequester(eng, "peach2")
	tport := pcie.NewPort(tgt, "up", pcie.RoleEP)
	l := pcie.MustConnect(eng, req.port, tport, pcie.LinkParams{Config: pcie.Gen2x8, CreditTLPs: 2})
	for i := 0; i < 8; i++ {
		req.port.Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: pcie.Addr(i * 256), Data: make([]byte, 232)})
	}
	end, _ := eng.Run()
	// 8 × 256 B wire at 4 GB/s = 512 ns: the 1 µs drain must NOT stall
	// because the deep queue acks immediately.
	if end != sim.Time(512*units.Nanosecond) {
		t.Fatalf("deep-queue writes finished at %v, want 512ns", end)
	}
	if q := l.QueuedTLPs(req.port); q != 0 {
		t.Fatalf("%d packets still queued", q)
	}
}

func TestTargetWriteDrainBackpressures(t *testing.T) {
	eng := sim.NewEngine()
	ram := NewRAM(1 * units.MiB)
	tgt := NewTarget(eng, "dram", ram, 0, TargetParams{WriteDrain: units.Microsecond})
	req := newRequester(eng, "peach2")
	tport := pcie.NewPort(tgt, "up", pcie.RoleEP)
	pcie.MustConnect(eng, req.port, tport, pcie.LinkParams{Config: pcie.Gen2x8, CreditTLPs: 2})
	for i := 0; i < 4; i++ {
		req.port.Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: pcie.Addr(i * 256), Data: make([]byte, 232)})
	}
	end, _ := eng.Run()
	// Third packet waits for the first credit (~1 µs), fourth for the
	// second: completion well past 2 µs.
	if end < sim.Time(2*units.Microsecond) {
		t.Fatalf("writes finished at %v — drain backpressure missing", end)
	}
}

func TestTargetWatch(t *testing.T) {
	eng, req, tgt := targetFixture(t, TargetParams{})
	var hits []pcie.Addr
	tgt.Watch(pcie.Range{Base: 0x1_0000_0100, Size: 4}, func(now sim.Time, a pcie.Addr, n units.ByteSize) {
		hits = append(hits, a)
	})
	req.port.Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: 0x1_0000_0000, Data: make([]byte, 16)})   // miss
	req.port.Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: 0x1_0000_0100, Data: []byte{1, 2, 3, 4}}) // hit
	req.port.Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: 0x1_0000_00FE, Data: make([]byte, 8)})    // straddles → hit
	eng.Run()
	if len(hits) != 2 {
		t.Fatalf("watch fired %d times (%v), want 2", len(hits), hits)
	}
}

func TestTargetWindowAndBase(t *testing.T) {
	eng := sim.NewEngine()
	tgt := NewTarget(eng, "x", NewRAM(4*units.KiB), 0x5000, TargetParams{})
	w := tgt.Window()
	if w.Base != 0x5000 || w.Size != 4096 {
		t.Fatalf("Window = %v", w)
	}
	tgt.SetBase(0x9000)
	if tgt.Base() != 0x9000 {
		t.Fatalf("SetBase did not apply")
	}
}

func TestTargetOutOfWindowWritePanics(t *testing.T) {
	eng, req, _ := targetFixture(t, TargetParams{})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-window write did not panic")
		}
	}()
	// Address below base underflows the RAM offset.
	req.port.Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: 0x0FFF_FFFF, Data: []byte{1}})
	eng.Run()
}
