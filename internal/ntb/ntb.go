// Package ntb models the non-transparent bridge of §V — the related-work
// alternative to PEACH2 for PCIe inter-node communication. An NTB is a
// special downstream port of a PCIe switch that "behaves as two different
// EPs" and performs address translation between the two sides through a
// lookup table. The package exists for the ablation the paper implies:
//
//   - translation is a *table search* per packet, where PEACH2's routing is
//     a masked compare against bound registers (§III-E);
//   - the NTB couples the two hosts' fates: "disconnection of the node
//     causes a system reboot", whereas PEACH2's independent ports keep the
//     host-chip link alive when a neighbour goes away;
//   - one bridge joins exactly two hosts, so sub-clusters need a bridge per
//     pair instead of PEACH2's ring.
package ntb

import (
	"fmt"

	"tca/internal/pcie"
	"tca/internal/sim"
	"tca/internal/units"
)

// Params is the bridge's cost model.
type Params struct {
	// ForwardLatency is the switch crossbar time per packet.
	ForwardLatency units.Duration
	// LookupLatencyPerEntry is the translation table search cost per
	// entry scanned — the price of table-based translation.
	LookupLatencyPerEntry units.Duration
	// TranslateLatency is the address rewrite after a hit.
	TranslateLatency units.Duration
	// LUTSize bounds the translation table (real NTBs have 8–64
	// entries).
	LUTSize int
}

// DefaultParams matches a PLX-class switch with NTB.
var DefaultParams = Params{
	ForwardLatency:        150 * units.Nanosecond,
	LookupLatencyPerEntry: 8 * units.Nanosecond,
	TranslateLatency:      16 * units.Nanosecond,
	LUTSize:               32,
}

// Side identifies the bridge's two faces.
type Side int

// Bridge sides.
const (
	SideA Side = iota
	SideB
)

func (s Side) String() string {
	if s == SideA {
		return "A"
	}
	return "B"
}

func (s Side) other() Side { return 1 - s }

// Mapping is one LUT entry: packets hitting From on one side exit the other
// side at To+offset.
type Mapping struct {
	From pcie.Range
	To   pcie.Addr
}

// Bridge is the NTB device. Each side exposes an endpoint port to its
// host's switch tree.
type Bridge struct {
	eng    *sim.Engine
	name   string
	params Params
	ports  [2]*pcie.Port
	lut    [2][]Mapping
	downAt [2]bool

	translated [2]uint64
	rejected   uint64
}

// New creates a bridge.
func New(eng *sim.Engine, name string, params Params) *Bridge {
	if params.LUTSize <= 0 {
		panic(fmt.Sprintf("ntb %s: LUT size %d", name, params.LUTSize))
	}
	b := &Bridge{eng: eng, name: name, params: params}
	b.ports[SideA] = pcie.NewPort(b, "A", pcie.RoleEP)
	b.ports[SideB] = pcie.NewPort(b, "B", pcie.RoleEP)
	return b
}

// DevName implements pcie.Device.
func (b *Bridge) DevName() string { return b.name }

// Port returns the endpoint port of one side.
func (b *Bridge) Port(s Side) *pcie.Port { return b.ports[s] }

// AddMapping installs a LUT entry translating from-side window fr to the
// other side's base to.
func (b *Bridge) AddMapping(from Side, fr pcie.Range, to pcie.Addr) error {
	if len(b.lut[from]) >= b.params.LUTSize {
		return fmt.Errorf("ntb %s: LUT full (%d entries) — a real NTB limitation", b.name, b.params.LUTSize)
	}
	if fr.Size == 0 {
		return fmt.Errorf("ntb %s: empty mapping window", b.name)
	}
	for _, m := range b.lut[from] {
		if m.From.Overlaps(fr) {
			return fmt.Errorf("ntb %s: mapping %v overlaps %v", b.name, fr, m.From)
		}
	}
	b.lut[from] = append(b.lut[from], Mapping{From: fr, To: to})
	return nil
}

// Disconnect marks one side's peer as gone. Per §V, the surviving host
// cannot keep using the bridge: endpoints it enumerated at BIOS time
// vanished, and recovery needs a reboot — subsequent traffic panics with
// that diagnosis. (PEACH2 avoids this: "the link state with the other node
// has no impact on the connection between the host and the PEACH2 chip".)
func (b *Bridge) Disconnect(s Side) { b.downAt[s] = true }

// Stats reports per-side translation counts.
func (b *Bridge) Stats() (translatedAtoB, translatedBtoA, rejected uint64) {
	return b.translated[SideA], b.translated[SideB], b.rejected
}

// sideOf maps an arrival port to its side.
func (b *Bridge) sideOf(p *pcie.Port) Side {
	if p == b.ports[SideA] {
		return SideA
	}
	return SideB
}

// Accept implements pcie.Device: translate and forward to the other side.
func (b *Bridge) Accept(now sim.Time, t *pcie.TLP, in *pcie.Port) units.Duration {
	from := b.sideOf(in)
	to := from.other()
	if b.downAt[to] || b.downAt[from] {
		panic(fmt.Sprintf("ntb %s: traffic after peer disconnect — host must reboot (§V)", b.name))
	}
	switch t.Kind {
	case pcie.MWr, pcie.MRd:
		// Table search: linear scan, each entry costs lookup time.
		var hit *Mapping
		scanned := 0
		for i := range b.lut[from] {
			scanned++
			if b.lut[from][i].From.Contains(t.Addr) {
				hit = &b.lut[from][i]
				break
			}
		}
		cost := b.params.ForwardLatency +
			units.Duration(scanned)*b.params.LookupLatencyPerEntry +
			b.params.TranslateLatency
		if hit == nil {
			b.rejected++
			panic(fmt.Sprintf("ntb %s: no LUT entry for %v from side %v", b.name, t.Addr, from))
		}
		out := *t
		out.Addr = hit.To + (t.Addr - hit.From.Base)
		b.translated[from]++
		b.eng.After(cost, func() {
			b.ports[to].Send(b.eng.Now(), &out)
		})
		return 8 * units.Nanosecond
	case pcie.CplD, pcie.Cpl:
		// Completions cross back untranslated (routed by requester ID).
		b.eng.After(b.params.ForwardLatency, func() {
			b.ports[to].Send(b.eng.Now(), t)
		})
		return 0
	default:
		panic(fmt.Sprintf("ntb %s: unhandled %v", b.name, t.Kind))
	}
}

// Ports implements pcie.Enumerable with BOTH sides — the §V criticism made
// structural: "during the BIOS scan at boot time, the host must recognize
// the EPs in the NTB", so an enumeration from either host crosses the
// bridge into the peer's fabric, coupling their lifetimes.
func (b *Bridge) Ports() []*pcie.Port { return []*pcie.Port{b.ports[SideA], b.ports[SideB]} }
