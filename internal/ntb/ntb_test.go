package ntb

import (
	"bytes"
	"testing"

	"tca/internal/host"
	"tca/internal/pcie"
	"tca/internal/sim"
	"tca/internal/units"
)

// ntbPair wires two nodes through one bridge: node A reaches node B's DRAM
// through window winAB, and vice versa.
type ntbPair struct {
	eng    *sim.Engine
	bridge *Bridge
	a, b   *host.Node
	winAB  pcie.Range // on A's bus: writes here land in B's DRAM at 0
	winBA  pcie.Range
}

func newPair(t *testing.T) *ntbPair {
	t.Helper()
	eng := sim.NewEngine()
	a := host.NewNode(eng, 0, host.DefaultParams)
	b := host.NewNode(eng, 1, host.DefaultParams)
	br := New(eng, "ntb0", DefaultParams)
	p := &ntbPair{
		eng:    eng,
		bridge: br,
		a:      a,
		b:      b,
		winAB:  pcie.Range{Base: 0x90_0000_0000, Size: 1 << 30},
		winBA:  pcie.Range{Base: 0x90_0000_0000, Size: 1 << 30},
	}
	if err := a.AttachDevice(0, "ntb", p.winAB, br.Port(SideA), pcie.LinkParams{Config: pcie.Gen2x8}); err != nil {
		t.Fatal(err)
	}
	if err := b.AttachDevice(0, "ntb", p.winBA, br.Port(SideB), pcie.LinkParams{Config: pcie.Gen2x8}); err != nil {
		t.Fatal(err)
	}
	// Map each side's window onto the other's DRAM base.
	if err := br.AddMapping(SideA, p.winAB, 0); err != nil {
		t.Fatal(err)
	}
	if err := br.AddMapping(SideB, p.winBA, 0); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNTBWriteCrossesAndTranslates(t *testing.T) {
	p := newPair(t)
	want := []byte("through the bridge")
	p.a.Store(p.winAB.Base+0x4000, want[:16])
	p.eng.Run()
	got, _ := p.b.ReadLocal(0x4000, 16)
	if !bytes.Equal(got, want[:16]) {
		t.Fatalf("B's DRAM holds %q", got)
	}
	ab, ba, rej := p.bridge.Stats()
	if ab != 1 || ba != 0 || rej != 0 {
		t.Fatalf("stats %d/%d/%d", ab, ba, rej)
	}
}

func TestNTBBidirectional(t *testing.T) {
	p := newPair(t)
	p.a.Store(p.winAB.Base+0x100, []byte{1})
	p.b.Store(p.winBA.Base+0x200, []byte{2})
	p.eng.Run()
	gb, _ := p.b.ReadLocal(0x100, 1)
	ga, _ := p.a.ReadLocal(0x200, 1)
	if gb[0] != 1 || ga[0] != 2 {
		t.Fatal("bidirectional translation broken")
	}
}

func TestNTBSlowerPerHopThanPEACH2Routing(t *testing.T) {
	// The ablation's premise: LUT search + rewrite beats nothing — a
	// PEACH2 compare-only hop is 100 ns + 8 ns conversion, an NTB hop is
	// 150 + scan + 16.
	p := newPair(t)
	var arrived sim.Time
	p.b.Poll(pcie.Range{Base: 0x300, Size: 1}, func(now sim.Time) { arrived = now })
	p.a.Store(p.winAB.Base+0x300, []byte{7})
	p.eng.Run()
	if arrived == 0 {
		t.Fatal("write never observed")
	}
	// Host store path (~280 ns) + NTB (174 ns) + B-side delivery.
	if arrived < sim.Time(450*units.Nanosecond) {
		t.Fatalf("NTB crossing at %v suspiciously fast", arrived)
	}
}

func TestNTBLUTCapacity(t *testing.T) {
	eng := sim.NewEngine()
	br := New(eng, "n", Params{ForwardLatency: 1, LookupLatencyPerEntry: 1, TranslateLatency: 1, LUTSize: 2})
	if err := br.AddMapping(SideA, pcie.Range{Base: 0x1000, Size: 0x100}, 0); err != nil {
		t.Fatal(err)
	}
	if err := br.AddMapping(SideA, pcie.Range{Base: 0x2000, Size: 0x100}, 0); err != nil {
		t.Fatal(err)
	}
	if err := br.AddMapping(SideA, pcie.Range{Base: 0x3000, Size: 0x100}, 0); err == nil {
		t.Fatal("LUT overflow accepted")
	}
	if err := br.AddMapping(SideB, pcie.Range{Base: 0x1080, Size: 0x100}, 0); err != nil {
		t.Fatal("side B table should be independent")
	}
}

func TestNTBOverlappingMappingRejected(t *testing.T) {
	eng := sim.NewEngine()
	br := New(eng, "n", DefaultParams)
	if err := br.AddMapping(SideA, pcie.Range{Base: 0x1000, Size: 0x1000}, 0); err != nil {
		t.Fatal(err)
	}
	if err := br.AddMapping(SideA, pcie.Range{Base: 0x1800, Size: 0x1000}, 0); err == nil {
		t.Fatal("overlapping mapping accepted")
	}
}

func TestNTBUnmappedAddressPanics(t *testing.T) {
	p := newPair(t)
	defer func() {
		if recover() == nil {
			t.Fatal("unmapped NTB access did not panic")
		}
	}()
	// Poke a hole: remove mappings by building a fresh bridge is
	// overkill; write beyond the mapped gigabyte instead — the switch
	// window is what routes here, so shrink the mapping first.
	br := New(p.eng, "n2", DefaultParams)
	_ = br.AddMapping(SideA, pcie.Range{Base: 0x1000, Size: 0x100}, 0)
	hostd := pcie.NewPort(&fake{}, "x", pcie.RoleRC)
	pcie.MustConnect(p.eng, hostd, br.Port(SideA), pcie.LinkParams{Config: pcie.Gen2x8})
	hostd.Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: 0x9000, Data: []byte{1}})
	p.eng.Run()
}

type fake struct{}

func (f *fake) DevName() string                                               { return "fake" }
func (f *fake) Accept(now sim.Time, t *pcie.TLP, p *pcie.Port) units.Duration { return 0 }

func TestNTBDisconnectRequiresReboot(t *testing.T) {
	p := newPair(t)
	p.bridge.Disconnect(SideB)
	defer func() {
		if recover() == nil {
			t.Fatal("traffic after disconnect did not panic (§V: reboot required)")
		}
	}()
	p.a.Store(p.winAB.Base, []byte{1})
	p.eng.Run()
}

func TestNTBSideString(t *testing.T) {
	if SideA.String() != "A" || SideB.String() != "B" {
		t.Fatal("side strings wrong")
	}
}
