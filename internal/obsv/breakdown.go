package obsv

import (
	"fmt"
	"io"
	"sort"

	"tca/internal/sim"
	"tca/internal/units"
)

// Hop is one segment of a transaction's per-hop latency breakdown: the
// time between two consecutive span events. Summing every hop of a
// transaction reproduces its end-to-end latency exactly — the
// self-consistency property the paper's Fig. 9–10 decompositions rely on.
type Hop struct {
	From Event
	To   Event
	Dur  units.Duration
}

// Label names the hop like "peach2-0:route[E] -> link:ring0-1".
func (h Hop) Label() string {
	return fmt.Sprintf("%s -> %s", endpoint(h.From), endpoint(h.To))
}

func endpoint(e Event) string {
	s := e.Where + ":" + e.Stage.String()
	if e.Port != "" {
		s += "[" + e.Port + "]"
	}
	return s
}

// Breakdown turns one transaction's events into its hop sequence. Events
// are sorted by time (stable on recording order for ties), and each hop is
// the delta to the previous event. An empty or single-event transaction has
// no hops.
func Breakdown(events []Event) []Hop {
	if len(events) < 2 {
		return nil
	}
	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	hops := make([]Hop, 0, len(sorted)-1)
	for i := 1; i < len(sorted); i++ {
		hops = append(hops, Hop{
			From: sorted[i-1],
			To:   sorted[i],
			Dur:  sorted[i].At.Sub(sorted[i-1].At),
		})
	}
	return hops
}

// TotalLatency sums a breakdown — by construction equal to last.At minus
// first.At of the transaction's events.
func TotalLatency(hops []Hop) units.Duration {
	var total units.Duration
	for _, h := range hops {
		total += h.Dur
	}
	return total
}

// SpanWindow reports the first and last timestamps of a set of events.
func SpanWindow(events []Event) (first, last sim.Time) {
	for i, e := range events {
		if i == 0 || e.At < first {
			first = e.At
		}
		if e.At > last {
			last = e.At
		}
	}
	return first, last
}

// WriteBreakdown renders a hop table: cumulative timestamp, per-hop delta,
// and the hop label.
func WriteBreakdown(w io.Writer, hops []Hop) {
	if len(hops) == 0 {
		fmt.Fprintln(w, "  (no hops recorded)")
		return
	}
	width := 0
	for _, h := range hops {
		if l := len(h.Label()); l > width {
			width = l
		}
	}
	base := hops[0].From.At
	fmt.Fprintf(w, "  %12s  %-*s  %s\n", "at", width, "hop", "delta")
	for _, h := range hops {
		fmt.Fprintf(w, "  %12v  %-*s  +%v\n", h.To.At.Sub(base), width, h.Label(), h.Dur)
	}
	fmt.Fprintf(w, "  %12s  %-*s  =%v\n", "total", width, "", TotalLatency(hops))
}
