package obsv

import (
	"strings"
	"testing"
)

// TestBreakdownOutOfOrderArrival: events recorded out of time order (a
// callback racing a link arrival in the same tick batch) still produce a
// time-sorted breakdown whose hop sum equals the span window, with
// recording order preserved for equal timestamps.
func TestBreakdownOutOfOrderArrival(t *testing.T) {
	events := []Event{
		{At: 50, Txn: 1, Stage: StageHostWrite, Where: "node1.rc"},
		{At: 10, Txn: 1, Stage: StageCPUStore, Where: "node0"},
		{At: 50, Txn: 1, Stage: StagePollSeen, Where: "node1"},
		{At: 20, Txn: 1, Stage: StageLinkTx, Where: "link"},
	}
	hops := Breakdown(events)
	if len(hops) != 3 {
		t.Fatalf("hops = %d, want 3", len(hops))
	}
	wantOrder := []Stage{StageCPUStore, StageLinkTx, StageHostWrite, StagePollSeen}
	for i, h := range hops {
		if h.From.Stage != wantOrder[i] || h.To.Stage != wantOrder[i+1] {
			t.Fatalf("hop %d is %v -> %v, want %v -> %v",
				i, h.From.Stage, h.To.Stage, wantOrder[i], wantOrder[i+1])
		}
	}
	first, last := SpanWindow(events)
	if TotalLatency(hops) != last.Sub(first) {
		t.Fatalf("hop sum %v != window %v", TotalLatency(hops), last.Sub(first))
	}
	// The tied pair (At=50) must keep recording order: host-write before
	// poll-seen, as a zero-duration hop.
	if hops[2].Dur != 0 {
		t.Fatalf("tied-timestamp hop has duration %v, want 0", hops[2].Dur)
	}
}

// TestBreakdownInterleavedTxns: two transactions recorded interleaved into
// one ring stay fully separated — each TxnEvents slice reconstructs its own
// exact window with no cross-contamination.
func TestBreakdownInterleavedTxns(t *testing.T) {
	r := NewRecorder(16)
	r.Record(Event{At: 10, Txn: 1, Stage: StageCPUStore})
	r.Record(Event{At: 12, Txn: 2, Stage: StageCPUStore})
	r.Record(Event{At: 20, Txn: 2, Stage: StageLinkTx})
	r.Record(Event{At: 25, Txn: 1, Stage: StageLinkTx})
	r.Record(Event{At: 30, Txn: 1, Stage: StagePollSeen})
	r.Record(Event{At: 44, Txn: 2, Stage: StagePollSeen})
	for _, c := range []struct {
		txn    uint64
		events int
		total  int64
	}{{1, 3, 20}, {2, 3, 32}} {
		evs := r.TxnEvents(c.txn)
		if len(evs) != c.events {
			t.Fatalf("txn %d has %d events, want %d", c.txn, len(evs), c.events)
		}
		for _, e := range evs {
			if e.Txn != c.txn {
				t.Fatalf("txn %d slice contains foreign event %v", c.txn, e)
			}
		}
		if got := TotalLatency(Breakdown(evs)); int64(got) != c.total {
			t.Fatalf("txn %d total %v, want %dps", c.txn, got, c.total)
		}
	}
}

// TestBreakdownSingleEvent: a transaction with one retained event has no
// hops and zero total — never a panic or a negative window.
func TestBreakdownSingleEvent(t *testing.T) {
	r := NewRecorder(4)
	r.Record(Event{At: 7, Txn: 9, Stage: StageDoorbell})
	evs := r.TxnEvents(9)
	if len(evs) != 1 {
		t.Fatalf("retained %d events, want 1", len(evs))
	}
	if hops := Breakdown(evs); hops != nil {
		t.Fatalf("single event produced hops %v", hops)
	}
	if TotalLatency(nil) != 0 {
		t.Fatal("nil breakdown has nonzero total")
	}
	first, last := SpanWindow(evs)
	if first != 7 || last != 7 {
		t.Fatalf("window = [%v, %v], want [7, 7]", first, last)
	}
}

// TestBreakdownAfterEviction: when the ring wraps mid-transaction the
// oldest events are lost; the surviving suffix still forms a valid (if
// truncated) breakdown, and the recorder reports the loss via Evicted().
func TestBreakdownAfterEviction(t *testing.T) {
	r := NewRecorder(3)
	r.Record(Event{At: 10, Txn: 1, Stage: StageCPUStore})
	r.Record(Event{At: 20, Txn: 1, Stage: StageLinkTx})
	r.Record(Event{At: 30, Txn: 1, Stage: StagePortIn})
	r.Record(Event{At: 40, Txn: 1, Stage: StageHostWrite}) // evicts the store
	r.Record(Event{At: 50, Txn: 1, Stage: StagePollSeen})  // evicts the link-tx
	if r.Evicted() != 2 {
		t.Fatalf("Evicted() = %d, want 2", r.Evicted())
	}
	evs := r.TxnEvents(1)
	if len(evs) != 3 || evs[0].Stage != StagePortIn {
		t.Fatalf("surviving events = %v", evs)
	}
	hops := Breakdown(evs)
	if TotalLatency(hops) != 20 {
		t.Fatalf("truncated total %v, want 20ps", TotalLatency(hops))
	}
}

// TestRecorderEvicted: the counter is nil-safe, zero before any wrap, and
// mirrored into the metrics registry when the recorder belongs to a Set.
func TestRecorderEvicted(t *testing.T) {
	var nilRec *Recorder
	if nilRec.Evicted() != 0 {
		t.Fatal("nil recorder reports evictions")
	}
	set := NewSet(2)
	rec := set.Recorder()
	rec.Record(Event{At: 1, Txn: 1, Stage: StageCPUStore})
	rec.Record(Event{At: 2, Txn: 1, Stage: StageLinkTx})
	if rec.Evicted() != 0 {
		t.Fatalf("Evicted() = %d before wrap, want 0", rec.Evicted())
	}
	rec.Record(Event{At: 3, Txn: 1, Stage: StagePollSeen})
	if rec.Evicted() != 1 {
		t.Fatalf("Evicted() = %d after wrap, want 1", rec.Evicted())
	}
	snap := set.Registry().Snapshot(0)
	found := false
	for _, c := range snap.Counters {
		if c.Name == "span_evictions" && c.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("span_evictions counter not mirrored into snapshot: %+v", snap.Counters)
	}
}

// TestCauseStrings: every cause has a name and shows up in Event.String.
func TestCauseStrings(t *testing.T) {
	for c := CauseCredits; c <= CauseLinkDown; c++ {
		if strings.HasPrefix(c.String(), "Cause(") {
			t.Errorf("cause %d has no name", c)
		}
	}
	if CauseNone.String() != "none" {
		t.Errorf("CauseNone = %q", CauseNone.String())
	}
	if Cause(200).String() != "Cause(200)" {
		t.Error("unknown cause fallback broken")
	}
	e := Event{At: 1, Txn: 2, Stage: StageQueueExit, Where: "link", Cause: CauseCredits}
	if s := e.String(); !strings.Contains(s, "blocked-on=credits-exhausted") {
		t.Errorf("event string %q missing blocked-on", s)
	}
}

// TestPerfettoWaitSlices: a traced wait pair renders as a full-duration
// wait slice named by its cause plus a blocked-on flow arrow, and the
// queue-exit hop slice carries the cause too.
func TestPerfettoWaitSlices(t *testing.T) {
	events := []Event{
		{At: 0, Txn: 1, Stage: StageCPUStore, Where: "node0"},
		{At: 100, Txn: 1, Stage: StageQueueEnter, Where: "link", Cause: CauseCredits},
		{At: 500, Txn: 1, Stage: StageLinkTx, Where: "link"},
		{At: 900, Txn: 1, Stage: StageQueueExit, Where: "link", Cause: CauseCredits},
		{At: 1000, Txn: 1, Stage: StagePollSeen, Where: "node1"},
	}
	tes := PerfettoEvents(events, nil)
	var hopWait, fullWait, flowS, flowF bool
	for _, te := range tes {
		switch {
		case te.Name == "wait:credits-exhausted" && te.Cat == "wait" && te.Ph == "X":
			if te.Dur == psToUS(800) {
				fullWait = true // the matched-pair slice spans enter→exit
			} else {
				hopWait = true // the hop slice covers only the tail
			}
		case te.Cat == "blocked-on" && te.Ph == "s":
			flowS = true
		case te.Cat == "blocked-on" && te.Ph == "f":
			flowF = true
		}
	}
	if !hopWait || !fullWait || !flowS || !flowF {
		t.Fatalf("wait rendering incomplete: hop=%v full=%v s=%v f=%v", hopWait, fullWait, flowS, flowF)
	}
}

// TestWaitStageStrings extends the stage-name check over the wait-edge
// stages appended for the latency anatomy.
func TestWaitStageStrings(t *testing.T) {
	for s := StageReplay; s <= StageQueueExit; s++ {
		if strings.HasPrefix(s.String(), "Stage(") {
			t.Errorf("stage %d has no name", s)
		}
	}
}
