// Package critpath is the causal latency-anatomy engine over the span
// stream: it classifies every hop of a traced transaction into exactly one
// latency bucket — software, wire, switch, DMA engine, or a blocked-on wait
// cause — so a transaction's per-bucket budget sums tick-exactly to its
// end-to-end latency, the decomposition the paper's Fig. 9–10 argument and
// the APEnet+ injection/routing/serialization budgets are built on.
// Fleet-wide aggregation adds per-bucket totals and shares across all
// transactions of a scenario plus a percentile ladder (p50/p95/p99/p999)
// over their end-to-end latencies.
package critpath

import (
	"sort"

	"tca/internal/obsv"
	"tca/internal/sim"
	"tca/internal/stats"
	"tca/internal/units"
)

// Bucket is one latency-anatomy charge account. Every hop of a breakdown
// is charged to exactly one bucket, so the per-bucket sums partition the
// end-to-end latency.
type Bucket uint8

// Buckets. The wait buckets mirror the obsv.Cause taxonomy.
const (
	// BucketSoftware: CPU stores, poll-loop detection, doorbell writes,
	// IRQ delivery, and driver completion handling.
	BucketSoftware Bucket = iota
	// BucketWire: link serialization plus propagation (internal traces
	// and external cables).
	BucketWire
	// BucketSwitch: host PCIe switch crossbars plus the PEACH2
	// route/convert/egress pipeline.
	BucketSwitch
	// BucketDMAEngine: DMAC descriptor fetch and TLP issue work.
	BucketDMAEngine
	// BucketWaitCredits: blocked on an exhausted link credit pool.
	BucketWaitCredits
	// BucketWaitReplay: blocked on DLL replay (full replay buffer or
	// retransmission rounds).
	BucketWaitReplay
	// BucketWaitRouteBusy: blocked behind earlier packets on a busy
	// egress wire.
	BucketWaitRouteBusy
	// BucketWaitChainSer: blocked in the DMAC issue pipeline behind the
	// chain's earlier TLPs.
	BucketWaitChainSer
	// BucketWaitTag: blocked on outstanding-read tag exhaustion.
	BucketWaitTag
	// BucketWaitRead: blocked on DRAM read service (and read retries).
	BucketWaitRead
	// BucketWaitLinkDown: blocked on a dead link until failover.
	BucketWaitLinkDown
	// BucketUnattributed: a hop the classifier could not place — always
	// zero on a healthy trace, and gated to zero in CI.
	BucketUnattributed
	// NumBuckets sizes per-bucket arrays.
	NumBuckets
)

// String names the bucket.
func (b Bucket) String() string {
	switch b {
	case BucketSoftware:
		return "software"
	case BucketWire:
		return "wire"
	case BucketSwitch:
		return "switch"
	case BucketDMAEngine:
		return "dma-engine"
	case BucketWaitCredits:
		return "wait:credits-exhausted"
	case BucketWaitReplay:
		return "wait:dll-replay"
	case BucketWaitRouteBusy:
		return "wait:route-busy"
	case BucketWaitChainSer:
		return "wait:chain-serialization"
	case BucketWaitTag:
		return "wait:tag-wait"
	case BucketWaitRead:
		return "wait:outstanding-read"
	case BucketWaitLinkDown:
		return "wait:link-down"
	case BucketUnattributed:
		return "unattributed"
	default:
		return "Bucket(?)"
	}
}

// IsWait reports whether the bucket is a blocked-on wait cause.
func (b Bucket) IsWait() bool {
	return b >= BucketWaitCredits && b <= BucketWaitLinkDown
}

// waitBucket maps a wait cause to its bucket.
func waitBucket(c obsv.Cause) Bucket {
	switch c {
	case obsv.CauseCredits:
		return BucketWaitCredits
	case obsv.CauseReplay:
		return BucketWaitReplay
	case obsv.CauseRouteBusy:
		return BucketWaitRouteBusy
	case obsv.CauseChainSerialization:
		return BucketWaitChainSer
	case obsv.CauseTagWait:
		return BucketWaitTag
	case obsv.CauseOutstandingRead:
		return BucketWaitRead
	case obsv.CauseLinkDown:
		return BucketWaitLinkDown
	default:
		return BucketUnattributed
	}
}

// sourceBucket charges a hop by its origin event — used when the
// destination stage (link-tx, queue-enter) marks a handoff whose cost
// belongs to whatever produced the packet.
func sourceBucket(e obsv.Event) Bucket {
	switch e.Stage {
	case obsv.StageCPUStore, obsv.StagePollSeen, obsv.StageIRQ,
		obsv.StageChainDone, obsv.StageDoorbell:
		return BucketSoftware
	case obsv.StageDMAFetch, obsv.StageDMAIssue:
		return BucketDMAEngine
	case obsv.StagePortIn, obsv.StageRoute, obsv.StageConvert,
		obsv.StagePortOut, obsv.StageSwitch:
		return BucketSwitch
	default:
		// link-tx, queue-exit, host-write/read, flush-ack: the packet is
		// already in flight — wire pacing.
		return BucketWire
	}
}

// Classify charges one hop to its bucket. The destination stage decides
// (the hop's time was spent *reaching* it); ambiguous destinations fall
// back on the origin. Queue-exit hops are pure wait time charged to the
// blocking cause. Every stage maps somewhere, so a healthy trace never
// produces BucketUnattributed.
func Classify(h obsv.Hop) Bucket {
	switch h.To.Stage {
	case obsv.StageQueueExit:
		return waitBucket(h.To.Cause)
	case obsv.StageQueueEnter, obsv.StageLinkTx:
		return sourceBucket(h.From)
	case obsv.StagePortIn:
		return BucketWire
	case obsv.StageSwitch:
		if h.From.Stage == obsv.StageCPUStore {
			return BucketSoftware // uncached store reaching the fabric
		}
		return BucketWire
	case obsv.StageRoute, obsv.StageConvert, obsv.StagePortOut:
		return BucketSwitch
	case obsv.StageHostWrite, obsv.StageHostRead:
		if h.From.Stage == obsv.StageSwitch {
			return BucketSwitch // crossbar forward into the root complex
		}
		return BucketWire
	case obsv.StagePollSeen, obsv.StageIRQ, obsv.StageChainDone, obsv.StageDoorbell,
		obsv.StageCPUStore:
		return BucketSoftware
	case obsv.StageDMAFetch, obsv.StageDMAIssue, obsv.StageChainError:
		return BucketDMAEngine
	case obsv.StageFlushAck:
		if h.From.Stage == obsv.StageLinkTx {
			return BucketWire
		}
		return BucketSwitch
	case obsv.StageReplay:
		return BucketWaitReplay
	case obsv.StageLinkDown, obsv.StageFailover:
		return BucketWaitLinkDown
	case obsv.StageReadRetry:
		return BucketWaitRead
	default:
		return BucketUnattributed
	}
}

// Budget is one transaction's latency anatomy: how much of its end-to-end
// latency each bucket accounts for.
type Budget struct {
	Txn     uint64
	Buckets [NumBuckets]units.Duration
	// Waits is the observed queue-wait time per wait bucket: the summed
	// durations of matched queue-enter → queue-exit pairs, keyed by cause
	// and component. Unlike Buckets it does not partition Total — a wait
	// overlapped by concurrent traffic of the same transaction (a DMA
	// chain's later TLP queued while earlier TLPs stream) still counts in
	// full here, while the critical-path charge in Buckets only keeps the
	// un-overlapped tail.
	Waits [NumBuckets]units.Duration
	// Total is the transaction's end-to-end latency (last event − first
	// event). By construction the buckets sum to it exactly.
	Total  units.Duration
	Events int
}

// BudgetOf classifies one transaction's events.
func BudgetOf(events []obsv.Event) Budget {
	b := Budget{Events: len(events)}
	if len(events) > 0 {
		b.Txn = events[0].Txn
	}
	hops := obsv.Breakdown(events)
	for _, h := range hops {
		b.Buckets[Classify(h)] += h.Dur
	}
	b.Total = obsv.TotalLatency(hops)
	b.observeWaits(events)
	return b
}

// waitKey matches queue-enter/queue-exit pairs: same cause at the same
// component.
type waitKey struct {
	bucket Bucket
	where  string
}

// observeWaits accumulates the matched enter/exit pair durations into
// Waits. Pairs match FIFO per (cause, component); an exit without a
// recorded enter (the enter fell off the ring) is dropped.
func (b *Budget) observeWaits(events []obsv.Event) {
	sorted := append([]obsv.Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	var pending map[waitKey][]sim.Time
	for _, e := range sorted {
		switch e.Stage {
		case obsv.StageQueueEnter:
			if pending == nil {
				pending = make(map[waitKey][]sim.Time)
			}
			k := waitKey{waitBucket(e.Cause), e.Where}
			pending[k] = append(pending[k], e.At)
		case obsv.StageQueueExit:
			k := waitKey{waitBucket(e.Cause), e.Where}
			if q := pending[k]; len(q) > 0 {
				b.Waits[k.bucket] += e.At.Sub(q[0])
				pending[k] = q[1:]
			}
		}
	}
}

// Sum adds the per-bucket charges back together.
func (b Budget) Sum() units.Duration {
	var total units.Duration
	for _, d := range b.Buckets {
		total += d
	}
	return total
}

// Consistent reports the acceptance property: the buckets partition the
// end-to-end latency tick-exactly and nothing is unattributed.
func (b Budget) Consistent() bool {
	return b.Sum() == b.Total && b.Buckets[BucketUnattributed] == 0
}

// Wait sums the blocked-on buckets — the queue-bound share the parallel-DES
// work wants to know about.
func (b Budget) Wait() units.Duration {
	var total units.Duration
	for i := Bucket(0); i < NumBuckets; i++ {
		if i.IsWait() {
			total += b.Buckets[i]
		}
	}
	return total
}

// DominantWait reports the transaction's dominant blocking cause and its
// magnitude — the larger of the critical-path charge and the observed
// queue-wait per bucket — or (BucketUnattributed, 0) when the transaction
// never blocked.
func (b Budget) DominantWait() (Bucket, units.Duration) {
	best, bestDur := BucketUnattributed, units.Duration(0)
	for i := Bucket(0); i < NumBuckets; i++ {
		if !i.IsWait() {
			continue
		}
		d := b.Buckets[i]
		if b.Waits[i] > d {
			d = b.Waits[i]
		}
		if d > bestDur {
			best, bestDur = i, d
		}
	}
	return best, bestDur
}

// Fleet aggregates the latency anatomy of every traced transaction of a
// scenario.
type Fleet struct {
	Scenario string
	Budgets  []Budget
	// Totals is the per-bucket sum across all transactions; GrandTotal is
	// the sum of every transaction's end-to-end latency. WaitTotals sums
	// the observed queue-wait durations (Budget.Waits) across the fleet.
	Totals     [NumBuckets]units.Duration
	WaitTotals [NumBuckets]units.Duration
	GrandTotal units.Duration
	// Ladder summarizes the end-to-end latencies in microseconds —
	// p50 (median) / p95 / p99 / p999 over the fleet.
	Ladder stats.Summary
	// Evicted and Recorded report the span ring's health: a nonzero
	// eviction count means early budgets may be truncated.
	Evicted  uint64
	Recorded uint64
}

// Analyze builds the fleet anatomy for the given transactions out of the
// recorder's retained events.
func Analyze(scenario string, rec *obsv.Recorder, txns []uint64) *Fleet {
	f := &Fleet{
		Scenario: scenario,
		Evicted:  rec.Evicted(),
		Recorded: rec.Total(),
	}
	us := make([]float64, 0, len(txns))
	for _, txn := range txns {
		b := BudgetOf(rec.TxnEvents(txn))
		f.Budgets = append(f.Budgets, b)
		for i, d := range b.Buckets {
			f.Totals[i] += d
		}
		for i, d := range b.Waits {
			f.WaitTotals[i] += d
		}
		f.GrandTotal += b.Total
		us = append(us, b.Total.Microseconds())
	}
	if len(us) > 0 {
		f.Ladder = stats.Summarize(us)
	}
	return f
}

// Consistent reports whether every transaction's budget is consistent.
func (f *Fleet) Consistent() bool {
	for _, b := range f.Budgets {
		if !b.Consistent() {
			return false
		}
	}
	return true
}

// TopK returns the k slowest transactions, slowest first (ties broken by
// transaction ID for determinism).
func (f *Fleet) TopK(k int) []Budget {
	out := append([]Budget(nil), f.Budgets...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Txn < out[j].Txn
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}
