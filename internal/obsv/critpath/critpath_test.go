package critpath

import (
	"math"
	"strings"
	"testing"

	"tca/internal/obsv"
	"tca/internal/sim"
	"tca/internal/stats"
	"tca/internal/units"
)

// pioEvents is a synthetic one-leg PIO span: store → switch → link → chip
// pipeline → host write → poll.
func pioEvents() []obsv.Event {
	return []obsv.Event{
		{At: 0, Txn: 1, Stage: obsv.StageCPUStore, Where: "node0"},
		{At: 150_000, Txn: 1, Stage: obsv.StageSwitch, Where: "node0.sock0"},
		{At: 270_000, Txn: 1, Stage: obsv.StageLinkTx, Where: "link:peach2-0.N"},
		{At: 290_000, Txn: 1, Stage: obsv.StagePortIn, Where: "peach2-0"},
		{At: 390_000, Txn: 1, Stage: obsv.StageRoute, Where: "peach2-0"},
		{At: 400_000, Txn: 1, Stage: obsv.StagePortOut, Where: "peach2-0"},
		{At: 600_000, Txn: 1, Stage: obsv.StageHostWrite, Where: "node1.rc"},
		{At: 660_000, Txn: 1, Stage: obsv.StagePollSeen, Where: "node1"},
	}
}

func TestBudgetPartitionsExactly(t *testing.T) {
	b := BudgetOf(pioEvents())
	if !b.Consistent() {
		t.Fatalf("budget inconsistent: sum %v, total %v, unattributed %v",
			b.Sum(), b.Total, b.Buckets[BucketUnattributed])
	}
	if b.Total != 660_000 {
		t.Fatalf("total %v, want 660ns", b.Total)
	}
	// cpu-store→switch is software; switch→link-tx is the crossbar.
	if b.Buckets[BucketSoftware] != 150_000+60_000 {
		t.Fatalf("software = %v, want 210ns", b.Buckets[BucketSoftware])
	}
	if b.Buckets[BucketSwitch] != 120_000+100_000+10_000 {
		t.Fatalf("switch = %v, want 230ns", b.Buckets[BucketSwitch])
	}
	if b.Buckets[BucketDMAEngine] != 0 {
		t.Fatalf("PIO leg charged dma-engine %v", b.Buckets[BucketDMAEngine])
	}
}

func TestBudgetChargesWaitHops(t *testing.T) {
	events := []obsv.Event{
		{At: 0, Txn: 2, Stage: obsv.StageCPUStore, Where: "node0"},
		{At: 100, Txn: 2, Stage: obsv.StageQueueEnter, Where: "link", Cause: obsv.CauseCredits},
		{At: 900, Txn: 2, Stage: obsv.StageQueueExit, Where: "link", Cause: obsv.CauseCredits},
		{At: 1000, Txn: 2, Stage: obsv.StageLinkTx, Where: "link"},
	}
	b := BudgetOf(events)
	if !b.Consistent() {
		t.Fatalf("budget inconsistent: %+v", b)
	}
	if b.Buckets[BucketWaitCredits] != 800 {
		t.Fatalf("credit wait charged %v, want 800ps", b.Buckets[BucketWaitCredits])
	}
	if b.Waits[BucketWaitCredits] != 800 {
		t.Fatalf("observed credit wait %v, want 800ps", b.Waits[BucketWaitCredits])
	}
	if cause, d := b.DominantWait(); cause != BucketWaitCredits || d != 800 {
		t.Fatalf("dominant wait = %v (%v)", cause, d)
	}
}

// TestObservedWaitUnderInterleaving: a wait pair overlapped by the
// transaction's own traffic keeps only the tail on the critical path but
// the full duration in the observed attribution.
func TestObservedWaitUnderInterleaving(t *testing.T) {
	events := []obsv.Event{
		{At: 0, Txn: 3, Stage: obsv.StageDoorbell, Where: "peach2-0"},
		{At: 100, Txn: 3, Stage: obsv.StageQueueEnter, Where: "peach2-0", Cause: obsv.CauseChainSerialization},
		{At: 500, Txn: 3, Stage: obsv.StageLinkTx, Where: "link"}, // overlapping traffic
		{At: 900, Txn: 3, Stage: obsv.StageQueueExit, Where: "peach2-0", Cause: obsv.CauseChainSerialization},
		{At: 1000, Txn: 3, Stage: obsv.StageDMAIssue, Where: "peach2-0"},
	}
	b := BudgetOf(events)
	if !b.Consistent() {
		t.Fatalf("budget inconsistent: %+v", b)
	}
	if b.Buckets[BucketWaitChainSer] != 400 {
		t.Fatalf("critical-path chain wait %v, want tail 400ps", b.Buckets[BucketWaitChainSer])
	}
	if b.Waits[BucketWaitChainSer] != 800 {
		t.Fatalf("observed chain wait %v, want full 800ps", b.Waits[BucketWaitChainSer])
	}
}

func TestBudgetEmptyAndSingle(t *testing.T) {
	if b := BudgetOf(nil); !b.Consistent() || b.Total != 0 {
		t.Fatalf("empty budget = %+v", b)
	}
	one := []obsv.Event{{At: 5, Txn: 4, Stage: obsv.StageDoorbell}}
	if b := BudgetOf(one); !b.Consistent() || b.Total != 0 || b.Txn != 4 {
		t.Fatalf("single-event budget = %+v", b)
	}
}

// TestClassifyCoversAllStages: every recorded stage lands in a real bucket
// — the acceptance property that no healthy trace produces unattributed
// time.
func TestClassifyCoversAllStages(t *testing.T) {
	for s := obsv.StageCPUStore; s <= obsv.StageQueueExit; s++ {
		h := obsv.Hop{
			From: obsv.Event{Stage: obsv.StageCPUStore},
			To:   obsv.Event{Stage: s, Cause: obsv.CauseCredits},
		}
		if got := Classify(h); got == BucketUnattributed {
			t.Errorf("stage %v classifies as unattributed", s)
		}
	}
}

func TestBucketStrings(t *testing.T) {
	for b := Bucket(0); b < NumBuckets; b++ {
		if strings.HasPrefix(b.String(), "Bucket(") {
			t.Errorf("bucket %d has no name", b)
		}
	}
	if !BucketWaitCredits.IsWait() || BucketWire.IsWait() {
		t.Error("IsWait misclassifies")
	}
}

func TestFleetAnalyzeAndTopK(t *testing.T) {
	rec := obsv.NewRecorder(64)
	spans := []struct {
		txn uint64
		dur int64 // picoseconds
	}{{1, 1000}, {2, 3000}, {3, 2000}, {4, 3000}}
	for _, s := range spans {
		rec.Record(obsv.Event{At: 0, Txn: s.txn, Stage: obsv.StageCPUStore, Where: "node0"})
		rec.Record(obsv.Event{At: sim.Time(s.dur), Txn: s.txn, Stage: obsv.StagePollSeen, Where: "node1"})
	}
	f := Analyze("synthetic", rec, []uint64{1, 2, 3, 4})
	if len(f.Budgets) != 4 || !f.Consistent() {
		t.Fatalf("fleet = %+v", f)
	}
	if f.GrandTotal != units.Duration(1000+3000+2000+3000) {
		t.Fatalf("grand total %v", f.GrandTotal)
	}
	if f.Ladder.N != 4 || f.Ladder.P999 != f.Ladder.Max {
		t.Fatalf("ladder %+v", f.Ladder)
	}
	top := f.TopK(3)
	// Slowest first; the 3000ps tie breaks by txn id.
	if len(top) != 3 || top[0].Txn != 2 || top[1].Txn != 4 || top[2].Txn != 3 {
		t.Fatalf("topK order = %v, %v, %v", top[0].Txn, top[1].Txn, top[2].Txn)
	}
	if got := f.TopK(10); len(got) != 4 {
		t.Fatalf("TopK over-asks returned %d", len(got))
	}
}

func TestModelPredictAndCompare(t *testing.T) {
	m := Model{MinPingPongUS: 0.783, PerHopNS: 198, SoftwareNSPerLeg: 210}
	if got := m.PredictUS(0); got != 0.783 {
		t.Fatalf("PredictUS(0) = %g", got)
	}
	if got := m.PredictUS(2); got != 0.783+2*0.198 {
		t.Fatalf("PredictUS(2) = %g", got)
	}
	rec := obsv.NewRecorder(16)
	rec.Record(obsv.Event{At: 0, Txn: 1, Stage: obsv.StageCPUStore, Where: "node0"})
	rec.Record(obsv.Event{At: 981_000, Txn: 1, Stage: obsv.StagePollSeen, Where: "node1"})
	f := Analyze("synthetic ping-pong", rec, []uint64{1})
	diffs := m.CompareFleet(f, 1)
	if len(diffs) != 3 {
		t.Fatalf("comparator rows = %d, want 3", len(diffs))
	}
	leg := diffs[0]
	if leg.Name != "leg" || leg.MeasuredUS != 0.981 || math.Abs(leg.PredictedUS-0.981) > 1e-12 || math.Abs(leg.DiffPct) > 1e-9 {
		t.Fatalf("leg row = %+v", leg)
	}
	if diffs[1].Name != "round-trip" || math.Abs(diffs[1].PredictedUS-1.962) > 1e-12 {
		t.Fatalf("round-trip row = %+v", diffs[1])
	}
	if m.CompareFleet(&Fleet{}, 0) != nil {
		t.Fatal("empty fleet produced comparator rows")
	}
}

func TestExportReportAndRenderers(t *testing.T) {
	b := BudgetOf(pioEvents())
	f := &Fleet{Scenario: "render-test", Budgets: []Budget{b}, GrandTotal: b.Total}
	for i, d := range b.Buckets {
		f.Totals[i] += d
	}
	f.Ladder = stats.Summarize([]float64{b.Total.Microseconds()})
	r := ExportReport(f, nil, 5)
	if r.Schema != ReportSchema || !r.Consistent || r.Transactions != 1 {
		t.Fatalf("report header = %+v", r)
	}
	if len(r.Inconsistent) != 0 {
		t.Fatalf("consistent fleet flagged txns %v", r.Inconsistent)
	}
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"schema": "tca-critpath-report/1"`) {
		t.Fatalf("JSON missing schema: %s", sb.String())
	}
	sb.Reset()
	WriteBudgetTable(&sb, f)
	WriteLadder(&sb, f)
	WriteTopK(&sb, f, 3)
	WriteModel(&sb, []ModelDiff{diffRow("leg", 1, 1.1)})
	out := sb.String()
	for _, want := range []string{"latency budget", "software", "p999", "slowest", "analytical-model", "+10.00%"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "WARNING") {
		t.Errorf("consistent fleet rendered a warning:\n%s", out)
	}
}

// TestReportFlagsInconsistency: a budget whose buckets do not partition the
// total must surface in the report and the table warning.
func TestReportFlagsInconsistency(t *testing.T) {
	b := Budget{Txn: 7, Total: 1000}
	b.Buckets[BucketUnattributed] = 400
	f := &Fleet{Scenario: "broken", Budgets: []Budget{b}, GrandTotal: 1000}
	f.Totals[BucketUnattributed] = 400
	f.Ladder = stats.Summarize([]float64{b.Total.Microseconds()})
	r := ExportReport(f, nil, 1)
	if r.Consistent || len(r.Inconsistent) != 1 || r.Inconsistent[0] != 7 {
		t.Fatalf("inconsistency not flagged: %+v", r)
	}
	var sb strings.Builder
	WriteBudgetTable(&sb, f)
	if !strings.Contains(sb.String(), "WARNING") {
		t.Fatalf("table missing warning:\n%s", sb.String())
	}
}
