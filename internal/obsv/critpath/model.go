package critpath

import "tca/internal/units"

// Model is the paper's analytical ping-pong prediction, built from the two
// headline numbers BENCH_PR2.json gates: the minimum (loopback) ping-pong
// round trip of Fig. 10 and the marginal cost of one ring forwarding hop.
// A measured fleet that drifts from the prediction localizes the change to
// either the fixed injection cost or the per-hop pipeline.
type Model struct {
	// MinPingPongUS is the 0-forwarding-hop ping-pong round trip in
	// microseconds (fig10_min_pingpong_us).
	MinPingPongUS float64
	// PerHopNS is the one-way marginal latency of a ring forwarding hop
	// in nanoseconds (fig10_per_hop_ns).
	PerHopNS float64
	// SoftwareNSPerLeg is the predicted software cost of one leg: the
	// uncached store reaching the root complex plus the poll loop
	// detecting the landed write.
	SoftwareNSPerLeg float64
}

// PredictUS predicts one ping-pong leg — the Fig. 10 "latency" convention,
// half the round trip — for a path with extraHops forwarding hops beyond
// the adjacent-node minimum.
func (m Model) PredictUS(extraHops int) float64 {
	return m.MinPingPongUS + float64(extraHops)*m.PerHopNS/1000
}

// ModelDiff is one measured-vs-predicted comparison row.
type ModelDiff struct {
	Name        string  `json:"name"`
	PredictedUS float64 `json:"predicted_us"`
	MeasuredUS  float64 `json:"measured_us"`
	DiffPct     float64 `json:"diff_pct"`
}

func diffRow(name string, predicted, measured float64) ModelDiff {
	d := ModelDiff{Name: name, PredictedUS: predicted, MeasuredUS: measured}
	if predicted != 0 {
		d.DiffPct = 100 * (measured - predicted) / predicted
	}
	return d
}

// CompareFleet diffs a measured ping-pong fleet against the analytical
// prediction for extraHops forwarding hops. Legs are recorded as individual
// transactions, so the measured leg is the ladder mean and a round trip is
// two legs; the software row compares the predicted host cost per leg
// against the fleet's mean software-bucket charge.
func (m Model) CompareFleet(f *Fleet, extraHops int) []ModelDiff {
	if len(f.Budgets) == 0 {
		return nil
	}
	out := []ModelDiff{
		diffRow("leg", m.PredictUS(extraHops), f.Ladder.Mean),
		diffRow("round-trip", 2*m.PredictUS(extraHops), 2*f.Ladder.Mean),
	}
	if m.SoftwareNSPerLeg > 0 {
		out = append(out, diffRow("software",
			m.SoftwareNSPerLeg/1000, m.measuredSoftwareUS(f)))
	}
	return out
}

// measuredSoftwareUS averages the software bucket across the fleet's legs.
func (m Model) measuredSoftwareUS(f *Fleet) float64 {
	if len(f.Budgets) == 0 {
		return 0
	}
	perLeg := f.Totals[BucketSoftware] / units.Duration(len(f.Budgets))
	return perLeg.Microseconds()
}
