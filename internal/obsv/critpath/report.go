package critpath

import (
	"encoding/json"
	"fmt"
	"io"

	"tca/internal/units"
)

// ReportSchema versions the JSON budget report tcapath emits for CI.
const ReportSchema = "tca-critpath-report/1"

// Report is the machine-readable latency-anatomy report.
type Report struct {
	Schema       string      `json:"schema"`
	Scenario     string      `json:"scenario"`
	Transactions int         `json:"transactions"`
	Consistent   bool        `json:"consistent"`
	Evicted      uint64      `json:"spans_evicted"`
	Recorded     uint64      `json:"spans_recorded"`
	Buckets      []BucketRow `json:"buckets"`
	LadderUS     LadderRow   `json:"ladder_us"`
	Top          []TxnRow    `json:"top_transactions"`
	Model        []ModelDiff `json:"model,omitempty"`
	Inconsistent []uint64    `json:"inconsistent_txns,omitempty"`
}

// BucketRow is one bucket's fleet-wide charge. ObservedWaitNS is the
// matched queue-enter→queue-exit time for wait buckets — it can exceed the
// critical-path charge when waits overlap the transaction's own traffic.
type BucketRow struct {
	Bucket         string  `json:"bucket"`
	TotalNS        float64 `json:"total_ns"`
	SharePct       float64 `json:"share_pct"`
	ObservedWaitNS float64 `json:"observed_wait_ns,omitempty"`
}

// LadderRow is the percentile ladder over end-to-end latencies.
type LadderRow struct {
	N    int     `json:"n"`
	Min  float64 `json:"min"`
	P50  float64 `json:"p50"`
	Mean float64 `json:"mean"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

// TxnRow is one slow transaction with its blocking cause.
type TxnRow struct {
	Txn          uint64  `json:"txn"`
	TotalUS      float64 `json:"total_us"`
	WaitUS       float64 `json:"wait_us"`
	DominantWait string  `json:"dominant_wait,omitempty"`
}

// ExportReport freezes the fleet into its JSON report form. model may be
// nil for scenarios without an analytical prediction.
func ExportReport(f *Fleet, model []ModelDiff, topK int) Report {
	r := Report{
		Schema:       ReportSchema,
		Scenario:     f.Scenario,
		Transactions: len(f.Budgets),
		Consistent:   f.Consistent(),
		Evicted:      f.Evicted,
		Recorded:     f.Recorded,
		Model:        model,
	}
	for i := Bucket(0); i < NumBuckets; i++ {
		d, w := f.Totals[i], f.WaitTotals[i]
		if d == 0 && w == 0 && i != BucketUnattributed {
			continue
		}
		row := BucketRow{Bucket: i.String(), TotalNS: d.Nanoseconds(),
			ObservedWaitNS: w.Nanoseconds()}
		if f.GrandTotal > 0 {
			row.SharePct = 100 * d.Picoseconds() / f.GrandTotal.Picoseconds()
		}
		r.Buckets = append(r.Buckets, row)
	}
	r.LadderUS = LadderRow{
		N: f.Ladder.N, Min: f.Ladder.Min, P50: f.Ladder.Median,
		Mean: f.Ladder.Mean, P95: f.Ladder.P95, P99: f.Ladder.P99,
		P999: f.Ladder.P999, Max: f.Ladder.Max,
	}
	for _, b := range f.TopK(topK) {
		row := TxnRow{Txn: b.Txn, TotalUS: b.Total.Microseconds(), WaitUS: b.Wait().Microseconds()}
		if w, d := b.DominantWait(); d > 0 {
			row.DominantWait = w.String()
		}
		r.Top = append(r.Top, row)
	}
	for _, b := range f.Budgets {
		if !b.Consistent() {
			r.Inconsistent = append(r.Inconsistent, b.Txn)
		}
	}
	return r
}

// WriteJSON emits the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteBudgetTable renders the fleet's per-bucket budget table: total
// charge, share of all transaction time, and per-transaction mean.
func WriteBudgetTable(w io.Writer, f *Fleet) {
	fmt.Fprintf(w, "latency budget (%d transactions, %v total):\n", len(f.Budgets), f.GrandTotal)
	for i := Bucket(0); i < NumBuckets; i++ {
		d, ow := f.Totals[i], f.WaitTotals[i]
		if d == 0 && ow == 0 {
			continue
		}
		share := 0.0
		if f.GrandTotal > 0 {
			share = 100 * d.Picoseconds() / f.GrandTotal.Picoseconds()
		}
		mean := d
		if len(f.Budgets) > 0 {
			mean = d / units.Duration(len(f.Budgets))
		}
		line := fmt.Sprintf("  %-26s %14v  %6.2f%%  (mean %v/txn)", i, d, share, mean)
		if ow > 0 {
			line += fmt.Sprintf("  [observed wait %v]", ow)
		}
		fmt.Fprintln(w, line)
	}
	if !f.Consistent() {
		fmt.Fprintf(w, "  WARNING: budgets do not partition end-to-end latency\n")
	}
}

// WriteLadder renders the fleet percentile ladder in microseconds.
func WriteLadder(w io.Writer, f *Fleet) {
	fmt.Fprintf(w, "end-to-end latency ladder (us, %d transactions):\n", f.Ladder.N)
	f.Ladder.WriteTable(w)
}

// WriteTopK renders the k slowest transactions with their blocking causes.
func WriteTopK(w io.Writer, f *Fleet, k int) {
	top := f.TopK(k)
	fmt.Fprintf(w, "slowest %d transactions:\n", len(top))
	for _, b := range top {
		line := fmt.Sprintf("  txn %-6d total %12v  wait %12v", b.Txn, b.Total, b.Wait())
		if cause, d := b.DominantWait(); d > 0 {
			line += fmt.Sprintf("  blocked-on %s (%v)", cause, d)
		}
		fmt.Fprintln(w, line)
	}
}

// WriteModel renders the measured-vs-predicted comparison rows.
func WriteModel(w io.Writer, diffs []ModelDiff) {
	if len(diffs) == 0 {
		return
	}
	fmt.Fprintf(w, "analytical-model comparison (us):\n")
	for _, d := range diffs {
		fmt.Fprintf(w, "  %-12s predicted %8.4f  measured %8.4f  (%+.2f%%)\n",
			d.Name, d.PredictedUS, d.MeasuredUS, d.DiffPct)
	}
}
