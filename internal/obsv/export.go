package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteJSON renders the snapshot as indented JSON, suitable for piping
// into analysis scripts.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// promName sanitizes a metric name into Prometheus exposition form and
// prefixes the simulator's namespace.
func promName(name string) string {
	var sb strings.Builder
	sb.WriteString("tca_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func promLabels(component string, labels []Label) string {
	var sb strings.Builder
	sb.WriteString(`{component="`)
	sb.WriteString(component)
	sb.WriteString(`"`)
	for _, l := range labels {
		sb.WriteString(",")
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(l.Value)
		sb.WriteString(`"`)
	}
	sb.WriteString("}")
	return sb.String()
}

func promLabelsExtra(component string, labels []Label, key, value string) string {
	base := promLabels(component, labels)
	return base[:len(base)-1] + "," + key + `="` + value + `"}`
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (one TYPE line per metric family, histogram `_bucket`/`_sum`/
// `_count` series with cumulative `le` buckets in nanoseconds).
func (s *Snapshot) WritePrometheus(w io.Writer) {
	typed := make(map[string]bool)
	writeType := func(name, kind string) {
		if !typed[name] {
			fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
			typed[name] = true
		}
	}
	for _, c := range s.Counters {
		name := promName(c.Name)
		writeType(name, "counter")
		fmt.Fprintf(w, "%s%s %d\n", name, promLabels(c.Component, c.Labels), c.Value)
	}
	for _, g := range s.Gauges {
		name := promName(g.Name)
		writeType(name, "gauge")
		fmt.Fprintf(w, "%s%s %d\n", name, promLabels(g.Component, g.Labels), g.Value)
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		writeType(name, "histogram")
		cum := uint64(0)
		for i, b := range h.BoundsNS {
			cum += h.Buckets[i]
			fmt.Fprintf(w, "%s_bucket%s %d\n", name,
				promLabelsExtra(h.Component, h.Labels, "le", fmt.Sprintf("%d", b)), cum)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name,
			promLabelsExtra(h.Component, h.Labels, "le", "+Inf"), h.Count)
		fmt.Fprintf(w, "%s_sum%s %g\n", name, promLabels(h.Component, h.Labels), h.SumNS)
		fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(h.Component, h.Labels), h.Count)
	}
}

// WriteTable renders the snapshot as an aligned human-readable table,
// omitting zero-valued counters to keep ring-wide dumps readable.
func (s *Snapshot) WriteTable(w io.Writer) {
	rows := make([][3]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for _, c := range s.Counters {
		if c.Value == 0 {
			continue
		}
		rows = append(rows, [3]string{c.Component, metricLabel(c.Name, c.Labels), fmt.Sprintf("%d", c.Value)})
	}
	for _, g := range s.Gauges {
		rows = append(rows, [3]string{g.Component, metricLabel(g.Name, g.Labels), fmt.Sprintf("%d", g.Value)})
	}
	for _, h := range s.Histograms {
		if h.Count == 0 {
			continue
		}
		mean := h.SumNS / float64(h.Count)
		rows = append(rows, [3]string{h.Component, metricLabel(h.Name, h.Labels),
			fmt.Sprintf("n=%d mean=%.1fns", h.Count, mean)})
	}
	if len(rows) == 0 {
		fmt.Fprintln(w, "  (no nonzero metrics)")
		return
	}
	w0, w1 := len("component"), len("metric")
	for _, r := range rows {
		if len(r[0]) > w0 {
			w0 = len(r[0])
		}
		if len(r[1]) > w1 {
			w1 = len(r[1])
		}
	}
	fmt.Fprintf(w, "  %-*s  %-*s  %s\n", w0, "component", w1, "metric", "value")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-*s  %-*s  %s\n", w0, r[0], w1, r[1], r[2])
	}
}

func metricLabel(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteString("{")
	for i, l := range labels {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(l.Key)
		sb.WriteString("=")
		sb.WriteString(l.Value)
	}
	sb.WriteString("}")
	return sb.String()
}
