package obsv

import (
	"strings"
	"testing"

	"tca/internal/units"
)

// goldenSnapshot builds a small deterministic registry: one labelled
// counter, one gauge, one two-bucket histogram with three samples.
func goldenSnapshot() *Snapshot {
	reg := NewRegistry()
	reg.Counter("tlps", "portE", Label{Key: "dir", Value: "tx"}).Add(3)
	reg.Gauge("queue", "dmac").Set(2)
	h := reg.Histogram("lat", "dmac", []units.Duration{units.Microsecond, 10 * units.Microsecond})
	h.Observe(500 * units.Nanosecond)
	h.Observe(5 * units.Microsecond)
	h.Observe(20 * units.Microsecond)
	return reg.Snapshot(42_000)
}

const goldenJSON = `{
  "at_ps": 42000,
  "counters": [
    {
      "name": "tlps",
      "component": "portE",
      "labels": [
        {
          "key": "dir",
          "value": "tx"
        }
      ],
      "value": 3
    }
  ],
  "gauges": [
    {
      "name": "queue",
      "component": "dmac",
      "value": 2
    }
  ],
  "histograms": [
    {
      "name": "lat",
      "component": "dmac",
      "bounds_ns": [
        1000,
        10000
      ],
      "buckets": [
        1,
        1,
        1
      ],
      "count": 3,
      "sum_ns": 25500
    }
  ]
}
`

func TestWriteJSONGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenSnapshot().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != goldenJSON {
		t.Errorf("JSON output drifted:\n--- got ---\n%s--- want ---\n%s", sb.String(), goldenJSON)
	}
}

const goldenProm = `# TYPE tca_tlps counter
tca_tlps{component="portE",dir="tx"} 3
# TYPE tca_queue gauge
tca_queue{component="dmac"} 2
# TYPE tca_lat histogram
tca_lat_bucket{component="dmac",le="1000"} 1
tca_lat_bucket{component="dmac",le="10000"} 2
tca_lat_bucket{component="dmac",le="+Inf"} 3
tca_lat_sum{component="dmac"} 25500
tca_lat_count{component="dmac"} 3
`

func TestWritePrometheusGolden(t *testing.T) {
	var sb strings.Builder
	goldenSnapshot().WritePrometheus(&sb)
	if sb.String() != goldenProm {
		t.Errorf("Prometheus output drifted:\n--- got ---\n%s--- want ---\n%s", sb.String(), goldenProm)
	}
}

func TestWriteTable(t *testing.T) {
	var sb strings.Builder
	goldenSnapshot().WriteTable(&sb)
	out := sb.String()
	for _, want := range []string{"component", "tlps{dir=tx}", "queue", "n=3 mean=8500.0ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	// Zero-valued counters are omitted; an all-zero snapshot says so.
	reg := NewRegistry()
	reg.Counter("idle", "x")
	sb.Reset()
	reg.Snapshot(0).WriteTable(&sb)
	if !strings.Contains(sb.String(), "(no nonzero metrics)") {
		t.Errorf("empty table output = %q", sb.String())
	}
}
