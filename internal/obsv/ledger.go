package obsv

import "tca/internal/sim"

// Ledger observes the lifecycle of every TLP that crosses an instrumented
// link, so a fabric-wide conservation checker (internal/check) can prove
// that each packet is exactly-once delivered, salvaged, or dropped with an
// attributed cause. The interface lives here — next to Set — so pcie,
// peach2, host, and gpu can report without importing the checker; all
// parameters are primitives to keep obsv free of pcie types.
//
// The identity is a ledger ID (LID) minted by Born and carried in
// pcie.TLP.LID. Links mint lazily: a packet's first transit of an
// instrumented link is its birth; packets that never cross one (node-local
// loopback traffic) keep LID 0 and every hook ignores them.
type Ledger interface {
	// Born registers a packet entering the conservation domain and returns
	// its LID. kind is the TLP kind mnemonic, addr the target bus address,
	// payload the packet's data (hashed, not retained), where the name of
	// the minting link.
	Born(now sim.Time, kind string, addr uint64, payload []byte, where string) uint64

	// Delivered records the packet terminating at a sink (DRAM/GDDR write,
	// chip-internal write or read service, completion handling). A second
	// delivery is legal only for an idempotent posted write that was
	// salvaged off a dying link after its ACK was lost — i.e. only with an
	// intervening Parked and an identical payload.
	Delivered(now sim.Time, lid uint64, addr uint64, payload []byte, where string)

	// Dropped records an attributed intentional drop (no route after
	// failover, stale completion after a chain error, salvage with no
	// handler). Anything that vanishes without a Dropped call is a
	// conservation violation at quiesce.
	Dropped(now sim.Time, lid uint64, where, cause string)

	// Parked records the packet entering a chip's parked list after
	// link-death salvage; Unparked records its re-injection on reroute.
	// Still-parked packets at quiesce count as salvaged, not lost.
	Parked(now sim.Time, lid uint64, where string)
	Unparked(now sim.Time, lid uint64, where string)

	// LinkBytes accumulates wire bytes accepted by link dir ("ab"/"ba"),
	// at the same call site as the link_bytes_tx counter, so the checker
	// can cross-verify its own ledger against the metrics registry and
	// Link.Stats.
	LinkBytes(link, dir string, wireBytes uint64)
}
