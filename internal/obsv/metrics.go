package obsv

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"tca/internal/sim"
	"tca/internal/units"
)

// Label is one key=value dimension of a metric. Labels are kept as an
// ordered slice (not a map) so exporter output is deterministic.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Counter is a monotonically increasing count. The nil counter is a valid
// disabled counter: Add and Inc on it are allocation-free no-ops.
type Counter struct {
	desc desc
	v    atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the current count (0 when disabled).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous signed level (queue depth, in-flight credits).
// The nil gauge is a valid disabled gauge.
type Gauge struct {
	desc desc
	v    atomic.Int64
}

// Set stores the level.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the level by d (negative to decrease).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value reads the level (0 when disabled).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBounds are the fixed histogram buckets used for hop and
// transaction latencies, spanning the sub-microsecond port hops up to the
// multi-millisecond reconfiguration events.
var DefaultLatencyBounds = []units.Duration{
	100 * units.Nanosecond,
	250 * units.Nanosecond,
	500 * units.Nanosecond,
	1 * units.Microsecond,
	2500 * units.Nanosecond,
	5 * units.Microsecond,
	10 * units.Microsecond,
	25 * units.Microsecond,
	50 * units.Microsecond,
	100 * units.Microsecond,
	250 * units.Microsecond,
	1 * units.Millisecond,
}

// Histogram is a fixed-bucket latency histogram. Bucket i counts
// observations <= Bounds[i]; one extra overflow bucket counts the rest.
// The nil histogram is a valid disabled histogram.
type Histogram struct {
	desc    desc
	bounds  []units.Duration
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // picoseconds
}

// Observe records one latency sample.
func (h *Histogram) Observe(d units.Duration) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count reports the number of observations (0 when disabled).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// desc identifies a metric: a name, the component that owns it, and extra
// label dimensions.
type desc struct {
	name      string
	component string
	labels    []Label
}

func (d desc) key() string {
	var sb strings.Builder
	sb.WriteString(d.name)
	sb.WriteByte('|')
	sb.WriteString(d.component)
	for _, l := range d.labels {
		sb.WriteByte('|')
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	return sb.String()
}

// Registry holds every registered metric. The nil registry is a valid
// disabled registry: registration on it returns nil metrics, which are
// themselves no-ops. Registration takes a lock; updates are lock-free
// atomics so a Snapshot may be taken while an engine runs elsewhere.
type Registry struct {
	mu    sync.Mutex
	order []string
	byKey map[string]any
}

// NewRegistry creates an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]any)}
}

// Counter registers (or re-fetches) a counter.
func (r *Registry) Counter(name, component string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	d := desc{name: name, component: component, labels: labels}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[d.key()]; ok {
		c, ok := m.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obsv: metric %q re-registered with a different type", d.key()))
		}
		return c
	}
	c := &Counter{desc: d}
	r.byKey[d.key()] = c
	r.order = append(r.order, d.key())
	return c
}

// Gauge registers (or re-fetches) a gauge.
func (r *Registry) Gauge(name, component string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	d := desc{name: name, component: component, labels: labels}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[d.key()]; ok {
		g, ok := m.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obsv: metric %q re-registered with a different type", d.key()))
		}
		return g
	}
	g := &Gauge{desc: d}
	r.byKey[d.key()] = g
	r.order = append(r.order, d.key())
	return g
}

// Histogram registers (or re-fetches) a latency histogram with the given
// bucket bounds (nil means DefaultLatencyBounds).
func (r *Registry) Histogram(name, component string, bounds []units.Duration, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	d := desc{name: name, component: component, labels: labels}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[d.key()]; ok {
		h, ok := m.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obsv: metric %q re-registered with a different type", d.key()))
		}
		return h
	}
	h := &Histogram{desc: d, bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
	r.byKey[d.key()] = h
	r.order = append(r.order, d.key())
	return h
}

// CounterVal is one counter's frozen value.
type CounterVal struct {
	Name      string  `json:"name"`
	Component string  `json:"component"`
	Labels    []Label `json:"labels,omitempty"`
	Value     uint64  `json:"value"`
}

// GaugeVal is one gauge's frozen value.
type GaugeVal struct {
	Name      string  `json:"name"`
	Component string  `json:"component"`
	Labels    []Label `json:"labels,omitempty"`
	Value     int64   `json:"value"`
}

// HistogramVal is one histogram's frozen state. Buckets[i] counts samples
// <= BoundsNS[i]; the final extra bucket is the overflow.
type HistogramVal struct {
	Name      string   `json:"name"`
	Component string   `json:"component"`
	Labels    []Label  `json:"labels,omitempty"`
	BoundsNS  []int64  `json:"bounds_ns"`
	Buckets   []uint64 `json:"buckets"`
	Count     uint64   `json:"count"`
	SumNS     float64  `json:"sum_ns"`
}

// Snapshot is the registry frozen at one sim time.
type Snapshot struct {
	AtPS       int64          `json:"at_ps"`
	Counters   []CounterVal   `json:"counters"`
	Gauges     []GaugeVal     `json:"gauges"`
	Histograms []HistogramVal `json:"histograms"`
}

// Snapshot freezes every metric's value at time now. A nil registry
// snapshots to an empty Snapshot.
func (r *Registry) Snapshot(now sim.Time) *Snapshot {
	s := &Snapshot{AtPS: int64(now)}
	if r == nil {
		return s
	}
	r.mu.Lock()
	keys := append([]string(nil), r.order...)
	metrics := make([]any, len(keys))
	for i, k := range keys {
		metrics[i] = r.byKey[k]
	}
	r.mu.Unlock()
	for _, m := range metrics {
		switch m := m.(type) {
		case *Counter:
			s.Counters = append(s.Counters, CounterVal{
				Name: m.desc.name, Component: m.desc.component, Labels: m.desc.labels,
				Value: m.v.Load(),
			})
		case *Gauge:
			s.Gauges = append(s.Gauges, GaugeVal{
				Name: m.desc.name, Component: m.desc.component, Labels: m.desc.labels,
				Value: m.v.Load(),
			})
		case *Histogram:
			hv := HistogramVal{
				Name: m.desc.name, Component: m.desc.component, Labels: m.desc.labels,
				Count: m.count.Load(),
				SumNS: float64(m.sum.Load()) / 1000,
			}
			for _, b := range m.bounds {
				hv.BoundsNS = append(hv.BoundsNS, int64(b)/1000)
			}
			for i := range m.buckets {
				hv.Buckets = append(hv.Buckets, m.buckets[i].Load())
			}
			s.Histograms = append(s.Histograms, hv)
		}
	}
	sortSnapshot(s)
	return s
}

func sortSnapshot(s *Snapshot) {
	sort.Slice(s.Counters, func(i, j int) bool { return counterKey(s.Counters[i]) < counterKey(s.Counters[j]) })
	sort.Slice(s.Gauges, func(i, j int) bool { return gaugeKey(s.Gauges[i]) < gaugeKey(s.Gauges[j]) })
	sort.Slice(s.Histograms, func(i, j int) bool { return histKey(s.Histograms[i]) < histKey(s.Histograms[j]) })
}

func labelsKey(labels []Label) string {
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteByte('|')
		sb.WriteString(l.Key)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	return sb.String()
}

func counterKey(v CounterVal) string { return v.Name + "|" + v.Component + labelsKey(v.Labels) }
func gaugeKey(v GaugeVal) string     { return v.Name + "|" + v.Component + labelsKey(v.Labels) }
func histKey(v HistogramVal) string  { return v.Name + "|" + v.Component + labelsKey(v.Labels) }

// Counter looks a frozen counter value up by identity.
func (s *Snapshot) Counter(name, component string, labels ...Label) (uint64, bool) {
	want := CounterVal{Name: name, Component: component, Labels: labels}
	for _, c := range s.Counters {
		if counterKey(c) == counterKey(want) {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge looks a frozen gauge value up by identity.
func (s *Snapshot) Gauge(name, component string, labels ...Label) (int64, bool) {
	want := GaugeVal{Name: name, Component: component, Labels: labels}
	for _, g := range s.Gauges {
		if gaugeKey(g) == gaugeKey(want) {
			return g.Value, true
		}
	}
	return 0, false
}

// Histogram looks a frozen histogram up by identity.
func (s *Snapshot) Histogram(name, component string, labels ...Label) (HistogramVal, bool) {
	want := HistogramVal{Name: name, Component: component, Labels: labels}
	for _, h := range s.Histograms {
		if histKey(h) == histKey(want) {
			return h, true
		}
	}
	return HistogramVal{}, false
}
