package obsv

import (
	"testing"

	"tca/internal/units"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("tlps", "portE")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	g := reg.Gauge("queue", "dmac")
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "dmac", []units.Duration{units.Microsecond, 10 * units.Microsecond})
	h.Observe(500 * units.Nanosecond) // bucket 0
	h.Observe(units.Microsecond)      // bucket 0 (inclusive bound)
	h.Observe(5 * units.Microsecond)  // bucket 1
	h.Observe(20 * units.Microsecond) // overflow
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	hv, ok := reg.Snapshot(0).Histogram("lat", "dmac")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if len(hv.Buckets) != 3 || hv.Buckets[0] != 2 || hv.Buckets[1] != 1 || hv.Buckets[2] != 1 {
		t.Fatalf("buckets = %v, want [2 1 1]", hv.Buckets)
	}
	if hv.SumNS != 500+1000+5000+20000 {
		t.Fatalf("sum_ns = %v, want 26500", hv.SumNS)
	}
}

func TestRegistryDedupe(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("tlps", "portE", Label{Key: "dir", Value: "tx"})
	b := reg.Counter("tlps", "portE", Label{Key: "dir", Value: "tx"})
	if a != b {
		t.Fatal("same identity registered twice returned distinct counters")
	}
	other := reg.Counter("tlps", "portE", Label{Key: "dir", Value: "rx"})
	if other == a {
		t.Fatal("different labels returned the same counter")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x", "c")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	reg.Gauge("x", "c")
}

func TestNilRegistryAndMetrics(t *testing.T) {
	var reg *Registry
	if reg.Counter("x", "c") != nil || reg.Gauge("x", "c") != nil || reg.Histogram("x", "c", nil) != nil {
		t.Fatal("nil registry handed out live metrics")
	}
	snap := reg.Snapshot(7)
	if snap.AtPS != 7 || len(snap.Counters) != 0 {
		t.Fatalf("nil registry snapshot = %+v", snap)
	}
	// All disabled operations are allocation-free — the zero-cost guarantee.
	var c *Counter
	var g *Gauge
	var h *Histogram
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(9)
		g.Set(1)
		g.Add(1)
		h.Observe(units.Microsecond)
	}); n != 0 {
		t.Fatalf("disabled metric ops allocate %.1f per run", n)
	}
}

func TestEnabledCounterZeroAlloc(t *testing.T) {
	c := NewRegistry().Counter("x", "c")
	if n := testing.AllocsPerRun(100, func() { c.Inc() }); n != 0 {
		t.Fatalf("enabled Counter.Inc allocates %.1f per run", n)
	}
}

func TestSnapshotSortedAndLookup(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("zz", "b").Inc()
	reg.Counter("aa", "b").Add(2)
	reg.Gauge("g", "b").Set(-4)
	snap := reg.Snapshot(100)
	if snap.Counters[0].Name != "aa" || snap.Counters[1].Name != "zz" {
		t.Fatalf("counters not sorted: %+v", snap.Counters)
	}
	if v, ok := snap.Counter("aa", "b"); !ok || v != 2 {
		t.Fatalf("lookup aa = %d, %v", v, ok)
	}
	if v, ok := snap.Gauge("g", "b"); !ok || v != -4 {
		t.Fatalf("lookup g = %d, %v", v, ok)
	}
	if _, ok := snap.Counter("aa", "nope"); ok {
		t.Fatal("lookup of unknown component succeeded")
	}
}

func TestSetNilSafety(t *testing.T) {
	var s *Set
	if s.Registry() != nil || s.Recorder() != nil {
		t.Fatal("nil set handed out live registry/recorder")
	}
	live := NewSet(16)
	if live.Registry() == nil || live.Recorder() == nil {
		t.Fatal("live set missing registry/recorder")
	}
}
