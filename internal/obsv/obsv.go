// Package obsv is the simulator's unified observability layer: typed
// transaction spans, a per-component metrics registry, and exporters.
//
// The paper's evaluation is built on latency decompositions — Figures 9–12
// break ping-pong and DMA latency into per-hop costs through PEACH2's ports
// and ring links — and the FPGA-NIC literature the design descends from
// (APEnet+, arXiv:1102.3796 and arXiv:1311.1741) validates its hardware
// with per-port event counters and latency histograms. This package gives
// the simulated hardware the same instrumentation:
//
//   - Spans: every PIO store and DMA chain gets a transaction ID carried
//     in pcie.TLP.Txn; each hop (host store, link transmit, port ingress,
//     route decision, address conversion, port egress, DRAM landing, DMAC
//     fetch/issue, flush ack, IRQ delivery) records a typed Event into a
//     bounded Recorder. Breakdown reconstructs the per-hop latency table
//     from one transaction's events.
//   - Metrics: components register Counters, Gauges and fixed-bucket
//     latency Histograms in a Registry; Snapshot freezes all values at any
//     sim time and exports as JSON, Prometheus text exposition, or an
//     aligned human table.
//   - Telemetry: a Sampler ticks every configurable sim-interval and
//     appends per-link utilization and queue occupancy, per-DMAC busy
//     fraction, per-port byte rates, and outstanding-read levels into
//     bounded ring Series; Attribute turns the series into a bottleneck
//     verdict with evidence rows, and WritePerfetto renders spans plus
//     series as a Chrome trace_event file ui.perfetto.dev opens directly.
//
// Everything is zero-cost when disabled: all record/update methods are
// nil-receiver-safe no-ops, so uninstrumented hot loops pay one branch and
// allocate nothing.
package obsv

// Set bundles the three legs of the observability layer: metrics, spans,
// and sampled time-series telemetry. Components accept a *Set and pull the
// handles they need; a nil *Set (or nil fields) means "disabled"
// everywhere.
type Set struct {
	Reg *Registry
	Rec *Recorder
	Sam *Sampler
	// Led is the optional TLP conservation ledger (see Ledger). Assign it
	// before components Instrument themselves — they latch the handle then.
	Led Ledger
}

// NewSet creates an enabled observability set whose span recorder retains
// up to spanCap events and whose telemetry series hold DefaultSeriesCap
// samples each.
func NewSet(spanCap int) *Set {
	s := &Set{Reg: NewRegistry(), Rec: NewRecorder(spanCap), Sam: NewSampler(DefaultSeriesCap)}
	s.Rec.attachMetrics(s.Reg)
	return s
}

// Registry returns the metrics registry, or nil when disabled.
func (s *Set) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.Reg
}

// Recorder returns the span recorder, or nil when disabled.
func (s *Set) Recorder() *Recorder {
	if s == nil {
		return nil
	}
	return s.Rec
}

// Sampler returns the telemetry sampler, or nil when disabled.
func (s *Set) Sampler() *Sampler {
	if s == nil {
		return nil
	}
	return s.Sam
}

// Ledger returns the conservation ledger, or nil when disabled.
func (s *Set) Ledger() Ledger {
	if s == nil {
		return nil
	}
	return s.Led
}
