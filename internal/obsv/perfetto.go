package obsv

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// Chrome trace_event export (the JSON format ui.perfetto.dev and
// chrome://tracing load). Span events render as "X" complete slices on one
// thread track per component, chained across components by "s"/"f" flow
// arrows per transaction; time series render as "C" counter tracks.
//
// Timestamps convert from integer picoseconds to the format's microsecond
// floats; displayTimeUnit "ns" keeps sub-microsecond hops readable.

// TraceEvent is one Chrome trace_event entry.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid,omitempty"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// perfettoFile is the top-level JSON object.
type perfettoFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// Track process IDs: spans on one "fabric" process, counters on a
// "telemetry" process, so Perfetto groups them separately.
const (
	perfettoSpanPID    = 1
	perfettoCounterPID = 2
)

func psToUS(ps int64) float64 { return float64(ps) / 1e6 }

// PerfettoEvents builds the trace_event list from recorded span events and
// an optional timeline. Component thread tracks are numbered in order of
// first appearance, so output is deterministic for a deterministic run.
func PerfettoEvents(events []Event, tl *Timeline) []TraceEvent {
	var out []TraceEvent
	out = append(out, TraceEvent{
		Name: "process_name", Ph: "M", PID: perfettoSpanPID,
		Args: map[string]any{"name": "fabric"},
	})

	// Assign thread IDs per component in first-appearance order.
	tids := map[string]int{}
	tidOf := func(where string) int {
		if id, ok := tids[where]; ok {
			return id
		}
		id := len(tids) + 1
		tids[where] = id
		return id
	}
	// Group events by transaction, preserving first-appearance order.
	order := []uint64{}
	byTxn := map[uint64][]Event{}
	for _, ev := range events {
		if _, ok := byTxn[ev.Txn]; !ok {
			order = append(order, ev.Txn)
		}
		byTxn[ev.Txn] = append(byTxn[ev.Txn], ev)
		tidOf(ev.Where)
	}
	// Thread metadata before the slices.
	names := make([]string, 0, len(tids))
	for w := range tids {
		names = append(names, w)
	}
	sort.Slice(names, func(i, j int) bool { return tids[names[i]] < tids[names[j]] })
	for _, w := range names {
		out = append(out, TraceEvent{
			Name: "thread_name", Ph: "M", PID: perfettoSpanPID, TID: tids[w],
			Args: map[string]any{"name": w},
		})
	}

	for _, txn := range order {
		hops := Breakdown(byTxn[txn])
		id := "txn" + strconv.FormatUint(txn, 10)
		if len(hops) == 0 {
			// A single-event transaction still shows up as an instant.
			for _, e := range byTxn[txn] {
				out = append(out, TraceEvent{Name: e.Stage.String(), Cat: "hop", Ph: "i",
					TS: psToUS(int64(e.At)), PID: perfettoSpanPID, TID: tidOf(e.Where),
					Args: map[string]any{"txn": txn}})
			}
			continue
		}
		for i, h := range hops {
			ev := TraceEvent{
				Name: h.To.Stage.String(),
				Cat:  "hop",
				Ph:   "X",
				TS:   psToUS(int64(h.From.At)),
				Dur:  psToUS(int64(h.Dur)),
				PID:  perfettoSpanPID,
				TID:  tidOf(h.To.Where),
				Args: map[string]any{
					"txn":  txn,
					"from": h.From.Stage.String() + "@" + h.From.Where,
					"to":   h.To.Stage.String() + "@" + h.To.Where,
				},
			}
			if h.To.Stage == StageQueueExit {
				// Wait hops render as their blocking cause so the anatomy
				// is visible without expanding args.
				ev.Name = "wait:" + h.To.Cause.String()
				ev.Cat = "wait"
				ev.Args["blocked_on"] = h.To.Cause.String()
			}
			if h.To.Port != "" {
				ev.Args["port"] = h.To.Port
			}
			if h.To.Note != "" {
				ev.Args["note"] = h.To.Note
			}
			if ev.Dur == 0 {
				// trace_event treats a missing dur as malformed for "X";
				// give instantaneous hops a visible sliver.
				ev.Dur = 0.0001
			}
			out = append(out, ev)
			// Flow arrows stitch the transaction across thread tracks.
			switch {
			case len(hops) == 1:
			case i == 0:
				out = append(out, TraceEvent{Name: id, Cat: "txn", Ph: "s", ID: id,
					TS: ev.TS, PID: perfettoSpanPID, TID: ev.TID})
			case i == len(hops)-1:
				out = append(out, TraceEvent{Name: id, Cat: "txn", Ph: "f", BP: "e", ID: id,
					TS: ev.TS, PID: perfettoSpanPID, TID: ev.TID})
			default:
				out = append(out, TraceEvent{Name: id, Cat: "txn", Ph: "t", ID: id,
					TS: ev.TS, PID: perfettoSpanPID, TID: ev.TID})
			}
		}
		out = append(out, waitSlices(byTxn[txn], txn, id, tidOf)...)
	}

	if tl != nil {
		out = append(out, TraceEvent{
			Name: "process_name", Ph: "M", PID: perfettoCounterPID,
			Args: map[string]any{"name": "telemetry"},
		})
		for _, s := range tl.Series() {
			name := s.ID() + " (" + s.Unit + ")"
			for _, sm := range s.Samples() {
				out = append(out, TraceEvent{
					Name: name, Cat: "telemetry", Ph: "C",
					TS: psToUS(int64(sm.At)), PID: perfettoCounterPID,
					Args: map[string]any{"value": sm.V},
				})
			}
		}
	}
	return out
}

// waitSlices renders one transaction's full observed waits: each matched
// queue-enter → queue-exit pair (FIFO per cause and component) becomes an
// "X" slice spanning the whole wait — even the part overlapped by the
// transaction's own traffic, which the hop slices cannot show — plus a
// blocked-on flow arrow from the wait slice to the queue exit.
func waitSlices(events []Event, txn uint64, id string, tidOf func(string) int) []TraceEvent {
	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	type key struct {
		cause Cause
		where string
	}
	var out []TraceEvent
	pending := map[key][]Event{}
	n := 0
	for _, e := range sorted {
		switch e.Stage {
		case StageQueueEnter:
			k := key{e.Cause, e.Where}
			pending[k] = append(pending[k], e)
		case StageQueueExit:
			k := key{e.Cause, e.Where}
			q := pending[k]
			if len(q) == 0 {
				continue
			}
			enter := q[0]
			pending[k] = q[1:]
			dur := psToUS(int64(e.At.Sub(enter.At)))
			if dur == 0 {
				dur = 0.0001
			}
			out = append(out, TraceEvent{
				Name: "wait:" + e.Cause.String(), Cat: "wait", Ph: "X",
				TS: psToUS(int64(enter.At)), Dur: dur,
				PID: perfettoSpanPID, TID: tidOf(enter.Where),
				Args: map[string]any{"txn": txn, "blocked_on": e.Cause.String()},
			})
			wid := id + "-wait" + strconv.Itoa(n)
			n++
			out = append(out, TraceEvent{Name: wid, Cat: "blocked-on", Ph: "s", ID: wid,
				TS: psToUS(int64(enter.At)), PID: perfettoSpanPID, TID: tidOf(enter.Where)})
			out = append(out, TraceEvent{Name: wid, Cat: "blocked-on", Ph: "f", BP: "e", ID: wid,
				TS: psToUS(int64(e.At)), PID: perfettoSpanPID, TID: tidOf(e.Where)})
		}
	}
	return out
}

// WritePerfetto writes the Chrome trace_event JSON for the given span
// events and optional timeline — the file ui.perfetto.dev opens directly.
func WritePerfetto(w io.Writer, events []Event, tl *Timeline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(perfettoFile{
		TraceEvents:     PerfettoEvents(events, tl),
		DisplayTimeUnit: "ns",
	})
}
