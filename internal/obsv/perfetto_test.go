package obsv

import (
	"bytes"
	"encoding/json"
	"testing"

	"tca/internal/sim"
)

func perfettoFixture() []Event {
	return []Event{
		{At: 100, Txn: 1, Stage: StageCPUStore, Where: "node0"},
		{At: 300, Txn: 1, Stage: StageLinkTx, Where: "link:node0.peach2", Port: "N"},
		{At: 900, Txn: 1, Stage: StagePortIn, Where: "peach2-0", Port: "N"},
		{At: 1000, Txn: 1, Stage: StageRoute, Where: "peach2-0", Note: "out=E"},
		{At: 2500, Txn: 1, Stage: StageHostWrite, Where: "node1.rc"},
		// A second, single-event transaction.
		{At: 4000, Txn: 2, Stage: StageCPUStore, Where: "node0"},
	}
}

// TestWritePerfettoSchema validates the emitted file against the Chrome
// trace_event contract: a traceEvents array whose entries all carry
// name/ph/ts/pid, "X" slices with positive dur, and flow events that open
// with "s" and close with "f".
func TestWritePerfettoSchema(t *testing.T) {
	tl := &Timeline{}
	s := newSeries("link_util", "link:peach2-0.E", "ab", "%", 8)
	s.append(sim.Time(1000), 50)
	s.append(sim.Time(2000), 91)
	tl.add(s)

	var buf bytes.Buffer
	if err := WritePerfetto(&buf, perfettoFixture(), tl); err != nil {
		t.Fatal(err)
	}

	var file struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", file.DisplayTimeUnit)
	}
	if len(file.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	var slices, flowsS, flowsF, counters, instants, metas int
	for i, ev := range file.TraceEvents {
		ph, _ := ev["ph"].(string)
		if _, ok := ev["name"].(string); !ok || ph == "" {
			t.Fatalf("event %d missing name/ph: %v", i, ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event %d missing pid: %v", i, ev)
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Fatalf("event %d missing ts: %v", i, ev)
		}
		switch ph {
		case "M":
			metas++
		case "X":
			slices++
			if d, _ := ev["dur"].(float64); d <= 0 {
				t.Errorf("X slice with non-positive dur: %v", ev)
			}
		case "s":
			flowsS++
		case "f":
			flowsF++
		case "C":
			counters++
			args, _ := ev["args"].(map[string]any)
			if _, ok := args["value"].(float64); !ok {
				t.Errorf("counter without numeric args.value: %v", ev)
			}
		case "i":
			instants++
		}
	}
	// Txn 1 has 5 events → 4 hops → 4 slices; txn 2 → 1 instant.
	if slices != 4 {
		t.Errorf("slices = %d, want 4", slices)
	}
	if instants != 1 {
		t.Errorf("instants = %d, want 1", instants)
	}
	if flowsS != 1 || flowsF != 1 {
		t.Errorf("flow open/close = %d/%d, want 1/1", flowsS, flowsF)
	}
	if counters != 2 {
		t.Errorf("counter events = %d, want 2", counters)
	}
	// Metadata must name both processes and every component thread.
	if metas < 2+3 {
		t.Errorf("metadata events = %d, want process names + thread names", metas)
	}
}

// TestPerfettoDeterministic: same input, byte-identical output.
func TestPerfettoDeterministic(t *testing.T) {
	tl := &Timeline{}
	s := newSeries("dma_busy", "peach2-0/dmac", "", "%", 4)
	s.append(sim.Time(500), 75)
	tl.add(s)
	var a, b bytes.Buffer
	if err := WritePerfetto(&a, perfettoFixture(), tl); err != nil {
		t.Fatal(err)
	}
	if err := WritePerfetto(&b, perfettoFixture(), tl); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two exports of the same input differ")
	}
}

// TestPerfettoEmpty: no events, no timeline — still a valid file.
func TestPerfettoEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	var file map[string]any
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if _, ok := file["traceEvents"].([]any); !ok {
		t.Error("traceEvents missing or not an array")
	}
}
