package obsv

import (
	"fmt"
	"sync"

	"tca/internal/sim"
)

// Stage labels the hop a span event records — the structured replacement
// for the free-form strings the chip tracer used to emit. Stages follow a
// transaction (one PIO store or one DMA chain) through the fabric in the
// order the hardware touches it.
type Stage uint8

// Span stages.
const (
	// StageCPUStore: the CPU issued an uncached store (PIO injection).
	StageCPUStore Stage = iota
	// StageLinkTx: a packet started serializing onto a link's wire.
	StageLinkTx
	// StagePortIn: a TLP arrived at a PEACH2 port.
	StagePortIn
	// StageRoute: the routing unit picked an egress port (Note = port).
	StageRoute
	// StageConvert: Port N translated a global address to a local one.
	StageConvert
	// StagePortOut: the TLP left a PEACH2 port toward the fabric.
	StagePortOut
	// StageHostWrite: a write landed in host DRAM.
	StageHostWrite
	// StageHostRead: the root complex served a device read from DRAM.
	StageHostRead
	// StagePollSeen: the polling CPU loop observed the landed write.
	StagePollSeen
	// StageDoorbell: the DMA doorbell register store reached the DMAC.
	StageDoorbell
	// StageDMAFetch: the DMAC finished fetching its descriptor table.
	StageDMAFetch
	// StageDMAIssue: the DMAC issued one data TLP into the fabric.
	StageDMAIssue
	// StageFlushAck: the flush acknowledgement returned to the source chip.
	StageFlushAck
	// StageIRQ: the completion interrupt reached the host driver.
	StageIRQ
	// StageChainDone: the driver's completion callback ran.
	StageChainDone
	// StageReplay: a link's data-link layer retransmitted the packet
	// (replay-timeout or NAK-triggered go-back-N).
	StageReplay
	// StageLinkDown: the packet was stranded on a dead link and parked by
	// its chip for rerouting.
	StageLinkDown
	// StageFailover: a parked packet was re-injected through reprogrammed
	// route registers after the management plane degraded the ring.
	StageFailover
	// StageReadRetry: the DMAC retransmitted a read whose completion
	// timed out.
	StageReadRetry
	// StageChainError: the DMAC aborted its chain and surfaced an error
	// instead of completing.
	StageChainError
	// StageSwitch: a TLP arrived at a host PCIe switch and entered its
	// store-and-forward crossbar.
	StageSwitch
	// StageQueueEnter: the packet started waiting in a queue (credit
	// stall, replay-buffer backpressure, wire backlog, issue pacing, DRAM
	// service). Cause says what it is blocked on.
	StageQueueEnter
	// StageQueueExit: the packet left the queue it entered at the matching
	// StageQueueEnter; the enter→exit hop is pure wait time, attributed to
	// the blocking Cause.
	StageQueueExit
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageCPUStore:
		return "cpu-store"
	case StageLinkTx:
		return "link-tx"
	case StagePortIn:
		return "port-in"
	case StageRoute:
		return "route"
	case StageConvert:
		return "convert"
	case StagePortOut:
		return "port-out"
	case StageHostWrite:
		return "host-write"
	case StageHostRead:
		return "host-read"
	case StagePollSeen:
		return "poll-seen"
	case StageDoorbell:
		return "doorbell"
	case StageDMAFetch:
		return "dma-fetch"
	case StageDMAIssue:
		return "dma-issue"
	case StageFlushAck:
		return "flush-ack"
	case StageIRQ:
		return "irq"
	case StageChainDone:
		return "chain-done"
	case StageReplay:
		return "dll-replay"
	case StageLinkDown:
		return "link-down"
	case StageFailover:
		return "failover"
	case StageReadRetry:
		return "read-retry"
	case StageChainError:
		return "chain-error"
	case StageSwitch:
		return "switch-in"
	case StageQueueEnter:
		return "queue-enter"
	case StageQueueExit:
		return "queue-exit"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Cause labels what a queued packet is blocked on — the wait-edge half of
// the latency anatomy. Every StageQueueEnter/StageQueueExit pair carries
// one, so critical-path analysis can charge the whole wait to a single
// bucket instead of lumping it into the surrounding hop.
type Cause uint8

// Wait causes.
const (
	// CauseNone: the event is not a wait edge.
	CauseNone Cause = iota
	// CauseCredits: the link's per-direction credit pool is exhausted —
	// the receiver's ingress buffer has not drained.
	CauseCredits
	// CauseReplay: the DLL replay buffer is full — unacknowledged frames
	// backpressure new transmissions.
	CauseReplay
	// CauseRouteBusy: the egress wire serializer is busy with earlier
	// packets; the TLP holds a credit but waits for the wire.
	CauseRouteBusy
	// CauseChainSerialization: the DMAC's issue pipeline paces this TLP
	// behind its predecessors (one TLP per IssueInterval).
	CauseChainSerialization
	// CauseTagWait: the DMAC exhausted its outstanding-read tags; the read
	// waits for a completion to free one.
	CauseTagWait
	// CauseOutstandingRead: the root complex is serving the read from
	// DRAM; the requester waits for the completion.
	CauseOutstandingRead
	// CauseLinkDown: the packet waited out a dead link until failover
	// re-injected it.
	CauseLinkDown
)

// String names the cause.
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseCredits:
		return "credits-exhausted"
	case CauseReplay:
		return "dll-replay"
	case CauseRouteBusy:
		return "route-busy"
	case CauseChainSerialization:
		return "chain-serialization"
	case CauseTagWait:
		return "tag-wait"
	case CauseOutstandingRead:
		return "outstanding-read"
	case CauseLinkDown:
		return "link-down"
	default:
		return fmt.Sprintf("Cause(%d)", int(c))
	}
}

// Event is one typed span record. Fields are plain values — no formatted
// strings are built on the recording path.
type Event struct {
	At    sim.Time `json:"at_ps"`
	Txn   uint64   `json:"txn"`
	Stage Stage    `json:"stage"`
	// Where names the component ("peach2-1", "node0", "node0.rc", a link).
	Where string `json:"where"`
	// Port is the port label when the stage concerns one ("N", "E", ...).
	Port string `json:"port,omitempty"`
	// Addr is the packet's bus address when one applies.
	Addr uint64 `json:"addr,omitempty"`
	// Note carries a static detail string (an egress port, a class).
	Note string `json:"note,omitempty"`
	// Cause is the blocked-on cause for queue-enter/queue-exit wait edges
	// (CauseNone everywhere else).
	Cause Cause `json:"cause,omitempty"`
}

// String formats the event for human-readable dumps (tcaring, tcatrace).
func (e Event) String() string {
	s := fmt.Sprintf("txn=%d %-10s %-14s", e.Txn, e.Stage, e.Where)
	if e.Port != "" {
		s += " port=" + e.Port
	}
	if e.Addr != 0 {
		s += fmt.Sprintf(" addr=%#x", e.Addr)
	}
	if e.Note != "" {
		s += " " + e.Note
	}
	if e.Cause != CauseNone {
		s += " blocked-on=" + e.Cause.String()
	}
	return s
}

// Recorder collects span events into a bounded ring, evicting the oldest
// when full, and allocates transaction IDs. The nil recorder is a valid
// disabled recorder: Record is a no-op and NextTxn returns 0, the "not
// traced" transaction ID.
type Recorder struct {
	mu      sync.Mutex
	events  []Event
	next    int
	full    bool
	total   uint64
	evicted uint64
	txn     uint64
	// mEvicted mirrors the eviction count into the metrics registry when
	// the recorder is part of a Set, so snapshot exports surface ring
	// truncation without consulting the recorder (nil when unattached).
	mEvicted *Counter
}

// NewRecorder creates a recorder retaining up to capacity events.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		panic(fmt.Sprintf("obsv: recorder capacity %d", capacity))
	}
	return &Recorder{events: make([]Event, capacity)}
}

// NextTxn allocates a fresh nonzero transaction ID, or 0 when disabled —
// TLPs with Txn 0 record no spans anywhere.
func (r *Recorder) NextTxn() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	r.txn++
	id := r.txn
	r.mu.Unlock()
	return id
}

// Record appends one event. Events with Txn 0 are dropped: an instrumented
// component on an untraced packet records nothing.
func (r *Recorder) Record(ev Event) {
	if r == nil || ev.Txn == 0 {
		return
	}
	r.mu.Lock()
	if r.full {
		// Overwriting the oldest retained event: count the eviction so
		// breakdown consumers can tell a truncated span from a short one.
		r.evicted++
		r.mEvicted.Inc()
	}
	r.events[r.next] = ev
	r.next++
	r.total++
	if r.next == len(r.events) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Evicted reports how many events the ring has silently dropped to make
// room for newer ones. A nonzero count means breakdowns of early
// transactions may be truncated.
func (r *Recorder) Evicted() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evicted
}

// attachMetrics mirrors the recorder's eviction count into reg as the
// span_evictions counter, so every snapshot export carries it.
func (r *Recorder) attachMetrics(reg *Registry) {
	if r == nil || reg == nil {
		return
	}
	r.mEvicted = reg.Counter("span_evictions", "recorder")
}

// Len reports the number of retained events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.events)
	}
	return r.next
}

// Total reports how many events were ever recorded.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns the retained events oldest-first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.events[:r.next]...)
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// TxnEvents returns the retained events of one transaction, oldest-first.
func (r *Recorder) TxnEvents(txn uint64) []Event {
	var out []Event
	for _, ev := range r.Events() {
		if ev.Txn == txn {
			out = append(out, ev)
		}
	}
	return out
}
