package obsv

import (
	"strings"
	"testing"
)

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(2)
	r.Record(Event{At: 1, Txn: 1, Stage: StageCPUStore})
	r.Record(Event{At: 2, Txn: 1, Stage: StagePortIn})
	r.Record(Event{At: 3, Txn: 1, Stage: StagePortOut})
	if r.Len() != 2 || r.Total() != 3 {
		t.Fatalf("len=%d total=%d, want 2/3", r.Len(), r.Total())
	}
	evs := r.Events()
	if evs[0].Stage != StagePortIn || evs[1].Stage != StagePortOut {
		t.Fatalf("oldest event not evicted: %v", evs)
	}
}

func TestRecorderDropsUntraced(t *testing.T) {
	r := NewRecorder(4)
	r.Record(Event{At: 1, Txn: 0, Stage: StagePortIn})
	if r.Len() != 0 {
		t.Fatal("Txn-0 event was retained")
	}
}

func TestNextTxn(t *testing.T) {
	r := NewRecorder(1)
	if a, b := r.NextTxn(), r.NextTxn(); a != 1 || b != 2 {
		t.Fatalf("txn ids = %d, %d, want 1, 2", a, b)
	}
	var nilRec *Recorder
	if nilRec.NextTxn() != 0 {
		t.Fatal("nil recorder allocated a txn")
	}
}

func TestNewRecorderPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 0 did not panic")
		}
	}()
	NewRecorder(0)
}

func TestTxnEventsFilters(t *testing.T) {
	r := NewRecorder(8)
	r.Record(Event{At: 1, Txn: 1, Stage: StageCPUStore})
	r.Record(Event{At: 2, Txn: 2, Stage: StageCPUStore})
	r.Record(Event{At: 3, Txn: 1, Stage: StagePollSeen})
	evs := r.TxnEvents(1)
	if len(evs) != 2 || evs[0].At != 1 || evs[1].At != 3 {
		t.Fatalf("txn 1 events = %v", evs)
	}
}

func TestBreakdownSumsToWindow(t *testing.T) {
	events := []Event{
		{At: 60, Txn: 1, Stage: StagePollSeen, Where: "node1"},
		{At: 10, Txn: 1, Stage: StageCPUStore, Where: "node0"},
		{At: 30, Txn: 1, Stage: StagePortIn, Where: "peach2-0", Port: "N"},
	}
	hops := Breakdown(events)
	if len(hops) != 2 {
		t.Fatalf("hops = %d, want 2", len(hops))
	}
	if hops[0].Dur != 20 || hops[1].Dur != 30 {
		t.Fatalf("hop durations = %v, %v, want 20ps, 30ps", hops[0].Dur, hops[1].Dur)
	}
	if hops[0].From.Stage != StageCPUStore {
		t.Fatalf("breakdown not time-sorted: %+v", hops[0])
	}
	first, last := SpanWindow(events)
	if TotalLatency(hops) != last.Sub(first) {
		t.Fatalf("hop sum %v != window %v", TotalLatency(hops), last.Sub(first))
	}
	if lbl := hops[0].Label(); !strings.Contains(lbl, "node0:cpu-store") || !strings.Contains(lbl, "peach2-0:port-in[N]") {
		t.Fatalf("hop label = %q", lbl)
	}
	if Breakdown(events[:1]) != nil {
		t.Fatal("single event produced hops")
	}
}

func TestStageStrings(t *testing.T) {
	for s := StageCPUStore; s <= StageChainDone; s++ {
		if strings.HasPrefix(s.String(), "Stage(") {
			t.Errorf("stage %d has no name", s)
		}
	}
	if Stage(200).String() != "Stage(200)" {
		t.Error("unknown stage fallback broken")
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 5, Txn: 3, Stage: StageRoute, Where: "peach2-1", Port: "E", Addr: 0x1000, Note: "east"}
	s := e.String()
	for _, want := range []string{"txn=3", "route", "peach2-1", "port=E", "addr=0x1000", "east"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
}

func TestWriteBreakdown(t *testing.T) {
	events := []Event{
		{At: 0, Txn: 1, Stage: StageCPUStore, Where: "node0"},
		{At: 1_000_000, Txn: 1, Stage: StagePollSeen, Where: "node1"},
	}
	var sb strings.Builder
	WriteBreakdown(&sb, Breakdown(events))
	out := sb.String()
	if !strings.Contains(out, "node0:cpu-store -> node1:poll-seen") || !strings.Contains(out, "total") {
		t.Errorf("breakdown table:\n%s", out)
	}
	sb.Reset()
	WriteBreakdown(&sb, nil)
	if !strings.Contains(sb.String(), "(no hops recorded)") {
		t.Errorf("empty breakdown = %q", sb.String())
	}
}

func TestRecordDisabledZeroAlloc(t *testing.T) {
	var r *Recorder
	ev := Event{At: 1, Txn: 1, Stage: StagePortIn}
	if n := testing.AllocsPerRun(100, func() { r.Record(ev) }); n != 0 {
		t.Fatalf("disabled Record allocates %.1f per run", n)
	}
}
