package obsv

import (
	"fmt"
	"io"
	"sync"
	"text/tabwriter"

	"tca/internal/sim"
	"tca/internal/units"
)

// DefaultSeriesCap bounds each time series; at the default 1 µs sampling
// interval that retains the most recent ~4 ms of fabric history.
const DefaultSeriesCap = 4096

// Probe reads one instantaneous or per-interval signal. now is the tick's
// sim time; elapsed is the time since the previous tick (since Start for
// the first), so rate probes can turn cumulative counters into
// per-interval values. Probes run inside the engine's event loop and must
// only read component state — never reserve, schedule, or mutate — so
// sampling cannot perturb calibrated timings.
type Probe func(now sim.Time, elapsed units.Duration) float64

type probeEntry struct {
	series *Series
	fn     Probe
}

// Sampler walks registered probes every configurable sim-interval and
// appends each reading to its bounded series. Components register probes
// during Instrument; Start schedules the tick train on the engine. The
// nil sampler is a valid disabled sampler: Register and Start on it are
// allocation-free no-ops, so the uninstrumented path stays zero-cost.
//
// The tick reschedules itself only while other events remain pending, so
// a running sampler never keeps Engine.Run alive on its own: sampling
// stops deterministically when the workload drains and may be restarted
// for a later phase.
type Sampler struct {
	mu        sync.Mutex
	seriesCap int
	tl        *Timeline
	probes    []probeEntry
	running   bool
	interval  units.Duration
	lastTick  sim.Time
	ticks     uint64
	// comp tags the tick train's events for engine self-profiling (see
	// internal/prof); 0 leaves them in the untagged bucket. Set by the
	// profiling harness — obsv cannot import prof without a cycle.
	comp sim.CompID
}

// NewSampler creates an enabled sampler whose series retain seriesCap
// samples each (<= 0 means DefaultSeriesCap).
func NewSampler(seriesCap int) *Sampler {
	if seriesCap <= 0 {
		seriesCap = DefaultSeriesCap
	}
	return &Sampler{seriesCap: seriesCap, tl: &Timeline{}}
}

// SetComp tags the sampler's tick events with a profiler component ID so
// sampling overhead attributes to the sampler instead of the untagged
// bucket. Safe on a nil sampler.
func (s *Sampler) SetComp(c sim.CompID) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.comp = c
	s.mu.Unlock()
}

// Timeline returns the sampler's series collection (nil when disabled).
func (s *Sampler) Timeline() *Timeline {
	if s == nil {
		return nil
	}
	return s.tl
}

// Ticks reports how many sampling ticks have run.
func (s *Sampler) Ticks() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ticks
}

// Interval reports the active sampling interval (0 when never started).
func (s *Sampler) Interval() units.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.interval
}

// Register adds a probe and creates its series. No-op when disabled.
func (s *Sampler) Register(name, component, label, unit string, fn Probe) *Series {
	if s == nil {
		return nil
	}
	if fn == nil {
		panic("obsv: Register with nil probe")
	}
	series := newSeries(name, component, label, unit, s.seriesCap)
	s.mu.Lock()
	s.probes = append(s.probes, probeEntry{series: series, fn: fn})
	s.mu.Unlock()
	s.tl.add(series)
	return series
}

// Start schedules the sampling tick train on eng, one tick per interval
// of simulated time. No-op when disabled; panics on a non-positive
// interval or when already running. Sampling stops by itself once the
// engine's queue drains (see the type comment); Stop cancels it earlier.
func (s *Sampler) Start(eng *sim.Engine, interval units.Duration) {
	if s == nil {
		return
	}
	if interval <= 0 {
		panic(fmt.Sprintf("obsv: Sampler.Start with interval %v", interval))
	}
	s.mu.Lock()
	if s.running {
		s.mu.Unlock()
		panic("obsv: Sampler.Start while already running")
	}
	s.running = true
	s.interval = interval
	s.lastTick = eng.Now()
	comp := s.comp
	s.mu.Unlock()
	eng.AfterComp(comp, interval, func() { s.tick(eng) })
}

// Stop cancels sampling; the already-scheduled tick becomes a no-op.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.running = false
	s.mu.Unlock()
}

// Running reports whether a tick train is active.
func (s *Sampler) Running() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.running
}

func (s *Sampler) tick(eng *sim.Engine) {
	s.mu.Lock()
	if !s.running {
		s.mu.Unlock()
		return
	}
	now := eng.Now()
	elapsed := now.Sub(s.lastTick)
	s.lastTick = now
	s.ticks++
	probes := s.probes
	interval := s.interval
	comp := s.comp
	s.mu.Unlock()

	for _, p := range probes {
		p.series.append(now, p.fn(now, elapsed))
	}

	// The tick's own event has already popped: a non-empty queue here
	// means workload (or a later phase of it) is still in flight. An
	// empty queue means the run is draining — stop, so Engine.Run can
	// return and a later phase can restart sampling.
	if eng.Pending() > 0 {
		eng.AfterComp(comp, interval, func() { s.tick(eng) })
		return
	}
	s.mu.Lock()
	s.running = false
	s.mu.Unlock()
}

// Verdict classifies the fabric's bottleneck.
type Verdict string

// Attribution verdicts.
const (
	// VerdictLinkBound: a link direction is saturated; everything behind
	// it is pacing to the wire.
	VerdictLinkBound Verdict = "link-bound"
	// VerdictEngineBound: a DMAC's issue pipeline dominates while its
	// links have headroom.
	VerdictEngineBound Verdict = "engine-bound"
	// VerdictReadLatencyBound: outstanding reads sit at the tag ceiling;
	// progress waits on completions, not on wire or engine.
	VerdictReadLatencyBound Verdict = "read-latency-bound"
	// VerdictUnderutilized: no resource is near saturation; the run is
	// latency- or dependency-dominated (e.g. ping-pong).
	VerdictUnderutilized Verdict = "underutilized"
)

// EvidenceRow is one measured fact supporting a finding.
type EvidenceRow struct {
	Series string  `json:"series"`
	Stat   string  `json:"stat"`
	Value  float64 `json:"value"`
	Unit   string  `json:"unit"`
}

// Finding names one attributed resource with its justification.
type Finding struct {
	Verdict  Verdict       `json:"verdict"`
	Resource string        `json:"resource"`
	Detail   string        `json:"detail"`
	Evidence []EvidenceRow `json:"evidence"`
}

// Report is the attribution outcome: the primary bottleneck plus
// secondary observations.
type Report struct {
	Primary Finding  `json:"primary"`
	Notes   []string `json:"notes,omitempty"`
}

// AttributeConfig tunes the attribution thresholds.
type AttributeConfig struct {
	// SaturationPct is the utilization / busy-fraction level treated as
	// saturated.
	SaturationPct float64
	// IdlePct is the level below which a resource counts as idle.
	IdlePct float64
	// ReadCeiling is the requester's outstanding-read tag budget (the
	// PEACH2 DMAC exposes 16 tags); sustained occupancy near it means
	// progress is read-latency-bound.
	ReadCeiling float64
}

// DefaultAttributeConfig matches the PEACH2 defaults.
var DefaultAttributeConfig = AttributeConfig{
	SaturationPct: 90,
	IdlePct:       10,
	ReadCeiling:   16,
}

// Attribute names the saturated resource of a sampled run: a ≥90%-utilized
// link direction wins (link-bound), else a dominant DMAC busy fraction
// (engine-bound), else outstanding reads pinned at the tag ceiling
// (read-latency-bound), else the run is underutilized. The snapshot
// supplies cumulative context (credit stalls); the timeline supplies the
// per-interval evidence rows.
func Attribute(snap *Snapshot, tl *Timeline) *Report {
	return AttributeWith(DefaultAttributeConfig, snap, tl)
}

// AttributeWith is Attribute with explicit thresholds.
func AttributeWith(cfg AttributeConfig, snap *Snapshot, tl *Timeline) *Report {
	r := &Report{}
	linkTop := hottest(tl.Select("link_util"))
	dmaTop := hottest(tl.Select("dma_busy"))
	readTop := hottestMax(tl.Select("rc_outstanding_reads"))

	switch {
	case linkTop != nil && linkTop.ActiveMean() >= cfg.SaturationPct:
		r.Primary = Finding{
			Verdict:  VerdictLinkBound,
			Resource: linkTop.Component + "[" + linkTop.Label + "]",
			Detail: fmt.Sprintf("%s runs at %.1f%% of raw wire bandwidth while active — the fabric paces to this link",
				linkTop.ID(), linkTop.ActiveMean()),
			Evidence: seriesEvidence(linkTop),
		}
		if q := tl.Find("link_queued", linkTop.Component, linkTop.Label); q != nil {
			r.Primary.Evidence = append(r.Primary.Evidence,
				EvidenceRow{Series: q.ID(), Stat: "peak", Value: q.Max(), Unit: q.Unit})
		}
		for _, d := range tl.Select("dma_busy") {
			am := d.ActiveMean()
			if d.Max() == 0 || am < cfg.IdlePct {
				r.Notes = append(r.Notes, fmt.Sprintf("downstream %s idles (%.1f%% busy) while the link saturates", d.Component, am))
				r.Primary.Evidence = append(r.Primary.Evidence,
					EvidenceRow{Series: d.ID(), Stat: "active-mean", Value: am, Unit: d.Unit})
			}
		}
		if dmaTop != nil && dmaTop.ActiveMean() >= cfg.SaturationPct {
			r.Notes = append(r.Notes, fmt.Sprintf("%s is %.1f%% busy but wire-paced: its issue slots stretch to the serializer, so the link is the binding constraint",
				dmaTop.Component, dmaTop.ActiveMean()))
		}
	case dmaTop != nil && dmaTop.ActiveMean() >= cfg.SaturationPct:
		r.Primary = Finding{
			Verdict:  VerdictEngineBound,
			Resource: dmaTop.Component,
			Detail: fmt.Sprintf("%s is busy %.1f%% of its active intervals while no link exceeds %.1f%% — the issue pipeline dominates",
				dmaTop.ID(), dmaTop.ActiveMean(), seriesActiveMean(linkTop)),
			Evidence: seriesEvidence(dmaTop),
		}
		if linkTop != nil {
			r.Primary.Evidence = append(r.Primary.Evidence,
				EvidenceRow{Series: linkTop.ID(), Stat: "active-mean", Value: linkTop.ActiveMean(), Unit: linkTop.Unit})
		}
	case readTop != nil && readTop.Max() >= 0.9*cfg.ReadCeiling:
		r.Primary = Finding{
			Verdict:  VerdictReadLatencyBound,
			Resource: readTop.Component,
			Detail: fmt.Sprintf("%s holds up to %.0f outstanding reads against a ceiling of %.0f tags — completion latency gates progress",
				readTop.ID(), readTop.Max(), cfg.ReadCeiling),
			Evidence: append(seriesEvidence(readTop),
				EvidenceRow{Series: readTop.ID(), Stat: "ceiling", Value: cfg.ReadCeiling, Unit: readTop.Unit}),
		}
	default:
		r.Primary = Finding{
			Verdict:  VerdictUnderutilized,
			Resource: "none",
			Detail:   "no sampled resource approaches saturation — end-to-end latency, not throughput, bounds this run",
		}
		if linkTop != nil {
			r.Primary.Evidence = append(r.Primary.Evidence,
				EvidenceRow{Series: linkTop.ID(), Stat: "active-mean", Value: linkTop.ActiveMean(), Unit: linkTop.Unit})
		}
		if dmaTop != nil {
			r.Primary.Evidence = append(r.Primary.Evidence,
				EvidenceRow{Series: dmaTop.ID(), Stat: "active-mean", Value: dmaTop.ActiveMean(), Unit: dmaTop.Unit})
		}
	}
	if snap != nil {
		for _, c := range snap.Counters {
			if c.Name == "link_credit_stalls" && c.Value > 0 {
				r.Notes = append(r.Notes, fmt.Sprintf("%s %s stalled %d sends on receiver credits", c.Component, labelSuffix(c.Labels), c.Value))
			}
		}
	}
	return r
}

func labelSuffix(labels []Label) string {
	out := ""
	for _, l := range labels {
		out += "[" + l.Value + "]"
	}
	return out
}

// hottest picks the series with the highest ActiveMean.
func hottest(series []*Series) *Series {
	var best *Series
	bestV := 0.0
	for _, s := range series {
		if v := s.ActiveMean(); best == nil || v > bestV {
			best, bestV = s, v
		}
	}
	return best
}

// hottestMax picks the series with the highest Max.
func hottestMax(series []*Series) *Series {
	var best *Series
	bestV := 0.0
	for _, s := range series {
		if v := s.Max(); best == nil || v > bestV {
			best, bestV = s, v
		}
	}
	return best
}

func seriesActiveMean(s *Series) float64 {
	if s == nil {
		return 0
	}
	return s.ActiveMean()
}

func seriesEvidence(s *Series) []EvidenceRow {
	return []EvidenceRow{
		{Series: s.ID(), Stat: "active-mean", Value: s.ActiveMean(), Unit: s.Unit},
		{Series: s.ID(), Stat: "peak", Value: s.Max(), Unit: s.Unit},
		{Series: s.ID(), Stat: "mean", Value: s.Mean(), Unit: s.Unit},
	}
}

// WriteReport renders the attribution verdict and its evidence rows.
func (r *Report) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "verdict: %s — %s\n", r.Primary.Verdict, r.Primary.Resource)
	fmt.Fprintf(w, "  %s\n", r.Primary.Detail)
	if len(r.Primary.Evidence) > 0 {
		tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
		fmt.Fprintln(tw, "  series\tstat\tvalue")
		for _, e := range r.Primary.Evidence {
			fmt.Fprintf(tw, "  %s\t%s\t%.1f %s\n", e.Series, e.Stat, e.Value, e.Unit)
		}
		tw.Flush()
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}
