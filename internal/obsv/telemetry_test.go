package obsv

import (
	"strings"
	"testing"

	"tca/internal/sim"
	"tca/internal/units"
)

// TestSamplerTicksAndAutoStop drives a sampler over a workload of known
// length and checks the tick train: one sample per interval, deterministic
// stop when the queue drains, restartable for a second phase.
func TestSamplerTicksAndAutoStop(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSampler(16)
	level := 0.0
	series := s.Register("sig", "comp", "", "u", func(sim.Time, units.Duration) float64 { return level })

	// Phase 1: workload events at 0.5 µs spacing out to 5 µs.
	for i := 1; i <= 10; i++ {
		v := float64(i)
		eng.At(sim.Time(i)*sim.Time(500*units.Nanosecond), func() { level = v })
	}
	s.Start(eng, units.Microsecond)
	eng.Run()

	if s.Running() {
		t.Error("sampler still running after the queue drained")
	}
	// Ticks at 1..5 µs; the 5 µs tick sees an empty queue and stops.
	if got := s.Ticks(); got != 5 {
		t.Errorf("ticks = %d, want 5", got)
	}
	if got := series.Len(); got != 5 {
		t.Errorf("series length = %d, want 5", got)
	}
	last, ok := series.Last()
	if !ok || last.V != 10 {
		t.Errorf("last sample = %+v, want the final level 10", last)
	}

	// Phase 2: restart for a later workload.
	eng.After(3*units.Microsecond, func() { level = 99 })
	s.Start(eng, units.Microsecond)
	eng.Run()
	if s.Running() {
		t.Error("sampler running after phase 2")
	}
	if got := s.Ticks(); got <= 5 {
		t.Errorf("phase-2 ticks did not advance: %d", got)
	}
}

// TestSamplerStop checks that Stop turns the pending tick into a no-op.
func TestSamplerStop(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSampler(4)
	calls := 0
	s.Register("sig", "comp", "", "u", func(sim.Time, units.Duration) float64 { calls++; return 0 })
	eng.After(10*units.Microsecond, func() {})
	s.Start(eng, units.Microsecond)
	s.Stop()
	eng.Run()
	if calls != 0 {
		t.Errorf("probe ran %d times after Stop", calls)
	}
	if s.Running() {
		t.Error("sampler reports running after Stop")
	}
}

// TestSamplerStartValidation locks the misuse panics.
func TestSamplerStartValidation(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSampler(4)
	mustPanic(t, "zero interval", func() { s.Start(eng, 0) })
	eng.After(10*units.Microsecond, func() {})
	s.Start(eng, units.Microsecond)
	mustPanic(t, "double start", func() { s.Start(eng, units.Microsecond) })
	mustPanic(t, "nil probe", func() { s.Register("x", "y", "", "u", nil) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	fn()
}

// TestSeriesRingEviction fills past capacity and checks oldest-first order.
func TestSeriesRingEviction(t *testing.T) {
	s := newSeries("sig", "comp", "", "u", 4)
	for i := 1; i <= 6; i++ {
		s.append(sim.Time(i), float64(i))
	}
	samples := s.Samples()
	if len(samples) != 4 {
		t.Fatalf("len = %d, want 4", len(samples))
	}
	for i, want := range []float64{3, 4, 5, 6} {
		if samples[i].V != want {
			t.Errorf("samples[%d].V = %g, want %g", i, samples[i].V, want)
		}
	}
	if got := s.Max(); got != 6 {
		t.Errorf("Max = %g, want 6", got)
	}
}

// TestActiveMeanIgnoresIdleSamples: the stat attribution leans on.
func TestActiveMeanIgnoresIdleSamples(t *testing.T) {
	s := newSeries("sig", "comp", "", "%", 8)
	for i, v := range []float64{0, 92, 92, 92, 0} {
		s.append(sim.Time(i), v)
	}
	if got := s.ActiveMean(); got != 92 {
		t.Errorf("ActiveMean = %g, want 92", got)
	}
	if got := s.Mean(); got >= 92 {
		t.Errorf("Mean = %g, should be diluted below 92", got)
	}
}

func synthSeries(tl *Timeline, name, comp, label, unit string, vals ...float64) *Series {
	s := newSeries(name, comp, label, unit, len(vals)+1)
	for i, v := range vals {
		s.append(sim.Time(i+1), v)
	}
	tl.add(s)
	return s
}

// TestAttributeVerdicts exercises all four rules on synthetic timelines.
func TestAttributeVerdicts(t *testing.T) {
	t.Run("link-bound", func(t *testing.T) {
		tl := &Timeline{}
		synthSeries(tl, "link_util", "link:peach2-0.E", "ab", "%", 0, 92, 93, 92, 0)
		synthSeries(tl, "link_util", "link:peach2-0.N", "ab", "%", 0, 20, 21, 20, 0)
		synthSeries(tl, "dma_busy", "peach2-1/dmac", "", "%", 0, 0, 0, 0, 0)
		rep := Attribute(nil, tl)
		if rep.Primary.Verdict != VerdictLinkBound {
			t.Fatalf("verdict = %v", rep.Primary.Verdict)
		}
		if !strings.Contains(rep.Primary.Resource, "link:peach2-0.E") {
			t.Errorf("resource = %q", rep.Primary.Resource)
		}
		if len(rep.Primary.Evidence) == 0 {
			t.Error("no evidence rows")
		}
		found := false
		for _, n := range rep.Notes {
			if strings.Contains(n, "peach2-1/dmac idles") {
				found = true
			}
		}
		if !found {
			t.Errorf("missing downstream-idle note: %v", rep.Notes)
		}
	})
	t.Run("engine-bound", func(t *testing.T) {
		tl := &Timeline{}
		synthSeries(tl, "link_util", "link:peach2-0.E", "ab", "%", 30, 35, 32)
		synthSeries(tl, "dma_busy", "peach2-0/dmac", "", "%", 95, 97, 96)
		rep := Attribute(nil, tl)
		if rep.Primary.Verdict != VerdictEngineBound {
			t.Fatalf("verdict = %v", rep.Primary.Verdict)
		}
		if rep.Primary.Resource != "peach2-0/dmac" {
			t.Errorf("resource = %q", rep.Primary.Resource)
		}
	})
	t.Run("read-latency-bound", func(t *testing.T) {
		tl := &Timeline{}
		synthSeries(tl, "link_util", "link:peach2-0.E", "ab", "%", 40, 42)
		synthSeries(tl, "dma_busy", "peach2-0/dmac", "", "%", 50, 52)
		synthSeries(tl, "rc_outstanding_reads", "node0.rc", "", "reads", 15, 16, 16)
		rep := Attribute(nil, tl)
		if rep.Primary.Verdict != VerdictReadLatencyBound {
			t.Fatalf("verdict = %v", rep.Primary.Verdict)
		}
		if rep.Primary.Resource != "node0.rc" {
			t.Errorf("resource = %q", rep.Primary.Resource)
		}
	})
	t.Run("underutilized", func(t *testing.T) {
		tl := &Timeline{}
		synthSeries(tl, "link_util", "link:peach2-0.E", "ab", "%", 1, 2, 1)
		rep := Attribute(nil, tl)
		if rep.Primary.Verdict != VerdictUnderutilized {
			t.Fatalf("verdict = %v", rep.Primary.Verdict)
		}
	})
}

// TestAttributeReportRenders smoke-tests the text renderer.
func TestAttributeReportRenders(t *testing.T) {
	tl := &Timeline{}
	synthSeries(tl, "link_util", "link:peach2-0.E", "ab", "%", 95, 95)
	var sb strings.Builder
	Attribute(nil, tl).WriteReport(&sb)
	out := sb.String()
	for _, want := range []string{"verdict: link-bound", "link:peach2-0.E", "active-mean"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestTelemetryNilSafety: every entry point must be a no-op on nil.
func TestTelemetryNilSafety(t *testing.T) {
	var s *Sampler
	var tl *Timeline
	var sr *Series
	eng := sim.NewEngine()
	s.Start(eng, units.Microsecond)
	s.Stop()
	if s.Register("a", "b", "", "u", func(sim.Time, units.Duration) float64 { return 0 }) != nil {
		t.Error("nil sampler Register returned a series")
	}
	if s.Timeline() != nil || s.Ticks() != 0 || s.Interval() != 0 || s.Running() {
		t.Error("nil sampler accessors not zero")
	}
	if tl.Series() != nil || tl.Select("x") != nil || tl.Find("x", "y", "") != nil {
		t.Error("nil timeline accessors not empty")
	}
	sr.append(1, 1)
	if sr.Len() != 0 || sr.Max() != 0 || sr.Mean() != 0 || sr.ActiveMean() != 0 || sr.ID() != "" {
		t.Error("nil series accessors not zero")
	}
	if _, ok := sr.Last(); ok {
		t.Error("nil series Last reported a sample")
	}
	if Attribute(nil, nil).Primary.Verdict != VerdictUnderutilized {
		t.Error("nil-timeline attribution should be underutilized")
	}
}

// TestDisabledSamplingZeroAllocs locks the acceptance bar: the disabled
// telemetry path allocates nothing.
func TestDisabledSamplingZeroAllocs(t *testing.T) {
	var s *Sampler
	var sr *Series
	probe := func(sim.Time, units.Duration) float64 { return 1 }
	if n := testing.AllocsPerRun(200, func() {
		s.Register("sig", "comp", "", "u", probe)
		sr.append(1, 1)
		_ = sr.Len()
	}); n != 0 {
		t.Errorf("disabled path allocates %.1f per run, want 0", n)
	}
}
