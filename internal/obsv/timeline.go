package obsv

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"text/tabwriter"

	"tca/internal/sim"
)

// Sample is one point of a time series: the signal's value at a sampler
// tick.
type Sample struct {
	At sim.Time `json:"at_ps"`
	V  float64  `json:"v"`
}

// Series is a bounded ring of time-ordered samples for one signal — a
// link direction's utilization, a DMAC's busy fraction, a port's bytes per
// interval. Old samples are evicted once the ring fills. The nil series is
// a valid disabled series: appends and queries on it are no-ops.
type Series struct {
	// Name is the signal kind ("link_util", "dma_busy", ...).
	Name string
	// Component owns the signal ("link:peach2-0.E", "peach2-0/dmac").
	Component string
	// Label distinguishes sub-signals of one component (a link direction
	// "ab"/"ba", a port "N"). Empty when the component has one signal.
	Label string
	// Unit names the value's unit ("%", "B", "tlps", "reads").
	Unit string

	mu      sync.Mutex
	samples []Sample
	next    int
	full    bool
}

func newSeries(name, component, label, unit string, capacity int) *Series {
	if capacity <= 0 {
		capacity = DefaultSeriesCap
	}
	return &Series{Name: name, Component: component, Label: label, Unit: unit,
		samples: make([]Sample, 0, capacity)}
}

// NewSeries creates a standalone bounded series, for signals that are fed
// directly rather than through a Sampler probe — e.g. the profiler's
// host-time track. capacity <= 0 means DefaultSeriesCap.
func NewSeries(name, component, label, unit string, capacity int) *Series {
	return newSeries(name, component, label, unit, capacity)
}

// Append adds one sample. Callers must append in nondecreasing time order
// (the order any single-threaded simulation produces naturally). No-op on
// the nil series.
func (s *Series) Append(at sim.Time, v float64) {
	if s == nil {
		return
	}
	s.append(at, v)
}

// ID renders the series identity: "name component[label]".
func (s *Series) ID() string {
	if s == nil {
		return ""
	}
	if s.Label == "" {
		return s.Name + " " + s.Component
	}
	return s.Name + " " + s.Component + "[" + s.Label + "]"
}

func (s *Series) append(at sim.Time, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.full && len(s.samples) < cap(s.samples) {
		s.samples = append(s.samples, Sample{At: at, V: v})
		return
	}
	s.full = true
	s.samples[s.next] = Sample{At: at, V: v}
	s.next = (s.next + 1) % len(s.samples)
}

// Samples returns the retained samples oldest-first.
func (s *Series) Samples() []Sample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, 0, len(s.samples))
	if s.full {
		out = append(out, s.samples[s.next:]...)
	}
	out = append(out, s.samples[:s.next]...)
	if !s.full {
		out = append(out, s.samples...)
	}
	return out
}

// Len reports the retained sample count.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Last returns the most recent sample.
func (s *Series) Last() (Sample, bool) {
	if s == nil {
		return Sample{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return Sample{}, false
	}
	i := len(s.samples) - 1
	if s.full {
		i = (s.next - 1 + len(s.samples)) % len(s.samples)
	}
	return s.samples[i], true
}

// Max reports the largest sampled value (0 when empty).
func (s *Series) Max() float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	max := 0.0
	for _, sm := range s.samples {
		if sm.V > max {
			max = sm.V
		}
	}
	return max
}

// Mean reports the arithmetic mean over all retained samples.
func (s *Series) Mean() float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, sm := range s.samples {
		sum += sm.V
	}
	return sum / float64(len(s.samples))
}

// ActiveMean reports the mean over the samples with a nonzero value — the
// signal's level while its resource was doing anything at all. A steady
// 92%-utilized link whose run has idle ramp-up and drain intervals shows
// ~92% here where Mean would dilute it toward the threshold.
func (s *Series) ActiveMean() float64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sum, n := 0.0, 0
	for _, sm := range s.samples {
		if sm.V != 0 {
			sum += sm.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Timeline is the ordered collection of every registered series. The nil
// timeline is a valid disabled timeline.
type Timeline struct {
	mu     sync.Mutex
	series []*Series
}

func (t *Timeline) add(s *Series) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.series = append(t.series, s)
}

// Add registers an externally-created series (see NewSeries) so exporters
// and tables pick it up alongside the sampler's own. No-op on the nil
// timeline or with a nil series.
func (t *Timeline) Add(s *Series) {
	if t == nil || s == nil {
		return
	}
	t.add(s)
}

// Series returns every series in registration order.
func (t *Timeline) Series() []*Series {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Series(nil), t.series...)
}

// Select returns every series with the given name, in registration order.
func (t *Timeline) Select(name string) []*Series {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*Series
	for _, s := range t.series {
		if s.Name == name {
			out = append(out, s)
		}
	}
	return out
}

// Find returns the series with the exact identity, or nil.
func (t *Timeline) Find(name, component, label string) *Series {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.series {
		if s.Name == name && s.Component == component && s.Label == label {
			return s
		}
	}
	return nil
}

// WriteSeriesTable renders the chosen series as one aligned column each,
// one row per sampling tick (matched by timestamp), striding rows so at
// most maxRows print (0 means all). The final tick always prints.
func WriteSeriesTable(w io.Writer, series []*Series, maxRows int) {
	cols := make([][]Sample, 0, len(series))
	times := make(map[sim.Time]bool)
	for _, s := range series {
		samples := s.Samples()
		cols = append(cols, samples)
		for _, sm := range samples {
			times[sm.At] = true
		}
	}
	ordered := make([]sim.Time, 0, len(times))
	for at := range times {
		ordered = append(ordered, at)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })

	stride := 1
	if maxRows > 0 && len(ordered) > maxRows {
		stride = (len(ordered) + maxRows - 1) / maxRows
	}

	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "t(us)")
	for _, s := range series {
		fmt.Fprintf(tw, "\t%s(%s)", s.ID(), s.Unit)
	}
	fmt.Fprintln(tw, "\t")
	for i, at := range ordered {
		if i%stride != 0 && i != len(ordered)-1 {
			continue
		}
		fmt.Fprintf(tw, "%.1f", float64(at)/1e6)
		for c := range series {
			if v, ok := sampleAt(cols[c], at); ok {
				fmt.Fprintf(tw, "\t%.1f", v)
			} else {
				fmt.Fprint(tw, "\t-")
			}
		}
		fmt.Fprintln(tw, "\t")
	}
	tw.Flush()
}

func sampleAt(samples []Sample, at sim.Time) (float64, bool) {
	i := sort.Search(len(samples), func(i int) bool { return samples[i].At >= at })
	if i < len(samples) && samples[i].At == at {
		return samples[i].V, true
	}
	return 0, false
}

// TopSeries orders series by descending Max (ties by ID) and returns at
// most n of them — the "most active signals" view tcatop renders.
func TopSeries(series []*Series, n int) []*Series {
	out := append([]*Series(nil), series...)
	sort.Slice(out, func(i, j int) bool {
		mi, mj := out[i].Max(), out[j].Max()
		if mi != mj {
			return mi > mj
		}
		return out[i].ID() < out[j].ID()
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
