package obsv

import (
	"bytes"
	"strings"
	"testing"

	"tca/internal/sim"
)

func TestNilSeriesIsDisabled(t *testing.T) {
	var s *Series
	s.Append(1, 2)
	if s.ID() != "" || s.Len() != 0 || s.Samples() != nil {
		t.Fatal("nil series reported data")
	}
	if _, ok := s.Last(); ok {
		t.Fatal("nil series has a last sample")
	}
	if s.Max() != 0 || s.Mean() != 0 || s.ActiveMean() != 0 {
		t.Fatal("nil series has nonzero statistics")
	}
}

func TestSeriesID(t *testing.T) {
	if got := NewSeries("link_util", "link:a", "ab", "%", 4).ID(); got != "link_util link:a[ab]" {
		t.Fatalf("labeled ID = %q", got)
	}
	if got := NewSeries("host_time", "prof", "", "us", 4).ID(); got != "host_time prof" {
		t.Fatalf("unlabeled ID = %q", got)
	}
}

func TestSeriesRingEvictionOldestFirst(t *testing.T) {
	s := NewSeries("x", "c", "", "", 4)
	for i := 1; i <= 6; i++ {
		s.Append(sim.Time(i), float64(i))
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (capacity)", s.Len())
	}
	got := s.Samples()
	for i, want := range []float64{3, 4, 5, 6} {
		if got[i].V != want || got[i].At != sim.Time(want) {
			t.Fatalf("Samples() = %v, want oldest-first 3..6", got)
		}
	}
	last, ok := s.Last()
	if !ok || last.V != 6 {
		t.Fatalf("Last = %v, %v", last, ok)
	}
}

func TestSeriesStatistics(t *testing.T) {
	s := NewSeries("x", "c", "", "", 8)
	for _, v := range []float64{0, 4, 0, 8} {
		s.Append(s.mustNextTime(), v)
	}
	if s.Max() != 8 {
		t.Fatalf("Max = %g", s.Max())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %g", s.Mean())
	}
	// ActiveMean ignores the idle zeros: (4+8)/2.
	if s.ActiveMean() != 6 {
		t.Fatalf("ActiveMean = %g", s.ActiveMean())
	}
	empty := NewSeries("y", "c", "", "", 8)
	if empty.Mean() != 0 || empty.ActiveMean() != 0 || empty.Max() != 0 {
		t.Fatal("empty series has nonzero statistics")
	}
}

// mustNextTime appends at strictly increasing times without the test
// tracking a counter.
func (s *Series) mustNextTime() sim.Time {
	if n := s.Len(); n > 0 {
		last, _ := s.Last()
		return last.At + 1
	}
	return 1
}

func TestTimelineRegistryAndLookup(t *testing.T) {
	var nilTL *Timeline
	nilTL.Add(NewSeries("x", "c", "", "", 4))
	if nilTL.Series() != nil || nilTL.Select("x") != nil || nilTL.Find("x", "c", "") != nil {
		t.Fatal("nil timeline reported series")
	}

	tl := &Timeline{}
	a := NewSeries("link_util", "link:a", "ab", "%", 4)
	b := NewSeries("link_util", "link:a", "ba", "%", 4)
	c := NewSeries("dma_busy", "dmac", "", "%", 4)
	tl.Add(a)
	tl.Add(b)
	tl.Add(c)
	tl.Add(nil) // ignored
	if got := tl.Series(); len(got) != 3 || got[0] != a || got[2] != c {
		t.Fatalf("Series() = %v", got)
	}
	if got := tl.Select("link_util"); len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("Select = %v", got)
	}
	if tl.Find("link_util", "link:a", "ba") != b {
		t.Fatal("Find missed the labeled series")
	}
	if tl.Find("link_util", "link:a", "zz") != nil {
		t.Fatal("Find matched a nonexistent label")
	}
}

func TestTopSeriesOrdersByMax(t *testing.T) {
	mk := func(name string, vs ...float64) *Series {
		s := NewSeries(name, "c", "", "", 8)
		for i, v := range vs {
			s.Append(sim.Time(i+1), v)
		}
		return s
	}
	hot := mk("hot", 1, 9)
	warm := mk("warm", 5)
	cold := mk("cold", 1)
	cold2 := mk("cold2", 1)
	top := TopSeries([]*Series{cold2, warm, hot, cold}, 3)
	if len(top) != 3 || top[0] != hot || top[1] != warm {
		t.Fatalf("TopSeries order wrong: %v", top)
	}
	// Ties break by ID, and n=0 means all.
	all := TopSeries([]*Series{cold2, cold}, 0)
	if len(all) != 2 || all[0] != cold || all[1] != cold2 {
		t.Fatalf("tie order: %v %v", all[0].ID(), all[1].ID())
	}
}

func TestWriteSeriesTableAlignsTicks(t *testing.T) {
	a := NewSeries("u", "a", "", "%", 8)
	b := NewSeries("u", "b", "", "%", 8)
	// b misses the middle tick; the table renders "-" there.
	a.Append(1_000_000, 10)
	a.Append(2_000_000, 20)
	a.Append(3_000_000, 30)
	b.Append(1_000_000, 1)
	b.Append(3_000_000, 3)
	var buf bytes.Buffer
	WriteSeriesTable(&buf, []*Series{a, b}, 0)
	out := buf.String()
	for _, want := range []string{"u a(%)", "u b(%)", "10.0", "30.0", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines != 4 { // header + 3 ticks
		t.Fatalf("table has %d lines, want 4:\n%s", lines, out)
	}
	// Strided: 3 ticks into maxRows=2 keeps the first and always the last.
	buf.Reset()
	WriteSeriesTable(&buf, []*Series{a, b}, 2)
	out = buf.String()
	if strings.Contains(out, "20.0") || !strings.Contains(out, "30.0") {
		t.Fatalf("striding kept the wrong rows:\n%s", out)
	}
}
