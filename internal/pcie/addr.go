package pcie

import (
	"fmt"
	"sort"
)

// Addr is a 64-bit PCI Express bus address. The TCA architecture's central
// trick is that one large, aligned window of this space is shared by a whole
// sub-cluster (Fig. 4 of the paper).
type Addr uint64

// String formats the address in hex.
func (a Addr) String() string { return fmt.Sprintf("0x%012x", uint64(a)) }

// Range is a half-open address window [Base, Base+Size).
type Range struct {
	Base Addr
	Size uint64
}

// End reports the first address past the window.
func (r Range) End() Addr { return r.Base + Addr(r.Size) }

// Contains reports whether a falls inside the window.
func (r Range) Contains(a Addr) bool { return a >= r.Base && a < r.End() }

// ContainsRange reports whether the whole of s falls inside r.
func (r Range) ContainsRange(s Range) bool {
	return s.Base >= r.Base && s.End() <= r.End() && s.Size <= r.Size
}

// Overlaps reports whether the two windows share any address.
func (r Range) Overlaps(s Range) bool {
	return r.Size > 0 && s.Size > 0 && r.Base < s.End() && s.Base < r.End()
}

// Aligned reports whether the window sits on a multiple of its own size —
// the property PEACH2's compare-only routing requires, since it decides the
// destination purely from upper address bits.
func (r Range) Aligned() bool {
	if r.Size == 0 || r.Size&(r.Size-1) != 0 {
		return false // power-of-two sizes only
	}
	return uint64(r.Base)%r.Size == 0
}

// String formats like "[0x...8000000000 +512GiB)".
func (r Range) String() string {
	return fmt.Sprintf("[%v +0x%x)", r.Base, r.Size)
}

// AddressMap routes addresses to named targets — the model for a PCIe
// switch's downstream windows, a root complex's BAR assignments, and the
// TCA global map. Ranges must not overlap.
type AddressMap struct {
	entries []mapEntry
}

type mapEntry struct {
	r      Range
	target any
}

// Add registers target for window r. It returns an error if r is empty or
// overlaps an existing window.
func (m *AddressMap) Add(r Range, target any) error {
	if r.Size == 0 {
		return fmt.Errorf("pcie: empty address range %v", r)
	}
	if r.End() < r.Base {
		return fmt.Errorf("pcie: address range %v wraps the 64-bit space", r)
	}
	for _, e := range m.entries {
		if e.r.Overlaps(r) {
			return fmt.Errorf("pcie: range %v overlaps existing %v", r, e.r)
		}
	}
	m.entries = append(m.entries, mapEntry{r: r, target: target})
	sort.Slice(m.entries, func(i, j int) bool { return m.entries[i].r.Base < m.entries[j].r.Base })
	return nil
}

// MustAdd is Add for static topologies built at simulation setup, where an
// overlap is a programming error.
func (m *AddressMap) MustAdd(r Range, target any) {
	if err := m.Add(r, target); err != nil {
		panic(fmt.Sprintf("pcie: MustAdd: %v", err))
	}
}

// Lookup returns the target whose window contains a, or (nil, Range{},
// false) when the address is unmapped.
func (m *AddressMap) Lookup(a Addr) (any, Range, bool) {
	i := sort.Search(len(m.entries), func(i int) bool { return m.entries[i].r.End() > a })
	if i < len(m.entries) && m.entries[i].r.Contains(a) {
		return m.entries[i].target, m.entries[i].r, true
	}
	return nil, Range{}, false
}

// LookupRange returns the target whose window fully contains r. Transfers
// that straddle windows are split by callers before lookup.
func (m *AddressMap) LookupRange(r Range) (any, Range, bool) {
	t, w, ok := m.Lookup(r.Base)
	if !ok || !w.ContainsRange(r) {
		return nil, Range{}, false
	}
	return t, w, true
}

// Len reports the number of windows.
func (m *AddressMap) Len() int { return len(m.entries) }

// Windows returns the registered windows in ascending base order.
func (m *AddressMap) Windows() []Range {
	ws := make([]Range, len(m.entries))
	for i, e := range m.entries {
		ws[i] = e.r
	}
	return ws
}
