package pcie

import (
	"testing"
	"testing/quick"
)

func TestRangeContains(t *testing.T) {
	r := Range{Base: 0x1000, Size: 0x1000}
	cases := []struct {
		a    Addr
		want bool
	}{
		{0xfff, false},
		{0x1000, true},
		{0x1fff, true},
		{0x2000, false},
	}
	for _, c := range cases {
		if got := r.Contains(c.a); got != c.want {
			t.Errorf("Contains(%v) = %t, want %t", c.a, got, c.want)
		}
	}
}

func TestRangeContainsRange(t *testing.T) {
	r := Range{Base: 0x1000, Size: 0x1000}
	if !r.ContainsRange(Range{Base: 0x1000, Size: 0x1000}) {
		t.Error("range should contain itself")
	}
	if !r.ContainsRange(Range{Base: 0x1800, Size: 0x100}) {
		t.Error("range should contain interior sub-range")
	}
	if r.ContainsRange(Range{Base: 0x1800, Size: 0x1000}) {
		t.Error("range should not contain straddling sub-range")
	}
	if r.ContainsRange(Range{Base: 0x800, Size: 0x100}) {
		t.Error("range should not contain range before it")
	}
}

func TestRangeOverlaps(t *testing.T) {
	a := Range{Base: 0x1000, Size: 0x1000}
	cases := []struct {
		b    Range
		want bool
	}{
		{Range{Base: 0x0, Size: 0x1000}, false},    // abuts below
		{Range{Base: 0x2000, Size: 0x1000}, false}, // abuts above
		{Range{Base: 0xfff, Size: 2}, true},
		{Range{Base: 0x1fff, Size: 2}, true},
		{Range{Base: 0x1400, Size: 0x100}, true},
		{Range{Base: 0x0, Size: 0x10000}, true}, // engulfs
		{Range{Base: 0x1400, Size: 0}, false},   // empty never overlaps
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %t, want %t", a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("Overlaps not symmetric for %v / %v", a, c.b)
		}
	}
}

func TestRangeAligned(t *testing.T) {
	cases := []struct {
		r    Range
		want bool
	}{
		{Range{Base: 0, Size: 1 << 30}, true},
		{Range{Base: 1 << 30, Size: 1 << 30}, true},
		{Range{Base: 3 << 30, Size: 1 << 30}, true},
		{Range{Base: 1 << 29, Size: 1 << 30}, false}, // misaligned base
		{Range{Base: 0, Size: 3 << 20}, false},       // non-power-of-two
		{Range{Base: 0, Size: 0}, false},
	}
	for _, c := range cases {
		if got := c.r.Aligned(); got != c.want {
			t.Errorf("%v.Aligned() = %t, want %t", c.r, got, c.want)
		}
	}
}

func TestAddressMapLookup(t *testing.T) {
	var m AddressMap
	m.MustAdd(Range{Base: 0x1000, Size: 0x1000}, "a")
	m.MustAdd(Range{Base: 0x4000, Size: 0x2000}, "b")
	m.MustAdd(Range{Base: 0x0, Size: 0x800}, "c")

	cases := []struct {
		a    Addr
		want any
		ok   bool
	}{
		{0x0, "c", true},
		{0x7ff, "c", true},
		{0x800, nil, false},
		{0x1000, "a", true},
		{0x1fff, "a", true},
		{0x2000, nil, false},
		{0x4000, "b", true},
		{0x5fff, "b", true},
		{0x6000, nil, false},
	}
	for _, c := range cases {
		got, _, ok := m.Lookup(c.a)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("Lookup(%v) = (%v, %t), want (%v, %t)", c.a, got, ok, c.want, c.ok)
		}
	}
}

func TestAddressMapRejectsOverlap(t *testing.T) {
	var m AddressMap
	m.MustAdd(Range{Base: 0x1000, Size: 0x1000}, "a")
	if err := m.Add(Range{Base: 0x1800, Size: 0x1000}, "b"); err == nil {
		t.Fatal("overlapping Add succeeded")
	}
	if err := m.Add(Range{Base: 0x1000, Size: 0x1000}, "b"); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d after rejected adds, want 1", m.Len())
	}
}

func TestAddressMapRejectsEmptyAndWrapping(t *testing.T) {
	var m AddressMap
	if err := m.Add(Range{Base: 0x1000, Size: 0}, "x"); err == nil {
		t.Fatal("empty range accepted")
	}
	if err := m.Add(Range{Base: ^Addr(0) - 10, Size: 100}, "x"); err == nil {
		t.Fatal("wrapping range accepted")
	}
}

func TestAddressMapLookupRange(t *testing.T) {
	var m AddressMap
	m.MustAdd(Range{Base: 0x1000, Size: 0x1000}, "a")
	if _, _, ok := m.LookupRange(Range{Base: 0x1800, Size: 0x100}); !ok {
		t.Fatal("interior LookupRange failed")
	}
	if _, _, ok := m.LookupRange(Range{Base: 0x1f00, Size: 0x200}); ok {
		t.Fatal("straddling LookupRange succeeded")
	}
}

func TestAddressMapWindowsSorted(t *testing.T) {
	var m AddressMap
	m.MustAdd(Range{Base: 0x4000, Size: 0x100}, 1)
	m.MustAdd(Range{Base: 0x1000, Size: 0x100}, 2)
	m.MustAdd(Range{Base: 0x2000, Size: 0x100}, 3)
	ws := m.Windows()
	for i := 1; i < len(ws); i++ {
		if ws[i].Base < ws[i-1].Base {
			t.Fatalf("Windows not sorted: %v", ws)
		}
	}
}

// Property: every address inside an added window resolves to its target;
// addresses outside all windows resolve to nothing.
func TestQuickAddressMapResolution(t *testing.T) {
	f := func(bases [4]uint16, offsets [8]uint16) bool {
		var m AddressMap
		added := map[int]Range{}
		for i, b := range bases {
			// Disjoint 64 KiB-spaced windows of 4 KiB each.
			r := Range{Base: Addr(uint64(b)<<16 + uint64(i)<<40), Size: 4096}
			if err := m.Add(r, i); err != nil {
				continue
			}
			added[i] = r
		}
		for i, r := range added {
			for _, off := range offsets {
				a := r.Base + Addr(uint64(off)%r.Size)
				got, w, ok := m.Lookup(a)
				if !ok || got.(int) != i || w != r {
					return false
				}
			}
			if _, _, ok := m.Lookup(r.End()); ok {
				// End must not resolve to this window; it may land in
				// another, so only check identity.
				got, _, _ := m.Lookup(r.End())
				if got.(int) == i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAddrString(t *testing.T) {
	if got := Addr(0x8000000000).String(); got != "0x008000000000" {
		t.Fatalf("Addr.String() = %q", got)
	}
}
