package pcie

import (
	"fmt"

	"tca/internal/units"
)

// TagTable tracks outstanding non-posted requests for one requester: it
// hands out PCIe tags, accumulates the (possibly split) completions, and
// fires a callback when the last completion lands. The table's capacity is
// the device's maximum number of outstanding reads — a first-order
// determinant of read bandwidth (the paper's 830 MB/s GPU-read ceiling is a
// tag-starvation effect).
type TagTable struct {
	free    []uint8
	pending map[uint8]*pendingRead
}

type pendingRead struct {
	want units.ByteSize
	buf  []byte
	done func(data []byte)
}

// NewTagTable creates a table with capacity tags (1..256).
func NewTagTable(capacity int) *TagTable {
	if capacity < 1 || capacity > 256 {
		panic(fmt.Sprintf("pcie: tag table capacity %d out of range [1,256]", capacity))
	}
	t := &TagTable{pending: make(map[uint8]*pendingRead, capacity)}
	for i := capacity - 1; i >= 0; i-- {
		t.free = append(t.free, uint8(i))
	}
	return t
}

// Alloc reserves a tag for a read expecting want bytes; done runs when the
// final completion arrives. ok is false when all tags are outstanding — the
// caller must retry after a completion frees one.
func (t *TagTable) Alloc(want units.ByteSize, done func(data []byte)) (tag uint8, ok bool) {
	if want <= 0 {
		panic(fmt.Sprintf("pcie: Alloc for non-positive read length %d", want))
	}
	if done == nil {
		panic("pcie: Alloc with nil completion callback")
	}
	if len(t.free) == 0 {
		return 0, false
	}
	tag = t.free[len(t.free)-1]
	t.free = t.free[:len(t.free)-1]
	t.pending[tag] = &pendingRead{want: want, done: done}
	return tag, true
}

// HandleCompletion consumes a CplD/Cpl TLP. It returns an error for unknown
// tags or overflowing data — both indicate fabric routing bugs.
func (t *TagTable) HandleCompletion(c *TLP) error {
	if c.Kind != CplD && c.Kind != Cpl {
		return fmt.Errorf("pcie: HandleCompletion on %v", c.Kind)
	}
	p, ok := t.pending[c.Tag]
	if !ok {
		return fmt.Errorf("pcie: completion for unknown tag %d", c.Tag)
	}
	p.buf = append(p.buf, c.Data...)
	if units.ByteSize(len(p.buf)) > p.want {
		return fmt.Errorf("pcie: completion overflow on tag %d: got %d want %d", c.Tag, len(p.buf), p.want)
	}
	if c.Last {
		if units.ByteSize(len(p.buf)) != p.want {
			return fmt.Errorf("pcie: short read on tag %d: got %d want %d", c.Tag, len(p.buf), p.want)
		}
		delete(t.pending, c.Tag)
		t.free = append(t.free, c.Tag)
		p.done(p.buf)
	}
	return nil
}

// CancelAll abandons every outstanding read without running its callback
// and returns the tags to the free pool — the requester's error path when
// a chain is aborted. It returns how many reads were cancelled. Tags are
// scanned in numeric order so the free list (and therefore every later
// allocation) stays deterministic.
func (t *TagTable) CancelAll() int {
	n := 0
	for i := 0; i < 256; i++ {
		tag := uint8(i)
		if _, ok := t.pending[tag]; !ok {
			continue
		}
		delete(t.pending, tag)
		t.free = append(t.free, tag)
		n++
	}
	return n
}

// Outstanding reports the number of reads in flight.
func (t *TagTable) Outstanding() int { return len(t.pending) }

// Free reports how many tags remain available.
func (t *TagTable) Free() int { return len(t.free) }
