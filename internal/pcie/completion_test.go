package pcie

import (
	"bytes"
	"testing"
)

func TestTagTableAllocAndComplete(t *testing.T) {
	tt := NewTagTable(8)
	var got []byte
	tag, ok := tt.Alloc(6, func(data []byte) { got = data })
	if !ok {
		t.Fatal("Alloc failed on empty table")
	}
	if tt.Outstanding() != 1 || tt.Free() != 7 {
		t.Fatalf("Outstanding/Free = %d/%d, want 1/7", tt.Outstanding(), tt.Free())
	}
	if err := tt.HandleCompletion(&TLP{Kind: CplD, Tag: tag, Data: []byte{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("callback fired before Last completion")
	}
	if err := tt.HandleCompletion(&TLP{Kind: CplD, Tag: tag, Data: []byte{4, 5, 6}, Last: true}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4, 5, 6}) {
		t.Fatalf("reassembled data = %v", got)
	}
	if tt.Outstanding() != 0 || tt.Free() != 8 {
		t.Fatalf("tag not recycled: %d/%d", tt.Outstanding(), tt.Free())
	}
}

func TestTagTableExhaustion(t *testing.T) {
	tt := NewTagTable(2)
	cb := func([]byte) {}
	if _, ok := tt.Alloc(1, cb); !ok {
		t.Fatal("first Alloc failed")
	}
	tag2, ok := tt.Alloc(1, cb)
	if !ok {
		t.Fatal("second Alloc failed")
	}
	if _, ok := tt.Alloc(1, cb); ok {
		t.Fatal("Alloc beyond capacity succeeded")
	}
	if err := tt.HandleCompletion(&TLP{Kind: CplD, Tag: tag2, Data: []byte{9}, Last: true}); err != nil {
		t.Fatal(err)
	}
	if _, ok := tt.Alloc(1, cb); !ok {
		t.Fatal("Alloc after free failed")
	}
}

func TestTagTableUnknownTag(t *testing.T) {
	tt := NewTagTable(4)
	if err := tt.HandleCompletion(&TLP{Kind: CplD, Tag: 3, Data: []byte{1}, Last: true}); err == nil {
		t.Fatal("unknown tag accepted")
	}
}

func TestTagTableOverflowAndShortRead(t *testing.T) {
	tt := NewTagTable(4)
	tag, _ := tt.Alloc(2, func([]byte) {})
	if err := tt.HandleCompletion(&TLP{Kind: CplD, Tag: tag, Data: []byte{1, 2, 3}, Last: true}); err == nil {
		t.Fatal("overflowing completion accepted")
	}

	tt2 := NewTagTable(4)
	tag2, _ := tt2.Alloc(10, func([]byte) {})
	if err := tt2.HandleCompletion(&TLP{Kind: CplD, Tag: tag2, Data: []byte{1}, Last: true}); err == nil {
		t.Fatal("short read accepted")
	}
}

func TestTagTableRejectsWrongKind(t *testing.T) {
	tt := NewTagTable(4)
	if err := tt.HandleCompletion(&TLP{Kind: MWr, Data: []byte{1}}); err == nil {
		t.Fatal("MWr accepted as completion")
	}
}

func TestTagTableCapacityBounds(t *testing.T) {
	for _, bad := range []int{0, -1, 257} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("capacity %d did not panic", bad)
				}
			}()
			NewTagTable(bad)
		}()
	}
	tt := NewTagTable(256)
	if tt.Free() != 256 {
		t.Fatalf("Free = %d, want 256", tt.Free())
	}
}

func TestTagTableAllocValidation(t *testing.T) {
	tt := NewTagTable(4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero-length Alloc did not panic")
			}
		}()
		tt.Alloc(0, func([]byte) {})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil-callback Alloc did not panic")
			}
		}()
		tt.Alloc(8, nil)
	}()
}

// TestTagTableDoubleCompletion drives a second Last completion at an
// already-freed tag: it must be rejected as unknown and must not push the
// tag onto the free list a second time, or Free() would grow past
// capacity and a later Alloc could hand the same tag to two readers.
func TestTagTableDoubleCompletion(t *testing.T) {
	tt := NewTagTable(4)
	tag, ok := tt.Alloc(2, func([]byte) {})
	if !ok {
		t.Fatal("Alloc failed on empty table")
	}
	done := &TLP{Kind: CplD, Tag: tag, Data: []byte{1, 2}, Last: true}
	if err := tt.HandleCompletion(done); err != nil {
		t.Fatal(err)
	}
	if tt.Free() != 4 {
		t.Fatalf("Free = %d after completion, want 4", tt.Free())
	}
	if err := tt.HandleCompletion(done); err == nil {
		t.Fatal("second completion on a freed tag not rejected")
	}
	if tt.Free() != 4 || tt.Outstanding() != 0 {
		t.Fatalf("double completion grew the free list: Free=%d Outstanding=%d, want 4/0",
			tt.Free(), tt.Outstanding())
	}
}

// TestTagTableCancelAfterComplete cancels after the read already finished:
// CancelAll must find nothing to cancel and must not re-free the tag.
func TestTagTableCancelAfterComplete(t *testing.T) {
	tt := NewTagTable(4)
	tag, ok := tt.Alloc(1, func([]byte) {})
	if !ok {
		t.Fatal("Alloc failed on empty table")
	}
	if err := tt.HandleCompletion(&TLP{Kind: CplD, Tag: tag, Data: []byte{9}, Last: true}); err != nil {
		t.Fatal(err)
	}
	if n := tt.CancelAll(); n != 0 {
		t.Fatalf("CancelAll cancelled %d reads after completion, want 0", n)
	}
	if tt.Free() != 4 {
		t.Fatalf("Free = %d after cancel-after-complete, want 4", tt.Free())
	}
}

// TestTagTableDoubleCancel runs CancelAll twice: the second sweep must be
// a no-op, keeping Free() at capacity.
func TestTagTableDoubleCancel(t *testing.T) {
	tt := NewTagTable(4)
	for i := 0; i < 3; i++ {
		if _, ok := tt.Alloc(1, func([]byte) { t.Fatal("cancelled read ran its callback") }); !ok {
			t.Fatalf("Alloc %d failed", i)
		}
	}
	if n := tt.CancelAll(); n != 3 {
		t.Fatalf("first CancelAll = %d, want 3", n)
	}
	if n := tt.CancelAll(); n != 0 {
		t.Fatalf("second CancelAll = %d, want 0", n)
	}
	if tt.Free() != 4 || tt.Outstanding() != 0 {
		t.Fatalf("double cancel corrupted the table: Free=%d Outstanding=%d, want 4/0",
			tt.Free(), tt.Outstanding())
	}
}

// TestTagTableCancelThenStaleCompletion cancels an outstanding read and
// then delivers its (now stale) completion: the completion must be
// rejected and the free list must stay at capacity — the fabric can
// legitimately deliver a completion for a read the requester abandoned.
func TestTagTableCancelThenStaleCompletion(t *testing.T) {
	tt := NewTagTable(4)
	tag, ok := tt.Alloc(1, func([]byte) { t.Fatal("cancelled read ran its callback") })
	if !ok {
		t.Fatal("Alloc failed on empty table")
	}
	if n := tt.CancelAll(); n != 1 {
		t.Fatalf("CancelAll = %d, want 1", n)
	}
	if err := tt.HandleCompletion(&TLP{Kind: CplD, Tag: tag, Data: []byte{1}, Last: true}); err == nil {
		t.Fatal("stale completion after cancel not rejected")
	}
	if tt.Free() != 4 {
		t.Fatalf("stale completion grew the free list: Free=%d, want 4", tt.Free())
	}
}
