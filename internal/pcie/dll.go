package pcie

import (
	"fmt"

	"tca/internal/fault"
	"tca/internal/obsv"
	"tca/internal/sim"
	"tca/internal/units"
)

// This file models the PCIe data-link layer on external cables — the
// reliability half of PEARL (PCI Express Adaptive and Reliable Link).
// Every transmitted TLP gets a sequence number and is held in a bounded
// replay buffer until the receiver's cumulative ACK DLLP releases it; an
// LCRC failure at the receiver NAKs the expected sequence and the sender
// goes-back-N, and a replay timer retransmits when ACKs stop arriving
// (lost frames and lost DLLPs alike). A direction that exhausts its
// replay budget declares the whole cable dead, salvages the unacknowledged
// TLPs, and hands them to the owning chip for rerouting — the hook the
// NIOS failover path builds on.
//
// The DLL is opt-in per link (EnableDLL). A link without a DLL runs the
// original lossless fast path and schedules exactly the same engine
// events as before this layer existed, so fault-free runs stay
// bit-identical with PR 2's baselines.

// DLLParams tunes the data-link layer of one link.
type DLLParams struct {
	// ReplayTimeout is how long the sender waits for ACK progress before
	// replaying the buffer unprompted (REPLAY_TIMER in the PCIe spec).
	ReplayTimeout units.Duration
	// AckNakLatency is the receiver-side delay before an ACK/NAK DLLP is
	// scheduled back to the sender (DLLP assembly + arbitration).
	AckNakLatency units.Duration
	// ReplayBufferTLPs bounds the unacknowledged TLPs per direction; a
	// full buffer backpressures the sender exactly like credit exhaustion.
	ReplayBufferTLPs int
	// MaxReplays is the replay budget: exceeding it declares the link
	// dead instead of retrying forever.
	MaxReplays int
	// BreakSalvage deliberately discards the salvageable TLPs on link
	// death instead of handing them to the DeadHandler — without telling
	// the conservation ledger. It exists only to prove the invariant
	// checker catches silent loss (cmd/tcafuzz -break-salvage); never set
	// it in a real scenario.
	BreakSalvage bool
}

// Default DLL parameters: a replay timer comfortably above one cable RTT,
// a buffer deeper than the credit pool, and the PCIe-conventional four
// replays before retrain (here: before declaring the link dead).
const (
	DefaultReplayTimeout    = units.Microsecond
	DefaultAckNakLatency    = 20 * units.Nanosecond
	DefaultReplayBufferTLPs = 64
	DefaultMaxReplays       = 4
)

// DefaultDLLParams returns the default tuning.
func DefaultDLLParams() DLLParams {
	return DLLParams{
		ReplayTimeout:    DefaultReplayTimeout,
		AckNakLatency:    DefaultAckNakLatency,
		ReplayBufferTLPs: DefaultReplayBufferTLPs,
		MaxReplays:       DefaultMaxReplays,
	}
}

func (p DLLParams) withDefaults() DLLParams {
	if p.ReplayTimeout == 0 {
		p.ReplayTimeout = DefaultReplayTimeout
	}
	if p.AckNakLatency == 0 {
		p.AckNakLatency = DefaultAckNakLatency
	}
	if p.ReplayBufferTLPs == 0 {
		p.ReplayBufferTLPs = DefaultReplayBufferTLPs
	}
	if p.MaxReplays == 0 {
		p.MaxReplays = DefaultMaxReplays
	}
	return p
}

// DeadHandler receives the TLPs salvaged from a direction of a link that
// was just declared dead: the unacknowledged replay buffer plus the
// credit-stalled queue, in transmission order. The owning device decides
// whether to park them for rerouting or drop them.
type DeadHandler func(now sim.Time, salvaged []*TLP)

// dllEntry is one unacknowledged TLP in a replay buffer.
type dllEntry struct {
	seq uint64
	tlp *TLP
}

// dllDir is the per-direction DLL state. Sequence numbers start at 1 so
// that 0 can mean "no NAK outstanding" in nakSeq.
type dllDir struct {
	nextSeq  uint64     // sequence number of the next new TLP
	buf      []dllEntry // unacknowledged TLPs, ascending seq
	expected uint64     // receiver side: next sequence to deliver
	replays  int        // replay rounds since last ACK progress
	timerGen uint64     // invalidates stale replay timers
	nakSeq   uint64     // gap already replayed for (NAK-storm guard)
	dead     bool
	onDead   DeadHandler
}

// dll is the per-link data-link layer.
type dll struct {
	name   string
	params DLLParams
	inj    *fault.Injector
	dirs   [2]dllDir
}

// EnableDLL attaches a data-link layer to the link under the given cable
// name (the name fault profiles reference in linkdown windows). It must
// be called at most once, before traffic flows.
func (l *Link) EnableDLL(name string, inj *fault.Injector, params DLLParams) {
	if l.dll != nil {
		panic(fmt.Sprintf("pcie: DLL already enabled on link %q", l.dll.name))
	}
	d := &dll{name: name, params: params.withDefaults(), inj: inj}
	d.dirs[0] = dllDir{nextSeq: 1, expected: 1}
	d.dirs[1] = dllDir{nextSeq: 1, expected: 1}
	l.dll = d
}

// DLLName reports the cable name the DLL was enabled under ("" without a
// DLL).
func (l *Link) DLLName() string {
	if l.dll == nil {
		return ""
	}
	return l.dll.name
}

// Ends returns the two ports the link joins, in Connect order.
func (l *Link) Ends() (*Port, *Port) { return l.a, l.b }

// SetDeadHandler registers the salvage callback for the direction out of
// from. Requires an enabled DLL.
func (l *Link) SetDeadHandler(from *Port, fn DeadHandler) {
	if l.dll == nil {
		panic("pcie: SetDeadHandler without DLL")
	}
	_, di := l.dir(from)
	l.dll.dirs[di].onDead = fn
}

// DeadFrom reports whether the direction out of from has been declared
// dead. A link without a DLL can never die.
func (l *Link) DeadFrom(from *Port) bool {
	if l.dll == nil {
		return false
	}
	_, di := l.dir(from)
	return l.dll.dirs[di].dead
}

// dllBufFull reports whether the direction's replay buffer backpressures
// new transmissions.
func (l *Link) dllBufFull(di int) bool {
	return l.dll != nil && len(l.dll.dirs[di].buf) >= l.dll.params.ReplayBufferTLPs
}

// divertDead handles a send into a dead direction: hand the TLP straight
// to the salvage handler (the chip parks it for rerouting) or drop it,
// telling the ledger the drop was deliberate.
func (l *Link) divertDead(now sim.Time, di int, t *TLP) {
	dd := &l.dll.dirs[di]
	if dd.onDead != nil {
		dd.onDead(now, []*TLP{t})
		return
	}
	if l.led != nil && t.LID != 0 {
		l.led.Dropped(now, t.LID, l.obsName, "sent into dead link, no salvage handler")
	}
}

// dllTransmit sequences a TLP into the replay buffer and puts its frame
// on the wire. The credit slot stays occupied until the receiver delivers
// the TLP (not merely until the frame lands), so lost frames keep
// backpressuring the sender until replay gets them through.
func (l *Link) dllTransmit(now sim.Time, d *linkDir, di int, t *TLP) {
	// The replay buffer aliases the packet beyond its delivery (a replay
	// round retransmits it, reading its wire size), so it must never be
	// recycled underneath the buffer: detach it from its pool for good.
	t.Pin()
	dd := &l.dll.dirs[di]
	d.inFlight++
	e := dllEntry{seq: dd.nextSeq, tlp: t}
	dd.nextSeq++
	dd.buf = append(dd.buf, e)
	l.sendFrame(now, d, di, e, false)
	if len(dd.buf) == 1 {
		l.armReplayTimer(di)
	}
}

// sendFrame reserves wire time for one sequenced frame and schedules its
// arrival at the receiver's DLL.
func (l *Link) sendFrame(now sim.Time, d *linkDir, di int, e dllEntry, replayed bool) {
	ser := units.TimeToSend(e.tlp.WireBytes(), l.params.Config.RawBandwidth())
	start := d.wire.Reserve(now, ser)
	d.reserved += ser
	if l.rec != nil && e.tlp.Txn != 0 {
		if start > now && !replayed {
			l.rec.Record(obsv.Event{At: now, Txn: e.tlp.Txn, Stage: obsv.StageQueueEnter,
				Where: l.obsName, Port: d.dst.Label, Addr: uint64(e.tlp.Addr), Cause: obsv.CauseRouteBusy})
			l.rec.Record(obsv.Event{At: start, Txn: e.tlp.Txn, Stage: obsv.StageQueueExit,
				Where: l.obsName, Port: d.dst.Label, Addr: uint64(e.tlp.Addr), Cause: obsv.CauseRouteBusy})
		}
		stage := obsv.StageLinkTx
		if replayed {
			stage = obsv.StageReplay
		}
		l.rec.Record(obsv.Event{At: start, Txn: e.tlp.Txn, Stage: stage,
			Where: l.obsName, Port: d.dst.Label, Addr: uint64(e.tlp.Addr)})
	}
	arrive := start.Add(ser).Add(l.params.Propagation)
	l.eng.AtComp(l.comp, arrive, func() {
		l.dllArrive(l.eng.Now(), d, di, e)
	})
}

// dllArrive is the receiver side: LCRC check, injected losses, sequence
// check, then delivery plus a cumulative ACK.
func (l *Link) dllArrive(now sim.Time, d *linkDir, di int, e dllEntry) {
	dd := &l.dll.dirs[di]
	if dd.dead {
		return
	}
	if l.dll.inj.LinkDown(l.dll.name, now) {
		return // blackholed; the replay timer recovers or kills the link
	}
	if l.dll.inj.DropTLP() {
		return // swallowed without ACK; ditto
	}
	if l.dll.inj.CorruptTLP(e.tlp.WireBytes()) {
		l.sendDLLP(now, di, dd.expected, true) // LCRC failure: NAK
		return
	}
	if e.seq != dd.expected {
		if e.seq < dd.expected {
			// Duplicate from a replay round: discard, but re-ACK in case
			// the original ACK was lost.
			l.sendDLLP(now, di, dd.expected, false)
		} else {
			// Gap: an earlier frame was lost. NAK the expected sequence.
			l.sendDLLP(now, di, dd.expected, true)
		}
		return
	}
	dd.expected++
	l.sendDLLP(now, di, dd.expected, false)
	drain := d.dst.owner.Accept(now, e.tlp, d.dst)
	if drain < 0 {
		panic(fmt.Sprintf("pcie: negative drain %v from %s", drain, d.dst.owner.DevName()))
	}
	l.eng.AfterComp(l.comp, drain, func() {
		if dd.dead {
			return // credits were reset when the link died
		}
		d.inFlight--
		if d.inFlight < 0 {
			panic("pcie: credit underflow")
		}
		l.pump(l.eng.Now(), d, di)
	})
}

// sendDLLP schedules an ACK (nak=false) or NAK (nak=true) DLLP back to
// the sender of direction di. ackSeq is cumulative: every buffered entry
// below it is acknowledged. DLLPs are latency-only — they are a few bytes
// and never contend with TLPs for wire time in this model.
func (l *Link) sendDLLP(now sim.Time, di int, ackSeq uint64, nak bool) {
	l.eng.AfterComp(l.comp, l.dll.params.AckNakLatency+l.params.Propagation, func() {
		l.dllpArrive(l.eng.Now(), di, ackSeq, nak)
	})
}

// dllpArrive is the sender side of the ACK/NAK protocol: release
// acknowledged entries, reset the replay budget on progress, and replay
// on a fresh NAK.
func (l *Link) dllpArrive(now sim.Time, di int, ackSeq uint64, nak bool) {
	dd := &l.dll.dirs[di]
	if dd.dead {
		return
	}
	if l.dll.inj.LinkDown(l.dll.name, now) {
		return // the DLLP is blackholed too
	}
	released := 0
	for released < len(dd.buf) && dd.buf[released].seq < ackSeq {
		released++
	}
	if released > 0 {
		n := copy(dd.buf, dd.buf[released:])
		for i := n; i < len(dd.buf); i++ {
			dd.buf[i] = dllEntry{}
		}
		dd.buf = dd.buf[:n]
		dd.replays = 0
		dd.nakSeq = 0
		dd.timerGen++ // cancel the outstanding timer
		if len(dd.buf) > 0 {
			l.armReplayTimer(di)
		}
		d, _ := l.dirByIndex(di)
		l.pump(now, d, di)
	}
	if nak && dd.nakSeq != ackSeq && len(dd.buf) > 0 {
		dd.nakSeq = ackSeq
		l.replay(now, di)
	}
}

// armReplayTimer starts (or restarts) direction di's replay timer.
func (l *Link) armReplayTimer(di int) {
	dd := &l.dll.dirs[di]
	dd.timerGen++
	gen := dd.timerGen
	l.eng.AfterComp(l.comp, l.dll.params.ReplayTimeout, func() {
		if dd.dead || gen != dd.timerGen || len(dd.buf) == 0 {
			return
		}
		dd.nakSeq = 0 // a timeout replay clears the NAK guard
		l.replay(l.eng.Now(), di)
	})
}

// replay retransmits every unacknowledged frame of direction di
// (go-back-N), or declares the link dead once the budget is exhausted.
func (l *Link) replay(now sim.Time, di int) {
	dd := &l.dll.dirs[di]
	dd.replays++
	if dd.replays > l.dll.params.MaxReplays {
		l.dieDLL(now)
		return
	}
	l.dll.inj.NoteReplay()
	d, _ := l.dirByIndex(di)
	for _, e := range dd.buf {
		e := e
		l.sendFrame(now, d, di, e, true)
	}
	l.armReplayTimer(di)
}

// dieDLL declares the whole cable dead: both directions stop, pending
// traffic is salvaged in order (replay buffer, then credit queue) and
// handed to each side's dead handler, and credits are reset so nothing
// underflows later.
func (l *Link) dieDLL(now sim.Time) {
	l.dll.inj.NoteReplayExhausted()
	l.dll.inj.NoteLinkDead()
	for di := 0; di < 2; di++ {
		dd := &l.dll.dirs[di]
		if dd.dead {
			continue
		}
		dd.dead = true
		dd.timerGen++
		d, _ := l.dirByIndex(di)
		var salvaged []*TLP
		for _, e := range dd.buf {
			salvaged = append(salvaged, e.tlp)
		}
		for _, q := range d.waiting {
			salvaged = append(salvaged, q.t)
		}
		dd.buf = nil
		d.waiting = nil
		d.inFlight = 0
		if len(salvaged) == 0 {
			continue
		}
		switch {
		case l.dll.params.BreakSalvage:
			// The injected conservation bug: the TLPs vanish without a
			// Dropped attribution, which the ledger must flag at quiesce.
		case dd.onDead != nil:
			dd.onDead(now, salvaged)
		default:
			for _, t := range salvaged {
				if l.led != nil && t.LID != 0 {
					l.led.Dropped(now, t.LID, l.obsName, "link dead, no salvage handler")
				}
			}
		}
	}
}

// dirByIndex is the inverse of dir: index → direction state.
func (l *Link) dirByIndex(di int) (*linkDir, int) {
	if di == 0 {
		return &l.aToB, 0
	}
	return &l.bToA, 1
}
