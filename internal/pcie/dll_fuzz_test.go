package pcie

import (
	"testing"

	"tca/internal/fault"
	"tca/internal/sim"
	"tca/internal/units"
)

// FuzzDLLReplay drives one DLL-protected cable through a randomized fault
// profile — bit errors, swallowed frames, flat corruption, and an outage
// window that may be permanent — and checks the conservation contract the
// fabric ledger depends on:
//
//  1. deliveries arrive in send order with no duplicates (the receiver
//     dedups replays by sequence number);
//  2. every TLP sent is either delivered or salvaged by the dead handler —
//     nothing vanishes, whatever the link does;
//  3. salvaged TLPs keep their original order;
//  4. a TLP may appear in both lists only as delivered-then-salvaged (its
//     ACK was lost and the dying link handed back the unacknowledged copy).
func FuzzDLLReplay(f *testing.F) {
	f.Add(int64(1), uint16(0), uint16(0), uint16(0), uint8(0), uint8(0), uint8(20), uint8(3), uint8(4))
	f.Add(int64(2), uint16(999), uint16(0), uint16(0), uint8(1), uint8(0), uint8(5), uint8(2), uint8(1))  // permanent cut at t=0
	f.Add(int64(3), uint16(0), uint16(400), uint16(0), uint8(0), uint8(0), uint8(12), uint8(8), uint8(2)) // heavy drops, deep replay budget
	f.Add(int64(4), uint16(0), uint16(0), uint16(700), uint8(0), uint8(0), uint8(8), uint8(1), uint8(1))  // corruption with a one-replay budget
	f.Add(int64(5), uint16(50), uint16(50), uint16(50), uint8(9), uint8(5), uint8(30), uint8(4), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, berMil, dropMil, corruptMil uint16,
		downAtUs, downForUs, nTLPs, maxReplays, timeoutUs uint8) {
		prof := fault.Profile{
			Seed:    seed,
			BER:     float64(berMil%1000) / 999 * 1e-5,
			Drop:    float64(dropMil%1000) / 999,
			Corrupt: float64(corruptMil%1000) / 999,
		}
		// An odd downAt schedules an outage; downFor zero means permanent.
		if downAtUs%2 == 1 {
			prof.Down = []fault.DownWindow{{
				Link: "t",
				At:   units.Duration(downAtUs) * units.Microsecond,
				For:  units.Duration(downForUs%50) * units.Microsecond,
			}}
		}
		inj := fault.New(prof)
		eng, _, b, pa, _, l := testLink(t, LinkParams{Config: Gen2x8, Propagation: 100 * units.Nanosecond})
		dll := DefaultDLLParams()
		dll.MaxReplays = 1 + int(maxReplays%8)
		dll.ReplayTimeout = units.Duration(1+timeoutUs%10) * units.Microsecond
		l.EnableDLL("t", inj, dll)

		var salvaged []*TLP
		l.SetDeadHandler(pa, func(now sim.Time, tlps []*TLP) {
			salvaged = append(salvaged, tlps...)
		})

		n := 1 + int(nTLPs%32)
		for i := 0; i < n; i++ {
			pa.Send(eng.Now(), &TLP{Kind: MWr, Addr: Addr(i * 256), Data: make([]byte, 64)})
		}
		eng.Run()

		// (1) in-order, duplicate-free delivery.
		seen := make(map[Addr]bool, n)
		last := Addr(0)
		for i, p := range b.got {
			if seen[p.Addr] {
				t.Fatalf("TLP %v delivered twice", p.Addr)
			}
			seen[p.Addr] = true
			if i > 0 && p.Addr <= last {
				t.Fatalf("delivery %d (%v) out of order after %v", i, p.Addr, last)
			}
			last = p.Addr
		}
		// (3) salvage keeps original order, hands back each TLP once.
		salv := make(map[Addr]bool, len(salvaged))
		lastS := Addr(0)
		for i, p := range salvaged {
			if salv[p.Addr] {
				t.Fatalf("TLP %v salvaged twice", p.Addr)
			}
			salv[p.Addr] = true
			if i > 0 && p.Addr <= lastS {
				t.Fatalf("salvage %d (%v) out of order after %v", i, p.Addr, lastS)
			}
			lastS = p.Addr
		}
		// (2) conservation: delivered + salvaged covers every send. The
		// overlap (4) — delivered and then salvaged — is legal, so only
		// absence from both is a violation.
		for i := 0; i < n; i++ {
			a := Addr(i * 256)
			if !seen[a] && !salv[a] {
				t.Fatalf("TLP %v (of %d) neither delivered nor salvaged: delivered=%d salvaged=%d",
					a, n, len(b.got), len(salvaged))
			}
		}
	})
}
