package pcie

import (
	"testing"

	"tca/internal/fault"
	"tca/internal/sim"
	"tca/internal/units"
)

// TestDLLFaultFreeDeliversInOrder: an enabled DLL on a healthy link must
// deliver everything exactly once, in order.
func TestDLLFaultFreeDeliversInOrder(t *testing.T) {
	eng, _, b, pa, _, l := testLink(t, LinkParams{Config: Gen2x8, Propagation: 100 * units.Nanosecond})
	l.EnableDLL("t", nil, DefaultDLLParams())
	for i := 0; i < 50; i++ {
		pa.Send(eng.Now(), &TLP{Kind: MWr, Addr: Addr(i * 256), Data: make([]byte, 64)})
	}
	eng.Run()
	if len(b.got) != 50 {
		t.Fatalf("delivered %d, want 50", len(b.got))
	}
	for i, p := range b.got {
		if p.Addr != Addr(i*256) {
			t.Fatalf("packet %d has addr %v — reordered", i, p.Addr)
		}
	}
}

// TestDLLReplayRecoversFlap: frames blackholed during a short outage must
// be replayed and delivered after the link comes back, without
// duplicates, and the injector must count the replay rounds.
func TestDLLReplayRecoversFlap(t *testing.T) {
	inj := fault.New(fault.Profile{Down: []fault.DownWindow{
		{Link: "t", At: 0, For: 2 * units.Microsecond},
	}})
	eng, _, b, pa, _, l := testLink(t, LinkParams{Config: Gen2x8, Propagation: 100 * units.Nanosecond})
	l.EnableDLL("t", inj, DLLParams{
		ReplayTimeout: 5 * units.Microsecond, // first replay lands after the flap
		MaxReplays:    8,
	})
	for i := 0; i < 4; i++ {
		pa.Send(eng.Now(), &TLP{Kind: MWr, Addr: Addr(i * 256), Data: make([]byte, 64)})
	}
	eng.Run()
	if len(b.got) != 4 {
		t.Fatalf("delivered %d, want 4", len(b.got))
	}
	for i, p := range b.got {
		if p.Addr != Addr(i*256) {
			t.Fatalf("packet %d has addr %v — replay reordered or duplicated", i, p.Addr)
		}
	}
	c := inj.Counts()
	if c.Replays == 0 {
		t.Fatal("flap recovered without any replay counted")
	}
	if c.LinkDown != 0 {
		t.Fatalf("short flap killed the link: %+v", c)
	}
	if l.DeadFrom(pa) {
		t.Fatal("link dead after recoverable flap")
	}
}

// TestDLLNakTriggersReplay: a corrupted frame must be NAKed and replayed
// rather than waiting for the replay timer.
func TestDLLNakTriggersReplay(t *testing.T) {
	// Corrupt = 1.0 would corrupt the replays too; instead corrupt with
	// certainty only as long as fewer than one corruption has been drawn.
	// A flat rate can't express that, so use certainty plus a replay
	// budget and check the link dies after exactly MaxReplays+1 attempts.
	inj := fault.New(fault.Profile{Corrupt: 1})
	eng, _, b, pa, _, l := testLink(t, LinkParams{Config: Gen2x8})
	l.EnableDLL("t", inj, DLLParams{MaxReplays: 3})
	pa.Send(eng.Now(), &TLP{Kind: MWr, Addr: 0x40, Data: make([]byte, 64)})
	eng.Run()
	if len(b.got) != 0 {
		t.Fatal("always-corrupt link delivered a packet")
	}
	c := inj.Counts()
	if c.Replays != 3 {
		t.Fatalf("replays = %d, want 3 (the budget)", c.Replays)
	}
	if c.ReplayExhausted != 1 || c.LinkDown != 1 {
		t.Fatalf("link did not die after exhausting replays: %+v", c)
	}
	if !l.DeadFrom(pa) {
		t.Fatal("DeadFrom false after replay exhaustion")
	}
}

// TestDLLPermanentCutSalvagesTraffic: a permanent outage must kill the
// link after the replay budget and hand every undelivered TLP to the dead
// handler in original order; later sends divert straight to the handler.
func TestDLLPermanentCutSalvagesTraffic(t *testing.T) {
	inj := fault.New(fault.Profile{Down: []fault.DownWindow{{Link: "t", At: 0}}})
	eng, _, b, pa, _, l := testLink(t, LinkParams{Config: Gen2x8, CreditTLPs: 2})
	l.EnableDLL("t", inj, DLLParams{ReplayTimeout: units.Microsecond, MaxReplays: 2})
	var salvaged []*TLP
	var deadAt sim.Time
	l.SetDeadHandler(pa, func(now sim.Time, tlps []*TLP) {
		deadAt = now
		salvaged = append(salvaged, tlps...)
	})
	// 5 TLPs: 2 occupy credits (replay buffer), 3 queue behind them.
	for i := 0; i < 5; i++ {
		pa.Send(eng.Now(), &TLP{Kind: MWr, Addr: Addr(i * 256), Data: make([]byte, 64)})
	}
	eng.Run()
	if len(b.got) != 0 {
		t.Fatal("cut link delivered a packet")
	}
	if len(salvaged) != 5 {
		t.Fatalf("salvaged %d TLPs, want all 5", len(salvaged))
	}
	for i, p := range salvaged {
		if p.Addr != Addr(i*256) {
			t.Fatalf("salvaged[%d] = %v — order lost", i, p.Addr)
		}
	}
	if deadAt == 0 {
		t.Fatal("dead handler saw zero time")
	}
	// A send after death must divert to the handler, not panic or vanish.
	late := &TLP{Kind: MWr, Addr: 0xbeef00, Data: make([]byte, 64)}
	pa.Send(eng.Now(), late)
	if len(salvaged) != 6 || salvaged[5] != late {
		t.Fatal("post-death send not diverted to dead handler")
	}
	if got := inj.Counts().LinkDown; got != 1 {
		t.Fatalf("LinkDown = %d, want 1", got)
	}
}

// TestDLLBackpressureByReplayBuffer: a full replay buffer must queue new
// sends (like credit exhaustion) and drain them as ACKs release entries.
func TestDLLBackpressureByReplayBuffer(t *testing.T) {
	eng, _, b, pa, _, l := testLink(t, LinkParams{Config: Gen2x8, CreditTLPs: 32})
	l.EnableDLL("t", nil, DLLParams{ReplayBufferTLPs: 2})
	for i := 0; i < 10; i++ {
		pa.Send(eng.Now(), &TLP{Kind: MWr, Addr: Addr(i * 256), Data: make([]byte, 64)})
	}
	if q := l.QueuedTLPs(pa); q != 8 {
		t.Fatalf("queued %d behind a 2-deep replay buffer, want 8", q)
	}
	eng.Run()
	if len(b.got) != 10 {
		t.Fatalf("delivered %d, want 10", len(b.got))
	}
	for i, p := range b.got {
		if p.Addr != Addr(i*256) {
			t.Fatalf("packet %d has addr %v — reordered", i, p.Addr)
		}
	}
}

// TestDLLDuplexIndependence: killing traffic is per-cable — but fault
// windows blackhole both directions, and death declared by one direction
// marks both dead.
func TestDLLBothDirectionsDie(t *testing.T) {
	inj := fault.New(fault.Profile{Down: []fault.DownWindow{{Link: "t", At: 0}}})
	eng, a, b, pa, pb, l := testLink(t, LinkParams{Config: Gen2x8})
	l.EnableDLL("t", inj, DLLParams{ReplayTimeout: units.Microsecond, MaxReplays: 1})
	pa.Send(eng.Now(), &TLP{Kind: MWr, Addr: 0x100, Data: make([]byte, 64)})
	eng.Run()
	if len(a.got)+len(b.got) != 0 {
		t.Fatal("cut link delivered")
	}
	if !l.DeadFrom(pa) || !l.DeadFrom(pb) {
		t.Fatal("death must cover both directions of the cable")
	}
}

// TestCancelAllReleasesTags: CancelAll returns every pending tag to the
// free pool without firing callbacks, deterministically.
func TestCancelAllReleasesTags(t *testing.T) {
	tt := NewTagTable(8)
	fired := false
	for i := 0; i < 5; i++ {
		if _, ok := tt.Alloc(64, func([]byte) { fired = true }); !ok {
			t.Fatal("alloc failed")
		}
	}
	if n := tt.CancelAll(); n != 5 {
		t.Fatalf("cancelled %d, want 5", n)
	}
	if fired {
		t.Fatal("CancelAll ran a completion callback")
	}
	if tt.Outstanding() != 0 || tt.Free() != 8 {
		t.Fatalf("outstanding=%d free=%d after CancelAll", tt.Outstanding(), tt.Free())
	}
	// The table must still work afterwards.
	tag, ok := tt.Alloc(4, func(data []byte) { fired = len(data) == 4 })
	if !ok {
		t.Fatal("alloc after CancelAll failed")
	}
	if err := tt.HandleCompletion(&TLP{Kind: CplD, Tag: tag, Data: make([]byte, 4), Last: true}); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("completion after CancelAll did not fire")
	}
}
