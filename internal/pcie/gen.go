// Package pcie models the PCI Express transport the TCA architecture is
// built on: link generations and widths, Transaction Layer Packets (TLPs),
// point-to-point links with serialization and credit-based flow control,
// address ranges and maps, switches, and completion tag tracking.
//
// The model is functional — Memory Write TLPs carry real bytes to real
// simulated memories, Memory Reads produce Completions with Data — and
// timed: every packet spends wire time derived from the link's generation,
// lane count, encoding efficiency, and per-packet protocol overhead, using
// exactly the arithmetic of §IV-A of the paper:
//
//	Gen2 x8 = 5 GHz × 8 lanes × 8b/10b = 4 Gbytes/sec raw,
//	effective = 4 GB/s × 256/(256+16+2+4+1+1) = 3.66 Gbytes/sec.
package pcie

import (
	"fmt"

	"tca/internal/units"
)

// Generation identifies a PCI Express generation (lane speed + encoding).
type Generation int

// Supported PCIe generations.
const (
	Gen1 Generation = 1 // 2.5 GT/s, 8b/10b
	Gen2 Generation = 2 // 5.0 GT/s, 8b/10b — PEACH2's hard-IP ports
	Gen3 Generation = 3 // 8.0 GT/s, 128b/130b — host CPU lanes on HA-PACS
)

// String names the generation like the paper ("Gen2").
func (g Generation) String() string { return fmt.Sprintf("Gen%d", int(g)) }

// TransferRate reports the per-lane signalling rate in transfers per second
// (1 GT/s = 1e9).
func (g Generation) TransferRate() float64 {
	switch g {
	case Gen1:
		return 2.5e9
	case Gen2:
		return 5.0e9
	case Gen3:
		return 8.0e9
	default:
		panic(fmt.Sprintf("pcie: unknown generation %d", int(g)))
	}
}

// EncodingEfficiency reports the fraction of raw bits that carry data after
// line coding: 8b/10b for Gen1/2, 128b/130b for Gen3.
func (g Generation) EncodingEfficiency() float64 {
	switch g {
	case Gen1, Gen2:
		return 8.0 / 10.0
	case Gen3:
		return 128.0 / 130.0
	default:
		panic(fmt.Sprintf("pcie: unknown generation %d", int(g)))
	}
}

// LinkConfig describes a link's generation and width ("Gen2 x8").
type LinkConfig struct {
	Gen   Generation
	Lanes int
}

// Common configurations in the paper.
var (
	// Gen2x8 is the configuration of all four PEACH2 ports: 4 GB/s raw.
	Gen2x8 = LinkConfig{Gen: Gen2, Lanes: 8}
	// Gen2x16 is the physical Port S connector (only 8 data lanes wired).
	Gen2x16 = LinkConfig{Gen: Gen2, Lanes: 16}
	// Gen3x8 is the InfiniBand NIC slot on the base cluster.
	Gen3x8 = LinkConfig{Gen: Gen3, Lanes: 8}
	// Gen3x16 is a GPU slot.
	Gen3x16 = LinkConfig{Gen: Gen3, Lanes: 16}
)

// Validate reports whether the configuration is a legal PCIe link.
func (c LinkConfig) Validate() error {
	switch c.Gen {
	case Gen1, Gen2, Gen3:
	default:
		return fmt.Errorf("pcie: invalid generation %d", int(c.Gen))
	}
	switch c.Lanes {
	case 1, 2, 4, 8, 12, 16, 32:
		return nil
	default:
		return fmt.Errorf("pcie: invalid lane count x%d", c.Lanes)
	}
}

// String formats like "Gen2 x8".
func (c LinkConfig) String() string { return fmt.Sprintf("%v x%d", c.Gen, c.Lanes) }

// RawBandwidth reports the post-encoding byte rate of the link: the "4
// Gbytes/sec" figure the paper quotes for Gen2 x8. Each transfer carries one
// bit per lane; encoding efficiency removes the 8b/10b or 128b/130b tax.
func (c LinkConfig) RawBandwidth() units.Bandwidth {
	bitsPerSec := c.Gen.TransferRate() * float64(c.Lanes) * c.Gen.EncodingEfficiency()
	return units.Bandwidth(bitsPerSec / 8)
}

// EffectiveBandwidth reports the peak payload rate once every MaxPayload
// bytes pay the per-TLP protocol overhead — the paper's 3.66 GB/s formula.
func (c LinkConfig) EffectiveBandwidth(maxPayload units.ByteSize) units.Bandwidth {
	if maxPayload <= 0 {
		panic(fmt.Sprintf("pcie: non-positive max payload %d", maxPayload))
	}
	frac := maxPayload.Bytes() / (maxPayload + TLPOverhead).Bytes()
	return units.Bandwidth(c.RawBandwidth().BytesPerSec() * frac)
}

// Role distinguishes the two ends of a PCIe link. A link must join exactly
// one Root Complex (or switch downstream port) to one Endpoint (or switch
// upstream port); two RCs cannot talk directly — the reason PEACH2 exists.
type Role int

// Link roles.
const (
	RoleRC Role = iota // Root Complex side (or downstream switch port)
	RoleEP             // Endpoint side (or upstream switch port)
)

// String names the role as the paper abbreviates it.
func (r Role) String() string {
	switch r {
	case RoleRC:
		return "RC"
	case RoleEP:
		return "EP"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}
