package pcie

import (
	"math"
	"testing"

	"tca/internal/units"
)

func TestGen2x8RawBandwidthIs4GBps(t *testing.T) {
	// §IV-A: "PCIe Gen2 uses a 5-GHz signal and provides 4 Gbytes/sec
	// with eight lanes due to 8b/10b encoding".
	got := Gen2x8.RawBandwidth()
	if got != 4*units.GBPerSec {
		t.Fatalf("Gen2 x8 raw bandwidth = %v, want 4GB/s", got)
	}
}

func TestEffectiveBandwidthMatchesPaperFormula(t *testing.T) {
	// §IV-A: 4 GB/s × 256/(256+16+2+4+1+1) = 3.66 GB/s.
	got := Gen2x8.EffectiveBandwidth(256)
	want := 4e9 * 256.0 / 280.0
	if math.Abs(got.GBps()-want/1e9) > 1e-9 {
		t.Fatalf("effective bandwidth = %v, want %.4f GB/s", got, want/1e9)
	}
	if got.GBps() < 3.65 || got.GBps() > 3.66 {
		t.Fatalf("effective bandwidth %v outside the paper's 3.66 GB/s figure", got)
	}
}

func TestTLPOverheadIs24Bytes(t *testing.T) {
	if TLPOverhead != 24 {
		t.Fatalf("TLPOverhead = %d, want 24 (16+2+4+1+1)", TLPOverhead)
	}
}

func TestGenerationRatesAndEncoding(t *testing.T) {
	cases := []struct {
		gen  Generation
		rate float64
		eff  float64
	}{
		{Gen1, 2.5e9, 0.8},
		{Gen2, 5.0e9, 0.8},
		{Gen3, 8.0e9, 128.0 / 130.0},
	}
	for _, c := range cases {
		if got := c.gen.TransferRate(); got != c.rate {
			t.Errorf("%v TransferRate = %v, want %v", c.gen, got, c.rate)
		}
		if got := c.gen.EncodingEfficiency(); math.Abs(got-c.eff) > 1e-12 {
			t.Errorf("%v EncodingEfficiency = %v, want %v", c.gen, got, c.eff)
		}
	}
}

func TestGen3x16BandwidthClass(t *testing.T) {
	// A Gen3 x16 GPU slot is ~15.75 GB/s.
	got := Gen3x16.RawBandwidth().GBps()
	if got < 15.7 || got > 15.8 {
		t.Fatalf("Gen3 x16 bandwidth = %v GB/s, want ~15.75", got)
	}
}

func TestLinkConfigValidate(t *testing.T) {
	valid := []LinkConfig{Gen2x8, Gen2x16, Gen3x8, {Gen1, 1}, {Gen3, 32}}
	for _, c := range valid {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", c, err)
		}
	}
	invalid := []LinkConfig{{Gen2, 3}, {Gen2, 0}, {Generation(4), 8}, {Generation(0), 8}}
	for _, c := range invalid {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
}

func TestLinkConfigString(t *testing.T) {
	if got := Gen2x8.String(); got != "Gen2 x8" {
		t.Fatalf("String() = %q, want %q", got, "Gen2 x8")
	}
}

func TestRoleString(t *testing.T) {
	if RoleRC.String() != "RC" || RoleEP.String() != "EP" {
		t.Fatalf("Role strings wrong: %v %v", RoleRC, RoleEP)
	}
}

func TestEffectiveBandwidthPanicsOnBadPayload(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-positive max payload")
		}
	}()
	Gen2x8.EffectiveBandwidth(0)
}
