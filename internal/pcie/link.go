package pcie

import (
	"fmt"

	"tca/internal/obsv"
	"tca/internal/prof"
	"tca/internal/sim"
	"tca/internal/units"
)

// Device is anything attached to a PCIe port: a root complex, a memory
// endpoint, a GPU, a switch, or a PEACH2 chip.
type Device interface {
	// DevName identifies the device in traces and errors.
	DevName() string
	// Accept delivers a TLP that arrived on port p at time now. The
	// return value is how long the ingress buffer slot stays occupied;
	// the link withholds that flow-control credit until it elapses, which
	// is how a slow sink backpressures a fast sender.
	Accept(now sim.Time, t *TLP, p *Port) units.Duration
}

// Port is one end of a link, owned by a device. A device with several ports
// (PEACH2 has four) distinguishes them by the Label it assigned.
type Port struct {
	owner Device
	link  *Link
	role  Role
	// Label names the port on its device ("N", "E", "W", "S", "up",
	// "down0", ...).
	Label string
}

// NewPort creates an unconnected port for owner.
func NewPort(owner Device, label string, role Role) *Port {
	if owner == nil {
		panic("pcie: NewPort with nil owner")
	}
	return &Port{owner: owner, Label: label, role: role}
}

// Owner returns the device the port belongs to.
func (p *Port) Owner() Device { return p.owner }

// Role reports which side of the link the port plays.
func (p *Port) Role() Role { return p.role }

// SetRole reconfigures the port's role. PEACH2's Port S is "selectable as RC
// or EP" (§III-D); reconfiguration is only legal while disconnected.
func (p *Port) SetRole(r Role) {
	if p.link != nil {
		panic(fmt.Sprintf("pcie: SetRole on connected port %v", p))
	}
	p.role = r
}

// Connected reports whether the port has a link.
func (p *Port) Connected() bool { return p.link != nil }

// Link returns the attached link, or nil.
func (p *Port) Link() *Link { return p.link }

// Peer returns the port at the other end of the link, or nil when
// disconnected.
func (p *Port) Peer() *Port {
	if p.link == nil {
		return nil
	}
	if p.link.a == p {
		return p.link.b
	}
	return p.link.a
}

// Send transmits a TLP out of this port at time now.
func (p *Port) Send(now sim.Time, t *TLP) {
	if p.link == nil {
		panic(fmt.Sprintf("pcie: Send on disconnected port %v", p))
	}
	p.link.send(now, p, t)
}

// String formats as "device.label(ROLE)".
func (p *Port) String() string {
	return fmt.Sprintf("%s.%s(%v)", p.owner.DevName(), p.Label, p.role)
}

// LinkParams tunes a link's timing and flow control.
type LinkParams struct {
	Config LinkConfig
	// Propagation is the one-way flight latency: SerDes, equalization,
	// and for external cables the cable itself.
	Propagation units.Duration
	// MaxPayload bounds MWr/CplD payloads. Zero means DefaultMaxPayload.
	MaxPayload units.ByteSize
	// CreditTLPs is the per-direction count of in-flight-or-undrained
	// TLPs before the sender stalls (receiver buffer depth in packets).
	// Zero means DefaultCreditTLPs.
	CreditTLPs int
}

// DefaultCreditTLPs is a generous ingress buffer: 32 packets ≈ 8 KiB of
// posted data, matching the multi-kilobyte FPGA RX FIFOs.
const DefaultCreditTLPs = 32

func (p LinkParams) withDefaults() LinkParams {
	if p.MaxPayload == 0 {
		p.MaxPayload = DefaultMaxPayload
	}
	if p.CreditTLPs == 0 {
		p.CreditTLPs = DefaultCreditTLPs
	}
	return p
}

// Link is a full-duplex point-to-point PCIe link: two independent directions
// each with a serializer (one packet on the wire at a time) and a credit
// pool (receiver buffer slots).
type Link struct {
	eng    *sim.Engine
	params LinkParams
	a, b   *Port
	aToB   linkDir
	bToA   linkDir

	// Stats
	tlpsSent  [2]uint64
	bytesSent [2]units.ByteSize

	// dll is the optional data-link layer (see dll.go). Nil means the
	// original lossless fast path — same events, same schedule.
	dll *dll

	// deliverFree recycles the two-phase delivery actions of the lossless
	// fast path, so steady-state traffic schedules arrival and drain
	// without allocating.
	deliverFree []*deliverAction

	// Observability (nil when disabled — all updates are no-ops then).
	obsName  string
	rec      *obsv.Recorder
	led      obsv.Ledger
	mTLPs    [2]*obsv.Counter
	mBytes   [2]*obsv.Counter
	mStalled [2]*obsv.Counter

	// comp is the link's host-time attribution tag (0 when unprofiled):
	// delivery, credit-release, and DLL replay events charge to it.
	comp sim.CompID
}

// queuedTLP is one credit- or replay-stalled packet plus the cause it is
// blocked on, so the queue-exit span event can attribute the whole wait.
type queuedTLP struct {
	t     *TLP
	cause obsv.Cause
}

type linkDir struct {
	wire     sim.Serializer
	inFlight int
	waiting  []queuedTLP
	dst      *Port
	// reserved accumulates every wire reservation, so telemetry can
	// compute the direction's exact busy time up to any instant as
	// reserved − max(0, nextFree − now).
	reserved units.Duration
}

// Connect joins two ports with a link. Exactly one port must be RC-side and
// one EP-side — the PCIe constraint that motivates PEACH2's fixed E=EP,
// W=RC ring design.
func Connect(eng *sim.Engine, a, b *Port, params LinkParams) (*Link, error) {
	if eng == nil {
		return nil, fmt.Errorf("pcie: Connect with nil engine")
	}
	if a == nil || b == nil {
		return nil, fmt.Errorf("pcie: Connect with nil port")
	}
	if a.link != nil || b.link != nil {
		return nil, fmt.Errorf("pcie: port already connected (%v / %v)", a, b)
	}
	if a.role == b.role {
		return nil, fmt.Errorf("pcie: cannot link two %v ports (%v — %v): a PCIe link joins one RC to one EP", a.role, a, b)
	}
	if err := params.Config.Validate(); err != nil {
		return nil, err
	}
	params = params.withDefaults()
	l := &Link{eng: eng, params: params, a: a, b: b}
	l.aToB.dst = b
	l.bToA.dst = a
	a.link = l
	b.link = l
	return l, nil
}

// MustConnect is Connect for statically-built topologies.
func MustConnect(eng *sim.Engine, a, b *Port, params LinkParams) *Link {
	l, err := Connect(eng, a, b, params)
	if err != nil {
		panic(fmt.Sprintf("pcie: MustConnect: %v", err))
	}
	return l
}

// Params returns the link's configuration.
func (l *Link) Params() LinkParams { return l.params }

// Instrument attaches the link to an observability set under the given
// name: per-direction TLP/byte/credit-stall counters in the registry,
// StageLinkTx span events for traced packets, and telemetry probes for
// utilization, credit-queue depth, and in-flight TLPs. Direction labels
// follow the port order passed to Connect ("ab" = a→b).
func (l *Link) Instrument(set *obsv.Set, name string) {
	reg := set.Registry()
	l.obsName = name
	l.rec = set.Recorder()
	l.led = set.Ledger()
	for i, d := range dirLabels {
		l.mTLPs[i] = reg.Counter("link_tlps_tx", name, obsv.Label{Key: "dir", Value: d})
		l.mBytes[i] = reg.Counter("link_bytes_tx", name, obsv.Label{Key: "dir", Value: d})
		l.mStalled[i] = reg.Counter("link_credit_stalls", name, obsv.Label{Key: "dir", Value: d})
	}
	l.registerProbes(set.Sampler(), name)
}

// Profile registers the link with an engine profiler under name, so the
// host CPU cost of simulating its wire (delivery events, credit pumps, DLL
// replays) is attributed to it. Safe with a nil profiler.
func (l *Link) Profile(p *prof.Profiler, name string) {
	l.comp = p.Component(name)
}

// registerProbes wires the link's telemetry series. Probes only read
// direction state (the sampler contract), so sampling never perturbs wire
// timing.
func (l *Link) registerProbes(sam *obsv.Sampler, name string) {
	if sam == nil {
		return
	}
	dirs := [2]*linkDir{&l.aToB, &l.bToA}
	labels := [2]string{"ab", "ba"}
	for i, d := range dirs {
		d := d
		var lastBusy units.Duration
		sam.Register("link_util", name, labels[i], "%", func(now sim.Time, elapsed units.Duration) float64 {
			// Exact busy time through now: everything reserved on the
			// wire minus the portion booked beyond the present.
			busy := d.reserved
			if ahead := d.wire.NextFree().Sub(now); ahead > 0 {
				busy -= ahead
			}
			delta := busy - lastBusy
			lastBusy = busy
			if elapsed <= 0 {
				return 0
			}
			return 100 * float64(delta) / float64(elapsed)
		})
		sam.Register("link_queued", name, labels[i], "tlps", func(sim.Time, units.Duration) float64 {
			return float64(len(d.waiting))
		})
		sam.Register("link_inflight", name, labels[i], "tlps", func(sim.Time, units.Duration) float64 {
			return float64(d.inFlight)
		})
	}
}

// dirLabels are the direction labels shared by the registry counters and
// the conservation ledger: index 0 is the a→b direction of Connect order.
var dirLabels = [2]string{"ab", "ba"}

// Stats reports TLP and byte counts sent from port a→b and b→a.
func (l *Link) Stats() (tlps [2]uint64, bytes [2]units.ByteSize) {
	return l.tlpsSent, l.bytesSent
}

func (l *Link) dir(from *Port) (*linkDir, int) {
	switch from {
	case l.a:
		return &l.aToB, 0
	case l.b:
		return &l.bToA, 1
	default:
		panic(fmt.Sprintf("pcie: port %v does not belong to link", from))
	}
}

// send queues or transmits a TLP in the from-port's direction.
func (l *Link) send(now sim.Time, from *Port, t *TLP) {
	if err := t.Validate(l.params.MaxPayload); err != nil {
		panic(fmt.Sprintf("pcie: invalid TLP on %v: %v", from, err))
	}
	d, di := l.dir(from)
	if l.dll != nil && l.dll.dirs[di].dead {
		l.divertDead(now, di, t)
		return
	}
	l.tlpsSent[di]++
	l.bytesSent[di] += t.WireBytes()
	l.mTLPs[di].Inc()
	l.mBytes[di].Add(uint64(t.WireBytes()))
	if l.led != nil {
		if t.LID == 0 {
			t.LID = l.led.Born(now, t.Kind.String(), uint64(t.Addr), t.Data, l.obsName)
		}
		l.led.LinkBytes(l.obsName, dirLabels[di], uint64(t.WireBytes()))
	}
	if d.inFlight >= l.params.CreditTLPs || l.dllBufFull(di) {
		l.mStalled[di].Inc()
		cause := obsv.CauseCredits
		if l.dllBufFull(di) {
			cause = obsv.CauseReplay
		}
		if l.rec != nil && t.Txn != 0 {
			l.rec.Record(obsv.Event{At: now, Txn: t.Txn, Stage: obsv.StageQueueEnter,
				Where: l.obsName, Port: d.dst.Label, Addr: uint64(t.Addr), Cause: cause})
		}
		d.waiting = append(d.waiting, queuedTLP{t: t, cause: cause})
		return
	}
	l.transmit(now, d, di, t)
}

// transmit reserves wire time and schedules delivery. With a DLL the
// frame is sequenced through the replay buffer instead.
func (l *Link) transmit(now sim.Time, d *linkDir, di int, t *TLP) {
	if l.dll != nil {
		l.dllTransmit(now, d, di, t)
		return
	}
	d.inFlight++
	ser := units.TimeToSend(t.WireBytes(), l.params.Config.RawBandwidth())
	start := d.wire.Reserve(now, ser)
	d.reserved += ser
	if l.rec != nil && t.Txn != 0 {
		if start > now {
			// The wire is busy with earlier packets: the TLP holds a
			// credit but queues behind the serializer backlog.
			l.rec.Record(obsv.Event{At: now, Txn: t.Txn, Stage: obsv.StageQueueEnter,
				Where: l.obsName, Port: d.dst.Label, Addr: uint64(t.Addr), Cause: obsv.CauseRouteBusy})
			l.rec.Record(obsv.Event{At: start, Txn: t.Txn, Stage: obsv.StageQueueExit,
				Where: l.obsName, Port: d.dst.Label, Addr: uint64(t.Addr), Cause: obsv.CauseRouteBusy})
		}
		l.rec.Record(obsv.Event{At: start, Txn: t.Txn, Stage: obsv.StageLinkTx,
			Where: l.obsName, Port: d.dst.Label, Addr: uint64(t.Addr)})
	}
	arrive := start.Add(ser).Add(l.params.Propagation)
	l.eng.AtAction(l.comp, arrive, l.newDeliver(d, di, t))
}

// deliverAction is the pooled two-phase delivery event of the lossless fast
// path: phase one hands the TLP to the receiving device and reschedules
// itself for the drain delay; phase two returns the flow-control credit and
// pumps the queue. It replaces the pair of closures that used to make every
// link hop cost two heap allocations — the same two events now run off one
// recycled struct.
type deliverAction struct {
	l        *Link
	d        *linkDir
	di       int
	t        *TLP
	draining bool
}

func (l *Link) newDeliver(d *linkDir, di int, t *TLP) *deliverAction {
	if n := len(l.deliverFree) - 1; n >= 0 {
		a := l.deliverFree[n]
		l.deliverFree[n] = nil
		l.deliverFree = l.deliverFree[:n]
		a.l, a.d, a.di, a.t = l, d, di, t
		return a
	}
	return &deliverAction{l: l, d: d, di: di, t: t}
}

// RunAction implements sim.Action.
func (a *deliverAction) RunAction(now sim.Time) {
	if !a.draining {
		t := a.t
		a.t = nil // the receiver owns (and may release) the packet now
		drain := a.d.dst.owner.Accept(now, t, a.d.dst)
		if drain < 0 {
			panic(fmt.Sprintf("pcie: negative drain %v from %s", drain, a.d.dst.owner.DevName()))
		}
		a.draining = true
		a.l.eng.AfterAction(a.l.comp, drain, a)
		return
	}
	l, d, di := a.l, a.d, a.di
	*a = deliverAction{}
	l.deliverFree = append(l.deliverFree, a)
	d.inFlight--
	if d.inFlight < 0 {
		panic("pcie: credit underflow")
	}
	l.pump(now, d, di)
}

// pump moves queued TLPs onto the wire as capacity frees up. Without a
// DLL exactly one packet is pumped per credit release (the original
// schedule); with one, a cumulative ACK can release several replay-buffer
// slots at once, so pump loops until a limit binds again.
func (l *Link) pump(now sim.Time, d *linkDir, di int) {
	for len(d.waiting) > 0 && d.inFlight < l.params.CreditTLPs && !l.dllBufFull(di) {
		next := d.waiting[0]
		copy(d.waiting, d.waiting[1:])
		d.waiting[len(d.waiting)-1] = queuedTLP{}
		d.waiting = d.waiting[:len(d.waiting)-1]
		if l.rec != nil && next.t.Txn != 0 {
			l.rec.Record(obsv.Event{At: now, Txn: next.t.Txn, Stage: obsv.StageQueueExit,
				Where: l.obsName, Port: d.dst.Label, Addr: uint64(next.t.Addr), Cause: next.cause})
		}
		l.transmit(now, d, di, next.t)
		if l.dll == nil {
			return
		}
	}
}

// InFlight reports the occupied credit slots in the direction out of from.
func (l *Link) InFlight(from *Port) int {
	d, _ := l.dir(from)
	return d.inFlight
}

// QueuedTLPs reports how many packets wait for credits in the direction out
// of from.
func (l *Link) QueuedTLPs(from *Port) int {
	d, _ := l.dir(from)
	return len(d.waiting)
}
