package pcie

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tca/internal/sim"
	"tca/internal/units"
)

// Property: for any random mix of packet sizes and inter-send gaps, the
// link delivers every packet, in order, with total payload conserved, and
// never before the minimum possible arrival time.
func TestQuickLinkDeliveryConservation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%50) + 1
		eng := sim.NewEngine()
		src := &sink{name: "src"}
		dst := &sink{name: "dst"}
		pa := NewPort(src, "out", RoleRC)
		pb := NewPort(dst, "in", RoleEP)
		params := LinkParams{
			Config:      Gen2x8,
			Propagation: units.Duration(rng.Intn(200)) * units.Nanosecond,
			CreditTLPs:  rng.Intn(8) + 1,
		}
		MustConnect(eng, pa, pb, params)
		dst.drain = units.Duration(rng.Intn(100)) * units.Nanosecond

		var sentBytes units.ByteSize
		for i := 0; i < n; i++ {
			size := rng.Intn(256) + 1
			data := make([]byte, size)
			sentBytes += units.ByteSize(size)
			eng.After(units.Duration(rng.Intn(500))*units.Nanosecond, func() {
				pa.Send(eng.Now(), &TLP{Kind: MWr, Addr: Addr(i), Data: data})
			})
		}
		eng.Run()
		if len(dst.got) != n {
			return false
		}
		var gotBytes units.ByteSize
		for i, p := range dst.got {
			gotBytes += p.PayloadLen()
			if i > 0 && dst.at[i] < dst.at[i-1] {
				return false // reordered in time
			}
		}
		return gotBytes == sentBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: with a fast sink, the last arrival time is exactly the wire
// serialization of all packets (plus propagation) when they are sent
// back-to-back — the link never idles with work queued.
func TestQuickLinkWorkConserving(t *testing.T) {
	f := func(nRaw uint8, sizeRaw uint8) bool {
		n := int(nRaw%20) + 1
		size := int(sizeRaw%255) + 1
		eng := sim.NewEngine()
		src := &sink{name: "src"}
		dst := &sink{name: "dst"}
		pa := NewPort(src, "out", RoleRC)
		pb := NewPort(dst, "in", RoleEP)
		MustConnect(eng, pa, pb, LinkParams{Config: Gen2x8, Propagation: 50 * units.Nanosecond})
		for i := 0; i < n; i++ {
			pa.Send(0, &TLP{Kind: MWr, Addr: Addr(i), Data: make([]byte, size)})
		}
		eng.Run()
		perPkt := units.TimeToSend(units.ByteSize(size)+TLPOverhead, Gen2x8.RawBandwidth())
		want := sim.Time(units.Duration(n)*perPkt + 50*units.Nanosecond)
		return dst.at[len(dst.at)-1] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: credits bound the number of in-flight-plus-undrained packets at
// every instant.
func TestQuickLinkCreditBound(t *testing.T) {
	f := func(credRaw, nRaw uint8) bool {
		credits := int(credRaw%6) + 1
		n := int(nRaw%40) + 2
		eng := sim.NewEngine()
		src := &sink{name: "src"}
		dst := &sink{name: "dst"}
		pa := NewPort(src, "out", RoleRC)
		pb := NewPort(dst, "in", RoleEP)
		l := MustConnect(eng, pa, pb, LinkParams{Config: Gen2x8, CreditTLPs: credits})
		dst.drain = 500 * units.Nanosecond
		ok := true
		dst.onTLP = func(now sim.Time, tlp *TLP, p *Port) {
			if l.InFlight(pa) > credits {
				ok = false
			}
		}
		for i := 0; i < n; i++ {
			pa.Send(0, &TLP{Kind: MWr, Addr: Addr(i), Data: make([]byte, 64)})
		}
		eng.Run()
		return ok && len(dst.got) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
