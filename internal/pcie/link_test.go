package pcie

import (
	"testing"

	"tca/internal/sim"
	"tca/internal/units"
)

// sink is a test device that records arrivals and answers with a fixed
// drain time.
type sink struct {
	name  string
	drain units.Duration
	got   []*TLP
	at    []sim.Time
	onTLP func(now sim.Time, t *TLP, p *Port)
}

func (s *sink) DevName() string { return s.name }

func (s *sink) Accept(now sim.Time, t *TLP, p *Port) units.Duration {
	s.got = append(s.got, t)
	s.at = append(s.at, now)
	if s.onTLP != nil {
		s.onTLP(now, t, p)
	}
	return s.drain
}

func testLink(t *testing.T, params LinkParams) (*sim.Engine, *sink, *sink, *Port, *Port, *Link) {
	t.Helper()
	eng := sim.NewEngine()
	a := &sink{name: "A"}
	b := &sink{name: "B"}
	pa := NewPort(a, "out", RoleRC)
	pb := NewPort(b, "in", RoleEP)
	l, err := Connect(eng, pa, pb, params)
	if err != nil {
		t.Fatal(err)
	}
	return eng, a, b, pa, pb, l
}

func TestConnectRejectsSameRole(t *testing.T) {
	eng := sim.NewEngine()
	a := &sink{name: "A"}
	b := &sink{name: "B"}
	if _, err := Connect(eng, NewPort(a, "x", RoleRC), NewPort(b, "y", RoleRC), LinkParams{Config: Gen2x8}); err == nil {
		t.Fatal("RC-RC link accepted; PCIe forbids it (the reason PEACH2 exists)")
	}
	if _, err := Connect(eng, NewPort(a, "x", RoleEP), NewPort(b, "y", RoleEP), LinkParams{Config: Gen2x8}); err == nil {
		t.Fatal("EP-EP link accepted")
	}
}

func TestConnectRejectsReuse(t *testing.T) {
	eng := sim.NewEngine()
	a := &sink{name: "A"}
	b := &sink{name: "B"}
	c := &sink{name: "C"}
	pa := NewPort(a, "x", RoleRC)
	pb := NewPort(b, "y", RoleEP)
	MustConnect(eng, pa, pb, LinkParams{Config: Gen2x8})
	if _, err := Connect(eng, pa, NewPort(c, "z", RoleEP), LinkParams{Config: Gen2x8}); err == nil {
		t.Fatal("connected port reused")
	}
}

func TestConnectValidatesConfig(t *testing.T) {
	eng := sim.NewEngine()
	a := &sink{name: "A"}
	b := &sink{name: "B"}
	bad := LinkParams{Config: LinkConfig{Gen: Gen2, Lanes: 5}}
	if _, err := Connect(eng, NewPort(a, "x", RoleRC), NewPort(b, "y", RoleEP), bad); err == nil {
		t.Fatal("invalid lane count accepted")
	}
}

func TestDeliveryTiming(t *testing.T) {
	// A 256-byte MWr on Gen2 x8 with 100 ns propagation must arrive at
	// serialization (280 B / 4 GB/s = 70 ns) + 100 ns = 170 ns.
	params := LinkParams{Config: Gen2x8, Propagation: 100 * units.Nanosecond}
	eng, _, b, pa, _, _ := testLink(t, params)
	pa.Send(0, &TLP{Kind: MWr, Addr: 0x1000, Data: make([]byte, 256)})
	eng.Run()
	if len(b.got) != 1 {
		t.Fatalf("delivered %d TLPs, want 1", len(b.got))
	}
	want := sim.Time(170 * units.Nanosecond)
	if b.at[0] != want {
		t.Fatalf("arrival at %v, want %v", b.at[0], want)
	}
}

func TestSerializationQueuesBackToBackPackets(t *testing.T) {
	// Two 256 B packets sent at t=0 serialize: arrivals at 70 ns and 140 ns.
	params := LinkParams{Config: Gen2x8}
	eng, _, b, pa, _, _ := testLink(t, params)
	pa.Send(0, &TLP{Kind: MWr, Addr: 0x0, Data: make([]byte, 256)})
	pa.Send(0, &TLP{Kind: MWr, Addr: 0x100, Data: make([]byte, 256)})
	eng.Run()
	if len(b.at) != 2 {
		t.Fatalf("delivered %d, want 2", len(b.at))
	}
	if b.at[0] != sim.Time(70*units.Nanosecond) || b.at[1] != sim.Time(140*units.Nanosecond) {
		t.Fatalf("arrivals %v, want [70ns 140ns]", b.at)
	}
}

func TestInOrderDelivery(t *testing.T) {
	params := LinkParams{Config: Gen2x8}
	eng, _, b, pa, _, _ := testLink(t, params)
	for i := 0; i < 50; i++ {
		pa.Send(eng.Now(), &TLP{Kind: MWr, Addr: Addr(i * 256), Data: make([]byte, 64)})
	}
	eng.Run()
	if len(b.got) != 50 {
		t.Fatalf("delivered %d, want 50", len(b.got))
	}
	for i, p := range b.got {
		if p.Addr != Addr(i*256) {
			t.Fatalf("packet %d has addr %v — reordered", i, p.Addr)
		}
	}
}

func TestFullDuplex(t *testing.T) {
	// Simultaneous opposite-direction traffic must not serialize against
	// each other.
	params := LinkParams{Config: Gen2x8}
	eng, a, b, pa, pb, _ := testLink(t, params)
	pa.Send(0, &TLP{Kind: MWr, Addr: 0x0, Data: make([]byte, 256)})
	pb.Send(0, &TLP{Kind: MWr, Addr: 0x0, Data: make([]byte, 256)})
	eng.Run()
	if len(a.at) != 1 || len(b.at) != 1 {
		t.Fatalf("deliveries %d/%d, want 1/1", len(a.at), len(b.at))
	}
	if a.at[0] != b.at[0] {
		t.Fatalf("duplex directions interfered: %v vs %v", a.at[0], b.at[0])
	}
}

func TestCreditBackpressure(t *testing.T) {
	// Receiver drains each packet in 1 µs with only 2 credits: the third
	// packet cannot even start transmission until a credit frees.
	params := LinkParams{Config: Gen2x8, CreditTLPs: 2}
	eng, _, b, pa, _, l := testLink(t, params)
	b.drain = units.Microsecond
	for i := 0; i < 4; i++ {
		pa.Send(0, &TLP{Kind: MWr, Addr: Addr(i), Data: make([]byte, 4)})
	}
	if q := l.QueuedTLPs(pa); q != 2 {
		t.Fatalf("queued = %d immediately after send, want 2", q)
	}
	eng.Run()
	if len(b.at) != 4 {
		t.Fatalf("delivered %d, want 4", len(b.at))
	}
	// First two arrive at 7ns, 14ns (28B wire each); third must wait for
	// the first credit, returning at 7ns+1µs.
	third := b.at[2]
	if third < sim.Time(units.Microsecond) {
		t.Fatalf("third packet arrived at %v — credits not enforced", third)
	}
}

func TestCreditsDoNotLimitFastSink(t *testing.T) {
	// With zero drain the credit pool never empties: 100 packets flow at
	// pure wire rate.
	params := LinkParams{Config: Gen2x8, CreditTLPs: 4}
	eng, _, b, pa, _, _ := testLink(t, params)
	for i := 0; i < 100; i++ {
		pa.Send(0, &TLP{Kind: MWr, Addr: Addr(i * 64), Data: make([]byte, 232)}) // 256 B wire
	}
	eng.Run()
	last := b.at[len(b.at)-1]
	want := sim.Time(100 * 64 * units.Nanosecond) // 100 × 256 B / 4 GB/s
	if last != want {
		t.Fatalf("last arrival %v, want %v (wire-rate)", last, want)
	}
}

func TestSendInvalidTLPPanics(t *testing.T) {
	params := LinkParams{Config: Gen2x8}
	eng, _, _, pa, _, _ := testLink(t, params)
	_ = eng
	defer func() {
		if recover() == nil {
			t.Fatal("invalid TLP did not panic")
		}
	}()
	pa.Send(0, &TLP{Kind: MWr}) // empty write
}

func TestSendOnDisconnectedPortPanics(t *testing.T) {
	p := NewPort(&sink{name: "A"}, "x", RoleRC)
	defer func() {
		if recover() == nil {
			t.Fatal("disconnected Send did not panic")
		}
	}()
	p.Send(0, &TLP{Kind: MWr, Data: []byte{1}})
}

func TestPeerAndAccessors(t *testing.T) {
	params := LinkParams{Config: Gen2x8}
	_, a, _, pa, pb, l := testLink(t, params)
	if pa.Peer() != pb || pb.Peer() != pa {
		t.Fatal("Peer() broken")
	}
	if pa.Owner().DevName() != a.name {
		t.Fatal("Owner() broken")
	}
	if !pa.Connected() || pa.Link() != l {
		t.Fatal("Connected()/Link() broken")
	}
	if got := pa.String(); got != "A.out(RC)" {
		t.Fatalf("Port.String() = %q", got)
	}
}

func TestSetRoleOnlyWhileDisconnected(t *testing.T) {
	// PEACH2's Port S switches RC/EP before link-up (§III-D).
	p := NewPort(&sink{name: "S"}, "S", RoleEP)
	p.SetRole(RoleRC)
	if p.Role() != RoleRC {
		t.Fatal("SetRole did not apply")
	}
	params := LinkParams{Config: Gen2x8}
	eng := sim.NewEngine()
	MustConnect(eng, p, NewPort(&sink{name: "T"}, "S", RoleEP), params)
	defer func() {
		if recover() == nil {
			t.Fatal("SetRole on connected port did not panic")
		}
	}()
	p.SetRole(RoleEP)
}

func TestLinkStats(t *testing.T) {
	params := LinkParams{Config: Gen2x8}
	eng, _, _, pa, pb, l := testLink(t, params)
	pa.Send(0, &TLP{Kind: MWr, Addr: 0, Data: make([]byte, 100)})
	pb.Send(0, &TLP{Kind: MRd, Addr: 0, ReadLen: 64})
	eng.Run()
	tlps, bytes := l.Stats()
	if tlps[0] != 1 || tlps[1] != 1 {
		t.Fatalf("tlps = %v, want [1 1]", tlps)
	}
	if bytes[0] != 124 || bytes[1] != 24 {
		t.Fatalf("bytes = %v, want [124 24]", bytes)
	}
}

func TestDefaultsApplied(t *testing.T) {
	params := LinkParams{Config: Gen2x8}
	_, _, _, _, _, l := testLink(t, params)
	if l.Params().MaxPayload != DefaultMaxPayload {
		t.Fatalf("MaxPayload default = %d", l.Params().MaxPayload)
	}
	if l.Params().CreditTLPs != DefaultCreditTLPs {
		t.Fatalf("CreditTLPs default = %d", l.Params().CreditTLPs)
	}
}
