package pcie

// This file is the TLP free-list pool — the first consumer guarded by the
// poolsafety analyzer (internal/analysis/poolsafety). The lifecycle
// discipline it enforces statically:
//
//   - A TLP obtained from TLPPool.Get is owned by exactly one party at a
//     time; ownership transfers with the pointer (into a scheduled action,
//     a port Send, a device Accept).
//   - The party that terminates the packet (a sink: host DRAM, GPU memory,
//     chip-internal write, the completion handler) calls Release exactly
//     once. Releasing hands the struct and its payload scratch buffer back
//     for reuse; the sink must not touch any field afterwards.
//   - A party that stores the pointer somewhere that outlives normal
//     delivery — the DLL replay buffer, the chip's parked-packet list —
//     calls Pin first, which detaches the TLP from its pool so a later
//     Release is a no-op and the long-lived alias stays valid.
//
// Release and Pin are safe on any *TLP: packets built with plain composite
// literals (SplitWrite, SplitCompletion, tests) have no pool and both calls
// are no-ops, so sinks can release unconditionally.

// TLPPool is a LIFO free list of TLP values. It is not safe for concurrent
// use: a pool belongs to one engine's single-threaded event loop, and every
// model entity that produces packets (host node, PEACH2 chip) owns its own.
// Recycling is cross-entity within an engine — a packet released at its
// sink returns to the pool of the entity that produced it.
type TLPPool struct {
	free []*TLP

	// gets and reuses count pool traffic so tests can assert that steady
	// state stops allocating (reuses == gets after warmup).
	gets   uint64
	reuses uint64
}

// Get returns a zeroed TLP owned by the pool. The caller fills the public
// fields (payloads via SetPayload to reuse the retained scratch buffer, or
// by assigning Data directly when the bytes already have an owner) and
// hands the packet into the fabric; the sink releases it.
func (p *TLPPool) Get() *TLP {
	p.gets++
	if n := len(p.free) - 1; n >= 0 {
		t := p.free[n]
		p.free[n] = nil
		p.free = p.free[:n]
		t.pool = p
		p.reuses++
		return t
	}
	return &TLP{pool: p}
}

// Stats reports how many Gets the pool has served and how many of them were
// satisfied by reuse instead of a fresh allocation.
func (p *TLPPool) Stats() (gets, reuses uint64) { return p.gets, p.reuses }

// Free reports how many TLPs sit in the free list.
func (p *TLPPool) Free() int { return len(p.free) }

// SetPayload copies data into the TLP's retained scratch buffer and points
// Data at it. The copy decouples the packet from the caller's buffer; the
// scratch capacity survives Release, so steady-state traffic of a stable
// payload size allocates nothing.
func (t *TLP) SetPayload(data []byte) {
	t.scratch = append(t.scratch[:0], data...)
	t.Data = t.scratch
}

// Pooled reports whether t is currently owned by a pool — true only between
// Get and the matching Release/Pin. A router may mutate a pooled packet in
// place (it holds the only reference); an unpooled packet must be copied
// because its creator may retain it.
func (t *TLP) Pooled() bool { return t.pool != nil }

// Release returns t to the pool it came from, zeroing every public field
// but keeping the payload scratch capacity. No-op for unpooled or pinned
// packets, and for a second Release of the same packet — though poolsafety
// flags the latter statically, the runtime guard keeps the free list
// uncorrupted even if one slips through.
func (t *TLP) Release() {
	p := t.pool
	if p == nil {
		return
	}
	t.pool = nil
	sc := t.scratch
	*t = TLP{}
	t.scratch = sc[:0]
	p.free = append(p.free, t)
}

// Pin detaches t from its pool: a later Release becomes a no-op and the
// struct is never recycled. Callers that park a pointer beyond the normal
// delivery lifetime (DLL replay buffers, link-death salvage) pin first so
// the long-lived alias can never observe a reused packet.
func (t *TLP) Pin() { t.pool = nil }
