package pcie

import (
	"encoding/binary"
	"testing"
)

// FuzzRoute cross-checks AddressMap's sorted binary-search routing
// against a reference linear scan. The map is the routing primitive under
// every switch window, BAR assignment and the TCA global map, so its
// lookup must agree with the obvious O(n) implementation for arbitrary
// (and arbitrarily misaligned) window geometry.
//
// Input encoding: pairs of (base, sizeSelector) uint64s followed by one
// trailing probe address. Each sizeSelector's low 6 bits pick a
// power-of-two window size (mask + bounds style, like PEACH2's
// compare-only rules); bit 6 set instead derives an odd, unaligned size,
// so both the aligned fast path and crooked windows get exercised.
// Overlapping windows are expected to be rejected by Add; accepted ones
// form the reference rule list.
func FuzzRoute(f *testing.F) {
	// Seed corpus: the Fig. 4 geometry — a 512 GiB region at
	// 0x80_0000_0000 split into 16 × 32 GiB node windows — plus probes
	// at window edges, and a deliberately unaligned runt window.
	const regionBase = uint64(0x80_0000_0000)
	const nodeWin = uint64(32) << 30
	seed := make([]byte, 0, 8*9)
	for node := uint64(0); node < 4; node++ {
		seed = binary.LittleEndian.AppendUint64(seed, regionBase+node*nodeWin)
		seed = binary.LittleEndian.AppendUint64(seed, 35) // 1<<35 = 32 GiB
	}
	f.Add(append(seed, binary.LittleEndian.AppendUint64(nil, regionBase+nodeWin-1)...))
	f.Add(append(seed, binary.LittleEndian.AppendUint64(nil, regionBase+4*nodeWin)...))
	f.Add([]byte{})
	runt := binary.LittleEndian.AppendUint64(nil, 0x1000)
	runt = binary.LittleEndian.AppendUint64(runt, 64|3) // unaligned size path
	runt = binary.LittleEndian.AppendUint64(runt, 0x1001)
	f.Add(runt)

	f.Fuzz(func(t *testing.T, raw []byte) {
		// Cap the decoded rule count: the reference scan is O(n²) by
		// design, and an unbounded mutated input would turn that into a
		// spurious per-input timeout rather than a routing bug.
		if len(raw) > 64*16+8 {
			raw = raw[:64*16+8]
		}
		words := make([]uint64, 0, len(raw)/8)
		for i := 0; i+8 <= len(raw); i += 8 {
			words = append(words, binary.LittleEndian.Uint64(raw[i:]))
		}
		var probe Addr
		if len(words)%2 == 1 {
			probe = Addr(words[len(words)-1])
			words = words[:len(words)-1]
		}

		var m AddressMap
		var reference []routeRule // linear-scan ground truth, insertion order
		for i := 0; i+1 < len(words); i += 2 {
			r := Range{Base: Addr(words[i]), Size: windowSize(words[i+1])}
			err := m.Add(r, i/2)
			overlaps := false
			for _, e := range reference {
				if e.r.Overlaps(r) {
					overlaps = true
					break
				}
			}
			wraps := r.End() < r.Base
			switch {
			case r.Size == 0 || wraps || overlaps:
				if err == nil {
					t.Fatalf("Add(%v) accepted an empty/wrapping/overlapping window", r)
				}
			case err != nil:
				t.Fatalf("Add(%v) rejected a valid window: %v", r, err)
			default:
				reference = append(reference, routeRule{r: r, target: i / 2})
			}
		}
		if m.Len() != len(reference) {
			t.Fatalf("map has %d windows, reference has %d", m.Len(), len(reference))
		}

		for _, a := range probes(probe, reference) {
			wantTarget, wantRange, wantOK := -1, Range{}, false
			for _, e := range reference {
				if e.r.Contains(a) {
					wantTarget, wantRange, wantOK = e.target, e.r, true
					break
				}
			}
			got, gotRange, gotOK := m.Lookup(a)
			if gotOK != wantOK {
				t.Fatalf("Lookup(%v) ok=%t, linear scan says %t", a, gotOK, wantOK)
			}
			if !wantOK {
				continue
			}
			if got.(int) != wantTarget || gotRange != wantRange {
				t.Fatalf("Lookup(%v) = (%v, %v), linear scan says (%v, %v)",
					a, got, gotRange, wantTarget, wantRange)
			}
			if !gotRange.Contains(a) {
				t.Fatalf("Lookup(%v) returned window %v that does not contain it", a, gotRange)
			}
			// LookupRange on a 1-byte slice at a must agree.
			rt, rw, rok := m.LookupRange(Range{Base: a, Size: 1})
			if !rok || rt.(int) != wantTarget || rw != wantRange {
				t.Fatalf("LookupRange(%v+1) = (%v, %v, %t), want (%v, %v, true)",
					a, rt, rw, rok, wantTarget, wantRange)
			}
		}
	})
}

// windowSize decodes the fuzzer's size selector: low 6 bits pick a
// power-of-two exponent (mask-style aligned windows); bit 6 switches to
// an odd size derived from the selector so unaligned windows appear too.
func windowSize(sel uint64) uint64 {
	exp := sel & 63
	if exp > 48 {
		exp = 48 // keep Base+Size from always wrapping
	}
	size := uint64(1) << exp
	if sel&64 != 0 {
		size = (sel >> 7) % (1 << 40)
	}
	return size
}

type routeRule struct {
	r      Range
	target int
}

// probes expands the fuzzed address into the interesting neighbors: the
// address itself plus every accepted window's edges (first, last, one
// past the end), where binary search off-by-ones live.
func probes(a Addr, reference []routeRule) []Addr {
	out := []Addr{a, a + 1, a - 1}
	for _, e := range reference {
		out = append(out, e.r.Base, e.r.End()-1, e.r.End())
	}
	return out
}
