package pcie

import (
	"fmt"

	"tca/internal/obsv"
	"tca/internal/prof"
	"tca/internal/sim"
	"tca/internal/units"
)

// SwitchParams tunes a PCIe switch model.
type SwitchParams struct {
	// ForwardLatency is the store-and-forward delay per packet through
	// the crossbar (typical silicon: 100–150 ns).
	ForwardLatency units.Duration
	// IngressDrain is how long an arriving packet occupies the ingress
	// buffer slot before the flow-control credit returns.
	IngressDrain units.Duration
}

// DefaultSwitchParams matches the latency class of the PCIe switch embedded
// in the Sandy Bridge-EP socket (§III-C).
var DefaultSwitchParams = SwitchParams{
	ForwardLatency: 120 * units.Nanosecond,
	IngressDrain:   8 * units.Nanosecond,
}

// Switch is a PCIe switch: one upstream port toward the root complex and
// any number of downstream ports, each owning an address window. Memory
// requests route downstream by address window and upstream by default;
// completions route by requester ID, learned from the requests that passed
// through (and optionally pre-registered).
type Switch struct {
	eng      *sim.Engine
	name     string
	params   SwitchParams
	up       *Port
	down     []*Port
	windows  AddressMap // window -> *Port
	idRoutes map[DeviceID]*Port

	// comp is the switch's host-time attribution tag (0 when unprofiled).
	comp sim.CompID

	// fwdFree recycles crossbar-forward actions so steady-state forwarding
	// allocates nothing.
	fwdFree []*switchFwdAction

	// rec records crossbar-arrival span events for traced packets (nil
	// when uninstrumented).
	rec *obsv.Recorder
	// mForwards counts packets through the crossbar (nil when
	// uninstrumented).
	mForwards *obsv.Counter
}

// Instrument attaches the switch to an observability set: traced packets
// record a StageSwitch event on crossbar entry, so host-switch forwarding
// latency separates from the adjacent link wire time in breakdowns.
func (s *Switch) Instrument(set *obsv.Set) {
	s.rec = set.Recorder()
	s.mForwards = set.Registry().Counter("switch_forwards", s.name)
}

// Profile registers the switch with an engine profiler so crossbar-forward
// events charge host time to it. Safe with a nil profiler.
func (s *Switch) Profile(p *prof.Profiler) {
	s.comp = p.Component(s.name)
}

// NewSwitch creates a switch. The upstream port (toward the RC) is created
// immediately; downstream ports are added with AddDownstream.
func NewSwitch(eng *sim.Engine, name string, params SwitchParams) *Switch {
	s := &Switch{
		eng:      eng,
		name:     name,
		params:   params,
		idRoutes: make(map[DeviceID]*Port),
	}
	s.up = NewPort(s, "up", RoleEP)
	return s
}

// DevName implements Device.
func (s *Switch) DevName() string { return s.name }

// Upstream returns the port that connects toward the root complex.
func (s *Switch) Upstream() *Port { return s.up }

// AddDownstream creates a downstream port owning the address window w.
// Requests targeting w route out of this port.
func (s *Switch) AddDownstream(label string, w Range) (*Port, error) {
	p := NewPort(s, label, RoleRC)
	if err := s.windows.Add(w, p); err != nil {
		return nil, fmt.Errorf("switch %s: %w", s.name, err)
	}
	s.down = append(s.down, p)
	return p, nil
}

// MustAddDownstream is AddDownstream for static topologies.
func (s *Switch) MustAddDownstream(label string, w Range) *Port {
	p, err := s.AddDownstream(label, w)
	if err != nil {
		panic(fmt.Sprintf("switch %s: MustAddDownstream: %v", s.name, err))
	}
	return p
}

// Downstream returns the downstream ports in creation order.
func (s *Switch) Downstream() []*Port { return s.down }

// RegisterIDRoute pins completions for requester id to leave through port p
// (an alternative to learning from traffic).
func (s *Switch) RegisterIDRoute(id DeviceID, p *Port) { s.idRoutes[id] = p }

// Accept implements Device: route the packet and forward it after the
// crossbar latency.
func (s *Switch) Accept(now sim.Time, t *TLP, in *Port) units.Duration {
	out := s.route(t, in)
	s.mForwards.Inc()
	if s.rec != nil && t.Txn != 0 {
		s.rec.Record(obsv.Event{At: now, Txn: t.Txn, Stage: obsv.StageSwitch,
			Where: s.name, Port: in.Label, Addr: uint64(t.Addr), Note: "egress " + out.Label})
	}
	s.eng.AfterAction(s.comp, s.params.ForwardLatency, s.newFwd(out, t))
	return s.params.IngressDrain
}

// switchFwdAction is the pooled crossbar-forward event: after the forward
// latency it sends the packet out of the routed egress and returns itself
// to the switch's free list.
type switchFwdAction struct {
	s   *Switch
	out *Port
	t   *TLP
}

func (s *Switch) newFwd(out *Port, t *TLP) *switchFwdAction {
	if n := len(s.fwdFree) - 1; n >= 0 {
		a := s.fwdFree[n]
		s.fwdFree[n] = nil
		s.fwdFree = s.fwdFree[:n]
		a.s, a.out, a.t = s, out, t
		return a
	}
	return &switchFwdAction{s: s, out: out, t: t}
}

// RunAction implements sim.Action.
func (a *switchFwdAction) RunAction(now sim.Time) {
	s, out, t := a.s, a.out, a.t
	*a = switchFwdAction{}
	s.fwdFree = append(s.fwdFree, a)
	out.Send(now, t)
}

// route picks the egress port for t arriving on in.
func (s *Switch) route(t *TLP, in *Port) *Port {
	switch t.Kind {
	case MWr, MRd:
		if t.Kind == MRd {
			// Learn the return path for this requester's completions.
			s.idRoutes[t.Requester] = in
		}
		if tgt, _, ok := s.windows.Lookup(t.Addr); ok {
			out := tgt.(*Port)
			if out == in {
				panic(fmt.Sprintf("switch %s: packet %v would route back out its ingress %v", s.name, t, in))
			}
			return out
		}
		if in == s.up {
			panic(fmt.Sprintf("switch %s: downstream-bound %v matches no window", s.name, t))
		}
		return s.up
	case CplD, Cpl:
		if out, ok := s.idRoutes[t.Requester]; ok {
			return out
		}
		if in != s.up {
			return s.up
		}
		panic(fmt.Sprintf("switch %s: completion for unknown requester %d from upstream", s.name, t.Requester))
	default:
		panic(fmt.Sprintf("switch %s: unroutable TLP kind %v", s.name, t.Kind))
	}
}
