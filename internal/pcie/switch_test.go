package pcie

import (
	"testing"

	"tca/internal/sim"
	"tca/internal/units"
)

// switchFixture wires root—switch—(devA, devB) like a CPU socket with two
// slots.
type switchFixture struct {
	eng        *sim.Engine
	sw         *Switch
	root       *sink
	devA, devB *sink
	rootPort   *Port
	portA      *Port
	portB      *Port
}

func newSwitchFixture(t *testing.T) *switchFixture {
	t.Helper()
	f := &switchFixture{eng: sim.NewEngine()}
	f.sw = NewSwitch(f.eng, "sock0", DefaultSwitchParams)
	f.root = &sink{name: "root"}
	f.devA = &sink{name: "devA"}
	f.devB = &sink{name: "devB"}
	f.rootPort = NewPort(f.root, "dn", RoleRC)
	MustConnect(f.eng, f.rootPort, f.sw.Upstream(), LinkParams{Config: Gen3x8})
	dA := f.sw.MustAddDownstream("slot0", Range{Base: 0x1000_0000, Size: 0x1000_0000})
	dB := f.sw.MustAddDownstream("slot1", Range{Base: 0x2000_0000, Size: 0x1000_0000})
	f.portA = NewPort(f.devA, "up", RoleEP)
	f.portB = NewPort(f.devB, "up", RoleEP)
	MustConnect(f.eng, dA, f.portA, LinkParams{Config: Gen3x16})
	MustConnect(f.eng, dB, f.portB, LinkParams{Config: Gen2x8})
	return f
}

func TestSwitchRoutesDownstreamByWindow(t *testing.T) {
	f := newSwitchFixture(t)
	f.rootPort.Send(0, &TLP{Kind: MWr, Addr: 0x1000_0040, Data: []byte{1, 2}})
	f.rootPort.Send(0, &TLP{Kind: MWr, Addr: 0x2000_0040, Data: []byte{3}})
	f.eng.Run()
	if len(f.devA.got) != 1 || f.devA.got[0].Addr != 0x1000_0040 {
		t.Fatalf("devA got %v", f.devA.got)
	}
	if len(f.devB.got) != 1 || f.devB.got[0].Addr != 0x2000_0040 {
		t.Fatalf("devB got %v", f.devB.got)
	}
	if len(f.root.got) != 0 {
		t.Fatal("root received spurious packets")
	}
}

func TestSwitchRoutesUnmatchedUpstream(t *testing.T) {
	f := newSwitchFixture(t)
	// devA writes to an address outside all downstream windows: goes to
	// the root complex (e.g. host DRAM).
	f.portA.Send(0, &TLP{Kind: MWr, Addr: 0x9000_0000, Data: []byte{7}})
	f.eng.Run()
	if len(f.root.got) != 1 || f.root.got[0].Addr != 0x9000_0000 {
		t.Fatalf("root got %v", f.root.got)
	}
}

func TestSwitchPeerToPeerBetweenDownstreamPorts(t *testing.T) {
	// The heart of §III-C: a device on one slot writes directly into
	// another slot's window without touching the root complex — the
	// GPUDirect P2P path PEACH2 uses.
	f := newSwitchFixture(t)
	f.portA.Send(0, &TLP{Kind: MWr, Addr: 0x2000_0100, Data: []byte{42}})
	f.eng.Run()
	if len(f.devB.got) != 1 || f.devB.got[0].Data[0] != 42 {
		t.Fatalf("devB got %v", f.devB.got)
	}
	if len(f.root.got) != 0 {
		t.Fatal("P2P traffic leaked to the root complex")
	}
}

func TestSwitchCompletionRoutingByLearnedID(t *testing.T) {
	f := newSwitchFixture(t)
	// devA issues a read upstream; the switch learns its return path.
	f.portA.Send(0, &TLP{Kind: MRd, Addr: 0x9000_0000, ReadLen: 8, Requester: 5, Tag: 1})
	f.eng.Run()
	if len(f.root.got) != 1 {
		t.Fatalf("root got %d packets, want the MRd", len(f.root.got))
	}
	// Root answers with a completion addressed by requester ID only.
	f.rootPort.Send(f.eng.Now(), &TLP{Kind: CplD, Requester: 5, Tag: 1, Data: make([]byte, 8), Last: true})
	f.eng.Run()
	if len(f.devA.got) != 1 || f.devA.got[0].Kind != CplD {
		t.Fatalf("devA got %v, want learned-route completion", f.devA.got)
	}
}

func TestSwitchCompletionRegisteredRoute(t *testing.T) {
	f := newSwitchFixture(t)
	f.sw.RegisterIDRoute(9, f.sw.Downstream()[1])
	f.rootPort.Send(0, &TLP{Kind: CplD, Requester: 9, Tag: 0, Data: []byte{1}, Last: true})
	f.eng.Run()
	if len(f.devB.got) != 1 {
		t.Fatalf("devB got %d, want registered-route completion", len(f.devB.got))
	}
}

func TestSwitchForwardLatency(t *testing.T) {
	f := newSwitchFixture(t)
	f.rootPort.Send(0, &TLP{Kind: MWr, Addr: 0x1000_0000, Data: []byte{1}})
	f.eng.Run()
	// Total = uplink wire (25 B @ Gen3x8 ≈ 3.2ns→4ns) + forward 120 ns +
	// downlink wire. Assert the 120 ns dominates and is present.
	if f.devA.at[0] < sim.Time(120*units.Nanosecond) {
		t.Fatalf("arrival %v too early — forward latency missing", f.devA.at[0])
	}
	if f.devA.at[0] > sim.Time(200*units.Nanosecond) {
		t.Fatalf("arrival %v too late", f.devA.at[0])
	}
}

func TestSwitchRejectsOverlappingWindows(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, "s", DefaultSwitchParams)
	sw.MustAddDownstream("a", Range{Base: 0x1000, Size: 0x1000})
	if _, err := sw.AddDownstream("b", Range{Base: 0x1800, Size: 0x1000}); err == nil {
		t.Fatal("overlapping downstream window accepted")
	}
}

func TestSwitchUnroutableDownstreamPanics(t *testing.T) {
	f := newSwitchFixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("unroutable downstream-bound packet did not panic")
		}
	}()
	f.rootPort.Send(0, &TLP{Kind: MWr, Addr: 0xFFFF_0000, Data: []byte{1}})
	f.eng.Run()
}
