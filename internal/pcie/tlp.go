package pcie

import (
	"fmt"

	"tca/internal/units"
)

// Protocol overhead constants from §IV-A of the paper: for every payload of
// up to MaxPayload bytes a packet carries a 16-byte Transaction Layer header
// (4 DW, 64-bit addressing), a 2-byte Data Link Layer sequence number, a
// 4-byte LCRC, and 1-byte start and stop framing symbols on the Physical
// Layer.
const (
	TLHeaderBytes units.ByteSize = 16
	DLLSeqBytes   units.ByteSize = 2
	DLLLCRCBytes  units.ByteSize = 4
	PHYFrameBytes units.ByteSize = 2 // STP + END
	TLPOverhead                  = TLHeaderBytes + DLLSeqBytes + DLLLCRCBytes + PHYFrameBytes

	// DefaultMaxPayload is the maximum payload size negotiated in the
	// paper's test environment (§IV-A: "the maximum payload size is 256
	// bytes").
	DefaultMaxPayload units.ByteSize = 256

	// DefaultMaxReadRequest bounds a single Memory Read Request. PCIe
	// allows up to 4 KiB; the reference DMA design issues reads of at
	// most this size and receives the data as a series of completions.
	DefaultMaxReadRequest units.ByteSize = 512
)

// Kind enumerates the TLP types the model uses.
type Kind int

// TLP kinds.
const (
	// MWr is a posted Memory Write Request — the only packet PEACH2
	// forwards between nodes (RDMA-put-only, §III-F).
	MWr Kind = iota
	// MRd is a non-posted Memory Read Request; allowed only toward the
	// local host/GPU through Port N.
	MRd
	// CplD is a Completion with Data answering an MRd.
	CplD
	// Cpl is a completion without data (errors, zero-length reads).
	Cpl
)

// String names the kind with PCIe mnemonics.
func (k Kind) String() string {
	switch k {
	case MWr:
		return "MWr"
	case MRd:
		return "MRd"
	case CplD:
		return "CplD"
	case Cpl:
		return "Cpl"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Posted reports whether the kind is a posted transaction (fire-and-forget,
// no completion expected).
func (k Kind) Posted() bool { return k == MWr }

// DeviceID identifies a requester/completer on the fabric (a compressed
// bus/device/function triple).
type DeviceID uint16

// TLP is a Transaction Layer Packet. One value moves through the fabric by
// pointer; links and routers never copy payloads.
//
// TLPs on the hot path are drawn from a TLPPool (see pool.go) and returned
// at their sink; the poolsafety analyzer enforces the Get/Release/Pin
// lifecycle through the marker below.
//
//tca:pooled
type TLP struct {
	Kind Kind
	// Addr is the target bus address for MWr/MRd.
	Addr Addr
	// Data is the payload of an MWr or CplD.
	Data []byte
	// ReadLen is the requested byte count of an MRd.
	ReadLen units.ByteSize
	// Requester identifies the device that originated the transaction;
	// completions are routed back to it by ID, not by address.
	Requester DeviceID
	// Tag matches completions to outstanding read requests.
	Tag uint8
	// Relaxed marks PCIe relaxed-ordering; the GPU's deep request queue
	// accepts relaxed writes without strict drain ordering (§IV-B2).
	Relaxed bool
	// Last marks the final completion of a multi-CplD read, and the final
	// packet of a multi-TLP write burst (used for flush semantics).
	Last bool
	// Flush asks the last router on the path to acknowledge delivery
	// back to the requester once the packet has drained toward a
	// strictly-ordered sink. PEACH2's DMA controller sets it on the final
	// packet of a chain whose destination is remote *host* memory; deep-
	// queue (GPU) sinks never need it (§IV-B2).
	Flush bool
	// Txn is the observability transaction ID: every instrumented PIO
	// store and DMA chain tags its packets so each hop can record a span
	// event (internal/obsv). Zero means "untraced" and records nothing.
	Txn uint64
	// LID is the conservation-ledger identity (obsv.Ledger), minted lazily
	// by the first instrumented link the packet crosses. Zero means
	// "untracked". Copy-forwarding paths must carry it; a logically *new*
	// packet (a read retry reissued under a fresh timeout) must clear it.
	LID uint64

	// pool is the free list Release returns the packet to; nil for
	// unpooled packets (composite literals, SplitWrite products) and after
	// Pin or Release. See pool.go.
	pool *TLPPool
	// scratch is the retained payload buffer SetPayload copies into; its
	// capacity survives Release so steady-state traffic stops allocating.
	scratch []byte
}

// PayloadLen reports the packet's payload byte count.
func (t *TLP) PayloadLen() units.ByteSize { return units.ByteSize(len(t.Data)) }

// WireBytes reports the packet's size on the wire including all protocol
// overhead — the number that multiplies into serialization time.
func (t *TLP) WireBytes() units.ByteSize {
	switch t.Kind {
	case MWr, CplD:
		return TLPOverhead + units.ByteSize(len(t.Data))
	case MRd, Cpl:
		return TLPOverhead
	default:
		panic(fmt.Sprintf("pcie: WireBytes on unknown kind %v", t.Kind))
	}
}

// Validate checks structural invariants; links call it on every Send so a
// malformed model fails loudly at the point of injection.
func (t *TLP) Validate(maxPayload units.ByteSize) error {
	switch t.Kind {
	case MWr:
		if len(t.Data) == 0 {
			return fmt.Errorf("pcie: MWr with empty payload at %v", t.Addr)
		}
		if units.ByteSize(len(t.Data)) > maxPayload {
			return fmt.Errorf("pcie: MWr payload %d exceeds MaxPayload %d", len(t.Data), maxPayload)
		}
	case MRd:
		if t.ReadLen <= 0 {
			return fmt.Errorf("pcie: MRd with non-positive length %d", t.ReadLen)
		}
		if len(t.Data) != 0 {
			return fmt.Errorf("pcie: MRd carrying payload")
		}
	case CplD:
		if len(t.Data) == 0 {
			return fmt.Errorf("pcie: CplD with empty payload")
		}
		if units.ByteSize(len(t.Data)) > maxPayload {
			return fmt.Errorf("pcie: CplD payload %d exceeds MaxPayload %d", len(t.Data), maxPayload)
		}
	case Cpl:
		if len(t.Data) != 0 {
			return fmt.Errorf("pcie: Cpl carrying payload")
		}
	default:
		return fmt.Errorf("pcie: unknown TLP kind %d", int(t.Kind))
	}
	return nil
}

// String summarizes the packet for traces.
func (t *TLP) String() string {
	switch t.Kind {
	case MWr:
		return fmt.Sprintf("MWr %v len=%d", t.Addr, len(t.Data))
	case MRd:
		return fmt.Sprintf("MRd %v len=%d tag=%d req=%d", t.Addr, t.ReadLen, t.Tag, t.Requester)
	case CplD:
		return fmt.Sprintf("CplD len=%d tag=%d req=%d last=%t", len(t.Data), t.Tag, t.Requester, t.Last)
	default:
		return fmt.Sprintf("Cpl tag=%d req=%d", t.Tag, t.Requester)
	}
}

// SplitWrite chops a write of data at addr into MWr TLPs that respect
// maxPayload and never cross a 4 KiB page boundary (a PCIe rule that also
// matters for GPUDirect page pinning). The final packet has Last set.
func SplitWrite(addr Addr, data []byte, maxPayload units.ByteSize, relaxed bool) []*TLP {
	if maxPayload <= 0 {
		panic(fmt.Sprintf("pcie: non-positive max payload %d", maxPayload))
	}
	var tlps []*TLP
	const page = 4096
	for len(data) > 0 {
		n := int(maxPayload)
		if n > len(data) {
			n = len(data)
		}
		// Do not cross a 4 KiB boundary.
		if room := page - int(uint64(addr)%page); n > room {
			n = room
		}
		tlps = append(tlps, &TLP{
			Kind:    MWr,
			Addr:    addr,
			Data:    data[:n:n],
			Relaxed: relaxed,
		})
		addr += Addr(n)
		data = data[n:]
	}
	if len(tlps) > 0 {
		tlps[len(tlps)-1].Last = true
	}
	return tlps
}

// SplitRead chops a read of length n at addr into MRd TLPs bounded by
// maxReq and 4 KiB pages.
func SplitRead(addr Addr, n units.ByteSize, maxReq units.ByteSize) []*TLP {
	if maxReq <= 0 {
		panic(fmt.Sprintf("pcie: non-positive max read request %d", maxReq))
	}
	var tlps []*TLP
	const page = 4096
	for n > 0 {
		l := maxReq
		if l > n {
			l = n
		}
		if room := units.ByteSize(page - uint64(addr)%page); l > room {
			l = room
		}
		tlps = append(tlps, &TLP{Kind: MRd, Addr: addr, ReadLen: l})
		addr += Addr(l)
		n -= l
	}
	if len(tlps) > 0 {
		tlps[len(tlps)-1].Last = true
	}
	return tlps
}

// SplitCompletion chops read-reply data into CplD TLPs of at most
// maxPayload, preserving requester/tag, marking the final one Last.
func SplitCompletion(req *TLP, data []byte, maxPayload units.ByteSize) []*TLP {
	if req.Kind != MRd {
		panic(fmt.Sprintf("pcie: SplitCompletion for non-MRd %v", req))
	}
	var tlps []*TLP
	for off := 0; off < len(data); {
		n := int(maxPayload)
		if n > len(data)-off {
			n = len(data) - off
		}
		tlps = append(tlps, &TLP{
			Kind:      CplD,
			Data:      data[off : off+n : off+n],
			Requester: req.Requester,
			Tag:       req.Tag,
			Txn:       req.Txn,
		})
		off += n
	}
	if len(tlps) == 0 {
		return []*TLP{{Kind: Cpl, Requester: req.Requester, Tag: req.Tag, Last: true, Txn: req.Txn}}
	}
	tlps[len(tlps)-1].Last = true
	return tlps
}
