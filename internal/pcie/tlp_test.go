package pcie

import (
	"bytes"
	"testing"
	"testing/quick"

	"tca/internal/units"
)

func TestWireBytes(t *testing.T) {
	cases := []struct {
		tlp  TLP
		want units.ByteSize
	}{
		{TLP{Kind: MWr, Data: make([]byte, 256)}, 280},
		{TLP{Kind: MWr, Data: make([]byte, 4)}, 28},
		{TLP{Kind: MRd, ReadLen: 4096}, 24},
		{TLP{Kind: CplD, Data: make([]byte, 128)}, 152},
		{TLP{Kind: Cpl}, 24},
	}
	for _, c := range cases {
		if got := c.tlp.WireBytes(); got != c.want {
			t.Errorf("WireBytes(%v) = %d, want %d", c.tlp.Kind, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	good := []*TLP{
		{Kind: MWr, Data: []byte{1}},
		{Kind: MWr, Data: make([]byte, 256)},
		{Kind: MRd, ReadLen: 64},
		{Kind: CplD, Data: []byte{1, 2}},
		{Kind: Cpl},
	}
	for _, g := range good {
		if err := g.Validate(256); err != nil {
			t.Errorf("Validate(%v) = %v, want nil", g, err)
		}
	}
	bad := []*TLP{
		{Kind: MWr},                              // empty write
		{Kind: MWr, Data: make([]byte, 257)},     // exceeds MaxPayload
		{Kind: MRd},                              // zero-length read
		{Kind: MRd, ReadLen: 8, Data: []byte{1}}, // read with payload
		{Kind: CplD},                             // empty completion-with-data
		{Kind: Cpl, Data: []byte{1}},             // data on dataless completion
		{Kind: Kind(99)},
	}
	for _, b := range bad {
		if err := b.Validate(256); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", b)
		}
	}
}

func TestSplitWriteChunksAndBoundaries(t *testing.T) {
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i)
	}
	// Start 100 bytes before a page boundary to force an early split.
	addr := Addr(4096 - 100)
	tlps := SplitWrite(addr, data, 256, false)

	if tlps[0].PayloadLen() != 100 {
		t.Fatalf("first TLP len = %d, want 100 (page-boundary clamp)", tlps[0].PayloadLen())
	}
	var total int
	next := addr
	var rebuilt []byte
	for i, p := range tlps {
		if p.Kind != MWr {
			t.Fatalf("TLP %d kind = %v", i, p.Kind)
		}
		if p.Addr != next {
			t.Fatalf("TLP %d addr = %v, want %v (contiguous)", i, p.Addr, next)
		}
		if p.PayloadLen() > 256 {
			t.Fatalf("TLP %d payload %d exceeds max", i, p.PayloadLen())
		}
		// No TLP crosses a 4 KiB page.
		if uint64(p.Addr)>>12 != uint64(p.Addr+Addr(p.PayloadLen())-1)>>12 {
			t.Fatalf("TLP %d crosses a page: %v+%d", i, p.Addr, p.PayloadLen())
		}
		if (p.Last) != (i == len(tlps)-1) {
			t.Fatalf("TLP %d Last = %t", i, p.Last)
		}
		next += Addr(p.PayloadLen())
		total += len(p.Data)
		rebuilt = append(rebuilt, p.Data...)
	}
	if total != len(data) || !bytes.Equal(rebuilt, data) {
		t.Fatal("split payloads do not reassemble to the original data")
	}
}

func TestSplitWriteEmpty(t *testing.T) {
	if got := SplitWrite(0x1000, nil, 256, false); got != nil {
		t.Fatalf("SplitWrite(empty) = %v, want nil", got)
	}
}

func TestSplitRead(t *testing.T) {
	tlps := SplitRead(Addr(4096-64), 1024, 512)
	if tlps[0].ReadLen != 64 {
		t.Fatalf("first read len = %d, want 64 (page clamp)", tlps[0].ReadLen)
	}
	var total units.ByteSize
	next := Addr(4096 - 64)
	for i, p := range tlps {
		if p.Kind != MRd {
			t.Fatalf("TLP %d kind = %v", i, p.Kind)
		}
		if p.Addr != next {
			t.Fatalf("TLP %d addr = %v, want %v", i, p.Addr, next)
		}
		if p.ReadLen > 512 {
			t.Fatalf("TLP %d read len %d exceeds max", i, p.ReadLen)
		}
		next += Addr(p.ReadLen)
		total += p.ReadLen
	}
	if total != 1024 {
		t.Fatalf("total read length = %d, want 1024", total)
	}
	if !tlps[len(tlps)-1].Last {
		t.Fatal("final read TLP not marked Last")
	}
}

func TestSplitCompletion(t *testing.T) {
	req := &TLP{Kind: MRd, ReadLen: 700, Requester: 7, Tag: 3}
	data := make([]byte, 700)
	for i := range data {
		data[i] = byte(i * 3)
	}
	cpls := SplitCompletion(req, data, 256)
	var rebuilt []byte
	for i, c := range cpls {
		if c.Kind != CplD {
			t.Fatalf("completion %d kind = %v", i, c.Kind)
		}
		if c.Requester != 7 || c.Tag != 3 {
			t.Fatalf("completion %d lost requester/tag: %+v", i, c)
		}
		if (c.Last) != (i == len(cpls)-1) {
			t.Fatalf("completion %d Last = %t", i, c.Last)
		}
		rebuilt = append(rebuilt, c.Data...)
	}
	if !bytes.Equal(rebuilt, data) {
		t.Fatal("completions do not reassemble to read data")
	}
}

func TestSplitCompletionZeroLength(t *testing.T) {
	req := &TLP{Kind: MRd, ReadLen: 1, Requester: 2, Tag: 9}
	cpls := SplitCompletion(req, nil, 256)
	if len(cpls) != 1 || cpls[0].Kind != Cpl || !cpls[0].Last {
		t.Fatalf("zero-length completion = %+v, want single Last Cpl", cpls)
	}
}

func TestSplitCompletionPanicsOnNonRead(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for SplitCompletion of MWr")
		}
	}()
	SplitCompletion(&TLP{Kind: MWr, Data: []byte{1}}, []byte{1}, 256)
}

// Property: SplitWrite then concatenation is the identity, for arbitrary
// addresses, payload sizes and data.
func TestQuickSplitWriteRoundTrip(t *testing.T) {
	f := func(addrSeed uint32, data []byte, mpShift uint8) bool {
		if len(data) == 0 {
			return true
		}
		addr := Addr(addrSeed)
		mp := units.ByteSize(64 << (mpShift % 4)) // 64..512
		tlps := SplitWrite(addr, data, mp, false)
		var rebuilt []byte
		next := addr
		for _, p := range tlps {
			if p.Addr != next || p.PayloadLen() > mp {
				return false
			}
			next += Addr(p.PayloadLen())
			rebuilt = append(rebuilt, p.Data...)
		}
		return bytes.Equal(rebuilt, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKindStringAndPosted(t *testing.T) {
	if MWr.String() != "MWr" || MRd.String() != "MRd" || CplD.String() != "CplD" || Cpl.String() != "Cpl" {
		t.Fatal("Kind strings wrong")
	}
	if !MWr.Posted() {
		t.Fatal("MWr must be posted")
	}
	if MRd.Posted() || CplD.Posted() {
		t.Fatal("MRd/CplD must not be posted")
	}
}
