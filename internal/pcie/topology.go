package pcie

import (
	"fmt"
	"sort"
)

// Enumerable is implemented by devices that expose their ports to topology
// walks — what a BIOS bus scan sees. Devices that keep their single port
// private are still *discovered* (they sit at the far end of a link); they
// just terminate the walk.
type Enumerable interface {
	Ports() []*Port
}

// Enumerate walks the fabric breadth-first from start's device and returns
// every reachable device, in deterministic (name-sorted per layer)
// discovery order. It is the model of the boot-time scan §V discusses: on
// an NTB system the scan crosses into the peer host (coupling their
// lifetimes), while a PEACH2 port N scan stops at the chip.
func Enumerate(start Device) []Device {
	seen := map[Device]bool{start: true}
	order := []Device{start}
	frontier := []Device{start}
	for len(frontier) > 0 {
		var next []Device
		for _, dev := range frontier {
			en, ok := dev.(Enumerable)
			if !ok {
				continue
			}
			var found []Device
			for _, p := range en.Ports() {
				peer := p.Peer()
				if peer == nil {
					continue
				}
				if d := peer.Owner(); !seen[d] {
					seen[d] = true
					found = append(found, d)
				}
			}
			sort.Slice(found, func(i, j int) bool { return found[i].DevName() < found[j].DevName() })
			order = append(order, found...)
			next = append(next, found...)
		}
		frontier = next
	}
	return order
}

// Ports implements Enumerable for Switch.
func (s *Switch) Ports() []*Port {
	out := []*Port{s.up}
	out = append(out, s.down...)
	return out
}

// ValidateTree checks structural invariants of a fabric reachable from
// start: every link joins exactly one RC-side and one EP-side port, and no
// two downstream windows of any switch overlap (AddressMap enforces the
// latter at construction; the walk re-checks what a bus scan would see).
func ValidateTree(start Device) error {
	for _, dev := range Enumerate(start) {
		en, ok := dev.(Enumerable)
		if !ok {
			continue
		}
		for _, p := range en.Ports() {
			peer := p.Peer()
			if peer == nil {
				continue
			}
			if p.Role() == peer.Role() {
				return fmt.Errorf("pcie: link %v — %v joins two %v ports", p, peer, p.Role())
			}
		}
	}
	return nil
}
