package peach2

import (
	"encoding/binary"
	"fmt"

	"tca/internal/fault"
	"tca/internal/memory"
	"tca/internal/obsv"
	"tca/internal/pcie"
	"tca/internal/prof"
	"tca/internal/sim"
	"tca/internal/units"
)

// Chip is one PEACH2 chip. It implements pcie.Device for all four of its
// ports; the port a packet arrived on distinguishes host traffic (N) from
// ring traffic (E/W/S).
type Chip struct {
	eng    *sim.Engine
	name   string
	id     pcie.DeviceID
	params Params
	plan   NodePlan

	ports  [4]*pcie.Port
	rules  []RouteRule
	intMem *memory.RAM
	dmac   *DMAC
	nios   *NIOS

	// Raw register values, addressable through the internal block.
	regTable uint64
	regCount uint64
	regRoute [MaxRouteRules]RouteRule

	onIRQ  func(now sim.Time)
	tracer func(now sim.Time, what string)

	// Fault machinery (faults nil on a perfect fabric — every consult is
	// then a nil-receiver no-op and no recovery timer is ever scheduled).
	faults   *fault.Injector
	portDead [4]bool
	// parked holds TLPs stranded by a dead egress link, in arrival order,
	// until a route reprogram re-injects them (flushParked).
	parked []*pcie.TLP

	// pool recycles the TLPs the chip originates (flush acks, converted
	// Port-N copies of foreign packets); ringFree and nFree recycle the
	// router's forward actions. All single-threaded, owned by the engine's
	// event loop.
	pool     pcie.TLPPool
	ringFree []*ringFwdAction
	nFree    []*nFwdAction

	// Stats
	forwarded [numPorts]uint64 // by egress
	converted uint64
	acksSent  uint64
	acksRecv  uint64
	intWrites uint64

	// Observability (all handles nil when uninstrumented — every update
	// below is then a single-branch no-op).
	rec *obsv.Recorder
	led obsv.Ledger
	cm  chipMetrics

	// comp is the chip's host-time attribution tag (0 when unprofiled).
	comp sim.CompID
}

// chipMetrics are the chip's registered metric handles.
type chipMetrics struct {
	tlpsIn    [4]*obsv.Counter
	bytesIn   [4]*obsv.Counter
	tlpsOut   [numPorts]*obsv.Counter
	bytesOut  [numPorts]*obsv.Counter
	converted *obsv.Counter
	acksSent  *obsv.Counter
	acksRecv  *obsv.Counter
	intWrites *obsv.Counter
	irqs      *obsv.Counter
	routeMiss *obsv.Counter
}

// Instrument attaches the chip (and its DMAC) to an observability set:
// per-port TLP counters, conversion/ack/IRQ counters, DMAC queue and busy
// metrics, and typed span events for traced transactions.
func (c *Chip) Instrument(set *obsv.Set) {
	reg := set.Registry()
	c.rec = set.Recorder()
	c.led = set.Ledger()
	for p := PortN; p <= PortS; p++ {
		c.cm.tlpsIn[p] = reg.Counter("port_tlps_in", c.name, obsv.Label{Key: "port", Value: p.String()})
		c.cm.bytesIn[p] = reg.Counter("port_bytes_in", c.name, obsv.Label{Key: "port", Value: p.String()})
	}
	for p := PortN; p < numPorts; p++ {
		c.cm.tlpsOut[p] = reg.Counter("port_tlps_out", c.name, obsv.Label{Key: "port", Value: p.String()})
		c.cm.bytesOut[p] = reg.Counter("port_bytes_out", c.name, obsv.Label{Key: "port", Value: p.String()})
	}
	c.registerProbes(set.Sampler())
	c.cm.converted = reg.Counter("addr_conversions", c.name)
	c.cm.acksSent = reg.Counter("flush_acks_sent", c.name)
	c.cm.acksRecv = reg.Counter("flush_acks_recv", c.name)
	c.cm.intWrites = reg.Counter("internal_writes", c.name)
	c.cm.irqs = reg.Counter("irqs", c.name)
	c.cm.routeMiss = reg.Counter("route_misses", c.name)
	c.dmac.instrument(set)
}

// Profile registers the chip and its DMAC with an engine profiler so router,
// NIOS, and DMA events charge host time to them. Safe with a nil profiler.
func (c *Chip) Profile(p *prof.Profiler) {
	c.comp = p.Component(c.name)
	c.dmac.profile(p)
}

// registerProbes wires the chip's telemetry: per-port ingress and egress
// bytes per sampling interval, computed as deltas of the cumulative byte
// counters.
func (c *Chip) registerProbes(sam *obsv.Sampler) {
	if sam == nil {
		return
	}
	for p := PortN; p <= PortS; p++ {
		inC, outC := c.cm.bytesIn[p], c.cm.bytesOut[p]
		var lastIn, lastOut uint64
		sam.Register("port_in_bytes", c.name, p.String(), "B", func(sim.Time, units.Duration) float64 {
			cur := inC.Value()
			delta := cur - lastIn
			lastIn = cur
			return float64(delta)
		})
		sam.Register("port_out_bytes", c.name, p.String(), "B", func(sim.Time, units.Duration) float64 {
			cur := outC.Value()
			delta := cur - lastOut
			lastOut = cur
			return float64(delta)
		})
	}
}

// portIndex maps a physical port back to its ID (for ingress accounting).
func (c *Chip) portIndex(p *pcie.Port) PortID {
	for i := PortN; i <= PortS; i++ {
		if c.ports[i] == p {
			return i
		}
	}
	panic(fmt.Sprintf("peach2 %s: foreign port %v", c.name, p))
}

// New creates a chip. The plan is the chip's slice of the sub-cluster
// address map; id is its PCIe requester identity.
func New(eng *sim.Engine, name string, id pcie.DeviceID, params Params, plan NodePlan) *Chip {
	if plan.GlobalWindow.Size == 0 || plan.TCARegion.Size == 0 || plan.Internal.Size == 0 {
		panic(fmt.Sprintf("peach2 %s: incomplete plan %+v", name, plan))
	}
	if !plan.TCARegion.ContainsRange(plan.GlobalWindow) || !plan.GlobalWindow.ContainsRange(plan.Internal) {
		panic(fmt.Sprintf("peach2 %s: plan windows not nested", name))
	}
	c := &Chip{
		eng:    eng,
		name:   name,
		id:     id,
		params: params,
		plan:   plan,
		intMem: memory.NewRAM(params.InternalMemSize),
	}
	// Port roles per §III-D: N is an ordinary endpoint toward the host;
	// E is fixed EP and W fixed RC so that any E—W cable pairs one RC
	// with one EP; S is selectable (default EP, flipped with SetRole
	// before link-up).
	c.ports[PortN] = pcie.NewPort(c, "N", pcie.RoleEP)
	c.ports[PortE] = pcie.NewPort(c, "E", pcie.RoleEP)
	c.ports[PortW] = pcie.NewPort(c, "W", pcie.RoleRC)
	c.ports[PortS] = pcie.NewPort(c, "S", pcie.RoleEP)
	c.dmac = newDMAC(c)
	c.nios = newNIOS(c)
	return c
}

// DevName implements pcie.Device.
func (c *Chip) DevName() string { return c.name }

// ID reports the chip's requester ID.
func (c *Chip) ID() pcie.DeviceID { return c.id }

// Params returns the chip's parameters.
func (c *Chip) Params() Params { return c.params }

// Plan returns the chip's address plan.
func (c *Chip) Plan() NodePlan { return c.plan }

// Port returns one of the four physical ports.
func (c *Chip) Port(id PortID) *pcie.Port {
	if id < PortN || id > PortS {
		panic(fmt.Sprintf("peach2 %s: no physical port %v", c.name, id))
	}
	return c.ports[id]
}

// DMAC returns the chaining DMA controller.
func (c *Chip) DMAC() *DMAC { return c.dmac }

// NIOS returns the management controller.
func (c *Chip) NIOS() *NIOS { return c.nios }

// InternalMemory exposes the packet-buffer RAM (offsets are relative to the
// buffer start, i.e. internal-block offset IntMemOffset).
func (c *Chip) InternalMemory() *memory.RAM { return c.intMem }

// IntMemGlobal returns the global bus address of internal-memory offset off.
func (c *Chip) IntMemGlobal(off uint64) pcie.Addr {
	return c.plan.Internal.Base + pcie.Addr(IntMemOffset+off)
}

// SetIRQHandler registers the driver's completion interrupt handler.
func (c *Chip) SetIRQHandler(fn func(now sim.Time)) { c.onIRQ = fn }

// AttachFaults connects the chip to a fault injector, arming the DMAC's
// recovery timers (completion timeout, chain watchdog). A nil injector —
// the default — leaves the chip on the exact pre-fault event schedule.
func (c *Chip) AttachFaults(inj *fault.Injector) { c.faults = inj }

// Faults returns the attached injector (nil on a perfect fabric).
func (c *Chip) Faults() *fault.Injector { return c.faults }

// PortUp reports whether a physical port is connected and its link alive —
// what the NIOS health scan and the status register report.
func (c *Chip) PortUp(id PortID) bool {
	return c.Port(id).Connected() && !c.portDead[id]
}

// LinkDead is the dead-link notification from a port's data-link layer:
// the cable out of port id exhausted its replay budget. The chip marks the
// egress dead, parks the salvaged in-flight TLPs for rerouting, and tells
// the management controller, which may reprogram routes (failover).
func (c *Chip) LinkDead(now sim.Time, id PortID, salvaged []*pcie.TLP) {
	first := !c.portDead[id]
	c.portDead[id] = true
	for _, t := range salvaged {
		c.parkTLP(now, t)
	}
	if first {
		c.nios.linkDead(now, id)
	}
}

// parkTLP strands one TLP on the chip until a route reprogram re-injects
// it.
func (c *Chip) parkTLP(now sim.Time, t *pcie.TLP) {
	// Parked packets outlive every normal delivery lifetime (they wait for
	// a NIOS route reprogram), so they must never return to a pool while
	// the parked list still aliases them.
	t.Pin()
	c.parked = append(c.parked, t)
	if c.led != nil && t.LID != 0 {
		c.led.Parked(now, t.LID, c.name)
	}
	if c.rec != nil && t.Txn != 0 {
		c.rec.Record(obsv.Event{At: now, Txn: t.Txn, Stage: obsv.StageLinkDown,
			Where: c.name, Addr: uint64(t.Addr)})
	}
}

// Parked reports how many TLPs wait for a reroute.
func (c *Chip) Parked() int { return len(c.parked) }

// flushParked re-injects every parked TLP through the (just reprogrammed)
// routing unit. Packets whose new route is still dead re-park; packets
// with no route are dropped with a management-log entry — the fabric
// equivalent of an unreachable destination after degradation.
func (c *Chip) flushParked() {
	if len(c.parked) == 0 {
		return
	}
	batch := c.parked
	c.parked = nil
	c.eng.AfterComp(c.comp, 0, func() {
		now := c.eng.Now()
		for _, t := range batch {
			if c.rec != nil && t.Txn != 0 {
				c.rec.Record(obsv.Event{At: now, Txn: t.Txn, Stage: obsv.StageFailover,
					Where: c.name, Addr: uint64(t.Addr)})
			}
			dst, err := c.route(t.Addr)
			if err != nil {
				c.nios.logEvent(fmt.Sprintf("dropped parked packet for %v: no route after failover", t.Addr))
				if c.led != nil && t.LID != 0 {
					c.led.Dropped(now, t.LID, c.name, "no route after failover")
				}
				continue
			}
			if c.led != nil && t.LID != 0 {
				c.led.Unparked(now, t.LID, c.name)
			}
			switch dst {
			case PortInternal:
				c.acceptInternalWrite(now, t)
			case PortN:
				c.forwardN(now, t)
			default:
				c.forwardRing(now, t, dst)
			}
		}
	})
}

// SetTracer installs a packet-event tracer (nil disables).
//
// Deprecated: the free-form string hook predates the obsv span layer;
// Instrument records the same path as typed, transaction-scoped events.
func (c *Chip) SetTracer(fn func(now sim.Time, what string)) { c.tracer = fn }

func (c *Chip) trace(now sim.Time, format string, args ...any) {
	if c.tracer != nil {
		c.tracer(now, fmt.Sprintf(format, args...))
	}
}

// PartialReconfigTime is how long the FPGA's partial reconfiguration of
// the PCIe hard-IP takes when Port S switches between RC and EP. The paper
// ships two full configuration images and notes that "dynamic switching for
// the role of the port will be implemented because the partial
// reconfiguration for PCIe IP is available in this FPGA" (§III-D); this is
// that announced feature. Partial reconfiguration of a Stratix IV region is
// a multi-millisecond operation.
const PartialReconfigTime = 5 * units.Millisecond

// ReconfigurePortS switches Port S between RC and EP through partial
// reconfiguration; done fires when the port is usable in its new role. The
// port must be disconnected (a connected link would be torn down by the
// reconfiguration in reality; the model forbids it outright).
func (c *Chip) ReconfigurePortS(role pcie.Role, done func(now sim.Time)) error {
	if c.ports[PortS].Connected() {
		return fmt.Errorf("peach2 %s: Port S reconfiguration requires link-down", c.name)
	}
	c.eng.AfterComp(c.comp, PartialReconfigTime, func() {
		c.ports[PortS].SetRole(role)
		c.nios.logEvent(fmt.Sprintf("port S reconfigured to %v", role))
		if done != nil {
			done(c.eng.Now())
		}
	})
	return nil
}

// SetRoutes programs the routing rules directly (the driver equivalent of
// writing the RegRouteBase registers; both paths share the same storage).
func (c *Chip) SetRoutes(rules []RouteRule) {
	if len(rules) > MaxRouteRules {
		panic(fmt.Sprintf("peach2 %s: %d rules exceed the %d register sets", c.name, len(rules), MaxRouteRules))
	}
	for i := range c.regRoute {
		c.regRoute[i] = RouteRule{}
	}
	copy(c.regRoute[:], rules)
	c.rules = append(c.rules[:0], rules...)
	c.flushParked()
}

// Routes returns the active rules.
func (c *Chip) Routes() []RouteRule { return append([]RouteRule(nil), c.rules...) }

// route decides where a packet addressed to a terminates or exits.
// Own-node addresses go to Port N (after conversion) or terminate
// internally; non-TCA addresses are local bus addresses and also exit N;
// everything else consults the rule registers (Fig. 5).
func (c *Chip) route(a pcie.Addr) (PortID, error) {
	switch {
	case c.plan.Internal.Contains(a):
		return PortInternal, nil
	case c.plan.GlobalWindow.Contains(a):
		return PortN, nil
	case !c.plan.TCARegion.Contains(a):
		return PortN, nil
	}
	for _, r := range c.rules {
		if r.Out != PortInternal && r.Matches(a) {
			return r.Out, nil
		}
	}
	c.cm.routeMiss.Inc()
	return 0, fmt.Errorf("no route for %v", a)
}

// convertN translates a global own-window address to the local bus address
// Port N emits (§III-E). Local bus addresses pass through unchanged.
func (c *Chip) convertN(a pcie.Addr) (pcie.Addr, BlockClass, bool) {
	if !c.plan.GlobalWindow.Contains(a) {
		return a, ClassHost, false
	}
	for _, e := range c.plan.Conv {
		if e.Global.Contains(a) {
			return e.Local + (a - e.Global.Base), e.Class, true
		}
	}
	panic(fmt.Sprintf("peach2 %s: own-window address %v has no conversion entry", c.name, a))
}

// Accept implements pcie.Device.
func (c *Chip) Accept(now sim.Time, t *pcie.TLP, in *pcie.Port) units.Duration {
	if c.cm.tlpsIn[PortN] != nil {
		pi := c.portIndex(in)
		c.cm.tlpsIn[pi].Inc()
		c.cm.bytesIn[pi].Add(uint64(t.WireBytes()))
	}
	if c.rec != nil && t.Txn != 0 {
		c.rec.Record(obsv.Event{At: now, Txn: t.Txn, Stage: obsv.StagePortIn,
			Where: c.name, Port: in.Label, Addr: uint64(t.Addr)})
	}
	switch t.Kind {
	case pcie.CplD, pcie.Cpl:
		// Only the DMAC issues non-posted requests, always through N.
		if in != c.ports[PortN] {
			panic(fmt.Sprintf("peach2 %s: completion arrived on %s", c.name, in.Label))
		}
		c.dmac.handleCompletion(t)
		return 0
	case pcie.MRd:
		dst, err := c.route(t.Addr)
		if err != nil {
			panic(fmt.Sprintf("peach2 %s: MRd: %v", c.name, err))
		}
		if dst != PortN && dst != PortInternal {
			// §III-F: "memory access to a remote node is restricted
			// to Memory Write Request only ... PEACH2 supports only
			// RDMA put protocol".
			panic(fmt.Sprintf("peach2 %s: MRd to %v would cross the ring — RDMA put only", c.name, t.Addr))
		}
		if dst == PortInternal {
			c.serveInternalRead(now, t, in)
			return 0
		}
		// A read for the local host/GPU relayed from the host itself
		// makes no sense; reads never transit.
		panic(fmt.Sprintf("peach2 %s: unexpected MRd for local bus address %v on %s", c.name, t.Addr, in.Label))
	case pcie.MWr:
		dst, err := c.route(t.Addr)
		if err != nil {
			panic(fmt.Sprintf("peach2 %s: MWr: %v", c.name, err))
		}
		switch dst {
		case PortInternal:
			c.acceptInternalWrite(now, t)
			return 0
		case PortN:
			c.forwardN(now, t)
		default:
			c.forwardRing(now, t, dst)
		}
		// Store-and-forward ingress buffer: the slot frees once the
		// packet enters the router pipeline.
		return 8 * units.Nanosecond
	default:
		panic(fmt.Sprintf("peach2 %s: unhandled TLP kind %v", c.name, t.Kind))
	}
}

// forwardRing relays a packet toward another node. A packet routed at a
// dead egress parks for the failover reroute instead.
func (c *Chip) forwardRing(now sim.Time, t *pcie.TLP, out PortID) {
	if c.portDead[out] {
		c.parkTLP(now, t)
		return
	}
	if !c.ports[out].Connected() {
		panic(fmt.Sprintf("peach2 %s: route to unconnected port %v for %v", c.name, out, t.Addr))
	}
	c.forwarded[out]++
	c.cm.tlpsOut[out].Inc()
	c.cm.bytesOut[out].Add(uint64(t.WireBytes()))
	if c.tracer != nil {
		c.trace(now, "route %v -> port %v", t, out)
	}
	if c.rec != nil && t.Txn != 0 {
		c.rec.Record(obsv.Event{At: now, Txn: t.Txn, Stage: obsv.StageRoute,
			Where: c.name, Port: out.String(), Addr: uint64(t.Addr)})
	}
	c.eng.AfterAction(c.comp, c.params.RouterLatency, c.newRingFwd(t, out))
}

// ringFwdAction is the pooled router-pipeline event of a ring forward:
// after the router latency it emits the packet out of the chosen ring port
// and returns itself to the chip's free list.
type ringFwdAction struct {
	c   *Chip
	t   *pcie.TLP
	out PortID
}

func (c *Chip) newRingFwd(t *pcie.TLP, out PortID) *ringFwdAction {
	if n := len(c.ringFree) - 1; n >= 0 {
		a := c.ringFree[n]
		c.ringFree[n] = nil
		c.ringFree = c.ringFree[:n]
		a.c, a.t, a.out = c, t, out
		return a
	}
	return &ringFwdAction{c: c, t: t, out: out}
}

// RunAction implements sim.Action.
func (a *ringFwdAction) RunAction(now sim.Time) {
	c, t, out := a.c, a.t, a.out
	*a = ringFwdAction{}
	c.ringFree = append(c.ringFree, a)
	if c.rec != nil && t.Txn != 0 {
		c.rec.Record(obsv.Event{At: now, Txn: t.Txn, Stage: obsv.StagePortOut,
			Where: c.name, Port: out.String(), Addr: uint64(t.Addr)})
	}
	c.ports[out].Send(now, t)
}

// forwardN converts (if needed) and emits a packet toward the local host
// fabric, honouring flush semantics: a flushed packet aimed at strictly-
// ordered host memory is acknowledged back to its source chip after the
// drain delay; deep-queue GPU sinks need no acknowledgement.
func (c *Chip) forwardN(now sim.Time, t *pcie.TLP) {
	local, class, conv := c.convertN(t.Addr)
	lat := c.params.RouterLatency
	if conv {
		c.converted++
		lat += c.params.NConvLatency
	}
	c.forwarded[PortN]++
	c.cm.tlpsOut[PortN].Inc()
	c.cm.bytesOut[PortN].Add(uint64(t.WireBytes()))
	if conv {
		c.cm.converted.Inc()
	}
	if c.tracer != nil {
		if conv {
			c.trace(now, "convert %v -> local %v (%v) -> port N", t.Addr, local, class)
		} else {
			c.trace(now, "deliver %v -> port N", t)
		}
	}
	if c.rec != nil && t.Txn != 0 {
		if conv {
			c.rec.Record(obsv.Event{At: now, Txn: t.Txn, Stage: obsv.StageConvert,
				Where: c.name, Port: "N", Addr: uint64(local), Note: class.String()})
		} else {
			c.rec.Record(obsv.Event{At: now, Txn: t.Txn, Stage: obsv.StageRoute,
				Where: c.name, Port: "N", Addr: uint64(t.Addr)})
		}
	}
	// Everything the ack path needs is read before ownership of t changes
	// hands below: the pooled packet may be recycled (and its fields
	// rewritten) as soon as it reaches the host sink.
	flush, req, txn := t.Flush, t.Requester, t.Txn
	out := t
	if !t.Pooled() {
		// The creator may retain the packet (an upstream DLL replay buffer,
		// a test fixture), so the converted address must live in a copy —
		// drawn from the chip's pool so the per-forward allocation the old
		// `out := *t` paid disappears on the lossless path.
		out = c.pool.Get()
		out.Kind = t.Kind
		out.ReadLen = t.ReadLen
		out.Requester = t.Requester
		out.Tag = t.Tag
		out.Relaxed = t.Relaxed
		out.Last = t.Last
		out.Flush = t.Flush
		out.Txn = t.Txn
		out.LID = t.LID
		out.SetPayload(t.Data)
	}
	out.Addr = local
	c.eng.AfterAction(c.comp, lat, c.newNFwd(out, local, flush, class, req, txn))
}

// nFwdAction is the pooled router-pipeline event of a Port-N forward: after
// the router (plus conversion) latency it emits the converted packet toward
// the host fabric and, for flushed packets, schedules the delivery
// acknowledgement back to the source chip.
type nFwdAction struct {
	c     *Chip
	t     *pcie.TLP
	local pcie.Addr
	flush bool
	class BlockClass
	req   pcie.DeviceID
	txn   uint64
}

func (c *Chip) newNFwd(t *pcie.TLP, local pcie.Addr, flush bool, class BlockClass, req pcie.DeviceID, txn uint64) *nFwdAction {
	if n := len(c.nFree) - 1; n >= 0 {
		a := c.nFree[n]
		c.nFree[n] = nil
		c.nFree = c.nFree[:n]
		a.c, a.t, a.local, a.flush, a.class, a.req, a.txn = c, t, local, flush, class, req, txn
		return a
	}
	return &nFwdAction{c: c, t: t, local: local, flush: flush, class: class, req: req, txn: txn}
}

// RunAction implements sim.Action.
func (a *nFwdAction) RunAction(now sim.Time) {
	c, t, local := a.c, a.t, a.local
	flush, class, req, txn := a.flush, a.class, a.req, a.txn
	*a = nFwdAction{}
	c.nFree = append(c.nFree, a)
	if c.rec != nil && txn != 0 {
		c.rec.Record(obsv.Event{At: now, Txn: txn, Stage: obsv.StagePortOut,
			Where: c.name, Port: "N", Addr: uint64(local)})
	}
	c.ports[PortN].Send(now, t)
	if flush {
		delay := units.Duration(0)
		if class == ClassHost {
			delay = c.params.DMA.HostFlushDelay
		}
		c.eng.AfterComp(c.comp, delay, func() { c.sendFlushAck(req, txn) })
	}
}

// ackWord is the 8-byte flush-acknowledgement payload; read-only after
// package init (SetPayload copies it into the ack packet's own buffer).
var ackWord = [8]byte{1}

// sendFlushAck writes the source chip's ack word through the ring. The ack
// inherits the flushed packet's transaction ID so a traced chain sees its
// acknowledgement hop.
func (c *Chip) sendFlushAck(req pcie.DeviceID, txn uint64) {
	if c.plan.NodeOfRequester == nil || c.plan.AckAddrOf == nil {
		panic(fmt.Sprintf("peach2 %s: flush ack requested but plan has no requester map", c.name))
	}
	node, ok := c.plan.NodeOfRequester(req)
	if !ok {
		panic(fmt.Sprintf("peach2 %s: flush ack for unknown requester %d", c.name, req))
	}
	ack := c.pool.Get()
	ack.Kind = pcie.MWr
	ack.Addr = c.plan.AckAddrOf(node)
	ack.SetPayload(ackWord[:])
	ack.Requester = c.id
	ack.Last = true
	ack.Txn = txn
	c.acksSent++
	c.cm.acksSent.Inc()
	dst, err := c.route(ack.Addr)
	if err != nil {
		panic(fmt.Sprintf("peach2 %s: flush ack: %v", c.name, err))
	}
	if dst == PortInternal {
		// Only possible if a chip acks itself — a plan bug.
		panic(fmt.Sprintf("peach2 %s: flush ack routed to self", c.name))
	}
	c.forwardRing(c.eng.Now(), ack, dst)
}

// acceptInternalWrite terminates a write at the chip: control registers,
// the ack word, or internal packet memory.
func (c *Chip) acceptInternalWrite(now sim.Time, t *pcie.TLP) {
	off := uint64(t.Addr - c.plan.Internal.Base)
	switch {
	case off < RegRouteBase:
		c.writeRegister(now, off, t.Data)
	case off < AckOffset:
		c.writeRouteRegister(off, t.Data)
	case off < IntMemOffset:
		c.acksRecv++
		c.cm.acksRecv.Inc()
		if c.rec != nil && t.Txn != 0 {
			c.rec.Record(obsv.Event{At: now, Txn: t.Txn, Stage: obsv.StageFlushAck,
				Where: c.name, Addr: uint64(t.Addr)})
		}
		c.dmac.handleAck(now)
	default:
		c.intWrites++
		c.cm.intWrites.Inc()
		if err := c.intMem.Write(off-IntMemOffset, t.Data); err != nil {
			panic(fmt.Sprintf("peach2 %s: internal write: %v", c.name, err))
		}
		if t.Flush {
			// A flushed chain ending in this chip's buffer drains
			// here; acknowledge immediately.
			c.sendFlushAck(t.Requester, t.Txn)
		}
	}
	if c.led != nil && t.LID != 0 {
		c.led.Delivered(now, t.LID, uint64(t.Addr), t.Data, c.name)
	}
	// The write terminated here: the chip is the packet's sink.
	t.Release()
}

// writeRegister decodes a control-register store. Registers are 8-byte
// little-endian words.
func (c *Chip) writeRegister(now sim.Time, off uint64, data []byte) {
	if len(data) != 8 {
		panic(fmt.Sprintf("peach2 %s: %d-byte register write at offset %#x", c.name, len(data), off))
	}
	v := binary.LittleEndian.Uint64(data)
	switch off {
	case RegDMATable:
		c.regTable = v
	case RegDMACount:
		c.regCount = v
		c.eng.AfterComp(c.comp, c.params.DMA.DoorbellDecode, func() {
			c.dmac.start(c.eng.Now(), pcie.Addr(c.regTable), int(v))
		})
	case RegChipID, RegStatus, RegDMAStatus:
		panic(fmt.Sprintf("peach2 %s: write to read-only register %#x", c.name, off))
	default:
		panic(fmt.Sprintf("peach2 %s: write to undefined register %#x", c.name, off))
	}
}

// writeRouteRegister decodes a store into the Fig. 5 rule registers.
func (c *Chip) writeRouteRegister(off uint64, data []byte) {
	if len(data) != 8 {
		panic(fmt.Sprintf("peach2 %s: %d-byte route register write", c.name, len(data)))
	}
	v := binary.LittleEndian.Uint64(data)
	idx := (off - RegRouteBase) / RouteRuleStride
	field := (off - RegRouteBase) % RouteRuleStride / 8
	if idx >= MaxRouteRules {
		panic(fmt.Sprintf("peach2 %s: route rule %d out of range", c.name, idx))
	}
	r := &c.regRoute[idx]
	switch field {
	case 0:
		r.Mask = pcie.Addr(v)
	case 1:
		r.Lower = pcie.Addr(v)
	case 2:
		r.Upper = pcie.Addr(v)
	case 3:
		r.Out = PortID(v)
	}
	// The rule array mirrors the registers.
	c.rules = c.rules[:0]
	for _, rule := range c.regRoute {
		if rule.Mask != 0 {
			c.rules = append(c.rules, rule)
		}
	}
}

// serveInternalRead answers a host read of registers or internal memory.
func (c *Chip) serveInternalRead(now sim.Time, t *pcie.TLP, in *pcie.Port) {
	off := uint64(t.Addr - c.plan.Internal.Base)
	if c.led != nil && t.LID != 0 {
		c.led.Delivered(now, t.LID, uint64(t.Addr), nil, c.name)
	}
	req := *t
	// The request terminated here; the reply below works from the copy.
	t.Release()
	c.eng.AfterComp(c.comp, c.params.NConvLatency, func() {
		var data []byte
		switch {
		case off < RegRouteBase:
			buf := make([]byte, 8)
			switch off {
			case RegChipID:
				binary.LittleEndian.PutUint64(buf, uint64(c.id))
			case RegStatus:
				binary.LittleEndian.PutUint64(buf, c.nios.statusWord())
			case RegDMATable:
				binary.LittleEndian.PutUint64(buf, c.regTable)
			case RegDMACount:
				binary.LittleEndian.PutUint64(buf, c.regCount)
			case RegDMAStatus:
				binary.LittleEndian.PutUint64(buf, uint64(c.dmac.status()))
			default:
				panic(fmt.Sprintf("peach2 %s: read of undefined register %#x", c.name, off))
			}
			data = buf[:req.ReadLen]
		case off >= IntMemOffset:
			var err error
			data, err = c.intMem.ReadBytes(off-IntMemOffset, req.ReadLen)
			if err != nil {
				panic(fmt.Sprintf("peach2 %s: internal read: %v", c.name, err))
			}
		default:
			panic(fmt.Sprintf("peach2 %s: read of unreadable internal offset %#x", c.name, off))
		}
		maxPayload := in.Link().Params().MaxPayload
		for _, cpl := range pcie.SplitCompletion(&req, data, maxPayload) {
			in.Send(c.eng.Now(), cpl)
		}
	})
}

// raiseIRQ delivers the DMAC completion interrupt to the driver; txn is the
// completed chain's transaction ID (zero when untraced).
func (c *Chip) raiseIRQ(txn uint64) {
	c.eng.AfterComp(c.comp, c.params.DMA.IRQLatency, func() {
		c.cm.irqs.Inc()
		if c.rec != nil && txn != 0 {
			c.rec.Record(obsv.Event{At: c.eng.Now(), Txn: txn, Stage: obsv.StageIRQ,
				Where: c.name})
		}
		if c.onIRQ != nil {
			c.onIRQ(c.eng.Now())
		}
	})
}

// Stats summarizes the chip's activity.
type Stats struct {
	Forwarded [numPorts]uint64
	Converted uint64
	AcksSent  uint64
	AcksRecv  uint64
	IntWrites uint64
	DMAChains uint64
	DMATLPs   uint64
}

// Stats returns a snapshot of the chip's counters.
func (c *Chip) Stats() Stats {
	return Stats{
		Forwarded: c.forwarded,
		Converted: c.converted,
		AcksSent:  c.acksSent,
		AcksRecv:  c.acksRecv,
		IntWrites: c.intWrites,
		DMAChains: c.dmac.chains,
		DMATLPs:   c.dmac.tlpsIssued,
	}
}

// Ports implements pcie.Enumerable for topology walks — and deliberately
// exposes only Port N. The host's bus scan sees PEACH2 as an ordinary
// endpoint; the E/W/S ring links are invisible to configuration space, so
// "the link state with the other node has no impact on the connection
// between the host and the PEACH2 chip" (§V). Contrast ntb.Bridge.
func (c *Chip) Ports() []*pcie.Port { return []*pcie.Port{c.ports[PortN]} }
