package peach2

import (
	"encoding/binary"
	"testing"

	"tca/internal/pcie"
	"tca/internal/sim"
	"tca/internal/units"
)

// testPlan builds a 2-node-style plan by hand (64 GiB windows, 16 GiB
// blocks) without importing tcanet.
func testPlan(nodeID int) NodePlan {
	const regionBase = pcie.Addr(0x80_0000_0000)
	const window = uint64(64 << 30)
	const block = window / 4
	base := regionBase + pcie.Addr(uint64(nodeID)*window)
	blockAt := func(node, b int) pcie.Range {
		return pcie.Range{
			Base: regionBase + pcie.Addr(uint64(node)*window+uint64(b)*block),
			Size: block,
		}
	}
	return NodePlan{
		NodeID:       nodeID,
		GlobalWindow: pcie.Range{Base: base, Size: window},
		TCARegion:    pcie.Range{Base: regionBase, Size: 2 * window},
		Internal:     blockAt(nodeID, 3),
		Conv: []ConvEntry{
			{Global: blockAt(nodeID, 0), Local: 0x60_0000_0000, Class: ClassGPU},
			{Global: blockAt(nodeID, 1), Local: 0x61_0000_0000, Class: ClassGPU},
			{Global: blockAt(nodeID, 2), Local: 0, Class: ClassHost},
		},
		AckAddrOf: func(n int) pcie.Addr {
			return blockAt(n, 3).Base + pcie.Addr(AckOffset)
		},
		NodeOfRequester: func(id pcie.DeviceID) (int, bool) { return int(id) - 1, id >= 1 && id <= 2 },
		ClassOf: func(a pcie.Addr) (BlockClass, bool) {
			if a < regionBase || a >= regionBase+pcie.Addr(2*window) {
				return 0, false
			}
			switch uint64(a-regionBase) % window / block {
			case 0, 1:
				return ClassGPU, true
			case 2:
				return ClassHost, true
			default:
				return ClassInternal, true
			}
		},
	}
}

type recorder struct {
	name string
	got  []*pcie.TLP
	at   []sim.Time
}

func (r *recorder) DevName() string { return r.name }
func (r *recorder) Accept(now sim.Time, t *pcie.TLP, p *pcie.Port) units.Duration {
	r.got = append(r.got, t)
	r.at = append(r.at, now)
	return 0
}

// chipFixture: a chip with a fake host on N and a fake neighbour on E.
type chipFixture struct {
	eng   *sim.Engine
	chip  *Chip
	hostd *recorder
	east  *recorder
}

func newChipFixture(t *testing.T) *chipFixture {
	t.Helper()
	eng := sim.NewEngine()
	chip := New(eng, "peach2-A", 1, DefaultParams, testPlan(0))
	f := &chipFixture{eng: eng, chip: chip, hostd: &recorder{name: "host"}, east: &recorder{name: "east"}}
	hp := pcie.NewPort(f.hostd, "dn", pcie.RoleRC)
	pcie.MustConnect(eng, hp, chip.Port(PortN), pcie.LinkParams{Config: pcie.Gen2x8})
	ep := pcie.NewPort(f.east, "W", pcie.RoleRC) // pretends to be the next chip's W port
	pcie.MustConnect(eng, chip.Port(PortE), ep, pcie.LinkParams{Config: pcie.Gen2x8, Propagation: 100 * units.Nanosecond})
	win := uint64(64 << 30)
	mask := ^pcie.Addr(win - 1)
	chip.SetRoutes([]RouteRule{{
		Mask:  mask,
		Lower: 0x80_0000_0000 + pcie.Addr(win),
		Upper: 0x80_0000_0000 + pcie.Addr(win),
		Out:   PortE,
	}})
	return f
}

func (f *chipFixture) hostPort() *pcie.Port { return f.chip.Port(PortN).Peer() }

func TestChipRoutesRemoteWindowToRing(t *testing.T) {
	f := newChipFixture(t)
	remote := pcie.Addr(0x80_0000_0000 + uint64(64<<30) + 0x1234)
	f.hostPort().Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: remote, Data: []byte{1, 2}})
	f.eng.Run()
	if len(f.east.got) != 1 || f.east.got[0].Addr != remote {
		t.Fatalf("east got %v", f.east.got)
	}
	if len(f.hostd.got) != 0 {
		t.Fatal("packet leaked back to host")
	}
	// Router pipeline (100 ns) must be visible in the forwarding time.
	if f.east.at[0] < sim.Time(100*units.Nanosecond) {
		t.Fatalf("forwarded at %v — router latency missing", f.east.at[0])
	}
}

func TestChipConvertsOwnWindowAtPortN(t *testing.T) {
	f := newChipFixture(t)
	// A write arriving on E for this node's host block must exit N with
	// the local bus address (global base stripped).
	hostBlock := pcie.Addr(0x80_0000_0000 + 2*uint64(16<<30))
	in := f.chip.Port(PortE).Peer()
	in.Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: hostBlock + 0x4000, Data: []byte{7}})
	f.eng.Run()
	if len(f.hostd.got) != 1 {
		t.Fatalf("host got %d packets", len(f.hostd.got))
	}
	if got := f.hostd.got[0].Addr; got != 0x4000 {
		t.Fatalf("converted address = %v, want 0x4000", got)
	}
	if f.chip.Stats().Converted != 1 {
		t.Fatal("conversion counter not incremented")
	}
}

func TestChipConvertsGPUBlock(t *testing.T) {
	f := newChipFixture(t)
	gpu1 := pcie.Addr(0x80_0000_0000 + uint64(16<<30))
	in := f.chip.Port(PortE).Peer()
	in.Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: gpu1 + 0x100, Data: []byte{7}})
	f.eng.Run()
	if got := f.hostd.got[0].Addr; got != 0x61_0000_0100 {
		t.Fatalf("converted GPU address = %v, want 0x61_0000_0100", got)
	}
}

func TestChipLocalBusAddressesPassThroughN(t *testing.T) {
	f := newChipFixture(t)
	// DMAC-originated packets to local bus addresses (outside the TCA
	// region) exit N unchanged.
	f.chip.DMAC().sendFromDMAC(&pcie.TLP{Kind: pcie.MWr, Addr: 0x9000, Data: []byte{1}, Requester: 1})
	f.eng.Run()
	if len(f.hostd.got) != 1 || f.hostd.got[0].Addr != 0x9000 {
		t.Fatalf("host got %v", f.hostd.got)
	}
}

func TestChipRemoteReadPanics(t *testing.T) {
	f := newChipFixture(t)
	remote := pcie.Addr(0x80_0000_0000 + uint64(64<<30))
	defer func() {
		if recover() == nil {
			t.Fatal("remote MRd did not panic — RDMA put only (§III-F)")
		}
	}()
	f.hostPort().Send(0, &pcie.TLP{Kind: pcie.MRd, Addr: remote, ReadLen: 64, Requester: 9})
	f.eng.Run()
}

func TestChipUnroutableAddressPanics(t *testing.T) {
	f := newChipFixture(t)
	f.chip.SetRoutes(nil)
	remote := pcie.Addr(0x80_0000_0000 + uint64(64<<30))
	defer func() {
		if recover() == nil {
			t.Fatal("unroutable packet did not panic")
		}
	}()
	f.hostPort().Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: remote, Data: []byte{1}})
	f.eng.Run()
}

func TestChipInternalMemoryWriteAndRead(t *testing.T) {
	f := newChipFixture(t)
	dst := f.chip.IntMemGlobal(0x40)
	f.hostPort().Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: dst, Data: []byte("buffer bytes")})
	f.eng.Run()
	got, err := f.chip.InternalMemory().ReadBytes(0x40, 12)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "buffer bytes" {
		t.Fatalf("internal memory holds %q", got)
	}
	// Read back over PCIe.
	f.hostPort().Send(f.eng.Now(), &pcie.TLP{Kind: pcie.MRd, Addr: dst, ReadLen: 12, Tag: 3, Requester: 9})
	f.eng.Run()
	var data []byte
	for _, c := range f.hostd.got {
		data = append(data, c.Data...)
	}
	if string(data) != "buffer bytes" {
		t.Fatalf("PCIe read returned %q", data)
	}
}

func TestChipRegisterWriteAndReadback(t *testing.T) {
	f := newChipFixture(t)
	base := f.chip.plan.Internal.Base
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, 0xDEAD_BEEF)
	f.hostPort().Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: base + pcie.Addr(RegDMATable), Data: buf})
	f.eng.Run()
	f.hostPort().Send(f.eng.Now(), &pcie.TLP{Kind: pcie.MRd, Addr: base + pcie.Addr(RegDMATable), ReadLen: 8, Tag: 1, Requester: 9})
	f.eng.Run()
	if len(f.hostd.got) != 1 {
		t.Fatalf("got %d completions", len(f.hostd.got))
	}
	if v := binary.LittleEndian.Uint64(f.hostd.got[0].Data); v != 0xDEAD_BEEF {
		t.Fatalf("register readback = %#x", v)
	}
}

func TestChipRouteRegistersProgramRules(t *testing.T) {
	f := newChipFixture(t)
	f.chip.SetRoutes(nil)
	base := f.chip.plan.Internal.Base + pcie.Addr(RegRouteBase)
	win := uint64(64 << 30)
	vals := []uint64{
		uint64(^pcie.Addr(win - 1)),             // mask
		uint64(0x80_0000_0000 + pcie.Addr(win)), // lower
		uint64(0x80_0000_0000 + pcie.Addr(win)), // upper
		uint64(PortE),                           // out
	}
	for i, v := range vals {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, v)
		f.hostPort().Send(f.eng.Now(), &pcie.TLP{Kind: pcie.MWr, Addr: base + pcie.Addr(i*8), Data: buf})
	}
	f.eng.Run()
	rules := f.chip.Routes()
	if len(rules) != 1 || rules[0].Out != PortE {
		t.Fatalf("register-programmed rules = %+v", rules)
	}
	// And they route.
	remote := pcie.Addr(0x80_0000_0000 + win + 0x10)
	f.hostPort().Send(f.eng.Now(), &pcie.TLP{Kind: pcie.MWr, Addr: remote, Data: []byte{5}})
	f.eng.Run()
	if len(f.east.got) != 1 {
		t.Fatal("register-programmed route did not forward")
	}
}

func TestChipReadOnlyRegisterPanics(t *testing.T) {
	f := newChipFixture(t)
	base := f.chip.plan.Internal.Base
	defer func() {
		if recover() == nil {
			t.Fatal("write to RegChipID did not panic")
		}
	}()
	f.hostPort().Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: base + pcie.Addr(RegChipID), Data: make([]byte, 8)})
	f.eng.Run()
}

func TestChipStatusRegister(t *testing.T) {
	f := newChipFixture(t)
	base := f.chip.plan.Internal.Base
	f.hostPort().Send(0, &pcie.TLP{Kind: pcie.MRd, Addr: base + pcie.Addr(RegStatus), ReadLen: 8, Tag: 1, Requester: 9})
	f.eng.Run()
	w := binary.LittleEndian.Uint64(f.hostd.got[0].Data)
	// N and E connected, W and S not, DMAC idle.
	if w != 0b0011 {
		t.Fatalf("status word = %#b, want 0b0011", w)
	}
}

func TestSetRoutesLimit(t *testing.T) {
	f := newChipFixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("9 rules did not panic")
		}
	}()
	f.chip.SetRoutes(make([]RouteRule, 9))
}

func TestNIOSMonitoring(t *testing.T) {
	f := newChipFixture(t)
	f.chip.NIOS().Start(units.Microsecond)
	f.eng.RunFor(10 * units.Microsecond)
	st := f.chip.NIOS().Status()
	if st.Scans < 9 {
		t.Fatalf("scans = %d, want ~10", st.Scans)
	}
	if !st.PortUp[PortN] || !st.PortUp[PortE] || st.PortUp[PortW] || st.PortUp[PortS] {
		t.Fatalf("port state wrong: %+v", st.PortUp)
	}
	// Link-up transitions were logged for N and E.
	if st.Events != 2 {
		t.Fatalf("events = %d, want 2", st.Events)
	}
	f.chip.NIOS().Stop()
	f.eng.RunFor(10 * units.Microsecond)
	after := f.chip.NIOS().Status().Scans
	f.eng.RunFor(10 * units.Microsecond)
	if f.chip.NIOS().Status().Scans != after {
		t.Fatal("NIOS kept scanning after Stop")
	}
}

func TestNIOSStartValidation(t *testing.T) {
	f := newChipFixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval did not panic")
		}
	}()
	f.chip.NIOS().Start(0)
}

func TestChipPortAccessors(t *testing.T) {
	eng := sim.NewEngine()
	chip := New(eng, "c", 1, DefaultParams, testPlan(0))
	if chip.Port(PortN).Role() != pcie.RoleEP {
		t.Fatal("Port N must be an endpoint toward the host")
	}
	if chip.Port(PortE).Role() != pcie.RoleEP || chip.Port(PortW).Role() != pcie.RoleRC {
		t.Fatal("E must be EP and W must be RC (§III-D)")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Port(PortInternal) did not panic")
		}
	}()
	chip.Port(PortInternal)
}
