package peach2

import (
	"encoding/binary"
	"fmt"

	"tca/internal/obsv"
	"tca/internal/pcie"
	"tca/internal/prof"
	"tca/internal/sim"
	"tca/internal/units"
)

// DescKind selects a descriptor's transfer direction. The paper's current
// DMAC moves data through the chip's internal memory ("the internal memory
// of PEACH2 must be specified as the source address on DMA write and as the
// destination address on DMA read", §IV-B2); the pipelined kind is the "new
// DMAC" the paper announces as future work, reading the local source and
// writing the remote destination in one descriptor.
type DescKind uint8

// Descriptor kinds.
const (
	// DescWrite moves Len bytes from internal-memory offset Src to bus
	// address Dst (local host/GPU or a remote node's global address).
	DescWrite DescKind = iota
	// DescRead moves Len bytes from local bus address Src into
	// internal-memory offset Dst.
	DescRead
	// DescPipelined moves Len bytes from local bus address Src directly
	// to (usually remote) bus address Dst, overlapping the read and
	// write phases — the paper's future-work DMAC (§IV-B2).
	DescPipelined
)

// String names the kind.
func (k DescKind) String() string {
	switch k {
	case DescWrite:
		return "write"
	case DescRead:
		return "read"
	case DescPipelined:
		return "pipelined"
	default:
		return fmt.Sprintf("DescKind(%d)", int(k))
	}
}

// Descriptor is one entry of a chaining-DMA descriptor table (§III-F2).
type Descriptor struct {
	Kind DescKind
	Len  units.ByteSize
	Src  uint64
	Dst  uint64
}

// DescriptorBytes is the on-wire table entry size.
const DescriptorBytes = 32

// Encode serializes the descriptor into its 32-byte table entry.
func (d Descriptor) Encode() [DescriptorBytes]byte {
	var b [DescriptorBytes]byte
	b[0] = byte(d.Kind)
	binary.LittleEndian.PutUint32(b[4:], uint32(d.Len))
	binary.LittleEndian.PutUint64(b[8:], d.Src)
	binary.LittleEndian.PutUint64(b[16:], d.Dst)
	return b
}

// DecodeDescriptor parses one 32-byte table entry.
func DecodeDescriptor(b []byte) (Descriptor, error) {
	if len(b) < DescriptorBytes {
		return Descriptor{}, fmt.Errorf("peach2: short descriptor: %d bytes", len(b))
	}
	d := Descriptor{
		Kind: DescKind(b[0]),
		Len:  units.ByteSize(binary.LittleEndian.Uint32(b[4:])),
		Src:  binary.LittleEndian.Uint64(b[8:]),
		Dst:  binary.LittleEndian.Uint64(b[16:]),
	}
	if d.Kind > DescPipelined {
		return Descriptor{}, fmt.Errorf("peach2: unknown descriptor kind %d", b[0])
	}
	if d.Len <= 0 {
		return Descriptor{}, fmt.Errorf("peach2: descriptor with length %d", d.Len)
	}
	return d, nil
}

// EncodeTable serializes a chain into the byte image the driver places in
// host memory.
func EncodeTable(descs []Descriptor) []byte {
	out := make([]byte, 0, len(descs)*DescriptorBytes)
	for _, d := range descs {
		e := d.Encode()
		out = append(out, e[:]...)
	}
	return out
}

// dmacState tracks the controller's phase.
type dmacState int

const (
	dmacIdle dmacState = iota
	dmacFetching
	dmacRunning
)

// DMAC is the chaining DMA controller: "multiple DMA requests as the DMA
// descriptors are registered in the descriptor table in advance, and DMA
// transactions are then operated automatically according to the DMA
// descriptors by hardwired logic once the DMA descriptor table is
// activated" (§III-F2).
type DMAC struct {
	chip *Chip
	// comp is the DMAC's host-time attribution tag (0 when unprofiled).
	comp sim.CompID
	tags *pcie.TagTable
	// issue paces outbound write TLPs; readIssue paces outbound read
	// requests independently, so the pipelined DMAC really does operate
	// "both the read request ... and the write request ... simultaneously
	// in a pipeline manner" (§IV-B2).
	issue     sim.Serializer
	readIssue sim.Serializer

	state dmacState

	// Current chain.
	descs           []Descriptor
	totalWriteTLPs  int
	writeTLPsIssued int
	issuesPending   int
	readQueue       []readReq
	readsPending    int
	allGenerated    bool
	waitAck         bool
	ackSeen         bool

	// Fault recovery. chainGen invalidates every callback scheduled for a
	// chain that has since been aborted (it only advances on doorbell and
	// failChain, so healthy runs never observe a mismatch). stuck marks a
	// chain with a wedged descriptor: it can never complete and must be
	// reaped by the watchdog.
	chainGen uint64
	lastErr  error
	errs     uint64
	stuck    bool

	// Stats.
	chains     uint64
	tlpsIssued uint64
	readsSent  uint64

	// Observability. txn is the running chain's transaction ID (0 when
	// untraced); lastTxn survives until the next doorbell so the driver's
	// IRQ handler can close the span after the chain completed. All metric
	// handles are nil when uninstrumented.
	txn        uint64
	lastTxn    uint64
	chainStart sim.Time
	// busyAccum is the cumulative busy time of completed chains; the
	// telemetry probe adds the running chain's partial time on top, so
	// the windowed busy fraction is exact at any tick.
	busyAccum units.Duration
	mChains   *obsv.Counter
	mTLPs     *obsv.Counter
	mReads    *obsv.Counter
	mBusyPS   *obsv.Counter
	mErrs     *obsv.Counter
	mQueue    *obsv.Gauge
	mChainLat *obsv.Histogram
}

// instrument registers the DMAC's metrics under "<chip>/dmac".
// profile registers the DMAC as its own component so chain and TLP-issue
// events are attributed separately from the chip's router.
func (d *DMAC) profile(p *prof.Profiler) {
	d.comp = p.Component(d.chip.name + "/dmac")
}

func (d *DMAC) instrument(set *obsv.Set) {
	reg := set.Registry()
	name := d.chip.name + "/dmac"
	d.mChains = reg.Counter("dma_chains", name)
	d.mTLPs = reg.Counter("dma_write_tlps", name)
	d.mReads = reg.Counter("dma_reads_sent", name)
	d.mBusyPS = reg.Counter("dma_busy_ps", name)
	d.mErrs = reg.Counter("dma_chain_errors", name)
	d.mQueue = reg.Gauge("dma_read_queue_depth", name)
	d.mChainLat = reg.Histogram("dma_chain_latency", name, nil)
	d.registerProbes(set.Sampler(), name)
}

// registerProbes wires the DMAC's telemetry: windowed busy fraction, read
// queue depth, and outstanding read requests.
func (d *DMAC) registerProbes(sam *obsv.Sampler, name string) {
	if sam == nil {
		return
	}
	var lastBusy units.Duration
	sam.Register("dma_busy", name, "", "%", func(now sim.Time, elapsed units.Duration) float64 {
		busy := d.busyAccum
		if d.state != dmacIdle {
			busy += now.Sub(d.chainStart)
		}
		delta := busy - lastBusy
		lastBusy = busy
		if elapsed <= 0 {
			return 0
		}
		return 100 * float64(delta) / float64(elapsed)
	})
	sam.Register("dma_read_queue", name, "", "reqs", func(sim.Time, units.Duration) float64 {
		return float64(len(d.readQueue))
	})
	sam.Register("dma_reads_inflight", name, "", "reads", func(sim.Time, units.Duration) float64 {
		return float64(d.readsPending)
	})
}

// LastChainTxn reports the transaction ID of the most recently completed
// chain (0 when untraced) — how the driver's IRQ handler finds the span to
// close with StageChainDone.
func (d *DMAC) LastChainTxn() uint64 { return d.lastTxn }

type readReq struct {
	tlp    *pcie.TLP
	onData func(data []byte)
	// tagWait marks that a queue-enter wait event was recorded for this
	// request when the tag table starved, so dequeueing pairs it with the
	// matching queue-exit.
	tagWait bool
}

func newDMAC(c *Chip) *DMAC {
	return &DMAC{chip: c, tags: pcie.NewTagTable(c.params.DMA.OutstandingReads)}
}

// Busy reports whether a chain is in flight.
func (d *DMAC) Busy() bool { return d.state != dmacIdle }

// OutstandingReads reports reads issued but not yet completed or
// cancelled. At quiesce this must be zero — the invariant checker audits
// it to prove no read was silently abandoned with its tag still held.
func (d *DMAC) OutstandingReads() int { return d.tags.Outstanding() }

func (d *DMAC) status() int {
	if d.Busy() {
		return 1
	}
	return 0
}

// start is the doorbell: fetch count descriptors from tableAddr in host
// memory, then execute them. Reached through a store to RegDMACount.
func (d *DMAC) start(now sim.Time, tableAddr pcie.Addr, count int) {
	if d.Busy() {
		panic(fmt.Sprintf("peach2 %s: doorbell while DMAC busy", d.chip.name))
	}
	if count <= 0 {
		panic(fmt.Sprintf("peach2 %s: doorbell with count %d", d.chip.name, count))
	}
	d.resetChain()
	d.state = dmacFetching
	d.chainGen++
	d.armWatchdog()
	d.beginTxn(now, tableAddr)
	total := units.ByteSize(count) * DescriptorBytes
	table := make([]byte, total)
	chunks := pcie.SplitRead(tableAddr, total, d.chip.params.DMA.FetchChunk)
	remaining := len(chunks)
	var off uint64
	for _, ch := range chunks {
		chunkOff := off
		chunkLen := ch.ReadLen
		d.enqueueRead(ch, func(data []byte) {
			copy(table[chunkOff:], data)
			remaining--
			if remaining == 0 {
				d.parseAndRun(table, count)
			}
		})
		off += uint64(chunkLen)
	}
	d.pumpReads()
}

// StartImmediate executes a single descriptor without a table fetch — the
// register-written "DMA function without a descriptor ... desired for
// relatively small amounts of data" (§IV-A1). Used by the ablation bench.
func (d *DMAC) StartImmediate(now sim.Time, desc Descriptor) {
	if d.Busy() {
		panic(fmt.Sprintf("peach2 %s: StartImmediate while DMAC busy", d.chip.name))
	}
	d.resetChain()
	d.state = dmacRunning
	d.chainGen++
	d.armWatchdog()
	d.beginTxn(now, pcie.Addr(desc.Dst))
	d.runChain([]Descriptor{desc})
}

// armWatchdog schedules the whole-chain timeout. Gated on fault injection:
// a perfect fabric never needs it, and not scheduling the event keeps
// fault-free runs on the exact pre-fault schedule.
func (d *DMAC) armWatchdog() {
	if !d.chip.faults.Enabled() {
		return
	}
	gen := d.chainGen
	d.chip.eng.AfterComp(d.comp, d.chip.params.DMA.chainTimeout(), func() {
		if gen != d.chainGen || d.state == dmacIdle {
			return
		}
		d.failChain(fmt.Errorf("chain watchdog fired after %v", d.chip.params.DMA.chainTimeout()))
	})
}

// beginTxn opens a new traced chain: allocates its transaction ID and
// records the doorbell span event.
func (d *DMAC) beginTxn(now sim.Time, addr pcie.Addr) {
	d.chainStart = now
	d.txn = d.chip.rec.NextTxn()
	if d.txn != 0 {
		d.chip.rec.Record(obsv.Event{At: now, Txn: d.txn, Stage: obsv.StageDoorbell,
			Where: d.chip.name, Addr: uint64(addr)})
	}
}

func (d *DMAC) resetChain() {
	d.descs = nil
	d.totalWriteTLPs = 0
	d.writeTLPsIssued = 0
	d.issuesPending = 0
	d.readQueue = d.readQueue[:0]
	d.readsPending = 0
	d.allGenerated = false
	d.waitAck = false
	d.ackSeen = false
	d.lastErr = nil
	d.stuck = false
}

func (d *DMAC) parseAndRun(table []byte, count int) {
	descs := make([]Descriptor, 0, count)
	for i := 0; i < count; i++ {
		desc, err := DecodeDescriptor(table[i*DescriptorBytes:])
		if err != nil {
			panic(fmt.Sprintf("peach2 %s: descriptor %d: %v", d.chip.name, i, err))
		}
		descs = append(descs, desc)
	}
	if d.txn != 0 {
		d.chip.rec.Record(obsv.Event{At: d.chip.eng.Now(), Txn: d.txn,
			Stage: obsv.StageDMAFetch, Where: d.chip.name,
			Note: fmt.Sprintf("%d descriptors", count)})
	}
	d.state = dmacRunning
	d.runChain(descs)
}

// splitCount reports how many write TLPs SplitWrite produces for (addr, n)
// without materializing them.
func splitCount(addr pcie.Addr, n units.ByteSize, maxPayload units.ByteSize) int {
	count := 0
	for n > 0 {
		l := maxPayload
		if l > n {
			l = n
		}
		if room := units.ByteSize(4096 - uint64(addr)%4096); l > room {
			l = room
		}
		count++
		addr += pcie.Addr(l)
		n -= l
	}
	return count
}

// runChain generates the chain's work. Write TLPs pass through the issue
// serializer (one per IssueInterval — the pipeline bound behind the "93% of
// theoretical" peak); reads are throttled by the tag table.
func (d *DMAC) runChain(descs []Descriptor) {
	d.descs = descs
	maxPayload := pcie.DefaultMaxPayload
	if d.chip.ports[PortN].Connected() {
		maxPayload = d.chip.ports[PortN].Link().Params().MaxPayload
	}

	// Injected stuck descriptors: the hardwired sequencer hangs on the
	// wedged entry, so its work is never generated and the chain can only
	// be reaped by the watchdog.
	var stuck []bool
	if d.chip.faults.Enabled() {
		stuck = make([]bool, len(descs))
		for i := range descs {
			if d.chip.faults.StuckDescriptor(i) {
				stuck[i] = true
				d.stuck = true
			}
		}
	}

	// Count all write TLPs up front so the final one can carry the
	// chain's Last/Flush marking at issue time.
	for i, desc := range descs {
		if stuck != nil && stuck[i] {
			continue
		}
		switch desc.Kind {
		case DescWrite:
			d.totalWriteTLPs += splitCount(pcie.Addr(desc.Dst), desc.Len, maxPayload)
		case DescPipelined:
			for _, ch := range pcie.SplitRead(pcie.Addr(desc.Src), desc.Len, d.chip.params.DMA.MaxReadRequest) {
				delta := uint64(ch.Addr) - desc.Src
				d.totalWriteTLPs += splitCount(pcie.Addr(desc.Dst+delta), ch.ReadLen, maxPayload)
			}
		}
	}
	d.waitAck = d.chainNeedsFlush(descs)

	for i, desc := range descs {
		if stuck != nil && stuck[i] {
			continue
		}
		switch desc.Kind {
		case DescWrite:
			d.generateWrite(desc, maxPayload)
		case DescRead:
			d.generateRead(desc)
		case DescPipelined:
			d.generatePipelined(desc, maxPayload)
		}
	}
	d.allGenerated = true
	d.pumpReads()
	d.maybeComplete()
}

// chainNeedsFlush decides whether the chain must wait for a remote
// delivery acknowledgement: yes when the final descriptor writes to another
// node's host memory or internal buffer (strictly ordered sinks), no for
// local targets and for remote GPU memory (deep request queue, §IV-B2).
func (d *DMAC) chainNeedsFlush(descs []Descriptor) bool {
	last := descs[len(descs)-1]
	if last.Kind == DescRead {
		return false
	}
	dst := pcie.Addr(last.Dst)
	plan := d.chip.plan
	if !plan.TCARegion.Contains(dst) || plan.GlobalWindow.Contains(dst) {
		return false // local target
	}
	if plan.ClassOf == nil {
		panic(fmt.Sprintf("peach2 %s: remote DMA needs plan.ClassOf", d.chip.name))
	}
	class, ok := plan.ClassOf(dst)
	if !ok {
		panic(fmt.Sprintf("peach2 %s: remote address %v has no class", d.chip.name, dst))
	}
	return class != ClassGPU
}

// classOfGlobal labels a global destination, defaulting locals to host.
func (d *DMAC) classOfGlobal(a pcie.Addr) BlockClass {
	if d.chip.plan.ClassOf != nil && d.chip.plan.TCARegion.Contains(a) {
		if cl, ok := d.chip.plan.ClassOf(a); ok {
			return cl
		}
	}
	return ClassHost
}

// generateWrite schedules a DescWrite's TLPs: data flows from internal
// memory to the destination.
func (d *DMAC) generateWrite(desc Descriptor, maxPayload units.ByteSize) {
	relaxed := d.classOfGlobal(pcie.Addr(desc.Dst)) == ClassGPU
	addr := pcie.Addr(desc.Dst)
	srcOff := desc.Src
	n := desc.Len
	for n > 0 {
		l := maxPayload
		if l > n {
			l = n
		}
		if room := units.ByteSize(4096 - uint64(addr)%4096); l > room {
			l = room
		}
		d.issueWrite(addr, srcOff, l, relaxed)
		addr += pcie.Addr(l)
		srcOff += uint64(l)
		n -= l
	}
}

// issueSlotDur is the pipeline occupancy of one write TLP: the DMAC issues
// at most one TLP per IssueInterval, and the TX FIFO backpressures it to
// the wire rate when payloads are large enough that serialization is the
// slower of the two.
func (d *DMAC) issueSlotDur(payload units.ByteSize) units.Duration {
	dur := d.chip.params.DMA.IssueInterval
	wire := units.TimeToSend(payload+pcie.TLPOverhead, d.chip.params.LinkConfig.RawBandwidth())
	if wire > dur {
		dur = wire
	}
	return dur
}

// issueWrite reserves an issue slot for one write TLP reading its payload
// from internal memory at send time.
func (d *DMAC) issueWrite(addr pcie.Addr, srcOff uint64, n units.ByteSize, relaxed bool) {
	d.issuesPending++
	dur := d.issueSlotDur(n)
	reservedAt := d.chip.eng.Now()
	slot := d.issue.Reserve(reservedAt, dur)
	gen := d.chainGen
	d.chip.eng.AtComp(d.comp, slot.Add(dur), func() {
		if gen != d.chainGen {
			return // chain aborted since this slot was reserved
		}
		data, err := d.chip.intMem.ReadBytes(srcOff, n)
		if err != nil {
			panic(fmt.Sprintf("peach2 %s: DMA write source: %v", d.chip.name, err))
		}
		d.writeTLPsIssued++
		d.issuesPending--
		d.tlpsIssued++
		d.mTLPs.Inc()
		final := d.writeTLPsIssued == d.totalWriteTLPs
		d.recordIssueWait(final, reservedAt, slot)
		tlp := d.chip.pool.Get()
		tlp.Kind = pcie.MWr
		tlp.Addr = addr
		tlp.Data = data
		tlp.Requester = d.chip.id
		tlp.Relaxed = relaxed
		tlp.Last = final
		tlp.Flush = final && d.waitAck
		tlp.Txn = d.txn
		d.recordIssue(tlp, final)
		d.sendFromDMAC(tlp)
		d.maybeComplete()
	})
}

// recordIssueWait spans the issue-pipeline wait of a traced chain's final
// write TLP: the time between reserving the issue slot and the slot
// opening is chain-serialization — the TLP paced behind its predecessors
// at one per IssueInterval. Only the final TLP records it (matching
// recordIssue) so large chains don't flood the ring.
func (d *DMAC) recordIssueWait(final bool, reservedAt, slot sim.Time) {
	if d.txn == 0 || !final || slot <= reservedAt {
		return
	}
	d.chip.rec.Record(obsv.Event{At: reservedAt, Txn: d.txn, Stage: obsv.StageQueueEnter,
		Where: d.chip.name, Cause: obsv.CauseChainSerialization})
	d.chip.rec.Record(obsv.Event{At: slot, Txn: d.txn, Stage: obsv.StageQueueExit,
		Where: d.chip.name, Cause: obsv.CauseChainSerialization})
}

// recordIssue spans the final write TLP of a traced chain — the one whose
// delivery the completion protocol tracks. Per-TLP issue events would flood
// the ring for large chains without sharpening the breakdown.
func (d *DMAC) recordIssue(t *pcie.TLP, final bool) {
	if d.txn == 0 || !final {
		return
	}
	d.chip.rec.Record(obsv.Event{At: d.chip.eng.Now(), Txn: d.txn,
		Stage: obsv.StageDMAIssue, Where: d.chip.name, Addr: uint64(t.Addr),
		Note: fmt.Sprintf("tlp %d/%d", d.writeTLPsIssued, d.totalWriteTLPs)})
}

// issueWriteData is issueWrite for payloads already in hand (the pipelined
// DMAC forwarding read completions).
func (d *DMAC) issueWriteData(addr pcie.Addr, data []byte, relaxed bool) {
	d.issuesPending++
	dur := d.issueSlotDur(units.ByteSize(len(data)))
	reservedAt := d.chip.eng.Now()
	slot := d.issue.Reserve(reservedAt, dur)
	gen := d.chainGen
	d.chip.eng.AtComp(d.comp, slot.Add(dur), func() {
		if gen != d.chainGen {
			return // chain aborted since this slot was reserved
		}
		d.writeTLPsIssued++
		d.issuesPending--
		d.tlpsIssued++
		d.mTLPs.Inc()
		final := d.writeTLPsIssued == d.totalWriteTLPs
		d.recordIssueWait(final, reservedAt, slot)
		tlp := d.chip.pool.Get()
		tlp.Kind = pcie.MWr
		tlp.Addr = addr
		tlp.Data = data
		tlp.Requester = d.chip.id
		tlp.Relaxed = relaxed
		tlp.Last = final
		tlp.Flush = final && d.waitAck
		tlp.Txn = d.txn
		d.recordIssue(tlp, final)
		d.sendFromDMAC(tlp)
		d.maybeComplete()
	})
}

// sendFromDMAC routes a DMAC-originated packet out of the chip.
func (d *DMAC) sendFromDMAC(t *pcie.TLP) {
	out, err := d.chip.route(t.Addr)
	if err != nil {
		panic(fmt.Sprintf("peach2 %s: DMA issue: %v", d.chip.name, err))
	}
	switch out {
	case PortInternal:
		// A self-targeted DMA write (diagnostics): terminate directly.
		d.chip.acceptInternalWrite(d.chip.eng.Now(), t)
	case PortN:
		local, _, conv := d.chip.convertN(t.Addr)
		if conv {
			d.chip.converted++
			d.chip.cm.converted.Inc()
		}
		out := t
		if !t.Pooled() {
			// An unpooled packet may be retained by its creator; the
			// converted address must live in a copy.
			c := *t
			out = &c
		}
		out.Addr = local
		d.chip.cm.tlpsOut[PortN].Inc()
		d.chip.cm.bytesOut[PortN].Add(uint64(out.WireBytes()))
		d.chip.ports[PortN].Send(d.chip.eng.Now(), out)
	default:
		if d.chip.portDead[out] {
			d.chip.parkTLP(d.chip.eng.Now(), t)
			return
		}
		d.chip.forwarded[out]++
		d.chip.cm.tlpsOut[out].Inc()
		d.chip.cm.bytesOut[out].Add(uint64(t.WireBytes()))
		d.chip.ports[out].Send(d.chip.eng.Now(), t)
	}
}

// generateRead schedules a DescRead: local bus → internal memory.
func (d *DMAC) generateRead(desc Descriptor) {
	for _, ch := range pcie.SplitRead(pcie.Addr(desc.Src), desc.Len, d.chip.params.DMA.MaxReadRequest) {
		delta := uint64(ch.Addr) - desc.Src
		dstOff := desc.Dst + delta
		d.enqueueRead(ch, func(data []byte) {
			if err := d.chip.intMem.Write(dstOff, data); err != nil {
				panic(fmt.Sprintf("peach2 %s: DMA read sink: %v", d.chip.name, err))
			}
		})
	}
}

// generatePipelined schedules a DescPipelined: as each read completion
// arrives from the local source, its bytes stream straight out as write
// TLPs — no staging in internal memory (§IV-B2's "new DMAC").
func (d *DMAC) generatePipelined(desc Descriptor, maxPayload units.ByteSize) {
	relaxed := d.classOfGlobal(pcie.Addr(desc.Dst)) == ClassGPU
	for _, ch := range pcie.SplitRead(pcie.Addr(desc.Src), desc.Len, d.chip.params.DMA.MaxReadRequest) {
		delta := uint64(ch.Addr) - desc.Src
		dst := pcie.Addr(desc.Dst + delta)
		d.enqueueRead(ch, func(data []byte) {
			for _, w := range pcie.SplitWrite(dst, data, maxPayload, relaxed) {
				d.issueWriteData(w.Addr, w.Data, relaxed)
			}
		})
	}
}

// enqueueRead queues a read request; pumpReads issues as tags free up.
func (d *DMAC) enqueueRead(tlp *pcie.TLP, onData func([]byte)) {
	d.readQueue = append(d.readQueue, readReq{tlp: tlp, onData: onData})
	d.mQueue.Set(int64(len(d.readQueue)))
}

// pumpReads issues queued reads while tags are available. Reads verify that
// the target is local: the DMAC may only read through Port N (§III-F).
func (d *DMAC) pumpReads() {
	for len(d.readQueue) > 0 {
		req := d.readQueue[0]
		out, err := d.chip.route(req.tlp.Addr)
		if err != nil {
			panic(fmt.Sprintf("peach2 %s: DMA read: %v", d.chip.name, err))
		}
		if out != PortN {
			panic(fmt.Sprintf("peach2 %s: DMA read from %v is not local — RDMA put only", d.chip.name, req.tlp.Addr))
		}
		onData := req.onData
		st := &readState{}
		tag, ok := d.tags.Alloc(req.tlp.ReadLen, func(data []byte) {
			st.done = true
			d.readsPending--
			onData(data)
			d.pumpReads()
			d.maybeComplete()
		})
		if !ok {
			// Tag-starved; retry on next completion. Mark the wait once so
			// the traced chain attributes the stall to tag exhaustion.
			if d.txn != 0 && !d.readQueue[0].tagWait {
				d.readQueue[0].tagWait = true
				d.chip.rec.Record(obsv.Event{At: d.chip.eng.Now(), Txn: d.txn,
					Stage: obsv.StageQueueEnter, Where: d.chip.name,
					Addr: uint64(req.tlp.Addr), Cause: obsv.CauseTagWait})
			}
			return
		}
		copy(d.readQueue, d.readQueue[1:])
		d.readQueue = d.readQueue[:len(d.readQueue)-1]
		d.mQueue.Set(int64(len(d.readQueue)))
		d.readsPending++
		d.readsSent++
		d.mReads.Inc()
		if req.tagWait && d.txn != 0 {
			d.chip.rec.Record(obsv.Event{At: d.chip.eng.Now(), Txn: d.txn,
				Stage: obsv.StageQueueExit, Where: d.chip.name,
				Addr: uint64(req.tlp.Addr), Cause: obsv.CauseTagWait})
		}
		mrd := *req.tlp
		mrd.Tag = tag
		mrd.Requester = d.chip.id
		mrd.Txn = d.txn
		gen := d.chainGen
		reservedAt := d.chip.eng.Now()
		slot := d.readIssue.Reserve(reservedAt, d.chip.params.DMA.IssueInterval)
		if d.txn != 0 && slot > reservedAt {
			// Paced behind earlier read requests in the issue pipeline.
			d.chip.rec.Record(obsv.Event{At: reservedAt, Txn: d.txn,
				Stage: obsv.StageQueueEnter, Where: d.chip.name,
				Addr: uint64(mrd.Addr), Cause: obsv.CauseChainSerialization})
			d.chip.rec.Record(obsv.Event{At: slot, Txn: d.txn,
				Stage: obsv.StageQueueExit, Where: d.chip.name,
				Addr: uint64(mrd.Addr), Cause: obsv.CauseChainSerialization})
		}
		d.chip.eng.AtComp(d.comp, slot.Add(d.chip.params.DMA.IssueInterval), func() {
			if gen != d.chainGen {
				return // chain aborted since this slot was reserved
			}
			d.chip.ports[PortN].Send(d.chip.eng.Now(), &mrd)
			d.armReadTimeout(&mrd, st, 0, gen)
		})
	}
}

// readState marks one read's completion so its timeout can stand down.
type readState struct{ done bool }

// armReadTimeout schedules the completion timeout for one outstanding
// read: each expiry retransmits the request with exponential backoff until
// the retry budget runs out, then the whole chain is aborted with an
// error. Gated on fault injection so fault-free runs schedule nothing.
func (d *DMAC) armReadTimeout(mrd *pcie.TLP, st *readState, attempt int, gen uint64) {
	if !d.chip.faults.Enabled() {
		return
	}
	timeout := d.chip.params.DMA.cplTimeout() << uint(attempt)
	d.chip.eng.AfterComp(d.comp, timeout, func() {
		if st.done || gen != d.chainGen || d.state == dmacIdle {
			return
		}
		if attempt >= d.chip.params.DMA.cplRetries() {
			d.failChain(fmt.Errorf("read %v (tag %d) lost: no completion after %d retries", mrd.Addr, mrd.Tag, attempt))
			return
		}
		d.chip.faults.NoteReadRetry()
		if d.txn != 0 {
			d.chip.rec.Record(obsv.Event{At: d.chip.eng.Now(), Txn: d.txn,
				Stage: obsv.StageReadRetry, Where: d.chip.name, Addr: uint64(mrd.Addr),
				Note: fmt.Sprintf("attempt %d", attempt+1)})
		}
		retry := *mrd
		// A retry is a logically new request, not the old packet moving
		// again: clear the conservation-ledger identity so the fabric
		// births it fresh instead of flagging a duplicate.
		retry.LID = 0
		d.chip.ports[PortN].Send(d.chip.eng.Now(), &retry)
		d.armReadTimeout(mrd, st, attempt+1, gen)
	})
}

// failChain aborts the running chain: outstanding reads are cancelled,
// queued work is discarded, stale callbacks are invalidated through
// chainGen, and the error is surfaced to the driver (LastChainError, the
// status register) alongside the completion IRQ — instead of hanging the
// DMAC forever as the paper's error-free model would.
func (d *DMAC) failChain(err error) {
	if d.state == dmacIdle {
		return
	}
	d.chip.faults.NoteChainError()
	d.errs++
	d.mErrs.Inc()
	d.lastErr = fmt.Errorf("peach2 %s: %v", d.chip.name, err)
	d.chip.nios.logEvent(fmt.Sprintf("dmac chain aborted: %v", err))
	if d.txn != 0 {
		d.chip.rec.Record(obsv.Event{At: d.chip.eng.Now(), Txn: d.txn,
			Stage: obsv.StageChainError, Where: d.chip.name, Note: err.Error()})
	}
	d.tags.CancelAll()
	d.readQueue = d.readQueue[:0]
	d.mQueue.Set(0)
	d.readsPending = 0
	d.issuesPending = 0
	d.state = dmacIdle
	d.chainGen++
	busy := d.chip.eng.Now().Sub(d.chainStart)
	d.busyAccum += busy
	d.mBusyPS.Add(uint64(busy))
	d.lastTxn = d.txn
	d.txn = 0
	d.chip.raiseIRQ(d.lastTxn)
}

// LastChainError reports the most recent chain's error (nil after a clean
// completion — resetChain clears it at the next doorbell).
func (d *DMAC) LastChainError() error { return d.lastErr }

// ChainErrors reports how many chains have been aborted.
func (d *DMAC) ChainErrors() uint64 { return d.errs }

// handleCompletion feeds a completion arriving on Port N into the tag
// table. Under fault injection a completion can legitimately miss — its
// read was cancelled by failChain, or a retry raced the original reply —
// so mismatches are logged and dropped instead of treated as fabric bugs.
func (d *DMAC) handleCompletion(t *pcie.TLP) {
	err := d.tags.HandleCompletion(t)
	if d.chip.led != nil && t.LID != 0 {
		now := d.chip.eng.Now()
		if err != nil {
			d.chip.led.Dropped(now, t.LID, d.chip.name, "stale completion after chain abort")
		} else {
			d.chip.led.Delivered(now, t.LID, uint64(t.Addr), t.Data, d.chip.name)
		}
	}
	// The completion terminated here either way: release before any error
	// handling so the stale-completion path cannot leak pooled packets.
	t.Release()
	if err != nil {
		if d.chip.faults.Enabled() {
			d.chip.nios.logEvent(fmt.Sprintf("dropped stale completion: %v", err))
			return
		}
		panic(fmt.Sprintf("peach2 %s: %v", d.chip.name, err))
	}
}

// handleAck records the flush acknowledgement from the remote chip.
func (d *DMAC) handleAck(now sim.Time) {
	d.ackSeen = true
	d.maybeComplete()
}

// maybeComplete finishes the chain once every TLP has issued, every read
// has returned, and any required flush ack has arrived; then the completion
// interrupt fires (§IV-A: the clock is read "in the interrupt handler
// generated by the completion from the DMAC").
func (d *DMAC) maybeComplete() {
	if d.state != dmacRunning || !d.allGenerated {
		return
	}
	if d.stuck {
		return // a wedged descriptor never finishes; the watchdog reaps it
	}
	if d.issuesPending > 0 || d.readsPending > 0 || len(d.readQueue) > 0 {
		return
	}
	if d.waitAck && !d.ackSeen {
		return
	}
	d.state = dmacIdle
	d.chains++
	d.mChains.Inc()
	busy := d.chip.eng.Now().Sub(d.chainStart)
	d.busyAccum += busy
	d.mBusyPS.Add(uint64(busy))
	d.mChainLat.Observe(busy)
	d.lastTxn = d.txn
	d.txn = 0
	d.chip.raiseIRQ(d.lastTxn)
}

// ChainsCompleted reports how many chains have finished.
func (d *DMAC) ChainsCompleted() uint64 { return d.chains }
