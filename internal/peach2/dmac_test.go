package peach2

import (
	"testing"
	"testing/quick"

	"tca/internal/pcie"
	"tca/internal/units"
)

func TestDescriptorEncodeDecode(t *testing.T) {
	cases := []Descriptor{
		{Kind: DescWrite, Len: 4096, Src: 0x1000, Dst: 0x80_0000_0000},
		{Kind: DescRead, Len: 64, Src: 0x2000, Dst: 0},
		{Kind: DescPipelined, Len: 1 << 20, Src: 0x40_0000_0000, Dst: 0x81_0000_0000},
	}
	for _, d := range cases {
		e := d.Encode()
		got, err := DecodeDescriptor(e[:])
		if err != nil {
			t.Fatalf("decode(%v): %v", d, err)
		}
		if got != d {
			t.Fatalf("round trip: got %+v, want %+v", got, d)
		}
	}
}

func TestDecodeDescriptorErrors(t *testing.T) {
	if _, err := DecodeDescriptor(make([]byte, 16)); err == nil {
		t.Fatal("short descriptor accepted")
	}
	bad := Descriptor{Kind: DescWrite, Len: 8}.Encode()
	bad[0] = 99
	if _, err := DecodeDescriptor(bad[:]); err == nil {
		t.Fatal("unknown kind accepted")
	}
	zero := Descriptor{Kind: DescWrite, Len: 0}.Encode()
	if _, err := DecodeDescriptor(zero[:]); err == nil {
		t.Fatal("zero length accepted")
	}
}

func TestEncodeTable(t *testing.T) {
	descs := []Descriptor{
		{Kind: DescWrite, Len: 128, Src: 0, Dst: 0x1000},
		{Kind: DescRead, Len: 256, Src: 0x2000, Dst: 64},
	}
	table := EncodeTable(descs)
	if len(table) != 2*DescriptorBytes {
		t.Fatalf("table size %d", len(table))
	}
	for i, want := range descs {
		got, err := DecodeDescriptor(table[i*DescriptorBytes:])
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("entry %d: got %+v want %+v", i, got, want)
		}
	}
}

// Property: descriptor encoding round-trips for arbitrary fields.
func TestQuickDescriptorRoundTrip(t *testing.T) {
	f := func(kind uint8, l uint32, src, dst uint64) bool {
		d := Descriptor{Kind: DescKind(kind % 3), Len: units.ByteSize(l%(1<<30) + 1), Src: src, Dst: dst}
		e := d.Encode()
		got, err := DecodeDescriptor(e[:])
		return err == nil && got == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitCountMatchesSplitWrite(t *testing.T) {
	f := func(addrSeed uint32, l uint32, mpShift uint8) bool {
		addr := pcie.Addr(addrSeed)
		n := units.ByteSize(l%(1<<18) + 1)
		mp := units.ByteSize(64 << (mpShift % 4))
		want := len(pcie.SplitWrite(addr, make([]byte, n), mp, false))
		return splitCount(addr, n, mp) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteRuleMatches(t *testing.T) {
	// A Fig. 5 style rule: 32 GiB windows, nodes 1–2 eastward.
	win := uint64(32 << 30)
	mask := ^pcie.Addr(win - 1)
	r := RouteRule{
		Mask:  mask,
		Lower: 0x80_0000_0000 + pcie.Addr(win),
		Upper: 0x80_0000_0000 + pcie.Addr(2*win),
		Out:   PortE,
	}
	cases := []struct {
		a    pcie.Addr
		want bool
	}{
		{0x80_0000_0000, false},                         // node 0
		{0x80_0000_0000 + pcie.Addr(win), true},         // node 1 base
		{0x80_0000_0000 + pcie.Addr(win) + 0xFF, true},  // node 1 interior
		{0x80_0000_0000 + pcie.Addr(2*win+win-1), true}, // node 2 top
		{0x80_0000_0000 + pcie.Addr(3*win), false},      // node 3
	}
	for _, c := range cases {
		if got := r.Matches(c.a); got != c.want {
			t.Errorf("Matches(%v) = %t, want %t", c.a, got, c.want)
		}
	}
}

func TestPortIDString(t *testing.T) {
	want := map[PortID]string{PortN: "N", PortE: "E", PortW: "W", PortS: "S", PortInternal: "internal"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("PortID(%d).String() = %q, want %q", int(p), p.String(), s)
		}
	}
}

func TestBlockClassString(t *testing.T) {
	if ClassHost.String() != "host" || ClassGPU.String() != "gpu" || ClassInternal.String() != "internal" {
		t.Fatal("BlockClass strings wrong")
	}
}

func TestDescKindString(t *testing.T) {
	if DescWrite.String() != "write" || DescRead.String() != "read" || DescPipelined.String() != "pipelined" {
		t.Fatal("DescKind strings wrong")
	}
}
