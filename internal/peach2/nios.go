package peach2

import (
	"fmt"
	"strings"

	"tca/internal/sim"
	"tca/internal/units"
)

// NIOS models the embedded management controller: "the controller works
// only to monitor and manage PEARL, except for the packet transfer. Thus, a
// small, low-power controller is sufficient" (§III-D). It never touches the
// data path; it periodically samples link state and keeps an event log the
// operator would read over the board's Gigabit Ethernet / RS-232C side
// channels.
type NIOS struct {
	chip *Chip

	running   bool
	interval  units.Duration
	scans     uint64
	lastUp    [4]bool
	events    []Event
	maxEvents int
}

// Event is one management-log entry.
type Event struct {
	At   sim.Time
	What string
}

// Status is a management snapshot.
type Status struct {
	Scans     uint64
	PortUp    [4]bool
	Forwarded [numPorts]uint64
	DMAChains uint64
	Events    int
}

func newNIOS(c *Chip) *NIOS {
	return &NIOS{chip: c, maxEvents: 256}
}

// Start begins periodic link monitoring.
func (n *NIOS) Start(interval units.Duration) {
	if interval <= 0 {
		panic(fmt.Sprintf("peach2 %s: NIOS interval %v", n.chip.name, interval))
	}
	if n.running {
		return
	}
	n.running = true
	n.interval = interval
	n.chip.eng.After(interval, n.scan)
}

// Stop halts monitoring after the next scan.
func (n *NIOS) Stop() { n.running = false }

func (n *NIOS) scan() {
	if !n.running {
		return
	}
	n.scans++
	for p := PortN; p <= PortS; p++ {
		up := n.chip.ports[p].Connected()
		if up != n.lastUp[p] {
			n.logEvent(fmt.Sprintf("port %v link %s", p, linkWord(up)))
			n.lastUp[p] = up
		}
	}
	n.chip.eng.After(n.interval, n.scan)
}

func linkWord(up bool) string {
	if up {
		return "up"
	}
	return "down"
}

func (n *NIOS) logEvent(what string) {
	if len(n.events) >= n.maxEvents {
		copy(n.events, n.events[1:])
		n.events = n.events[:len(n.events)-1]
	}
	n.events = append(n.events, Event{At: n.chip.eng.Now(), What: what})
}

// Status samples the chip — the management "GetStatus" command.
func (n *NIOS) Status() Status {
	var s Status
	s.Scans = n.scans
	for p := PortN; p <= PortS; p++ {
		s.PortUp[p] = n.chip.ports[p].Connected()
	}
	s.Forwarded = n.chip.forwarded
	s.DMAChains = n.chip.dmac.chains
	s.Events = len(n.events)
	return s
}

// Events returns a copy of the management log.
func (n *NIOS) Events() []Event { return append([]Event(nil), n.events...) }

// statusWord packs link state into the RegStatus register image.
func (n *NIOS) statusWord() uint64 {
	var w uint64
	for p := PortN; p <= PortS; p++ {
		if n.chip.ports[p].Connected() {
			w |= 1 << uint(p)
		}
	}
	if n.chip.dmac.Busy() {
		w |= 1 << 8
	}
	return w
}

// Execute processes a management-console command line as the board's
// RS-232C / Gigabit Ethernet side channel would ("Gigabit Ethernet and
// RS-232C are equipped for communication with the NIOS processor",
// §III-D). Supported commands: status, counters, log, routes, help.
func (n *NIOS) Execute(cmd string) (string, error) {
	switch strings.TrimSpace(cmd) {
	case "help", "":
		return "commands: status counters log routes help", nil
	case "status":
		st := n.Status()
		var sb strings.Builder
		fmt.Fprintf(&sb, "%s up=%v scans=%d", n.chip.name, st.PortUp, st.Scans)
		if n.chip.dmac.Busy() {
			sb.WriteString(" dmac=busy")
		} else {
			sb.WriteString(" dmac=idle")
		}
		return sb.String(), nil
	case "counters":
		st := n.chip.Stats()
		return fmt.Sprintf("forwarded N=%d E=%d W=%d S=%d converted=%d acksSent=%d acksRecv=%d chains=%d tlps=%d",
			st.Forwarded[PortN], st.Forwarded[PortE], st.Forwarded[PortW], st.Forwarded[PortS],
			st.Converted, st.AcksSent, st.AcksRecv, st.DMAChains, st.DMATLPs), nil
	case "log":
		var sb strings.Builder
		for _, e := range n.events {
			fmt.Fprintf(&sb, "[%v] %s\n", e.At, e.What)
		}
		return sb.String(), nil
	case "routes":
		var sb strings.Builder
		for i, r := range n.chip.Routes() {
			fmt.Fprintf(&sb, "rule %d: mask %v [%v, %v] -> %v\n", i, r.Mask, r.Lower, r.Upper, r.Out)
		}
		return sb.String(), nil
	default:
		return "", fmt.Errorf("peach2 %s: unknown console command %q", n.chip.name, cmd)
	}
}
