package peach2

import (
	"fmt"
	"strings"

	"tca/internal/sim"
	"tca/internal/units"
)

// NIOS models the embedded management controller: "the controller works
// only to monitor and manage PEARL, except for the packet transfer. Thus, a
// small, low-power controller is sufficient" (§III-D). It never touches the
// data path; it periodically samples link state and keeps an event log the
// operator would read over the board's Gigabit Ethernet / RS-232C side
// channels.
type NIOS struct {
	chip *Chip

	running   bool
	interval  units.Duration
	scans     uint64
	lastUp    [4]bool
	events    []Event
	maxEvents int

	// onDeadLink fires when a port's data-link layer declares its cable
	// dead (replay exhaustion) — the hook the failover controller uses to
	// reprogram routes mid-run.
	onDeadLink func(now sim.Time, port PortID)
	failovers  uint64
}

// Event is one management-log entry.
type Event struct {
	At   sim.Time
	What string
}

// Status is a management snapshot.
type Status struct {
	Scans     uint64
	PortUp    [4]bool
	Forwarded [numPorts]uint64
	DMAChains uint64
	Events    int
	Failovers uint64
}

func newNIOS(c *Chip) *NIOS {
	return &NIOS{chip: c, maxEvents: 256}
}

// Start begins periodic link monitoring.
func (n *NIOS) Start(interval units.Duration) {
	if interval <= 0 {
		panic(fmt.Sprintf("peach2 %s: NIOS interval %v", n.chip.name, interval))
	}
	if n.running {
		return
	}
	n.running = true
	n.interval = interval
	n.chip.eng.AfterComp(n.chip.comp, interval, n.scan)
}

// Stop halts monitoring after the next scan.
func (n *NIOS) Stop() { n.running = false }

func (n *NIOS) scan() {
	if !n.running {
		return
	}
	n.scans++
	for p := PortN; p <= PortS; p++ {
		up := n.chip.PortUp(p)
		if up != n.lastUp[p] {
			n.logEvent(fmt.Sprintf("port %v link %s", p, linkWord(up)))
			n.lastUp[p] = up
		}
	}
	n.chip.eng.AfterComp(n.chip.comp, n.interval, n.scan)
}

// linkDead is the chip's dead-link notification: log it and hand it to the
// failover controller. Unlike the periodic scan this fires exactly at the
// replay-exhaustion instant — the health monitor's fast path.
func (n *NIOS) linkDead(now sim.Time, port PortID) {
	n.logEvent(fmt.Sprintf("port %v link dead (replay exhausted)", port))
	n.lastUp[port] = false
	if n.onDeadLink != nil {
		n.onDeadLink(now, port)
	}
}

// SetDeadLinkHandler registers the failover controller's callback.
func (n *NIOS) SetDeadLinkHandler(fn func(now sim.Time, port PortID)) {
	n.onDeadLink = fn
}

// NoteFailover records a completed route reprogram around a cut link.
func (n *NIOS) NoteFailover(cut int) {
	n.failovers++
	n.logEvent(fmt.Sprintf("failover: routes reprogrammed around cut ring link %d", cut))
}

// NoteFailoverAbort records a failover that could not be computed (for
// example the avoidance rules overflow the route registers); traffic for
// the unreachable nodes is left to the host/IB fallback path.
func (n *NIOS) NoteFailoverAbort(err error) {
	n.logEvent(fmt.Sprintf("failover aborted: %v", err))
}

// Failovers reports how many reroutes this controller completed.
func (n *NIOS) Failovers() uint64 { return n.failovers }

func linkWord(up bool) string {
	if up {
		return "up"
	}
	return "down"
}

func (n *NIOS) logEvent(what string) {
	if len(n.events) >= n.maxEvents {
		copy(n.events, n.events[1:])
		n.events = n.events[:len(n.events)-1]
	}
	n.events = append(n.events, Event{At: n.chip.eng.Now(), What: what})
}

// Status samples the chip — the management "GetStatus" command.
func (n *NIOS) Status() Status {
	var s Status
	s.Scans = n.scans
	for p := PortN; p <= PortS; p++ {
		s.PortUp[p] = n.chip.PortUp(p)
	}
	s.Forwarded = n.chip.forwarded
	s.DMAChains = n.chip.dmac.chains
	s.Events = len(n.events)
	s.Failovers = n.failovers
	return s
}

// Events returns a copy of the management log.
func (n *NIOS) Events() []Event { return append([]Event(nil), n.events...) }

// statusWord packs link state into the RegStatus register image.
func (n *NIOS) statusWord() uint64 {
	var w uint64
	for p := PortN; p <= PortS; p++ {
		if n.chip.PortUp(p) {
			w |= 1 << uint(p)
		}
	}
	if n.chip.dmac.Busy() {
		w |= 1 << 8
	}
	return w
}

// Execute processes a management-console command line as the board's
// RS-232C / Gigabit Ethernet side channel would ("Gigabit Ethernet and
// RS-232C are equipped for communication with the NIOS processor",
// §III-D). Supported commands: status, counters, log, routes, help.
func (n *NIOS) Execute(cmd string) (string, error) {
	switch strings.TrimSpace(cmd) {
	case "help", "":
		return "commands: status counters log routes help", nil
	case "status":
		st := n.Status()
		var sb strings.Builder
		fmt.Fprintf(&sb, "%s up=%v scans=%d", n.chip.name, st.PortUp, st.Scans)
		if n.chip.dmac.Busy() {
			sb.WriteString(" dmac=busy")
		} else {
			sb.WriteString(" dmac=idle")
		}
		return sb.String(), nil
	case "counters":
		st := n.chip.Stats()
		return fmt.Sprintf("forwarded N=%d E=%d W=%d S=%d converted=%d acksSent=%d acksRecv=%d chains=%d tlps=%d",
			st.Forwarded[PortN], st.Forwarded[PortE], st.Forwarded[PortW], st.Forwarded[PortS],
			st.Converted, st.AcksSent, st.AcksRecv, st.DMAChains, st.DMATLPs), nil
	case "log":
		var sb strings.Builder
		for _, e := range n.events {
			fmt.Fprintf(&sb, "[%v] %s\n", e.At, e.What)
		}
		return sb.String(), nil
	case "routes":
		var sb strings.Builder
		for i, r := range n.chip.Routes() {
			fmt.Fprintf(&sb, "rule %d: mask %v [%v, %v] -> %v\n", i, r.Mask, r.Lower, r.Upper, r.Out)
		}
		return sb.String(), nil
	default:
		return "", fmt.Errorf("peach2 %s: unknown console command %q", n.chip.name, cmd)
	}
}
