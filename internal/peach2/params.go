// Package peach2 implements the PCI Express Adaptive Communication Hub
// version 2 — the FPGA router chip at the heart of the TCA architecture
// (§III of the paper). A Chip has four PCIe Gen2 x8 ports (N to the host,
// E/W forming the ring, S joining two rings), a compare-only routing unit
// driven by mask/lower/upper control registers (Fig. 5), address conversion
// from the TCA global space to local bus addresses at Port N (§III-E), a
// chaining DMA controller fed by descriptor tables in host memory (§III-F2),
// internal packet-buffer memory, and a NIOS management controller stub.
package peach2

import (
	"tca/internal/pcie"
	"tca/internal/units"
)

// PortID names the chip's ports and the two internal endpoints a packet can
// terminate at.
type PortID int

// Port identifiers. N is always the host; E/W form the ring; S couples two
// rings (§III-D).
const (
	PortN PortID = iota
	PortE
	PortW
	PortS
	// PortInternal terminates at the chip itself: control registers, the
	// ack window and internal packet memory.
	PortInternal
	numPorts
)

// String names the port like the paper.
func (p PortID) String() string {
	switch p {
	case PortN:
		return "N"
	case PortE:
		return "E"
	case PortW:
		return "W"
	case PortS:
		return "S"
	case PortInternal:
		return "internal"
	default:
		return "?"
	}
}

// Register offsets inside the chip's internal block of the TCA global
// window. The host reaches them with ordinary stores through the mmapped
// BAR (the same path PIO data takes).
const (
	RegChipID    uint64 = 0x00 // read-only chip identity
	RegStatus    uint64 = 0x08 // link/DMAC status bits
	RegDMATable  uint64 = 0x10 // bus address of the descriptor table
	RegDMACount  uint64 = 0x18 // descriptor count; writing rings the doorbell
	RegDMAStatus uint64 = 0x20 // 0 idle, 1 running, 2 done

	// RegRouteBase starts eight routing-rule register quartets of
	// RouteRuleStride bytes each: mask, lower bound, upper bound, output
	// port (Fig. 5).
	RegRouteBase    uint64 = 0x100
	RouteRuleStride uint64 = 0x20
	MaxRouteRules          = 8

	// AckOffset is the flush-acknowledge landing zone: remote chips
	// write here to confirm that a flushed chain drained (§IV-B2
	// modelling; see DESIGN.md).
	AckOffset uint64 = 0x800

	// IntMemOffset is where the internal packet-buffer memory (FPGA
	// embedded RAM + DDR3 SODIMM) begins inside the internal block.
	IntMemOffset uint64 = 0x1000
)

// Params tunes one chip. Defaults reproduce the paper's measurements; see
// DESIGN.md §4 for the derivations.
type Params struct {
	// ClockMHz is the FPGA fabric clock ("the greater part of the PEACH2
	// chip operates at 250 MHz", §III-G).
	ClockMHz int
	// RouterLatency is the ingress-to-egress pipeline delay for a
	// forwarded packet.
	RouterLatency units.Duration
	// NConvLatency is the extra address-conversion delay at Port N
	// egress (global TCA address → local bus address, §III-E).
	NConvLatency units.Duration
	// InternalMemSize is the packet-buffer capacity (embedded RAM plus
	// the DDR3 SODIMM).
	InternalMemSize units.ByteSize
	// LinkConfig is the port configuration — four PCIe Gen2 x8 hard-IP
	// ports on the Stratix IV GX (§III-B).
	LinkConfig pcie.LinkConfig
	// DMA tunes the chaining DMA controller.
	DMA DMAParams
}

// DMAParams tunes the chaining DMA controller.
type DMAParams struct {
	// IssueInterval is the pipeline's per-TLP issue slot. 19 cycles at
	// 250 MHz = 76 ns per 256 B write ⇒ ~3.37 GB/s peak, the paper's
	// "93% of theoretical" (§IV-A1).
	IssueInterval units.Duration
	// DoorbellDecode is the delay from the doorbell register write to
	// the descriptor fetch starting.
	DoorbellDecode units.Duration
	// FetchChunk bounds each descriptor-table read request.
	FetchChunk units.ByteSize
	// MaxReadRequest bounds data-read requests (DMA read / pipelined).
	MaxReadRequest units.ByteSize
	// OutstandingReads is the DMAC's read tag count.
	OutstandingReads int
	// IRQLatency is chain completion to the host interrupt handler
	// running — included in the paper's TSC measurements (§IV-A).
	IRQLatency units.Duration
	// HostFlushDelay is the remote chip's drain delay before
	// acknowledging a flushed chain aimed at strictly-ordered host
	// memory.
	HostFlushDelay units.Duration
	// CplTimeout is how long the DMAC waits for a read completion before
	// retransmitting the request; each retry doubles it. Zero means
	// DefaultCplTimeout. Only armed when fault injection is attached —
	// the paper's perfect fabric never loses a completion.
	CplTimeout units.Duration
	// CplRetries bounds read retransmissions before the chain is aborted
	// with an error. Zero means DefaultCplRetries.
	CplRetries int
	// ChainTimeout is the whole-chain watchdog: a chain that has not
	// completed after this long is aborted and its error surfaced through
	// the status register instead of hanging the DMAC forever. Zero means
	// DefaultChainTimeout. Only armed when fault injection is attached.
	ChainTimeout units.Duration
}

// Recovery-timer defaults: a completion timeout far above any healthy read
// round trip, the conventional handful of retries, and a chain watchdog
// generous enough for multi-megabyte chains.
const (
	DefaultCplTimeout   = 20 * units.Microsecond
	DefaultCplRetries   = 3
	DefaultChainTimeout = 2 * units.Millisecond
)

// cplTimeout returns the configured or default completion timeout.
func (p DMAParams) cplTimeout() units.Duration {
	if p.CplTimeout > 0 {
		return p.CplTimeout
	}
	return DefaultCplTimeout
}

// cplRetries returns the configured or default retry budget.
func (p DMAParams) cplRetries() int {
	if p.CplRetries > 0 {
		return p.CplRetries
	}
	return DefaultCplRetries
}

// chainTimeout returns the configured or default chain watchdog.
func (p DMAParams) chainTimeout() units.Duration {
	if p.ChainTimeout > 0 {
		return p.ChainTimeout
	}
	return DefaultChainTimeout
}

// DefaultParams reproduces the paper's PEACH2 (logic version 20121112).
var DefaultParams = Params{
	ClockMHz:        250,
	RouterLatency:   100 * units.Nanosecond, // 25 cycles
	NConvLatency:    8 * units.Nanosecond,   // 2 cycles
	InternalMemSize: 256 * units.MiB,
	LinkConfig:      pcie.Gen2x8,
	DMA: DMAParams{
		IssueInterval:  76 * units.Nanosecond, // 19 cycles
		DoorbellDecode: 12 * units.Nanosecond, // 3 cycles
		FetchChunk:     512,
		// Data reads go out in completion-sized bursts; larger requests
		// would outrun the per-slot write pipeline and invert the
		// paper's write ≥ read ordering (Fig. 7).
		MaxReadRequest:   256,
		OutstandingReads: 16,
		IRQLatency:       1200 * units.Nanosecond,
		HostFlushDelay:   200 * units.Nanosecond,
	},
}

// BlockClass labels what kind of sink a conversion entry reaches; it
// decides flush behaviour (§IV-B2: host memory is strictly ordered, the
// GPU's request queue is deep and relaxed).
type BlockClass int

// Conversion-entry classes.
const (
	ClassHost BlockClass = iota
	ClassGPU
	ClassInternal
)

// String names the class.
func (c BlockClass) String() string {
	switch c {
	case ClassHost:
		return "host"
	case ClassGPU:
		return "gpu"
	case ClassInternal:
		return "internal"
	default:
		return "?"
	}
}

// ConvEntry maps one aligned block of this node's global window to a local
// bus address — the Port N address conversion of §III-E: "the base address
// of the PEACH2 chip and the address offset for the specified device are
// added to or subtracted from the destination memory address".
type ConvEntry struct {
	Global pcie.Range
	Local  pcie.Addr
	Class  BlockClass
}

// NodePlan is the chip's slice of the TCA sub-cluster address plan (Fig. 4):
// its node identity, its window of the global space, the internal block
// inside that window, the Port-N conversion table, and the callbacks that
// let it address other chips (for flush acknowledgements).
type NodePlan struct {
	NodeID int
	// GlobalWindow is this node's slice of the TCA region.
	GlobalWindow pcie.Range
	// TCARegion is the whole sub-cluster window; addresses outside it
	// are local bus addresses and always exit through Port N.
	TCARegion pcie.Range
	// Internal is this node's PEACH2-internal block (global addresses).
	Internal pcie.Range
	// Conv translates the other blocks of GlobalWindow at Port N.
	Conv []ConvEntry
	// AckAddrOf returns the global address of a node's flush-ack word.
	AckAddrOf func(nodeID int) pcie.Addr
	// NodeOfRequester resolves a requester ID to its node, for routing
	// flush acks back.
	NodeOfRequester func(id pcie.DeviceID) (int, bool)
	// ClassOf labels any global address with the device block it falls
	// in — possible without tables because every node's window is split
	// identically (Fig. 4). The DMAC uses it to decide flush semantics
	// for remote destinations.
	ClassOf func(a pcie.Addr) (BlockClass, bool)
}

// RouteRule is one entry of the compare-only routing unit (Fig. 5): a
// packet whose address ANDed with Mask falls in [Lower, Upper] leaves
// through Out. Rules are evaluated in register order after the own-node
// checks.
type RouteRule struct {
	Mask  pcie.Addr
	Lower pcie.Addr
	Upper pcie.Addr
	Out   PortID
}

// Matches reports whether the rule routes address a.
func (r RouteRule) Matches(a pcie.Addr) bool {
	masked := a & r.Mask
	return masked >= r.Lower && masked <= r.Upper
}
