package peach2

import (
	"encoding/binary"
	"strings"
	"testing"

	"tca/internal/pcie"
	"tca/internal/units"
)

func TestRegisterWriteWrongSizePanics(t *testing.T) {
	f := newChipFixture(t)
	base := f.chip.plan.Internal.Base
	defer func() {
		if recover() == nil {
			t.Fatal("4-byte register write did not panic (registers are 8-byte words)")
		}
	}()
	f.hostPort().Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: base + pcie.Addr(RegDMATable), Data: make([]byte, 4)})
	f.eng.Run()
}

func TestUndefinedRegisterWritePanics(t *testing.T) {
	f := newChipFixture(t)
	base := f.chip.plan.Internal.Base
	defer func() {
		if recover() == nil {
			t.Fatal("undefined register write did not panic")
		}
	}()
	f.hostPort().Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: base + 0x48, Data: make([]byte, 8)})
	f.eng.Run()
}

func TestUndefinedRegisterReadPanics(t *testing.T) {
	f := newChipFixture(t)
	base := f.chip.plan.Internal.Base
	defer func() {
		if recover() == nil {
			t.Fatal("undefined register read did not panic")
		}
	}()
	f.hostPort().Send(0, &pcie.TLP{Kind: pcie.MRd, Addr: base + 0x48, ReadLen: 8, Tag: 1, Requester: 9})
	f.eng.Run()
}

func TestChipIDRegisterReadsBack(t *testing.T) {
	f := newChipFixture(t)
	base := f.chip.plan.Internal.Base
	f.hostPort().Send(0, &pcie.TLP{Kind: pcie.MRd, Addr: base + pcie.Addr(RegChipID), ReadLen: 8, Tag: 2, Requester: 9})
	f.eng.Run()
	if v := binary.LittleEndian.Uint64(f.hostd.got[0].Data); v != uint64(f.chip.ID()) {
		t.Fatalf("chip ID register = %d, want %d", v, f.chip.ID())
	}
}

func TestDMAStatusRegisterTracksBusy(t *testing.T) {
	f := newChipFixture(t)
	if f.chip.dmac.status() != 0 {
		t.Fatal("DMAC should be idle at start")
	}
	// Status word bit 8 mirrors DMAC busy.
	if f.chip.nios.statusWord()&(1<<8) != 0 {
		t.Fatal("status word claims DMAC busy while idle")
	}
	if err := f.chip.InternalMemory().Write(0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	// StartImmediate flips the state until completion.
	f.chip.DMAC().StartImmediate(f.eng.Now(), Descriptor{Kind: DescWrite, Len: 64, Src: 0, Dst: 0x9000})
	if f.chip.dmac.status() != 1 {
		t.Fatal("DMAC not busy right after StartImmediate")
	}
	if f.chip.nios.statusWord()&(1<<8) == 0 {
		t.Fatal("status word missed DMAC busy")
	}
	f.eng.Run()
	if f.chip.dmac.status() != 0 {
		t.Fatal("DMAC still busy after chain drained")
	}
}

func TestStartImmediateWhileBusyPanics(t *testing.T) {
	f := newChipFixture(t)
	if err := f.chip.InternalMemory().Write(0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	f.chip.DMAC().StartImmediate(f.eng.Now(), Descriptor{Kind: DescWrite, Len: 64, Src: 0, Dst: 0x9000})
	defer func() {
		if recover() == nil {
			t.Fatal("second StartImmediate did not panic")
		}
	}()
	f.chip.DMAC().StartImmediate(f.eng.Now(), Descriptor{Kind: DescWrite, Len: 64, Src: 0, Dst: 0xA000})
}

func TestChipStatsCounters(t *testing.T) {
	f := newChipFixture(t)
	remote := pcie.Addr(0x80_0000_0000 + uint64(64<<30) + 0x40)
	f.hostPort().Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: remote, Data: []byte{1}})
	f.hostPort().Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: f.chip.IntMemGlobal(0), Data: []byte{2}})
	f.eng.Run()
	st := f.chip.Stats()
	if st.Forwarded[PortE] != 1 {
		t.Fatalf("Forwarded[E] = %d", st.Forwarded[PortE])
	}
	if st.IntWrites != 1 {
		t.Fatalf("IntWrites = %d", st.IntWrites)
	}
	if st.DMAChains != 0 || st.DMATLPs != 0 {
		t.Fatal("phantom DMA activity in stats")
	}
}

func TestIntMemGlobalRoundTrip(t *testing.T) {
	f := newChipFixture(t)
	a := f.chip.IntMemGlobal(0x1234)
	if !f.chip.plan.Internal.Contains(a) {
		t.Fatal("IntMemGlobal outside the internal block")
	}
	off := uint64(a-f.chip.plan.Internal.Base) - IntMemOffset
	if off != 0x1234 {
		t.Fatalf("round trip offset = %#x", off)
	}
}

func TestInternalMemorySize(t *testing.T) {
	f := newChipFixture(t)
	if f.chip.InternalMemory().Size() != DefaultParams.InternalMemSize {
		t.Fatalf("internal memory size %v", f.chip.InternalMemory().Size())
	}
	if DefaultParams.InternalMemSize < 64*units.MiB {
		t.Fatal("internal memory must hold the bandwidth experiments' staging data")
	}
}

func TestNIOSConsole(t *testing.T) {
	f := newChipFixture(t)
	// Generate some traffic first.
	remote := pcie.Addr(0x80_0000_0000 + uint64(64<<30) + 0x40)
	f.hostPort().Send(0, &pcie.TLP{Kind: pcie.MWr, Addr: remote, Data: []byte{1}})
	f.eng.Run()

	out, err := f.chip.NIOS().Execute("status")
	if err != nil || !strings.Contains(out, "dmac=idle") {
		t.Fatalf("status = %q, %v", out, err)
	}
	out, err = f.chip.NIOS().Execute("counters")
	if err != nil || !strings.Contains(out, "E=1") {
		t.Fatalf("counters = %q, %v", out, err)
	}
	out, err = f.chip.NIOS().Execute("routes")
	if err != nil || !strings.Contains(out, "-> E") {
		t.Fatalf("routes = %q, %v", out, err)
	}
	if _, err := f.chip.NIOS().Execute("reboot"); err == nil {
		t.Fatal("unknown command accepted")
	}
	if out, err := f.chip.NIOS().Execute("help"); err != nil || out == "" {
		t.Fatal("help broken")
	}
	// The log command reflects recorded events once monitoring ran.
	f.chip.NIOS().Start(units.Microsecond)
	f.eng.RunFor(3 * units.Microsecond)
	out, err = f.chip.NIOS().Execute("log")
	if err != nil || !strings.Contains(out, "link up") {
		t.Fatalf("log = %q, %v", out, err)
	}
}
