package prof

import "time"

// This file is the simulator's only blessed source of host time. The
// simdeterminism analyzer bans time.Now (and friends) everywhere else under
// internal/ so simulated behavior can never depend on the wall clock;
// self-profiling legitimately needs the host clock to measure *itself*, so
// the analyzer carves out exactly this package. Host readings must never
// feed back into simulated state — they are observation, not input.

// hostEpoch anchors readings so HostNanos stays well inside int64 for the
// life of the process. time.Now carries Go's monotonic reading; Sub between
// two such values uses the monotonic clock, immune to NTP steps.
var hostEpoch = time.Now()

// HostNanos returns monotonic host-clock nanoseconds since process start —
// the accessor all host-time measurement in the simulator flows through.
func HostNanos() int64 { return int64(time.Since(hostEpoch)) }
