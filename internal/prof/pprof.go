package prof

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// pprof plumbing for the CLIs: file-backed CPU/heap profiles plus the
// scenario labels Measure applies, so one flamegraph of a multi-scenario
// run splits cleanly by scenario (and, in LabelComponents mode, by
// component).

// Do runs fn with a pprof "scenario" label on the goroutine, restoring the
// previous label set afterwards.
func Do(scenario string, fn func()) {
	if scenario == "" {
		fn()
		return
	}
	pprof.Do(context.Background(), pprof.Labels("scenario", scenario), func(context.Context) { fn() })
}

// StartCPUProfile begins a CPU profile into path and returns the function
// that stops it and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("prof: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("prof: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile captures an up-to-date allocation profile into path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prof: heap profile: %w", err)
	}
	runtime.GC() // flush recent allocations into the profile
	werr := pprof.Lookup("allocs").WriteTo(f, 0)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("prof: heap profile: %w", werr)
	}
	return nil
}
