// Package prof is the engine's self-profiling subsystem: where internal/obsv
// observes the *simulated* hardware in simulated time, prof observes the
// *simulator itself* in host time. It attributes host wall-clock and event
// counts to registered components through the engine's Executor hook,
// captures per-run allocation and GC cost via runtime/metrics, and feeds
// pprof so flamegraphs map back to sim structure.
//
// The design rules mirror obsv's:
//
//   - Zero cost when disabled. A nil *Profiler is valid everywhere;
//     components profile under it with no-op Component calls, and an engine
//     with no executor attached runs the exact pre-profiler hot path
//     (one nil check per event, zero allocations — pinned by tests).
//   - Observation only. Host-time readings never feed back into simulated
//     state; attaching or detaching a profiler cannot change simulation
//     results, which stay bit-identical (the determinism suite checks this).
//   - Cheap sampling. Timing every event costs two clock reads per handler;
//     SampleEvery=k times one event in k and extrapolates, keeping counts
//     exact while the clock overhead shrinks by k.
package prof

import (
	"context"
	"fmt"
	"io"
	"runtime/metrics"
	"runtime/pprof"
	"sort"
	"text/tabwriter"

	"tca/internal/obsv"
	"tca/internal/sim"
)

// DefaultSampleEvery times one event in every 8 — exact event counts,
// ~1/8th of the clock-read overhead, and still thousands of timing samples
// per second of host time on any real workload.
const DefaultSampleEvery = 8

// Options tunes a profiler.
type Options struct {
	// SampleEvery times one event in every SampleEvery (1 = time every
	// event; 0 = DefaultSampleEvery). Event *counts* are always exact.
	SampleEvery uint64
	// LabelComponents additionally sets pprof goroutine labels to the
	// executing component, so CPU flamegraphs split by sim structure.
	// Costs one label-set per executed event; off by default.
	LabelComponents bool
}

// comp is one registered component's accumulator. Untagged events land on
// index 0.
type comp struct {
	name string
	// ctx carries the component's pprof label set (LabelComponents mode).
	ctx context.Context
	// events counts every executed event attributed to the component.
	events uint64
	// sampled counts the events that were actually timed; sampledNS sums
	// their host-clock cost.
	sampled   uint64
	sampledNS int64
}

// Profiler attributes engine host time to components. It implements
// sim.Executor; Attach wires it into an engine. All methods are
// nil-receiver-safe no-ops so a disabled profiler threads through
// construction code for free.
//
// The profiler is intentionally lock-free: the engine is single-threaded,
// Component registration happens during model construction on the same
// goroutine, and reports are read after Run returns.
type Profiler struct {
	opts  Options
	eng   *sim.Engine
	comps []comp
	// seq counts executed events for the sampling stride.
	seq uint64
	// hostNS accumulates all sampled host time across components.
	hostNS int64
	// hostSeries, when set, receives (sim time, cumulative host µs)
	// samples on every timed event — the counter track Perfetto merges
	// next to the sim-time tracks.
	hostSeries *obsv.Series
}

// New creates an enabled profiler.
func New(opts Options) *Profiler {
	if opts.SampleEvery == 0 {
		opts.SampleEvery = DefaultSampleEvery
	}
	return &Profiler{opts: opts, comps: []comp{{name: "(untagged)", ctx: context.Background()}}}
}

// Component registers (or re-finds) a named component and returns its
// attribution tag. Returns 0 — the untagged component — when disabled, so
// models store the result unconditionally.
func (p *Profiler) Component(name string) sim.CompID {
	if p == nil {
		return 0
	}
	for id, c := range p.comps {
		if c.name == name {
			return sim.CompID(id)
		}
	}
	ctx := context.Background()
	if p.opts.LabelComponents {
		ctx = pprof.WithLabels(ctx, pprof.Labels("component", name))
	}
	p.comps = append(p.comps, comp{name: name, ctx: ctx})
	return sim.CompID(len(p.comps) - 1)
}

// Attach wires the profiler into the engine's execution path. No-op when
// disabled. Register components before attaching.
func (p *Profiler) Attach(eng *sim.Engine) {
	if p == nil {
		return
	}
	p.eng = eng
	eng.SetExecutor(p)
}

// Detach removes the profiler from its engine, restoring the bare hot path.
func (p *Profiler) Detach() {
	if p == nil || p.eng == nil {
		return
	}
	p.eng.SetExecutor(nil)
	p.eng = nil
}

// Reset clears all accumulated counts and timings, keeping registrations,
// so one profiler can measure several phases separately.
func (p *Profiler) Reset() {
	if p == nil {
		return
	}
	for i := range p.comps {
		p.comps[i].events, p.comps[i].sampled, p.comps[i].sampledNS = 0, 0, 0
	}
	p.seq = 0
	p.hostNS = 0
}

// RecordHostSeries registers a "host_time" series on tl and streams the
// profiler's cumulative host time (µs) into it at every timed event,
// stamped with the engine's sim time. In the Perfetto export this becomes a
// counter track that rises steeply exactly where the simulator burns host
// CPU, aligned under the sim-time span tracks.
func (p *Profiler) RecordHostSeries(tl *obsv.Timeline, capacity int) *obsv.Series {
	if p == nil || tl == nil {
		return nil
	}
	s := obsv.NewSeries("host_time", "prof", "", "us", capacity)
	tl.Add(s)
	p.hostSeries = s
	return s
}

// ExecEvent implements sim.Executor: count the event, time a 1-in-k sample
// of them, and optionally tag the goroutine with the component's pprof
// labels. Called by the engine for every event while attached.
func (p *Profiler) ExecEvent(id sim.CompID, fn func()) {
	if int(id) >= len(p.comps) {
		id = 0 // tag from a foreign profiler: attribute as untagged
	}
	c := &p.comps[id]
	c.events++
	p.seq++
	if p.opts.LabelComponents {
		pprof.SetGoroutineLabels(c.ctx)
	}
	// The stride runs per component, not globally: deterministic workloads
	// interleave components periodically, and a global stride can alias
	// against that period and never time some of them.
	if c.events%p.opts.SampleEvery != 1%p.opts.SampleEvery {
		fn()
		return
	}
	t0 := HostNanos()
	fn()
	dt := HostNanos() - t0
	c.sampled++
	c.sampledNS += dt
	p.hostNS += dt
	if p.hostSeries != nil {
		p.hostSeries.Append(p.eng.Now(), float64(p.hostNS)/1e3)
	}
}

// Events reports the total executed events the profiler observed.
func (p *Profiler) Events() uint64 {
	if p == nil {
		return 0
	}
	var n uint64
	for i := range p.comps {
		n += p.comps[i].events
	}
	return n
}

// HostNS reports the summed host time of all timed samples (not
// extrapolated).
func (p *Profiler) HostNS() int64 {
	if p == nil {
		return 0
	}
	return p.hostNS
}

// ComponentStats is one component's aggregated host-time attribution.
type ComponentStats struct {
	ID   sim.CompID `json:"-"`
	Name string     `json:"name"`
	// Events is the exact executed-event count attributed to the component.
	Events uint64 `json:"events"`
	// Sampled is how many of those were timed; SampledNS their summed cost.
	Sampled   uint64 `json:"sampled"`
	SampledNS int64  `json:"sampled_ns"`
	// EstNS extrapolates SampledNS over all the component's events — the
	// figure the top-components table ranks by.
	EstNS int64 `json:"est_ns"`
	// SharePct is EstNS as a percentage of the run's total estimate.
	SharePct float64 `json:"share_pct"`
}

// Components returns per-component attribution for every component that
// executed at least one event, sorted by descending estimated host time
// (ties by name, so output is deterministic).
func (p *Profiler) Components() []ComponentStats {
	if p == nil {
		return nil
	}
	var out []ComponentStats
	var total int64
	for id := range p.comps {
		c := &p.comps[id]
		if c.events == 0 {
			continue
		}
		est := c.sampledNS
		if c.sampled > 0 {
			est = int64(float64(c.sampledNS) / float64(c.sampled) * float64(c.events))
		}
		total += est
		out = append(out, ComponentStats{
			ID: sim.CompID(id), Name: c.name,
			Events: c.events, Sampled: c.sampled, SampledNS: c.sampledNS, EstNS: est,
		})
	}
	for i := range out {
		if total > 0 {
			out[i].SharePct = 100 * float64(out[i].EstNS) / float64(total)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].EstNS != out[j].EstNS {
			return out[i].EstNS > out[j].EstNS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// WriteTable renders the top-n components by estimated host time (n <= 0
// means all).
func (p *Profiler) WriteTable(w io.Writer, n int) {
	comps := p.Components()
	if n > 0 && len(comps) > n {
		comps = comps[:n]
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "component\tevents\tsampled\thost-time(est)\tshare\t")
	for _, c := range comps {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%s\t%.1f%%\t\n",
			c.Name, c.Events, c.Sampled, fmtNS(c.EstNS), c.SharePct)
	}
	tw.Flush()
}

// fmtNS renders host nanoseconds human-readably.
func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fus", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// RunStats is one measured run's host-side cost capture.
type RunStats struct {
	Scenario string `json:"scenario"`
	// WallNS is host wall-clock for the run; Events the engine events it
	// executed; EventsPerSec the headline throughput figure.
	WallNS       int64   `json:"wall_ns"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Allocation and GC cost over the run, from runtime/metrics.
	AllocObjects       uint64  `json:"alloc_objects"`
	AllocBytes         uint64  `json:"alloc_bytes"`
	GCCycles           uint64  `json:"gc_cycles"`
	AllocsPerEvent     float64 `json:"allocs_per_event"`
	AllocBytesPerEvent float64 `json:"alloc_bytes_per_event"`
	// QueueHighWater is the deepest the engine's pending queue ran.
	QueueHighWater int `json:"queue_high_water"`
}

// Measure runs fn under pprof scenario labels and captures its host cost:
// wall time (blessed host clock), engine events executed, allocation and GC
// deltas from runtime/metrics, and the queue high-water mark. With a
// non-nil profiler it also attaches it for per-component attribution; with
// a nil one it measures the bare engine — the configuration the committed
// perf baseline uses, so the headline numbers carry no instrumentation
// overhead.
func (p *Profiler) Measure(scenario string, eng *sim.Engine, fn func()) RunStats {
	if p != nil {
		p.Attach(eng)
		defer p.Detach()
	}
	eng.ResetQueueHighWater()
	ev0 := eng.Executed()
	obj0, bytes0, gc0 := readAllocMetrics()
	t0 := HostNanos()
	Do(scenario, fn)
	wall := HostNanos() - t0
	obj1, bytes1, gc1 := readAllocMetrics()
	st := RunStats{
		Scenario:       scenario,
		WallNS:         wall,
		Events:         eng.Executed() - ev0,
		AllocObjects:   obj1 - obj0,
		AllocBytes:     bytes1 - bytes0,
		GCCycles:       gc1 - gc0,
		QueueHighWater: eng.QueueHighWater(),
	}
	if wall > 0 {
		st.EventsPerSec = float64(st.Events) / (float64(wall) / 1e9)
	}
	if st.Events > 0 {
		st.AllocsPerEvent = float64(st.AllocObjects) / float64(st.Events)
		st.AllocBytesPerEvent = float64(st.AllocBytes) / float64(st.Events)
	}
	return st
}

// Headline renders the run's one-line events/sec summary.
func (s RunStats) Headline() string {
	return fmt.Sprintf("%s: %.0f events/s (%d events in %s, %.1f allocs/event, %d GC cycles, queue high-water %d)",
		s.Scenario, s.EventsPerSec, s.Events, fmtNS(s.WallNS), s.AllocsPerEvent, s.GCCycles, s.QueueHighWater)
}

// allocMetricNames are the runtime/metrics samples Measure diffs. All three
// exist since Go 1.16 and are cumulative counters.
var allocMetricNames = []string{
	"/gc/heap/allocs:objects",
	"/gc/heap/allocs:bytes",
	"/gc/cycles/total:gc-cycles",
}

func readAllocMetrics() (objects, bytes, gcCycles uint64) {
	samples := make([]metrics.Sample, len(allocMetricNames))
	for i, n := range allocMetricNames {
		samples[i].Name = n
	}
	metrics.Read(samples)
	v := func(i int) uint64 {
		if samples[i].Value.Kind() == metrics.KindUint64 {
			return samples[i].Value.Uint64()
		}
		return 0
	}
	return v(0), v(1), v(2)
}
