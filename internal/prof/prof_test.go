package prof

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tca/internal/obsv"
	"tca/internal/sim"
)

// workload schedules a deterministic cascade: each of n root events (one
// per component tag) reschedules itself depth times, so attribution sees
// both explicit tags and inheritance.
func workload(eng *sim.Engine, tags []sim.CompID, depth int) {
	for i, tag := range tags {
		tag := tag
		var step func()
		left := depth
		step = func() {
			if left--; left > 0 {
				eng.After(1, step) // inherits tag
			}
		}
		eng.AtComp(tag, sim.Time(i+1), step)
	}
}

func TestNilProfilerIsDisabled(t *testing.T) {
	var p *Profiler
	if id := p.Component("x"); id != 0 {
		t.Fatalf("nil Component = %d, want 0", id)
	}
	p.Attach(sim.NewEngine())
	p.Detach()
	p.Reset()
	if p.Events() != 0 || p.HostNS() != 0 || p.Components() != nil {
		t.Fatal("nil profiler reported data")
	}
	if s := p.RecordHostSeries(&obsv.Timeline{}, 16); s != nil {
		t.Fatal("nil profiler registered a host series")
	}
}

func TestComponentAttributionCounts(t *testing.T) {
	p := New(Options{SampleEvery: 1})
	eng := sim.NewEngine()
	a := p.Component("link:a")
	b := p.Component("peach2-0/dmac")
	if a == 0 || b == 0 || a == b {
		t.Fatalf("component ids: a=%d b=%d", a, b)
	}
	if again := p.Component("link:a"); again != a {
		t.Fatalf("re-registering returned %d, want %d", again, a)
	}
	p.Attach(eng)
	workload(eng, []sim.CompID{a, b, b}, 5)
	eng.Run()
	p.Detach()

	if got := p.Events(); got != 15 {
		t.Fatalf("Events() = %d, want 15", got)
	}
	comps := p.Components()
	byName := map[string]ComponentStats{}
	for _, c := range comps {
		byName[c.Name] = c
	}
	if byName["link:a"].Events != 5 {
		t.Fatalf("link:a events = %d, want 5 (inheritance should carry the tag)", byName["link:a"].Events)
	}
	if byName["peach2-0/dmac"].Events != 10 {
		t.Fatalf("dmac events = %d, want 10", byName["peach2-0/dmac"].Events)
	}
	// SampleEvery=1 times every event.
	for _, c := range comps {
		if c.Sampled != c.Events {
			t.Fatalf("%s sampled %d of %d events with SampleEvery=1", c.Name, c.Sampled, c.Events)
		}
		if c.EstNS < 0 {
			t.Fatalf("%s negative host time", c.Name)
		}
	}
}

func TestSamplingKeepsCountsExact(t *testing.T) {
	p := New(Options{SampleEvery: 4})
	eng := sim.NewEngine()
	a := p.Component("a")
	p.Attach(eng)
	workload(eng, []sim.CompID{a}, 41)
	eng.Run()
	comps := p.Components()
	if len(comps) != 1 || comps[0].Events != 41 {
		t.Fatalf("events = %+v, want exactly 41 for a", comps)
	}
	// The per-component stride times events 1, 5, ..., 41 → 11 samples.
	if comps[0].Sampled != 11 {
		t.Fatalf("sampled = %d, want 11", comps[0].Sampled)
	}
}

func TestAttachingProfilerDoesNotChangeSimResults(t *testing.T) {
	run := func(p *Profiler) (final sim.Time, executed uint64) {
		eng := sim.NewEngine()
		var tags []sim.CompID
		for i := 0; i < 4; i++ {
			tags = append(tags, p.Component(strings.Repeat("c", i+1)))
		}
		p.Attach(eng)
		workload(eng, tags, 17)
		final, _ = eng.Run()
		return final, eng.Executed()
	}
	f0, e0 := run(nil)
	f1, e1 := run(New(Options{SampleEvery: 3, LabelComponents: true}))
	if f0 != f1 || e0 != e1 {
		t.Fatalf("profiled run diverged: (%v, %d) vs (%v, %d)", f0, e0, f1, e1)
	}
}

func TestMeasureCapturesRun(t *testing.T) {
	eng := sim.NewEngine()
	var p *Profiler // baseline configuration: no attribution overhead
	st := p.Measure("unit-test", eng, func() {
		workload(eng, []sim.CompID{0, 0}, 50)
		eng.Run()
	})
	if st.Events != 100 {
		t.Fatalf("Events = %d, want 100", st.Events)
	}
	if st.WallNS <= 0 {
		t.Fatalf("WallNS = %d, want > 0", st.WallNS)
	}
	if st.EventsPerSec <= 0 {
		t.Fatalf("EventsPerSec = %g, want > 0", st.EventsPerSec)
	}
	if st.QueueHighWater < 1 {
		t.Fatalf("QueueHighWater = %d, want >= 1", st.QueueHighWater)
	}
	if !strings.Contains(st.Headline(), "events/s") {
		t.Fatalf("Headline missing events/s: %q", st.Headline())
	}
}

func TestHostSeriesFeedsTimeline(t *testing.T) {
	p := New(Options{SampleEvery: 1})
	eng := sim.NewEngine()
	tl := &obsv.Timeline{}
	s := p.RecordHostSeries(tl, 64)
	if s == nil {
		t.Fatal("RecordHostSeries returned nil")
	}
	p.Attach(eng)
	workload(eng, []sim.CompID{p.Component("a")}, 20)
	eng.Run()
	if s.Len() == 0 {
		t.Fatal("host series stayed empty")
	}
	got := tl.Find("host_time", "prof", "")
	if got != s {
		t.Fatal("timeline does not carry the host series")
	}
	// Cumulative host time never decreases.
	prev := -1.0
	for _, sm := range s.Samples() {
		if sm.V < prev {
			t.Fatalf("host time went backwards: %v", s.Samples())
		}
		prev = sm.V
	}
}

func TestWriteTableRanksByHostTime(t *testing.T) {
	p := New(Options{SampleEvery: 1})
	eng := sim.NewEngine()
	hot := p.Component("hot")
	cold := p.Component("cold")
	p.Attach(eng)
	spin := make([]byte, 64)
	eng.AtComp(hot, 1, func() {
		for i := 0; i < 50000; i++ { // measurable host work
			spin[i%len(spin)]++
		}
	})
	eng.AtComp(cold, 2, func() {})
	eng.Run()
	var buf bytes.Buffer
	p.WriteTable(&buf, 10)
	out := buf.String()
	if !strings.Contains(out, "hot") || !strings.Contains(out, "cold") {
		t.Fatalf("table missing components:\n%s", out)
	}
	if strings.Index(out, "hot") > strings.Index(out, "cold") {
		t.Fatalf("hot component not ranked first:\n%s", out)
	}
}

func TestHostNanosMonotonic(t *testing.T) {
	a := HostNanos()
	b := HostNanos()
	if b < a {
		t.Fatalf("HostNanos went backwards: %d then %d", a, b)
	}
}

func TestCPUAndHeapProfileFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	stop, err := StartCPUProfile(cpu)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	workload(eng, []sim.CompID{0}, 2000)
	eng.Run()
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile missing or empty: %v", err)
	}
	heap := filepath.Join(dir, "heap.pprof")
	if err := WriteHeapProfile(heap); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(heap); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile missing or empty: %v", err)
	}
}

func TestForeignTagFallsBackToUntagged(t *testing.T) {
	// Tags minted by another profiler (or stale ones) must not crash; they
	// attribute to the untagged bucket.
	p := New(Options{SampleEvery: 1})
	eng := sim.NewEngine()
	p.Attach(eng)
	eng.AtComp(sim.CompID(999), 1, func() {})
	eng.Run()
	comps := p.Components()
	if len(comps) != 1 || comps[0].Name != "(untagged)" || comps[0].Events != 1 {
		t.Fatalf("foreign tag attribution = %+v", comps)
	}
}
