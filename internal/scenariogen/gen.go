package scenariogen

import (
	"math"
	"math/rand"
	"strconv"

	"tca/internal/fault"
	"tca/internal/units"
)

// Generate builds a random, always-valid scenario from seed. Everything —
// topology, op program, fault schedule — is drawn from one rand.Rand
// seeded with the argument, so the same seed reproduces the same spec on
// any machine; the generator touches no other source of randomness.
func Generate(seed int64) Spec {
	rng := rand.New(rand.NewSource(seed))
	s := Spec{Seed: seed}

	if rng.Intn(2) == 0 {
		s.DualRing = true
		s.K = 2 + rng.Intn(MaxDualK-1) // 2..8 per ring
	} else {
		s.K = 2 + rng.Intn(MaxRingNodes-1) // 2..16 nodes
	}

	nOps := 1 + rng.Intn(12)
	for i := 0; i < nOps; i++ {
		s.Ops = append(s.Ops, genOp(rng, s.Nodes()))
	}

	// 40% of scenarios run on a perfect fabric — the invariant checker
	// must hold there too, and those runs anchor the differential.
	if rng.Intn(5) >= 2 {
		s.Faults = genFaults(rng, s)
	}
	return s
}

func genOp(rng *rand.Rand, nodes int) Op {
	pair := func() (int, int) { return rng.Intn(nodes), rng.Intn(nodes) }
	switch rng.Intn(5) {
	case 0:
		src, dst := pair()
		return Op{Kind: OpPIO, Src: src, Dst: dst, Bytes: 1 + rng.Intn(MaxPIOBytes)}
	case 1:
		src, dst := pair()
		return Op{Kind: OpHostPut, Src: src, Dst: dst, Bytes: 1 + rng.Intn(SlotBytes)}
	case 2:
		src, dst := pair()
		return Op{Kind: OpDMA, Src: src, SrcGPU: rng.Intn(2), Dst: dst, DstGPU: rng.Intn(2),
			Bytes: 1 + rng.Intn(SlotBytes)}
	case 3:
		src, dst := pair()
		blockLen := 1 + rng.Intn(MaxStrideBlock)
		count := 1 + rng.Intn(MaxStrideCount)
		// Keep the whole span inside one slot: stride in
		// [blockLen, blockLen+slack] where slack spreads the remaining
		// room across the count-1 gaps. count*blockLen never exceeds
		// SlotBytes (16 blocks of at most 4 KiB in a 64 KiB slot), so
		// slack is never negative.
		stride := blockLen
		if count > 1 {
			if slack := (SlotBytes - count*blockLen) / (count - 1); slack > 0 {
				stride += rng.Intn(slack + 1)
			}
		}
		return Op{Kind: OpStride, Src: src, Dst: dst, BlockLen: blockLen, Count: count, Stride: stride}
	default:
		return Op{Kind: OpBarrier, Rounds: 1 + rng.Intn(MaxBarrierRounds)}
	}
}

// genFaults draws 1..3 clauses of the fault.ParseScenario grammar, biased
// so most scenarios remain recoverable: low bit/drop/corrupt rates that
// the DLL replays through, lost completions the DMAC retries through, and
// link cuts the failover path reroutes around.
func genFaults(rng *rand.Rand, s Spec) string {
	var p fault.Profile
	for clauses := 1 + rng.Intn(3); clauses > 0; clauses-- {
		switch rng.Intn(5) {
		case 0:
			p.BER = logUniform(rng, 1e-9, 1e-6)
		case 1:
			p.Drop = logUniform(rng, 1e-6, 1e-3)
		case 2:
			p.Corrupt = logUniform(rng, 1e-6, 1e-3)
		case 3:
			p.LoseCpl = logUniform(rng, 1e-4, 5e-2)
		default:
			w := fault.DownWindow{
				Link: s.randomCable(rng),
				At:   units.Microsecond * units.Duration(rng.Intn(300)),
			}
			// Half the cuts are flaps short enough to replay through;
			// the rest are permanent and must fail over.
			if rng.Intn(2) == 0 {
				w.For = units.Microsecond * units.Duration(1+rng.Intn(20))
			}
			p.Down = append(p.Down, w)
		}
	}
	return fault.FormatScenario(p)
}

func (s Spec) randomCable(rng *rand.Rand) string {
	// S couplings have no redundant path, so cutting one is rarer.
	if s.DualRing && rng.Intn(4) == 0 {
		return scableName(rng.Intn(s.K))
	}
	return ringCableName(rng.Intn(s.Nodes()))
}

// Cable naming mirrors tcanet (RingCableName/SCableName); duplicated here
// so the generator stays a leaf package with no simulator dependencies.
func ringCableName(i int) string { return strconv.Itoa(i) + "e" }
func scableName(i int) string    { return strconv.Itoa(i) + "s" }

// logUniform draws from [lo, hi] uniformly in log space — fault rates are
// interesting across orders of magnitude, not linearly.
func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
}
