package scenariogen

import "tca/internal/fault"

// MaxShrinkRuns bounds how many candidate scenarios Shrink may hand to the
// failing predicate — each evaluation is a full simulation (or three, for
// a differential), so the minimizer's budget must be explicit.
const MaxShrinkRuns = 400

// Shrink greedily minimizes a failing scenario: it tries progressively
// smaller candidates (fewer fault clauses, fewer ops, smaller transfers, a
// smaller sub-cluster) and keeps any candidate for which failing still
// returns true, restarting from the reduced spec until a whole pass yields
// no reduction or the run budget is spent. The caller's predicate must be
// deterministic — with this repo's seeded simulator, re-running a spec is.
//
// The result is committable as-is: every candidate passes Validate before
// it is ever run.
func Shrink(s Spec, failing func(Spec) bool) Spec {
	runs := 0
	try := func(c Spec) bool {
		if runs >= MaxShrinkRuns || c.Validate() != nil {
			return false
		}
		runs++
		return failing(c)
	}
	cur := s
	for changed := true; changed; {
		changed = false
		for _, c := range candidates(cur) {
			if try(c) {
				cur = c
				changed = true
				break
			}
		}
	}
	return cur
}

// candidates yields smaller variants of s, most aggressive first, so the
// greedy loop takes the biggest reductions early.
func candidates(s Spec) []Spec {
	var out []Spec
	add := func(c Spec) { out = append(out, c) }

	// Drop the whole fault schedule, then individual clauses.
	if s.Faults != "" {
		c := s
		c.Faults = ""
		add(c)
		for _, faults := range droppedFaultClauses(s.Faults) {
			c := s
			c.Faults = faults
			add(c)
		}
	}

	// Remove chunks of the op program: second half, first half, then
	// each op alone.
	if n := len(s.Ops); n > 1 {
		add(s.withOps(s.Ops[:n/2]))
		add(s.withOps(s.Ops[n/2:]))
		for i := range s.Ops {
			ops := make([]Op, 0, n-1)
			ops = append(ops, s.Ops[:i]...)
			ops = append(ops, s.Ops[i+1:]...)
			add(s.withOps(ops))
		}
	}

	// Shrink the sub-cluster. Candidates whose ops or link-down clauses
	// reference removed nodes fail Validate and are skipped by Shrink.
	for _, k := range []int{s.K / 2, s.K - 1} {
		if k >= 2 && k != s.K {
			c := s
			c.K = k
			add(c)
		}
	}
	if s.DualRing {
		c := s
		c.DualRing = false
		c.K = 2 * s.K // same node count, single ring
		add(c)
	}

	// Halve transfer sizes and repeat counts, one op at a time.
	for i, o := range s.Ops {
		h := o
		switch o.Kind {
		case OpPIO, OpHostPut, OpDMA:
			h.Bytes = o.Bytes / 2
		case OpStride:
			if o.Count > 1 {
				h.Count = o.Count / 2
			} else {
				h.BlockLen = o.BlockLen / 2
				if h.Stride > h.BlockLen*2 {
					h.Stride = h.BlockLen * 2
				}
			}
		case OpBarrier:
			h.Rounds = o.Rounds / 2
		}
		if h != o {
			ops := append([]Op(nil), s.Ops...)
			ops[i] = h
			add(s.withOps(ops))
		}
	}
	return out
}

func (s Spec) withOps(ops []Op) Spec {
	c := s
	c.Ops = append([]Op(nil), ops...)
	return c
}

// droppedFaultClauses parses the schedule and re-formats it with one
// clause removed, for every clause: each down window, then each rate knob.
func droppedFaultClauses(spec string) []string {
	prof, err := fault.ParseScenario(spec, 0)
	if err != nil {
		return nil
	}
	var out []string
	add := func(p fault.Profile) {
		if f := fault.FormatScenario(p); f != "" && f != spec {
			out = append(out, f)
		}
	}
	for i := range prof.Down {
		p := prof
		p.Down = append(append([]fault.DownWindow(nil), prof.Down[:i]...), prof.Down[i+1:]...)
		add(p)
	}
	for _, clear := range []func(*fault.Profile){
		func(p *fault.Profile) { p.BER = 0 },
		func(p *fault.Profile) { p.Drop = 0 },
		func(p *fault.Profile) { p.Corrupt = 0 },
		func(p *fault.Profile) { p.LoseCpl = 0 },
		func(p *fault.Profile) { p.Stuck = false; p.StuckIndex = 0 },
	} {
		p := prof
		p.Down = append([]fault.DownWindow(nil), prof.Down...)
		clear(&p)
		add(p)
	}
	return out
}
