// Package scenariogen generates, parses, formats, and shrinks fuzz
// scenarios for the fabric invariant checker (internal/check). A scenario
// is a committable, line-oriented spec: a sub-cluster topology, a fault
// schedule in the fault.ParseScenario grammar, and an ordered program of
// driver operations (PIO stores, DMA chains, block-stride puts, collective
// rounds). Every failing case the fuzzer finds is written back out in this
// format, so a one-line `tcafuzz -replay` (or a committed regression test)
// reproduces it exactly.
package scenariogen

import (
	"fmt"
	"strconv"
	"strings"

	"tca/internal/fault"
)

// Spec size limits. The runner slices each node's host and GPU buffers
// into MaxOps slots of SlotBytes for sources and destinations, so every
// op owns a disjoint region and the final memory image is independent of
// delivery order — the property the faulty-vs-perfect differential relies
// on.
const (
	// MaxOps bounds the op program (and so the per-buffer slot count).
	MaxOps = 16
	// SlotBytes is the per-op source/destination region: no op may read
	// or write more than this.
	SlotBytes = 64 << 10
	// MaxPIOBytes bounds a single PIO store program (CPU stores are
	// word-granular; hundreds of bytes is already generous).
	MaxPIOBytes = 256
	// MaxStrideBlock bounds one block of a block-stride transfer.
	MaxStrideBlock = 4096
	// MaxStrideCount bounds the block count of a block-stride transfer.
	MaxStrideCount = 16
	// MaxBarrierRounds bounds repeated collective rounds per op.
	MaxBarrierRounds = 4
	// MaxRingNodes / MaxDualK bound the topology (a sub-cluster is at
	// most 16 nodes, §III-D).
	MaxRingNodes = 16
	MaxDualK     = 8
)

// OpKind enumerates the driver operations a scenario can issue.
type OpKind uint8

const (
	// OpPIO is a CPU store program into a remote host buffer.
	OpPIO OpKind = iota
	// OpHostPut is a DMA put from one node's host buffer to another's.
	OpHostPut
	// OpDMA is a GPU-to-GPU put (the §III-H cudaMemcpyPeer extension).
	OpDMA
	// OpStride is a block-stride DMA put into a host buffer (§III-F2).
	OpStride
	// OpBarrier is one or more collective barrier rounds over all nodes.
	OpBarrier
)

// Op is one step of the scenario's driver program. Ops run sequentially
// (each completion triggers the next); PIO stores are fire-and-forget and
// overlap whatever follows them.
type Op struct {
	Kind           OpKind
	Src, Dst       int // node indices
	SrcGPU, DstGPU int // 0 or 1: the two TCA-reachable GPUs (§III-C)
	Bytes          int // pio/hostput/dma payload
	// Block-stride geometry: Count blocks of BlockLen bytes, both sides
	// advancing Stride per block.
	BlockLen, Count, Stride int
	Rounds                  int // barrier repetitions
}

// Spec is one complete fuzz scenario.
type Spec struct {
	// Seed drives the payload fill patterns and the fault injector's
	// random stream.
	Seed int64
	// DualRing selects the Port-S-coupled two-ring topology (§III-D);
	// K is the node count (single ring) or per-ring node count (dual).
	DualRing bool
	K        int
	// Faults is a fault.ParseScenario schedule ("" = perfect fabric).
	Faults string
	// Ops is the driver program.
	Ops []Op
}

// Nodes reports the sub-cluster size.
func (s Spec) Nodes() int {
	if s.DualRing {
		return 2 * s.K
	}
	return s.K
}

// span is the destination footprint of an op inside its slot.
func (o Op) span() int {
	switch o.Kind {
	case OpStride:
		return o.Stride*(o.Count-1) + o.BlockLen
	case OpBarrier:
		return 0
	default:
		return o.Bytes
	}
}

// Validate checks the spec against the runner's limits: topology bounds,
// node/GPU indices, op sizes within their slots, and a parseable fault
// schedule whose link-down clauses name cables the topology actually has.
func (s Spec) Validate() error {
	if s.DualRing {
		if s.K < 2 || s.K > MaxDualK {
			return fmt.Errorf("scenariogen: dual ring k=%d outside [2, %d]", s.K, MaxDualK)
		}
	} else if s.K < 2 || s.K > MaxRingNodes {
		return fmt.Errorf("scenariogen: ring of %d nodes outside [2, %d]", s.K, MaxRingNodes)
	}
	if len(s.Ops) == 0 || len(s.Ops) > MaxOps {
		return fmt.Errorf("scenariogen: %d ops outside [1, %d]", len(s.Ops), MaxOps)
	}
	n := s.Nodes()
	for i, o := range s.Ops {
		if err := o.validate(n); err != nil {
			return fmt.Errorf("scenariogen: op %d: %v", i, err)
		}
	}
	if s.Faults != "" {
		prof, err := fault.ParseScenario(s.Faults, s.Seed)
		if err != nil {
			return fmt.Errorf("scenariogen: %v", err)
		}
		for _, w := range prof.Down {
			if !s.validCable(w.Link) {
				return fmt.Errorf("scenariogen: linkdown names cable %q which a %s does not have", w.Link, s.topoString())
			}
		}
	}
	return nil
}

func (o Op) validate(nodes int) error {
	inRange := func(node int) bool { return node >= 0 && node < nodes }
	switch o.Kind {
	case OpPIO, OpHostPut:
		if !inRange(o.Src) || !inRange(o.Dst) {
			return fmt.Errorf("node pair %d->%d outside %d nodes", o.Src, o.Dst, nodes)
		}
		limit := SlotBytes
		if o.Kind == OpPIO {
			limit = MaxPIOBytes
		}
		if o.Bytes < 1 || o.Bytes > limit {
			return fmt.Errorf("%d bytes outside [1, %d]", o.Bytes, limit)
		}
	case OpDMA:
		if !inRange(o.Src) || !inRange(o.Dst) {
			return fmt.Errorf("node pair %d->%d outside %d nodes", o.Src, o.Dst, nodes)
		}
		if o.SrcGPU < 0 || o.SrcGPU > 1 || o.DstGPU < 0 || o.DstGPU > 1 {
			return fmt.Errorf("GPU pair %d->%d outside the TCA map (GPU0/GPU1 only)", o.SrcGPU, o.DstGPU)
		}
		if o.Bytes < 1 || o.Bytes > SlotBytes {
			return fmt.Errorf("%d bytes outside [1, %d]", o.Bytes, SlotBytes)
		}
	case OpStride:
		if !inRange(o.Src) || !inRange(o.Dst) {
			return fmt.Errorf("node pair %d->%d outside %d nodes", o.Src, o.Dst, nodes)
		}
		if o.BlockLen < 1 || o.BlockLen > MaxStrideBlock {
			return fmt.Errorf("block length %d outside [1, %d]", o.BlockLen, MaxStrideBlock)
		}
		if o.Count < 1 || o.Count > MaxStrideCount {
			return fmt.Errorf("block count %d outside [1, %d]", o.Count, MaxStrideCount)
		}
		if o.Stride < o.BlockLen {
			return fmt.Errorf("stride %d below block length %d (blocks must not self-overlap)", o.Stride, o.BlockLen)
		}
		if o.span() > SlotBytes {
			return fmt.Errorf("stride span %d exceeds the %d-byte slot", o.span(), SlotBytes)
		}
	case OpBarrier:
		if o.Rounds < 1 || o.Rounds > MaxBarrierRounds {
			return fmt.Errorf("%d barrier rounds outside [1, %d]", o.Rounds, MaxBarrierRounds)
		}
	default:
		return fmt.Errorf("unknown op kind %d", o.Kind)
	}
	return nil
}

// validCable reports whether a scenario link name ("2e", "0s") exists in
// this topology: every chip owns the eastward ring cable named after it;
// S cables exist only in a dual ring, one per peer pair.
func (s Spec) validCable(name string) bool {
	if len(name) < 2 {
		return false
	}
	idx, err := strconv.Atoi(name[:len(name)-1])
	if err != nil || idx < 0 {
		return false
	}
	switch name[len(name)-1] {
	case 'e':
		return idx < s.Nodes()
	case 's':
		return s.DualRing && idx < s.K
	}
	return false
}

func (s Spec) topoString() string {
	if s.DualRing {
		return fmt.Sprintf("dualring %d", s.K)
	}
	return fmt.Sprintf("ring %d", s.K)
}

// Format renders the spec in its canonical committable form; Parse is its
// exact inverse for valid specs.
func Format(s Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d\n", s.Seed)
	fmt.Fprintf(&b, "topo %s\n", s.topoString())
	if s.Faults != "" {
		fmt.Fprintf(&b, "faults %s\n", s.Faults)
	}
	for _, o := range s.Ops {
		switch o.Kind {
		case OpPIO:
			fmt.Fprintf(&b, "op pio %d %d %d\n", o.Src, o.Dst, o.Bytes)
		case OpHostPut:
			fmt.Fprintf(&b, "op hostput %d %d %d\n", o.Src, o.Dst, o.Bytes)
		case OpDMA:
			fmt.Fprintf(&b, "op dma %d %d %d %d %d\n", o.Src, o.SrcGPU, o.Dst, o.DstGPU, o.Bytes)
		case OpStride:
			fmt.Fprintf(&b, "op stride %d %d %d %d %d\n", o.Src, o.Dst, o.BlockLen, o.Count, o.Stride)
		case OpBarrier:
			fmt.Fprintf(&b, "op barrier %d\n", o.Rounds)
		}
	}
	return b.String()
}

// Parse reads a spec file: one directive per line, '#' comments and blank
// lines ignored. The returned spec has passed Validate.
func Parse(text string) (Spec, error) {
	var s Spec
	var sawSeed, sawTopo bool
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		bad := func(msg string) (Spec, error) {
			return Spec{}, fmt.Errorf("scenariogen: spec line %d: %s", ln+1, msg)
		}
		switch fields[0] {
		case "seed":
			if sawSeed {
				return bad("duplicate seed directive")
			}
			if len(fields) != 2 {
				return bad("want: seed <int64>")
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return bad(fmt.Sprintf("bad seed %q", fields[1]))
			}
			s.Seed, sawSeed = v, true
		case "topo":
			if sawTopo {
				return bad("duplicate topo directive")
			}
			if len(fields) != 3 {
				return bad("want: topo ring|dualring <n>")
			}
			switch fields[1] {
			case "ring":
				s.DualRing = false
			case "dualring":
				s.DualRing = true
			default:
				return bad(fmt.Sprintf("unknown topology %q (want ring or dualring)", fields[1]))
			}
			k, err := strconv.Atoi(fields[2])
			if err != nil {
				return bad(fmt.Sprintf("bad node count %q", fields[2]))
			}
			s.K, sawTopo = k, true
		case "faults":
			if s.Faults != "" {
				return bad("duplicate faults directive")
			}
			if len(fields) != 2 {
				return bad("want: faults <scenario> (the fault.ParseScenario grammar, no spaces)")
			}
			s.Faults = fields[1]
		case "op":
			if len(fields) < 2 {
				return bad("want: op <kind> <args>")
			}
			o, err := parseOp(fields[1], fields[2:])
			if err != nil {
				return bad(err.Error())
			}
			s.Ops = append(s.Ops, o)
		default:
			return bad(fmt.Sprintf("unknown directive %q", fields[0]))
		}
	}
	if !sawSeed {
		return Spec{}, fmt.Errorf("scenariogen: spec missing seed directive")
	}
	if !sawTopo {
		return Spec{}, fmt.Errorf("scenariogen: spec missing topo directive")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

func parseOp(kind string, args []string) (Op, error) {
	ints := make([]int, len(args))
	for i, a := range args {
		v, err := strconv.Atoi(a)
		if err != nil {
			return Op{}, fmt.Errorf("op %s: bad argument %q", kind, a)
		}
		ints[i] = v
	}
	arity := func(n int, usage string) error {
		if len(ints) != n {
			return fmt.Errorf("op %s: want: %s", kind, usage)
		}
		return nil
	}
	switch kind {
	case "pio":
		if err := arity(3, "op pio <src> <dst> <bytes>"); err != nil {
			return Op{}, err
		}
		return Op{Kind: OpPIO, Src: ints[0], Dst: ints[1], Bytes: ints[2]}, nil
	case "hostput":
		if err := arity(3, "op hostput <src> <dst> <bytes>"); err != nil {
			return Op{}, err
		}
		return Op{Kind: OpHostPut, Src: ints[0], Dst: ints[1], Bytes: ints[2]}, nil
	case "dma":
		if err := arity(5, "op dma <src> <srcgpu> <dst> <dstgpu> <bytes>"); err != nil {
			return Op{}, err
		}
		return Op{Kind: OpDMA, Src: ints[0], SrcGPU: ints[1], Dst: ints[2], DstGPU: ints[3], Bytes: ints[4]}, nil
	case "stride":
		if err := arity(5, "op stride <src> <dst> <blocklen> <count> <stride>"); err != nil {
			return Op{}, err
		}
		return Op{Kind: OpStride, Src: ints[0], Dst: ints[1], BlockLen: ints[2], Count: ints[3], Stride: ints[4]}, nil
	case "barrier":
		if err := arity(1, "op barrier <rounds>"); err != nil {
			return Op{}, err
		}
		return Op{Kind: OpBarrier, Rounds: ints[0]}, nil
	}
	return Op{}, fmt.Errorf("unknown op kind %q (want pio/hostput/dma/stride/barrier)", kind)
}
