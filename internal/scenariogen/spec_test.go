package scenariogen

import (
	"reflect"
	"strings"
	"testing"
)

// TestRoundTrip: Parse must invert Format for generated specs across many
// seeds — the property that makes failing cases committable.
func TestRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		s := Generate(seed)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid spec: %v", seed, err)
		}
		back, err := Parse(Format(s))
		if err != nil {
			t.Fatalf("seed %d: re-parse failed: %v\nspec:\n%s", seed, err, Format(s))
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("seed %d: round-trip changed the spec\nbefore:\n%s\nafter:\n%s",
				seed, Format(s), Format(back))
		}
	}
}

// TestGenerateDeterministic: the generator draws only from its seed.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		if a, b := Format(Generate(seed)), Format(Generate(seed)); a != b {
			t.Fatalf("seed %d generated two different specs:\n%s\nvs\n%s", seed, a, b)
		}
	}
}

// TestParseRejects: malformed specs fail with the offending line number.
func TestParseRejects(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"empty", "", "missing seed"},
		{"no topo", "seed 1\nop barrier 1\n", "missing topo"},
		{"bad directive", "seed 1\ntopo ring 4\nflop pio 0 1 8\n", `line 3: unknown directive "flop"`},
		{"bad op kind", "seed 1\ntopo ring 4\nop teleport 0 1\n", `unknown op kind "teleport"`},
		{"bad arity", "seed 1\ntopo ring 4\nop pio 0 1\n", "want: op pio"},
		{"node range", "seed 1\ntopo ring 4\nop pio 0 9 8\n", "outside 4 nodes"},
		{"dup seed", "seed 1\nseed 2\ntopo ring 4\nop barrier 1\n", "line 2: duplicate seed"},
		{"bad faults", "seed 1\ntopo ring 4\nfaults flap:2e\nop barrier 1\n", "unknown scenario clause"},
		{"alien cable", "seed 1\ntopo ring 4\nfaults linkdown:2s:1us\nop barrier 1\n", `cable "2s"`},
		{"stride overlap", "seed 1\ntopo ring 4\nop stride 0 1 128 4 64\n", "self-overlap"},
		{"oversize dma", "seed 1\ntopo ring 4\nop dma 0 0 1 0 9999999\n", "outside [1, 65536]"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.text)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestParseTolerance: comments, blank lines, and directive order do not
// matter; the canonical Format is still produced.
func TestParseTolerance(t *testing.T) {
	s, err := Parse("# a failing case\n\ntopo dualring 2\nop dma 1 0 3 1 4096\nseed -7\n")
	if err != nil {
		t.Fatal(err)
	}
	want := "seed -7\ntopo dualring 2\nop dma 1 0 3 1 4096\n"
	if Format(s) != want {
		t.Fatalf("canonical form:\n%q\nwant:\n%q", Format(s), want)
	}
}

// TestShrinkConverges: shrinking against a predicate that keys on one op
// must strip everything else and stay valid.
func TestShrinkConverges(t *testing.T) {
	s := Generate(11)
	// Force a recognizable op into the middle and faults around it.
	s.Ops = append(s.Ops, Op{Kind: OpDMA, Src: 0, Dst: 1 % s.Nodes(), Bytes: 40000})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	runs := 0
	failing := func(c Spec) bool {
		runs++
		for _, o := range c.Ops {
			if o.Kind == OpDMA && o.Bytes >= 1000 {
				return true
			}
		}
		return false
	}
	got := Shrink(s, failing)
	if err := got.Validate(); err != nil {
		t.Fatalf("shrunk spec invalid: %v", err)
	}
	if !failing(got) {
		t.Fatal("shrunk spec no longer fails")
	}
	if len(got.Ops) != 1 {
		t.Fatalf("shrunk to %d ops, want 1:\n%s", len(got.Ops), Format(got))
	}
	if got.Faults != "" {
		t.Fatalf("shrink kept irrelevant faults %q", got.Faults)
	}
	if got.Ops[0].Bytes >= 2000 {
		t.Fatalf("shrink left bytes at %d, want < 2000", got.Ops[0].Bytes)
	}
	if runs > MaxShrinkRuns+2 {
		t.Fatalf("shrink overspent its budget: %d runs", runs)
	}
}
